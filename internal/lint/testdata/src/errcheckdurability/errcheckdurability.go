// Golden package for the errcheckdurability analyzer: results of WAL
// appends/flushes, commit/abort, lock acquisition, and buffer flushes
// must not be discarded.
package errcheckdurability

import (
	"context"

	sbdms "repro"
	"repro/internal/access"
	"repro/internal/buffer"
	"repro/internal/index"
	"repro/internal/replicate"
	"repro/internal/txn"
	"repro/internal/wal"
)

// bareCalls: expression-statement discards of every guarded family.
func bareCalls(log *wal.Log, mgr *txn.Manager, lm *txn.LockManager, pool *buffer.Manager, tx *txn.Txn, rec *wal.Record) {
	log.Append(rec)                   // want `result of \(Log\)\.Append discarded`
	log.Flush(0)                      // want `result of \(Log\)\.Flush discarded`
	mgr.Commit(tx)                    // want `result of \(Manager\)\.Commit discarded`
	lm.TryAcquire(1, "r", txn.Shared) // want `result of \(LockManager\)\.TryAcquire discarded`
	pool.FlushAll()                   // want `result of \(Manager\)\.FlushAll discarded`
}

// deferAndGo: defer and go discards lose the outcome the same way.
func deferAndGo(ctx context.Context, mgr *txn.Manager, lm *txn.LockManager, tx *txn.Txn) {
	defer mgr.Abort(tx)                    // want `result of \(Manager\)\.Abort discarded`
	go lm.Acquire(ctx, 1, "r", txn.Shared) // want `result of \(LockManager\)\.Acquire discarded`
	go tx.Lock(ctx, "k", txn.Exclusive)    // want `result of \(Txn\)\.Lock discarded`
}

// blankAssigns: assigning every error/bool result to blank is a
// discard even when other results are kept.
func blankAssigns(log *wal.Log, mgr *txn.Manager, tx *txn.Txn, rec *wal.Record) wal.LSN {
	_, _ = log.Append(rec)         // want `result of \(Log\)\.Append discarded`
	lsn, _ := mgr.CommitAppend(tx) // want `result of \(Manager\)\.CommitAppend discarded`
	return lsn
}

// bulkIngest: the bulk-load entry points carry page-leak and
// publication outcomes — discarding any of them is flagged.
func bulkIngest(tx *txn.Txn, h *access.HeapFile, t *index.BTree, recs [][]byte, items []index.BulkItem) {
	h.AppendPacked(tx, recs, nil)     // want `result of \(HeapFile\)\.AppendPacked discarded`
	t.BulkBuild(tx, items, nil)       // want `result of \(BTree\)\.BulkBuild discarded`
	_, _, _ = t.InstallRoot(tx, 0, 1) // want `result of \(BTree\)\.InstallRoot discarded`
	t.FreePages(nil)                  // want `result of \(BTree\)\.FreePages discarded`
}

// replicationDiscards: the replication entry points carry the
// durability story behind an async-commit ack — a discarded result
// here acks a record no follower persisted or advances a frontier over
// unapplied effects.
func replicationDiscards(fw *replicate.FollowerWAL, rep *replicate.Replica, sh *replicate.Shipper, rr *sbdms.ReplicaReader, rec *wal.Record, recs []*wal.Record) {
	fw.Append(rec)         // want `result of \(FollowerWAL\)\.Append discarded`
	fw.Sync()              // want `result of \(FollowerWAL\)\.Sync discarded`
	rep.Apply(rec)         // want `result of \(Replica\)\.Apply discarded`
	_, _ = sh.Ship()       // want `result of \(Shipper\)\.Ship discarded`
	rr.ApplyBatch(recs, 0) // want `result of \(ReplicaReader\)\.ApplyBatch discarded`
	defer rr.Flush()       // want `result of \(ReplicaReader\)\.Flush discarded`
}

// replicationChecked: the same calls with their outcomes handled.
func replicationChecked(fw *replicate.FollowerWAL, sh *replicate.Shipper, rr *sbdms.ReplicaReader, rec *wal.Record, recs []*wal.Record) error {
	if appended, err := fw.Append(rec); err != nil || !appended {
		return err
	}
	if err := fw.Sync(); err != nil {
		return err
	}
	if _, err := sh.Ship(); err != nil {
		return err
	}
	if err := rr.ApplyBatch(recs, 0); err != nil {
		return err
	}
	return rr.Flush()
}

// checkedResults: keeping the error or bool in a named variable is the
// point of the rule — none of these are flagged.
func checkedResults(ctx context.Context, log *wal.Log, mgr *txn.Manager, lm *txn.LockManager, tx *txn.Txn, rec *wal.Record) error {
	if _, err := log.Append(rec); err != nil {
		return err
	}
	if err := log.Flush(0); err != nil {
		return err
	}
	if !lm.TryAcquire(1, "r", txn.Shared) {
		if err := lm.Acquire(ctx, 1, "r", txn.Shared); err != nil {
			return err
		}
	}
	return mgr.Commit(tx)
}

// releaseIsExempt: (*LockManager).Release is deliberately outside the
// table — the instant-lock paths drop its error after a TryAcquire
// race on purpose.
func releaseIsExempt(lm *txn.LockManager) {
	lm.Release(1, "r")
}

// suppressedDiscard: a justified suppression is honoured.
func suppressedDiscard(log *wal.Log) {
	//lint:ignore errcheckdurability the shutdown path flushes best-effort; the later fsync of the close decides durability
	log.Flush(0)
}
