package core

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// Properties is the property mechanism of Section 3.6: a typed-access
// string map read by components at instantiation to customise their
// behaviour, and by the running architecture ("architecture properties")
// to signal state such as low resources or removed components. It is
// safe for concurrent use and supports change subscriptions so that
// coordinator services can react to property updates.
type Properties struct {
	mu     sync.RWMutex
	values map[string]string
	subs   []func(key, value string)
}

// NewProperties creates an empty property set.
func NewProperties() *Properties {
	return &Properties{values: make(map[string]string)}
}

// PropertiesFrom creates a property set from a plain map.
func PropertiesFrom(m map[string]string) *Properties {
	p := NewProperties()
	for k, v := range m {
		p.values[k] = v
	}
	return p
}

// Clone returns an independent copy with no subscribers.
func (p *Properties) Clone() *Properties {
	if p == nil {
		return NewProperties()
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	cp := NewProperties()
	for k, v := range p.values {
		cp.values[k] = v
	}
	return cp
}

// Set stores a property and notifies subscribers.
func (p *Properties) Set(key, value string) {
	p.mu.Lock()
	p.values[key] = value
	subs := append(make([]func(string, string), 0, len(p.subs)), p.subs...)
	p.mu.Unlock()
	for _, f := range subs {
		f(key, value)
	}
}

// SetInt stores an integer property.
func (p *Properties) SetInt(key string, v int64) { p.Set(key, strconv.FormatInt(v, 10)) }

// SetFloat stores a float property.
func (p *Properties) SetFloat(key string, v float64) {
	p.Set(key, strconv.FormatFloat(v, 'g', -1, 64))
}

// SetBool stores a boolean property.
func (p *Properties) SetBool(key string, v bool) { p.Set(key, strconv.FormatBool(v)) }

// Get returns the property value and whether it is present.
func (p *Properties) Get(key string) (string, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	v, ok := p.values[key]
	return v, ok
}

// String returns the property or def when absent.
func (p *Properties) String(key, def string) string {
	if v, ok := p.Get(key); ok {
		return v
	}
	return def
}

// Int returns the property parsed as int64, or def when absent or
// malformed.
func (p *Properties) Int(key string, def int64) int64 {
	v, ok := p.Get(key)
	if !ok {
		return def
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return def
	}
	return n
}

// Float returns the property parsed as float64, or def.
func (p *Properties) Float(key string, def float64) float64 {
	v, ok := p.Get(key)
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return def
	}
	return f
}

// Bool returns the property parsed as bool, or def.
func (p *Properties) Bool(key string, def bool) bool {
	v, ok := p.Get(key)
	if !ok {
		return def
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return def
	}
	return b
}

// Delete removes a property. Subscribers are notified with an empty
// value.
func (p *Properties) Delete(key string) {
	p.mu.Lock()
	delete(p.values, key)
	subs := append(make([]func(string, string), 0, len(p.subs)), p.subs...)
	p.mu.Unlock()
	for _, f := range subs {
		f(key, "")
	}
}

// Subscribe registers a callback invoked on every Set/Delete. The
// callback must not block.
func (p *Properties) Subscribe(f func(key, value string)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.subs = append(p.subs, f)
}

// Keys returns the sorted property keys.
func (p *Properties) Keys() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	keys := make([]string, 0, len(p.values))
	for k := range p.values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Len returns the number of properties.
func (p *Properties) Len() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.values)
}

// Merge copies all properties from other into p.
func (p *Properties) Merge(other *Properties) {
	if other == nil {
		return
	}
	other.mu.RLock()
	pairs := make(map[string]string, len(other.values))
	for k, v := range other.values {
		pairs[k] = v
	}
	other.mu.RUnlock()
	for k, v := range pairs {
		p.Set(k, v)
	}
}

// EvalAssertion evaluates a single policy assertion against the
// property set. Numeric comparison is attempted first; if either side
// does not parse as a number, string comparison is used for ==/!= and
// lexicographic order for the inequalities.
func (p *Properties) EvalAssertion(a Assertion) (bool, error) {
	have, ok := p.Get(a.Property)
	if !ok {
		return false, nil
	}
	ln, lerr := strconv.ParseFloat(have, 64)
	rn, rerr := strconv.ParseFloat(a.Value, 64)
	if lerr == nil && rerr == nil {
		switch a.Op {
		case "==":
			return ln == rn, nil
		case "!=":
			return ln != rn, nil
		case ">=":
			return ln >= rn, nil
		case "<=":
			return ln <= rn, nil
		case ">":
			return ln > rn, nil
		case "<":
			return ln < rn, nil
		}
	}
	switch a.Op {
	case "==":
		return have == a.Value, nil
	case "!=":
		return have != a.Value, nil
	case ">=":
		return have >= a.Value, nil
	case "<=":
		return have <= a.Value, nil
	case ">":
		return have > a.Value, nil
	case "<":
		return have < a.Value, nil
	}
	return false, fmt.Errorf("core: unknown assertion comparator %q", a.Op)
}

// CheckPreconditions evaluates every precondition of a policy and
// returns the first violated assertion, if any.
func (p *Properties) CheckPreconditions(pol Policy) (Assertion, bool) {
	for _, a := range pol.Preconditions {
		ok, err := p.EvalAssertion(a)
		if err != nil || !ok {
			return a, false
		}
	}
	return Assertion{}, true
}
