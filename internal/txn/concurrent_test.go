package txn

import (
	"sync"
	"testing"

	"repro/internal/storage"
	"repro/internal/wal"
)

// TestConcurrentCommitsGroupCommit drives many committers through the
// manager at once (run with -race): every commit must be durable and
// the WAL's group commit must coalesce their flushes.
func TestConcurrentCommitsGroupCommit(t *testing.T) {
	l, err := wal.Open(storage.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(l, nil)

	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tx, err := m.Begin()
				if err != nil {
					errCh <- err
					return
				}
				if err := m.Commit(tx); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if m.ActiveCount() != 0 {
		t.Fatalf("active after commit storm: %d", m.ActiveCount())
	}
	var commits int
	if err := l.Iterate(wal.ZeroLSN, func(r *wal.Record) error {
		if r.Type == wal.RecCommit {
			commits++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if commits != workers*perWorker {
		t.Fatalf("durable commits = %d, want %d", commits, workers*perWorker)
	}
	if l.Syncs() > uint64(commits) {
		t.Fatalf("syncs %d exceed commits %d", l.Syncs(), commits)
	}
}
