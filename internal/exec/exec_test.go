package exec

import (
	"context"
	"errors"
	"fmt"
	"io"
	"testing"

	"repro/internal/access"
	"repro/internal/buffer"
	"repro/internal/catalog"
	"repro/internal/index"
	"repro/internal/storage"
)

// memSource is an in-memory RowSource for operator tests.
type memSource struct {
	recs map[access.RID][]byte
	ord  []access.RID
}

func newMemSource(rows []access.Row) *memSource {
	s := &memSource{recs: make(map[access.RID][]byte)}
	for i, r := range rows {
		rid := access.RID{Page: storage.PageID(i/10 + 1), Slot: uint16(i % 10)}
		s.recs[rid] = access.EncodeRow(r)
		s.ord = append(s.ord, rid)
	}
	return s
}

func (s *memSource) Scan(fn func(access.RID, []byte) error) error {
	for _, rid := range s.ord {
		if err := fn(rid, s.recs[rid]); err != nil {
			return err
		}
	}
	return nil
}

func (s *memSource) Get(rid access.RID) ([]byte, error) {
	rec, ok := s.recs[rid]
	if !ok {
		return nil, errors.New("memSource: no such rid")
	}
	return rec, nil
}

func usersTable() *catalog.Table {
	return &catalog.Table{
		Name: "users",
		Columns: []catalog.Column{
			{Name: "id", Type: access.TypeInt},
			{Name: "name", Type: access.TypeString},
			{Name: "age", Type: access.TypeInt},
		},
	}
}

func userRows() []access.Row {
	return []access.Row{
		{access.NewInt(1), access.NewString("ann"), access.NewInt(30)},
		{access.NewInt(2), access.NewString("bob"), access.NewInt(25)},
		{access.NewInt(3), access.NewString("cay"), access.NewInt(35)},
		{access.NewInt(4), access.NewString("dan"), access.NewInt(25)},
	}
}

func userScan() *SeqScan {
	return NewSeqScan(usersTable(), newMemSource(userRows()), "")
}

func TestSeqScan(t *testing.T) {
	ctx := context.Background()
	scan := userScan()
	rows, err := Collect(ctx, scan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	cols := scan.Columns()
	if len(cols) != 3 || cols[0] != "users.id" {
		t.Fatalf("cols = %v", cols)
	}
	// Alias qualifies columns.
	aliased := NewSeqScan(usersTable(), newMemSource(userRows()), "u")
	if aliased.Columns()[1] != "u.name" {
		t.Fatalf("aliased cols = %v", aliased.Columns())
	}
}

func TestFilterAndExpressions(t *testing.T) {
	ctx := context.Background()
	f := &Filter{
		In:   userScan(),
		Pred: Cmp{Op: OpEq, L: Col{"age"}, R: Lit{access.NewInt(25)}},
	}
	rows, err := Collect(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r[2].Int != 25 {
			t.Fatalf("bad row %v", r)
		}
	}
	// Compound predicate with OR/AND/NOT.
	f2 := &Filter{
		In: userScan(),
		Pred: Logic{Op: OpOr,
			L: Cmp{Op: OpEq, L: Col{"name"}, R: Lit{access.NewString("ann")}},
			R: Logic{Op: OpAnd,
				L: Cmp{Op: OpGt, L: Col{"age"}, R: Lit{access.NewInt(30)}},
				R: Not{Cmp{Op: OpEq, L: Col{"id"}, R: Lit{access.NewInt(99)}}},
			},
		},
	}
	rows, err = Collect(ctx, f2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // ann + cay
		t.Fatalf("rows = %d: %v", len(rows), rows)
	}
}

func TestProjectArithmetic(t *testing.T) {
	ctx := context.Background()
	p := &Project{
		In: userScan(),
		Exprs: []Expr{
			Col{"name"},
			Arith{Op: OpMul, L: Col{"age"}, R: Lit{access.NewInt(2)}},
			Arith{Op: OpAdd, L: Col{"name"}, R: Lit{access.NewString("!")}},
		},
		Aliases: []string{"name", "dbl", "excl"},
	}
	rows, err := Collect(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][1].Int != 60 || rows[0][2].Str != "ann!" {
		t.Fatalf("row = %v", rows[0])
	}
	if got := p.Columns(); got[1] != "dbl" {
		t.Fatalf("cols = %v", got)
	}
}

func TestArithmeticSemantics(t *testing.T) {
	cols := []string{"x"}
	row := access.Row{access.NewInt(7)}
	cases := []struct {
		e    Expr
		want access.Value
	}{
		{Arith{OpAdd, Col{"x"}, Lit{access.NewInt(3)}}, access.NewInt(10)},
		{Arith{OpSub, Col{"x"}, Lit{access.NewInt(3)}}, access.NewInt(4)},
		{Arith{OpMul, Col{"x"}, Lit{access.NewFloat(0.5)}}, access.NewFloat(3.5)},
		{Arith{OpDiv, Col{"x"}, Lit{access.NewInt(2)}}, access.NewInt(3)},
		{Arith{OpMod, Col{"x"}, Lit{access.NewInt(4)}}, access.NewInt(3)},
	}
	for _, c := range cases {
		got, err := c.e.Eval(row, cols)
		if err != nil || !access.Equal(got, c.want) {
			t.Errorf("%s = %v, %v (want %v)", c.e, got, err, c.want)
		}
	}
	// Division by zero errors.
	if _, err := (Arith{OpDiv, Col{"x"}, Lit{access.NewInt(0)}}).Eval(row, cols); err == nil {
		t.Fatal("div by zero must error")
	}
	// NULL propagation.
	got, err := (Arith{OpAdd, Col{"x"}, Lit{access.Null()}}).Eval(row, cols)
	if err != nil || !got.IsNull() {
		t.Fatalf("NULL arith = %v, %v", got, err)
	}
}

func TestThreeValuedLogic(t *testing.T) {
	cols := []string{"n"}
	row := access.Row{access.Null()}
	null := Cmp{Op: OpEq, L: Col{"n"}, R: Lit{access.NewInt(1)}} // NULL
	tru := Lit{access.NewBool(true)}
	fls := Lit{access.NewBool(false)}
	cases := []struct {
		e        Expr
		wantNull bool
		want     bool
	}{
		{Logic{OpAnd, null, tru}, true, false},
		{Logic{OpAnd, null, fls}, false, false},
		{Logic{OpOr, null, tru}, false, true},
		{Logic{OpOr, null, fls}, true, false},
		{Not{null}, true, false},
		{IsNull{E: Col{"n"}}, false, true},
		{IsNull{E: Col{"n"}, Neg: true}, false, false},
	}
	for _, c := range cases {
		v, err := c.e.Eval(row, cols)
		if err != nil {
			t.Fatalf("%s: %v", c.e, err)
		}
		if c.wantNull != v.IsNull() {
			t.Errorf("%s: null = %v, want %v", c.e, v.IsNull(), c.wantNull)
		}
		if !c.wantNull && v.Bool != c.want {
			t.Errorf("%s = %v, want %v", c.e, v.Bool, c.want)
		}
	}
}

func TestColumnResolution(t *testing.T) {
	cols := []string{"users.id", "users.name", "orders.id"}
	if i, err := ColumnIndex(cols, "users.name"); err != nil || i != 1 {
		t.Fatalf("qualified: %d, %v", i, err)
	}
	if i, err := ColumnIndex(cols, "name"); err != nil || i != 1 {
		t.Fatalf("bare: %d, %v", i, err)
	}
	if _, err := ColumnIndex(cols, "id"); err == nil {
		t.Fatal("ambiguous bare name must fail")
	}
	if _, err := ColumnIndex(cols, "zzz"); !errors.Is(err, ErrUnknownColumn) {
		t.Fatalf("err = %v", err)
	}
}

func TestSortAndLimit(t *testing.T) {
	ctx := context.Background()
	s := &Sort{
		In: userScan(),
		Keys: []SortKey{
			{E: Col{"age"}, Desc: false},
			{E: Col{"name"}, Desc: true},
		},
	}
	rows, err := Collect(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	// age asc, name desc within ties: dan(25), bob(25), ann(30), cay(35)
	want := []string{"dan", "bob", "ann", "cay"}
	for i, w := range want {
		if rows[i][1].Str != w {
			t.Fatalf("order = %v", rows)
		}
	}
	l := &Limit{In: &Sort{In: userScan(), Keys: []SortKey{{E: Col{"id"}}}}, N: 2, Offset: 1}
	rows, err = Collect(ctx, l)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0].Int != 2 || rows[1][0].Int != 3 {
		t.Fatalf("limit rows = %v", rows)
	}
}

func TestDistinct(t *testing.T) {
	ctx := context.Background()
	d := &Distinct{In: &Project{
		In:      userScan(),
		Exprs:   []Expr{Col{"age"}},
		Aliases: []string{"age"},
	}}
	rows, err := Collect(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("distinct ages = %v", rows)
	}
}

func ordersTable() *catalog.Table {
	return &catalog.Table{
		Name: "orders",
		Columns: []catalog.Column{
			{Name: "oid", Type: access.TypeInt},
			{Name: "user_id", Type: access.TypeInt},
			{Name: "total", Type: access.TypeFloat},
		},
	}
}

func orderRows() []access.Row {
	return []access.Row{
		{access.NewInt(100), access.NewInt(1), access.NewFloat(9.5)},
		{access.NewInt(101), access.NewInt(2), access.NewFloat(15.0)},
		{access.NewInt(102), access.NewInt(1), access.NewFloat(3.25)},
		{access.NewInt(103), access.NewInt(9), access.NewFloat(1.0)},
	}
}

func TestJoinsAgree(t *testing.T) {
	ctx := context.Background()
	mk := func() (Operator, Operator) {
		return NewSeqScan(usersTable(), newMemSource(userRows()), ""),
			NewSeqScan(ordersTable(), newMemSource(orderRows()), "")
	}
	// Nested loop.
	l, r := mk()
	nlj := &NestedLoopJoin{L: l, R: r,
		Pred: Cmp{Op: OpEq, L: Col{"users.id"}, R: Col{"orders.user_id"}}}
	nrows, err := Collect(ctx, nlj)
	if err != nil {
		t.Fatal(err)
	}
	// Hash join.
	l, r = mk()
	hj := &HashJoin{L: l, R: r, LKey: Col{"users.id"}, RKey: Col{"orders.user_id"}}
	hrows, err := Collect(ctx, hj)
	if err != nil {
		t.Fatal(err)
	}
	// Merge join over sorted inputs.
	l, r = mk()
	mj := &MergeJoin{
		L:    &Sort{In: l, Keys: []SortKey{{E: Col{"users.id"}}}},
		R:    &Sort{In: r, Keys: []SortKey{{E: Col{"orders.user_id"}}}},
		LKey: Col{"users.id"}, RKey: Col{"orders.user_id"},
	}
	mrows, err := Collect(ctx, mj)
	if err != nil {
		t.Fatal(err)
	}
	if len(nrows) != 3 || len(hrows) != 3 || len(mrows) != 3 {
		t.Fatalf("join sizes: nlj=%d hash=%d merge=%d", len(nrows), len(hrows), len(mrows))
	}
	// Same multiset of (user id, order id) pairs.
	sig := func(rows []access.Row) map[string]int {
		m := map[string]int{}
		for _, r := range rows {
			m[fmt.Sprintf("%d-%d", r[0].Int, r[3].Int)]++
		}
		return m
	}
	ns, hs, ms := sig(nrows), sig(hrows), sig(mrows)
	for k, v := range ns {
		if hs[k] != v || ms[k] != v {
			t.Fatalf("join mismatch on %s: nlj=%d hash=%d merge=%d", k, v, hs[k], ms[k])
		}
	}
	if cols := nlj.Columns(); len(cols) != 6 || cols[3] != "orders.oid" {
		t.Fatalf("join cols = %v", cols)
	}
}

func TestCrossJoin(t *testing.T) {
	ctx := context.Background()
	j := &NestedLoopJoin{
		L: NewSeqScan(usersTable(), newMemSource(userRows()), ""),
		R: NewSeqScan(ordersTable(), newMemSource(orderRows()), ""),
	}
	rows, err := Collect(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("cross join = %d rows", len(rows))
	}
}

func TestHashAggregate(t *testing.T) {
	ctx := context.Background()
	agg := &HashAggregate{
		In:      userScan(),
		GroupBy: []Expr{Col{"age"}},
		GroupAs: []string{"age"},
		Aggs: []AggSpec{
			{Func: AggCount, As: "n"},
			{Func: AggMin, Arg: Col{"name"}, As: "first_name"},
		},
	}
	rows, err := Collect(ctx, agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("groups = %v", rows)
	}
	byAge := map[int64]access.Row{}
	for _, r := range rows {
		byAge[r[0].Int] = r
	}
	if byAge[25][1].Int != 2 || byAge[25][2].Str != "bob" {
		t.Fatalf("group 25 = %v", byAge[25])
	}
	if byAge[30][1].Int != 1 {
		t.Fatalf("group 30 = %v", byAge[30])
	}
}

func TestGlobalAggregates(t *testing.T) {
	ctx := context.Background()
	agg := &HashAggregate{
		In: userScan(),
		Aggs: []AggSpec{
			{Func: AggCount, As: "n"},
			{Func: AggSum, Arg: Col{"age"}, As: "sum_age"},
			{Func: AggAvg, Arg: Col{"age"}, As: "avg_age"},
			{Func: AggMin, Arg: Col{"age"}, As: "min_age"},
			{Func: AggMax, Arg: Col{"age"}, As: "max_age"},
		},
	}
	rows, err := Collect(ctx, agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	r := rows[0]
	if r[0].Int != 4 || r[1].Int != 115 || r[2].Float != 28.75 || r[3].Int != 25 || r[4].Int != 35 {
		t.Fatalf("aggregates = %v", r)
	}
	// Empty input still yields one row with COUNT 0 and NULL sums.
	empty := &HashAggregate{
		In: &Values{Cols: []string{"x"}},
		Aggs: []AggSpec{
			{Func: AggCount, As: "n"},
			{Func: AggSum, Arg: Col{"x"}, As: "s"},
		},
	}
	rows, err = Collect(ctx, empty)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int != 0 || !rows[0][1].IsNull() {
		t.Fatalf("empty agg = %v", rows)
	}
}

func TestIndexScan(t *testing.T) {
	ctx := context.Background()
	d, _ := storage.OpenDisk(storage.NewMemDevice())
	pool := buffer.New(d, 32, buffer.NewLRU())
	fm, _ := storage.OpenFileManager(pool)
	h, err := access.OpenHeap("users", fm, pool)
	if err != nil {
		t.Fatal(err)
	}
	tree, _, err := index.Create(pool, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range userRows() {
		rid, err := h.Insert(nil, access.EncodeRow(r))
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.Insert(access.EncodeKey(r[2]), rid); err != nil { // index on age
			t.Fatal(err)
		}
	}
	lo, hi := access.NewInt(25), access.NewInt(30)
	scan := &IndexScan{Table: usersTable(), Source: h, Tree: tree, Lo: &lo, Hi: &hi}
	rows, err := Collect(ctx, scan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // ages 25,25,30
		t.Fatalf("rows = %v", rows)
	}
	for _, r := range rows {
		if r[2].Int < 25 || r[2].Int > 30 {
			t.Fatalf("out of range row %v", r)
		}
	}
	// Unbounded scan returns everything in age order.
	all := &IndexScan{Table: usersTable(), Source: h, Tree: tree}
	rows, err = Collect(ctx, all)
	if err != nil || len(rows) != 4 {
		t.Fatalf("all rows = %v, %v", rows, err)
	}
	prev := int64(-1)
	for _, r := range rows {
		if r[2].Int < prev {
			t.Fatal("index scan must be ordered")
		}
		prev = r[2].Int
	}
}

func TestValuesOperator(t *testing.T) {
	ctx := context.Background()
	v := &Values{Cols: []string{"a"}, Rows: []access.Row{{access.NewInt(1)}, {access.NewInt(2)}}}
	rows, err := Collect(ctx, v)
	if err != nil || len(rows) != 2 {
		t.Fatalf("rows = %v, %v", rows, err)
	}
	// Reopen resets.
	if err := v.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if r, err := v.Next(ctx); err != nil || r[0].Int != 1 {
		t.Fatalf("after reopen: %v, %v", r, err)
	}
	_, _ = v.Next(ctx)
	if _, err := v.Next(ctx); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v", err)
	}
}
