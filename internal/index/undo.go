package index

import (
	"encoding/binary"
	"fmt"

	"repro/internal/access"
	"repro/internal/storage"
)

// Logical-undo descriptors for B+tree entry mutations. The descriptor
// names the tree by its metadata page id, so a rollback executor can
// resolve (or open) the tree and run the inverse through the normal
// latched code paths — including after a crash, when no live engine
// handles exist yet.
//
// Wire form: kind | u64 metaPage | u64 ridPage | u16 ridSlot | key.

func encodeIndexDesc(kind byte, metaID storage.PageID, key []byte, rid access.RID) []byte {
	out := make([]byte, 19, 19+len(key))
	out[0] = kind
	binary.LittleEndian.PutUint64(out[1:], uint64(metaID))
	binary.LittleEndian.PutUint64(out[9:], uint64(rid.Page))
	binary.LittleEndian.PutUint16(out[17:], rid.Slot)
	return append(out, key...)
}

// undoIndexInsert builds the descriptor undoing an insert of (key,rid).
func undoIndexInsert(metaID storage.PageID, key []byte, rid access.RID) []byte {
	return encodeIndexDesc(access.UndoKindIndexInsert, metaID, key, rid)
}

// undoIndexDelete builds the descriptor undoing a delete of (key,rid).
func undoIndexDelete(metaID storage.PageID, key []byte, rid access.RID) []byte {
	return encodeIndexDesc(access.UndoKindIndexDelete, metaID, key, rid)
}

// undoIndexRepoint builds the descriptor undoing a repoint of key from
// oldRID to newRID: repoint back. Wire form extends the common header
// with the old RID:
// kind | u64 metaPage | u64 newPage | u16 newSlot | u64 oldPage |
// u16 oldSlot | key.
func undoIndexRepoint(metaID storage.PageID, key []byte, oldRID, newRID access.RID) []byte {
	out := make([]byte, 29, 29+len(key))
	out[0] = access.UndoKindIndexRepoint
	binary.LittleEndian.PutUint64(out[1:], uint64(metaID))
	binary.LittleEndian.PutUint64(out[9:], uint64(newRID.Page))
	binary.LittleEndian.PutUint16(out[17:], newRID.Slot)
	binary.LittleEndian.PutUint64(out[19:], uint64(oldRID.Page))
	binary.LittleEndian.PutUint16(out[27:], oldRID.Slot)
	return append(out, key...)
}

// decodeRepoint parses an UndoKindIndexRepoint descriptor.
func decodeRepoint(desc []byte) (metaID storage.PageID, key []byte, oldRID, newRID access.RID, err error) {
	if len(desc) < 29 {
		return 0, nil, access.RID{}, access.RID{}, fmt.Errorf("%w: short repoint descriptor", ErrCorrupt)
	}
	metaID = storage.PageID(binary.LittleEndian.Uint64(desc[1:]))
	newRID = access.RID{
		Page: storage.PageID(binary.LittleEndian.Uint64(desc[9:])),
		Slot: binary.LittleEndian.Uint16(desc[17:]),
	}
	oldRID = access.RID{
		Page: storage.PageID(binary.LittleEndian.Uint64(desc[19:])),
		Slot: binary.LittleEndian.Uint16(desc[27:]),
	}
	key = append([]byte(nil), desc[29:]...)
	return metaID, key, oldRID, newRID, nil
}

// DecodeUndo splits an index undo descriptor. It reports ok=false for
// non-index kinds.
func DecodeUndo(desc []byte) (kind byte, metaID storage.PageID, key []byte, rid access.RID, ok bool, err error) {
	if len(desc) == 0 {
		return 0, 0, nil, access.RID{}, false, fmt.Errorf("%w: empty undo descriptor", ErrCorrupt)
	}
	kind = desc[0]
	if kind == access.UndoKindIndexRepoint {
		metaID, key, _, newRID, err := decodeRepoint(desc)
		return kind, metaID, key, newRID, err == nil, err
	}
	if kind != access.UndoKindIndexInsert && kind != access.UndoKindIndexDelete {
		return kind, 0, nil, access.RID{}, false, nil
	}
	if len(desc) < 19 {
		return 0, 0, nil, access.RID{}, false, fmt.Errorf("%w: short undo descriptor", ErrCorrupt)
	}
	metaID = storage.PageID(binary.LittleEndian.Uint64(desc[1:]))
	rid = access.RID{
		Page: storage.PageID(binary.LittleEndian.Uint64(desc[9:])),
		Slot: binary.LittleEndian.Uint16(desc[17:]),
	}
	key = append([]byte(nil), desc[19:]...)
	return kind, metaID, key, rid, true, nil
}

// ApplyUndo executes the inverse index operation named by desc through
// tree (which must be the tree whose metadata page the descriptor
// names), under tx — a compensation context, so the logged records are
// redo-only. Both inverses are idempotent: deleting an absent entry and
// re-inserting a present one are no-ops, which is what lets recovery
// re-run a rollback whose compensations were partially durable.
func (t *BTree) ApplyUndo(tx access.TxnContext, desc []byte) error {
	kind, metaID, key, rid, ok, err := DecodeUndo(desc)
	if err != nil || !ok {
		if err == nil {
			err = fmt.Errorf("%w: undo kind %d is not an index kind", ErrCorrupt, kind)
		}
		return err
	}
	if metaID != t.metaID {
		return fmt.Errorf("%w: undo names tree %d, applied to %d", ErrCorrupt, metaID, t.metaID)
	}
	switch kind {
	case access.UndoKindIndexInsert:
		_, err = t.DeleteTx(tx, key, rid)
	case access.UndoKindIndexDelete:
		err = t.InsertTx(tx, key, rid)
	case access.UndoKindIndexRepoint:
		// Repoint back: newRID -> oldRID. A repoint whose entry already
		// reads oldRID (a durable compensation applied it) finds no
		// (key, newRID) entry and reports false — idempotent.
		var oldRID, newRID access.RID
		_, key, oldRID, newRID, err = decodeRepoint(desc)
		if err == nil {
			_, err = t.RepointTx(tx, key, newRID, oldRID)
		}
	}
	return err
}
