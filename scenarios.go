package sbdms

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// ScenarioResult reports one flexibility scenario run (Figures 5-7):
// operation counts before/during/after the architectural change, the
// service-unavailability window observed by clients, and whether the
// system kept serving throughout.
type ScenarioResult struct {
	Name string
	// OpsBefore/During/After count successful client operations in the
	// three phases.
	OpsBefore, OpsDuring, OpsAfter int64
	// Failures counts client operations that returned errors.
	Failures int64
	// ReconfigTime is how long the architecture took to restore
	// service after the triggering event.
	ReconfigTime time.Duration
	// Events tallies kernel events observed during the run.
	Events map[core.EventType]int
	// ServedBy names the provider serving after the change.
	ServedBy string
}

// String renders the result as the experiment harness prints it.
func (r ScenarioResult) String() string {
	return fmt.Sprintf("%s: before=%d during=%d after=%d failures=%d reconfig=%v servedBy=%s",
		r.Name, r.OpsBefore, r.OpsDuring, r.OpsAfter, r.Failures, r.ReconfigTime, r.ServedBy)
}

// kvEchoBackend is a trivial in-memory KV used as an alternate provider
// in the scenarios (a stand-in "other service providing the same
// functionality", Section 3.6).
type kvEchoBackend struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMemKV() *kvEchoBackend { return &kvEchoBackend{m: make(map[string][]byte)} }

func (b *kvEchoBackend) Put(_ context.Context, k string, v []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m[k] = append([]byte(nil), v...)
	return nil
}

func (b *kvEchoBackend) PutBatch(_ context.Context, keys []string, vals [][]byte) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("%w: %d keys, %d values", ErrBatchMismatch, len(keys), len(vals))
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, k := range keys {
		b.m[k] = append([]byte(nil), vals[i]...)
	}
	return nil
}

// Import on the stand-in provider is a plain PutBatch: the map has no
// tree to bulk-build, and duplicate keys simply overwrite.
func (b *kvEchoBackend) Import(ctx context.Context, keys []string, vals [][]byte) error {
	return b.PutBatch(ctx, keys, vals)
}

func (b *kvEchoBackend) Get(_ context.Context, k string) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if v, ok := b.m[k]; ok {
		return v, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrKeyNotFound, k)
}

func (b *kvEchoBackend) Delete(_ context.Context, k string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.m, k)
	return nil
}

// Scan returns an unordered best-effort view: the stand-in provider is
// a plain map and serves read-committed-style scans regardless of the
// engine's ScanIsolation — scenario availability checks only count
// operations, they never assert snapshot semantics across providers.
func (b *kvEchoBackend) Scan(_ context.Context, from string, n int) ([]string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []string
	for k := range b.m {
		if k >= from && len(out) < n {
			out = append(out, k)
		}
	}
	return out, nil
}

// GetSnapshot on the stand-in provider is a plain Get: the map holds a
// single version per key, so the latest committed state is the only
// snapshot it can serve.
func (b *kvEchoBackend) GetSnapshot(ctx context.Context, k string) ([]byte, error) {
	return b.Get(ctx, k)
}

// ScanKeysSnapshot likewise degrades to the best-effort Scan.
func (b *kvEchoBackend) ScanKeysSnapshot(ctx context.Context, from string, n int) ([]string, error) {
	return b.Scan(ctx, from, n)
}

func (b *kvEchoBackend) Len() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return uint64(len(b.m))
}

// ScenarioExtension reproduces Figure 5 (flexibility by extension): a
// new component — a Page Coordinator service monitoring the buffer
// manager — is published into the RUNNING architecture while a client
// workload executes. The check: the workload never stops, and the new
// service is discoverable and invocable afterwards.
func ScenarioExtension(ctx context.Context, db *DB, opsPerPhase int) (ScenarioResult, error) {
	res := ScenarioResult{Name: "F5-extension"}
	key := func(i int) string { return fmt.Sprintf("ext-%06d", i%512) }

	run := func(phaseOps *int64) error {
		for i := int64(0); i < int64(opsPerPhase); i++ {
			if err := db.Put(key(int(i)), []byte("v")); err != nil {
				res.Failures++
				continue
			}
			atomic.AddInt64(phaseOps, 1)
		}
		return nil
	}
	if err := run(&res.OpsBefore); err != nil {
		return res, err
	}

	// Runtime extension: deploy the Page Coordinator component.
	start := time.Now()
	pageCoord := &core.Component{
		Name: "page-coordinator",
		Impl: core.ImplementationFunc(func(props *core.Properties, refs map[string]*core.Ref) (core.Service, error) {
			contract := &core.Contract{
				Interface: "sbdms.storage.PageCoordinator",
				Operations: []core.OpSpec{
					{Name: "bufferStats", In: "nil", Out: "map[string]string", Semantic: "monitor.bufferStats"},
				},
				Description: core.Description{Summary: "monitors page/buffer activity (Figure 5)"},
			}
			s := core.NewService("page-coordinator", contract)
			s.Handle("bufferStats", func(ctx context.Context, req any) (any, error) {
				st := db.Pool().Stats()
				return map[string]string{
					"hits":      fmt.Sprint(st.Hits),
					"misses":    fmt.Sprint(st.Misses),
					"evictions": fmt.Sprint(st.Evictions),
					"policy":    db.Pool().PolicyName(),
					"frames":    fmt.Sprint(db.Pool().PoolSize()),
				}, nil
			})
			return core.WithPing(s), nil
		}),
	}
	var during int64
	done := make(chan error, 1)
	go func() { done <- db.Kernel().DeployComponent(ctx, pageCoord) }()
	if err := run(&during); err != nil {
		return res, err
	}
	if err := <-done; err != nil {
		return res, err
	}
	res.OpsDuring = during
	res.ReconfigTime = time.Since(start)

	if err := run(&res.OpsAfter); err != nil {
		return res, err
	}
	// The new functionality is available for reuse.
	ref := db.Kernel().Ref("sbdms.storage.PageCoordinator", nil)
	out, err := ref.Invoke(ctx, "bufferStats", nil)
	if err != nil {
		return res, fmt.Errorf("extension not invocable: %w", err)
	}
	if m, ok := out.(map[string]string); ok {
		res.ServedBy = "page-coordinator (policy=" + m["policy"] + ")"
	}
	res.Events = db.Kernel().Bus().CountByType()
	return res, nil
}

// ScenarioSelection reproduces Figure 6 (flexibility by selection): the
// primary KV provider asks the coordinator to release resources; the
// coordinator steers clients to an alternate provider of the same
// interface, then readmits the primary. The check: zero failed client
// operations across the switch.
func ScenarioSelection(ctx context.Context, db *DB, opsPerPhase int) (ScenarioResult, error) {
	res := ScenarioResult{Name: "F6-selection"}
	if db.kvRef == nil {
		return res, fmt.Errorf("sbdms: selection scenario needs a service-based profile")
	}
	// Alternate provider of the same interface, pre-warmed with the
	// same keys so reads succeed on both.
	alt := newMemKV()
	altSvc := NewKVService("kv-standby", alt)
	if err := db.deploy(ctx, altSvc, map[string]string{"role": "standby"}); err != nil {
		return res, err
	}
	key := func(i int) string { return fmt.Sprintf("sel-%06d", i%256) }
	for i := 0; i < 256; i++ {
		if err := alt.Put(ctx, key(i), []byte("warm")); err != nil {
			return res, err
		}
	}

	run := func(phase *int64) {
		for i := 0; i < opsPerPhase; i++ {
			var err error
			if i%2 == 0 {
				err = db.Put(key(i), []byte("v"))
			} else {
				_, err = db.Get(key(i - 1))
			}
			if err != nil {
				res.Failures++
				continue
			}
			*phase++
		}
	}
	run(&res.OpsBefore)

	// Figure 6: "Release Resources" on the coordinator.
	start := time.Now()
	primary := db.kvRef.Current()
	if primary == "" {
		primary = "kv"
	}
	if _, err := db.kernel.Coordinator().Invoke(ctx, core.OpReleaseResources,
		core.ReleaseResourcesRequest{Service: primary}); err != nil {
		return res, err
	}
	res.ReconfigTime = time.Since(start)
	run(&res.OpsDuring)
	if _, err := db.kvRef.Resolve(); err != nil {
		return res, err
	}
	res.ServedBy = db.kvRef.Current()

	// Restore the primary.
	if _, err := db.kernel.Coordinator().Invoke(ctx, core.OpReleaseResources,
		core.ReleaseResourcesRequest{Service: primary, Restore: true}); err != nil {
		return res, err
	}
	run(&res.OpsAfter)
	res.Events = db.Kernel().Bus().CountByType()
	return res, nil
}

// ScenarioAdaptation reproduces Figure 7 (flexibility by adaptation):
// the only KV provider fails; no same-interface alternate exists, but a
// legacy store with a DIFFERENT interface does. The coordinator
// generates an adaptor service around it and re-registers the
// interface. The check: clients keep operating after a bounded
// reconfiguration window, served through the adaptor.
func ScenarioAdaptation(ctx context.Context, db *DB, opsPerPhase int) (ScenarioResult, error) {
	res := ScenarioResult{Name: "F7-adaptation"}
	if db.kvRef == nil {
		return res, fmt.Errorf("sbdms: adaptation scenario needs a service-based profile")
	}
	// A legacy storage service: same semantics, alien interface
	// (different op names and payload shapes).
	legacy := newMemKV()
	legacyContract := &core.Contract{
		Interface: "sbdms.legacy.Store",
		Operations: []core.OpSpec{
			{Name: "fetch", In: "string", Out: "[]byte", Semantic: "kv.get"},
			{Name: "store", In: "sbdms.legacyPut", Out: "bool", Semantic: "kv.put"},
			{Name: "storeMany", In: "sbdms.legacyBatch", Out: "bool", Semantic: "kv.putBatch"},
			// Bulk loads degrade to a plain batch store: the legacy map
			// has no tree to build, but the semantic is satisfied.
			{Name: "loadAll", In: "sbdms.legacyBatch", Out: "bool", Semantic: "kv.import"},
			{Name: "remove", In: "string", Out: "bool", Semantic: "kv.delete"},
			{Name: "list", In: "sbdms.legacyScan", Out: "[]string", Semantic: "kv.scan"},
			// The legacy store is single-version: its current state IS
			// its newest stable snapshot, so the snapshot-read semantics
			// map onto plain (lock-free) reads under alien names.
			{Name: "peek", In: "string", Out: "[]byte", Semantic: "kv.getSnapshot"},
			{Name: "listStable", In: "sbdms.legacyScan", Out: "[]string", Semantic: "kv.scanSnapshot"},
			{Name: "size", In: "nil", Out: "uint64", Semantic: "kv.len"},
		},
		Description: core.Description{Summary: "legacy store with incompatible interface (Figure 7)"},
	}
	type legacyPut struct {
		K string
		V []byte
	}
	type legacyScan struct {
		From string
		N    int
	}
	type legacyBatch struct {
		Ks []string
		Vs [][]byte
	}
	lsvc := core.NewService("legacy-store", legacyContract)
	lsvc.Handle("fetch", func(ctx context.Context, req any) (any, error) { return legacy.Get(ctx, req.(string)) })
	lsvc.Handle("store", func(ctx context.Context, req any) (any, error) {
		p := req.(legacyPut)
		return true, legacy.Put(ctx, p.K, p.V)
	})
	lsvc.Handle("storeMany", func(ctx context.Context, req any) (any, error) {
		p := req.(legacyBatch)
		return true, legacy.PutBatch(ctx, p.Ks, p.Vs)
	})
	lsvc.Handle("loadAll", func(ctx context.Context, req any) (any, error) {
		p := req.(legacyBatch)
		return true, legacy.Import(ctx, p.Ks, p.Vs)
	})
	lsvc.Handle("remove", func(ctx context.Context, req any) (any, error) { return true, legacy.Delete(ctx, req.(string)) })
	lsvc.Handle("list", func(ctx context.Context, req any) (any, error) {
		p := req.(legacyScan)
		return legacy.Scan(ctx, p.From, p.N)
	})
	lsvc.Handle("peek", func(ctx context.Context, req any) (any, error) { return legacy.Get(ctx, req.(string)) })
	lsvc.Handle("listStable", func(ctx context.Context, req any) (any, error) {
		p := req.(legacyScan)
		return legacy.Scan(ctx, p.From, p.N)
	})
	lsvc.Handle("size", func(ctx context.Context, req any) (any, error) { return legacy.Len(), nil })
	core.WithPing(lsvc)
	if err := db.deploy(ctx, lsvc, map[string]string{"legacy": "true"}); err != nil {
		return res, err
	}

	// Transformation schemas bridging the payload shapes.
	repo := db.kernel.Repository()
	repo.PutTransform("sbdms.KVPutRequest", "sbdms.legacyPut", func(v any) (any, error) {
		r := v.(KVPutRequest)
		return legacyPut{K: r.Key, V: r.Val}, nil
	})
	repo.PutTransform("sbdms.KVScanRequest", "sbdms.legacyScan", func(v any) (any, error) {
		r := v.(KVScanRequest)
		return legacyScan{From: r.Key, N: r.N}, nil
	})
	repo.PutTransform("sbdms.KVBatchRequest", "sbdms.legacyBatch", func(v any) (any, error) {
		r := v.(KVBatchRequest)
		return legacyBatch{Ks: r.Keys, Vs: r.Vals}, nil
	})
	repo.PutTransform("sbdms.KVImportRequest", "sbdms.legacyBatch", func(v any) (any, error) {
		r := v.(KVImportRequest)
		return legacyBatch{Ks: r.Keys, Vs: r.Vals}, nil
	})

	key := func(i int) string { return fmt.Sprintf("adp-%06d", i%256) }
	run := func(phase *int64) {
		for i := 0; i < opsPerPhase; i++ {
			var err error
			if i%2 == 0 {
				err = db.Put(key(i), []byte("v"))
			} else {
				_, err = db.Get(key(i - 1))
			}
			if err != nil {
				res.Failures++
				continue
			}
			*phase++
		}
	}
	run(&res.OpsBefore)

	// Fail every same-interface KV provider ("Page Manager not
	// available").
	start := time.Now()
	var failedAny bool
	for _, reg := range db.kernel.Registry().Discover(IfaceKV) {
		if bs, ok := reg.Invoker.(*core.BaseService); ok {
			bs.SetState(core.StateFailed)
			failedAny = true
		}
		if bound, ok := reg.Invoker.(*core.BoundService); ok {
			if bs, ok := bound.Service.(*core.BaseService); ok {
				bs.SetState(core.StateFailed)
				failedAny = true
			}
		}
	}
	if !failedAny {
		return res, fmt.Errorf("sbdms: no failable KV provider found")
	}
	// One probe sweep detects the failure and repairs via adaptation.
	db.kernel.Coordinator().ProbeOnce(ctx)
	res.ReconfigTime = time.Since(start)

	run(&res.OpsDuring)
	if _, err := db.kvRef.Resolve(); err != nil {
		return res, err
	}
	res.ServedBy = db.kvRef.Current()
	run(&res.OpsAfter)
	res.Events = db.Kernel().Bus().CountByType()
	return res, nil
}
