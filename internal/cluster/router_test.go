package cluster

// Router correctness properties: partitioning is a function (every key
// owned by exactly one shard, stable across fetches and clones), and a
// multi-shard batch is planned under ONE map epoch — when the map bumps
// mid-batch the router either fully retries the whole batch under the
// new epoch or surfaces one typed retryable error. It never leaves a
// batch half-applied under mixed epochs.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func testMap(epoch uint64, shards int) *Map {
	m := &Map{Epoch: epoch}
	for s := 0; s < shards; s++ {
		m.Shards = append(m.Shards, Shard{
			Leader:    NodeID(fmt.Sprintf("s%d-leader", s)),
			Followers: []NodeID{NodeID(fmt.Sprintf("s%d-f0", s))},
		})
	}
	return m
}

func TestShardForExactlyOneOwner(t *testing.T) {
	keys := make([]string, 500)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%05d", i*7)
	}
	for shards := 1; shards <= 8; shards++ {
		m := testMap(1, shards)
		clone := m.Clone()
		counts := make([]int, shards)
		for _, k := range keys {
			s := m.ShardFor(k)
			if s < 0 || s >= shards {
				t.Fatalf("%d shards: key %q mapped out of range: %d", shards, k, s)
			}
			// The owner is a pure function of (key, shard count):
			// re-asking and asking a clone give the same answer.
			if again := m.ShardFor(k); again != s {
				t.Fatalf("%d shards: key %q unstable: %d then %d", shards, k, s, again)
			}
			if cs := clone.ShardFor(k); cs != s {
				t.Fatalf("%d shards: clone disagrees for %q: %d vs %d", shards, k, s, cs)
			}
			counts[s]++
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		if total != len(keys) {
			t.Fatalf("%d shards: %d ownerships for %d keys", shards, total, len(keys))
		}
		if shards > 1 {
			for s, c := range counts {
				if c == 0 {
					t.Fatalf("%d shards: shard %d owns no keys (degenerate hash?)", shards, s)
				}
			}
		}
	}
}

// epochStore simulates the shard nodes' epoch-guarded putBatch handler:
// requests carrying a stale epoch are rejected with the typed error,
// accepted sub-batches are recorded with the epoch they arrived under.
type epochStore struct {
	mu      sync.Mutex
	epoch   uint64
	applied map[NodeID][]appliedBatch
	// afterApply runs after each accepted sub-batch (to bump the epoch
	// mid-batch, deterministically).
	afterApply func(s *epochStore)
}

type appliedBatch struct {
	epoch uint64
	keys  []string
}

func newEpochStore(epoch uint64) *epochStore {
	return &epochStore{epoch: epoch, applied: make(map[NodeID][]appliedBatch)}
}

func (s *epochStore) bump() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch++
}

func (s *epochStore) currentEpoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

func (s *epochStore) Invoke(_ context.Context, node NodeID, _, op string, req any) (any, error) {
	if op != "putBatch" {
		return nil, fmt.Errorf("epochStore: unexpected op %q", op)
	}
	r, ok := req.(BatchReq)
	if !ok {
		return nil, fmt.Errorf("epochStore: unexpected request %T", req)
	}
	s.mu.Lock()
	if r.Epoch != s.epoch {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: want %d, got %d", ErrEpochChanged, s.epoch, r.Epoch)
	}
	s.applied[node] = append(s.applied[node], appliedBatch{epoch: r.Epoch, keys: append([]string(nil), r.Keys...)})
	after := s.afterApply
	s.mu.Unlock()
	if after != nil {
		after(s)
	}
	return true, nil
}

// checkConverged asserts the final state: under the final epoch, each
// shard applied exactly its full group of the batch — no shard holds a
// partial group from a retired epoch as its latest word.
func checkConverged(t *testing.T, store *epochStore, m *Map, keys []string) {
	t.Helper()
	final := store.currentEpoch()
	wantPerShard := make(map[NodeID]map[string]bool)
	for _, k := range keys {
		leader := m.Shards[m.ShardFor(k)].Leader
		if wantPerShard[leader] == nil {
			wantPerShard[leader] = make(map[string]bool)
		}
		wantPerShard[leader][k] = true
	}
	store.mu.Lock()
	defer store.mu.Unlock()
	for leader, want := range wantPerShard {
		batches := store.applied[leader]
		if len(batches) == 0 {
			t.Fatalf("shard %s never applied its group", leader)
		}
		last := batches[len(batches)-1]
		if last.epoch != final {
			t.Fatalf("shard %s latest batch under epoch %d, final epoch %d", leader, last.epoch, final)
		}
		if len(last.keys) != len(want) {
			t.Fatalf("shard %s applied %d keys under final epoch, want %d", leader, len(last.keys), len(want))
		}
		for _, k := range last.keys {
			if !want[k] {
				t.Fatalf("shard %s applied foreign key %q", leader, k)
			}
		}
	}
}

func TestRouterBatchEpochBumpFullRetry(t *testing.T) {
	store := newEpochStore(1)
	m := testMap(1, 3)
	fired := false
	store.afterApply = func(s *epochStore) {
		// The map moves after the FIRST shard's sub-batch is applied:
		// the remaining sub-batches of this plan are now stale.
		if !fired {
			fired = true
			s.bump()
		}
	}
	r := NewRouter(store, func(ctx context.Context) (*Map, error) {
		cur := m.Clone()
		cur.Epoch = store.currentEpoch()
		return cur, nil
	})
	r.RetryBackoff = 0

	keys := make([]string, 60)
	vals := make([][]byte, 60)
	for i := range keys {
		keys[i] = fmt.Sprintf("batch-%04d", i)
		vals[i] = []byte("v")
	}
	if err := r.PutBatch(context.Background(), keys, vals); err != nil {
		t.Fatalf("PutBatch after mid-batch bump: %v", err)
	}
	if !fired {
		t.Fatal("epoch bump never armed — batch landed on one shard?")
	}
	checkConverged(t, store, m, keys)
}

func TestRouterBatchEpochBumpTypedErrorWithoutRetries(t *testing.T) {
	store := newEpochStore(1)
	m := testMap(1, 3)
	fired := false
	store.afterApply = func(s *epochStore) {
		if !fired {
			fired = true
			s.bump()
		}
	}
	r := NewRouter(store, func(ctx context.Context) (*Map, error) {
		cur := m.Clone()
		cur.Epoch = store.currentEpoch()
		return cur, nil
	})
	r.MaxRetries = 0
	r.RetryBackoff = 0

	keys := make([]string, 40)
	vals := make([][]byte, 40)
	for i := range keys {
		keys[i] = fmt.Sprintf("typed-%04d", i)
		vals[i] = []byte("v")
	}
	err := r.PutBatch(context.Background(), keys, vals)
	if err == nil {
		t.Fatal("mid-batch bump with MaxRetries=0: want typed retryable error, got nil")
	}
	if !IsEpochChanged(err) {
		t.Fatalf("mid-batch bump error not retryable-typed: %v", err)
	}
	// The caller retries exactly as the error invites — refresh the
	// map, rerun the whole batch — and converges.
	if _, err := r.Refresh(context.Background()); err != nil {
		t.Fatalf("refresh: %v", err)
	}
	if err := r.PutBatch(context.Background(), keys, vals); err != nil {
		t.Fatalf("manual retry after typed error: %v", err)
	}
	checkConverged(t, store, m, keys)
}

func TestRouterReplanExhaustion(t *testing.T) {
	store := newEpochStore(1)
	m := testMap(1, 2)
	store.afterApply = func(s *epochStore) { s.bump() } // moves EVERY time: never converges
	r := NewRouter(store, func(ctx context.Context) (*Map, error) {
		cur := m.Clone()
		cur.Epoch = store.currentEpoch()
		return cur, nil
	})
	r.MaxRetries = 3
	r.RetryBackoff = 0

	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	vals := make([][]byte, len(keys))
	for i := range vals {
		vals[i] = []byte("v")
	}
	err := r.PutBatch(context.Background(), keys, vals)
	if err == nil {
		t.Fatal("perpetually-moving map: want exhaustion error, got nil")
	}
	if !errors.Is(err, ErrEpochChanged) {
		t.Fatalf("exhaustion error not typed: %v", err)
	}
}
