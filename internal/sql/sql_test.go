package sql

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/buffer"
	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/undo"
	"repro/internal/wal"
)

// newEngine builds a full engine over an in-memory disk with WAL and
// transactions.
func newEngine(t *testing.T) *Engine {
	t.Helper()
	d, err := storage.OpenDisk(storage.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	pool := buffer.New(d, 128, buffer.NewLRU())
	fm, err := storage.OpenFileManager(pool)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := catalog.Open(fm, pool)
	if err != nil {
		t.Fatal(err)
	}
	l, err := wal.Open(storage.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	pool.SetBeforeEvict(l.BeforeEvict())
	mgr := txn.NewManager(l, pool)
	e := NewEngine(fm, pool, cat, mgr)
	e.SetWAL(l)
	wireUndo(e, pool, l, mgr)
	return e
}

// wireUndo installs the logical-undo executor, as sbdms.Open does.
func wireUndo(e *Engine, pool *buffer.Manager, l *wal.Log, mgr *txn.Manager) {
	ex := undo.NewExecutor(pool, l)
	ex.SetSystemTxns(mgr.SystemHooksHeldLatches())
	mgr.SetUndoHandler(ex)
	e.SetUndo(ex)
}

func seedUsers(t *testing.T, e *Engine) {
	t.Helper()
	ctx := context.Background()
	mustExec(t, e, "CREATE TABLE users (id INT NOT NULL, name TEXT, age INT)")
	_, err := e.Execute(ctx, `INSERT INTO users (id, name, age) VALUES
		(1, 'ann', 30), (2, 'bob', 25), (3, 'cay', 35), (4, 'dan', 25), (5, 'eve', NULL)`)
	if err != nil {
		t.Fatal(err)
	}
}

func mustExec(t *testing.T, e *Engine, q string) *Result {
	t.Helper()
	r, err := e.Execute(context.Background(), q)
	if err != nil {
		t.Fatalf("%q: %v", q, err)
	}
	return r
}

func queryInts(t *testing.T, e *Engine, q string) []int64 {
	t.Helper()
	r := mustExec(t, e, q)
	out := make([]int64, 0, len(r.Rows))
	for _, row := range r.Rows {
		out = append(out, row[0].Int)
	}
	return out
}

func TestCreateInsertSelect(t *testing.T) {
	e := newEngine(t)
	seedUsers(t, e)
	r := mustExec(t, e, "SELECT * FROM users")
	if len(r.Rows) != 5 || len(r.Cols) != 3 {
		t.Fatalf("rows=%d cols=%v", len(r.Rows), r.Cols)
	}
	if r.Cols[0] != "id" || r.Cols[1] != "name" {
		t.Fatalf("cols = %v", r.Cols)
	}
}

func TestWhereAndProjection(t *testing.T) {
	e := newEngine(t)
	seedUsers(t, e)
	r := mustExec(t, e, "SELECT name, age * 2 AS dbl FROM users WHERE age >= 30 ORDER BY name")
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Rows[0][0].Str != "ann" || r.Rows[0][1].Int != 60 {
		t.Fatalf("row = %v", r.Rows[0])
	}
	if r.Cols[1] != "dbl" {
		t.Fatalf("cols = %v", r.Cols)
	}
	// NULL age excluded by comparison semantics.
	r = mustExec(t, e, "SELECT name FROM users WHERE age < 100")
	if len(r.Rows) != 4 {
		t.Fatalf("null row must not match: %v", r.Rows)
	}
	r = mustExec(t, e, "SELECT name FROM users WHERE age IS NULL")
	if len(r.Rows) != 1 || r.Rows[0][0].Str != "eve" {
		t.Fatalf("IS NULL = %v", r.Rows)
	}
}

func TestOrderLimitOffset(t *testing.T) {
	e := newEngine(t)
	seedUsers(t, e)
	got := queryInts(t, e, "SELECT id FROM users ORDER BY id DESC LIMIT 2 OFFSET 1")
	if fmt.Sprint(got) != "[4 3]" {
		t.Fatalf("got %v", got)
	}
	// ORDER BY column that is projected away (pre-projection sort).
	r := mustExec(t, e, "SELECT name FROM users WHERE age IS NOT NULL ORDER BY age, name")
	want := []string{"bob", "dan", "ann", "cay"}
	for i, w := range want {
		if r.Rows[i][0].Str != w {
			t.Fatalf("order = %v", r.Rows)
		}
	}
	// ORDER BY output alias (post-projection sort).
	r = mustExec(t, e, "SELECT age * 2 AS dbl FROM users WHERE age IS NOT NULL ORDER BY dbl DESC LIMIT 1")
	if r.Rows[0][0].Int != 70 {
		t.Fatalf("alias order = %v", r.Rows)
	}
}

func TestUpdateDelete(t *testing.T) {
	e := newEngine(t)
	seedUsers(t, e)
	r := mustExec(t, e, "UPDATE users SET age = age + 1 WHERE age = 25")
	if r.Affected != 2 {
		t.Fatalf("affected = %d", r.Affected)
	}
	got := queryInts(t, e, "SELECT COUNT(*) FROM users WHERE age = 26")
	if got[0] != 2 {
		t.Fatalf("updated rows = %d", got[0])
	}
	r = mustExec(t, e, "DELETE FROM users WHERE age = 26")
	if r.Affected != 2 {
		t.Fatalf("deleted = %d", r.Affected)
	}
	if got := queryInts(t, e, "SELECT COUNT(*) FROM users"); got[0] != 3 {
		t.Fatalf("remaining = %d", got[0])
	}
	// DELETE without WHERE clears the table.
	mustExec(t, e, "DELETE FROM users")
	if got := queryInts(t, e, "SELECT COUNT(*) FROM users"); got[0] != 0 {
		t.Fatalf("count = %d", got[0])
	}
}

func TestAggregates(t *testing.T) {
	e := newEngine(t)
	seedUsers(t, e)
	r := mustExec(t, e, "SELECT COUNT(*), COUNT(age), SUM(age), AVG(age), MIN(age), MAX(age) FROM users")
	row := r.Rows[0]
	if row[0].Int != 5 || row[1].Int != 4 || row[2].Int != 115 || row[3].Float != 28.75 ||
		row[4].Int != 25 || row[5].Int != 35 {
		t.Fatalf("aggs = %v", row)
	}
	// GROUP BY + HAVING + ORDER BY.
	r = mustExec(t, e, `SELECT age, COUNT(*) AS n FROM users
		WHERE age IS NOT NULL GROUP BY age HAVING COUNT(*) > 1 ORDER BY age`)
	if len(r.Rows) != 1 || r.Rows[0][0].Int != 25 || r.Rows[0][1].Int != 2 {
		t.Fatalf("group = %v", r.Rows)
	}
}

func TestJoins(t *testing.T) {
	e := newEngine(t)
	seedUsers(t, e)
	mustExec(t, e, "CREATE TABLE orders (oid INT, user_id INT, total FLOAT)")
	mustExec(t, e, `INSERT INTO orders VALUES (100, 1, 9.5), (101, 2, 15.0), (102, 1, 3.25), (103, 9, 1.0)`)
	r := mustExec(t, e, `SELECT u.name, o.total FROM users u JOIN orders o ON u.id = o.user_id ORDER BY o.total`)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Rows[0][0].Str != "ann" || r.Rows[0][1].Float != 3.25 {
		t.Fatalf("first = %v", r.Rows[0])
	}
	// Aggregation over a join.
	r = mustExec(t, e, `SELECT u.name, SUM(o.total) AS spent FROM users u
		JOIN orders o ON u.id = o.user_id GROUP BY u.name ORDER BY spent DESC`)
	if len(r.Rows) != 2 || r.Rows[0][0].Str != "bob" || r.Rows[1][1].Float != 12.75 {
		t.Fatalf("joined agg = %v", r.Rows)
	}
	// Cross join via comma.
	r = mustExec(t, e, "SELECT COUNT(*) FROM users, orders")
	if r.Rows[0][0].Int != 20 {
		t.Fatalf("cross = %v", r.Rows)
	}
	// Non-equi join falls back to nested loops.
	r = mustExec(t, e, "SELECT COUNT(*) FROM users u JOIN orders o ON u.id < o.user_id")
	if r.Rows[0][0].Int == 0 {
		t.Fatalf("non-equi join empty")
	}
}

func TestIndexUsageAndMaintenance(t *testing.T) {
	e := newEngine(t)
	seedUsers(t, e)
	mustExec(t, e, "CREATE INDEX idx_age ON users (age)")
	// Equality probe via the index.
	got := queryInts(t, e, "SELECT id FROM users WHERE age = 25 ORDER BY id")
	if fmt.Sprint(got) != "[2 4]" {
		t.Fatalf("got %v", got)
	}
	// Range via the index + residual filter.
	got = queryInts(t, e, "SELECT id FROM users WHERE age >= 30 AND name != 'cay'")
	if fmt.Sprint(got) != "[1]" {
		t.Fatalf("got %v", got)
	}
	// Index maintained across UPDATE/DELETE/INSERT.
	mustExec(t, e, "UPDATE users SET age = 99 WHERE id = 2")
	got = queryInts(t, e, "SELECT id FROM users WHERE age = 99")
	if fmt.Sprint(got) != "[2]" {
		t.Fatalf("after update: %v", got)
	}
	if got = queryInts(t, e, "SELECT id FROM users WHERE age = 25"); fmt.Sprint(got) != "[4]" {
		t.Fatalf("stale index entry: %v", got)
	}
	mustExec(t, e, "DELETE FROM users WHERE id = 4")
	if got = queryInts(t, e, "SELECT id FROM users WHERE age = 25"); len(got) != 0 {
		t.Fatalf("after delete: %v", got)
	}
	mustExec(t, e, "INSERT INTO users VALUES (6, 'fay', 25)")
	if got = queryInts(t, e, "SELECT id FROM users WHERE age = 25"); fmt.Sprint(got) != "[6]" {
		t.Fatalf("after insert: %v", got)
	}
	mustExec(t, e, "DROP INDEX idx_age")
	// Queries still work via seq scan.
	if got = queryInts(t, e, "SELECT id FROM users WHERE age = 25"); fmt.Sprint(got) != "[6]" {
		t.Fatalf("after drop index: %v", got)
	}
}

func TestUniqueIndexConstraint(t *testing.T) {
	e := newEngine(t)
	seedUsers(t, e)
	mustExec(t, e, "CREATE UNIQUE INDEX idx_id ON users (id)")
	_, err := e.Execute(context.Background(), "INSERT INTO users VALUES (1, 'dup', 1)")
	if err == nil {
		t.Fatal("duplicate id must fail")
	}
	// The failed insert left no trace.
	if got := queryInts(t, e, "SELECT COUNT(*) FROM users"); got[0] != 5 {
		t.Fatalf("count = %d", got[0])
	}
	if got := queryInts(t, e, "SELECT COUNT(*) FROM users WHERE id = 1"); got[0] != 1 {
		t.Fatalf("id=1 rows = %d", got[0])
	}
}

func TestNotNullAndArity(t *testing.T) {
	e := newEngine(t)
	seedUsers(t, e)
	ctx := context.Background()
	if _, err := e.Execute(ctx, "INSERT INTO users (name) VALUES ('ghost')"); !errors.Is(err, ErrNotNull) {
		t.Fatalf("err = %v", err)
	}
	if _, err := e.Execute(ctx, "INSERT INTO users (id, name) VALUES (9)"); !errors.Is(err, ErrArity) {
		t.Fatalf("err = %v", err)
	}
	if _, err := e.Execute(ctx, "UPDATE users SET id = NULL WHERE id = 1"); !errors.Is(err, ErrNotNull) {
		t.Fatalf("err = %v", err)
	}
	// Type coercion int->float and rejection of mismatches.
	mustExec(t, e, "CREATE TABLE m (f FLOAT)")
	mustExec(t, e, "INSERT INTO m VALUES (3)")
	r := mustExec(t, e, "SELECT f FROM m")
	if r.Rows[0][0].Type != access.TypeFloat || r.Rows[0][0].Float != 3 {
		t.Fatalf("coerced = %v", r.Rows[0][0])
	}
	if _, err := e.Execute(ctx, "INSERT INTO m VALUES ('nope')"); err == nil {
		t.Fatal("type mismatch must fail")
	}
}

func TestViews(t *testing.T) {
	e := newEngine(t)
	seedUsers(t, e)
	mustExec(t, e, "CREATE VIEW adults AS SELECT id, name FROM users WHERE age >= 30")
	r := mustExec(t, e, "SELECT name FROM adults ORDER BY name")
	if len(r.Rows) != 2 || r.Rows[0][0].Str != "ann" {
		t.Fatalf("view rows = %v", r.Rows)
	}
	// Join a view with a table.
	mustExec(t, e, "CREATE TABLE tags (user_id INT, tag TEXT)")
	mustExec(t, e, "INSERT INTO tags VALUES (1, 'vip'), (3, 'vip'), (2, 'basic')")
	r = mustExec(t, e, `SELECT a.name, t.tag FROM adults a JOIN tags t ON a.id = t.user_id ORDER BY a.name`)
	if len(r.Rows) != 2 || r.Rows[0][1].Str != "vip" {
		t.Fatalf("view join = %v", r.Rows)
	}
	mustExec(t, e, "DROP VIEW adults")
	if _, err := e.Execute(context.Background(), "SELECT * FROM adults"); err == nil {
		t.Fatal("dropped view must not resolve")
	}
}

func TestTransactionsCommitRollback(t *testing.T) {
	e := newEngine(t)
	seedUsers(t, e)
	ctx := context.Background()
	mustExec(t, e, "BEGIN")
	mustExec(t, e, "INSERT INTO users VALUES (10, 'tmp', 1)")
	if got := queryInts(t, e, "SELECT COUNT(*) FROM users"); got[0] != 6 {
		t.Fatalf("in-txn count = %d", got[0])
	}
	mustExec(t, e, "ROLLBACK")
	if got := queryInts(t, e, "SELECT COUNT(*) FROM users"); got[0] != 5 {
		t.Fatalf("after rollback = %d", got[0])
	}
	mustExec(t, e, "BEGIN")
	mustExec(t, e, "UPDATE users SET age = 40 WHERE id = 1")
	mustExec(t, e, "COMMIT")
	if got := queryInts(t, e, "SELECT age FROM users WHERE id = 1"); got[0] != 40 {
		t.Fatalf("after commit = %d", got[0])
	}
	if _, err := e.Execute(ctx, "COMMIT"); !errors.Is(err, ErrNoActiveTxn) {
		t.Fatalf("err = %v", err)
	}
	mustExec(t, e, "BEGIN")
	if _, err := e.Execute(ctx, "BEGIN"); !errors.Is(err, ErrTxnOpen) {
		t.Fatalf("err = %v", err)
	}
	mustExec(t, e, "ROLLBACK")
}

func TestDistinct(t *testing.T) {
	e := newEngine(t)
	seedUsers(t, e)
	got := queryInts(t, e, "SELECT DISTINCT age FROM users WHERE age IS NOT NULL ORDER BY age")
	if fmt.Sprint(got) != "[25 30 35]" {
		t.Fatalf("got %v", got)
	}
}

func TestDropTable(t *testing.T) {
	e := newEngine(t)
	seedUsers(t, e)
	mustExec(t, e, "CREATE INDEX idx_age ON users (age)")
	mustExec(t, e, "DROP TABLE users")
	if _, err := e.Execute(context.Background(), "SELECT * FROM users"); err == nil {
		t.Fatal("dropped table must not resolve")
	}
	// Name reusable.
	mustExec(t, e, "CREATE TABLE users (id INT)")
	mustExec(t, e, "INSERT INTO users VALUES (1)")
	if got := queryInts(t, e, "SELECT COUNT(*) FROM users"); got[0] != 1 {
		t.Fatalf("recreated count = %d", got[0])
	}
}

func TestParserErrors(t *testing.T) {
	bad := []string{
		"",
		"FLY ME TO THE MOON",
		"SELECT",
		"SELECT FROM users",
		"CREATE TABLE t",
		"CREATE TABLE t ()",
		"INSERT users VALUES (1)",
		"SELECT * FROM users WHERE",
		"SELECT * FROM users LIMIT 'x'",
		"SELECT SUM(*) FROM users",
		"SELECT * FROM users ORDER",
		"INSERT INTO t VALUES (1",
		"SELECT 'unterminated FROM t",
		"CREATE UNIQUE TABLE t (a INT)",
		"SELECT * FROM users; SELECT 1",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestParserFeatures(t *testing.T) {
	// Escaped quotes, comments, expressions without FROM.
	e := newEngine(t)
	r := mustExec(t, e, "SELECT 1 + 2 * 3 AS x, 'it''s' AS s -- trailing comment")
	if r.Rows[0][0].Int != 7 || r.Rows[0][1].Str != "it's" {
		t.Fatalf("row = %v", r.Rows[0])
	}
	// Unary minus and parens.
	r = mustExec(t, e, "SELECT -(2 + 3) * 2")
	if r.Rows[0][0].Int != -10 {
		t.Fatalf("row = %v", r.Rows[0])
	}
	// Boolean literals and <> operator.
	r = mustExec(t, e, "SELECT TRUE, FALSE, 1 <> 2")
	if !r.Rows[0][0].Bool || r.Rows[0][1].Bool || !r.Rows[0][2].Bool {
		t.Fatalf("row = %v", r.Rows[0])
	}
}

func TestEnginePersistenceAcrossReopen(t *testing.T) {
	dev := storage.NewMemDevice()
	logDev := storage.NewMemDevice()
	open := func() *Engine {
		d, err := storage.OpenDisk(dev)
		if err != nil {
			t.Fatal(err)
		}
		l, err := wal.Open(logDev)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := wal.Recover(l, d); err != nil {
			t.Fatal(err)
		}
		pool := buffer.New(d, 128, buffer.NewLRU())
		pool.SetBeforeEvict(l.BeforeEvict())
		fm, err := storage.OpenFileManager(pool)
		if err != nil {
			t.Fatal(err)
		}
		cat, err := catalog.Open(fm, pool)
		if err != nil {
			t.Fatal(err)
		}
		mgr := txn.NewManager(l, pool)
		e := NewEngine(fm, pool, cat, mgr)
		e.SetWAL(l)
		wireUndo(e, pool, l, mgr)
		return e
	}
	e := open()
	mustExec(t, e, "CREATE TABLE kv (k TEXT NOT NULL, v INT)")
	mustExec(t, e, "CREATE INDEX idx_k ON kv (k)")
	mustExec(t, e, "INSERT INTO kv VALUES ('a', 1), ('b', 2)")
	// Simulate clean-ish shutdown of data pages for the committed work.
	if err := e.Pool().FlushAll(); err != nil {
		t.Fatal(err)
	}

	e2 := open()
	r := mustExec(t, e2, "SELECT v FROM kv WHERE k = 'b'")
	if len(r.Rows) != 1 || r.Rows[0][0].Int != 2 {
		t.Fatalf("reopened rows = %v", r.Rows)
	}
	tbl, err := e2.Catalog().GetTable("kv")
	if err != nil || len(tbl.Indexes) != 1 {
		t.Fatalf("catalog lost index: %v, %v", tbl, err)
	}
}

func TestEngineCrashRecovery(t *testing.T) {
	dev := storage.NewMemDevice()
	logDev := storage.NewMemDevice()
	d, _ := storage.OpenDisk(dev)
	l, _ := wal.Open(logDev)
	pool := buffer.New(d, 128, buffer.NewLRU())
	pool.SetBeforeEvict(l.BeforeEvict())
	fm, _ := storage.OpenFileManager(pool)
	mgr := txn.NewManager(l, pool)
	// Log directory updates under system transactions, as sbdms.Open
	// wires it, so recovery can reach the table's pages.
	fm.SetLogger(mgr.PageLogger())
	cat, _ := catalog.Open(fm, pool)
	e := NewEngine(fm, pool, cat, mgr)
	e.SetWAL(l)
	wireUndo(e, pool, l, mgr)
	mustExec(t, e, "CREATE TABLE kv (k TEXT, v INT)")
	mustExec(t, e, "INSERT INTO kv VALUES ('committed', 1)")
	// Crash: no FlushAll. Committed work lives only in WAL + whatever
	// the pool happened to write.

	d2, err := storage.OpenDisk(dev)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := wal.Open(logDev)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wal.Recover(l2, d2); err != nil {
		t.Fatal(err)
	}
	pool2 := buffer.New(d2, 128, buffer.NewLRU())
	pool2.SetBeforeEvict(l2.BeforeEvict())
	fm2, err := storage.OpenFileManager(pool2)
	if err != nil {
		t.Fatal(err)
	}
	cat2, err := catalog.Open(fm2, pool2)
	if err != nil {
		t.Fatal(err)
	}
	e2 := NewEngine(fm2, pool2, cat2, txn.NewManager(l2, pool2))
	e2.SetWAL(l2)
	r := mustExec(t, e2, "SELECT k FROM kv")
	if len(r.Rows) != 1 || r.Rows[0][0].Str != "committed" {
		t.Fatalf("recovered rows = %v", r.Rows)
	}
}

func TestLockingBetweenSessions(t *testing.T) {
	// Two engines over the same storage share a txn manager: writer
	// blocks writer.
	d, _ := storage.OpenDisk(storage.NewMemDevice())
	pool := buffer.New(d, 128, buffer.NewLRU())
	fm, _ := storage.OpenFileManager(pool)
	cat, _ := catalog.Open(fm, pool)
	mgr := txn.NewManager(nil, pool)
	e1 := NewEngine(fm, pool, cat, mgr)
	e2 := NewEngine(fm, pool, cat, mgr)
	mustExec(t, e1, "CREATE TABLE t (a INT)")
	mustExec(t, e1, "BEGIN")
	mustExec(t, e1, "INSERT INTO t VALUES (1)")

	done := make(chan error, 1)
	go func() {
		_, err := e2.Execute(context.Background(), "INSERT INTO t VALUES (2)")
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("second writer should block, got %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	mustExec(t, e1, "COMMIT")
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	r := mustExec(t, e1, "SELECT COUNT(*) FROM t")
	if r.Rows[0][0].Int != 2 {
		t.Fatalf("count = %v", r.Rows)
	}
}

func TestSelectStarExpansionWithJoin(t *testing.T) {
	e := newEngine(t)
	seedUsers(t, e)
	mustExec(t, e, "CREATE TABLE pets (owner_id INT, pet TEXT)")
	mustExec(t, e, "INSERT INTO pets VALUES (1, 'cat')")
	r := mustExec(t, e, "SELECT * FROM users u JOIN pets p ON u.id = p.owner_id")
	if len(r.Cols) != 5 || len(r.Rows) != 1 {
		t.Fatalf("cols = %v rows = %v", r.Cols, r.Rows)
	}
	if r.Cols[3] != "owner_id" || r.Rows[0][4].Str != "cat" {
		t.Fatalf("star expansion = %v / %v", r.Cols, r.Rows[0])
	}
}

func TestAmbiguousColumnRejected(t *testing.T) {
	e := newEngine(t)
	seedUsers(t, e)
	mustExec(t, e, "CREATE TABLE others (id INT)")
	mustExec(t, e, "INSERT INTO others VALUES (1)")
	_, err := e.Execute(context.Background(), "SELECT id FROM users u JOIN others o ON u.id = o.id")
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("err = %v", err)
	}
}

func TestAggCallOutsideGroupErrors(t *testing.T) {
	var a AggCall = AggCall{Func: exec.AggCount}
	if _, err := a.Eval(nil, nil); err == nil {
		t.Fatal("bare aggregate eval must fail")
	}
	if a.String() != "COUNT(*)" {
		t.Fatalf("String = %s", a.String())
	}
}
