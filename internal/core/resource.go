package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Resource management errors.
var (
	// ErrResourceExhausted is returned when an acquisition exceeds the
	// resource budget.
	ErrResourceExhausted = errors.New("core: resource exhausted")
)

// ResourceBudget describes one named, bounded resource (memory frames,
// battery units, worker slots ...). LowWatermark is the fraction of
// capacity remaining below which a low-resource event fires (Section 4:
// "In case of a low resource alert ... the SBDMS architecture can
// direct the workload to other devices").
type ResourceBudget struct {
	Name         string
	Capacity     int64
	LowWatermark float64 // e.g. 0.1 fires when <10% remains
}

type resourceState struct {
	budget ResourceBudget
	used   int64
	lowSet bool
}

// ResourceManager is the resource management process of Section 3.1:
// it tracks service working states, manages bounded resources, and
// publishes notifications (low-resource alerts, releases) on the event
// bus for coordinator services to act upon.
type ResourceManager struct {
	mu        sync.Mutex
	resources map[string]*resourceState
	states    map[string]State // service working states, by service name
	bus       *EventBus
}

// NewResourceManager creates a resource manager publishing to bus
// (which may be nil).
func NewResourceManager(bus *EventBus) *ResourceManager {
	return &ResourceManager{
		resources: make(map[string]*resourceState),
		states:    make(map[string]State),
		bus:       bus,
	}
}

// DefineResource declares (or redefines) a bounded resource.
func (rm *ResourceManager) DefineResource(b ResourceBudget) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	prev := rm.resources[b.Name]
	st := &resourceState{budget: b}
	if prev != nil {
		st.used = prev.used
	}
	rm.resources[b.Name] = st
}

// Acquire reserves n units of a resource, failing with
// ErrResourceExhausted when the budget would be exceeded. Crossing the
// low watermark publishes EventLowResources once until usage recedes.
func (rm *ResourceManager) Acquire(name string, n int64) error {
	rm.mu.Lock()
	st, ok := rm.resources[name]
	if !ok {
		rm.mu.Unlock()
		return fmt.Errorf("%w: resource %s", ErrNotFound, name)
	}
	if st.used+n > st.budget.Capacity {
		rm.mu.Unlock()
		return fmt.Errorf("%w: %s (used %d + %d > cap %d)",
			ErrResourceExhausted, name, st.used, n, st.budget.Capacity)
	}
	st.used += n
	fireLow := rm.checkLowLocked(st)
	rm.mu.Unlock()
	if fireLow {
		rm.publish(EventLowResources, name, fmt.Sprintf("usage %d/%d", st.used, st.budget.Capacity))
	}
	return nil
}

// Release returns n units of a resource. Over-release clamps to zero.
// When usage recedes above the watermark, EventResourcesReleased is
// published so coordinators can undo load-shedding measures.
func (rm *ResourceManager) Release(name string, n int64) {
	rm.mu.Lock()
	st, ok := rm.resources[name]
	if !ok {
		rm.mu.Unlock()
		return
	}
	st.used -= n
	if st.used < 0 {
		st.used = 0
	}
	recovered := false
	if st.lowSet {
		remaining := float64(st.budget.Capacity-st.used) / float64(st.budget.Capacity)
		if remaining > st.budget.LowWatermark {
			st.lowSet = false
			recovered = true
		}
	}
	used, capn := st.used, st.budget.Capacity
	rm.mu.Unlock()
	if recovered {
		rm.publish(EventResourcesReleased, name, fmt.Sprintf("usage %d/%d", used, capn))
	}
}

func (rm *ResourceManager) checkLowLocked(st *resourceState) bool {
	if st.budget.Capacity <= 0 || st.lowSet {
		return false
	}
	remaining := float64(st.budget.Capacity-st.used) / float64(st.budget.Capacity)
	if remaining <= st.budget.LowWatermark {
		st.lowSet = true
		return true
	}
	return false
}

// Usage returns (used, capacity) for a resource.
func (rm *ResourceManager) Usage(name string) (int64, int64, error) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	st, ok := rm.resources[name]
	if !ok {
		return 0, 0, fmt.Errorf("%w: resource %s", ErrNotFound, name)
	}
	return st.used, st.budget.Capacity, nil
}

// Resources returns the sorted names of defined resources.
func (rm *ResourceManager) Resources() []string {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	out := make([]string, 0, len(rm.resources))
	for k := range rm.resources {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SetServiceState records a service working state and publishes
// degradation/failure/recovery events on transitions.
func (rm *ResourceManager) SetServiceState(service string, st State) {
	rm.mu.Lock()
	prev, had := rm.states[service]
	rm.states[service] = st
	rm.mu.Unlock()
	if had && prev == st {
		return
	}
	switch st {
	case StateFailed:
		rm.publish(EventServiceFailed, service, "state "+st.String())
	case StateDegraded:
		rm.publish(EventServiceDegraded, service, "state "+st.String())
	case StateRunning:
		if had && (prev == StateFailed || prev == StateDegraded) {
			rm.publish(EventServiceRecovered, service, "state "+st.String())
		}
	}
}

// ServiceState returns the recorded working state of a service.
func (rm *ResourceManager) ServiceState(service string) (State, bool) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	st, ok := rm.states[service]
	return st, ok
}

// ServiceStates returns a snapshot of all recorded working states.
func (rm *ResourceManager) ServiceStates() map[string]State {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	out := make(map[string]State, len(rm.states))
	for k, v := range rm.states {
		out[k] = v
	}
	return out
}

func (rm *ResourceManager) publish(t EventType, subject, detail string) {
	if rm.bus != nil {
		rm.bus.Publish(Event{Type: t, Subject: subject, Detail: detail})
	}
}
