package access

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/storage"
)

func newSlotted() *SlottedPage {
	return InitSlotted(storage.NewPage(1, storage.PageTypeHeap))
}

func TestSlottedInsertGet(t *testing.T) {
	sp := newSlotted()
	s0, err := sp.Insert([]byte("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := sp.Insert([]byte("beta"))
	if err != nil {
		t.Fatal(err)
	}
	if s0 == s1 {
		t.Fatal("slots must differ")
	}
	got, err := sp.Get(s0)
	if err != nil || string(got) != "alpha" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	got, _ = sp.Get(s1)
	if string(got) != "beta" {
		t.Fatalf("Get = %q", got)
	}
	if sp.NumRecords() != 2 || sp.NumSlots() != 2 {
		t.Fatalf("counts = %d/%d", sp.NumRecords(), sp.NumSlots())
	}
	if _, err := sp.Get(99); !errors.Is(err, ErrNoSlot) {
		t.Fatalf("err = %v", err)
	}
	if _, err := sp.Get(-1); !errors.Is(err, ErrNoSlot) {
		t.Fatalf("err = %v", err)
	}
}

func TestSlottedDeleteAndSlotReuse(t *testing.T) {
	sp := newSlotted()
	s0, _ := sp.Insert([]byte("one"))
	s1, _ := sp.Insert([]byte("two"))
	if err := sp.Delete(s0); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Get(s0); !errors.Is(err, ErrNoSlot) {
		t.Fatal("deleted slot must not read")
	}
	if err := sp.Delete(s0); !errors.Is(err, ErrNoSlot) {
		t.Fatal("double delete must fail")
	}
	if sp.NumRecords() != 1 {
		t.Fatalf("records = %d", sp.NumRecords())
	}
	// New insert reuses the dead slot.
	s2, _ := sp.Insert([]byte("three"))
	if s2 != s0 {
		t.Fatalf("slot reuse: got %d want %d", s2, s0)
	}
	if got, _ := sp.Get(s1); string(got) != "two" {
		t.Fatal("unrelated record damaged")
	}
}

func TestSlottedUpdateInPlaceAndRelocate(t *testing.T) {
	sp := newSlotted()
	s, _ := sp.Insert([]byte("abcdef"))
	// Shrink in place.
	if err := sp.Update(s, []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	if got, _ := sp.Get(s); string(got) != "xyz" {
		t.Fatalf("Get = %q", got)
	}
	// Grow within the page.
	if err := sp.Update(s, bytes.Repeat([]byte("G"), 100)); err != nil {
		t.Fatal(err)
	}
	got, _ := sp.Get(s)
	if len(got) != 100 || got[0] != 'G' {
		t.Fatalf("grown record = %d bytes", len(got))
	}
	if err := sp.Update(99, []byte("x")); !errors.Is(err, ErrNoSlot) {
		t.Fatalf("err = %v", err)
	}
}

func TestSlottedFullPage(t *testing.T) {
	sp := newSlotted()
	rec := bytes.Repeat([]byte("R"), 400)
	n := 0
	for {
		if _, err := sp.Insert(rec); err != nil {
			if !errors.Is(err, ErrPageFull) {
				t.Fatal(err)
			}
			break
		}
		n++
	}
	if n < 9 || n > 10 {
		t.Fatalf("inserted %d 400-byte records into a 4KB page", n)
	}
	// Oversized record fails outright.
	if _, err := sp.Insert(make([]byte, storage.PayloadSize)); !errors.Is(err, ErrPageFull) {
		t.Fatalf("err = %v", err)
	}
	// Deleting one makes room again (compaction reclaims the hole).
	if err := sp.Delete(0); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Insert(rec); err != nil {
		t.Fatalf("insert after delete: %v", err)
	}
}

func TestSlottedCompactPreservesRecords(t *testing.T) {
	sp := newSlotted()
	var slots []int
	for i := 0; i < 20; i++ {
		s, err := sp.Insert([]byte(fmt.Sprintf("record-%02d", i)))
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	// Delete every third record, compact, verify the rest.
	deleted := map[int]bool{}
	for i := 0; i < 20; i += 3 {
		_ = sp.Delete(slots[i])
		deleted[i] = true
	}
	freeBefore := sp.FreeSpace()
	sp.Compact()
	if sp.FreeSpace() < freeBefore {
		t.Fatal("compaction must not lose space")
	}
	for i, s := range slots {
		got, err := sp.Get(s)
		if deleted[i] {
			if !errors.Is(err, ErrNoSlot) {
				t.Fatalf("slot %d should stay deleted", s)
			}
			continue
		}
		if err != nil || string(got) != fmt.Sprintf("record-%02d", i) {
			t.Fatalf("slot %d: %q, %v", s, got, err)
		}
	}
}

func TestSlottedRecordsIteration(t *testing.T) {
	sp := newSlotted()
	for i := 0; i < 5; i++ {
		if _, err := sp.Insert([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	_ = sp.Delete(2)
	var seen []int
	err := sp.Records(func(slot int, rec []byte) error {
		seen = append(seen, slot)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 {
		t.Fatalf("seen = %v", seen)
	}
	// Early error propagates.
	wantErr := errors.New("stop")
	if err := sp.Records(func(int, []byte) error { return wantErr }); !errors.Is(err, wantErr) {
		t.Fatal("error must propagate")
	}
}

// Property: a random interleaving of inserts, deletes and updates keeps
// every live record intact.
func TestSlottedFuzzQuick(t *testing.T) {
	f := func(ops []uint16) bool {
		sp := newSlotted()
		live := map[int][]byte{}
		for _, op := range ops {
			switch op % 3 {
			case 0: // insert
				rec := bytes.Repeat([]byte{byte(op)}, int(op%64)+1)
				s, err := sp.Insert(rec)
				if errors.Is(err, ErrPageFull) {
					continue
				}
				if err != nil {
					return false
				}
				live[s] = rec
			case 1: // delete a random live slot
				for s := range live {
					if err := sp.Delete(s); err != nil {
						return false
					}
					delete(live, s)
					break
				}
			case 2: // update a random live slot
				for s := range live {
					rec := bytes.Repeat([]byte{byte(op >> 8)}, int(op%96)+1)
					err := sp.Update(s, rec)
					if errors.Is(err, ErrPageFull) {
						break
					}
					if err != nil {
						return false
					}
					live[s] = rec
					break
				}
			}
		}
		if sp.NumRecords() != len(live) {
			return false
		}
		for s, want := range live {
			got, err := sp.Get(s)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}
