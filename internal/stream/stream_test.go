package stream

import (
	"testing"
	"time"

	"repro/internal/access"
)

func tup(v float64) Tuple {
	return Tuple{Row: access.Row{access.NewFloat(v)}}
}

func TestPublishSubscribe(t *testing.T) {
	s := New("sensor")
	if s.Name() != "sensor" {
		t.Fatal("name")
	}
	ch, cancel := s.Subscribe(8)
	defer cancel()
	if err := s.Publish(tup(1.5)); err != nil {
		t.Fatal(err)
	}
	got := <-ch
	if got.Row[0].Float != 1.5 || got.Time.IsZero() {
		t.Fatalf("tuple = %+v", got)
	}
	pub, drops := s.Stats()
	if pub != 1 || drops != 0 {
		t.Fatalf("stats = %d/%d", pub, drops)
	}
}

func TestSlowSubscriberDrops(t *testing.T) {
	s := New("x")
	_, cancel := s.Subscribe(2)
	defer cancel()
	for i := 0; i < 10; i++ {
		if err := s.Publish(tup(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	_, drops := s.Stats()
	if drops == 0 {
		t.Fatal("slow subscriber must drop tuples, not block")
	}
}

func TestMultipleSubscribers(t *testing.T) {
	s := New("x")
	ch1, c1 := s.Subscribe(4)
	ch2, c2 := s.Subscribe(4)
	defer c1()
	defer c2()
	_ = s.Publish(tup(7))
	if (<-ch1).Row[0].Float != 7 || (<-ch2).Row[0].Float != 7 {
		t.Fatal("fan-out broken")
	}
}

func TestCloseStream(t *testing.T) {
	s := New("x")
	ch, _ := s.Subscribe(1)
	s.Close()
	if _, ok := <-ch; ok {
		t.Fatal("subscriber channel must close")
	}
	if err := s.Publish(tup(1)); err == nil {
		t.Fatal("publish after close must fail")
	}
	s.Close() // idempotent
}

func TestUnsubscribeIdempotent(t *testing.T) {
	s := New("x")
	_, cancel := s.Subscribe(1)
	cancel()
	cancel()
	if err := s.Publish(tup(1)); err != nil {
		t.Fatal(err)
	}
}

func TestCountWindow(t *testing.T) {
	w := NewCountWindow(3)
	for i := 0; i < 5; i++ {
		w.Add(Tuple{Time: time.Now(), Row: access.Row{access.NewInt(int64(i))}})
	}
	snap := w.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("window len = %d", len(snap))
	}
	if snap[0].Row[0].Int != 2 || snap[2].Row[0].Int != 4 {
		t.Fatalf("window keeps last N: %v", snap)
	}
	if w.Len() != 3 {
		t.Fatal("Len")
	}
}

func TestTimeWindow(t *testing.T) {
	w := NewTimeWindow(50 * time.Millisecond)
	old := Tuple{Time: time.Now().Add(-time.Second), Row: access.Row{access.NewInt(1)}}
	fresh := Tuple{Time: time.Now(), Row: access.Row{access.NewInt(2)}}
	w.Add(old)
	w.Add(fresh)
	snap := w.Snapshot()
	if len(snap) != 1 || snap[0].Row[0].Int != 2 {
		t.Fatalf("time eviction: %v", snap)
	}
}

func TestContinuousQuery(t *testing.T) {
	s := New("sensors")
	q := &ContinuousQuery{
		Name:      "avg-temp",
		Filter:    func(t Tuple) bool { return t.Row[0].Float >= 0 }, // drop negatives
		Window:    NewCountWindow(4),
		Every:     2,
		Aggregate: AvgAgg(0),
	}
	cancel := q.Run(s)
	for _, v := range []float64{10, -5, 20, 30, 40} {
		if err := s.Publish(tup(v)); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for the consumer to drain.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(q.Results()) >= 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	results := q.Results()
	if len(results) != 2 {
		t.Fatalf("results = %v", results)
	}
	// First fire after 2 accepted tuples (10, 20): avg 15.
	if results[0][0].Int != 2 || results[0][1].Float != 15 {
		t.Fatalf("first = %v", results[0])
	}
	// Second fire after 4 accepted (10,20,30,40): avg 25.
	if results[1][0].Int != 4 || results[1][1].Float != 25 {
		t.Fatalf("second = %v", results[1])
	}
}

func TestCountAgg(t *testing.T) {
	agg := CountAgg()
	row := agg([]Tuple{tup(1), tup(2)})
	if row[0].Int != 2 {
		t.Fatalf("count = %v", row)
	}
	empty := AvgAgg(0)(nil)
	if empty[0].Int != 0 || !empty[1].IsNull() {
		t.Fatalf("empty avg = %v", empty)
	}
}
