package sbdms

// Bulk-ingest coverage: the option/error matrix for DB.Import, the
// fallback accounting, cancellation, vacuum over an imported range, and
// — as TestKVCrashRecoveryMidImport* — the all-or-nothing crash
// guarantee: a crash anywhere inside an import recovers to every key or
// to none, never a partial prefix.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/storage"
)

// importTestBatch builds n keys in shuffled (unsorted) order with
// values that identify their key, so post-import reads can verify the
// pairing survived the internal sort.
func importTestBatch(n int, seed int64) ([]string, [][]byte) {
	keys := make([]string, n)
	vals := make([][]byte, n)
	for i := 0; i < n; i++ {
		keys[i] = fmt.Sprintf("imp-%06d", i)
		vals[i] = []byte(fmt.Sprintf("val-of-%06d", i))
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(i, j int) {
		keys[i], keys[j] = keys[j], keys[i]
		vals[i], vals[j] = vals[j], vals[i]
	})
	return keys, vals
}

// verifyImported asserts every batch key reads back with its value and
// the count matches.
func verifyImported(t *testing.T, db *DB, keys []string, vals [][]byte) {
	t.Helper()
	if got, want := db.KVLen(), uint64(len(keys)); got != want {
		t.Fatalf("KVLen = %d, want %d", got, want)
	}
	for i, k := range keys {
		got, err := db.Get(k)
		if err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
		if string(got) != string(vals[i]) {
			t.Fatalf("Get(%q) = %q, want %q", k, got, vals[i])
		}
	}
}

// TestImportFastPath loads an empty store through the fast path —
// enough keys for a multi-level tree — and verifies point reads, scan
// order, snapshot reads and that no fallback was taken.
func TestImportFastPath(t *testing.T) {
	db, err := Open(Options{Granularity: Monolithic, BufferFrames: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close(context.Background())
	keys, vals := importTestBatch(5000, 1)
	if err := db.Import(keys, vals); err != nil {
		t.Fatalf("import: %v", err)
	}
	if got := db.ImportFallbacks(); got != 0 {
		t.Fatalf("ImportFallbacks = %d, want 0 (fast path)", got)
	}
	verifyImported(t, db, keys, vals)
	// The leaf chain must serve scans in sorted order across page
	// boundaries.
	ks, err := db.ScanKeys("", len(keys)+10)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(ks) != len(keys) {
		t.Fatalf("scan returned %d keys, want %d", len(ks), len(keys))
	}
	for i := 1; i < len(ks); i++ {
		if ks[i-1] >= ks[i] {
			t.Fatalf("scan out of order at %d: %q >= %q", i, ks[i-1], ks[i])
		}
	}
	// Snapshot reads resolve the imported versions (single commit TS,
	// completed at import end).
	if v, err := db.GetSnapshot("imp-000000"); err != nil || string(v) != "val-of-000000" {
		t.Fatalf("GetSnapshot = %q, %v", v, err)
	}
	// The store stays fully writable after the root swap.
	if err := db.Put("imp-extra", []byte("x")); err != nil {
		t.Fatalf("put after import: %v", err)
	}
	if err := db.DeleteKey("imp-000001"); err != nil {
		t.Fatalf("delete after import: %v", err)
	}
	if got, want := db.KVLen(), uint64(len(keys)); got != want {
		t.Fatalf("KVLen after put+delete = %d, want %d", got, want)
	}
}

// TestImportSurvivesReopen: a clean close and reopen serves the whole
// imported range from disk.
func TestImportSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	openDev := func(name string) storage.Device {
		d, err := storage.OpenFileDevice(dir + "/" + name)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	db, err := Open(Options{Device: openDev("data"), LogDevice: openDev("log"), Granularity: Monolithic, BufferFrames: 32})
	if err != nil {
		t.Fatal(err)
	}
	keys, vals := importTestBatch(3000, 2)
	if err := db.Import(keys, vals); err != nil {
		t.Fatalf("import: %v", err)
	}
	if err := db.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	db, err = Open(Options{Device: openDev("data"), LogDevice: openDev("log"), Granularity: Monolithic, BufferFrames: 32})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db.Close(context.Background())
	verifyImported(t, db, keys, vals)
}

// TestImportErrorMatrix is the option/error matrix: mismatched lengths,
// duplicates, oversized keys and values are typed rejections that leave
// the store untouched; unsorted input and the empty batch are fine.
func TestImportErrorMatrix(t *testing.T) {
	db, err := Open(Options{Granularity: Monolithic, BufferFrames: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close(context.Background())

	if err := db.Import([]string{"a", "b"}, [][]byte{[]byte("1")}); !errors.Is(err, ErrBatchMismatch) && err == nil {
		t.Fatalf("mismatched batch: %v", err)
	}
	if err := db.Import(nil, nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := db.Import([]string{"b", "a", "b"}, [][]byte{{1}, {2}, {3}}); !errors.Is(err, ErrImportDuplicate) {
		t.Fatalf("duplicate key: %v, want ErrImportDuplicate", err)
	}
	bigKey := string(make([]byte, 4*storage.PageSize))
	if err := db.Import([]string{bigKey}, [][]byte{{1}}); !errors.Is(err, ErrImportKeyTooLarge) {
		t.Fatalf("oversized key: %v, want ErrImportKeyTooLarge", err)
	}
	if err := db.Import([]string{"k"}, [][]byte{make([]byte, 2*storage.PageSize)}); !errors.Is(err, ErrImportValueTooLarge) {
		t.Fatalf("oversized value: %v, want ErrImportValueTooLarge", err)
	}
	// Every rejection happened before any page write: store still empty,
	// and a subsequent import still takes the fast path.
	if got := db.KVLen(); got != 0 {
		t.Fatalf("KVLen after rejected imports = %d, want 0", got)
	}
	if err := db.Import([]string{"z", "y", "x"}, [][]byte{{1}, {2}, {3}}); err != nil {
		t.Fatalf("unsorted import: %v", err)
	}
	if got := db.ImportFallbacks(); got != 0 {
		t.Fatalf("ImportFallbacks = %d, want 0", got)
	}
	if ks, err := db.ScanKeys("", 10); err != nil || len(ks) != 3 || ks[0] != "x" || ks[2] != "z" {
		t.Fatalf("scan after unsorted import = %v, %v", ks, err)
	}
}

// TestImportFallbacks: a non-empty store, a disabled fast path, and a
// disabled WAL must all route through the per-key path — counted, and
// still correct (including overwrites of existing keys).
func TestImportFallbacks(t *testing.T) {
	t.Run("nonEmptyTree", func(t *testing.T) {
		db, err := Open(Options{Granularity: Monolithic, BufferFrames: 32})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close(context.Background())
		if err := db.Put("imp-000001", []byte("old")); err != nil {
			t.Fatal(err)
		}
		keys, vals := importTestBatch(50, 3)
		if err := db.Import(keys, vals); err != nil {
			t.Fatalf("import: %v", err)
		}
		if got := db.ImportFallbacks(); got != 1 {
			t.Fatalf("ImportFallbacks = %d, want 1", got)
		}
		// The import overwrote the pre-existing key.
		verifyImported(t, db, keys, vals)
	})
	t.Run("disabledFastPath", func(t *testing.T) {
		db, err := Open(Options{Granularity: Monolithic, BufferFrames: 32, DisableImportFastPath: true})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close(context.Background())
		keys, vals := importTestBatch(50, 4)
		if err := db.Import(keys, vals); err != nil {
			t.Fatalf("import: %v", err)
		}
		if got := db.ImportFallbacks(); got != 1 {
			t.Fatalf("ImportFallbacks = %d, want 1", got)
		}
		verifyImported(t, db, keys, vals)
	})
	t.Run("unlogged", func(t *testing.T) {
		db, err := Open(Options{Granularity: Monolithic, BufferFrames: 32, DisableWAL: true})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close(context.Background())
		keys, vals := importTestBatch(50, 5)
		if err := db.Import(keys, vals); err != nil {
			t.Fatalf("import: %v", err)
		}
		if got := db.ImportFallbacks(); got != 1 {
			t.Fatalf("ImportFallbacks = %d, want 1", got)
		}
		verifyImported(t, db, keys, vals)
	})
}

// TestImportCancelLeavesNoState: a cancellation observed mid-load rolls
// the whole import back — no keys, no count, and the freed pages leave
// the engine fully reusable (the next import fast-paths again).
func TestImportCancelLeavesNoState(t *testing.T) {
	db, err := Open(Options{Granularity: Monolithic, BufferFrames: 64, ImportChunkPages: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close(context.Background())
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // chunk pacing observes this after the first page
	keys, vals := importTestBatch(2000, 6)
	if err := db.ImportContext(ctx, keys, vals); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled import: %v, want context.Canceled", err)
	}
	if got := db.KVLen(); got != 0 {
		t.Fatalf("KVLen after cancelled import = %d, want 0", got)
	}
	if _, err := db.Get(keys[0]); err == nil || !isNotFound(err) {
		t.Fatalf("Get after cancelled import: %v, want not-found", err)
	}
	// Engine unharmed: the retry loads through the fast path.
	if err := db.Import(keys, vals); err != nil {
		t.Fatalf("import after cancel: %v", err)
	}
	if got := db.ImportFallbacks(); got != 0 {
		t.Fatalf("ImportFallbacks = %d, want 0", got)
	}
	verifyImported(t, db, keys, vals)
}

// TestImportGranularities drives the import op through every service
// decomposition profile, including the serializable isolation variant.
func TestImportGranularities(t *testing.T) {
	for _, g := range Granularities {
		t.Run(string(g), func(t *testing.T) {
			db, err := Open(Options{Granularity: g, BufferFrames: 64})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close(context.Background())
			keys, vals := importTestBatch(500, 7)
			if err := db.Import(keys, vals); err != nil {
				t.Fatalf("import via %s: %v", g, err)
			}
			verifyImported(t, db, keys, vals)
		})
	}
	t.Run("serializable", func(t *testing.T) {
		db, err := Open(Options{Granularity: Monolithic, BufferFrames: 64, ScanIsolation: Serializable})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close(context.Background())
		keys, vals := importTestBatch(500, 8)
		if err := db.Import(keys, vals); err != nil {
			t.Fatalf("import: %v", err)
		}
		verifyImported(t, db, keys, vals)
		if ks, err := db.ScanKeys("", 600); err != nil || len(ks) != 500 {
			t.Fatalf("serializable scan after import: %d keys, %v", len(ks), err)
		}
	})
}

// TestImportThenVacuum: vacuum over an imported range reclaims deleted
// keys' versions and leaves the survivors intact — the imported
// (pre-stamped) version cells behave exactly like per-key committed
// versions.
func TestImportThenVacuum(t *testing.T) {
	db, err := Open(Options{Granularity: Monolithic, BufferFrames: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close(context.Background())
	keys, vals := importTestBatch(1000, 9)
	if err := db.Import(keys, vals); err != nil {
		t.Fatalf("import: %v", err)
	}
	for i := 0; i < 1000; i += 2 {
		if err := db.DeleteKey(fmt.Sprintf("imp-%06d", i)); err != nil {
			t.Fatalf("delete: %v", err)
		}
	}
	st, err := db.Vacuum()
	if err != nil {
		t.Fatalf("vacuum: %v", err)
	}
	if st.KeysRemoved == 0 {
		t.Fatalf("vacuum reclaimed nothing over imported range: %+v", st)
	}
	if got := db.KVLen(); got != 500 {
		t.Fatalf("KVLen after vacuum = %d, want 500", got)
	}
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("imp-%06d", i)
		_, err := db.Get(k)
		if i%2 == 0 {
			if err == nil || !isNotFound(err) {
				t.Fatalf("deleted %q after vacuum: %v", k, err)
			}
		} else if err != nil {
			t.Fatalf("survivor %q lost after vacuum: %v", k, err)
		}
	}
}

// TestImportConcurrentWriters races an import on an EMPTY store against
// per-key writers and snapshot scanners. Whoever wins the install race,
// every committed key must survive, and no snapshot may ever observe a
// partial import — the imported range appears as one atomic cut.
func TestImportConcurrentWriters(t *testing.T) {
	db, err := Open(Options{Granularity: Monolithic, BufferFrames: 128, ImportChunkPages: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close(context.Background())
	const nImp, nPut = 2000, 200
	keys, vals := importTestBatch(nImp, 11)
	done := make(chan error, 2)
	go func() { done <- db.Import(keys, vals) }()
	go func() {
		for i := 0; i < nPut; i++ {
			if err := db.Put(fmt.Sprintf("put-%04d", i), []byte("w")); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	partial := make(chan int, 1)
	stopScan := make(chan struct{})
	go func() {
		defer close(partial)
		for {
			select {
			case <-stopScan:
				return
			default:
			}
			ks, err := db.ScanKeysSnapshot("imp-", nImp+1)
			if err != nil {
				continue
			}
			n := 0
			for _, k := range ks {
				if len(k) > 4 && k[:4] == "imp-" {
					n++
				}
			}
			if n != 0 && n != nImp {
				partial <- n
				return
			}
		}
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent run: %v", err)
		}
	}
	close(stopScan)
	if n, ok := <-partial; ok {
		t.Fatalf("snapshot scan observed PARTIAL import: %d of %d keys", n, nImp)
	}
	if got, want := db.KVLen(), uint64(nImp+nPut); got != want {
		t.Fatalf("KVLen = %d, want %d", got, want)
	}
	for i, k := range keys {
		if got, err := db.Get(k); err != nil || string(got) != string(vals[i]) {
			t.Fatalf("Get(%q) = %q, %v", k, got, err)
		}
	}
	for i := 0; i < nPut; i++ {
		if _, err := db.Get(fmt.Sprintf("put-%04d", i)); err != nil {
			t.Fatalf("concurrent put key lost: %v", err)
		}
	}
}

// importCrashN is sized so the import spans many pages (and therefore
// many fault-device writes) while staying fast under -race.
const importCrashN = 2000

// verifyImportAllOrNothing reopens from the surviving devices and
// asserts the import's crash contract: every key present, or none.
func verifyImportAllOrNothing(t *testing.T, dataDev, logDev storage.Device, keys []string, vals [][]byte) {
	t.Helper()
	db, err := Open(Options{Device: dataDev, LogDevice: logDev, Granularity: Monolithic, BufferFrames: 64})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer db.Close(context.Background())
	switch got := db.KVLen(); got {
	case 0:
		for _, i := range []int{0, len(keys) / 2, len(keys) - 1} {
			if _, err := db.Get(keys[i]); err == nil || !isNotFound(err) {
				t.Fatalf("rolled-back import: Get(%q) = %v, want not-found", keys[i], err)
			}
		}
		// The rolled-back store must accept a fresh import.
		if err := db.Import(keys[:10], vals[:10]); err != nil {
			t.Fatalf("import after rolled-back import: %v", err)
		}
		if got := db.KVLen(); got != 10 {
			t.Fatalf("KVLen after re-import = %d, want 10", got)
		}
	case uint64(len(keys)):
		for _, i := range []int{0, 1, len(keys) / 3, len(keys) / 2, len(keys) - 2, len(keys) - 1} {
			got, err := db.Get(keys[i])
			if err != nil {
				t.Fatalf("committed import: Get(%q): %v", keys[i], err)
			}
			if string(got) != string(vals[i]) {
				t.Fatalf("committed import: Get(%q) = %q, want %q", keys[i], got, vals[i])
			}
		}
	default:
		t.Fatalf("PARTIAL import after crash: KVLen = %d, want 0 or %d", got, len(keys))
	}
}

// TestKVCrashRecoveryMidImportKill9 crashes the DATA device after a
// sweep of write counts while an import is in flight (a tiny pool
// forces write-back traffic throughout), then abandons the process
// without a flush. Recovery must land on all keys or none.
func TestKVCrashRecoveryMidImportKill9(t *testing.T) {
	for _, crashAfter := range []int{0, 2, 9, 33, 80} {
		t.Run(fmt.Sprintf("crashAfter=%d", crashAfter), func(t *testing.T) {
			inner, logDev := storage.NewMemDevice(), storage.NewMemDevice()
			fault := storage.NewFaultDevice(inner)
			db := openCrashDB(t, fault, logDev)
			keys, vals := importTestBatch(importCrashN, int64(crashAfter)+20)
			fault.CrashAfterWrites(crashAfter, 0)
			// The import may fail (device died under it) — that is the
			// point; only the recovered state matters.
			_ = db.Import(keys, vals)
			abandon(db)
			verifyImportAllOrNothing(t, inner, logDev, keys, vals)
		})
	}
}

// TestKVCrashRecoveryMidImportTornWrite is the kill-9 sweep with the
// crashing data-device write torn mid-page, so recovery must also
// detect the checksum failure and rebuild the page from logged images.
func TestKVCrashRecoveryMidImportTornWrite(t *testing.T) {
	for _, crashAfter := range []int{1, 7, 25} {
		t.Run(fmt.Sprintf("crashAfter=%d", crashAfter), func(t *testing.T) {
			inner, logDev := storage.NewMemDevice(), storage.NewMemDevice()
			fault := storage.NewFaultDevice(inner)
			db := openCrashDB(t, fault, logDev)
			keys, vals := importTestBatch(importCrashN, int64(crashAfter)+40)
			fault.CrashAfterWrites(crashAfter, storage.PageSize/2)
			_ = db.Import(keys, vals)
			abandon(db)
			verifyImportAllOrNothing(t, inner, logDev, keys, vals)
		})
	}
}

// TestKVCrashRecoveryMidImportLogDevice crashes the LOG device instead:
// the WAL holds an arbitrary prefix of the import's records. Without a
// commit record recovery classifies the import as a loser and rolls it
// back wholesale; with one it replays everything. Never a prefix.
func TestKVCrashRecoveryMidImportLogDevice(t *testing.T) {
	for _, crashAfter := range []int{1, 4, 12, 48} {
		t.Run(fmt.Sprintf("crashAfter=%d", crashAfter), func(t *testing.T) {
			dataDev, inner := storage.NewMemDevice(), storage.NewMemDevice()
			fault := storage.NewFaultDevice(inner)
			db, err := Open(Options{
				Device:       dataDev,
				LogDevice:    fault,
				Granularity:  Monolithic,
				BufferFrames: 64,
				// One-page chunks force frequent WAL flushes, spreading
				// the import across many log-device writes so the sweep
				// hits genuinely different prefixes.
				ImportChunkPages: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			keys, vals := importTestBatch(importCrashN, int64(crashAfter)+60)
			fault.CrashAfterWrites(crashAfter, 0)
			_ = db.Import(keys, vals)
			abandon(db)
			verifyImportAllOrNothing(t, dataDev, inner, keys, vals)
		})
	}
}

// TestKVCrashRecoveryAfterImport: kill -9 immediately after a
// successful import, before any page flush — the imported tree exists
// ONLY as WAL full-page images, and redo must rebuild every heap and
// index page from them.
func TestKVCrashRecoveryAfterImport(t *testing.T) {
	dataDev, logDev := storage.NewMemDevice(), storage.NewMemDevice()
	db, err := Open(Options{Device: dataDev, LogDevice: logDev, Granularity: Monolithic, BufferFrames: 4096})
	if err != nil {
		t.Fatal(err)
	}
	keys, vals := importTestBatch(importCrashN, 10)
	if err := db.Import(keys, vals); err != nil {
		t.Fatalf("import: %v", err)
	}
	abandon(db)
	db2, err := Open(Options{Device: dataDev, LogDevice: logDev, Granularity: Monolithic, BufferFrames: 64})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close(context.Background())
	verifyImported(t, db2, keys, vals)
}
