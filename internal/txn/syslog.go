package txn

import (
	"repro/internal/storage"
	"repro/internal/wal"
)

// PageLogger exposes the manager as a storage.PageLogger, so the file
// manager can WAL-log directory and page-allocation mutations under
// system transactions. Returns nil when no WAL is attached.
func (m *Manager) PageLogger() storage.PageLogger {
	if m.log == nil {
		return nil
	}
	return sysLogger{m}
}

type sysLogger struct{ m *Manager }

// Begin implements storage.PageLogger.
func (s sysLogger) Begin() (storage.PageTxn, error) {
	t, err := s.m.Begin()
	if err != nil {
		return nil, err
	}
	return &pageTxn{m: s.m, t: t}, nil
}

// Flush implements storage.PageLogger: it forces everything appended so
// far (the file manager calls it before returning freed pages to the
// allocator). No group window: the caller holds the file-manager lock,
// and commit-batching latency must not stall page traffic.
func (s sysLogger) Flush() error {
	return s.m.log.FlushNoWindow(s.m.log.NextLSN())
}

// pageTxn adapts a Txn to storage.PageTxn.
type pageTxn struct {
	m *Manager
	t *Txn
}

// Update implements storage.PageTxn.
func (p *pageTxn) Update(id storage.PageID, off int, before, after []byte) (uint64, error) {
	rec := &wal.Record{
		Txn:     p.t.ID(),
		Type:    wal.RecUpdate,
		PageID:  id,
		Offset:  uint16(off),
		Before:  append([]byte(nil), before...),
		After:   append([]byte(nil), after...),
		PrevLSN: p.t.LastLSN(),
	}
	lsn, err := p.m.log.Append(rec)
	if err != nil {
		return 0, err
	}
	p.t.Record(rec)
	return uint64(lsn), nil
}

// Commit implements storage.PageTxn (lazy: no log force).
func (p *pageTxn) Commit() error { return p.m.CommitLazy(p.t) }

// Abort implements storage.PageTxn.
func (p *pageTxn) Abort() error { return p.m.Abort(p.t) }
