package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Disk manager errors.
var (
	// ErrBadMeta is returned when the metadata page is corrupt.
	ErrBadMeta = errors.New("storage: corrupt disk metadata")
	// ErrPageFree is returned when accessing a page on the free list.
	ErrPageFree = errors.New("storage: page is free")
	// ErrChecksum is returned when a page fails checksum verification.
	ErrChecksum = errors.New("storage: page checksum mismatch")
)

const diskMagic = 0x5342444d53444b31 // "SBDMSDK1"

// PageStore is the page-granular storage interface shared by the disk
// manager and the buffer manager, so that higher layers (file manager,
// heap files, indexes) can be composed over either — the substitution
// at the heart of the storage service scenario of Section 3.7.
type PageStore interface {
	// Allocate returns a fresh zeroed page.
	Allocate() (PageID, error)
	// Deallocate returns a page to the free list.
	Deallocate(id PageID) error
	// ReadPage fills buf (PageSize bytes) with the page content.
	ReadPage(id PageID, buf []byte) error
	// WritePage persists the page content (PageSize bytes).
	WritePage(id PageID, data []byte) error
	// NumPages returns the total number of pages ever allocated
	// (including freed ones; page ids are dense from 1).
	NumPages() uint64
	// Sync flushes to stable storage.
	Sync() error
}

// PageUpdater is implemented by page stores that can apply a
// read-modify-write mutation to one page atomically with respect to
// concurrent page access (the buffer manager does it under the page
// latch, the disk manager under its mutex). Code outside the latching
// access methods — file-manager chain links, transaction undo — must
// mutate shared pages through it rather than via ReadPage+WritePage,
// which would race with latched writers.
type PageUpdater interface {
	UpdatePage(id PageID, fn func(p *Page) error) error
}

// UpdatePageOn applies fn to the page through the store's PageUpdater
// when available, else via a read-modify-write (single-threaded callers
// only, e.g. recovery).
func UpdatePageOn(store PageStore, id PageID, fn func(p *Page) error) error {
	if u, ok := store.(PageUpdater); ok {
		return u.UpdatePage(id, fn)
	}
	buf := make([]byte, PageSize)
	if err := store.ReadPage(id, buf); err != nil {
		return err
	}
	p := WrapPage(id, buf)
	if err := fn(p); err != nil {
		return err
	}
	return store.WritePage(id, p.Data)
}

// DirtyPageInfo is one dirty-page-table entry reported by a buffering
// PageStore: a resident dirty page and the LSN of the first log record
// that dirtied it since it was last clean (recLSN; 0 when the page was
// dirtied outside the log). Fuzzy checkpoints snapshot these to bound
// the recovery scan and the log-truncation horizon.
type DirtyPageInfo struct {
	ID     PageID
	RecLSN uint64
}

// DiskManager implements PageStore directly over a byte Device: fixed
// size pages, a persistent free list threaded through freed pages, and
// a checksum on every page. It corresponds to the Disk Manager service
// of Figures 5-7.
type DiskManager struct {
	mu        sync.Mutex
	dev       Device
	pageCount uint64 // pages allocated so far, excluding meta page 0
	freeHead  PageID
	closed    bool
	verify    bool
	salvage   bool
}

// DiskOption configures a disk manager.
type DiskOption func(*DiskManager)

// WithChecksumVerify enables checksum verification on every read.
func WithChecksumVerify(on bool) DiskOption {
	return func(d *DiskManager) { d.verify = on }
}

// WithMetaSalvage makes OpenDisk tolerate a torn or unreadable metadata
// page: instead of failing, the page count is conservatively derived
// from the device size and the free list abandoned (freed pages leak
// rather than risk double allocation). Crash recovery then rebuilds
// page content from the WAL.
func WithMetaSalvage(on bool) DiskOption {
	return func(d *DiskManager) { d.salvage = on }
}

// OpenDisk opens (or initialises) a disk manager on a device.
func OpenDisk(dev Device, opts ...DiskOption) (*DiskManager, error) {
	d := &DiskManager{dev: dev, verify: true}
	for _, o := range opts {
		o(d)
	}
	size, err := dev.Size()
	if err != nil {
		return nil, err
	}
	if size == 0 {
		// Fresh device: write the meta page.
		if err := d.writeMetaLocked(); err != nil {
			return nil, err
		}
		return d, nil
	}
	meta := make([]byte, PageSize)
	if _, err := dev.ReadAt(meta, 0); err != nil {
		if d.salvage && size >= PageSize {
			return d.salvageMeta(size)
		}
		return nil, fmt.Errorf("storage: reading meta page: %w", err)
	}
	p := WrapPage(0, meta)
	payload := p.Payload()
	if binary.LittleEndian.Uint64(payload) != diskMagic {
		// A bad magic means a foreign or mispointed file, not a torn
		// meta write (page writes are whole-page, so a torn rewrite
		// keeps a valid magic from either the old or new image): fail
		// loudly rather than salvage over someone else's data.
		return nil, fmt.Errorf("%w: bad magic", ErrBadMeta)
	}
	if p.Type() != PageTypeMeta || !p.VerifyChecksum() {
		if d.salvage {
			return d.salvageMeta(size)
		}
		return nil, fmt.Errorf("%w: bad meta header", ErrBadMeta)
	}
	d.pageCount = binary.LittleEndian.Uint64(payload[8:])
	d.freeHead = PageID(binary.LittleEndian.Uint64(payload[16:]))
	// A crash can lose the meta write that recorded device growth;
	// trust the device size for the page count so recovery can reach
	// every page the WAL mentions.
	if d.salvage {
		if fromSize := uint64(size+PageSize-1)/PageSize - 1; fromSize > d.pageCount {
			d.pageCount = fromSize
		}
	}
	return d, nil
}

// salvageMeta reconstructs conservative metadata after a torn meta-page
// write: every page within the device size counts as allocated, the
// free list is dropped, and a fresh meta page is written.
func (d *DiskManager) salvageMeta(size int64) (*DiskManager, error) {
	d.pageCount = uint64(size+PageSize-1)/PageSize - 1
	d.freeHead = InvalidPageID
	if err := d.writeMetaLocked(); err != nil {
		return nil, err
	}
	return d, nil
}

// EnsureAllocated grows the store so that id is a valid page, writing
// zeroed pages for the extension. Recovery uses it when the WAL
// references pages whose allocation never reached the metadata page
// before a crash.
func (d *DiskManager) EnsureAllocated(id PageID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if uint64(id) <= d.pageCount {
		return nil
	}
	for d.pageCount < uint64(id) {
		d.pageCount++
		zero := NewPage(PageID(d.pageCount), PageTypeRaw)
		zero.UpdateChecksum()
		if _, err := d.dev.WriteAt(zero.Data, int64(d.pageCount)*PageSize); err != nil {
			return fmt.Errorf("storage: extending to page %d: %w", d.pageCount, err)
		}
	}
	return d.writeMetaLocked()
}

func (d *DiskManager) writeMetaLocked() error {
	p := NewPage(0, PageTypeMeta)
	payload := p.Payload()
	binary.LittleEndian.PutUint64(payload, diskMagic)
	binary.LittleEndian.PutUint64(payload[8:], d.pageCount)
	binary.LittleEndian.PutUint64(payload[16:], uint64(d.freeHead))
	p.UpdateChecksum()
	if _, err := d.dev.WriteAt(p.Data, 0); err != nil {
		return fmt.Errorf("storage: writing meta page: %w", err)
	}
	return nil
}

// Allocate implements PageStore: it pops the free list or extends the
// device, returning a zeroed page.
func (d *DiskManager) Allocate() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return InvalidPageID, ErrClosed
	}
	var id PageID
	if d.freeHead != InvalidPageID {
		id = d.freeHead
		buf := make([]byte, PageSize)
		if err := d.readLocked(id, buf, false); err != nil {
			return InvalidPageID, err
		}
		p := WrapPage(id, buf)
		if p.Type() != PageTypeFree || !p.VerifyChecksum() {
			// A crash persisted the head pointer but not the freed
			// page's marking (device writes reorder): following its
			// chain pointer would walk live page chains and hand out
			// in-use pages. Abandon the list — leaked pages are
			// reclaimed by the post-crash free-list rebuild; handing
			// out a live page would corrupt the store.
			d.freeHead = InvalidPageID
			d.pageCount++
			id = PageID(d.pageCount)
		} else {
			d.freeHead = p.Next()
		}
	} else {
		d.pageCount++
		id = PageID(d.pageCount)
	}
	// Hand out a zeroed page of raw type.
	zero := NewPage(id, PageTypeRaw)
	zero.UpdateChecksum()
	if _, err := d.dev.WriteAt(zero.Data, int64(id)*PageSize); err != nil {
		return InvalidPageID, fmt.Errorf("storage: zeroing page %d: %w", id, err)
	}
	if err := d.writeMetaLocked(); err != nil {
		return InvalidPageID, err
	}
	return id, nil
}

// Deallocate implements PageStore: the page is marked free and pushed
// onto the free list.
func (d *DiskManager) Deallocate(id PageID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if err := d.checkIDLocked(id); err != nil {
		return err
	}
	p := NewPage(id, PageTypeFree)
	p.SetNext(d.freeHead)
	p.UpdateChecksum()
	if _, err := d.dev.WriteAt(p.Data, int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: freeing page %d: %w", id, err)
	}
	d.freeHead = id
	return d.writeMetaLocked()
}

// ReadPage implements PageStore.
func (d *DiskManager) ReadPage(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if err := d.checkIDLocked(id); err != nil {
		return err
	}
	return d.readLocked(id, buf, d.verify)
}

func (d *DiskManager) readLocked(id PageID, buf []byte, verify bool) error {
	if len(buf) != PageSize {
		return fmt.Errorf("storage: read buffer must be PageSize, got %d", len(buf))
	}
	if _, err := d.dev.ReadAt(buf, int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: reading page %d: %w", id, err)
	}
	if verify && !WrapPage(id, buf).VerifyChecksum() {
		return fmt.Errorf("%w: page %d", ErrChecksum, id)
	}
	return nil
}

// WritePage implements PageStore. The checksum is refreshed on the way
// out so callers need not remember to do it.
func (d *DiskManager) WritePage(id PageID, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if err := d.checkIDLocked(id); err != nil {
		return err
	}
	if len(data) != PageSize {
		return fmt.Errorf("storage: write buffer must be PageSize, got %d", len(data))
	}
	WrapPage(id, data).UpdateChecksum()
	if _, err := d.dev.WriteAt(data, int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: writing page %d: %w", id, err)
	}
	return nil
}

// UpdatePage implements PageUpdater: read-modify-write of one page as a
// single atomic step under the disk mutex.
func (d *DiskManager) UpdatePage(id PageID, fn func(p *Page) error) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if err := d.checkIDLocked(id); err != nil {
		return err
	}
	buf := make([]byte, PageSize)
	if err := d.readLocked(id, buf, d.verify); err != nil {
		return err
	}
	p := WrapPage(id, buf)
	if err := fn(p); err != nil {
		return err
	}
	p.UpdateChecksum()
	if _, err := d.dev.WriteAt(buf, int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: writing page %d: %w", id, err)
	}
	return nil
}

func (d *DiskManager) checkIDLocked(id PageID) error {
	if id == InvalidPageID || uint64(id) > d.pageCount {
		return fmt.Errorf("%w: page %d (count %d)", ErrOutOfRange, id, d.pageCount)
	}
	return nil
}

// NumPages implements PageStore.
func (d *DiskManager) NumPages() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.pageCount
}

// FreePages walks the free list and returns its length (diagnostics).
func (d *DiskManager) FreePages() (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrClosed
	}
	n := 0
	buf := make([]byte, PageSize)
	for id := d.freeHead; id != InvalidPageID; {
		if err := d.readLocked(id, buf, false); err != nil {
			return n, err
		}
		n++
		id = WrapPage(id, buf).Next()
		if n > int(d.pageCount) {
			return n, fmt.Errorf("%w: free list cycle", ErrBadMeta)
		}
	}
	return n, nil
}

// RebuildFreeList rescans every page and rebuilds the persistent free
// list from page types: every page whose durable image is a valid
// free-marked page is relinked, whether or not the crash lost the old
// list's head or chain pointers. Combined with WAL-logged free
// markings (the file manager logs each freed page's transition to the
// free type under a system transaction), this is what turns "a crash
// leaks freed pages" into "recovery reclaims them". Returns the number
// of pages linked.
func (d *DiskManager) RebuildFreeList() (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrClosed
	}
	head := InvalidPageID
	n := 0
	buf := make([]byte, PageSize)
	// Descending scan, so the rebuilt list pops lowest ids first.
	for id := PageID(d.pageCount); id >= 1; id-- {
		if err := d.readLocked(id, buf, false); err != nil {
			continue // unreadable pages cannot be proven free
		}
		p := WrapPage(id, buf)
		if p.Type() != PageTypeFree || !p.VerifyChecksum() {
			continue
		}
		fresh := NewPage(id, PageTypeFree)
		fresh.SetNext(head)
		fresh.UpdateChecksum()
		if _, err := d.dev.WriteAt(fresh.Data, int64(id)*PageSize); err != nil {
			return n, fmt.Errorf("storage: relinking free page %d: %w", id, err)
		}
		head = id
		n++
	}
	d.freeHead = head
	return n, d.writeMetaLocked()
}

// Sync implements PageStore.
func (d *DiskManager) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.dev.Sync()
}

// Close flushes metadata and closes the underlying device.
func (d *DiskManager) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	if err := d.writeMetaLocked(); err != nil {
		return err
	}
	d.closed = true
	return d.dev.Close()
}
