// Distributed: two SBDMS nodes in one process, each serving its
// services over real TCP, learning about each other by P2P registry
// gossip (Section 4). A client-side reference then selects the nearby
// provider by node tag, and falls back to the remote one when the local
// provider disappears.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	sbdms "repro"
	"repro/internal/core"
	"repro/internal/netbind"
)

type node struct {
	name string
	db   *sbdms.DB
	srv  *netbind.Server
}

func openNode(ctx context.Context, name string) (*node, error) {
	db, err := sbdms.Open(sbdms.Options{Granularity: sbdms.Coarse})
	if err != nil {
		return nil, err
	}
	// Tag local services with the node name for proximity selection,
	// and make the kv service name unique per node so gossip propagates
	// both.
	reg := db.Kernel().Registry()
	if r, err := reg.Lookup("kv"); err == nil {
		_ = reg.Deregister("kv")
		clone := r.Clone()
		clone.Name = "kv@" + name
		clone.Tags = map[string]string{"node": name}
		if err := reg.Register(clone); err != nil {
			return nil, err
		}
	}
	srv, err := netbind.Serve(reg, "")
	if err != nil {
		return nil, err
	}
	return &node{name: name, db: db, srv: srv}, nil
}

func main() {
	ctx := context.Background()
	a, err := openNode(ctx, "alpha")
	if err != nil {
		log.Fatal(err)
	}
	defer a.db.Close(ctx)
	defer a.srv.Close()
	b, err := openNode(ctx, "beta")
	if err != nil {
		log.Fatal(err)
	}
	defer b.db.Close(ctx)
	defer b.srv.Close()
	fmt.Printf("node alpha at %s, node beta at %s\n", a.srv.Addr(), b.srv.Addr())

	// P2P gossip: alpha syncs with beta periodically.
	g := netbind.NewGossiper(a.db.Kernel().Registry(), a.srv.Addr(), b.srv.Addr())
	g.Start(50 * time.Millisecond)
	defer g.Stop()

	// Wait until alpha discovers beta's kv service.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if _, err := a.db.Kernel().Registry().Lookup("kv@beta"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("gossip never propagated kv@beta")
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Println("gossip: alpha discovered beta's services")
	for _, r := range a.db.Kernel().Registry().Discover(sbdms.IfaceKV) {
		where := "local"
		if r.Address != "" {
			where = "remote@" + r.Address
		}
		fmt.Printf("  provider %-10s node=%-6s %s\n", r.Name, r.Tags["node"], where)
	}

	// A proximity-aware reference prefers the local provider.
	ref := core.NewRef(a.db.Kernel().Registry(), sbdms.IfaceKV,
		core.SelectByTag("node", "alpha", nil))
	if _, err := ref.Invoke(ctx, "put", sbdms.KVPutRequest{Key: "k", Val: []byte("v")}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("proximity selection served by: %s\n", ref.Current())
	if ref.Current() != "kv@alpha" {
		log.Fatal("expected the local provider")
	}

	// The local provider disappears; the reference falls back to the
	// remote provider over TCP (flexibility by selection, across
	// machines).
	_ = a.db.Kernel().Registry().Deregister("kv@alpha")
	ref.Invalidate()
	if _, err := ref.Invoke(ctx, "put", sbdms.KVPutRequest{Key: "k2", Val: []byte("v2")}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after local failure, served by: %s (over TCP)\n", ref.Current())
	if ref.Current() != "kv@beta" {
		log.Fatal("expected the remote provider")
	}

	// Verify the write really landed on beta by asking beta's own
	// provider directly.
	clientB := netbind.NewClient(b.srv.Addr())
	defer clientB.Close()
	out, err := clientB.Call(ctx, "kv@beta", "get", "k2")
	if err != nil {
		log.Fatalf("beta did not receive the write: %v", err)
	}
	if string(out.([]byte)) != "v2" {
		log.Fatalf("beta holds %q", out)
	}
	fmt.Println("write confirmed on beta — distributed composition works")
}
