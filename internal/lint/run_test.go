package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestDirectiveLinting checks that the suppression mechanism is itself
// linted: malformed //lint:ignore directives are reported under the
// lintdirective pseudo-analyzer AND fail to suppress, while a
// well-formed one both suppresses and stays silent. Asserted
// programmatically because the findings land on the directive comments
// themselves, where a // want comment cannot sit.
func TestDirectiveLinting(t *testing.T) {
	pkg := linttest.LoadGolden(t, "directives")
	diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{lint.ErrcheckDurabilityAnalyzer})
	if err != nil {
		t.Fatal(err)
	}

	var discards, directive []lint.Diagnostic
	for _, d := range diags {
		switch d.Analyzer {
		case "errcheckdurability":
			discards = append(discards, d)
		case lint.DirectiveAnalyzer:
			directive = append(directive, d)
		default:
			t.Errorf("unexpected analyzer %q: %s", d.Analyzer, d.Message)
		}
	}

	// The three discards under malformed directives survive; the one
	// under the well-formed directive is suppressed.
	if len(discards) != 3 {
		t.Errorf("got %d unsuppressed discards, want 3: %+v", len(discards), discards)
	}

	// Each malformed directive is a finding of its own.
	wantSubstrings := []string{
		"malformed //lint:ignore",
		`unknown analyzer "nosuchanalyzer"`,
		"needs a justification",
	}
	if len(directive) != len(wantSubstrings) {
		t.Fatalf("got %d directive findings, want %d: %+v", len(directive), len(wantSubstrings), directive)
	}
	for i, want := range wantSubstrings {
		if !strings.Contains(directive[i].Message, want) {
			t.Errorf("directive finding %d = %q, want substring %q", i, directive[i].Message, want)
		}
	}
}
