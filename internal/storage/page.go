package storage

import (
	"encoding/binary"
	"hash/crc32"
)

// PageSize is the fixed page size of the storage layer.
const PageSize = 4096

// HeaderSize is the size of the common page header maintained by the
// page manager. The payload area is PageSize-HeaderSize bytes.
const HeaderSize = 32

// PayloadSize is the usable payload capacity of a page.
const PayloadSize = PageSize - HeaderSize

// PageID identifies a page on a disk manager. Page 0 is the disk
// manager's metadata page and is never handed out; InvalidPageID doubles
// as the nil pointer of on-disk page chains.
type PageID uint64

// InvalidPageID is the nil page pointer.
const InvalidPageID PageID = 0

// PageType tags the content of a page so that recovery and diagnostics
// can interpret it.
type PageType uint8

// Page types used across the storage and access layers.
const (
	PageTypeFree      PageType = 0
	PageTypeMeta      PageType = 1
	PageTypeDirectory PageType = 2
	PageTypeHeap      PageType = 3
	PageTypeIndex     PageType = 4
	PageTypeOverflow  PageType = 5
	PageTypeRaw       PageType = 6
)

// Header layout (32 bytes):
//
//	off 0  u8  type
//	off 1  u8  flags
//	off 2  u16 reserved
//	off 4  u32 checksum (crc32c over bytes [8, PageSize))
//	off 8  u64 lsn
//	off 16 u64 next page id
//	off 24 u64 prev page id
const (
	offType     = 0
	offFlags    = 1
	offChecksum = 4
	offLSN      = 8
	offNext     = 16
	offPrev     = 24
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Page is a typed view over a PageSize byte buffer. It performs no I/O
// itself; the page manager service wraps these accessors with
// read/write operations.
type Page struct {
	ID   PageID
	Data []byte // len == PageSize
}

// NewPage wraps a fresh zeroed buffer as a page of the given type.
func NewPage(id PageID, t PageType) *Page {
	p := &Page{ID: id, Data: make([]byte, PageSize)}
	p.SetType(t)
	return p
}

// WrapPage wraps an existing PageSize buffer. It panics when the buffer
// has the wrong length, which indicates a programming error.
func WrapPage(id PageID, data []byte) *Page {
	if len(data) != PageSize {
		panic("storage: WrapPage buffer must be PageSize")
	}
	return &Page{ID: id, Data: data}
}

// Type returns the page type tag.
func (p *Page) Type() PageType { return PageType(p.Data[offType]) }

// SetType sets the page type tag.
func (p *Page) SetType(t PageType) { p.Data[offType] = byte(t) }

// Flags returns the page flags byte.
func (p *Page) Flags() uint8 { return p.Data[offFlags] }

// SetFlags sets the page flags byte.
func (p *Page) SetFlags(f uint8) { p.Data[offFlags] = f }

// LSN returns the page's last log sequence number (WAL integration).
func (p *Page) LSN() uint64 { return binary.LittleEndian.Uint64(p.Data[offLSN:]) }

// SetLSN stamps the page with a log sequence number.
func (p *Page) SetLSN(lsn uint64) { binary.LittleEndian.PutUint64(p.Data[offLSN:], lsn) }

// Next returns the next-page pointer of the page chain.
func (p *Page) Next() PageID { return PageID(binary.LittleEndian.Uint64(p.Data[offNext:])) }

// SetNext sets the next-page pointer.
func (p *Page) SetNext(id PageID) { binary.LittleEndian.PutUint64(p.Data[offNext:], uint64(id)) }

// Prev returns the previous-page pointer of the page chain.
func (p *Page) Prev() PageID { return PageID(binary.LittleEndian.Uint64(p.Data[offPrev:])) }

// SetPrev sets the previous-page pointer.
func (p *Page) SetPrev(id PageID) { binary.LittleEndian.PutUint64(p.Data[offPrev:], uint64(id)) }

// Payload returns the writable payload area beyond the header.
func (p *Page) Payload() []byte { return p.Data[HeaderSize:] }

// UpdateChecksum recomputes and stores the page checksum. It must be
// called before a page is written to a device.
func (p *Page) UpdateChecksum() {
	sum := crc32.Checksum(p.Data[offLSN:], castagnoli)
	binary.LittleEndian.PutUint32(p.Data[offChecksum:], sum)
}

// VerifyChecksum reports whether the stored checksum matches the page
// content. A brand-new zero page verifies (checksum of zeros).
func (p *Page) VerifyChecksum() bool {
	want := binary.LittleEndian.Uint32(p.Data[offChecksum:])
	return want == crc32.Checksum(p.Data[offLSN:], castagnoli)
}

// Checksum returns the stored checksum value.
func (p *Page) Checksum() uint32 { return binary.LittleEndian.Uint32(p.Data[offChecksum:]) }

// DiffRange returns the smallest [lo, hi) range over which a and b
// differ ((0, 0) when they are identical). WAL writers use it to log
// minimal physical before/after images of a page mutation.
func DiffRange(a, b []byte) (int, int) {
	lo := 0
	for lo < len(a) && a[lo] == b[lo] {
		lo++
	}
	if lo == len(a) {
		return 0, 0
	}
	hi := len(a)
	for hi > lo && a[hi-1] == b[hi-1] {
		hi--
	}
	return lo, hi
}
