package sql

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/access"
	"repro/internal/buffer"
	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/index"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/undo"
	"repro/internal/wal"
)

// Engine errors.
var (
	// ErrNoActiveTxn is returned by COMMIT/ROLLBACK without BEGIN.
	ErrNoActiveTxn = errors.New("sql: no active transaction")
	// ErrTxnOpen is returned by BEGIN when a transaction is active.
	ErrTxnOpen = errors.New("sql: transaction already open")
	// ErrNotNull is returned when a NOT NULL column receives NULL.
	ErrNotNull = errors.New("sql: NOT NULL constraint violated")
	// ErrArity is returned when INSERT arity mismatches the table.
	ErrArity = errors.New("sql: column count mismatch")
)

// Result is the outcome of one statement.
type Result struct {
	// Cols names the result columns (SELECT only).
	Cols []string
	// Rows holds the result rows (SELECT only).
	Rows []access.Row
	// Affected counts modified rows for DML, 0 otherwise.
	Affected int
}

// Engine executes SQL statements against the storage stack: catalog,
// heap files, B+tree indexes and the transaction manager. It is the
// implementation behind the Data Services query interface.
//
// Statement-level isolation comes from the lock manager (shared/
// exclusive table locks acquired per statement); page-level consistency
// from the buffer pool's latches. The engine's own mutex is catalog-
// level only — a read-write lock over the open-heap/open-tree maps and
// session state, held for map lookups, never across statement
// execution — so reads on different tables (and on the same table)
// proceed in parallel.
type Engine struct {
	fm   *storage.FileManager
	pool *buffer.Manager
	cat  *catalog.Catalog
	txns *txn.Manager // may be nil: no locking/durability

	mu      sync.RWMutex
	heaps   map[string]*access.HeapFile
	trees   map[storage.PageID]*index.BTree
	current *txn.Txn // session transaction from BEGIN
	wal     *wal.Log
	undoex  *undo.Executor
	failed  error // fatal engine fault; all further statements refused
}

// NewEngine assembles an engine over an opened storage stack.
func NewEngine(fm *storage.FileManager, pool *buffer.Manager, cat *catalog.Catalog, txns *txn.Manager) *Engine {
	return &Engine{
		fm:    fm,
		pool:  pool,
		cat:   cat,
		txns:  txns,
		heaps: make(map[string]*access.HeapFile),
		trees: make(map[storage.PageID]*index.BTree),
	}
}

// Catalog exposes the engine's catalog.
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// Pool exposes the engine's buffer manager (monitoring services read
// its statistics).
func (e *Engine) Pool() *buffer.Manager { return e.pool }

// SetWAL attaches a write-ahead log applied to every heap and B+tree
// the engine opens (call once at startup, before any statement runs).
func (e *Engine) SetWAL(l *wal.Log) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.wal = l
	for _, h := range e.heaps {
		h.SetLog(l)
	}
	for _, t := range e.trees {
		t.SetLog(l)
	}
}

// SetUndo attaches the logical-undo executor; every tree the engine
// opens registers with it so rollbacks (live and post-crash) run
// against the same handles the engine uses.
func (e *Engine) SetUndo(ex *undo.Executor) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.undoex = ex
	for _, t := range e.trees {
		ex.Register(t)
	}
}

// configureTree wires a freshly opened tree into the engine's WAL,
// system transactions, logged free path and undo registry. Callers hold
// e.mu.
func (e *Engine) configureTreeLocked(t *index.BTree) {
	if e.wal != nil {
		t.SetLog(e.wal)
	}
	if e.txns != nil {
		t.SetSystemTxns(e.txns.SystemHooksHeldLatches())
	}
	t.SetFreer(e.fm.FreePagesLogged)
	if e.undoex != nil {
		e.undoex.Register(t)
	}
}

// txc converts the concrete transaction into the access-layer logging
// hook, avoiding a typed-nil interface when tx is nil.
func txc(tx *txn.Txn) access.TxnContext {
	if tx == nil {
		return nil
	}
	return tx
}

func (e *Engine) heap(t *catalog.Table) (*access.HeapFile, error) {
	e.mu.RLock()
	if h, ok := e.heaps[t.HeapFile]; ok {
		e.mu.RUnlock()
		return h, nil
	}
	e.mu.RUnlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.heapLocked(t)
}

func (e *Engine) heapLocked(t *catalog.Table) (*access.HeapFile, error) {
	if h, ok := e.heaps[t.HeapFile]; ok {
		return h, nil
	}
	h, err := access.OpenHeap(t.HeapFile, e.fm, e.pool)
	if err != nil {
		return nil, err
	}
	if e.wal != nil {
		h.SetLog(e.wal)
	}
	if e.txns != nil {
		h.SetSystemTxns(e.txns.SystemHooks())
	}
	e.heaps[t.HeapFile] = h
	return h, nil
}

// Execute parses and executes one statement.
func (e *Engine) Execute(ctx context.Context, src string) (*Result, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return e.ExecuteStmt(ctx, st)
}

// MustExec is a test/demo helper: Execute or panic.
func (e *Engine) MustExec(ctx context.Context, src string) *Result {
	r, err := e.Execute(ctx, src)
	if err != nil {
		panic(fmt.Sprintf("sql: %q: %v", src, err))
	}
	return r
}

// poison takes the engine offline: after a rollback that failed midway
// (pages half-rewound) or whose index-meta resynchronisation failed
// (cached B+tree roots possibly pointing into rewound pages), running
// further statements would corrupt live data. Mirrors the KV core's
// failed-rollback poisoning.
func (e *Engine) poison(err error) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.failed == nil {
		e.failed = fmt.Errorf("sql: engine offline after failed rollback: %w", err)
	}
	return e.failed
}

// ExecuteStmt executes a parsed statement. DML and SELECT run under the
// session transaction when one is open, otherwise under a per-statement
// auto-commit transaction (when a transaction manager is attached).
func (e *Engine) ExecuteStmt(ctx context.Context, st Statement) (*Result, error) {
	e.mu.RLock()
	if ferr := e.failed; ferr != nil {
		e.mu.RUnlock()
		return nil, ferr
	}
	e.mu.RUnlock()
	switch s := st.(type) {
	case *Begin:
		return e.begin()
	case *Commit:
		return e.commitSession()
	case *Rollback:
		return e.rollbackSession()
	case *CreateTable:
		return e.createTable(s)
	case *CreateIndex:
		return e.createIndex(ctx, s)
	case *CreateView:
		return e.createView(s)
	case *Drop:
		return e.drop(s)
	}

	tx, auto, err := e.stmtTxn()
	if err != nil {
		return nil, err
	}
	res, err := e.runDMLOrQuery(ctx, st, tx)
	if auto {
		if err != nil {
			// Logical undo rolls the statement back through the live
			// access methods: in-memory tree state stays coherent, no
			// metadata reload is needed.
			if aerr := e.txns.Abort(tx); aerr != nil {
				err = fmt.Errorf("%w (%v)", err, e.poison(aerr))
			}
		} else if cerr := e.txns.Commit(tx); cerr != nil {
			return nil, cerr
		}
	}
	return res, err
}

func (e *Engine) stmtTxn() (*txn.Txn, bool, error) {
	e.mu.Lock()
	cur := e.current
	e.mu.Unlock()
	if cur != nil {
		return cur, false, nil
	}
	if e.txns == nil {
		return nil, false, nil
	}
	tx, err := e.txns.Begin()
	if err != nil {
		return nil, false, err
	}
	return tx, true, nil
}

func (e *Engine) runDMLOrQuery(ctx context.Context, st Statement, tx *txn.Txn) (*Result, error) {
	switch s := st.(type) {
	case *Select:
		if err := e.lockTables(ctx, tx, selectTables(s), txn.Shared); err != nil {
			return nil, err
		}
		op, err := e.planSelect(ctx, s)
		if err != nil {
			return nil, err
		}
		rows, err := exec.Collect(ctx, op)
		if err != nil {
			return nil, err
		}
		return &Result{Cols: op.Columns(), Rows: rows}, nil
	case *Insert:
		if err := e.lockTables(ctx, tx, []string{s.Table}, txn.Exclusive); err != nil {
			return nil, err
		}
		return e.runInsert(ctx, s, tx)
	case *Update:
		if err := e.lockTables(ctx, tx, []string{s.Table}, txn.Exclusive); err != nil {
			return nil, err
		}
		return e.runUpdate(ctx, s, tx)
	case *Delete:
		if err := e.lockTables(ctx, tx, []string{s.Table}, txn.Exclusive); err != nil {
			return nil, err
		}
		return e.runDelete(ctx, s, tx)
	}
	return nil, fmt.Errorf("sql: unsupported statement %T", st)
}

func selectTables(s *Select) []string {
	var out []string
	for _, r := range s.From {
		out = append(out, r.Table)
	}
	return out
}

func (e *Engine) lockTables(ctx context.Context, tx *txn.Txn, tables []string, mode txn.LockMode) error {
	if tx == nil {
		return nil
	}
	for _, t := range tables {
		if err := tx.Lock(ctx, "table:"+strings.ToLower(t), mode); err != nil {
			return err
		}
	}
	return nil
}

// --- session transactions ---

func (e *Engine) begin() (*Result, error) {
	if e.txns == nil {
		return nil, fmt.Errorf("sql: engine has no transaction manager")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.current != nil {
		return nil, ErrTxnOpen
	}
	tx, err := e.txns.Begin()
	if err != nil {
		return nil, err
	}
	e.current = tx
	return &Result{}, nil
}

func (e *Engine) commitSession() (*Result, error) {
	e.mu.Lock()
	tx := e.current
	e.current = nil
	e.mu.Unlock()
	if tx == nil {
		return nil, ErrNoActiveTxn
	}
	if err := e.txns.Commit(tx); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (e *Engine) rollbackSession() (*Result, error) {
	e.mu.Lock()
	tx := e.current
	e.current = nil
	e.mu.Unlock()
	if tx == nil {
		return nil, ErrNoActiveTxn
	}
	if err := e.txns.Abort(tx); err != nil {
		return nil, e.poison(err)
	}
	return &Result{}, nil
}

// --- DDL ---

func (e *Engine) createTable(s *CreateTable) (*Result, error) {
	cols := make([]catalog.Column, len(s.Columns))
	for i, c := range s.Columns {
		t, err := access.ParseType(c.TypeName)
		if err != nil {
			return nil, err
		}
		cols[i] = catalog.Column{Name: c.Name, Type: t, NotNull: c.NotNull}
	}
	tbl := &catalog.Table{Name: s.Name, Columns: cols}
	if err := e.cat.CreateTable(tbl); err != nil {
		return nil, err
	}
	if _, err := e.heap(tbl); err != nil {
		return nil, err
	}
	return &Result{}, e.pool.FlushAll()
}

func (e *Engine) createIndex(ctx context.Context, s *CreateIndex) (*Result, error) {
	tbl, err := e.cat.GetTable(s.Table)
	if err != nil {
		return nil, err
	}
	colIdx, err := tbl.ColumnIndex(s.Column)
	if err != nil {
		return nil, err
	}
	tree, metaID, err := index.Create(e.pool, s.Unique)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.configureTreeLocked(tree)
	e.mu.Unlock()
	// Backfill from existing rows.
	h, err := e.heap(tbl)
	if err != nil {
		return nil, err
	}
	err = h.Scan(func(rid access.RID, rec []byte) error {
		row, err := access.DecodeRow(rec)
		if err != nil {
			return err
		}
		return tree.Insert(access.EncodeKey(row[colIdx]), rid)
	})
	if err != nil {
		_ = tree.Drop()
		return nil, err
	}
	def := catalog.IndexDef{Name: s.Name, Column: s.Column, MetaPage: metaID, Unique: s.Unique}
	if err := e.cat.AddIndex(tbl.Name, def); err != nil {
		_ = tree.Drop()
		return nil, err
	}
	e.mu.Lock()
	e.trees[metaID] = tree
	e.mu.Unlock()
	return &Result{}, e.pool.FlushAll()
}

func (e *Engine) createView(s *CreateView) (*Result, error) {
	if err := e.cat.CreateView(&catalog.View{Name: s.Name, Query: s.Query}); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (e *Engine) drop(s *Drop) (*Result, error) {
	switch s.Kind {
	case "TABLE":
		tbl, err := e.cat.DropTable(s.Name)
		if err != nil {
			return nil, err
		}
		for _, ix := range tbl.Indexes {
			tree, err := e.tree(ix)
			if err == nil {
				_ = tree.Drop()
			}
			e.mu.Lock()
			delete(e.trees, ix.MetaPage)
			if e.undoex != nil {
				e.undoex.Unregister(ix.MetaPage)
			}
			e.mu.Unlock()
		}
		e.mu.Lock()
		h := e.heaps[tbl.HeapFile]
		delete(e.heaps, tbl.HeapFile)
		e.mu.Unlock()
		if h == nil {
			h, err = access.OpenHeap(tbl.HeapFile, e.fm, e.pool)
			if err != nil {
				return nil, err
			}
		}
		if err := h.Drop(); err != nil {
			return nil, err
		}
		return &Result{}, e.pool.FlushAll()
	case "INDEX":
		def, _, err := e.cat.DropIndex(s.Name)
		if err != nil {
			return nil, err
		}
		tree, err := e.tree(def)
		if err == nil {
			_ = tree.Drop()
		}
		e.mu.Lock()
		delete(e.trees, def.MetaPage)
		if e.undoex != nil {
			e.undoex.Unregister(def.MetaPage)
		}
		e.mu.Unlock()
		return &Result{}, e.pool.FlushAll()
	case "VIEW":
		if err := e.cat.DropView(s.Name); err != nil {
			return nil, err
		}
		return &Result{}, nil
	}
	return nil, fmt.Errorf("sql: unsupported DROP %s", s.Kind)
}

func (e *Engine) tree(def catalog.IndexDef) (*index.BTree, error) {
	e.mu.RLock()
	if t, ok := e.trees[def.MetaPage]; ok {
		e.mu.RUnlock()
		return t, nil
	}
	e.mu.RUnlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if t, ok := e.trees[def.MetaPage]; ok {
		return t, nil
	}
	t, err := index.Open(e.pool, def.MetaPage)
	if err != nil {
		return nil, err
	}
	e.configureTreeLocked(t)
	e.trees[def.MetaPage] = t
	return t, nil
}

// --- DML ---

type openIndex struct {
	def    catalog.IndexDef
	tree   *index.BTree
	colIdx int
}

func (e *Engine) openIndexes(tbl *catalog.Table) ([]openIndex, error) {
	var out []openIndex
	for _, def := range tbl.Indexes {
		tree, err := e.tree(def)
		if err != nil {
			return nil, err
		}
		ci, err := tbl.ColumnIndex(def.Column)
		if err != nil {
			return nil, err
		}
		out = append(out, openIndex{def: def, tree: tree, colIdx: ci})
	}
	return out, nil
}

func (e *Engine) runInsert(ctx context.Context, s *Insert, tx *txn.Txn) (*Result, error) {
	tbl, err := e.cat.GetTable(s.Table)
	if err != nil {
		return nil, err
	}
	h, err := e.heap(tbl)
	if err != nil {
		return nil, err
	}
	indexes, err := e.openIndexes(tbl)
	if err != nil {
		return nil, err
	}
	// Column mapping.
	targets := make([]int, 0, len(tbl.Columns))
	if len(s.Columns) == 0 {
		for i := range tbl.Columns {
			targets = append(targets, i)
		}
	} else {
		for _, c := range s.Columns {
			i, err := tbl.ColumnIndex(c)
			if err != nil {
				return nil, err
			}
			targets = append(targets, i)
		}
	}
	affected := 0
	for _, exprRow := range s.Rows {
		if len(exprRow) != len(targets) {
			return nil, fmt.Errorf("%w: %d values for %d columns", ErrArity, len(exprRow), len(targets))
		}
		row := make(access.Row, len(tbl.Columns))
		for i := range row {
			row[i] = access.Null()
		}
		for i, ex := range exprRow {
			v, err := ex.Eval(nil, nil)
			if err != nil {
				return nil, err
			}
			cv, err := coerce(v, tbl.Columns[targets[i]].Type)
			if err != nil {
				return nil, fmt.Errorf("%s.%s: %w", tbl.Name, tbl.Columns[targets[i]].Name, err)
			}
			row[targets[i]] = cv
		}
		for i, col := range tbl.Columns {
			if col.NotNull && row[i].IsNull() {
				return nil, fmt.Errorf("%w: %s.%s", ErrNotNull, tbl.Name, col.Name)
			}
		}
		if err := e.insertRow(h, indexes, tx, row); err != nil {
			return nil, err
		}
		affected++
	}
	return &Result{Affected: affected}, nil
}

// insertRow writes the row and maintains every index through the
// trees' transactional hooks, so heap and index mutations share one
// physical redo/undo story: an abort rewinds the index pages from
// before images, exactly like the heap. On index failure (e.g. unique
// violation) the partial work of this row is reverted inside the same
// transaction — the statement fails but a surrounding session
// transaction stays usable.
func (e *Engine) insertRow(h *access.HeapFile, indexes []openIndex, tx *txn.Txn, row access.Row) error {
	rid, err := h.Insert(tx, access.EncodeRow(row))
	if err != nil {
		return err
	}
	c := txc(tx)
	for k, ix := range indexes {
		key := access.EncodeKey(row[ix.colIdx])
		if err := ix.tree.InsertTx(c, key, rid); err != nil {
			// Roll back the partial work of this row, still under tx.
			for j := 0; j < k; j++ {
				_, _ = indexes[j].tree.DeleteTx(c, access.EncodeKey(row[indexes[j].colIdx]), rid)
			}
			_ = h.Delete(tx, rid)
			return err
		}
	}
	return nil
}

// coerce adapts a value to a column type (int <-> float, NULL passes).
func coerce(v access.Value, t access.Type) (access.Value, error) {
	if v.IsNull() || v.Type == t {
		return v, nil
	}
	switch {
	case t == access.TypeFloat && v.Type == access.TypeInt:
		return access.NewFloat(float64(v.Int)), nil
	case t == access.TypeInt && v.Type == access.TypeFloat && v.Float == float64(int64(v.Float)):
		return access.NewInt(int64(v.Float)), nil
	}
	return access.Null(), fmt.Errorf("sql: cannot store %s into %s column", v.Type, t)
}

// matchTarget finds rows matching a WHERE predicate in a table.
func (e *Engine) matchTarget(ctx context.Context, tbl *catalog.Table, where exec.Expr) ([]access.RID, []access.Row, error) {
	h, err := e.heap(tbl)
	if err != nil {
		return nil, nil, err
	}
	cols := make([]string, len(tbl.Columns))
	for i, c := range tbl.Columns {
		cols[i] = tbl.Name + "." + c.Name
	}
	var rids []access.RID
	var rows []access.Row
	err = h.Scan(func(rid access.RID, rec []byte) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		row, err := access.DecodeRow(rec)
		if err != nil {
			return err
		}
		if where != nil {
			ok, err := exec.Truthy(where, row, cols)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		rids = append(rids, rid)
		rows = append(rows, row.Clone())
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return rids, rows, nil
}

func (e *Engine) runUpdate(ctx context.Context, s *Update, tx *txn.Txn) (*Result, error) {
	tbl, err := e.cat.GetTable(s.Table)
	if err != nil {
		return nil, err
	}
	h, err := e.heap(tbl)
	if err != nil {
		return nil, err
	}
	indexes, err := e.openIndexes(tbl)
	if err != nil {
		return nil, err
	}
	rids, rows, err := e.matchTarget(ctx, tbl, s.Where)
	if err != nil {
		return nil, err
	}
	cols := make([]string, len(tbl.Columns))
	for i, c := range tbl.Columns {
		cols[i] = tbl.Name + "." + c.Name
	}
	setIdx := make([]int, len(s.Sets))
	for i, set := range s.Sets {
		ci, err := tbl.ColumnIndex(set.Column)
		if err != nil {
			return nil, err
		}
		setIdx[i] = ci
	}
	for k, rid := range rids {
		oldRow := rows[k]
		newRow := oldRow.Clone()
		for i, set := range s.Sets {
			v, err := set.Value.Eval(oldRow, cols)
			if err != nil {
				return nil, err
			}
			cv, err := coerce(v, tbl.Columns[setIdx[i]].Type)
			if err != nil {
				return nil, err
			}
			if tbl.Columns[setIdx[i]].NotNull && cv.IsNull() {
				return nil, fmt.Errorf("%w: %s.%s", ErrNotNull, tbl.Name, tbl.Columns[setIdx[i]].Name)
			}
			newRow[setIdx[i]] = cv
		}
		nrid, err := h.Update(tx, rid, access.EncodeRow(newRow))
		if err != nil {
			return nil, err
		}
		for _, ix := range indexes {
			oldKey := access.EncodeKey(oldRow[ix.colIdx])
			newKey := access.EncodeKey(newRow[ix.colIdx])
			if string(oldKey) == string(newKey) && nrid == rid {
				continue
			}
			if _, err := ix.tree.DeleteTx(txc(tx), oldKey, rid); err != nil {
				return nil, err
			}
			if err := ix.tree.InsertTx(txc(tx), newKey, nrid); err != nil {
				return nil, err
			}
		}
	}
	return &Result{Affected: len(rids)}, nil
}

func (e *Engine) runDelete(ctx context.Context, s *Delete, tx *txn.Txn) (*Result, error) {
	tbl, err := e.cat.GetTable(s.Table)
	if err != nil {
		return nil, err
	}
	h, err := e.heap(tbl)
	if err != nil {
		return nil, err
	}
	indexes, err := e.openIndexes(tbl)
	if err != nil {
		return nil, err
	}
	rids, rows, err := e.matchTarget(ctx, tbl, s.Where)
	if err != nil {
		return nil, err
	}
	for k, rid := range rids {
		if err := h.Delete(tx, rid); err != nil {
			return nil, err
		}
		for _, ix := range indexes {
			key := access.EncodeKey(rows[k][ix.colIdx])
			if _, err := ix.tree.DeleteTx(txc(tx), key, rid); err != nil {
				return nil, err
			}
		}
	}
	return &Result{Affected: len(rids)}, nil
}
