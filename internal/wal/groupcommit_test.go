package wal

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/storage"
)

// countingDevice wraps a Device, counting Sync calls and optionally
// slowing them down to widen the group-commit window, the way a real
// fsync would.
type countingDevice struct {
	storage.Device
	syncs     atomic.Uint64
	syncDelay time.Duration
}

func (d *countingDevice) Sync() error {
	if d.syncDelay > 0 {
		time.Sleep(d.syncDelay)
	}
	d.syncs.Add(1)
	return d.Device.Sync()
}

// TestGroupCommitCoalescesSyncs runs many concurrent committers and
// asserts the log issues fewer device syncs than commits: followers
// ride the leader's sync instead of issuing their own.
func TestGroupCommitCoalescesSyncs(t *testing.T) {
	dev := &countingDevice{Device: storage.NewMemDevice(), syncDelay: 200 * time.Microsecond}
	l, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	opened := dev.syncs.Load() // Open may sync while initialising

	const committers = 16
	const perCommitter = 12
	var wg sync.WaitGroup
	errCh := make(chan error, committers)
	for c := 0; c < committers; c++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for i := 0; i < perCommitter; i++ {
				lsn, err := l.Append(&Record{Txn: id, Type: RecCommit})
				if err != nil {
					errCh <- err
					return
				}
				if err := l.Flush(lsn + 1); err != nil {
					errCh <- err
					return
				}
			}
		}(uint64(c + 1))
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}

	commits := uint64(committers * perCommitter)
	syncs := dev.syncs.Load() - opened
	if syncs >= commits {
		t.Fatalf("group commit issued %d syncs for %d commits — no coalescing", syncs, commits)
	}
	if l.Syncs() != syncs {
		t.Fatalf("Log.Syncs() = %d, device counted %d", l.Syncs(), syncs)
	}
	// Every commit must still be durable.
	var seen int
	if err := l.Iterate(ZeroLSN, func(r *Record) error { seen++; return nil }); err != nil {
		t.Fatal(err)
	}
	if uint64(seen) != commits {
		t.Fatalf("iterated %d records, want %d", seen, commits)
	}
}

// TestGroupWindowBatchesBurst checks that a non-zero window batches a
// burst of committers into very few syncs.
func TestGroupWindowBatchesBurst(t *testing.T) {
	dev := &countingDevice{Device: storage.NewMemDevice()}
	l, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	l.SetGroupWindow(2*time.Millisecond, 1<<20)
	opened := dev.syncs.Load()

	const committers = 8
	var wg sync.WaitGroup
	for c := 0; c < committers; c++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			lsn, _ := l.Append(&Record{Txn: id, Type: RecCommit})
			_ = l.Flush(lsn + 1)
		}(uint64(c + 1))
	}
	wg.Wait()
	if syncs := dev.syncs.Load() - opened; syncs >= committers {
		t.Fatalf("windowed group commit used %d syncs for %d commits", syncs, committers)
	}
}

// TestGroupBytesEndsWindowEarly: once groupBytes are pending, the
// leader must not wait out the rest of the window.
func TestGroupBytesEndsWindowEarly(t *testing.T) {
	l, err := Open(storage.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	l.SetGroupWindow(500*time.Millisecond, 1)
	lsn, err := l.Append(&Record{Txn: 1, Type: RecCommit})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := l.Flush(lsn + 1); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 250*time.Millisecond {
		t.Fatalf("flush took %v despite byte trigger already met", el)
	}
}

// TestEvictFlushClosesWindowEarly: a write-ahead (eviction-path) flush
// arriving while a leader holds a long group window open must close
// the window early instead of waiting it out — the caller holds a
// buffer shard lock.
func TestEvictFlushClosesWindowEarly(t *testing.T) {
	l, err := Open(storage.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	l.SetGroupWindow(500*time.Millisecond, 0)
	lsn, err := l.Append(&Record{Txn: 1, Type: RecCommit})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	done := make(chan error, 1)
	go func() { done <- l.Flush(lsn + 1) }() // windowed leader
	time.Sleep(10 * time.Millisecond)        // let it enter the window
	lsn2, err := l.Append(&Record{Txn: 2, Type: RecUpdate, PageID: 1, Offset: 32,
		Before: []byte("a"), After: []byte("b")})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.BeforeEvict()(1, uint64(lsn2)); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 250*time.Millisecond {
		t.Fatalf("eviction flush waited %v behind a 500ms window", el)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if l.DurableBoundary() <= lsn2 {
		t.Fatal("eviction flush returned before its record was durable")
	}
}

// TestSyncEveryFlushBaseline pins the baseline mode: one device sync
// per flush call, as before group commit.
func TestSyncEveryFlushBaseline(t *testing.T) {
	dev := &countingDevice{Device: storage.NewMemDevice()}
	l, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	l.SetSyncEveryFlush(true)
	opened := dev.syncs.Load()
	for i := 0; i < 5; i++ {
		lsn, err := l.Append(&Record{Txn: uint64(i + 1), Type: RecCommit})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Flush(lsn + 1); err != nil {
			t.Fatal(err)
		}
	}
	if syncs := dev.syncs.Load() - opened; syncs != 5 {
		t.Fatalf("baseline issued %d syncs for 5 flushes", syncs)
	}
}

// TestDurableBoundaryPinsDurability pins the durability contract:
// after a crash (reopen of the same device), every record with
// LSN < DurableBoundary survives, and records appended after the last
// flush are gone.
func TestDurableBoundaryPinsDurability(t *testing.T) {
	dev := storage.NewMemDevice()
	l, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	var durable []LSN
	for i := 0; i < 5; i++ {
		lsn, err := l.Append(&Record{Txn: uint64(i + 1), Type: RecBegin})
		if err != nil {
			t.Fatal(err)
		}
		durable = append(durable, lsn)
	}
	if err := l.Flush(l.NextLSN()); err != nil {
		t.Fatal(err)
	}
	boundary := l.DurableBoundary()
	for _, lsn := range durable {
		if lsn >= boundary {
			t.Fatalf("flushed record %d not below boundary %d", lsn, boundary)
		}
	}
	// Buffered but never flushed: lost at the crash.
	lost, err := l.Append(&Record{Txn: 99, Type: RecBegin})
	if err != nil {
		t.Fatal(err)
	}
	if lost < boundary {
		t.Fatalf("unflushed record %d below boundary %d", lost, boundary)
	}

	// "Crash": reopen the device without flushing.
	l2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[LSN]bool)
	if err := l2.Iterate(ZeroLSN, func(r *Record) error { got[r.LSN] = true; return nil }); err != nil {
		t.Fatal(err)
	}
	for _, lsn := range durable {
		if !got[lsn] {
			t.Fatalf("record %d < boundary %d lost after reopen", lsn, boundary)
		}
	}
	if got[lost] {
		t.Fatalf("record %d >= boundary survived without a flush", lost)
	}
}

// TestFlushErrorRestoresPending: a failed flush must keep the pending
// records so a later flush persists them.
func TestFlushErrorRestoresPending(t *testing.T) {
	dev := storage.NewMemDevice()
	l, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := l.Append(&Record{Txn: 1, Type: RecCommit})
	if err != nil {
		t.Fatal(err)
	}
	dev.SetFailWrites(true)
	if err := l.Flush(lsn + 1); err == nil {
		t.Fatal("flush must fail with injected write failure")
	}
	if l.DurableBoundary() > lsn {
		t.Fatal("boundary advanced past an unwritten record")
	}
	dev.SetFailWrites(false)
	if err := l.Flush(lsn + 1); err != nil {
		t.Fatal(err)
	}
	var seen int
	if err := l.Iterate(ZeroLSN, func(r *Record) error { seen++; return nil }); err != nil {
		t.Fatal(err)
	}
	if seen != 1 {
		t.Fatalf("iterated %d records after retried flush", seen)
	}
	// Appends made while the log was failing are also recovered.
	dev.SetFailWrites(true)
	a, _ := l.Append(&Record{Txn: 2, Type: RecBegin})
	_ = l.Flush(a + 1) // fails, restores buffer
	b, _ := l.Append(&Record{Txn: 2, Type: RecCommit})
	dev.SetFailWrites(false)
	if err := l.Flush(b + 1); err != nil {
		t.Fatal(err)
	}
	seen = 0
	if err := l.Iterate(ZeroLSN, func(r *Record) error { seen++; return nil }); err != nil {
		t.Fatal(err)
	}
	if seen != 3 {
		t.Fatalf("iterated %d records, want 3", seen)
	}
}

// TestCommitSiblingsGateSkipsWindow checks the Postgres-style
// commit_siblings gate: a lone committer must not sleep out a long
// group window, while a committer with siblings in flight still holds
// it open to batch them.
func TestCommitSiblingsGateSkipsWindow(t *testing.T) {
	l, err := Open(storage.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	l.SetGroupWindow(500*time.Millisecond, 0)
	siblings := 0
	l.SetCommitSiblings(1, func() int { return siblings })

	// Lone committer: the gate skips the 500ms window entirely.
	lsn, _ := l.Append(&Record{Txn: 1, Type: RecCommit})
	start := time.Now()
	if err := l.Flush(lsn + 1); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 100*time.Millisecond {
		t.Fatalf("lone committer waited %v behind the gated window", el)
	}
	if l.WindowSkips() == 0 {
		t.Fatal("gate did not record the skipped window")
	}

	// With siblings reported, the window is held open again.
	l.SetGroupWindow(30*time.Millisecond, 0)
	siblings = 3
	lsn, _ = l.Append(&Record{Txn: 2, Type: RecCommit})
	start = time.Now()
	if err := l.Flush(lsn + 1); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 20*time.Millisecond {
		t.Fatalf("windowed flush with siblings returned in %v, want >= ~30ms", el)
	}
}
