package buffer

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/storage"
)

func newPool(t *testing.T, frames int, policy Policy) (*Manager, *storage.DiskManager) {
	t.Helper()
	d, err := storage.OpenDisk(storage.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	return New(d, frames, policy), d
}

func allocPages(t *testing.T, d *storage.DiskManager, n int) []storage.PageID {
	t.Helper()
	ids := make([]storage.PageID, n)
	for i := range ids {
		id, err := d.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	return ids
}

func TestPinUnpinReadWrite(t *testing.T) {
	m, d := newPool(t, 4, NewLRU())
	ids := allocPages(t, d, 1)
	f, err := m.Pin(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	copy(f.Page().Payload(), "buffered")
	if err := m.Unpin(ids[0], true); err != nil {
		t.Fatal(err)
	}
	// Resident read hits the cache.
	f2, err := m.Pin(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if string(f2.Page().Payload()[:8]) != "buffered" {
		t.Fatal("cache lost data")
	}
	if err := m.Unpin(ids[0], false); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", st.HitRate())
	}
	// Not yet flushed to disk (write-back).
	raw := make([]byte, storage.PageSize)
	if err := d.ReadPage(ids[0], raw); err != nil {
		t.Fatal(err)
	}
	if string(storage.WrapPage(ids[0], raw).Payload()[:8]) == "buffered" {
		t.Fatal("write-back pool must not write through")
	}
	if err := m.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadPage(ids[0], raw); err != nil {
		t.Fatal(err)
	}
	if string(storage.WrapPage(ids[0], raw).Payload()[:8]) != "buffered" {
		t.Fatal("flush lost data")
	}
}

func TestUnpinErrors(t *testing.T) {
	m, d := newPool(t, 2, NewLRU())
	ids := allocPages(t, d, 1)
	if err := m.Unpin(ids[0], false); !errors.Is(err, ErrNotPinned) {
		t.Fatalf("err = %v", err)
	}
	f, _ := m.Pin(ids[0])
	_ = f
	if err := m.Unpin(ids[0], false); err != nil {
		t.Fatal(err)
	}
	if err := m.Unpin(ids[0], false); !errors.Is(err, ErrNotPinned) {
		t.Fatalf("double unpin err = %v", err)
	}
}

func TestEvictionWritesBackDirty(t *testing.T) {
	m, d := newPool(t, 2, NewLRU())
	ids := allocPages(t, d, 3)
	f, _ := m.Pin(ids[0])
	copy(f.Page().Payload(), "dirty0")
	_ = m.Unpin(ids[0], true)
	for _, id := range ids[1:] {
		f, err := m.Pin(id)
		if err != nil {
			t.Fatal(err)
		}
		_ = f
		_ = m.Unpin(id, false)
	}
	if m.Resident(ids[0]) {
		t.Fatal("page 0 should have been evicted (LRU)")
	}
	raw := make([]byte, storage.PageSize)
	if err := d.ReadPage(ids[0], raw); err != nil {
		t.Fatal(err)
	}
	if string(storage.WrapPage(ids[0], raw).Payload()[:6]) != "dirty0" {
		t.Fatal("eviction must write back dirty page")
	}
	if st := m.Stats(); st.Evictions == 0 || st.Flushes == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPoolExhaustion(t *testing.T) {
	m, d := newPool(t, 2, NewLRU())
	ids := allocPages(t, d, 3)
	if _, err := m.Pin(ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Pin(ids[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Pin(ids[2]); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("err = %v", err)
	}
	_ = m.Unpin(ids[0], false)
	if _, err := m.Pin(ids[2]); err != nil {
		t.Fatalf("after unpin: %v", err)
	}
}

func TestNewPagePinned(t *testing.T) {
	m, _ := newPool(t, 2, NewLRU())
	f, err := m.NewPage(storage.PageTypeHeap)
	if err != nil {
		t.Fatal(err)
	}
	if f.Page().Type() != storage.PageTypeHeap {
		t.Fatal("type not set")
	}
	if m.PinCount(f.ID) != 1 {
		t.Fatalf("pin count = %d", m.PinCount(f.ID))
	}
	if err := m.Unpin(f.ID, true); err != nil {
		t.Fatal(err)
	}
}

func TestDeallocateDropsFrame(t *testing.T) {
	m, d := newPool(t, 2, NewLRU())
	ids := allocPages(t, d, 1)
	f, _ := m.Pin(ids[0])
	_ = f
	if err := m.Deallocate(ids[0]); !errors.Is(err, ErrPinned) {
		t.Fatalf("err = %v", err)
	}
	_ = m.Unpin(ids[0], false)
	if err := m.Deallocate(ids[0]); err != nil {
		t.Fatal(err)
	}
	if m.Resident(ids[0]) {
		t.Fatal("deallocated page still resident")
	}
}

func TestBeforeEvictHookOrdersWrites(t *testing.T) {
	m, d := newPool(t, 1, NewLRU())
	ids := allocPages(t, d, 2)
	var hookCalls []storage.PageID
	m.SetBeforeEvict(func(id storage.PageID, lsn uint64) error {
		hookCalls = append(hookCalls, id)
		return nil
	})
	f, _ := m.Pin(ids[0])
	copy(f.Page().Payload(), "x")
	_ = m.Unpin(ids[0], true)
	// Forcing eviction triggers the hook before write-back.
	if _, err := m.Pin(ids[1]); err != nil {
		t.Fatal(err)
	}
	if len(hookCalls) != 1 || hookCalls[0] != ids[0] {
		t.Fatalf("hook calls = %v", hookCalls)
	}
	_ = m.Unpin(ids[1], false)
	// A failing hook blocks eviction.
	m.SetBeforeEvict(func(id storage.PageID, lsn uint64) error {
		return errors.New("wal not flushed")
	})
	f0, _ := m.Pin(ids[0])
	copy(f0.Page().Payload(), "y")
	_ = m.Unpin(ids[0], true)
	if _, err := m.Pin(ids[1]); err == nil {
		t.Fatal("eviction must fail when hook fails")
	}
}

func TestPageStoreFacade(t *testing.T) {
	m, d := newPool(t, 4, NewClock())
	id, err := m.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, storage.PageSize)
	copy(storage.WrapPage(id, data).Payload(), "facade")
	if err := m.WritePage(id, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, storage.PageSize)
	if err := m.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if string(storage.WrapPage(id, buf).Payload()[:6]) != "facade" {
		t.Fatal("facade read lost data")
	}
	if m.NumPages() != d.NumPages() {
		t.Fatal("NumPages must delegate")
	}
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	// After sync the store sees the bytes.
	raw := make([]byte, storage.PageSize)
	if err := d.ReadPage(id, raw); err != nil {
		t.Fatal(err)
	}
	if string(storage.WrapPage(id, raw).Payload()[:6]) != "facade" {
		t.Fatal("sync did not persist")
	}
}

func TestResizeGrowAndShrink(t *testing.T) {
	m, d := newPool(t, 4, NewLRU())
	ids := allocPages(t, d, 4)
	for _, id := range ids {
		f, err := m.Pin(id)
		if err != nil {
			t.Fatal(err)
		}
		copy(f.Page().Payload(), fmt.Sprintf("p%d", id))
		_ = m.Unpin(id, true)
	}
	// Shrink to 2: dirty pages must be flushed, pool keeps working.
	if err := m.Resize(2); err != nil {
		t.Fatal(err)
	}
	if m.PoolSize() != 2 {
		t.Fatalf("PoolSize = %d", m.PoolSize())
	}
	for _, id := range ids {
		f, err := m.Pin(id)
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("p%d", id)
		if string(f.Page().Payload()[:len(want)]) != want {
			t.Fatalf("data lost for page %d", id)
		}
		_ = m.Unpin(id, false)
	}
	// Grow back.
	if err := m.Resize(8); err != nil {
		t.Fatal(err)
	}
	if m.PoolSize() != 8 {
		t.Fatalf("PoolSize = %d", m.PoolSize())
	}
	// Shrink below pinned count fails.
	f1, _ := m.Pin(ids[0])
	f2, _ := m.Pin(ids[1])
	_, _ = f1, f2
	if err := m.Resize(1); !errors.Is(err, ErrPinned) {
		t.Fatalf("err = %v", err)
	}
	_ = m.Unpin(ids[0], false)
	_ = m.Unpin(ids[1], false)
}

func TestPoliciesBasicVictimOrder(t *testing.T) {
	evictAll := func(int) bool { return true }
	t.Run("lru", func(t *testing.T) {
		p := NewLRU()
		p.Inserted(1)
		p.Inserted(2)
		p.Inserted(3)
		p.Touched(1) // 1 most recent
		if v := p.Victim(evictAll); v != 2 {
			t.Fatalf("victim = %d, want 2", v)
		}
		p.Removed(2)
		if v := p.Victim(evictAll); v != 3 {
			t.Fatalf("victim = %d, want 3", v)
		}
		if v := p.Victim(func(int) bool { return false }); v != -1 {
			t.Fatal("no evictable frame must return -1")
		}
	})
	t.Run("clock", func(t *testing.T) {
		p := NewClock()
		p.Inserted(1)
		p.Inserted(2)
		// All ref bits set: first sweep clears, second returns first.
		v := p.Victim(evictAll)
		if v != 1 && v != 2 {
			t.Fatalf("victim = %d", v)
		}
		p.Removed(1)
		p.Removed(2)
		if v := p.Victim(evictAll); v != -1 {
			t.Fatalf("empty clock victim = %d", v)
		}
	})
	t.Run("2q", func(t *testing.T) {
		p := NewTwoQ()
		p.Inserted(1) // probation
		p.Inserted(2) // probation
		p.Touched(1)  // promoted to main
		// Victim must come from probation (2), protecting the hot 1.
		if v := p.Victim(evictAll); v != 2 {
			t.Fatalf("victim = %d, want 2", v)
		}
		p.Removed(2)
		if v := p.Victim(evictAll); v != 1 {
			t.Fatalf("victim = %d, want 1", v)
		}
	})
}

func TestNewPolicyByName(t *testing.T) {
	if NewPolicy("lru").Name() != "lru" || NewPolicy("clock").Name() != "clock" ||
		NewPolicy("2q").Name() != "2q" || NewPolicy("unknown").Name() != "lru" {
		t.Fatal("NewPolicy naming broken")
	}
}

// Property: under any access pattern, pinned pages are never evicted
// and reads always return what was last written, for every policy.
func TestBufferCoherenceQuick(t *testing.T) {
	for _, mk := range []func() Policy{NewLRU, NewClock, NewTwoQ} {
		policy := mk()
		t.Run(policy.Name(), func(t *testing.T) {
			d, err := storage.OpenDisk(storage.NewMemDevice())
			if err != nil {
				t.Fatal(err)
			}
			m := New(d, 4, mk())
			const npages = 16
			ids := make([]storage.PageID, npages)
			expect := make(map[storage.PageID]byte)
			for i := range ids {
				id, err := d.Allocate()
				if err != nil {
					t.Fatal(err)
				}
				ids[i] = id
				expect[id] = 0
			}
			f := func(ops []uint16) bool {
				for _, op := range ops {
					id := ids[int(op)%npages]
					write := (op>>8)&1 == 1
					fr, err := m.Pin(id)
					if err != nil {
						return false
					}
					payload := fr.Page().Payload()
					if payload[0] != expect[id] {
						return false
					}
					if write {
						v := byte(op >> 9)
						payload[0] = v
						expect[id] = v
					}
					if err := m.Unpin(id, write); err != nil {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(42))}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestHitRateZipfianBetterWith2Q(t *testing.T) {
	// Sanity check rather than a strict ordering claim: a scan mixed
	// into a hot-set workload must not destroy the 2Q hit rate.
	run := func(p Policy) float64 {
		d, _ := storage.OpenDisk(storage.NewMemDevice())
		m := New(d, 8, p)
		ids := make([]storage.PageID, 64)
		for i := range ids {
			ids[i], _ = d.Allocate()
		}
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 4000; i++ {
			var id storage.PageID
			if i%10 == 9 {
				id = ids[rng.Intn(len(ids))] // scan-ish cold access
			} else {
				id = ids[rng.Intn(4)] // hot set of 4
			}
			f, err := m.Pin(id)
			if err != nil {
				t.Fatal(err)
			}
			_ = f
			_ = m.Unpin(id, false)
		}
		return m.Stats().HitRate()
	}
	lru := run(NewLRU())
	twoq := run(NewTwoQ())
	if twoq < 0.5 || lru < 0.5 {
		t.Fatalf("hit rates collapsed: lru=%.2f 2q=%.2f", lru, twoq)
	}
}
