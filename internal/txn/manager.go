package txn

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/storage"
	"repro/internal/wal"
)

// Transaction errors.
var (
	// ErrTxnDone is returned for operations on a finished transaction.
	ErrTxnDone = errors.New("txn: transaction already finished")
	// ErrActiveTxns is returned by Checkpoint while transactions are in
	// flight (sharp checkpoints require a quiescent system).
	ErrActiveTxns = errors.New("txn: active transactions")
	// ErrNoWAL is returned by Checkpoint without an attached log.
	ErrNoWAL = errors.New("txn: no WAL attached")
)

// Status is the lifecycle state of a transaction.
type Status int

// Transaction states.
const (
	StatusActive Status = iota
	StatusCommitted
	StatusAborted
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusActive:
		return "active"
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Txn is one transaction. It implements access.TxnContext so heap files
// log their mutations under it, and collects those records for undo.
type Txn struct {
	id  uint64
	mgr *Manager

	mu      sync.Mutex
	status  Status
	lastLSN wal.LSN
	undo    []*wal.Record
	comp    []func() error
}

// ID implements access.TxnContext.
func (t *Txn) ID() uint64 { return t.id }

// LastLSN implements access.TxnContext.
func (t *Txn) LastLSN() wal.LSN {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lastLSN
}

// Record implements access.TxnContext: it registers an appended update
// record for undo and LSN chaining.
func (t *Txn) Record(rec *wal.Record) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lastLSN = rec.LSN
	t.undo = append(t.undo, rec)
}

// Compensate registers a callback run (in reverse registration order)
// if the transaction aborts. It reverts auxiliary structures that are
// not covered by WAL before/after images — the engine uses it to undo
// B+tree index maintenance.
func (t *Txn) Compensate(f func() error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.comp = append(t.comp, f)
}

// Status returns the transaction state.
func (t *Txn) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status
}

// Updates returns how many update records the transaction logged.
func (t *Txn) Updates() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.undo)
}

// Lock acquires a lock on behalf of the transaction (2PL growth phase).
func (t *Txn) Lock(ctx context.Context, resource string, mode LockMode) error {
	if t.Status() != StatusActive {
		return ErrTxnDone
	}
	return t.mgr.locks.Acquire(ctx, t.id, resource, mode)
}

// Manager creates and finishes transactions. With a WAL attached,
// begin/commit/abort are logged and commit forces the log; without one,
// transactions still provide locking and in-memory undo.
type Manager struct {
	log   *wal.Log          // may be nil
	store storage.PageStore // for undo application; may be nil without log
	locks *LockManager
	next  atomic.Uint64

	mu     sync.Mutex
	active map[uint64]*Txn
}

// NewManager creates a transaction manager. log and store may be nil
// for lock-only operation.
func NewManager(log *wal.Log, store storage.PageStore) *Manager {
	return &Manager{
		log:   log,
		store: store,
		locks: NewLockManager(),
		active: make(map[uint64]*Txn),
	}
}

// Locks exposes the lock manager.
func (m *Manager) Locks() *LockManager { return m.locks }

// Begin starts a transaction, logging RecBegin when a WAL is attached.
func (m *Manager) Begin() (*Txn, error) {
	id := m.next.Add(1)
	t := &Txn{id: id, mgr: m}
	if m.log != nil {
		lsn, err := m.log.Append(&wal.Record{Txn: id, Type: wal.RecBegin})
		if err != nil {
			return nil, err
		}
		t.lastLSN = lsn
	}
	m.mu.Lock()
	m.active[id] = t
	m.mu.Unlock()
	return t, nil
}

// Commit finishes the transaction: RecCommit is logged and the log
// flushed (durability), then all locks are released.
func (m *Manager) Commit(t *Txn) error {
	t.mu.Lock()
	if t.status != StatusActive {
		t.mu.Unlock()
		return ErrTxnDone
	}
	t.status = StatusCommitted
	prev := t.lastLSN
	t.mu.Unlock()
	if m.log != nil {
		lsn, err := m.log.Append(&wal.Record{Txn: t.id, Type: wal.RecCommit, PrevLSN: prev})
		if err != nil {
			return err
		}
		if err := m.log.Flush(lsn + 1); err != nil {
			return err
		}
	}
	m.finish(t)
	return nil
}

// Abort rolls the transaction back: before images are applied in
// reverse order, RecAbort is logged, and locks released.
func (m *Manager) Abort(t *Txn) error {
	t.mu.Lock()
	if t.status != StatusActive {
		t.mu.Unlock()
		return ErrTxnDone
	}
	t.status = StatusAborted
	undo := append([]*wal.Record(nil), t.undo...)
	comp := append([]func() error(nil), t.comp...)
	prev := t.lastLSN
	t.mu.Unlock()

	if m.store != nil {
		buf := make([]byte, storage.PageSize)
		for i := len(undo) - 1; i >= 0; i-- {
			rec := undo[i]
			if err := m.store.ReadPage(rec.PageID, buf); err != nil {
				return fmt.Errorf("txn: undo read page %d: %w", rec.PageID, err)
			}
			p := storage.WrapPage(rec.PageID, buf)
			copy(p.Data[rec.Offset:int(rec.Offset)+len(rec.Before)], rec.Before)
			p.SetLSN(uint64(rec.LSN))
			if err := m.store.WritePage(rec.PageID, p.Data); err != nil {
				return fmt.Errorf("txn: undo write page %d: %w", rec.PageID, err)
			}
		}
	}
	for i := len(comp) - 1; i >= 0; i-- {
		if err := comp[i](); err != nil {
			return fmt.Errorf("txn: compensation: %w", err)
		}
	}
	if m.log != nil {
		if _, err := m.log.Append(&wal.Record{Txn: t.id, Type: wal.RecAbort, PrevLSN: prev}); err != nil {
			return err
		}
	}
	m.finish(t)
	return nil
}

func (m *Manager) finish(t *Txn) {
	m.locks.ReleaseAll(t.id)
	m.mu.Lock()
	delete(m.active, t.id)
	m.mu.Unlock()
}

// Checkpoint takes a sharp checkpoint: with no transactions in flight,
// every dirty page is flushed and a checkpoint record written, so the
// next recovery scans only the log suffix.
func (m *Manager) Checkpoint() (wal.LSN, error) {
	if m.log == nil {
		return wal.ZeroLSN, ErrNoWAL
	}
	m.mu.Lock()
	active := len(m.active)
	m.mu.Unlock()
	if active > 0 {
		return wal.ZeroLSN, fmt.Errorf("%w: %d in flight", ErrActiveTxns, active)
	}
	if m.store != nil {
		if err := m.store.Sync(); err != nil {
			return wal.ZeroLSN, err
		}
	}
	return m.log.Checkpoint()
}

// ActiveCount returns the number of in-flight transactions.
func (m *Manager) ActiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}
