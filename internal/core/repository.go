package core

import (
	"fmt"
	"sort"
	"sync"
)

// TransformFunc converts a payload of one contract type into another.
// Transformation schemas are stored in the service repository and are
// the raw material from which adaptor services are generated
// (Section 3.1: "Service repositories handle service schemas and
// transformational schemas").
type TransformFunc func(any) (any, error)

type transformKey struct {
	from, to string
}

// Repository is the service repository of Section 3.1. It stores
// service schemas (contracts, keyed by interface name) and
// transformational schemas (payload conversions, keyed by type pair).
// The adaptor generator consults it when bridging services whose
// interfaces differ.
type Repository struct {
	mu         sync.RWMutex
	contracts  map[string]*Contract
	transforms map[transformKey]TransformFunc
}

// NewRepository creates an empty repository. Identity transformations
// (T -> T) are implicit and need not be registered.
func NewRepository() *Repository {
	return &Repository{
		contracts:  make(map[string]*Contract),
		transforms: make(map[transformKey]TransformFunc),
	}
}

// PutContract stores (or replaces) the schema for an interface.
func (r *Repository) PutContract(c *Contract) error {
	if err := c.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.contracts[c.Interface] = c.Clone()
	return nil
}

// GetContract returns the stored schema for an interface.
func (r *Repository) GetContract(iface string) (*Contract, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.contracts[iface]
	if !ok {
		return nil, fmt.Errorf("%w: contract %s", ErrNotFound, iface)
	}
	return c.Clone(), nil
}

// Contracts returns all stored interface names, sorted.
func (r *Repository) Contracts() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.contracts))
	for k := range r.contracts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// PutTransform registers a transformation schema converting payloads of
// contract type from into type to.
func (r *Repository) PutTransform(from, to string, f TransformFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.transforms[transformKey{from, to}] = f
}

// Transform returns a conversion from one contract type to another.
// The identity conversion is always available.
func (r *Repository) Transform(from, to string) (TransformFunc, bool) {
	if from == to {
		return func(v any) (any, error) { return v, nil }, true
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.transforms[transformKey{from, to}]
	return f, ok
}

// TransformCount reports the number of registered (non-identity)
// transformation schemas.
func (r *Repository) TransformCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.transforms)
}
