package access

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/buffer"
	"repro/internal/storage"
)

func sorterEnv(t *testing.T) (*storage.FileManager, *buffer.Manager, *storage.DiskManager) {
	t.Helper()
	d, err := storage.OpenDisk(storage.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	pool := buffer.New(d, 64, buffer.NewLRU())
	fm, err := storage.OpenFileManager(pool)
	if err != nil {
		t.Fatal(err)
	}
	return fm, pool, d
}

func bytesLess(a, b []byte) bool { return bytes.Compare(a, b) < 0 }

func drain(t *testing.T, it *SortedIterator) [][]byte {
	t.Helper()
	var out [][]byte
	for {
		rec, err := it.Next()
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, append([]byte(nil), rec...))
	}
}

func TestExternalSortInMemory(t *testing.T) {
	fm, pool, _ := sorterEnv(t)
	s := NewExternalSorter(fm, pool, 1<<20, bytesLess)
	for _, r := range []string{"delta", "alpha", "charlie", "bravo"} {
		if err := s.Add([]byte(r)); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if s.SpilledRuns() != 0 {
		t.Fatalf("spilled %d runs, expected pure in-memory", s.SpilledRuns())
	}
	got := drain(t, it)
	want := []string{"alpha", "bravo", "charlie", "delta"}
	for i, w := range want {
		if string(got[i]) != w {
			t.Fatalf("order = %q", got)
		}
	}
}

func TestExternalSortSpills(t *testing.T) {
	fm, pool, d := sorterEnv(t)
	// A tiny budget forces many runs.
	s := NewExternalSorter(fm, pool, storage.PageSize, bytesLess)
	const n = 2000
	rng := rand.New(rand.NewSource(5))
	var want []string
	for i := 0; i < n; i++ {
		rec := fmt.Sprintf("rec-%06d-%s", rng.Intn(1000000), bytes.Repeat([]byte("x"), 20))
		want = append(want, rec)
		if err := s.Add([]byte(rec)); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	if s.SpilledRuns() < 2 {
		t.Fatalf("spilled runs = %d, expected several", s.SpilledRuns())
	}
	got := drain(t, it)
	if len(got) != n {
		t.Fatalf("got %d records", len(got))
	}
	sort.Strings(want)
	for i := range want {
		if string(got[i]) != want[i] {
			t.Fatalf("mismatch at %d: %q vs %q", i, got[i], want[i])
		}
	}
	// Close drops the run files and their pages.
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	for _, name := range fm.List() {
		if len(name) > 10 && name[:10] == "__sortrun_" {
			t.Fatalf("run file %s not cleaned up", name)
		}
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	free, err := d.FreePages()
	if err != nil {
		t.Fatal(err)
	}
	if free == 0 {
		t.Fatal("run pages not returned to the store")
	}
}

func TestExternalSortStability(t *testing.T) {
	fm, pool, _ := sorterEnv(t)
	// Sort rows by column 0; rows with equal keys keep insert order
	// within one run (mem path).
	s := NewExternalSorter(fm, pool, 1<<20, RowLess(0, false))
	for i := 0; i < 10; i++ {
		row := Row{NewInt(int64(i % 3)), NewInt(int64(i))}
		if err := s.Add(EncodeRow(row)); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var prevKey, prevSeq int64 = -1, -1
	for {
		rec, err := it.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		row, _ := DecodeRow(rec)
		if row[0].Int < prevKey {
			t.Fatal("keys out of order")
		}
		if row[0].Int == prevKey && row[1].Int < prevSeq {
			t.Fatal("stability violated")
		}
		prevKey, prevSeq = row[0].Int, row[1].Int
	}
}

func TestExternalSortDescending(t *testing.T) {
	fm, pool, _ := sorterEnv(t)
	s := NewExternalSorter(fm, pool, 1<<20, RowLess(0, true))
	for _, v := range []int64{3, 1, 4, 1, 5} {
		if err := s.Add(EncodeRow(Row{NewInt(v)})); err != nil {
			t.Fatal(err)
		}
	}
	it, _ := s.Sort()
	defer it.Close()
	got := drain(t, it)
	first, _ := DecodeRow(got[0])
	last, _ := DecodeRow(got[len(got)-1])
	if first[0].Int != 5 || last[0].Int != 1 {
		t.Fatalf("desc order broken: %v .. %v", first, last)
	}
}

func TestExternalSortFinishedErrors(t *testing.T) {
	fm, pool, _ := sorterEnv(t)
	s := NewExternalSorter(fm, pool, 1<<20, bytesLess)
	_ = s.Add([]byte("x"))
	if _, err := s.Sort(); err != nil {
		t.Fatal(err)
	}
	if err := s.Add([]byte("y")); !errors.Is(err, ErrSorterFinished) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Sort(); !errors.Is(err, ErrSorterFinished) {
		t.Fatalf("err = %v", err)
	}
}

func TestExternalSortEmpty(t *testing.T) {
	fm, pool, _ := sorterEnv(t)
	s := NewExternalSorter(fm, pool, 1<<20, bytesLess)
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if _, err := it.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v", err)
	}
}
