// Package lint is a self-contained static-analysis framework plus the
// suite of engine-invariant analyzers behind cmd/sbdmslint. It mirrors
// the shape of golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic, analysistest-style golden packages) but is built on the
// standard library only — go/ast, go/types, go/parser — so the module
// keeps its zero-dependency property.
//
// The analyzers encode invariants of the SBDMS engine that otherwise
// live only in comments and reviewers' heads:
//
//   - latchorder: never block on the lock manager while holding a page
//     latch; TryAcquire is the only legal lock call under a latch.
//   - walbeforemutate: writes to pinned page bytes must flow through a
//     logged helper, never raw slice stores.
//   - pinpaired: every Pin/PinLatched/NewPageLatched is matched by an
//     Unpin on all return paths, including error returns.
//   - errcheckdurability: results of WAL appends/flushes, lock
//     acquisition, and commit must not be discarded.
//   - ctxflow: blocking engine entry points thread context.Context; no
//     context.Background() in request paths under internal/.
//
// See INVARIANTS.md at the repository root for the prose statement of
// each rule.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass provides one analyzer with one type-checked package and a sink
// for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// PkgPath is the import path of the package under analysis.
	PkgPath string

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Analyzers returns the full sbdmslint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		LatchOrderAnalyzer,
		WALBeforeMutateAnalyzer,
		PinPairedAnalyzer,
		ErrcheckDurabilityAnalyzer,
		CtxFlowAnalyzer,
	}
}
