package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// echoImpl builds components whose service echoes with its name,
// optionally calling through a reference first (to exercise wiring).
func echoImpl(name, iface string) Implementation {
	return ImplementationFunc(func(props *Properties, refs map[string]*Ref) (Service, error) {
		s := NewService(name, echoContract(iface))
		prefix := props.String("prefix", name)
		s.Handle("echo", func(ctx context.Context, req any) (any, error) {
			str, _ := req.(string)
			if up, ok := refs["upstream"]; ok {
				out, err := up.Invoke(ctx, "echo", str)
				if err != nil {
					return nil, err
				}
				str, _ = out.(string)
			}
			return prefix + ":" + str, nil
		})
		s.Handle("fail", func(ctx context.Context, req any) (any, error) { return nil, errors.New("boom") })
		return WithPing(s), nil
	})
}

func newTestKernel() *Kernel {
	return NewKernel(WithCoordinatorConfig(CoordinatorConfig{
		ProbePeriod:  0, // drive probes explicitly in tests
		ProbeTimeout: 100 * time.Millisecond,
	}))
}

func TestKernelDeployAndInvoke(t *testing.T) {
	ctx := context.Background()
	k := newTestKernel()
	comp := NewComposite("app").
		Add(&Component{Name: "store", Impl: echoImpl("store", "test.Store")}).
		Add(&Component{
			Name: "front",
			Impl: echoImpl("front", "test.Front"),
			References: []Reference{
				{Name: "upstream", Interface: "test.Store", Required: true},
			},
		})
	if err := k.Deploy(ctx, comp); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer k.Stop(ctx)

	ref := k.Ref("test.Front", nil)
	out, err := ref.Invoke(ctx, "echo", "x")
	if err != nil {
		t.Fatal(err)
	}
	if out != "front:store:x" {
		t.Fatalf("out = %v", out)
	}
	if got := k.Deployed(); len(got) != 2 || got[0] != "store" {
		t.Fatalf("Deployed = %v", got)
	}
	if _, ok := k.Component("front"); !ok {
		t.Fatal("Component(front) missing")
	}
	// Contracts stored in repository during setup phase.
	if _, err := k.Repository().GetContract("test.Store"); err != nil {
		t.Fatal("repository must hold deployed contracts")
	}
}

func TestKernelRequiredReferenceFailsDeploy(t *testing.T) {
	ctx := context.Background()
	k := newTestKernel()
	comp := NewComposite("app").Add(&Component{
		Name: "front",
		Impl: echoImpl("front", "test.Front"),
		References: []Reference{
			{Name: "upstream", Interface: "test.Missing", Required: true},
		},
	})
	err := k.Deploy(ctx, comp)
	if !errors.Is(err, ErrUnresolvedReference) {
		t.Fatalf("err = %v, want ErrUnresolvedReference", err)
	}
}

func TestKernelOptionalReferenceLateBinds(t *testing.T) {
	ctx := context.Background()
	k := newTestKernel()
	front := &Component{
		Name: "front",
		Impl: echoImpl("front", "test.Front"),
		References: []Reference{
			{Name: "upstream", Interface: "test.Store", Required: false},
		},
	}
	if err := k.Deploy(ctx, NewComposite("app").Add(front)); err != nil {
		t.Fatal(err)
	}
	ref := k.Ref("test.Front", nil)
	if _, err := ref.Invoke(ctx, "echo", "x"); err == nil {
		t.Fatal("call should fail while upstream is missing")
	}
	// Deploy the provider afterwards — flexibility by extension.
	if err := k.DeployComponent(ctx, &Component{Name: "store", Impl: echoImpl("store", "test.Store")}); err != nil {
		t.Fatal(err)
	}
	out, err := ref.Invoke(ctx, "echo", "x")
	if err != nil || out != "front:store:x" {
		t.Fatalf("after late deploy: %v, %v", out, err)
	}
}

func TestKernelDuplicateDeploy(t *testing.T) {
	ctx := context.Background()
	k := newTestKernel()
	c := &Component{Name: "a", Impl: echoImpl("a", "test.A")}
	if err := k.DeployComponent(ctx, c); err != nil {
		t.Fatal(err)
	}
	err := k.DeployComponent(ctx, &Component{Name: "a", Impl: echoImpl("a2", "test.A")})
	if !errors.Is(err, ErrAlreadyDeployed) {
		t.Fatalf("err = %v", err)
	}
}

func TestKernelUndeploy(t *testing.T) {
	ctx := context.Background()
	k := newTestKernel()
	if err := k.DeployComponent(ctx, &Component{Name: "a", Impl: echoImpl("a", "test.A")}); err != nil {
		t.Fatal(err)
	}
	if err := k.Undeploy(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if len(k.Registry().Discover("test.A")) != 0 {
		t.Fatal("undeployed service still discoverable")
	}
	if err := k.Undeploy(ctx, "a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double undeploy err = %v", err)
	}
	if st, _ := k.Resources().ServiceState("a"); st != StateStopped {
		t.Fatalf("service state = %v", st)
	}
}

func TestKernelPolicyPreconditionGatesDeploy(t *testing.T) {
	ctx := context.Background()
	k := newTestKernel()
	impl := ImplementationFunc(func(props *Properties, refs map[string]*Ref) (Service, error) {
		c := echoContract("test.Gated")
		c.Policy.Preconditions = []Assertion{{Property: "arch.memoryMB", Op: ">=", Value: "64"}}
		s := NewService("gated", c)
		s.Handle("echo", func(ctx context.Context, req any) (any, error) { return req, nil })
		s.Handle("fail", func(ctx context.Context, req any) (any, error) { return nil, nil })
		return s, nil
	})
	if err := k.DeployComponent(ctx, &Component{Name: "gated", Impl: impl}); err == nil {
		t.Fatal("deploy must fail without required property")
	}
	k.Arch().SetInt("arch.memoryMB", 128)
	if err := k.DeployComponent(ctx, &Component{Name: "gated2", Impl: impl}); err != nil {
		t.Fatalf("deploy with satisfied precondition: %v", err)
	}
}

func TestKernelCompositeProperties(t *testing.T) {
	ctx := context.Background()
	k := newTestKernel()
	comp := NewComposite("app")
	comp.Properties = map[string]string{"prefix": "composite"}
	comp.Add(&Component{Name: "a", Impl: echoImpl("a", "test.A")})
	comp.Add(&Component{Name: "b", Impl: echoImpl("b", "test.B"), Properties: map[string]string{"prefix": "own"}})
	if err := k.Deploy(ctx, comp); err != nil {
		t.Fatal(err)
	}
	refA := k.Ref("test.A", nil)
	if out, _ := refA.Invoke(ctx, "echo", "x"); out != "composite:x" {
		t.Fatalf("composite property not applied: %v", out)
	}
	refB := k.Ref("test.B", nil)
	if out, _ := refB.Invoke(ctx, "echo", "x"); out != "own:x" {
		t.Fatalf("component property must win: %v", out)
	}
}

func TestKernelNestedComposites(t *testing.T) {
	ctx := context.Background()
	k := newTestKernel()
	storage := NewComposite("storage").Add(&Component{Name: "disk", Impl: echoImpl("disk", "test.Disk")})
	data := NewComposite("data").Add(&Component{
		Name: "table", Impl: echoImpl("table", "test.Table"),
		References: []Reference{{Name: "upstream", Interface: "test.Disk", Required: true}},
	})
	root := NewComposite("root").AddComposite(storage).AddComposite(data)
	if root.ComponentCount() != 2 {
		t.Fatalf("ComponentCount = %d", root.ComponentCount())
	}
	if err := k.Deploy(ctx, root); err != nil {
		t.Fatal(err)
	}
	out, err := k.Ref("test.Table", nil).Invoke(ctx, "echo", "q")
	if err != nil || out != "table:disk:q" {
		t.Fatalf("nested invoke = %v, %v", out, err)
	}
	if root.FindComponent("disk") == nil || root.FindComponent("zzz") != nil {
		t.Fatal("FindComponent misbehaves")
	}
	var paths []string
	_ = root.Walk(func(p string, c *Component) error { paths = append(paths, p); return nil })
	if len(paths) != 2 || paths[0] != "root/storage/disk" {
		t.Fatalf("Walk paths = %v", paths)
	}
}

func TestKernelStopReversesOrder(t *testing.T) {
	ctx := context.Background()
	k := newTestKernel()
	var stopped []string
	mk := func(name string) Implementation {
		return ImplementationFunc(func(props *Properties, refs map[string]*Ref) (Service, error) {
			s := NewService(name, echoContract("test."+name))
			s.Handle("echo", func(ctx context.Context, req any) (any, error) { return req, nil })
			s.Handle("fail", func(ctx context.Context, req any) (any, error) { return nil, nil })
			s.OnStop(func(ctx context.Context) error { stopped = append(stopped, name); return nil })
			return s, nil
		})
	}
	comp := NewComposite("app").
		Add(&Component{Name: "first", Impl: mk("first")}).
		Add(&Component{Name: "second", Impl: mk("second")})
	if err := k.Deploy(ctx, comp); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := k.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if len(stopped) != 2 || stopped[0] != "second" || stopped[1] != "first" {
		t.Fatalf("stop order = %v, want [second first]", stopped)
	}
}

func TestKernelDeployEvents(t *testing.T) {
	ctx := context.Background()
	k := newTestKernel()
	if err := k.DeployComponent(ctx, &Component{Name: "a", Impl: echoImpl("a", "test.A")}); err != nil {
		t.Fatal(err)
	}
	_ = k.Undeploy(ctx, "a")
	counts := k.Bus().CountByType()
	if counts[EventComponentDeployed] != 1 || counts[EventComponentUndeployed] != 1 {
		t.Fatalf("event counts = %v", counts)
	}
}

func TestKernelManyComponents(t *testing.T) {
	ctx := context.Background()
	k := newTestKernel()
	comp := NewComposite("many")
	for i := 0; i < 50; i++ {
		comp.Add(&Component{Name: fmt.Sprintf("c%02d", i), Impl: echoImpl(fmt.Sprintf("c%02d", i), "test.Many")})
	}
	if err := k.Deploy(ctx, comp); err != nil {
		t.Fatal(err)
	}
	if got := len(k.Registry().Discover("test.Many")); got != 50 {
		t.Fatalf("providers = %d", got)
	}
}
