package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func echoContract(iface string) *Contract {
	return &Contract{
		Interface: iface,
		Operations: []OpSpec{
			{Name: "echo", In: "string", Out: "string", Semantic: "test.echo"},
			{Name: "fail", In: "nil", Out: "nil", Semantic: "test.fail"},
		},
	}
}

func newEchoService(t testing.TB, name, iface string) *BaseService {
	t.Helper()
	s := NewService(name, echoContract(iface))
	s.Handle("echo", func(ctx context.Context, req any) (any, error) {
		str, ok := req.(string)
		if !ok {
			return nil, &RequestError{Op: "echo", Want: "string", Got: TypeName(req)}
		}
		return name + ":" + str, nil
	})
	s.Handle("fail", func(ctx context.Context, req any) (any, error) {
		return nil, errors.New("boom")
	})
	WithPing(s)
	if err := s.Start(context.Background()); err != nil {
		t.Fatalf("starting %s: %v", name, err)
	}
	return s
}

func TestServiceLifecycle(t *testing.T) {
	ctx := context.Background()
	s := NewService("svc", echoContract("test.Echo"))
	s.Handle("echo", func(ctx context.Context, req any) (any, error) { return req, nil })
	if got := s.State(); got != StateCreated {
		t.Fatalf("initial state = %v, want created", got)
	}
	if _, err := s.Invoke(ctx, "echo", "x"); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("invoke before start: err = %v, want ErrNotRunning", err)
	}
	if err := s.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if got := s.State(); got != StateRunning {
		t.Fatalf("state after start = %v", got)
	}
	if err := s.Start(ctx); err != nil {
		t.Fatalf("second start should be idempotent: %v", err)
	}
	out, err := s.Invoke(ctx, "echo", "x")
	if err != nil || out != "x" {
		t.Fatalf("invoke = (%v, %v), want (x, nil)", out, err)
	}
	if err := s.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if got := s.State(); got != StateStopped {
		t.Fatalf("state after stop = %v", got)
	}
	if _, err := s.Invoke(ctx, "echo", "x"); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("invoke after stop: err = %v", err)
	}
}

func TestServiceStartHookFailure(t *testing.T) {
	s := NewService("svc", echoContract("test.Echo"))
	s.OnStart(func(ctx context.Context) error { return errors.New("no disk") })
	if err := s.Start(context.Background()); err == nil {
		t.Fatal("start should fail")
	}
	if s.State() != StateFailed {
		t.Fatalf("state = %v, want failed", s.State())
	}
}

func TestServiceUnknownOp(t *testing.T) {
	s := newEchoService(t, "svc", "test.Echo")
	_, err := s.Invoke(context.Background(), "nosuch", nil)
	if !errors.Is(err, ErrUnknownOp) {
		t.Fatalf("err = %v, want ErrUnknownOp", err)
	}
}

func TestHandleUndeclaredOpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for undeclared operation handler")
		}
	}()
	s := NewService("svc", echoContract("test.Echo"))
	s.Handle("undeclared", func(ctx context.Context, req any) (any, error) { return nil, nil })
}

func TestServiceStats(t *testing.T) {
	ctx := context.Background()
	s := newEchoService(t, "svc", "test.Echo")
	for i := 0; i < 5; i++ {
		if _, err := s.Invoke(ctx, "echo", "hi"); err != nil {
			t.Fatal(err)
		}
	}
	_, _ = s.Invoke(ctx, "fail", nil)
	st := s.Stats()
	if st["echo"].Calls != 5 || st["echo"].Errors != 0 {
		t.Fatalf("echo stats = %+v", st["echo"])
	}
	if st["fail"].Calls != 1 || st["fail"].Errors != 1 {
		t.Fatalf("fail stats = %+v", st["fail"])
	}
	if st["echo"].Mean() < 0 {
		t.Fatal("mean must be non-negative")
	}
}

func TestServiceMaxConcurrentPolicy(t *testing.T) {
	ctx := context.Background()
	c := echoContract("test.Echo")
	c.Policy.MaxConcurrent = 1
	s := NewService("svc", c)
	release := make(chan struct{})
	started := make(chan struct{})
	s.Handle("echo", func(ctx context.Context, req any) (any, error) {
		close(started)
		<-release
		return req, nil
	})
	s.Handle("fail", func(ctx context.Context, req any) (any, error) { return nil, nil })
	if err := s.Start(ctx); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = s.Invoke(ctx, "echo", "block")
	}()
	<-started
	_, err := s.Invoke(ctx, "fail", nil)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	close(release)
	wg.Wait()
	if _, err := s.Invoke(ctx, "fail", nil); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestWithPing(t *testing.T) {
	s := newEchoService(t, "pinger", "test.Echo")
	out, err := s.Invoke(context.Background(), PingOp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out != "pong:pinger" {
		t.Fatalf("ping = %v", out)
	}
}

func TestStateString(t *testing.T) {
	cases := map[State]string{
		StateCreated: "created", StateStarting: "starting", StateRunning: "running",
		StateDegraded: "degraded", StateStopping: "stopping", StateStopped: "stopped",
		StateFailed: "failed", State(99): "state(99)",
	}
	for st, want := range cases {
		if got := st.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", st, got, want)
		}
	}
}

func TestServiceConcurrentInvoke(t *testing.T) {
	ctx := context.Background()
	s := newEchoService(t, "svc", "test.Echo")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				out, err := s.Invoke(ctx, "echo", fmt.Sprint(i))
				if err != nil {
					t.Errorf("invoke: %v", err)
					return
				}
				if out != fmt.Sprintf("svc:%d", i) {
					t.Errorf("out = %v", out)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if got := s.Stats()["echo"].Calls; got != 3200 {
		t.Fatalf("calls = %d, want 3200", got)
	}
}

func TestOpStatsMeanZero(t *testing.T) {
	var o OpStats
	if o.Mean() != 0 {
		t.Fatal("mean of zero calls must be 0")
	}
	o = OpStats{Calls: 2, TotalDur: 10 * time.Millisecond}
	if o.Mean() != 5*time.Millisecond {
		t.Fatalf("mean = %v", o.Mean())
	}
}
