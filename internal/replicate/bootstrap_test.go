package replicate

// The full-state bootstrap path and its typed failure mode. The
// regression pinned here: a Ship racing checkpoint truncation must
// surface an error matching BOTH wal.ErrSegmentGone (naming the race)
// and ErrSnapshotNeeded (naming the cure) — callers branch on the
// latter to trigger a bootstrap instead of crashing or retrying a
// permanent gap forever.

import (
	"errors"
	"testing"

	"repro/internal/storage"
	"repro/internal/wal"
)

const testSegBytes = 2 * storage.PageSize

func openTestLog(t *testing.T) *wal.Log {
	t.Helper()
	l, err := wal.OpenDir(wal.NewMemSegmentDir(), testSegBytes)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func appendFlushed(t *testing.T, l *wal.Log, n int, payload byte) {
	t.Helper()
	buf := make([]byte, 256)
	for i := range buf {
		buf[i] = payload
	}
	for i := 0; i < n; i++ {
		if _, err := l.Append(&wal.Record{Txn: 1, Type: wal.RecUpdate, PageID: 3, After: buf}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Flush(l.NextLSN()); err != nil {
		t.Fatal(err)
	}
}

// collectFrom gathers the records at or past from, as a shipper would.
func collectFrom(t *testing.T, l *wal.Log, from wal.LSN) []*wal.Record {
	t.Helper()
	var recs []*wal.Record
	err := l.Iterate(from, func(r *wal.Record) error {
		cp := *r
		cp.After = append([]byte(nil), r.After...)
		recs = append(recs, &cp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestFollowerWALAppendDupSkipAndGap(t *testing.T) {
	l := openTestLog(t)
	appendFlushed(t, l, 4, 0xAA)

	dev := storage.NewMemDevice()
	boot, err := Snapshot(dev, l)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := OpenFollowerWAL(wal.NewMemSegmentDir(), boot)
	if err != nil {
		t.Fatal(err)
	}
	if fw.Next() != boot.Durable {
		t.Fatalf("fresh follower WAL next = %d, want snapshot durable %d", fw.Next(), boot.Durable)
	}

	appendFlushed(t, l, 3, 0xBB)
	recs := collectFrom(t, l, boot.Durable)
	if len(recs) != 3 {
		t.Fatalf("got %d post-snapshot records, want 3", len(recs))
	}

	for _, rec := range recs {
		ok, err := fw.Append(rec)
		if err != nil || !ok {
			t.Fatalf("append LSN %d = (%v, %v), want (true, nil)", rec.LSN, ok, err)
		}
	}
	// Redelivery: every record is a silent duplicate, not an error.
	for _, rec := range recs {
		ok, err := fw.Append(rec)
		if err != nil || ok {
			t.Fatalf("re-append LSN %d = (%v, %v), want (false, nil)", rec.LSN, ok, err)
		}
	}
	// A gap is typed: the follower cannot tail across missing history.
	gap := *recs[len(recs)-1]
	gap.LSN = fw.Next() + 4096
	gap.End = 0
	if _, err := fw.Append(&gap); !errors.Is(err, ErrSnapshotNeeded) {
		t.Fatalf("gap append err = %v, want ErrSnapshotNeeded", err)
	}
	if err := fw.Sync(); err != nil {
		t.Fatal(err)
	}
}

// TestFollowerWALByteFidelity: the follower's log directory, seeded
// from a snapshot and extended by Append, reopens as a normal WAL whose
// records equal the leader's — the byte-identical copy promotion-time
// crash recovery depends on.
func TestFollowerWALByteFidelity(t *testing.T) {
	l := openTestLog(t)
	appendFlushed(t, l, 5, 0xCC)

	boot, err := Snapshot(storage.NewMemDevice(), l)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := OpenFollowerWAL(wal.NewMemSegmentDir(), boot)
	if err != nil {
		t.Fatal(err)
	}
	appendFlushed(t, l, 4, 0xDD)
	for _, rec := range collectFrom(t, l, boot.Durable) {
		if _, err := fw.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Sync(); err != nil {
		t.Fatal(err)
	}

	reopened, err := wal.OpenDir(fw.Dir(), testSegBytes)
	if err != nil {
		t.Fatalf("reopening follower log dir: %v", err)
	}
	want := collectFrom(t, l, l.OldestLSN())
	got := collectFrom(t, reopened, reopened.OldestLSN())
	if len(got) != len(want) {
		t.Fatalf("follower log has %d records, leader %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.LSN != w.LSN || g.End != w.End || g.Type != w.Type || g.PageID != w.PageID {
			t.Fatalf("record %d header mismatch: got {lsn %d end %d type %d page %d}, want {lsn %d end %d type %d page %d}",
				i, g.LSN, g.End, g.Type, g.PageID, w.LSN, w.End, w.Type, w.PageID)
		}
		if string(g.After) != string(w.After) {
			t.Fatalf("record %d payload mismatch", i)
		}
	}
}

// TestShipTruncationRaceIsTypedSnapshotNeeded is the ErrSegmentGone
// race regression: a shipper whose resume point was truncated away by a
// checkpoint must fail with an error matching both sentinels, so the
// caller takes the bootstrap path.
func TestShipTruncationRaceIsTypedSnapshotNeeded(t *testing.T) {
	l := openTestLog(t)
	appendFlushed(t, l, 8, 0x11)

	s := NewShipper(l)
	r := NewReplica("lagger", newSinkStore())
	s.Attach(r)
	if _, err := s.Ship(); err != nil {
		t.Fatal(err)
	}

	// Run the log far ahead — several segments — and checkpoint with NO
	// retention hook: truncation removes the shipper's resume segment.
	for l.SegmentCount() < 4 {
		appendFlushed(t, l, 8, 0x22)
	}
	if _, err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	_, err := s.Ship()
	if err == nil {
		t.Fatal("ship across truncated history succeeded; want typed failure")
	}
	if !errors.Is(err, wal.ErrSegmentGone) {
		t.Fatalf("ship error does not name the race (wal.ErrSegmentGone): %v", err)
	}
	if !errors.Is(err, ErrSnapshotNeeded) {
		t.Fatalf("ship error does not name the cure (ErrSnapshotNeeded): %v", err)
	}

	// The cure works: snapshot, reseed a follower WAL, resume tailing
	// from the snapshot boundary.
	boot, err := Snapshot(storage.NewMemDevice(), l)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := OpenFollowerWAL(wal.NewMemSegmentDir(), boot)
	if err != nil {
		t.Fatal(err)
	}
	appendFlushed(t, l, 2, 0x33)
	for _, rec := range collectFrom(t, l, boot.Durable) {
		if ok, err := fw.Append(rec); err != nil || !ok {
			t.Fatalf("post-bootstrap append LSN %d = (%v, %v)", rec.LSN, ok, err)
		}
	}
}
