package txn

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/access"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Transaction errors.
var (
	// ErrTxnDone is returned for operations on a finished transaction.
	ErrTxnDone = errors.New("txn: transaction already finished")
	// ErrNoWAL is returned by Checkpoint without an attached log.
	ErrNoWAL = errors.New("txn: no WAL attached")
	// ErrNoUndoHandler is returned when a rollback meets a logical undo
	// descriptor but no handler was installed.
	ErrNoUndoHandler = errors.New("txn: no logical undo handler installed")
)

// Status is the lifecycle state of a transaction.
type Status int

// Transaction states.
const (
	StatusActive Status = iota
	StatusCommitted
	StatusAborted
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusActive:
		return "active"
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Txn is one transaction. It implements access.TxnContext so heap files
// log their mutations under it, and collects those records for undo.
type Txn struct {
	id  uint64
	mgr *Manager

	mu        sync.Mutex
	status    Status
	firstLSN  wal.LSN // begin record (fuzzy checkpoints' ATT entry)
	lastLSN   wal.LSN
	undo      []*wal.Record
	committed []func()
	stamps    []func(ts uint64) error
	commitTS  uint64
}

// ID implements access.TxnContext.
func (t *Txn) ID() uint64 { return t.id }

// LastLSN implements access.TxnContext.
func (t *Txn) LastLSN() wal.LSN {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lastLSN
}

// Record implements access.TxnContext: it registers an appended update
// record for undo and LSN chaining.
func (t *Txn) Record(rec *wal.Record) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lastLSN = rec.LSN
	t.undo = append(t.undo, rec)
}

// OnCommitted registers a callback run after the transaction's commit
// record is durable (and never on abort). The engine uses it to defer
// page deallocation until the commit that unlinked the page can no
// longer be rolled back — freeing earlier would let the allocator hand
// the page out while a crash could still resurrect the old reference.
func (t *Txn) OnCommitted(f func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.committed = append(t.committed, f)
}

// OnCommitTS registers a stamping callback: at commit, after a commit
// timestamp is allocated but BEFORE the commit record is appended, the
// callback runs with that timestamp while the transaction is still
// active — so the page mutations it performs (stamping version begin
// fields) are logged with undo descriptors and roll back with the
// transaction if anything fails. The MVCC KV core registers one per
// version it created; a transaction with no stamps commits without
// consuming a timestamp.
func (t *Txn) OnCommitTS(f func(ts uint64) error) {
	t.mu.Lock()
	t.stamps = append(t.stamps, f)
	t.mu.Unlock()
}

func (t *Txn) takeStamps() []func(ts uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.stamps
	t.stamps = nil
	return out
}

// CommitTS returns the commit timestamp stamped on the transaction's
// versions (0 when the transaction registered no stamps or has not
// committed).
func (t *Txn) CommitTS() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.commitTS
}

// SetCommitTS pre-stamps the transaction with an externally allocated
// commit timestamp. Bulk ingest writes its version cells with the
// commit timestamp already in the begin field (no per-version stamping
// callbacks), but the commit record must still embed the timestamp —
// recovery reseeds the oracle's clock from commit records, and a clock
// below the imported versions would let a post-crash commit outrank
// them. The caller owns the timestamp's lifecycle: it allocated it from
// the oracle and must Complete it after the commit is durable (or after
// a clean rollback); the manager completes only timestamps it allocated
// itself.
func (t *Txn) SetCommitTS(ts uint64) {
	t.mu.Lock()
	t.commitTS = ts
	t.mu.Unlock()
}

func (t *Txn) takeCommitted() []func() {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.committed
	t.committed = nil
	return out
}

// Status returns the transaction state.
func (t *Txn) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status
}

// Updates returns how many update records the transaction logged.
func (t *Txn) Updates() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.undo)
}

// Lock acquires a lock on behalf of the transaction (2PL growth phase).
func (t *Txn) Lock(ctx context.Context, resource string, mode LockMode) error {
	if t.Status() != StatusActive {
		return ErrTxnDone
	}
	return t.mgr.locks.Acquire(ctx, t.id, resource, mode)
}

// UndoHandler executes the logical inverse of a WAL record (see
// internal/undo). The tx passed in is a compensation context: records
// logged through it carry the redo-only marker.
type UndoHandler interface {
	UndoRecord(tx access.TxnContext, rec *wal.Record) error
}

// Manager creates and finishes transactions. With a WAL attached,
// begin/commit/abort are logged and commit forces the log; without one,
// transactions still provide locking and in-memory undo.
type Manager struct {
	log    *wal.Log          // may be nil
	store  storage.PageStore // for undo application; may be nil without log
	locks  *LockManager
	oracle *Oracle
	next   atomic.Uint64
	undo   atomic.Pointer[UndoHandler]

	mu     sync.Mutex
	active map[uint64]*Txn

	// ckptMu serialises fuzzy checkpoints: two interleaved checkpoints
	// could otherwise complete out of order and persist a manifest
	// whose recovery-begin LSN points into segments the other already
	// truncated.
	ckptMu sync.Mutex

	// Background checkpoint flusher (the ARIES "near-free" variant).
	// When started, checkpoint completions — the DPT-snapshot flush and
	// the manifest write that advances recovery-begin — run on one
	// dedicated goroutine in enqueue order, so CheckpointAsync returns
	// as soon as the checkpoint record is forced. flusherMu guards the
	// channel pointer and the sticky completion error; jobs are only
	// ever sent while it is held, so StopCheckpointFlusher can nil the
	// channel without racing a send.
	flusherMu   sync.Mutex
	flusherCh   chan ckptJob
	flusherStop chan struct{}
	flusherDone chan struct{}
	flushErr    error

	// commitDurability, when set, replaces the local log force in
	// FinishCommit (async commit). See SetCommitDurability.
	commitDurability atomic.Pointer[func(upTo wal.LSN) error]
}

// ckptJob is one checkpoint completion handed to the background
// flusher: flush the DPT snapshot, then persist the manifest. done is
// non-nil when a synchronous caller waits for the outcome.
type ckptJob struct {
	lsn           wal.LSN
	recoveryBegin wal.LSN
	pages         []storage.PageID
	done          chan error
}

// NewManager creates a transaction manager. log and store may be nil
// for lock-only operation.
func NewManager(log *wal.Log, store storage.PageStore) *Manager {
	return &Manager{
		log:    log,
		store:  store,
		locks:  NewLockManager(),
		oracle: NewOracle(),
		active: make(map[uint64]*Txn),
	}
}

// Locks exposes the lock manager.
func (m *Manager) Locks() *LockManager { return m.locks }

// Oracle exposes the commit-timestamp oracle (MVCC snapshot reads).
func (m *Manager) Oracle() *Oracle { return m.oracle }

// SetUndoHandler installs the logical-undo executor. Must be set before
// any transaction logging logical undo descriptors can abort.
func (m *Manager) SetUndoHandler(h UndoHandler) { m.undo.Store(&h) }

func (m *Manager) undoHandler() UndoHandler {
	if p := m.undo.Load(); p != nil {
		return *p
	}
	return nil
}

// ReserveID hands out a transaction-id-space identifier without
// starting a transaction. Lock-only sessions (read locks for unlogged
// point reads) use it so their lock owners never collide with real
// transactions.
func (m *Manager) ReserveID() uint64 { return m.next.Add(1) }

// SystemHooks adapts the manager into the access-layer system
// transaction interface: short WAL-logged page mutations (B+tree
// structure modifications, deferred slot purges) that begin and commit
// independently of any user transaction. Commits are lazy — WAL
// ordering makes them durable before any dependent user commit is
// acknowledged.
func (m *Manager) SystemHooks() access.SystemTxnHooks {
	return access.SystemTxnHooks{
		Begin: func() (access.TxnContext, error) {
			t, err := m.Begin()
			if err != nil {
				return nil, err
			}
			return t, nil
		},
		Commit: func(c access.TxnContext) error { return m.CommitLazy(c.(*Txn)) },
		Abort:  func(c access.TxnContext) error { return m.Abort(c.(*Txn)) },
	}
}

// SystemHooksHeldLatches is SystemHooks for callers that keep the
// exclusive page latches of every page the transaction touched for the
// transaction's whole lifetime (B+tree structure modifications). Its
// Abort restores pages with plain writes instead of re-latching them —
// re-latching would self-deadlock on the caller's own latches, and the
// held latches already exclude every other writer.
func (m *Manager) SystemHooksHeldLatches() access.SystemTxnHooks {
	h := m.SystemHooks()
	h.Abort = func(c access.TxnContext) error { return m.abort(c.(*Txn), false) }
	return h
}

// Begin starts a transaction, logging RecBegin when a WAL is attached.
func (m *Manager) Begin() (*Txn, error) {
	id := m.next.Add(1)
	t := &Txn{id: id, mgr: m}
	if m.log != nil {
		lsn, err := m.log.Append(&wal.Record{Txn: id, Type: wal.RecBegin})
		if err != nil {
			return nil, err
		}
		t.firstLSN = lsn
		t.lastLSN = lsn
	}
	m.mu.Lock()
	m.active[id] = t
	m.mu.Unlock()
	return t, nil
}

// Commit finishes the transaction: RecCommit is logged and the log
// flushed (durability), then all locks are released.
func (m *Manager) Commit(t *Txn) error { return m.commit(t, true) }

// CommitLazy finishes the transaction without forcing the log: the
// commit record becomes durable with the next forced flush. System
// transactions (file-directory maintenance) use it — WAL ordering
// guarantees their records are durable before any dependent user
// commit is acknowledged.
func (m *Manager) CommitLazy(t *Txn) error { return m.commit(t, false) }

func (m *Manager) commit(t *Txn, flush bool) error {
	// MVCC commit stamping: allocate the commit timestamp and stamp it
	// over every version the transaction created WHILE the transaction
	// is still active — the stamp mutations are WAL-logged with undo
	// descriptors, so an abort (or crash) reverts them with everything
	// else. Only after the commit record is durable does Complete let
	// the oracle's visibility frontier advance past the timestamp.
	stamps := t.takeStamps()
	var ts uint64
	if len(stamps) > 0 {
		ts = m.oracle.AllocateCommitTS()
		for _, f := range stamps {
			if err := f(ts); err != nil {
				// Roll back: stamps applied so far carry undo and revert
				// with the transaction. Complete only after a clean
				// rollback — a failed one leaves stamped versions in
				// doubt, and the frontier must not advance over them.
				if aerr := m.Abort(t); aerr != nil {
					return fmt.Errorf("txn: commit stamping: %w (abort: %v)", err, aerr)
				}
				m.oracle.Complete(ts)
				return fmt.Errorf("txn: commit stamping: %w", err)
			}
		}
		t.mu.Lock()
		t.commitTS = ts
		t.mu.Unlock()
	}
	lsn, err := m.CommitAppend(t)
	if err != nil {
		// The commit record may not be in the log: the timestamp stays
		// outstanding so no snapshot ever reads the stamped versions,
		// and the caller must treat the engine as failed.
		return err
	}
	// On-commit hooks require durability even on the lazy path; so does
	// releasing a commit timestamp to readers.
	if !flush && ts == 0 && len(t.takeCommittedPeek()) == 0 {
		m.finish(t)
		return nil
	}
	if err := m.FinishCommit(t, lsn); err != nil {
		return err // ts (if any) deliberately stays outstanding
	}
	if ts != 0 {
		m.oracle.Complete(ts)
	}
	return nil
}

// takeCommittedPeek reports pending on-commit hooks without consuming
// them (helper for the lazy-commit fast path).
func (t *Txn) takeCommittedPeek() []func() {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.committed
}

// CommitAppend moves the transaction to committed and appends its
// commit record WITHOUT forcing the log or deregistering it: the
// transaction keeps counting as in flight (so the commit_siblings gate
// sees concurrent committers) until FinishCommit forces durability and
// releases it. Callers that commit while holding an engine lock use
// the pair to keep commit ordering under the lock but pay the log
// force outside it.
func (m *Manager) CommitAppend(t *Txn) (wal.LSN, error) {
	t.mu.Lock()
	if t.status != StatusActive {
		t.mu.Unlock()
		return wal.ZeroLSN, ErrTxnDone
	}
	t.status = StatusCommitted
	prev := t.lastLSN
	ts := t.commitTS
	t.mu.Unlock()
	if m.log == nil {
		return wal.ZeroLSN, nil
	}
	rec := &wal.Record{Txn: t.id, Type: wal.RecCommit, PrevLSN: prev}
	if ts != 0 {
		// Embed the commit timestamp so recovery can restore the
		// oracle's clock above every stamped version on disk.
		rec.After = make([]byte, 8)
		binary.LittleEndian.PutUint64(rec.After, ts)
	}
	return m.log.Append(rec)
}

// FinishCommit forces the log through the commit record appended by
// CommitAppend, deregisters the transaction, and runs its on-commit
// hooks (which may now safely free pages the commit unlinked). On a
// flush failure the transaction stays registered with its locks held —
// its durability is in doubt, so the engine must treat itself as
// failed (the KV core poisons itself) rather than proceed.
func (m *Manager) FinishCommit(t *Txn, lsn wal.LSN) error {
	if m.log != nil {
		if fn := m.commitDurability.Load(); fn != nil {
			if err := (*fn)(lsn + 1); err != nil {
				return err
			}
		} else if err := m.log.Flush(lsn + 1); err != nil {
			return err
		}
	}
	m.finish(t)
	for _, f := range t.takeCommitted() {
		f()
	}
	return nil
}

// SetCommitDurability installs fn as the commit-durability wait: instead
// of forcing the local log through the commit record, FinishCommit calls
// fn(lsn+1) and acknowledges the commit when it returns nil. This is the
// async-commit replication mode — the installer must guarantee that a
// nil return means every record below upTo is recoverable somewhere (on
// at least one follower), and should fall back to a local Flush when no
// follower is reachable. Checkpoints, page eviction, and the WAL rule
// still force the local log directly and are unaffected. Pass nil to
// restore local-fsync commits.
func (m *Manager) SetCommitDurability(fn func(upTo wal.LSN) error) {
	if fn == nil {
		m.commitDurability.Store(nil)
		return
	}
	m.commitDurability.Store(&fn)
}

// clrContext is the TxnContext compensation records are logged under:
// it continues the aborting transaction's LSN chain but registers
// nothing for further undo, and flags itself as compensating so every
// record logged through it carries the redo-only marker.
type clrContext struct {
	id   uint64
	mu   sync.Mutex
	last wal.LSN
}

func (c *clrContext) ID() uint64 { return c.id }

func (c *clrContext) LastLSN() wal.LSN {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

func (c *clrContext) Record(rec *wal.Record) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.last = rec.LSN
}

// Compensating implements access.CompensationContext.
func (c *clrContext) Compensating() bool { return true }

// Abort rolls the transaction back in reverse log order, then logs
// RecAbort and releases its locks.
//
// Records with logical undo descriptors (key- and record-level heap and
// index mutations) are undone by re-executing the inverse operation
// through the installed UndoHandler — under page latches, logging each
// step as a redo-only compensation. Restoring their before images
// instead would be unsound: concurrent transactions interleave freely
// on shared pages under per-key locking, and a stale image would wipe
// their committed bytes.
//
// Records without descriptors (system transactions — file-directory
// maintenance, index structure modifications — whose latches or locks
// exclude interleaving writers for their whole lifetime) are restored
// physically from before images, each restoration logged as a
// compensation record. Because RecAbort is appended only after every
// compensation, recovery can treat an aborted transaction like a
// committed no-op — replaying its updates and compensations in log
// order.
func (m *Manager) Abort(t *Txn) error { return m.abort(t, true) }

// abort implements Abort. latched selects whether physical restores
// re-acquire page latches (normal aborts) or write directly because the
// caller already holds every relevant latch exclusively (structure-
// modification rollback).
func (m *Manager) abort(t *Txn, latched bool) error {
	t.mu.Lock()
	if t.status != StatusActive {
		t.mu.Unlock()
		return ErrTxnDone
	}
	t.status = StatusAborted
	undo := append([]*wal.Record(nil), t.undo...)
	prev := t.lastLSN
	t.mu.Unlock()

	// An error anywhere below returns without finish(): the transaction
	// stays registered and its locks stay held, deliberately. A failed
	// rollback leaves pages in doubt, so releasing its locks (or letting
	// Checkpoint believe the system is quiescent) would expose
	// half-rolled-back state; callers must treat the engine as failed
	// (the KV core poisons itself) or restart, at which point recovery
	// undoes the still-in-flight transaction from the log.
	prev, err := m.rollback(t.id, undo, prev, latched)
	if err != nil {
		return err
	}
	if m.log != nil {
		if _, err := m.log.Append(&wal.Record{Txn: t.id, Type: wal.RecAbort, PrevLSN: prev}); err != nil {
			return err
		}
	}
	m.finish(t)
	return nil
}

// rollback undoes recs in reverse order on behalf of txnID, returning
// the LSN chain tail for the closing RecAbort.
func (m *Manager) rollback(txnID uint64, recs []*wal.Record, prev wal.LSN, latched bool) (wal.LSN, error) {
	if m.store == nil && m.log == nil {
		return prev, nil
	}
	clr := &clrContext{id: txnID}
	buf := make([]byte, storage.PageSize)
	for i := len(recs) - 1; i >= 0; i-- {
		rec := recs[i]
		switch {
		case rec.RedoOnly():
			// A compensation from an earlier, interrupted rollback of
			// this transaction: never undone.
		case rec.LogicalUndo():
			h := m.undoHandler()
			if h == nil {
				return prev, fmt.Errorf("%w: record %d", ErrNoUndoHandler, rec.LSN)
			}
			clr.mu.Lock()
			clr.last = prev
			clr.mu.Unlock()
			if err := h.UndoRecord(clr, rec); err != nil {
				return prev, fmt.Errorf("txn: logical undo of record %d: %w", rec.LSN, err)
			}
			prev = clr.LastLSN()
		case m.store == nil:
			// Log-only mode: a plain redo-only compensation record.
			lsn, err := m.log.Append(&wal.Record{
				Txn:     txnID,
				Type:    wal.RecUpdate,
				PageID:  rec.PageID,
				Offset:  rec.Offset,
				After:   append([]byte(nil), rec.Before...),
				PrevLSN: prev,
				Undo:    wal.UndoNone,
			})
			if err != nil {
				return prev, err
			}
			prev = lsn
		default:
			// Physical restore. The restore-and-log step runs under the
			// page's latch (atomic with respect to latched writers)
			// unless the caller already holds every relevant latch
			// exclusively — re-latching would then self-deadlock, and
			// the held latches provide the same exclusion.
			restore := func(p *storage.Page) error {
				copy(buf, p.Data)
				copy(p.Data[rec.Offset:int(rec.Offset)+len(rec.Before)], rec.Before)
				p.SetLSN(uint64(rec.LSN))
				if m.log != nil {
					// The compensation goes through the same fence-
					// checked append as forward mutations, so a rollback
					// touching a page for the first time after a
					// checkpoint still logs the full image torn-page
					// rebuild depends on.
					cr, err := m.log.AppendPageUpdate(txnID, prev, rec.PageID, buf, p.Data, nil)
					if err != nil {
						return err
					}
					if cr != nil {
						prev = cr.LSN
						p.SetLSN(uint64(cr.LSN))
					}
				}
				return nil
			}
			var err error
			if latched {
				err = storage.UpdatePageOn(m.store, rec.PageID, restore)
			} else {
				page := make([]byte, storage.PageSize)
				if err = m.store.ReadPage(rec.PageID, page); err == nil {
					p := storage.WrapPage(rec.PageID, page)
					if err = restore(p); err == nil {
						err = m.store.WritePage(rec.PageID, p.Data)
					}
				}
			}
			if err != nil {
				return prev, fmt.Errorf("txn: undo page %d: %w", rec.PageID, err)
			}
		}
	}
	return prev, nil
}

// UndoLosers rolls back the in-flight transactions a crash left behind
// whose records carry logical undo descriptors. Recovery's redo has
// already repeated history, so the pages hold exactly the state the
// losers left; each inverse operation runs through the normal latched
// access paths, logs a redo-only compensation, and the transaction is
// closed with RecAbort — a crash during this rollback therefore reruns
// it idempotently (inverses tolerate having already been applied). The
// log is forced at the end so the RecAborts are durable before traffic
// starts.
func (m *Manager) UndoLosers(losers []wal.LoserTxn) error {
	if len(losers) == 0 {
		return nil
	}
	if m.log == nil {
		return ErrNoWAL
	}
	for _, lt := range losers {
		prev := wal.ZeroLSN
		if n := len(lt.Records); n > 0 {
			prev = lt.Records[n-1].LSN
		}
		prev, err := m.rollback(lt.ID, lt.Records, prev, true)
		if err != nil {
			return fmt.Errorf("txn: rolling back crashed txn %d: %w", lt.ID, err)
		}
		if _, err := m.log.Append(&wal.Record{Txn: lt.ID, Type: wal.RecAbort, PrevLSN: prev}); err != nil {
			return err
		}
		m.EnsureIDsAbove(lt.ID)
	}
	return m.log.Flush(m.log.NextLSN())
}

// EnsureIDsAbove advances the transaction-id allocator past id. The
// opener calls it with the highest id the recovery scan saw: reusing a
// crashed transaction's id would let a later recovery misclassify the
// old incarnation's surviving records under the new incarnation's
// commit status.
func (m *Manager) EnsureIDsAbove(id uint64) {
	for {
		cur := m.next.Load()
		if id <= cur || m.next.CompareAndSwap(cur, id) {
			return
		}
	}
}

func (m *Manager) finish(t *Txn) {
	m.locks.ReleaseAll(t.id)
	m.mu.Lock()
	delete(m.active, t.id)
	m.mu.Unlock()
}

// dirtyTracker is the buffer-pool surface a fuzzy checkpoint needs:
// the dirty-page table with per-page recLSNs, and a targeted flush of
// exactly that snapshot. buffer.Manager implements it; a bare disk
// manager does not, and the checkpoint falls back to a full sync.
type dirtyTracker interface {
	DirtyPages() []storage.DirtyPageInfo
	FlushPages([]storage.PageID) error
}

// Checkpoint takes an ARIES-style fuzzy checkpoint — writers are never
// quiesced and in-flight transactions are fine:
//
//  1. The full-page-write fence advances to the current log tail (B).
//     From here on, the first mutation of any page whose image predates
//     B logs a full page image.
//  2. The active-transaction table is snapshotted, then the dirty-page
//     table (in that order: a transaction missing from the ATT has
//     finished, so its dirty pages are already visible to the DPT
//     gather or safely on disk). A record that is appended but whose
//     page is not yet marked dirty (the writer is between
//     AppendPageUpdate and Unpin) is covered by the ATT leg of the
//     minimum: its transaction cannot finish before the unpin, so it
//     is still registered and its first LSN bounds the record.
//  3. A checkpoint record carrying both tables is appended and forced.
//  4. The DPT snapshot's pages are flushed and the store synced —
//     concurrent traffic keeps running; pages dirtied after the
//     snapshot are the NEXT checkpoint's problem, their records lie at
//     or above B.
//  5. The recovery-begin LSN — min(B, ATT first LSNs) — and the
//     checkpoint LSN are persisted in the log manifest, and every
//     segment wholly below the recovery-begin LSN is deleted. The
//     classic ARIES formula also takes the minimum over the DPT
//     recLSNs, but step 4 flushed exactly that snapshot, so every
//     record the DPT leg would retain is provably durable on its page:
//     the term is vacuous here and dropping it lets truncation advance
//     a full checkpoint round further.
//
// Every record a future recovery could need (redo for pages not yet
// durable, undo for transactions then in flight) has an LSN at or above
// the recovery-begin LSN: a page dirtied by a pre-fence record that is
// not in the flushed DPT snapshot must have been unpinned after the DPT
// gather, so its transaction was still registered at the earlier ATT
// gather and its first LSN holds the bound. The scan is bounded and the
// truncated history is provably dead.
func (m *Manager) Checkpoint() (wal.LSN, error) { return m.checkpoint(true) }

// CheckpointAsync takes the same fuzzy checkpoint but returns as soon
// as the checkpoint record is durable (steps 1–3): the DPT-snapshot
// flush and the manifest write run on the background flusher, so the
// caller never stalls behind page write-backs. Requires a started
// flusher — without one it degrades to the synchronous Checkpoint. A
// background completion failure is sticky and surfaces as the error of
// the NEXT checkpoint call (and of StopCheckpointFlusher), with the
// previous manifest left in force — no truncation happened, which is
// always safe.
func (m *Manager) CheckpointAsync() (wal.LSN, error) { return m.checkpoint(false) }

func (m *Manager) checkpoint(syncWait bool) (wal.LSN, error) {
	if m.log == nil {
		return wal.ZeroLSN, ErrNoWAL
	}
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()
	if err := m.takeFlushErr(); err != nil {
		return wal.ZeroLSN, err
	}
	fence := m.log.BeginCheckpoint()

	m.mu.Lock()
	att := make([]wal.CkptTxn, 0, len(m.active))
	for id, t := range m.active {
		t.mu.Lock()
		att = append(att, wal.CkptTxn{ID: id, First: t.firstLSN, Last: t.lastLSN})
		t.mu.Unlock()
	}
	m.mu.Unlock()

	var dpt []wal.CkptPage
	tracker, _ := m.store.(dirtyTracker)
	if tracker != nil {
		for _, d := range tracker.DirtyPages() {
			dpt = append(dpt, wal.CkptPage{Page: d.ID, RecLSN: wal.LSN(d.RecLSN)})
		}
	}

	lsn, err := m.log.Append(&wal.Record{
		Type:  wal.RecCheckpoint,
		After: wal.EncodeCheckpoint(wal.CheckpointData{Fence: fence, ATT: att, DPT: dpt, Clock: m.oracle.Clock()}),
	})
	if err != nil {
		return wal.ZeroLSN, err
	}
	if err := m.log.Flush(lsn + 1); err != nil {
		return wal.ZeroLSN, err
	}

	ids := make([]storage.PageID, len(dpt))
	for i, d := range dpt {
		ids[i] = d.Page
	}
	recoveryBegin := fence
	for _, t := range att {
		if t.First != wal.ZeroLSN && t.First < recoveryBegin {
			recoveryBegin = t.First
		}
	}

	// Completion — flush the snapshot, then persist the manifest. The
	// flush is what licenses truncation: once every page dirty at the
	// snapshot is durably on disk, no record below the recovery-begin
	// LSN is needed for redo, and any page a later crash tears was
	// re-dirtied after the fence — so a full image for it sits above
	// the fence in the retained log. Completions are totally ordered:
	// either every one runs on the flusher goroutine in enqueue order
	// (jobs enqueued under ckptMu), or — with no flusher — inline here
	// under ckptMu. A manifest can therefore never regress to an older
	// checkpoint's recovery-begin.
	job := ckptJob{lsn: lsn, recoveryBegin: recoveryBegin, pages: ids}
	if syncWait {
		job.done = make(chan error, 1)
	}
	if m.enqueueCkpt(job) {
		if !syncWait {
			return lsn, nil
		}
		if err := <-job.done; err != nil {
			return wal.ZeroLSN, err
		}
		return lsn, nil
	}
	if err := m.completeCheckpoint(job); err != nil {
		return wal.ZeroLSN, err
	}
	return lsn, nil
}

// completeCheckpoint flushes a checkpoint's DPT snapshot and persists
// the manifest (recovery-begin advance + segment truncation).
func (m *Manager) completeCheckpoint(job ckptJob) error {
	tracker, _ := m.store.(dirtyTracker)
	if tracker != nil {
		if err := tracker.FlushPages(job.pages); err != nil {
			return err
		}
	} else if m.store != nil {
		if err := m.store.Sync(); err != nil {
			return err
		}
	}
	return m.log.CompleteCheckpoint(job.lsn, job.recoveryBegin)
}

// coldWriter is the optional buffer-pool surface the flusher uses to
// opportunistically write back cold dirty frames between checkpoints
// (buffer.Manager implements it).
type coldWriter interface {
	WriteBackCold(max int) (int, error)
}

// Write-back pacing of the background flusher while idle: a small
// clock-ordered batch per tick keeps the next checkpoint's dirty-page
// snapshot (and therefore its flush) short without saturating the
// device.
const (
	coldWritebackTick  = 100 * time.Millisecond
	coldWritebackBatch = 64
)

// StartCheckpointFlusher starts the background checkpoint flusher.
// While it runs, CheckpointAsync returns after forcing the checkpoint
// record and the flusher advances recovery-begin behind it; between
// jobs the flusher opportunistically writes back cold dirty frames
// (clock-ordered per stripe) so checkpoint snapshots stay small.
// No-op if already started.
func (m *Manager) StartCheckpointFlusher() {
	m.flusherMu.Lock()
	defer m.flusherMu.Unlock()
	if m.flusherCh != nil {
		return
	}
	m.flusherCh = make(chan ckptJob, 8)
	m.flusherStop = make(chan struct{})
	m.flusherDone = make(chan struct{})
	go m.flusherLoop(m.flusherCh, m.flusherStop, m.flusherDone)
}

// StopCheckpointFlusher drains and stops the background flusher:
// every enqueued checkpoint completion still runs before it returns.
// It returns any sticky background completion error (also surfaced by
// the next checkpoint call). No-op if not running.
func (m *Manager) StopCheckpointFlusher() error {
	m.flusherMu.Lock()
	ch, stop, done := m.flusherCh, m.flusherStop, m.flusherDone
	m.flusherCh = nil
	m.flusherMu.Unlock()
	if ch == nil {
		return nil
	}
	close(stop)
	<-done
	m.flusherMu.Lock()
	defer m.flusherMu.Unlock()
	err := m.flushErr
	m.flushErr = nil
	return err
}

// enqueueCkpt hands a completion to the flusher, reporting false when
// no flusher is running (the caller completes inline).
func (m *Manager) enqueueCkpt(job ckptJob) bool {
	m.flusherMu.Lock()
	defer m.flusherMu.Unlock()
	if m.flusherCh == nil {
		return false
	}
	m.flusherCh <- job
	return true
}

func (m *Manager) takeFlushErr() error {
	m.flusherMu.Lock()
	defer m.flusherMu.Unlock()
	err := m.flushErr
	m.flushErr = nil
	return err
}

func (m *Manager) setFlushErr(err error) {
	m.flusherMu.Lock()
	if m.flushErr == nil {
		m.flushErr = err
	}
	m.flusherMu.Unlock()
}

// flusherLoop is the background flusher: checkpoint completions in
// enqueue order, cold write-backs while idle, drain on stop.
func (m *Manager) flusherLoop(ch chan ckptJob, stop, done chan struct{}) {
	defer close(done)
	cold, _ := m.store.(coldWriter)
	ticker := time.NewTicker(coldWritebackTick)
	defer ticker.Stop()
	run := func(job ckptJob) {
		err := m.completeCheckpoint(job)
		if job.done != nil {
			job.done <- err
		} else if err != nil {
			m.setFlushErr(err)
		}
	}
	for {
		select {
		case job := <-ch:
			run(job)
		case <-ticker.C:
			if cold != nil {
				// A failed write-back is retried by nature (the frame
				// stays dirty); it is sticky-reported so the operator
				// sees a dying device, but never blocks checkpoints.
				if _, err := cold.WriteBackCold(coldWritebackBatch); err != nil {
					m.setFlushErr(err)
				}
			}
		case <-stop:
			for {
				select {
				case job := <-ch:
					run(job)
				default:
					return
				}
			}
		}
	}
}

// ActiveCount returns the number of in-flight transactions.
func (m *Manager) ActiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}
