// Package storage implements the Storage Services layer of the SBDMS
// architecture (Section 3.1): byte-level non-volatile devices, a
// page-granular disk manager with persistent free-space management, a
// typed page abstraction with checksums, and a file manager that
// organises pages into named chains. Each piece maps onto one of the
// storage components of Figures 5-7 (Disk Manager, Page Manager, File
// Manager) and is exposed as a service by the sbdms facade.
package storage

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// Device errors.
var (
	// ErrClosed is returned on access to a closed device or manager.
	ErrClosed = errors.New("storage: closed")
	// ErrOutOfRange is returned when an access lies beyond the device
	// or page bounds.
	ErrOutOfRange = errors.New("storage: out of range")
)

// Device is a byte-level non-volatile storage device ("Storage Services
// work at byte level and handle the physical specification of
// non-volatile devices"). Implementations must be safe for concurrent
// use.
type Device interface {
	io.ReaderAt
	io.WriterAt
	// Size returns the current device size in bytes.
	Size() (int64, error)
	// Truncate grows or shrinks the device.
	Truncate(size int64) error
	// Sync flushes buffered writes to stable storage.
	Sync() error
	// Close releases the device.
	Close() error
}

// MemDevice is an in-memory Device used for tests, benchmarks and the
// small-footprint profiles where no durable medium exists (simulated
// embedded flash).
type MemDevice struct {
	mu     sync.RWMutex
	data   []byte
	closed bool
	// FailWrites makes every write fail; fault-injection hook.
	failWrites bool
}

// NewMemDevice creates an empty in-memory device.
func NewMemDevice() *MemDevice { return &MemDevice{} }

// ReadAt implements io.ReaderAt.
func (d *MemDevice) ReadAt(p []byte, off int64) (int, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return 0, ErrClosed
	}
	if off < 0 {
		return 0, ErrOutOfRange
	}
	if off >= int64(len(d.data)) {
		return 0, io.EOF
	}
	n := copy(p, d.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt, growing the device as needed.
func (d *MemDevice) WriteAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrClosed
	}
	if d.failWrites {
		return 0, fmt.Errorf("storage: injected write failure")
	}
	if off < 0 {
		return 0, ErrOutOfRange
	}
	end := off + int64(len(p))
	d.grow(end)
	copy(d.data[off:end], p)
	return len(p), nil
}

// grow extends the device to at least end bytes with amortized
// doubling. An exact-size reallocation per extension makes
// append-at-end workloads — the replication follower's WAL tail above
// all — quadratic in device size. The gap between the old length and
// end is zeroed explicitly: a shrinking Truncate reslices, leaving
// stale bytes in the spare capacity.
func (d *MemDevice) grow(end int64) {
	if end <= int64(len(d.data)) {
		return
	}
	old := len(d.data)
	if end <= int64(cap(d.data)) {
		d.data = d.data[:end]
		clear(d.data[old:end])
		return
	}
	newCap := 2 * int64(cap(d.data))
	if newCap < end {
		newCap = end
	}
	grown := make([]byte, end, newCap)
	copy(grown, d.data[:old])
	d.data = grown
}

// Size implements Device.
func (d *MemDevice) Size() (int64, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return 0, ErrClosed
	}
	return int64(len(d.data)), nil
}

// Truncate implements Device.
func (d *MemDevice) Truncate(size int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if size < 0 {
		return ErrOutOfRange
	}
	if size <= int64(len(d.data)) {
		d.data = d.data[:size]
		return nil
	}
	d.grow(size)
	return nil
}

// Sync implements Device (no-op for memory).
func (d *MemDevice) Sync() error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return ErrClosed
	}
	return nil
}

// Close implements Device.
func (d *MemDevice) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	d.data = nil
	return nil
}

// SetFailWrites toggles injected write failures (fault injection for
// flexibility-by-adaptation tests).
func (d *MemDevice) SetFailWrites(fail bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failWrites = fail
}

// FileDevice is a file-backed Device.
type FileDevice struct {
	mu     sync.RWMutex
	f      *os.File
	closed bool
}

// OpenFileDevice opens (creating if needed) a file-backed device.
func OpenFileDevice(path string) (*FileDevice, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: opening device %s: %w", path, err)
	}
	return &FileDevice{f: f}, nil
}

// ReadAt implements io.ReaderAt.
func (d *FileDevice) ReadAt(p []byte, off int64) (int, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return 0, ErrClosed
	}
	return d.f.ReadAt(p, off)
}

// WriteAt implements io.WriterAt.
func (d *FileDevice) WriteAt(p []byte, off int64) (int, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return 0, ErrClosed
	}
	return d.f.WriteAt(p, off)
}

// Size implements Device.
func (d *FileDevice) Size() (int64, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return 0, ErrClosed
	}
	st, err := d.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Truncate implements Device.
func (d *FileDevice) Truncate(size int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.f.Truncate(size)
}

// Sync implements Device.
func (d *FileDevice) Sync() error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return ErrClosed
	}
	return d.f.Sync()
}

// Close implements Device.
func (d *FileDevice) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	return d.f.Close()
}
