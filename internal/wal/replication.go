package wal

import "fmt"

// This file is the log-shipping surface of the WAL: an append observer
// that lets a replication shipper see records the moment they are
// assigned an LSN (before they are durable locally — the async-commit
// mode acks a commit once a follower holds the record, which can be
// earlier than the local fsync), an exported record encoder so a
// follower can maintain a byte-identical copy of the leader's log, and
// a segment snapshot used to bootstrap a follower that is too far
// behind to tail the live log (ErrSegmentGone).

// SegmentHeaderSize is the byte length of a segment file's header:
// records at LSN x live at device offset SegmentHeaderSize + (x - base)
// inside their segment. Exported for follower log replicas that append
// shipped records at leader-assigned offsets.
const SegmentHeaderSize = segHeaderSize

// EncodeRecord appends the deterministic wire encoding of rec to dst
// and returns the extended slice. Encoding depends only on the record's
// fields, so a follower that re-encodes a shipped record at the
// leader-assigned LSN offset reproduces the leader's log bytes exactly;
// rec.End - rec.LSN equals the encoded length.
func EncodeRecord(dst []byte, rec *Record) []byte { return encode(dst, rec) }

// SetAppendObserver installs fn, called under the log mutex for every
// record as it is appended, immediately after LSN assignment (rec.LSN
// and rec.End are set; the record is NOT yet durable). The observer
// must be fast, must not call back into the log, and must not retain
// rec or its byte slices past the call — copy what it needs. Pass nil
// to remove the observer.
func (l *Log) SetAppendObserver(fn func(rec *Record)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.appendObs = fn
}

// BootstrapSegment is one live segment's raw device bytes (header
// included), copied up to the durable boundary at snapshot time.
type BootstrapSegment struct {
	Seq  uint64
	Base LSN
	Data []byte
}

// SnapshotSegments copies the manifest and every live segment's durable
// bytes under the log mutex, returning the durable boundary the copy
// covers. Seeding a fresh SegmentDir with these bytes yields a log that
// opens to the same state as the source had at the boundary; records
// from the boundary onward must then arrive through shipping. Callers
// bootstrapping a follower should copy the data device BEFORE calling
// this: the WAL rule guarantees any page image on the device is covered
// by records at or below the boundary taken afterwards.
func (l *Log) SnapshotSegments() (manifest []byte, segs []BootstrapSegment, durable LSN, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()

	manifest = make([]byte, manifestSize)
	if _, err = l.manifestDev.ReadAt(manifest, 0); err != nil {
		return nil, nil, 0, fmt.Errorf("wal: snapshot manifest: %w", err)
	}
	for _, s := range l.segs {
		end := s.end
		if end > l.flushed {
			end = l.flushed
		}
		if end < s.base {
			end = s.base
		}
		data := make([]byte, s.devOff(end))
		if _, err = s.dev.ReadAt(data, 0); err != nil {
			return nil, nil, 0, fmt.Errorf("wal: snapshot segment %d: %w", s.seq, err)
		}
		segs = append(segs, BootstrapSegment{Seq: s.seq, Base: s.base, Data: data})
	}
	return manifest, segs, l.flushed, nil
}
