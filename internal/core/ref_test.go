package core

import (
	"context"
	"errors"
	"testing"
)

func registryWith(t *testing.T, ifaces map[string]string) (*Registry, map[string]*BaseService) {
	t.Helper()
	r := NewRegistry(nil)
	svcs := make(map[string]*BaseService)
	for name, iface := range ifaces {
		s := newEchoService(t, name, iface)
		if err := r.RegisterService(s, nil); err != nil {
			t.Fatal(err)
		}
		svcs[name] = s
	}
	return r, svcs
}

func TestRefResolveAndInvoke(t *testing.T) {
	r, _ := registryWith(t, map[string]string{"a": "test.Echo", "b": "test.Echo"})
	ref := NewRef(r, "test.Echo", nil)
	out, err := ref.Invoke(context.Background(), "echo", "hi")
	if err != nil {
		t.Fatal(err)
	}
	if out != "a:hi" {
		t.Fatalf("out = %v, want a:hi (SelectFirst)", out)
	}
	if ref.Current() != "a" {
		t.Fatalf("Current = %q", ref.Current())
	}
}

func TestRefNoProvider(t *testing.T) {
	r := NewRegistry(nil)
	ref := NewRef(r, "test.Missing", nil)
	if _, err := ref.Invoke(context.Background(), "echo", "x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestRefSelfHealsWhenProviderStops(t *testing.T) {
	ctx := context.Background()
	r, svcs := registryWith(t, map[string]string{"a": "test.Echo", "b": "test.Echo"})
	ref := NewRef(r, "test.Echo", nil)
	if out, _ := ref.Invoke(ctx, "echo", "x"); out != "a:x" {
		t.Fatalf("first call went to %v", out)
	}
	// Stop the cached provider without touching the registry: the ref
	// must fail over on the ErrNotRunning response.
	if err := svcs["a"].Stop(ctx); err != nil {
		t.Fatal(err)
	}
	_ = r.Deregister("a")
	out, err := ref.Invoke(ctx, "echo", "x")
	if err != nil {
		t.Fatalf("self-heal failed: %v", err)
	}
	if out != "b:x" {
		t.Fatalf("out = %v, want b:x", out)
	}
}

func TestRefAvoid(t *testing.T) {
	ctx := context.Background()
	r, _ := registryWith(t, map[string]string{"a": "test.Echo", "b": "test.Echo"})
	ref := NewRef(r, "test.Echo", nil)
	ref.Avoid("a", true)
	if out, _ := ref.Invoke(ctx, "echo", "x"); out != "b:x" {
		t.Fatalf("out = %v, want b:x", out)
	}
	// Avoiding everything falls back to the full candidate set.
	ref.Avoid("b", true)
	if _, err := ref.Invoke(ctx, "echo", "x"); err != nil {
		t.Fatalf("all-avoided fallback: %v", err)
	}
	ref.Avoid("a", false)
	ref.Avoid("b", false)
	if out, _ := ref.Invoke(ctx, "echo", "x"); out != "a:x" {
		t.Fatalf("out = %v, want a:x after clearing avoid", out)
	}
}

func TestRefUncachedAlwaysResolves(t *testing.T) {
	ctx := context.Background()
	r, _ := registryWith(t, map[string]string{"b": "test.Echo"})
	ref := NewUncachedRef(r, "test.Echo", nil)
	if out, _ := ref.Invoke(ctx, "echo", "x"); out != "b:x" {
		t.Fatal("uncached ref must resolve")
	}
	// Register a lexicographically earlier provider; uncached ref picks
	// it up immediately with SelectFirst.
	a := newEchoService(t, "a", "test.Echo")
	if err := r.RegisterService(a, nil); err != nil {
		t.Fatal(err)
	}
	if out, _ := ref.Invoke(ctx, "echo", "x"); out != "a:x" {
		t.Fatal("uncached ref must re-resolve every call")
	}
	if ref.Current() != "" {
		t.Fatal("uncached ref must not cache")
	}
}

func TestSelectors(t *testing.T) {
	mk := func(name string, cost float64, avail float64, class string, tags map[string]string) *Registration {
		return &Registration{
			Name: name, Interface: "i",
			Contract: &Contract{Interface: "i", Quality: Quality{CostFactor: cost, Availability: avail, LatencyClass: class}},
			Tags:     tags,
		}
	}
	cands := []*Registration{
		mk("exp", 5, 0.9, "network", map[string]string{"node": "far"}),
		mk("mid", 2, 0.99, "disk", map[string]string{"node": "near"}),
		mk("chp", 1, 0.95, "memory", nil),
	}
	if got := SelectFirst(cands); got.Name != "exp" {
		t.Fatalf("SelectFirst = %s", got.Name)
	}
	if got := SelectLowestCost(cands); got.Name != "chp" {
		t.Fatalf("SelectLowestCost = %s", got.Name)
	}
	if got := SelectHighestAvailability(cands); got.Name != "mid" {
		t.Fatalf("SelectHighestAvailability = %s", got.Name)
	}
	if got := SelectByTag("node", "near", nil)(cands); got.Name != "mid" {
		t.Fatalf("SelectByTag = %s", got.Name)
	}
	if got := SelectByTag("node", "nowhere", SelectLowestCost)(cands); got.Name != "chp" {
		t.Fatalf("SelectByTag fallback = %s", got.Name)
	}
	if got := SelectAvoid("exp", nil)(cands); got.Name != "mid" {
		t.Fatalf("SelectAvoid = %s", got.Name)
	}
	if got := SelectAvoid("only", nil)([]*Registration{mk("only", 1, 1, "memory", nil)}); got.Name != "only" {
		t.Fatalf("SelectAvoid sole-candidate fallback = %s", got.Name)
	}
	if SelectFirst(nil) != nil || SelectLowestCost(nil) != nil || SelectHighestAvailability(nil) != nil {
		t.Fatal("selectors must return nil on empty candidates")
	}
}

func TestRefSetSelector(t *testing.T) {
	ctx := context.Background()
	r := NewRegistry(nil)
	cheap := newEchoService(t, "zcheap", "test.Echo")
	cheap.Contract().Quality.CostFactor = 1
	costly := newEchoService(t, "acostly", "test.Echo")
	costly.Contract().Quality.CostFactor = 10
	for _, s := range []*BaseService{cheap, costly} {
		if err := r.RegisterService(s, nil); err != nil {
			t.Fatal(err)
		}
	}
	ref := NewRef(r, "test.Echo", nil)
	if out, _ := ref.Invoke(ctx, "echo", "x"); out != "acostly:x" {
		t.Fatalf("default selection = %v", out)
	}
	ref.SetSelector(SelectLowestCost)
	if out, _ := ref.Invoke(ctx, "echo", "x"); out != "zcheap:x" {
		t.Fatalf("after SetSelector = %v", out)
	}
}
