package wal

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/storage"
)

// fillRecord returns an update record of roughly n payload bytes.
func fillRecord(txn uint64, n int) *Record {
	return &Record{
		Txn: txn, Type: RecUpdate, PageID: 7, Offset: 0,
		Before: make([]byte, n/2), After: make([]byte, n/2),
	}
}

func TestSegmentRollover(t *testing.T) {
	dir := NewMemSegmentDir()
	l, err := OpenDir(dir, minSegmentBytes)
	if err != nil {
		t.Fatal(err)
	}
	var lsns []LSN
	for i := 0; i < 40; i++ {
		lsn, err := l.Append(fillRecord(uint64(i), 1024))
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
		if err := l.Flush(l.NextLSN()); err != nil {
			t.Fatal(err)
		}
	}
	if l.Rolls() == 0 || l.SegmentCount() < 2 {
		t.Fatalf("rolls = %d, segments = %d; expected rollover", l.Rolls(), l.SegmentCount())
	}
	// Every record is still reachable, in order, with its original LSN.
	var got []LSN
	if err := l.Iterate(ZeroLSN, func(r *Record) error { got = append(got, r.LSN); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(lsns) {
		t.Fatalf("iterated %d records, want %d", len(got), len(lsns))
	}
	for i := range got {
		if got[i] != lsns[i] {
			t.Fatalf("record %d: lsn %d, want %d", i, got[i], lsns[i])
		}
	}
	// Iterating from a mid-log LSN starts exactly there.
	mid := lsns[len(lsns)/2]
	var fromMid int
	_ = l.Iterate(mid, func(r *Record) error {
		if r.LSN < mid {
			t.Fatalf("record %d below requested start %d", r.LSN, mid)
		}
		fromMid++
		return nil
	})
	if fromMid != len(lsns)-len(lsns)/2 {
		t.Fatalf("fromMid = %d", fromMid)
	}
}

func TestSegmentedReopenFindsTail(t *testing.T) {
	dir := NewMemSegmentDir()
	l, err := OpenDir(dir, minSegmentBytes)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for l.SegmentCount() < 3 {
		if _, err := l.Append(fillRecord(uint64(n), 2048)); err != nil {
			t.Fatal(err)
		}
		n++
		if err := l.Flush(l.NextLSN()); err != nil {
			t.Fatal(err)
		}
	}
	next := l.NextLSN()

	l2, err := OpenDir(dir, minSegmentBytes)
	if err != nil {
		t.Fatal(err)
	}
	if l2.NextLSN() != next {
		t.Fatalf("NextLSN after reopen = %d, want %d", l2.NextLSN(), next)
	}
	if l2.SegmentCount() != l.SegmentCount() {
		t.Fatalf("segments after reopen = %d, want %d", l2.SegmentCount(), l.SegmentCount())
	}
	seen := 0
	if err := l2.Iterate(ZeroLSN, func(r *Record) error { seen++; return nil }); err != nil {
		t.Fatal(err)
	}
	if seen != n {
		t.Fatalf("records after reopen = %d, want %d", seen, n)
	}
}

func TestCheckpointTruncatesSegments(t *testing.T) {
	dir := NewMemSegmentDir()
	l, err := OpenDir(dir, minSegmentBytes)
	if err != nil {
		t.Fatal(err)
	}
	for l.SegmentCount() < 4 {
		if _, err := l.Append(fillRecord(1, 2048)); err != nil {
			t.Fatal(err)
		}
		if err := l.Flush(l.NextLSN()); err != nil {
			t.Fatal(err)
		}
	}
	before := l.SegmentCount()
	ck, err := l.Checkpoint() // quiescent convenience path: recoveryBegin = ck
	if err != nil {
		t.Fatal(err)
	}
	if l.SegmentCount() >= before {
		t.Fatalf("segments %d -> %d: checkpoint did not truncate", before, l.SegmentCount())
	}
	if dir.Removed() == 0 {
		t.Fatal("no segment files were deleted")
	}
	if l.OldestLSN() > ck {
		t.Fatalf("oldest LSN %d above checkpoint %d", l.OldestLSN(), ck)
	}
	// The truncated history is unreachable; iteration starts at the
	// oldest live segment and still reaches the checkpoint record.
	sawCkpt := false
	if err := l.Iterate(ZeroLSN, func(r *Record) error {
		if r.LSN < l.OldestLSN() {
			t.Fatalf("iterated record %d below oldest %d", r.LSN, l.OldestLSN())
		}
		if r.Type == RecCheckpoint && r.LSN == ck {
			sawCkpt = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !sawCkpt {
		t.Fatal("checkpoint record not reachable after truncation")
	}

	// Reopen: manifest and surviving segments agree.
	l2, err := OpenDir(dir, minSegmentBytes)
	if err != nil {
		t.Fatal(err)
	}
	if l2.LastCheckpoint() != ck || l2.RecoveryBegin() != ck {
		t.Fatalf("manifest after reopen: ckpt=%d rb=%d, want %d", l2.LastCheckpoint(), l2.RecoveryBegin(), ck)
	}
}

// TestSizeBoundedUnderCheckpoints drives appends with periodic
// checkpoints and asserts the total log footprint stays bounded — the
// acceptance criterion that the WAL no longer grows without bound.
func TestSizeBoundedUnderCheckpoints(t *testing.T) {
	dir := NewMemSegmentDir()
	l, err := OpenDir(dir, minSegmentBytes)
	if err != nil {
		t.Fatal(err)
	}
	var maxSize uint64
	for i := 0; i < 400; i++ {
		if _, err := l.Append(fillRecord(uint64(i), 1024)); err != nil {
			t.Fatal(err)
		}
		if err := l.Flush(l.NextLSN()); err != nil {
			t.Fatal(err)
		}
		if i%25 == 24 {
			if _, err := l.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		if s := l.Size(); s > maxSize {
			maxSize = s
		}
	}
	// ~400 KiB of records total; with checkpoints every 25 records the
	// live window is a few segments at most.
	if limit := uint64(8 * minSegmentBytes); maxSize > limit {
		t.Fatalf("log footprint reached %d bytes (limit %d): truncation is not keeping up", maxSize, limit)
	}
	if l.OldestSegment() == 1 {
		t.Fatal("oldest segment never advanced")
	}
}

// TestFullPageWriteAfterFence: the first update of a page after a
// checkpoint fence logs a full page image even though the page was
// logged before; later updates log diffs again.
func TestFullPageWriteAfterFence(t *testing.T) {
	dir := NewMemSegmentDir()
	l, err := OpenDir(dir, minSegmentBytes)
	if err != nil {
		t.Fatal(err)
	}
	page := make([]byte, storage.PageSize)
	next := func(lsn LSN, mut func([]byte)) *Record {
		before := append([]byte(nil), page...)
		mut(page)
		rec, err := l.AppendPageUpdate(1, 0, 42, before, page, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rec != nil {
			storage.WrapPage(42, page).SetLSN(uint64(rec.LSN))
		}
		return rec
	}
	// First-ever touch: full image (prior LSN 0 < initial fence 1).
	r1 := next(0, func(p []byte) { p[100] = 1 })
	if len(r1.After) != storage.PageSize || r1.Offset != 0 {
		t.Fatalf("first touch logged %d bytes at %d, want a full image", len(r1.After), r1.Offset)
	}
	// Second touch: a minimal diff.
	r2 := next(r1.LSN, func(p []byte) { p[200] = 2 })
	if len(r2.After) >= storage.PageSize {
		t.Fatalf("second touch logged %d bytes, want a diff", len(r2.After))
	}
	// After a fence advance, the next touch is a full image again.
	l.BeginCheckpoint()
	r3 := next(r2.LSN, func(p []byte) { p[300] = 3 })
	if len(r3.After) != storage.PageSize || r3.Offset != 0 {
		t.Fatalf("post-fence touch logged %d bytes at %d, want a full image", len(r3.After), r3.Offset)
	}
	// And the one after that is a diff.
	r4 := next(r3.LSN, func(p []byte) { p[400] = 4 })
	if len(r4.After) >= storage.PageSize {
		t.Fatalf("post-FPW touch logged %d bytes, want a diff", len(r4.After))
	}
	// Identical images log nothing.
	if rec := next(r4.LSN, func(p []byte) {}); rec != nil {
		t.Fatalf("no-op mutation logged record %+v", rec)
	}
}

// TestCrashDuringRolloverDropsEmptySegment: a segment file that exists
// but whose header never became durable (crash mid-rollover) is
// discarded on open — nothing in it was ever acknowledged.
func TestCrashDuringRolloverDropsEmptySegment(t *testing.T) {
	dir := NewMemSegmentDir()
	l, err := OpenDir(dir, minSegmentBytes)
	if err != nil {
		t.Fatal(err)
	}
	for l.SegmentCount() < 2 {
		if _, err := l.Append(fillRecord(1, 2048)); err != nil {
			t.Fatal(err)
		}
		if err := l.Flush(l.NextLSN()); err != nil {
			t.Fatal(err)
		}
	}
	next := l.NextLSN()
	// Simulate the crash: the next segment file appears with a torn
	// (half-written) header.
	seqs, _ := dir.ListSegments()
	newest := seqs[len(seqs)-1]
	dev, err := dir.OpenSegment(newest + 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.WriteAt(encodeSegHeader(newest+1, next)[:10], 0); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenDir(dir, minSegmentBytes)
	if err != nil {
		t.Fatalf("reopen after crashed rollover: %v", err)
	}
	if l2.NextLSN() != next {
		t.Fatalf("NextLSN = %d, want %d", l2.NextLSN(), next)
	}
	if got, _ := dir.ListSegments(); got[len(got)-1] != newest {
		t.Fatalf("torn rollover segment survived: %v", got)
	}
	// The log keeps working: appends land in the recovered active
	// segment and roll onward normally.
	if _, err := l2.Append(fillRecord(9, 512)); err != nil {
		t.Fatal(err)
	}
	if err := l2.Flush(l2.NextLSN()); err != nil {
		t.Fatal(err)
	}
}

// TestCrashDuringFirstInitRecovers: a crash during the very first
// segment's header write (before anything was ever acknowledged) must
// not brick the directory — reopening reinitialises from scratch.
func TestCrashDuringFirstInitRecovers(t *testing.T) {
	dir := NewMemSegmentDir()
	// Simulate the torn first-ever header: manifest absent, segment 1
	// exists with a half-written header.
	dev, err := dir.OpenSegment(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.WriteAt(encodeSegHeader(1, LSN(segHeaderSize))[:12], 0); err != nil {
		t.Fatal(err)
	}
	l, err := OpenDir(dir, minSegmentBytes)
	if err != nil {
		t.Fatalf("open after crashed first init: %v", err)
	}
	if _, err := l.Append(fillRecord(1, 256)); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(l.NextLSN()); err != nil {
		t.Fatal(err)
	}
	// A torn sole segment on a log that HAS a completed checkpoint is
	// real corruption and must still fail loudly.
	if _, err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	dev2, err := dir.OpenSegment(l.OldestSegment())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev2.WriteAt([]byte{0xDE, 0xAD}, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(dir, minSegmentBytes); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt checkpointed segment accepted: %v", err)
	}
}

// TestSingleDeviceCrashDuringFirstInitRecovers: the single-device
// layout has the same crash window during its very first header write;
// reopening must wipe the unborn segment region and reinitialise
// instead of failing forever.
func TestSingleDeviceCrashDuringFirstInitRecovers(t *testing.T) {
	dev := storage.NewMemDevice()
	// Manifest region zeros, then a half-written segment header.
	if _, err := dev.WriteAt(encodeSegHeader(1, LSN(segHeaderSize))[:12], manifestSize); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dev)
	if err != nil {
		t.Fatalf("open after crashed single-device init: %v", err)
	}
	lsn, err := l.Append(fillRecord(1, 128))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(l.NextLSN()); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := l2.Iterate(ZeroLSN, func(r *Record) error {
		if r.LSN != lsn {
			t.Fatalf("record at %d, want %d", r.LSN, lsn)
		}
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("records after reinit = %d", n)
	}
}

// TestIterateBelowOldestFailsLoudly: a positive LSN below the oldest
// live segment names truncated history; Iterate must fail with
// ErrSegmentGone instead of silently skipping records (a lagging log
// shipper must resynchronise, not diverge).
func TestIterateBelowOldestFailsLoudly(t *testing.T) {
	dir := NewMemSegmentDir()
	l, err := OpenDir(dir, minSegmentBytes)
	if err != nil {
		t.Fatal(err)
	}
	watermark := l.NextLSN()
	for l.SegmentCount() < 3 {
		if _, err := l.Append(fillRecord(1, 2048)); err != nil {
			t.Fatal(err)
		}
		if err := l.Flush(l.NextLSN()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if l.OldestLSN() <= watermark {
		t.Fatalf("checkpoint did not truncate past the watermark (%d vs %d)", l.OldestLSN(), watermark)
	}
	err = l.Iterate(watermark, func(r *Record) error { return nil })
	if !errors.Is(err, ErrSegmentGone) {
		t.Fatalf("Iterate below oldest = %v, want ErrSegmentGone", err)
	}
	// ZeroLSN explicitly means "oldest retained" and still works.
	if err := l.Iterate(ZeroLSN, func(r *Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestTornManifestFallsBackConservatively: a torn manifest write is
// survivable — the log opens, scans from the oldest live segment, and
// forces full-page images on every next touch.
func TestTornManifestFallsBackConservatively(t *testing.T) {
	dir := NewMemSegmentDir()
	l, err := OpenDir(dir, minSegmentBytes)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append(fillRecord(uint64(i), 512)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Flush(l.NextLSN()); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	next := l.NextLSN()
	// Tear the manifest: flip a byte inside the CRC-covered region.
	mdev, err := dir.OpenManifest()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mdev.WriteAt([]byte{0xFF}, 20); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenDir(dir, minSegmentBytes)
	if err != nil {
		t.Fatalf("open with torn manifest: %v", err)
	}
	if l2.LastCheckpoint() != ZeroLSN || l2.RecoveryBegin() != ZeroLSN {
		t.Fatalf("torn manifest not discarded: ckpt=%d rb=%d", l2.LastCheckpoint(), l2.RecoveryBegin())
	}
	if l2.FullPageFence() != next {
		t.Fatalf("fence = %d, want conservative %d", l2.FullPageFence(), next)
	}
}

func TestSingleDeviceLogNeverRolls(t *testing.T) {
	dev := storage.NewMemDevice()
	l, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := l.Append(fillRecord(uint64(i), 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Flush(l.NextLSN()); err != nil {
		t.Fatal(err)
	}
	if l.SegmentCount() != 1 || l.Rolls() != 0 {
		t.Fatalf("single-device log rolled: %d segments, %d rolls", l.SegmentCount(), l.Rolls())
	}
	// Checkpoints advance the manifest but never truncate.
	if _, err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if l.SegmentCount() != 1 {
		t.Fatal("single-device segment disappeared")
	}
}

// TestCheckpointPayloadRoundTrip pins the checkpoint table encoding.
func TestCheckpointPayloadRoundTrip(t *testing.T) {
	in := CheckpointData{
		Fence: 12345,
		ATT: []CkptTxn{
			{ID: 1, First: 100, Last: 900},
			{ID: 7, First: 300, Last: 300},
		},
		DPT: []CkptPage{
			{Page: 3, RecLSN: 150},
			{Page: 9, RecLSN: 0},
		},
	}
	out, err := DecodeCheckpoint(EncodeCheckpoint(in))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", out) != fmt.Sprintf("%+v", in) {
		t.Fatalf("round trip mismatch:\n in %+v\nout %+v", in, out)
	}
	if _, err := DecodeCheckpoint(nil); err != nil {
		t.Fatalf("empty payload: %v", err)
	}
	if _, err := DecodeCheckpoint([]byte{1, 2, 3}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short payload err = %v", err)
	}
}
