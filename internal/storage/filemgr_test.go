package storage

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
)

func newFM(t *testing.T) (*FileManager, *DiskManager) {
	t.Helper()
	d, err := OpenDisk(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	fm, err := OpenFileManager(d)
	if err != nil {
		t.Fatal(err)
	}
	return fm, d
}

func TestFileManagerCreateDropList(t *testing.T) {
	fm, _ := newFM(t)
	if err := fm.Create("users"); err != nil {
		t.Fatal(err)
	}
	if err := fm.Create("users"); !errors.Is(err, ErrFileExists) {
		t.Fatalf("err = %v", err)
	}
	if err := fm.Create(""); err == nil {
		t.Fatal("empty name must fail")
	}
	if err := fm.Create("orders"); err != nil {
		t.Fatal(err)
	}
	if got := fm.List(); len(got) != 2 || got[0] != "orders" || got[1] != "users" {
		t.Fatalf("List = %v", got)
	}
	if !fm.Exists("users") || fm.Exists("zzz") {
		t.Fatal("Exists broken")
	}
	if err := fm.Drop("users"); err != nil {
		t.Fatal(err)
	}
	if fm.Exists("users") {
		t.Fatal("dropped file still exists")
	}
	if err := fm.Drop("users"); !errors.Is(err, ErrFileNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestFileManagerAppendAndChain(t *testing.T) {
	fm, _ := newFM(t)
	if err := fm.Create("f"); err != nil {
		t.Fatal(err)
	}
	if first, _ := fm.FirstPage("f"); first != InvalidPageID {
		t.Fatal("empty file must have no first page")
	}
	var ids []PageID
	for i := 0; i < 5; i++ {
		id, err := fm.AppendPage("f", PageTypeHeap)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if n, _ := fm.PageCount("f"); n != 5 {
		t.Fatalf("PageCount = %d", n)
	}
	first, _ := fm.FirstPage("f")
	last, _ := fm.LastPage("f")
	if first != ids[0] || last != ids[4] {
		t.Fatalf("first/last = %d/%d, want %d/%d", first, last, ids[0], ids[4])
	}
	pages, err := fm.Pages("f")
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 5 {
		t.Fatalf("Pages = %v", pages)
	}
	for i, id := range pages {
		if id != ids[i] {
			t.Fatalf("chain order %v != append order %v", pages, ids)
		}
	}
	// NextPage follows the chain.
	next, err := fm.NextPage(ids[0])
	if err != nil || next != ids[1] {
		t.Fatalf("NextPage = %d, %v", next, err)
	}
	if next, _ := fm.NextPage(ids[4]); next != InvalidPageID {
		t.Fatal("last page must end the chain")
	}
}

func TestFileManagerDropFreesPages(t *testing.T) {
	fm, d := newFM(t)
	if err := fm.Create("f"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := fm.AppendPage("f", PageTypeHeap); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := d.FreePages()
	if err := fm.Drop("f"); err != nil {
		t.Fatal(err)
	}
	after, _ := d.FreePages()
	if after-before < 4 {
		t.Fatalf("free pages %d -> %d, want at least +4", before, after)
	}
}

func TestFileManagerPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fm.db")
	dev, _ := OpenFileDevice(path)
	d, _ := OpenDisk(dev)
	fm, err := OpenFileManager(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := fm.Create("t1"); err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	for i := 0; i < 3; i++ {
		id, err := fm.AppendPage("t1", PageTypeHeap)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	dev2, _ := OpenFileDevice(path)
	d2, err := OpenDisk(dev2)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	fm2, err := OpenFileManager(d2)
	if err != nil {
		t.Fatal(err)
	}
	if !fm2.Exists("t1") {
		t.Fatal("file lost across reopen")
	}
	pages, err := fm2.Pages("t1")
	if err != nil || len(pages) != 3 {
		t.Fatalf("pages = %v, %v", pages, err)
	}
	for i := range pages {
		if pages[i] != ids[i] {
			t.Fatalf("chain changed: %v vs %v", pages, ids)
		}
	}
}

func TestFileManagerManyFilesGrowsDirectory(t *testing.T) {
	fm, _ := newFM(t)
	// Enough files with long names to spill the directory past one page.
	n := 200
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("table-with-a-rather-long-name-%04d", i)
		if err := fm.Create(name); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(fm.List()); got != n {
		t.Fatalf("List len = %d", got)
	}
	if fm.dirLen < 2 {
		t.Fatalf("directory should span multiple pages, got %d", fm.dirLen)
	}
	// Dropping most files shrinks it again.
	for i := 0; i < n-1; i++ {
		name := fmt.Sprintf("table-with-a-rather-long-name-%04d", i)
		if err := fm.Drop(name); err != nil {
			t.Fatal(err)
		}
	}
	if fm.dirLen != 1 {
		t.Fatalf("directory pages after drops = %d, want 1", fm.dirLen)
	}
	if got := len(fm.List()); got != 1 {
		t.Fatalf("List len = %d", got)
	}
}

func TestFileManagerUnknownFileOps(t *testing.T) {
	fm, _ := newFM(t)
	if _, err := fm.FirstPage("x"); !errors.Is(err, ErrFileNotFound) {
		t.Fatal(err)
	}
	if _, err := fm.LastPage("x"); !errors.Is(err, ErrFileNotFound) {
		t.Fatal(err)
	}
	if _, err := fm.PageCount("x"); !errors.Is(err, ErrFileNotFound) {
		t.Fatal(err)
	}
	if _, err := fm.AppendPage("x", PageTypeHeap); !errors.Is(err, ErrFileNotFound) {
		t.Fatal(err)
	}
	if _, err := fm.Pages("x"); !errors.Is(err, ErrFileNotFound) {
		t.Fatal(err)
	}
}
