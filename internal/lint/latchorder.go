package lint

import (
	"go/ast"
	"go/types"
)

// LatchOrderAnalyzer enforces the engine's latch/lock ordering rule:
// never block on the lock manager while holding a page latch. A page
// latch is a short-term mutex on a buffer frame; parking under one (for
// a lock queue, another transaction's commit, deadlock detection) can
// stall every reader of that page and invert the latch-before-lock
// order the crabbing protocol depends on. TryAcquire is the only legal
// lock-manager call under a latch — callers that are refused must
// release their latches first and retry with the blocking Acquire.
//
// Two checks:
//
//  1. Within a function, after a latching acquire (PinLatched,
//     NewPageLatched, or the B+tree crabbing helpers) and before the
//     matching release, calls to LockManager.Acquire or Txn.Lock are
//     flagged.
//  2. Function literals that run under leaf latches — GapCheck hooks
//     and RangeLatched/InsertTxGap/DeleteTxGap callbacks — must not
//     contain blocking Acquire/Lock calls at all.
var LatchOrderAnalyzer = &Analyzer{
	Name: "latchorder",
	Doc: "no blocking LockManager.Acquire or Txn.Lock while a page latch is held; " +
		"TryAcquire is the only legal lock call under a latch",
	Run: runLatchOrder,
}

// latchDelta classifies a call's effect on the held-latch count:
// +1 for acquires, -1 for releases, 0 otherwise.
func latchDelta(info *types.Info, call *ast.CallExpr) int {
	fn := calleeFunc(info, call)
	if fn == nil {
		return 0
	}
	switch {
	case isMethodOn(fn, bufferPath, "Manager", "PinLatched"),
		isMethodOn(fn, bufferPath, "Manager", "NewPageLatched"),
		isMethodOn(fn, indexPath, "BTree", "latch"),
		isMethodOn(fn, indexPath, "BTree", "metaLatch"),
		isMethodOn(fn, indexPath, "BTree", "descendToLeaf"),
		isMethodOn(fn, indexPath, "BTree", "newNodeLatched"):
		return 1
	case isMethodOn(fn, bufferPath, "Manager", "UnpinLatched"),
		isMethodOn(fn, indexPath, "BTree", "unlatch"),
		isMethodOn(fn, indexPath, "BTree", "metaUnlatch"):
		return -1
	}
	return 0
}

// isBlockingLock reports whether the call can park on the lock manager.
func isBlockingLock(info *types.Info, call *ast.CallExpr) (name string, ok bool) {
	fn := calleeFunc(info, call)
	switch {
	case isMethodOn(fn, txnPath, "LockManager", "Acquire"):
		return "LockManager.Acquire", true
	case isMethodOn(fn, txnPath, "Txn", "Lock"):
		return "Txn.Lock", true
	}
	return "", false
}

func runLatchOrder(pass *Pass) error {
	info := pass.TypesInfo

	// Check 1: source-order latch counting per function body. Deferred
	// releases deliberately do not decrement — a latch released only by
	// defer is held at every blocking call that follows, which is
	// exactly the condition being flagged.
	checkBody := func(body *ast.BlockStmt) {
		held := 0
		inspectShallow(body, func(n ast.Node) bool {
			if _, isDefer := n.(*ast.DeferStmt); isDefer {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, blocking := isBlockingLock(info, call); blocking && held > 0 {
				pass.Reportf(call.Pos(),
					"blocking %s while a page latch may be held: use TryAcquire, or release latches before blocking", name)
			}
			if d := latchDelta(info, call); d != 0 {
				held += d
				if held < 0 {
					held = 0
				}
			}
			return true
		})
	}

	// Check 2: collect function literals that execute under leaf
	// latches, then forbid blocking calls anywhere inside them
	// (including nested literals).
	var underLatch []*ast.FuncLit
	collectCalls := func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			v, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, v)
			if isMethodOn(fn, indexPath, "BTree", "RangeLatched") ||
				isMethodOn(fn, indexPath, "BTree", "InsertTxGap") ||
				isMethodOn(fn, indexPath, "BTree", "DeleteTxGap") {
				for _, arg := range v.Args {
					if lit, isLit := ast.Unparen(arg).(*ast.FuncLit); isLit {
						underLatch = append(underLatch, lit)
					}
				}
			}
			return true
		})
	}

	// collectGapLits finds literals that become index.GapCheck values:
	// returned from a function whose declared result type is GapCheck
	// (gap-lock hook constructors) or assigned to a GapCheck variable.
	// Such a literal runs under the leaf latch at its eventual call
	// site even though no latch is visible at its definition.
	collectGapLits := func(ft *ast.FuncType, body *ast.BlockStmt) {
		var gapResult []bool
		if ft.Results != nil {
			for _, field := range ft.Results.List {
				isGap := false
				if tv, ok := info.Types[field.Type]; ok {
					isGap = isNamedType(tv.Type, indexPath, "GapCheck")
				}
				n := len(field.Names)
				if n == 0 {
					n = 1
				}
				for i := 0; i < n; i++ {
					gapResult = append(gapResult, isGap)
				}
			}
		}
		inspectShallow(body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.ReturnStmt:
				for i, res := range v.Results {
					if lit, ok := ast.Unparen(res).(*ast.FuncLit); ok &&
						i < len(gapResult) && gapResult[i] {
						underLatch = append(underLatch, lit)
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range v.Rhs {
					lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
					if !ok || i >= len(v.Lhs) {
						continue
					}
					if obj := objOf(info, v.Lhs[i]); obj != nil && isNamedType(obj.Type(), indexPath, "GapCheck") {
						underLatch = append(underLatch, lit)
					}
				}
			}
			return true
		})
	}

	for _, f := range pass.Files {
		funcBodies(f, func(ft *ast.FuncType, body *ast.BlockStmt) {
			checkBody(body)
			collectGapLits(ft, body)
		})
		collectCalls(f)
	}

	for _, lit := range underLatch {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, blocking := isBlockingLock(info, call); blocking {
				pass.Reportf(call.Pos(),
					"blocking %s inside a callback that runs under a leaf latch: "+
						"use TryAcquire and retry off-latch on refusal", name)
			}
			return true
		})
	}
	return nil
}
