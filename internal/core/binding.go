package core

import (
	"context"
	"time"
)

// Binding separates how a service is reached from what it does
// (Section 3.6: "a binding separates the communication from the
// functionality"). A binding wraps an Invoker with a communication
// mechanism; LocalBinding is the in-process mechanism, and
// internal/netbind provides a TCP/gob mechanism. Custom protocols plug
// in by implementing this interface.
type Binding interface {
	// Bind wraps target with the binding's communication mechanism.
	Bind(target Invoker) Invoker
	// Protocol names the communication protocol, e.g. "local", "tcp+gob".
	Protocol() string
}

// LocalBinding is the zero-overhead in-process binding.
type LocalBinding struct{}

// Bind implements Binding: local bindings are pass-through.
func (LocalBinding) Bind(target Invoker) Invoker { return target }

// Protocol implements Binding.
func (LocalBinding) Protocol() string { return "local" }

// DelayBinding injects a fixed per-call latency; the experiment harness
// uses it to simulate network round-trips deterministically (e.g. the
// client-proximity study G3) without real sockets.
type DelayBinding struct {
	// Delay is added to every invocation.
	Delay time.Duration
}

// Bind implements Binding.
func (b DelayBinding) Bind(target Invoker) Invoker {
	return InvokerFunc(func(ctx context.Context, op string, req any) (any, error) {
		if b.Delay > 0 {
			t := time.NewTimer(b.Delay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			}
		}
		return target.Invoke(ctx, op, req)
	})
}

// Protocol implements Binding.
func (b DelayBinding) Protocol() string { return "delay" }

// BoundService wraps a service so that its Invoke path goes through a
// binding while lifecycle methods pass through. Registering a bound
// service makes every caller pay the binding's communication cost —
// how the granularity benchmarks model remote service deployment.
type BoundService struct {
	Service
	invoker Invoker
}

// BindService applies a binding to a service.
func BindService(s Service, b Binding) *BoundService {
	return &BoundService{Service: s, invoker: b.Bind(s)}
}

// Invoke implements Invoker through the binding.
func (bs *BoundService) Invoke(ctx context.Context, op string, req any) (any, error) {
	return bs.invoker.Invoke(ctx, op, req)
}
