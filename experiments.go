package sbdms

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/netbind"
	"repro/internal/workload"
)

// KVMeasurement is one cell of the granularity study (experiment G1):
// throughput and tail latency of a KV workload at one (granularity,
// binding) configuration.
type KVMeasurement struct {
	Granularity Granularity
	Binding     string
	Ops         int
	Elapsed     time.Duration
	OpsPerSec   float64
	P50, P99    time.Duration
	Failures    int
}

// String renders the measurement as a result-table row.
func (m KVMeasurement) String() string {
	return fmt.Sprintf("%-11s %-8s ops=%-8d thr=%10.0f op/s  p50=%-10v p99=%-10v fail=%d",
		m.Granularity, m.Binding, m.Ops, m.OpsPerSec, m.P50, m.P99, m.Failures)
}

// MeasureKV drives a generated KV workload through the DB's configured
// service path and reports throughput and latency percentiles.
func MeasureKV(db *DB, gen *workload.KVGen, nops int) KVMeasurement {
	m := KVMeasurement{Granularity: db.Granularity(), Binding: "local", Ops: nops}
	if db.opts.Binding != nil {
		m.Binding = db.opts.Binding.Protocol()
	}
	lat := make([]time.Duration, 0, nops)
	start := time.Now()
	for i := 0; i < nops; i++ {
		op := gen.Next()
		t0 := time.Now()
		var err error
		switch op.Kind {
		case workload.OpRead:
			_, err = db.Get(op.Key)
			if err != nil && err.Error() != "" {
				// Reads of never-written keys are expected misses, not
				// failures, in a fresh store.
				if isNotFound(err) {
					err = nil
				}
			}
		case workload.OpWrite:
			err = db.Put(op.Key, op.Val)
		case workload.OpScan:
			_, err = db.ScanKeys(op.Key, op.ScanLen)
		}
		lat = append(lat, time.Since(t0))
		if err != nil {
			m.Failures++
		}
	}
	m.Elapsed = time.Since(start)
	m.OpsPerSec = float64(nops) / m.Elapsed.Seconds()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if len(lat) > 0 {
		m.P50 = lat[len(lat)/2]
		m.P99 = lat[len(lat)*99/100]
	}
	return m
}

func isNotFound(err error) bool {
	for e := err; e != nil; {
		if e == ErrKeyNotFound {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			// Remote errors arrive flattened to strings.
			return containsNotFound(err.Error())
		}
		e = u.Unwrap()
	}
	return false
}

func containsNotFound(s string) bool {
	const marker = "key not found"
	for i := 0; i+len(marker) <= len(s); i++ {
		if s[i:i+len(marker)] == marker {
			return true
		}
	}
	return false
}

// Preload inserts the full key space so that read-mostly mixes hit.
func Preload(db *DB, keys, valSize int) error {
	val := make([]byte, valSize)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	for i := 0; i < keys; i++ {
		if err := db.Put(workload.Key(i), val); err != nil {
			return err
		}
	}
	return nil
}

// ConcurrencyMeasurement is one cell of the G6 concurrency-scaling
// experiment: throughput of a read/write KV mix at a given goroutine
// count, against the latch-crabbed, per-key-locked engine.
type ConcurrencyMeasurement struct {
	Goroutines int
	ReadPct    int // percentage of Gets in the mix
	Ops        int
	Elapsed    time.Duration
	OpsPerSec  float64
	Conflicts  int // retryable deadlock-victim aborts (retried)
	Failures   int
}

// String renders the measurement as a result-table row.
func (m ConcurrencyMeasurement) String() string {
	return fmt.Sprintf("goroutines=%-3d read%%=%-3d ops=%-8d thr=%10.0f op/s  conflicts=%-4d fail=%d",
		m.Goroutines, m.ReadPct, m.Ops, m.OpsPerSec, m.Conflicts, m.Failures)
}

// ConcurrencyScaling drives nops operations split across g goroutines
// over a shared key space (readPct percent Gets, the rest Puts) and
// measures aggregate throughput. Deadlock-victim conflicts are retried
// once and counted. Preload the key space first so reads hit.
func ConcurrencyScaling(db *DB, g, keys, nops, readPct int, seed int64) ConcurrencyMeasurement {
	m := ConcurrencyMeasurement{Goroutines: g, ReadPct: readPct, Ops: nops}
	per := nops / g
	if per < 1 {
		per = 1
	}
	m.Ops = per * g
	var conflicts, failures int64
	val := []byte("concurrency-scaling-value-0123456789")
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for i := 0; i < per; i++ {
				k := workload.Key(rng.Intn(keys))
				var err error
				if rng.Intn(100) < readPct {
					_, err = db.Get(k)
					if err != nil && isNotFound(err) {
						err = nil
					}
				} else {
					err = db.Put(k, val)
					if IsConflict(err) {
						atomic.AddInt64(&conflicts, 1)
						err = db.Put(k, val) // retryable by contract
					}
				}
				if err != nil {
					atomic.AddInt64(&failures, 1)
				}
			}
		}()
	}
	wg.Wait()
	m.Elapsed = time.Since(start)
	m.Conflicts = int(conflicts)
	m.Failures = int(failures)
	if m.Elapsed > 0 {
		m.OpsPerSec = float64(m.Ops) / m.Elapsed.Seconds()
	}
	return m
}

// MeasureTCPRoundTrip measures the real cost of one service invocation
// over the TCP binding on loopback: an echo service is served via
// netbind and invoked n times. The granularity sweep uses this measured
// value as the per-hop delay of its "tcp" rows (a full multi-process
// decomposition is demonstrated separately in examples/distributed).
func MeasureTCPRoundTrip(n int) (time.Duration, error) {
	reg := core.NewRegistry(nil)
	svc := core.NewService("echo", &core.Contract{
		Interface:  "bench.Echo",
		Operations: []core.OpSpec{{Name: "echo", In: "string", Out: "string"}},
	})
	svc.Handle("echo", func(ctx context.Context, req any) (any, error) { return req, nil })
	if err := svc.Start(context.Background()); err != nil {
		return 0, err
	}
	if err := reg.RegisterService(svc, nil); err != nil {
		return 0, err
	}
	srv, err := netbind.Serve(reg, "")
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	client := netbind.NewClient(srv.Addr())
	defer client.Close()
	ctx := context.Background()
	// Warm the connection.
	if _, err := client.Call(ctx, "echo", "echo", "warm"); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := client.Call(ctx, "echo", "echo", "x"); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(n), nil
}

// SweepStorage carries the storage-concurrency knobs of a granularity
// sweep, so experiment G1 can ablate storage configuration (buffer
// sharding, WAL group commit) against service granularity instead of
// holding storage fixed.
type SweepStorage struct {
	// BufferFrames sizes the pool (0 = 512, the classic G1 setting).
	BufferFrames int
	// BufferShards overrides the pool's lock-stripe count (0 = auto).
	BufferShards int
	// EnableWAL turns logging on for the sweep; the WAL fields below
	// only apply when set. The classic G1 sweep runs unlogged.
	EnableWAL bool
	// WALGroupWindow, WALGroupBytes, WALCommitSiblings,
	// WALSegmentBytes and CheckpointInterval mirror the same fields of
	// Options.
	WALGroupWindow     time.Duration
	WALGroupBytes      int
	WALCommitSiblings  int
	WALSegmentBytes    int
	CheckpointInterval time.Duration
}

// GranularitySweep runs experiment G1: every granularity profile under
// the local binding and under a per-hop delay calibrated from the real
// TCP round-trip. Returns one measurement per cell.
func GranularitySweep(mix workload.Mix, keys, nops int, seed int64) ([]KVMeasurement, error) {
	return GranularitySweepStorage(mix, keys, nops, seed, SweepStorage{})
}

// GranularitySweepStorage is GranularitySweep with explicit storage
// knobs, crossing the paper's granularity axis with the storage
// concurrency axis (ROADMAP: "thread BufferShards/WAL knobs into the
// G1 sweeps").
func GranularitySweepStorage(mix workload.Mix, keys, nops int, seed int64, st SweepStorage) ([]KVMeasurement, error) {
	rtt, err := MeasureTCPRoundTrip(200)
	if err != nil {
		return nil, err
	}
	frames := st.BufferFrames
	if frames <= 0 {
		frames = 512
	}
	var out []KVMeasurement
	for _, binding := range []struct {
		name string
		bind core.Binding
	}{
		{"local", nil},
		{fmt.Sprintf("tcp(%v)", rtt.Round(time.Microsecond)), core.DelayBinding{Delay: rtt}},
	} {
		for _, g := range Granularities {
			db, err := Open(Options{
				Granularity:        g,
				BufferFrames:       frames,
				BufferShards:       st.BufferShards,
				Binding:            binding.bind,
				DisableWAL:         !st.EnableWAL,
				WALGroupWindow:     st.WALGroupWindow,
				WALGroupBytes:      st.WALGroupBytes,
				WALCommitSiblings:  st.WALCommitSiblings,
				WALSegmentBytes:    st.WALSegmentBytes,
				CheckpointInterval: st.CheckpointInterval,
			})
			if err != nil {
				return nil, err
			}
			if err := Preload(db, keys, 100); err != nil {
				return nil, err
			}
			gen := workload.NewKV(workload.KVConfig{Seed: seed, Keys: keys, Mix: mix, Zipfian: true})
			m := MeasureKV(db, gen, nops)
			m.Binding = binding.name
			out = append(out, m)
			if err := db.Close(context.Background()); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
