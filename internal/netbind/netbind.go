// Package netbind provides the network communication protocol of the
// SBDMS architecture (Section 3.2: "service communication is done
// through well-defined communication protocols"): a TCP binding with a
// gob wire format exposing kernel-registered services to remote
// callers, a client implementing core.Invoker, and P2P gossip
// synchronisation between service registries (Section 4: "P2P style
// service information updates can be used to transmit information
// between service repositories").
package netbind

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/sql"
)

// Netbind errors.
var (
	// ErrRemote wraps an error returned by the remote service.
	ErrRemote = errors.New("netbind: remote error")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("netbind: closed")
	// ErrMessageTooLarge aborts a connection whose single message
	// exceeds the server's size limit (see WithMaxMessageBytes). The
	// gob stream is unrecoverable mid-message, so the connection drops.
	ErrMessageTooLarge = errors.New("netbind: message exceeds size limit")
)

// DefaultMaxMessageBytes bounds one decoded request when no explicit
// limit is configured: large enough for bulk imports and bootstrap
// snapshots, small enough that one rogue frame cannot exhaust memory.
const DefaultMaxMessageBytes = 64 << 20

// Protocol name of this binding.
const Protocol = "tcp+gob"

// request is one wire call.
type request struct {
	Service string
	Op      string
	Payload payload
}

// response is one wire reply.
type response struct {
	Payload payload
	Err     string
}

// payload boxes an arbitrary gob-encodable value.
type payload struct {
	V any
}

// syncRequest is the gossip exchange payload: the sender's snapshot
// plus its advertised address.
type syncRequest struct {
	From    string
	Entries []*core.Registration
}

// RegisterType makes a payload type transferable over the binding (gob
// requires concrete types to be registered on both sides).
func RegisterType(v any) { gob.Register(v) }

func init() {
	// Types commonly crossing service boundaries.
	RegisterType(access.Row{})
	RegisterType(access.Value{})
	RegisterType([]access.Row(nil))
	RegisterType(access.RID{})
	RegisterType(map[string]string{})
	RegisterType([]string(nil))
	RegisterType(core.ReleaseResourcesRequest{})
	RegisterType(&sql.Result{})
	RegisterType(core.CoordStatus{})
	RegisterType(syncRequest{})
	RegisterType([]*core.Registration(nil))
	RegisterType([]byte(nil))
}

// Server exposes every live registration of a registry over TCP.
type Server struct {
	registry *core.Registry
	ln       net.Listener
	addr     string
	maxMsg   int64
	ctx      context.Context // root context for dispatched invocations
	cancel   context.CancelFunc

	mu     sync.Mutex
	conns  map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup
}

// ServerOption configures a Server at Serve time.
type ServerOption func(*Server)

// WithMaxMessageBytes caps the bytes one request message may occupy on
// the wire; a connection sending a larger message is dropped with
// ErrMessageTooLarge before the payload is materialized.
func WithMaxMessageBytes(n int64) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.maxMsg = n
		}
	}
}

// Serve starts a server on addr ("" or ":0" picks a free port).
func Serve(registry *core.Registry, addr string, opts ...ServerOption) (*Server, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netbind: listen %s: %w", addr, err)
	}
	s := &Server{
		registry: registry,
		ln:       ln,
		addr:     ln.Addr().String(),
		maxMsg:   DefaultMaxMessageBytes,
		conns:    make(map[net.Conn]bool),
	}
	for _, opt := range opts {
		opt(s)
	}
	//lint:ignore ctxflow the server's root context: every dispatched invocation derives from it, and Close cancels it
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.addr }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	lim := &limitedMessageReader{conn: conn}
	dec := gob.NewDecoder(lim)
	enc := gob.NewEncoder(conn)
	for {
		lim.reset(s.maxMsg)
		var req request
		if err := dec.Decode(&req); err != nil {
			// An oversized message corrupts the gob stream mid-frame;
			// the only safe recovery is dropping the connection.
			return
		}
		resp := s.dispatch(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// limitedMessageReader meters bytes flowing into the gob decoder. The
// budget is reset before each message: a single message that overruns
// it fails the read, which fails the decode, which drops the
// connection — the server never buffers an unbounded frame.
type limitedMessageReader struct {
	conn      net.Conn
	remaining int64
}

func (l *limitedMessageReader) reset(budget int64) { l.remaining = budget }

func (l *limitedMessageReader) Read(p []byte) (int, error) {
	if l.remaining <= 0 {
		return 0, ErrMessageTooLarge
	}
	if int64(len(p)) > l.remaining {
		p = p[:l.remaining]
	}
	n, err := l.conn.Read(p)
	l.remaining -= int64(n)
	return n, err
}

// registrySyncService is the reserved service name for gossip.
const registrySyncService = "_registry"

func (s *Server) dispatch(req *request) *response {
	if req.Service == registrySyncService {
		return s.handleSync(req)
	}
	reg, err := s.registry.Lookup(req.Service)
	if err != nil {
		return &response{Err: err.Error()}
	}
	out, err := reg.Invoker.Invoke(s.ctx, req.Op, req.Payload.V)
	if err != nil {
		return &response{Err: err.Error()}
	}
	return &response{Payload: payload{V: out}}
}

func (s *Server) handleSync(req *request) *response {
	sr, ok := req.Payload.V.(syncRequest)
	if !ok {
		return &response{Err: "netbind: bad sync payload"}
	}
	s.registry.Merge(sr.Entries, func(addr, name string) core.Invoker {
		return NewClient(addr).InvokerFor(name)
	})
	// Reply with our own snapshot, addresses filled in.
	return &response{Payload: payload{V: syncRequest{
		From:    s.addr,
		Entries: s.snapshot(),
	}}}
}

// snapshot exports the registry with local entries advertised at this
// server's address.
func (s *Server) snapshot() []*core.Registration {
	entries := s.registry.Snapshot(0)
	for _, e := range entries {
		if e.Address == "" {
			e.Address = s.addr
		}
	}
	return entries
}

// Close stops the server and all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.cancel() // unblock in-flight invocations waiting on locks
	err := s.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}

// Client is a connection-caching caller for one remote server.
type Client struct {
	addr string

	mu     sync.Mutex
	conn   net.Conn
	enc    *gob.Encoder
	dec    *gob.Decoder
	closed bool
}

// NewClient creates a client for addr (lazy dial).
func NewClient(addr string) *Client { return &Client{addr: addr} }

// Addr returns the remote address.
func (c *Client) Addr() string { return c.addr }

func (c *Client) ensureLocked() error {
	if c.closed {
		return ErrClosed
	}
	if c.conn != nil {
		return nil
	}
	conn, err := net.DialTimeout("tcp", c.addr, 2*time.Second)
	if err != nil {
		return fmt.Errorf("netbind: dialing %s: %w", c.addr, err)
	}
	c.conn = conn
	c.enc = gob.NewEncoder(conn)
	c.dec = gob.NewDecoder(conn)
	return nil
}

// Call invokes op on the named remote service.
func (c *Client) Call(ctx context.Context, service, op string, in any) (any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensureLocked(); err != nil {
		return nil, err
	}
	if dl, ok := ctx.Deadline(); ok {
		_ = c.conn.SetDeadline(dl)
	} else {
		_ = c.conn.SetDeadline(time.Time{})
	}
	req := request{Service: service, Op: op, Payload: payload{V: in}}
	if err := c.enc.Encode(&req); err != nil {
		c.dropLocked()
		return nil, fmt.Errorf("netbind: sending to %s: %w", c.addr, err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		c.dropLocked()
		return nil, fmt.Errorf("netbind: receiving from %s: %w", c.addr, err)
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("%w: %s", ErrRemote, resp.Err)
	}
	return resp.Payload.V, nil
}

func (c *Client) dropLocked() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
		c.enc, c.dec = nil, nil
	}
}

// Close releases the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	c.dropLocked()
	return nil
}

// InvokerFor returns a core.Invoker bound to one remote service — the
// remote counterpart of a local service reference.
func (c *Client) InvokerFor(service string) core.Invoker {
	return core.InvokerFunc(func(ctx context.Context, op string, req any) (any, error) {
		return c.Call(ctx, service, op, req)
	})
}

// Sync performs one gossip exchange with a peer server: our snapshot
// goes out, the peer's snapshot merges back in. Returns how many peer
// entries were applied locally. The context bounds the exchange (its
// deadline becomes the connection deadline).
func Sync(ctx context.Context, registry *core.Registry, selfAddr string, peer *Client) (int, error) {
	entries := registry.Snapshot(0)
	for _, e := range entries {
		if e.Address == "" {
			e.Address = selfAddr
		}
	}
	out, err := peer.Call(ctx, registrySyncService, "sync", syncRequest{
		From:    selfAddr,
		Entries: entries,
	})
	if err != nil {
		return 0, err
	}
	sr, ok := out.(syncRequest)
	if !ok {
		return 0, fmt.Errorf("netbind: unexpected sync reply %T", out)
	}
	applied := registry.Merge(sr.Entries, func(addr, name string) core.Invoker {
		if addr == selfAddr {
			return nil // never dial ourselves for our own entries
		}
		return NewClient(addr).InvokerFor(name)
	})
	return applied, nil
}

// Gossiper periodically syncs a registry with a set of peers.
type Gossiper struct {
	registry *core.Registry
	self     string
	peers    []*Client
	ctx      context.Context // root context for gossip exchanges
	cancel   context.CancelFunc
	stop     chan struct{}
	done     chan struct{}
}

// NewGossiper creates a gossiper for the registry served at selfAddr.
func NewGossiper(registry *core.Registry, selfAddr string, peerAddrs ...string) *Gossiper {
	g := &Gossiper{registry: registry, self: selfAddr}
	for _, a := range peerAddrs {
		g.peers = append(g.peers, NewClient(a))
	}
	return g
}

// Start begins periodic gossip every interval.
func (g *Gossiper) Start(interval time.Duration) {
	if g.stop != nil {
		return
	}
	g.stop = make(chan struct{})
	g.done = make(chan struct{})
	//lint:ignore ctxflow the gossip daemon's root context: Stop cancels it, aborting any exchange in flight
	g.ctx, g.cancel = context.WithCancel(context.Background())
	go func() {
		defer close(g.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-g.stop:
				return
			case <-ticker.C:
				for _, p := range g.peers {
					_, _ = Sync(g.ctx, g.registry, g.self, p)
				}
			}
		}
	}()
}

// Stop halts gossiping.
func (g *Gossiper) Stop() {
	if g.stop == nil {
		return
	}
	g.cancel()
	close(g.stop)
	<-g.done
	g.stop = nil
	for _, p := range g.peers {
		_ = p.Close()
	}
}

// Binding implements core.Binding by round-tripping local invocations
// through a real TCP connection to a loopback server — the honest cost
// model for "remote service" in the granularity experiments.
type Binding struct {
	client  *Client
	service string
}

// NewBinding wires a binding that reaches the named service via the
// client.
func NewBinding(client *Client, service string) *Binding {
	return &Binding{client: client, service: service}
}

// Bind implements core.Binding (the target is ignored: calls go over
// the wire to the service registered remotely under the same name).
func (b *Binding) Bind(target core.Invoker) core.Invoker {
	return b.client.InvokerFor(b.service)
}

// Protocol implements core.Binding.
func (b *Binding) Protocol() string { return Protocol }
