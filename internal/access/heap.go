package access

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/buffer"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Heap file errors.
var (
	// ErrRecordTooLarge is returned when a record exceeds one page.
	ErrRecordTooLarge = errors.New("access: record too large for a page")
)

// RID identifies a record: page plus slot.
type RID struct {
	Page storage.PageID
	Slot uint16
}

// String implements fmt.Stringer.
func (r RID) String() string { return fmt.Sprintf("%d:%d", r.Page, r.Slot) }

// Less orders RIDs (page, then slot).
func (r RID) Less(o RID) bool {
	if r.Page != o.Page {
		return r.Page < o.Page
	}
	return r.Slot < o.Slot
}

// TxnContext is the minimal transactional hook a heap file needs: the
// transaction id for log records and a callback to register each update
// (for undo and LSN chaining). internal/txn provides the real
// implementation; nil means unlogged operation.
type TxnContext interface {
	// ID returns the transaction id.
	ID() uint64
	// LastLSN returns the transaction's most recent log record.
	LastLSN() wal.LSN
	// Record registers an appended update record with the transaction.
	Record(rec *wal.Record)
}

// CompensationContext is optionally implemented by TxnContexts used
// while rolling a transaction back: records logged through them are
// compensations and carry the redo-only marker instead of a fresh undo
// descriptor (an undo is never itself undone; idempotent inverses plus
// repeat-history redo make re-running a half-durable rollback safe).
type CompensationContext interface {
	Compensating() bool
}

// committedHook is the optional TxnContext surface for deferring work
// until the transaction's commit record is durable.
type committedHook interface {
	OnCommitted(func())
}

// SystemTxnHooks supplies short system transactions to access methods:
// self-contained, WAL-logged page mutations (deferred slot purges,
// B+tree structure modifications) that commit independently of the user
// transaction that triggered them. internal/txn provides the
// implementation; a zero value means unlogged operation.
type SystemTxnHooks struct {
	Begin  func() (TxnContext, error)
	Commit func(TxnContext) error
	Abort  func(TxnContext) error
}

// HeapFile stores variable-length records in a chain of slotted pages
// managed by the file manager, cached by the buffer manager, and
// (optionally) logged to the WAL. It is the record-level storage
// service behind tables.
//
// Concurrency: every page access runs under the buffer pool's page
// latches (shared for reads, exclusive for mutations), so operations on
// different pages proceed in parallel and operations on the same page
// serialise only for the latch hold. The struct's own mutex guards just
// the free-space hint list and configuration; file growth serialises on
// a separate append mutex so concurrent inserts don't race to extend
// the chain.
type HeapFile struct {
	name string
	fm   *storage.FileManager
	pool *buffer.Manager

	mu       sync.Mutex
	log      *wal.Log
	sys      SystemTxnHooks
	freeHint []storage.PageID // pages with reclaimed space

	appendMu sync.Mutex // serialises chain growth
}

// OpenHeap opens the named heap file, creating it if absent.
func OpenHeap(name string, fm *storage.FileManager, pool *buffer.Manager) (*HeapFile, error) {
	if !fm.Exists(name) {
		if err := fm.Create(name); err != nil && !errors.Is(err, storage.ErrFileExists) {
			return nil, err
		}
	}
	return &HeapFile{name: name, fm: fm, pool: pool}, nil
}

// SetLog attaches a write-ahead log; subsequent mutations through a
// non-nil TxnContext are logged with physical redo images and logical
// undo descriptors.
func (h *HeapFile) SetLog(l *wal.Log) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.log = l
}

// SetSystemTxns attaches the system-transaction hooks used for deferred
// slot purges.
func (h *HeapFile) SetSystemTxns(s SystemTxnHooks) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sys = s
}

func (h *HeapFile) getLog() *wal.Log {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.log
}

func (h *HeapFile) getSys() SystemTxnHooks {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sys
}

// Name returns the file name.
func (h *HeapFile) Name() string { return h.name }

// MutatePage pins the page under an exclusive page latch, runs fn over
// it, and — when log and tx are both non-nil — appends one update
// record covering the page transition, stamps the page LSN, and
// registers the record with the transaction. Physical before-image undo
// (undo == nil) is only sound for serialised writers (system
// transactions); concurrent user transactions attach a logical undo
// descriptor via MutatePageUndo.
func MutatePage(pool *buffer.Manager, log *wal.Log, tx TxnContext, pid storage.PageID, fn func(p *storage.Page) error) error {
	return MutatePageUndo(pool, log, tx, pid, nil, fn)
}

// MutatePageUndo is MutatePage with a logical-undo descriptor supplier:
// undo is evaluated after fn succeeded (so it can reference slot
// numbers fn assigned) and attached to the log record. A tx that
// implements CompensationContext forces the redo-only marker instead.
// It is the one WAL-logging protocol shared by every pool-based access
// method (heap files, B+trees).
func MutatePageUndo(pool *buffer.Manager, log *wal.Log, tx TxnContext, pid storage.PageID, undo func() []byte, fn func(p *storage.Page) error) error {
	f, err := pool.PinLatched(pid, true)
	if err != nil {
		return err
	}
	page := f.Page()
	logging := log != nil && tx != nil
	var before []byte
	if logging {
		before = append([]byte(nil), page.Data...)
	}
	if err := fn(page); err != nil {
		_ = pool.UnpinLatched(pid, true, false)
		return err
	}
	if logging {
		var desc []byte
		if c, ok := tx.(CompensationContext); ok && c.Compensating() {
			desc = wal.UndoNone
		} else if undo != nil {
			desc = undo()
		}
		rec, err := log.AppendPageUpdate(tx.ID(), tx.LastLSN(), pid, before, page.Data, desc)
		if err != nil {
			// The mutation could not be logged: put the page back
			// exactly as it was (we hold the latch and the before
			// image), so the failure leaves no unlogged change behind.
			//lint:ignore walbeforemutate restoring the exact before image after a failed append is the WAL discipline, not a bypass of it
			copy(page.Data, before)
			_ = pool.UnpinLatched(pid, true, false)
			return err
		}
		if rec != nil {
			page.SetLSN(uint64(rec.LSN))
			tx.Record(rec)
		}
	}
	return pool.UnpinLatched(pid, true, true)
}

// LogLatchedMutation applies fn to a frame the caller already holds
// exclusively latched, and logs the transition exactly like
// MutatePageUndo. The caller remains responsible for marking the frame
// dirty when it unlatches. B+tree crabbing uses it: latches are
// acquired by the descent, not per mutation.
func LogLatchedMutation(log *wal.Log, tx TxnContext, f *buffer.Frame, undo func() []byte, fn func(p *storage.Page) error) error {
	page := f.Page()
	logging := log != nil && tx != nil
	var before []byte
	if logging {
		before = append([]byte(nil), page.Data...)
	}
	if err := fn(page); err != nil {
		return err
	}
	if logging {
		var desc []byte
		if c, ok := tx.(CompensationContext); ok && c.Compensating() {
			desc = wal.UndoNone
		} else if undo != nil {
			desc = undo()
		}
		rec, err := log.AppendPageUpdate(tx.ID(), tx.LastLSN(), f.ID, before, page.Data, desc)
		if err != nil {
			// Unloggable: restore the exact prior bytes under the
			// caller's latch so no unlogged mutation survives.
			copy(page.Data, before)
			return err
		}
		if rec != nil {
			page.SetLSN(uint64(rec.LSN))
			tx.Record(rec)
		}
	}
	return nil
}

// mutatePage applies fn to pid under the heap's pool and log.
func (h *HeapFile) mutatePage(tx TxnContext, pid storage.PageID, undo func() []byte, fn func(p *storage.Page) error) error {
	return MutatePageUndo(h.pool, h.getLog(), tx, pid, undo, fn)
}

// Insert stores a record and returns its RID. With a non-nil tx the
// mutation is WAL-logged under that transaction with a logical undo
// (delete the slot again).
func (h *HeapFile) Insert(tx TxnContext, rec []byte) (RID, error) {
	if len(rec) > maxRecordLen {
		return RID{}, fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(rec))
	}

	try := func(pid storage.PageID) (RID, bool, error) {
		var rid RID
		ok := false
		// A full page is not an error for the mutation protocol: the
		// failed Insert may still have compacted the page, and that
		// reorganisation MUST be logged (redo replays diffs against the
		// exact byte history; an unlogged layout change would corrupt
		// every later diff on the page). Compaction is content-
		// preserving, so the record is redo-only — rollback never needs
		// to undo it.
		undo := func() []byte {
			if !ok {
				return wal.UndoNone
			}
			return UndoHeapInsert(rid)
		}
		err := h.mutatePage(tx, pid, undo, func(p *storage.Page) error {
			sp := Slotted(p)
			slot, err := sp.Insert(rec)
			if errors.Is(err, ErrPageFull) {
				return nil // not an error; just try elsewhere
			}
			if err != nil {
				return err
			}
			rid = RID{Page: pid, Slot: uint16(slot)}
			ok = true
			return nil
		})
		return rid, ok, err
	}

	// Pages with reclaimed space first, then the chain tail.
	for _, pid := range h.hintSnapshot() {
		rid, ok, err := try(pid)
		if err != nil {
			return RID{}, err
		}
		if ok {
			return rid, nil
		}
		h.dropHint(pid)
	}
	if last, err := h.fm.LastPage(h.name); err == nil && last != storage.InvalidPageID {
		rid, ok, err := try(last)
		if err != nil {
			return RID{}, err
		}
		if ok {
			return rid, nil
		}
	}
	// Grow the file. One grower at a time: a racing insert that lost
	// the append mutex retries the (possibly new) tail first instead of
	// appending a second page.
	h.appendMu.Lock()
	defer h.appendMu.Unlock()
	if last, err := h.fm.LastPage(h.name); err == nil && last != storage.InvalidPageID {
		rid, ok, err := try(last)
		if err != nil {
			return RID{}, err
		}
		if ok {
			return rid, nil
		}
	}
	pid, err := h.fm.AppendPage(h.name, storage.PageTypeHeap)
	if err != nil {
		return RID{}, err
	}
	var rid RID
	err = h.mutatePage(tx, pid, func() []byte { return UndoHeapInsert(rid) }, func(p *storage.Page) error {
		sp := Slotted(p)
		if sp.NumSlots() == 0 && sp.cellStart() == 0 {
			sp = InitSlotted(p)
		}
		slot, err := sp.Insert(rec)
		if err != nil {
			return err
		}
		rid = RID{Page: pid, Slot: uint16(slot)}
		return nil
	})
	if err != nil {
		return RID{}, err
	}
	// The file manager WAL-logs the directory update and chain links of
	// the appended page under a system transaction, so recovery reaches
	// this page without any eager flush here.
	return rid, nil
}

func (h *HeapFile) hintSnapshot() []storage.PageID {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]storage.PageID(nil), h.freeHint...)
}

func (h *HeapFile) dropHint(pid storage.PageID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, f := range h.freeHint {
		if f == pid {
			h.freeHint = append(h.freeHint[:i], h.freeHint[i+1:]...)
			return
		}
	}
}

// NoteFree records that pid has reclaimable space (insert candidates).
func (h *HeapFile) NoteFree(pid storage.PageID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, f := range h.freeHint {
		if f == pid {
			return
		}
	}
	h.freeHint = append(h.freeHint, pid)
}

// Get returns a copy of the record's cell at rid (including any padding
// left by UpdateInPlace — callers' record encodings are
// self-delimiting), read under a shared page latch.
func (h *HeapFile) Get(rid RID) ([]byte, error) {
	f, err := h.pool.PinLatched(rid.Page, false)
	if err != nil {
		return nil, err
	}
	sp := Slotted(f.Page())
	rec, err := sp.Get(int(rid.Slot))
	if err != nil {
		_ = h.pool.UnpinLatched(rid.Page, false, false)
		return nil, err
	}
	out := append([]byte(nil), rec...)
	if err := h.pool.UnpinLatched(rid.Page, false, false); err != nil {
		return nil, err
	}
	return out, nil
}

// StampBytes overwrites len(val) bytes at offset off within the cell
// at rid, WAL-logged with a logical undo that restores the old bytes.
// It is the version-header mutation primitive: commit stamping writes
// a begin timestamp over the uncommitted mark, and the vacuum severs a
// chain by stamping a version's prev link. The caller's key lock (or
// the vacuum's TryAcquire) must exclude concurrent writers of the same
// logical record; the page latch inside the mutation protocol makes
// the byte splice atomic against unrelated neighbours.
func (h *HeapFile) StampBytes(tx TxnContext, rid RID, off int, val []byte) error {
	var old []byte
	return h.mutatePage(tx, rid.Page, func() []byte { return UndoHeapField(rid, off, old) }, func(p *storage.Page) error {
		sp := Slotted(p)
		cell, err := sp.Get(int(rid.Slot))
		if err != nil {
			return err
		}
		if off+len(val) > len(cell) {
			return fmt.Errorf("%w: stamp %d+%d past cell end %d", ErrBadUndo, off, len(val), len(cell))
		}
		old = append([]byte(nil), cell[off:off+len(val)]...)
		copy(cell[off:], val)
		return nil
	})
}

// Delete removes the record at rid immediately, with a logical undo
// that restores the record bytes into the same slot. Immediate deletion
// is only rollback-safe when the caller's locking prevents any OTHER
// transaction from inserting into this heap while the deleting
// transaction is live (table-level X locks): otherwise the freed slot
// could be reused before an abort restores it. Per-key callers use
// DeleteDeferred instead.
func (h *HeapFile) Delete(tx TxnContext, rid RID) error {
	var old []byte
	err := h.mutatePage(tx, rid.Page, func() []byte { return UndoHeapDelete(rid, old) }, func(p *storage.Page) error {
		sp := Slotted(p)
		cur, err := sp.Get(int(rid.Slot))
		if err != nil {
			return err
		}
		old = append([]byte(nil), cur...)
		return sp.Delete(int(rid.Slot))
	})
	if err != nil {
		return err
	}
	h.NoteFree(rid.Page)
	return nil
}

// DeleteDeferred removes the record at rid only once tx's commit is
// durable: the transaction itself leaves the slot untouched (so abort
// has nothing to restore and no other transaction can steal the slot),
// and the actual purge runs post-commit under a short system
// transaction. A crash between the commit and the purge leaks the
// slot: the record is unreachable (its index entry is gone) but stays
// live in the page — nothing reclaims it until a vacuum exists (see
// ROADMAP); the cost is bounded at one slot per crash. Without a
// transaction (unlogged mode) the delete happens immediately.
func (h *HeapFile) DeleteDeferred(tx TxnContext, rid RID) error {
	hook, ok := tx.(committedHook)
	if tx == nil || !ok {
		return h.mutatePage(tx, rid.Page, nil, func(p *storage.Page) error {
			return Slotted(p).Delete(int(rid.Slot))
		})
	}
	hook.OnCommitted(func() { _ = h.purge(rid) })
	return nil
}

// purge deletes a slot under a lazily-committed system transaction.
// The record carries a LOGICAL undo (restore the cell), not physical:
// the page latch is released before the system transaction's lazy
// commit record enters the log, so a concurrent user record can
// interleave on the page — a crash catching that window would
// otherwise restore a stale before image over committed bytes. With
// logical undo, an in-flight purge is rolled back by re-inserting
// exactly its own cell.
func (h *HeapFile) purge(rid RID) error {
	sys := h.getSys()
	var stx TxnContext
	if sys.Begin != nil {
		var err error
		if stx, err = sys.Begin(); err != nil {
			return err
		}
	}
	var old []byte
	err := h.mutatePage(stx, rid.Page, func() []byte { return UndoHeapDelete(rid, old) }, func(p *storage.Page) error {
		sp := Slotted(p)
		cur, err := sp.Cell(int(rid.Slot))
		if errors.Is(err, ErrNoSlot) {
			return nil // already purged
		}
		if err != nil {
			return err
		}
		old = append([]byte(nil), cur...)
		return sp.Delete(int(rid.Slot))
	})
	if stx != nil {
		if err != nil {
			_ = sys.Abort(stx)
			return err
		}
		if cerr := sys.Commit(stx); cerr != nil {
			return cerr
		}
	}
	if err == nil {
		h.NoteFree(rid.Page)
	}
	return err
}

// UpdateInPlace overwrites the record at rid without moving it, keeping
// the cell length (shorter records are zero-padded): the undo — restore
// the old cell bytes — then always fits, no matter what concurrent
// transactions do to the rest of the page. Returns false (and no
// mutation) when the record exceeds the cell; the caller then inserts a
// fresh record and retargets its index. Requires a self-delimiting
// record encoding.
func (h *HeapFile) UpdateInPlace(tx TxnContext, rid RID, rec []byte) (bool, error) {
	var old []byte
	err := h.mutatePage(tx, rid.Page, func() []byte { return UndoHeapCell(rid, old) }, func(p *storage.Page) error {
		sp := Slotted(p)
		cur, err := sp.Cell(int(rid.Slot))
		if err != nil {
			return err
		}
		old = append([]byte(nil), cur...)
		return sp.UpdatePadded(int(rid.Slot), rec)
	})
	if errors.Is(err, ErrPageFull) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// Update replaces the record at rid with exact length bookkeeping,
// relocating it when it no longer fits its page (the old slot is
// deleted and the new location returned). Like Delete, it is meant for
// callers whose locking excludes concurrent writers from the heap;
// rollback restores the old record via the page's free space.
func (h *HeapFile) Update(tx TxnContext, rid RID, rec []byte) (RID, error) {
	if len(rec) > maxRecordLen {
		return RID{}, fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(rec))
	}
	moved := false
	var old []byte
	err := h.mutatePage(tx, rid.Page, func() []byte {
		if moved {
			return UndoHeapDelete(rid, old)
		}
		return UndoHeapUpdate(rid, old)
	}, func(p *storage.Page) error {
		sp := Slotted(p)
		cur, err := sp.Get(int(rid.Slot))
		if err != nil {
			return err
		}
		old = append([]byte(nil), cur...)
		err = sp.Update(int(rid.Slot), rec)
		if errors.Is(err, ErrPageFull) {
			moved = true
			return sp.Delete(int(rid.Slot))
		}
		return err
	})
	if err != nil {
		return RID{}, err
	}
	if !moved {
		return rid, nil
	}
	h.NoteFree(rid.Page)
	return h.Insert(tx, rec)
}

// Scan iterates all records in chain order, each page visited under a
// shared latch. The record slice passed to fn aliases the latched page;
// fn must copy it to retain it past the callback.
func (h *HeapFile) Scan(fn func(rid RID, rec []byte) error) error {
	first, err := h.fm.FirstPage(h.name)
	if err != nil {
		return err
	}
	for pid := first; pid != storage.InvalidPageID; {
		f, err := h.pool.PinLatched(pid, false)
		if err != nil {
			return err
		}
		page := f.Page()
		sp := Slotted(page)
		next := page.Next()
		err = sp.Records(func(slot int, rec []byte) error {
			return fn(RID{Page: pid, Slot: uint16(slot)}, rec)
		})
		if uerr := h.pool.UnpinLatched(pid, false, false); uerr != nil && err == nil {
			err = uerr
		}
		if err != nil {
			return err
		}
		pid = next
	}
	return nil
}

// Count returns the number of live records (full scan).
func (h *HeapFile) Count() (int, error) {
	n := 0
	err := h.Scan(func(RID, []byte) error { n++; return nil })
	return n, err
}

// Drop removes the heap file and its pages.
func (h *HeapFile) Drop() error {
	h.mu.Lock()
	h.freeHint = nil
	h.mu.Unlock()
	return h.fm.Drop(h.name)
}
