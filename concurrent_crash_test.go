package sbdms

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/storage"
)

// runConcurrentCrashWorkload drives workers over DISJOINT key stripes
// in parallel (so each worker can track its own committed state
// exactly) plus cross-stripe readers, against a device armed to crash
// mid-run. Only operations that reported success count as committed.
// The merged committed state is what recovery must reproduce — with
// transactions from many workers interleaved in the WAL, undone and
// committed work sharing pages.
func runConcurrentCrashWorkload(db *DB, workers, opsPer, keysPer int, fault *storage.FaultDevice) *crashState {
	states := make([]*crashState, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := &crashState{live: map[string]string{}, deleted: map[string]bool{}}
			states[w] = st
			rng := rand.New(rand.NewSource(int64(w + 1)))
			pad := strings.Repeat("y", 60)
			afterCrash := 0
			for i := 0; i < opsPer; i++ {
				if fault != nil && fault.Crashed() {
					afterCrash++
					if afterCrash > 10 {
						return
					}
				}
				k := fmt.Sprintf("w%02d-key-%03d", w, rng.Intn(keysPer))
				switch {
				case rng.Intn(10) < 6:
					v := fmt.Sprintf("val-%d-%d-%s", w, i, pad)
					if err := db.Put(k, []byte(v)); err == nil {
						st.live[k] = v
						delete(st.deleted, k)
					}
				case rng.Intn(2) == 0 && len(st.live) > 0:
					if _, ok := st.live[k]; ok {
						if err := db.DeleteKey(k); err == nil {
							delete(st.live, k)
							st.deleted[k] = true
						}
					}
				default:
					_, _ = db.Get(k) // cross-page read traffic
				}
			}
		}()
	}
	// Scanners force leaf-chain traversal concurrent with splits.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if fault != nil && fault.Crashed() {
				return
			}
			_, _ = db.ScanKeys("", 10_000)
		}
	}()
	wg.Wait()

	merged := &crashState{live: map[string]string{}, deleted: map[string]bool{}}
	for _, st := range states {
		for k, v := range st.live {
			merged.live[k] = v
		}
		for k := range st.deleted {
			merged.deleted[k] = true
		}
	}
	return merged
}

// TestKVCrashRecoveryConcurrentKill9: kill -9 while 8 goroutines are
// mid-flight. The WAL holds interleaved records of committed,
// uncommitted and rolled-back transactions from all of them; recovery
// must repeat history, logically undo the in-flight losers, and
// reproduce exactly the acknowledged state.
func TestKVCrashRecoveryConcurrentKill9(t *testing.T) {
	dataDev, logDev := storage.NewMemDevice(), storage.NewMemDevice()
	db := openStressDB(t, dataDev, logDev)
	st := runConcurrentCrashWorkload(db, 8, 250, 30, nil)
	if len(st.live) == 0 {
		t.Fatal("workload committed nothing")
	}
	abandon(db) // kill -9: nothing flushed, no SyncMeta, no Close
	verifyRecovered(t, dataDev, logDev, st)
}

// TestKVCrashRecoveryConcurrentMidWriteBack crashes the data device at
// several points while concurrent transactions are interleaving on
// shared pages; committed work before and astride the crash must
// survive, in-flight work must vanish.
func TestKVCrashRecoveryConcurrentMidWriteBack(t *testing.T) {
	for _, crashAfter := range []int{5, 25, 80} {
		t.Run(fmt.Sprintf("crashAfter=%d", crashAfter), func(t *testing.T) {
			inner, logDev := storage.NewMemDevice(), storage.NewMemDevice()
			fault := storage.NewFaultDevice(inner)
			db, err := Open(Options{
				Device:       fault,
				LogDevice:    logDev,
				Granularity:  Monolithic,
				BufferFrames: 32, // small pool: eviction write-back mid-run
			})
			if err != nil {
				t.Fatal(err)
			}
			fault.CrashAfterWrites(crashAfter, 0)
			st := runConcurrentCrashWorkload(db, 6, 300, 25, fault)
			abandon(db)
			verifyRecovered(t, inner, logDev, st)
		})
	}
}

// TestKVCrashRecoveryConcurrentTornWrite tears a page write mid-
// concurrent-load: recovery reconstructs the page from logged full
// images even though many transactions' diffs landed on it.
func TestKVCrashRecoveryConcurrentTornWrite(t *testing.T) {
	for _, crashAfter := range []int{8, 33} {
		t.Run(fmt.Sprintf("crashAfter=%d", crashAfter), func(t *testing.T) {
			inner, logDev := storage.NewMemDevice(), storage.NewMemDevice()
			fault := storage.NewFaultDevice(inner)
			db, err := Open(Options{
				Device:       fault,
				LogDevice:    logDev,
				Granularity:  Monolithic,
				BufferFrames: 32,
			})
			if err != nil {
				t.Fatal(err)
			}
			fault.CrashAfterWrites(crashAfter, storage.PageSize/2)
			st := runConcurrentCrashWorkload(db, 6, 300, 25, fault)
			abandon(db)
			verifyRecovered(t, inner, logDev, st)
		})
	}
}

// TestKVConcurrentLoadThenCleanClose: full concurrent mixed load, then
// the clean-shutdown persistence steps (index metadata sync + full
// flush, what DB.Close runs before closing the device), reopen: state
// and counts intact.
func TestKVConcurrentLoadThenCleanClose(t *testing.T) {
	dataDev, logDev := storage.NewMemDevice(), storage.NewMemDevice()
	db := openStressDB(t, dataDev, logDev)
	st := runConcurrentCrashWorkload(db, 6, 200, 20, nil)
	if err := db.kv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	abandon(db)
	verifyRecovered(t, dataDev, logDev, st)
}
