// Quickstart: open an SBDMS instance, run SQL through the Data Service
// layer, use the KV access service, and inspect the service registry —
// the minimal tour of the architecture.
package main

import (
	"context"
	"fmt"
	"log"

	sbdms "repro"
)

func main() {
	ctx := context.Background()

	// Open a database composed of services at the layered granularity
	// (KV service -> record service -> native storage stack).
	db, err := sbdms.Open(sbdms.Options{Granularity: sbdms.Layered})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close(ctx)

	// The architecture is visible: every capability is a registered
	// service with a contract.
	fmt.Println("== registered services ==")
	for _, reg := range db.Kernel().Registry().All() {
		fmt.Printf("  %-16s provides %s\n", reg.Name, reg.Interface)
	}

	// SQL through the Data Service.
	mustExec := func(q string) {
		if _, err := db.Exec(ctx, q); err != nil {
			log.Fatalf("%s: %v", q, err)
		}
	}
	mustExec("CREATE TABLE books (id INT NOT NULL, title TEXT, year INT)")
	mustExec("CREATE INDEX idx_year ON books (year)")
	mustExec(`INSERT INTO books VALUES
		(1, 'Component Database Systems', 2001),
		(2, 'Readings in Database Systems', 1988),
		(3, 'Software Architecture in Practice', 1998),
		(4, 'The Implementation of POSTGRES', 1990)`)

	res, err := db.Exec(ctx, "SELECT title, year FROM books WHERE year >= 1990 ORDER BY year")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== books since 1990 ==")
	for _, row := range res.Rows {
		fmt.Printf("  %-40s %d\n", row[0].Str, row[1].Int)
	}

	// Aggregation and views.
	mustExec("CREATE VIEW modern AS SELECT id, title FROM books WHERE year >= 1995")
	res, err = db.Exec(ctx, "SELECT COUNT(*) FROM modern")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmodern books: %d\n", res.Rows[0][0].Int)

	// The KV access service, reached through the same architecture.
	if err := db.Put("greeting", []byte("hello from SBDMS")); err != nil {
		log.Fatal(err)
	}
	v, err := db.Get("greeting")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kv: greeting = %q\n", v)

	// Buffer pool statistics via the monitoring surface.
	st := db.Pool().Stats()
	fmt.Printf("\nbuffer pool: hits=%d misses=%d hitRate=%.1f%% policy=%s\n",
		st.Hits, st.Misses, st.HitRate()*100, db.Pool().PolicyName())
}
