package buffer

import (
	"testing"

	"repro/internal/storage"
)

// memStore is a minimal PageStore for pool tests.
func memStore(t *testing.T) *storage.DiskManager {
	t.Helper()
	d, err := storage.OpenDisk(storage.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDirtyPageTableTracksRecLSN: the pool's dirty-page table reports
// each dirty page with the LSN of the first record that dirtied it, and
// drops entries once the page is flushed.
func TestDirtyPageTableTracksRecLSN(t *testing.T) {
	store := memStore(t)
	m := NewSharded(store, 16, 4, "lru")
	id, err := store.Allocate()
	if err != nil {
		t.Fatal(err)
	}

	if got := m.DirtyPages(); len(got) != 0 {
		t.Fatalf("fresh pool has dirty pages: %+v", got)
	}

	// Mutate-and-stamp like the access layer: one record per pin round.
	stamp := func(lsn uint64) {
		f, err := m.Pin(id)
		if err != nil {
			t.Fatal(err)
		}
		f.Page().Payload()[0]++
		f.Page().SetLSN(lsn)
		if err := m.Unpin(id, true); err != nil {
			t.Fatal(err)
		}
	}
	stamp(100)
	stamp(200) // recLSN must stay at the FIRST record of the episode

	dp := m.DirtyPages()
	if len(dp) != 1 || dp[0].ID != id {
		t.Fatalf("dirty pages = %+v", dp)
	}
	if dp[0].RecLSN != 100 {
		t.Fatalf("recLSN = %d, want 100 (first record since clean)", dp[0].RecLSN)
	}

	// Flushing the snapshot clears the entry...
	if err := m.FlushPages([]storage.PageID{id}); err != nil {
		t.Fatal(err)
	}
	if got := m.DirtyPages(); len(got) != 0 {
		t.Fatalf("dirty after FlushPages: %+v", got)
	}
	// ...and the next episode starts a fresh recLSN.
	stamp(300)
	dp = m.DirtyPages()
	if len(dp) != 1 || dp[0].RecLSN != 300 {
		t.Fatalf("second episode = %+v, want recLSN 300", dp)
	}
}

// TestDirtyPageTableUnloggedWrites: pages dirtied without a WAL stamp
// report recLSN 0, so checkpoints flush them without letting them drag
// the truncation horizon to zero.
func TestDirtyPageTableUnloggedWrites(t *testing.T) {
	store := memStore(t)
	m := NewSharded(store, 8, 2, "lru")
	id, err := store.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	f, err := m.Pin(id)
	if err != nil {
		t.Fatal(err)
	}
	f.Page().Payload()[0] = 0xAB // no LSN stamp
	if err := m.Unpin(id, true); err != nil {
		t.Fatal(err)
	}
	dp := m.DirtyPages()
	if len(dp) != 1 || dp[0].RecLSN != 0 {
		t.Fatalf("unlogged dirty page = %+v, want recLSN 0", dp)
	}
}

// TestShardStrideWholeCacheLines pins the false-sharing fix: shards are
// laid out contiguously at a stride that is a whole multiple of the
// cache line, so neighbouring stripes never share a line.
func TestShardStrideWholeCacheLines(t *testing.T) {
	if ShardStride()%cacheLine != 0 {
		t.Fatalf("shard stride %d is not cache-line aligned", ShardStride())
	}
	if ShardStride() < cacheLine {
		t.Fatalf("shard stride %d below one cache line", ShardStride())
	}
}
