package exec

import (
	"context"
	"errors"
	"io"
	"testing"

	"repro/internal/access"
	"repro/internal/catalog"
)

func TestMergeJoinSkipsNullKeysAndDuplicates(t *testing.T) {
	ctx := context.Background()
	left := &Values{Cols: []string{"l.k"}, Rows: []access.Row{
		{access.NewInt(1)}, {access.Null()}, {access.NewInt(2)}, {access.NewInt(2)},
	}}
	right := &Values{Cols: []string{"r.k"}, Rows: []access.Row{
		{access.NewInt(2)}, {access.NewInt(2)}, {access.Null()}, {access.NewInt(3)},
	}}
	j := &MergeJoin{
		L:    &Sort{In: left, Keys: []SortKey{{E: Col{"l.k"}}}},
		R:    &Sort{In: right, Keys: []SortKey{{E: Col{"r.k"}}}},
		LKey: Col{"l.k"}, RKey: Col{"r.k"},
	}
	rows, err := Collect(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	// 2x2 duplicate join on key 2; NULLs never join.
	if len(rows) != 4 {
		t.Fatalf("rows = %v", rows)
	}
	for _, r := range rows {
		if r[0].Int != 2 || r[1].Int != 2 {
			t.Fatalf("bad pair %v", r)
		}
	}
}

func TestMergeJoinDisjointInputs(t *testing.T) {
	ctx := context.Background()
	j := &MergeJoin{
		L:    &Values{Cols: []string{"a"}, Rows: []access.Row{{access.NewInt(1)}}},
		R:    &Values{Cols: []string{"b"}, Rows: []access.Row{{access.NewInt(9)}}},
		LKey: Col{"a"}, RKey: Col{"b"},
	}
	rows, err := Collect(ctx, j)
	if err != nil || len(rows) != 0 {
		t.Fatalf("rows = %v, %v", rows, err)
	}
}

func TestHashJoinNullKeysNeverJoin(t *testing.T) {
	ctx := context.Background()
	j := &HashJoin{
		L:    &Values{Cols: []string{"a"}, Rows: []access.Row{{access.Null()}, {access.NewInt(1)}}},
		R:    &Values{Cols: []string{"b"}, Rows: []access.Row{{access.Null()}, {access.NewInt(1)}}},
		LKey: Col{"a"}, RKey: Col{"b"},
	}
	rows, err := Collect(ctx, j)
	if err != nil || len(rows) != 1 {
		t.Fatalf("rows = %v, %v", rows, err)
	}
}

func TestLimitEdgeCases(t *testing.T) {
	ctx := context.Background()
	mk := func() Operator {
		return &Values{Cols: []string{"x"}, Rows: []access.Row{
			{access.NewInt(0)}, {access.NewInt(1)}, {access.NewInt(2)},
		}}
	}
	// N = 0 yields nothing.
	rows, err := Collect(ctx, &Limit{In: mk(), N: 0})
	if err != nil || len(rows) != 0 {
		t.Fatalf("N=0: %v, %v", rows, err)
	}
	// Negative N = unlimited with offset.
	rows, err = Collect(ctx, &Limit{In: mk(), N: -1, Offset: 1})
	if err != nil || len(rows) != 2 || rows[0][0].Int != 1 {
		t.Fatalf("offset only: %v, %v", rows, err)
	}
	// Offset beyond input.
	rows, err = Collect(ctx, &Limit{In: mk(), N: 5, Offset: 10})
	if err != nil || len(rows) != 0 {
		t.Fatalf("big offset: %v, %v", rows, err)
	}
}

func TestFilterPropagatesEvalErrors(t *testing.T) {
	ctx := context.Background()
	f := &Filter{
		In:   &Values{Cols: []string{"x"}, Rows: []access.Row{{access.NewInt(1)}}},
		Pred: Cmp{Op: OpEq, L: Col{"nosuch"}, R: Lit{access.NewInt(1)}},
	}
	if _, err := Collect(ctx, f); !errors.Is(err, ErrUnknownColumn) {
		t.Fatalf("err = %v", err)
	}
}

func TestSortPropagatesCompareErrors(t *testing.T) {
	ctx := context.Background()
	s := &Sort{
		In: &Values{Cols: []string{"x"}, Rows: []access.Row{
			{access.NewInt(1)}, {access.NewString("s")},
		}},
		Keys: []SortKey{{E: Col{"x"}}},
	}
	if _, err := Collect(ctx, s); err == nil {
		t.Fatal("mixed-type sort must error")
	}
}

func TestIndexScanContextCancel(t *testing.T) {
	// ctx cancellation propagates out of Open (scan path).
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	scan := NewSeqScan(&catalog.Table{
		Name:    "t",
		Columns: []catalog.Column{{Name: "a", Type: access.TypeInt}},
	}, newMemSource([]access.Row{{access.NewInt(1)}}), "")
	if err := scan.Open(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestCollectClosesOnError(t *testing.T) {
	ctx := context.Background()
	op := &failingOp{}
	if _, err := Collect(ctx, op); err == nil {
		t.Fatal("want error")
	}
	if !op.closed {
		t.Fatal("Collect must close the operator")
	}
}

type failingOp struct{ closed bool }

func (f *failingOp) Open(ctx context.Context) error { return nil }
func (f *failingOp) Next(ctx context.Context) (access.Row, error) {
	return nil, errors.New("boom")
}
func (f *failingOp) Close() error      { f.closed = true; return nil }
func (f *failingOp) Columns() []string { return nil }

func TestDistinctOnFullRows(t *testing.T) {
	ctx := context.Background()
	d := &Distinct{In: &Values{Cols: []string{"a", "b"}, Rows: []access.Row{
		{access.NewInt(1), access.NewString("x")},
		{access.NewInt(1), access.NewString("x")},
		{access.NewInt(1), access.NewString("y")},
	}}}
	rows, err := Collect(ctx, d)
	if err != nil || len(rows) != 2 {
		t.Fatalf("rows = %v, %v", rows, err)
	}
}

func TestAggregateGroupsWithNullKeys(t *testing.T) {
	ctx := context.Background()
	agg := &HashAggregate{
		In: &Values{Cols: []string{"g", "v"}, Rows: []access.Row{
			{access.Null(), access.NewInt(1)},
			{access.Null(), access.NewInt(2)},
			{access.NewInt(1), access.NewInt(3)},
		}},
		GroupBy: []Expr{Col{"g"}},
		GroupAs: []string{"g"},
		Aggs:    []AggSpec{{Func: AggSum, Arg: Col{"v"}, As: "s"}},
	}
	rows, err := Collect(ctx, agg)
	if err != nil {
		t.Fatal(err)
	}
	// NULL forms its own group.
	if len(rows) != 2 {
		t.Fatalf("groups = %v", rows)
	}
	var nullSum int64
	for _, r := range rows {
		if r[0].IsNull() {
			nullSum = r[1].Int
		}
	}
	if nullSum != 3 {
		t.Fatalf("null group sum = %d", nullSum)
	}
}

func TestNestedLoopJoinEOFAfterDrain(t *testing.T) {
	ctx := context.Background()
	j := &NestedLoopJoin{
		L: &Values{Cols: []string{"a"}, Rows: []access.Row{{access.NewInt(1)}}},
		R: &Values{Cols: []string{"b"}, Rows: []access.Row{{access.NewInt(2)}}},
	}
	if err := j.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Next(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Next(ctx); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}
