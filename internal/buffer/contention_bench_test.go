package buffer

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/storage"
)

// BenchmarkPinUnpinContended drives parallel Pin/Unpin across every
// core against pools of 1, 4 and 8 lock stripes, reporting the
// shard-stripe layout (stride bytes per shard, cache lines per shard)
// alongside throughput so multi-core runs can correlate the
// false-sharing padding with the observed scaling. On the 1-core CI
// container the sharded pools mostly measure overhead; the interesting
// numbers come from real multi-core hardware (ROADMAP item).
func BenchmarkPinUnpinContended(b *testing.B) {
	for _, nshards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d/procs=%d", nshards, runtime.GOMAXPROCS(0)), func(b *testing.B) {
			store, err := storage.OpenDisk(storage.NewMemDevice())
			if err != nil {
				b.Fatal(err)
			}
			const npages = 256
			ids := make([]storage.PageID, npages)
			for i := range ids {
				id, err := store.Allocate()
				if err != nil {
					b.Fatal(err)
				}
				ids[i] = id
			}
			m := NewSharded(store, npages, nshards, "lru")
			// Warm the pool so the loop measures contention, not I/O.
			for _, id := range ids {
				if _, err := m.Pin(id); err != nil {
					b.Fatal(err)
				}
				if err := m.Unpin(id, false); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					id := ids[i%npages]
					i++
					if _, err := m.Pin(id); err != nil {
						b.Error(err)
						return
					}
					if err := m.Unpin(id, false); err != nil {
						b.Error(err)
						return
					}
				}
			})
			// Record the stripe layout in the benchmark output, so runs
			// on different hardware are comparable.
			b.ReportMetric(float64(ShardStride()), "stride-B")
			b.ReportMetric(float64(ShardStride()/cacheLine), "lines/shard")
			b.ReportMetric(float64(m.NumShards()), "shards")
		})
	}
}
