GO ?= go

# Concurrency-heavy packages that must stay clean under the race detector.
RACE_PKGS = ./internal/buffer/... ./internal/core/... ./internal/txn/... ./internal/wal/...

.PHONY: build test race bench vet all

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -run xxx -bench 'BufferContention|WALCommit' -benchtime 0.5s .

vet:
	$(GO) vet ./...
