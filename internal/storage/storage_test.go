package storage

import (
	"errors"
	"io"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestMemDeviceReadWrite(t *testing.T) {
	d := NewMemDevice()
	if _, err := d.WriteAt([]byte("hello"), 10); err != nil {
		t.Fatal(err)
	}
	size, err := d.Size()
	if err != nil || size != 15 {
		t.Fatalf("size = %d, %v", size, err)
	}
	buf := make([]byte, 5)
	if _, err := d.ReadAt(buf, 10); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("read %q", buf)
	}
	// Read past end yields EOF.
	if _, err := d.ReadAt(buf, 100); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v", err)
	}
	// Negative offsets rejected.
	if _, err := d.ReadAt(buf, -1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v", err)
	}
	if _, err := d.WriteAt(buf, -1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v", err)
	}
	if err := d.Truncate(5); err != nil {
		t.Fatal(err)
	}
	if size, _ := d.Size(); size != 5 {
		t.Fatalf("size after truncate = %d", size)
	}
	if err := d.Truncate(20); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadAt(buf, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: %v", err)
	}
}

func TestMemDeviceFailWrites(t *testing.T) {
	d := NewMemDevice()
	d.SetFailWrites(true)
	if _, err := d.WriteAt([]byte("x"), 0); err == nil {
		t.Fatal("want injected failure")
	}
	d.SetFailWrites(false)
	if _, err := d.WriteAt([]byte("x"), 0); err != nil {
		t.Fatal(err)
	}
}

func TestFileDevice(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.db")
	d, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteAt([]byte("persisted"), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal("double close must be fine")
	}
	d2, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	buf := make([]byte, 9)
	if _, err := d2.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "persisted" {
		t.Fatalf("read %q", buf)
	}
}

func TestPageHeaderAccessors(t *testing.T) {
	p := NewPage(7, PageTypeHeap)
	if p.Type() != PageTypeHeap || p.ID != 7 {
		t.Fatal("type/id")
	}
	p.SetFlags(0xAB)
	p.SetLSN(123456789)
	p.SetNext(42)
	p.SetPrev(41)
	if p.Flags() != 0xAB || p.LSN() != 123456789 || p.Next() != 42 || p.Prev() != 41 {
		t.Fatal("header round trip failed")
	}
	if len(p.Payload()) != PayloadSize {
		t.Fatalf("payload size = %d", len(p.Payload()))
	}
	p.Payload()[0] = 0xFF
	p.UpdateChecksum()
	if !p.VerifyChecksum() {
		t.Fatal("checksum must verify after update")
	}
	p.Payload()[1] = 0xEE
	if p.VerifyChecksum() {
		t.Fatal("checksum must fail after mutation")
	}
}

func TestWrapPagePanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	WrapPage(1, make([]byte, 100))
}

func TestDiskAllocateReadWrite(t *testing.T) {
	d, err := OpenDisk(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	id, err := d.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Fatalf("first page id = %d", id)
	}
	p := NewPage(id, PageTypeHeap)
	copy(p.Payload(), "payload")
	if err := d.WritePage(id, p.Data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	if err := d.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	got := WrapPage(id, buf)
	if got.Type() != PageTypeHeap || string(got.Payload()[:7]) != "payload" {
		t.Fatal("page content lost")
	}
	if d.NumPages() != 1 {
		t.Fatalf("NumPages = %d", d.NumPages())
	}
}

func TestDiskBoundsAndSizes(t *testing.T) {
	d, _ := OpenDisk(NewMemDevice())
	id, _ := d.Allocate()
	if err := d.ReadPage(id, make([]byte, 10)); err == nil {
		t.Fatal("short buffer must fail")
	}
	if err := d.WritePage(id, make([]byte, 10)); err == nil {
		t.Fatal("short buffer must fail")
	}
	if err := d.ReadPage(99, make([]byte, PageSize)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v", err)
	}
	if err := d.ReadPage(InvalidPageID, make([]byte, PageSize)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("meta page must be unreachable: %v", err)
	}
}

func TestDiskFreeListReuse(t *testing.T) {
	d, _ := OpenDisk(NewMemDevice())
	a, _ := d.Allocate()
	b, _ := d.Allocate()
	c, _ := d.Allocate()
	_ = c
	if err := d.Deallocate(b); err != nil {
		t.Fatal(err)
	}
	if err := d.Deallocate(a); err != nil {
		t.Fatal(err)
	}
	free, err := d.FreePages()
	if err != nil || free != 2 {
		t.Fatalf("free = %d, %v", free, err)
	}
	// LIFO reuse: a then b.
	r1, _ := d.Allocate()
	r2, _ := d.Allocate()
	if r1 != a || r2 != b {
		t.Fatalf("reuse = %d,%d want %d,%d", r1, r2, a, b)
	}
	if d.NumPages() != 3 {
		t.Fatalf("NumPages = %d (ids stay dense)", d.NumPages())
	}
	// Reused pages come back zeroed.
	buf := make([]byte, PageSize)
	if err := d.ReadPage(r1, buf); err != nil {
		t.Fatal(err)
	}
	for _, bt := range WrapPage(r1, buf).Payload() {
		if bt != 0 {
			t.Fatal("reallocated page not zeroed")
		}
	}
}

func TestDiskPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.db")
	dev, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	d, err := OpenDisk(dev)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := d.Allocate()
	b, _ := d.Allocate()
	p := NewPage(a, PageTypeHeap)
	copy(p.Payload(), "durable")
	if err := d.WritePage(a, p.Data); err != nil {
		t.Fatal(err)
	}
	if err := d.Deallocate(b); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	dev2, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDisk(dev2)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.NumPages() != 2 {
		t.Fatalf("NumPages after reopen = %d", d2.NumPages())
	}
	buf := make([]byte, PageSize)
	if err := d2.ReadPage(a, buf); err != nil {
		t.Fatal(err)
	}
	if string(WrapPage(a, buf).Payload()[:7]) != "durable" {
		t.Fatal("content lost across reopen")
	}
	// Free list survived: b is reused first.
	if id, _ := d2.Allocate(); id != b {
		t.Fatalf("reuse after reopen = %d, want %d", id, b)
	}
}

func TestDiskChecksumDetection(t *testing.T) {
	dev := NewMemDevice()
	d, _ := OpenDisk(dev)
	id, _ := d.Allocate()
	p := NewPage(id, PageTypeHeap)
	copy(p.Payload(), "good")
	if err := d.WritePage(id, p.Data); err != nil {
		t.Fatal(err)
	}
	// Corrupt a byte behind the disk manager's back.
	if _, err := dev.WriteAt([]byte{0xFF}, int64(id)*PageSize+HeaderSize+1); err != nil {
		t.Fatal(err)
	}
	err := d.ReadPage(id, make([]byte, PageSize))
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
	// With verification off the read succeeds.
	d2, _ := OpenDisk(dev, WithChecksumVerify(false))
	if err := d2.ReadPage(id, make([]byte, PageSize)); err != nil {
		t.Fatal(err)
	}
}

func TestOpenDiskRejectsGarbage(t *testing.T) {
	dev := NewMemDevice()
	if _, err := dev.WriteAt(make([]byte, PageSize), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.WriteAt([]byte("garbage!"), HeaderSize); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(dev); !errors.Is(err, ErrBadMeta) {
		t.Fatal("garbage device must be rejected")
	}
}

// Property: data written to any allocated page reads back identically,
// regardless of interleaved allocations.
func TestDiskReadBackQuick(t *testing.T) {
	d, _ := OpenDisk(NewMemDevice())
	f := func(chunks [][]byte) bool {
		ids := make([]PageID, len(chunks))
		for i, c := range chunks {
			id, err := d.Allocate()
			if err != nil {
				return false
			}
			ids[i] = id
			p := NewPage(id, PageTypeRaw)
			copy(p.Payload(), c)
			if err := d.WritePage(id, p.Data); err != nil {
				return false
			}
		}
		buf := make([]byte, PageSize)
		for i, c := range chunks {
			if err := d.ReadPage(ids[i], buf); err != nil {
				return false
			}
			got := WrapPage(ids[i], buf).Payload()
			n := min(len(c), PayloadSize)
			for j := 0; j < n; j++ {
				if got[j] != c[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
