package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// File manager errors.
var (
	// ErrFileExists is returned when creating a file that already
	// exists.
	ErrFileExists = errors.New("storage: file exists")
	// ErrFileNotFound is returned for operations on unknown files.
	ErrFileNotFound = errors.New("storage: file not found")
	// ErrBadDirectory is returned when the on-disk directory is
	// corrupt.
	ErrBadDirectory = errors.New("storage: corrupt file directory")
)

// fileEntry is the directory record of one named file.
type fileEntry struct {
	name      string
	firstPage PageID
	lastPage  PageID
	pageCount uint64
}

// PageTxn is one system transaction logging physical page mutations on
// behalf of the file manager. internal/txn provides the implementation;
// the indirection keeps this package free of a WAL dependency.
type PageTxn interface {
	// Update logs the page transition before -> after (both full page
	// images); the logger decides between a minimal diff and a full
	// page image (full-page-writes after a checkpoint fence). logged
	// reports whether a record was appended — identical images log
	// nothing — and lsn is the record's LSN to stamp on the page.
	//
	// Physical (before-image) undo of these records is only sound for
	// pages this file manager owns exclusively (directory chain, pages
	// of dropped files): concurrent latched writers interleave records
	// on shared pages, and restoring a stale image would wipe their
	// committed bytes.
	Update(id PageID, before, after []byte) (lsn uint64, logged bool, err error)
	// UpdateRedoOnly is Update for records that must never be undone —
	// neither by rollback nor by crash recovery of an in-flight system
	// transaction. Used for mutations of SHARED pages whose effect is
	// harmless if kept on abort (a heap tail's chain link to a fresh,
	// otherwise-unreachable page): the page latch is released before
	// the lazy commit record enters the log, so a concurrent user
	// record can interleave and physical undo would corrupt it.
	UpdateRedoOnly(id PageID, before, after []byte) (lsn uint64, logged bool, err error)
	// Commit finishes the transaction. The commit record need not be
	// forced: WAL ordering makes it durable with the next forced flush.
	Commit() error
	// Abort rolls the logged mutations back.
	Abort() error
}

// PageLogger hands out system transactions and forces the log. A file
// manager with a logger attached WAL-logs every directory and
// page-allocation mutation, so crash recovery can restore a consistent
// directory.
type PageLogger interface {
	Begin() (PageTxn, error)
	// Flush forces everything logged so far to stable storage.
	Flush() error
}

// FileManager organises pages of a PageStore into named doubly-linked
// page chains ("files"), with a directory persisted in a dedicated page
// chain rooted at the first page of the store. It corresponds to the
// File Manager service of Figures 5-7 and underlies heap files and the
// catalog.
type FileManager struct {
	mu      sync.Mutex
	store   PageStore
	files   map[string]*fileEntry
	dirRoot PageID
	dirLen  int // number of directory chain pages currently in use
	logger  PageLogger
}

// DirectoryRootPage is the fixed page id of the directory chain root;
// it is the first page allocated on a fresh store.
const DirectoryRootPage PageID = 1

// OpenFileManager opens (or initialises) a file manager over a page
// store. On a fresh store it claims the first page for its directory.
func OpenFileManager(store PageStore) (*FileManager, error) {
	fm := &FileManager{store: store, files: make(map[string]*fileEntry)}
	if store.NumPages() == 0 {
		id, err := store.Allocate()
		if err != nil {
			return nil, err
		}
		if id != DirectoryRootPage {
			return nil, fmt.Errorf("%w: directory root allocated as page %d", ErrBadDirectory, id)
		}
		fm.dirRoot = id
		fm.dirLen = 1
		if _, err := fm.persistLocked(nil); err != nil {
			return nil, err
		}
		return fm, nil
	}
	fm.dirRoot = DirectoryRootPage
	if err := fm.loadLocked(); err != nil {
		return nil, err
	}
	return fm, nil
}

// encode layout: u32 blobLen | blob, where blob is
// u32 fileCount { u16 nameLen | name | u64 first | u64 last | u64 count }*
func (fm *FileManager) encodeLocked() []byte {
	names := make([]string, 0, len(fm.files))
	for n := range fm.files {
		names = append(names, n)
	}
	sort.Strings(names)
	blob := make([]byte, 4)
	binary.LittleEndian.PutUint32(blob, uint32(len(names)))
	for _, n := range names {
		e := fm.files[n]
		var rec [2]byte
		binary.LittleEndian.PutUint16(rec[:], uint16(len(n)))
		blob = append(blob, rec[:]...)
		blob = append(blob, n...)
		var nums [24]byte
		binary.LittleEndian.PutUint64(nums[0:], uint64(e.firstPage))
		binary.LittleEndian.PutUint64(nums[8:], uint64(e.lastPage))
		binary.LittleEndian.PutUint64(nums[16:], e.pageCount)
		blob = append(blob, nums[:]...)
	}
	out := make([]byte, 4+len(blob))
	binary.LittleEndian.PutUint32(out, uint32(len(blob)))
	copy(out[4:], blob)
	return out
}

func (fm *FileManager) decodeLocked(raw []byte) error {
	if len(raw) < 4 {
		return fmt.Errorf("%w: truncated header", ErrBadDirectory)
	}
	blobLen := binary.LittleEndian.Uint32(raw)
	if int(blobLen) > len(raw)-4 {
		return fmt.Errorf("%w: blob length %d exceeds data", ErrBadDirectory, blobLen)
	}
	blob := raw[4 : 4+blobLen]
	if len(blob) < 4 {
		return fmt.Errorf("%w: truncated blob", ErrBadDirectory)
	}
	count := binary.LittleEndian.Uint32(blob)
	blob = blob[4:]
	files := make(map[string]*fileEntry, count)
	for i := uint32(0); i < count; i++ {
		if len(blob) < 2 {
			return fmt.Errorf("%w: truncated entry", ErrBadDirectory)
		}
		nameLen := int(binary.LittleEndian.Uint16(blob))
		blob = blob[2:]
		if len(blob) < nameLen+24 {
			return fmt.Errorf("%w: truncated entry body", ErrBadDirectory)
		}
		name := string(blob[:nameLen])
		blob = blob[nameLen:]
		e := &fileEntry{
			name:      name,
			firstPage: PageID(binary.LittleEndian.Uint64(blob[0:])),
			lastPage:  PageID(binary.LittleEndian.Uint64(blob[8:])),
			pageCount: binary.LittleEndian.Uint64(blob[16:]),
		}
		blob = blob[24:]
		files[name] = e
	}
	fm.files = files
	return nil
}

// SetLogger attaches a system-transaction logger; subsequent directory
// and allocation mutations are WAL-logged through it.
func (fm *FileManager) SetLogger(l PageLogger) {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	fm.logger = l
}

// beginSysLocked starts a system transaction covering one directory
// mutation (nil when no logger is attached).
func (fm *FileManager) beginSysLocked() (PageTxn, error) {
	if fm.logger == nil {
		return nil, nil
	}
	return fm.logger.Begin()
}

// finishSysLocked commits (or, on error, aborts) a system transaction
// and then frees the given page chains. Freeing happens strictly after
// commit, and behind a log force, so that a crash can never leave a
// freed page still referenced by the recovered directory.
func (fm *FileManager) finishSysLocked(tx PageTxn, opErr error, chains ...PageID) error {
	if opErr != nil {
		if tx != nil {
			if aerr := tx.Abort(); aerr != nil {
				return fmt.Errorf("%w (abort: %v)", opErr, aerr)
			}
		}
		return opErr
	}
	if tx != nil {
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	needFlush := fm.logger != nil
	for _, c := range chains {
		if c == InvalidPageID {
			continue
		}
		if needFlush {
			if err := fm.logger.Flush(); err != nil {
				return err
			}
			needFlush = false
		}
		if err := fm.freeChainLocked(c); err != nil {
			return err
		}
	}
	return nil
}

// writeLogged writes new page content, logging the transition under tx
// (the WAL decides diff vs full image per the full-page-write fence).
// Only for pages the file manager owns exclusively (directory chain,
// pages of files being dropped): the write bypasses page latches.
func (fm *FileManager) writeLogged(tx PageTxn, id PageID, old, data []byte) error {
	if tx != nil {
		lsn, logged, err := tx.Update(id, old, data)
		if err != nil {
			return err
		}
		if logged {
			WrapPage(id, data).SetLSN(lsn)
		}
	}
	return fm.store.WritePage(id, data)
}

// updateLogged mutates one page in place through the store's
// PageUpdater — atomically with respect to the buffer pool's page
// latches — and logs the transition under tx. Required for pages that
// latching access methods touch concurrently (a heap file's tail page
// whose chain link the append updates while inserters fill its slots).
// redoOnly marks the record as never-undone; it MUST be set for shared
// pages, where an undo's before image could wipe interleaved records.
func (fm *FileManager) updateLogged(tx PageTxn, id PageID, redoOnly bool, fn func(p *Page) error) error {
	return UpdatePageOn(fm.store, id, func(p *Page) error {
		var old []byte
		if tx != nil {
			old = append([]byte(nil), p.Data...)
		}
		if err := fn(p); err != nil {
			return err
		}
		if tx != nil {
			up := tx.Update
			if redoOnly {
				up = tx.UpdateRedoOnly
			}
			lsn, logged, err := up(id, old, p.Data)
			if err != nil {
				return err
			}
			if logged {
				p.SetLSN(lsn)
			}
		}
		return nil
	})
}

// persistLocked writes the directory blob across the directory chain,
// growing or shrinking it as needed, logging every page image under tx.
// It returns the surplus chain tail (InvalidPageID if none); the caller
// frees it after the transaction commits.
func (fm *FileManager) persistLocked(tx PageTxn) (PageID, error) {
	raw := fm.encodeLocked()
	needPages := (len(raw) + PayloadSize - 1) / PayloadSize
	if needPages == 0 {
		needPages = 1
	}
	// Walk existing chain, writing chunks; extend or unlink as needed.
	buf := make([]byte, PageSize)
	old := make([]byte, PageSize)
	surplus := InvalidPageID
	cur := fm.dirRoot
	prev := InvalidPageID
	written := 0
	for i := 0; i < needPages; i++ {
		if cur == InvalidPageID {
			id, err := fm.store.Allocate()
			if err != nil {
				return InvalidPageID, err
			}
			// Link from prev.
			if err := fm.store.ReadPage(prev, buf); err != nil {
				return InvalidPageID, err
			}
			copy(old, buf)
			WrapPage(prev, buf).SetNext(id)
			if err := fm.writeLogged(tx, prev, old, buf); err != nil {
				return InvalidPageID, err
			}
			cur = id
			// Fresh page buffer.
			for j := range buf {
				buf[j] = 0
			}
			for j := range old {
				old[j] = 0
			}
			WrapPage(cur, buf).SetPrev(prev)
		} else {
			if err := fm.store.ReadPage(cur, buf); err != nil {
				return InvalidPageID, err
			}
			copy(old, buf)
		}
		p := WrapPage(cur, buf)
		p.SetType(PageTypeDirectory)
		chunk := raw[written:min(written+PayloadSize, len(raw))]
		payload := p.Payload()
		copy(payload, chunk)
		for j := len(chunk); j < PayloadSize; j++ {
			payload[j] = 0
		}
		written += len(chunk)
		next := p.Next()
		if i == needPages-1 && next != InvalidPageID {
			p.SetNext(InvalidPageID)
			surplus = next
		}
		if err := fm.writeLogged(tx, cur, old, buf); err != nil {
			return InvalidPageID, err
		}
		prev = cur
		cur = next
	}
	fm.dirLen = needPages
	return surplus, nil
}

// freeChainLocked returns a page chain to the store. With a logger
// attached, each page's transition to the free type is first WAL-logged
// under a fresh lazy system transaction: should a crash lose the
// allocator's eager free-list writes, recovery replays the free
// markings and the post-crash free-list rebuild relinks the pages —
// freed pages are reclaimed instead of leaked.
func (fm *FileManager) freeChainLocked(from PageID) error {
	tx, err := fm.beginSysLocked()
	if err != nil {
		return err
	}
	buf := make([]byte, PageSize)
	var ids []PageID
	for id := from; id != InvalidPageID; {
		if err := fm.store.ReadPage(id, buf); err != nil {
			if tx != nil {
				_ = tx.Abort()
			}
			return err
		}
		next := WrapPage(id, buf).Next()
		if tx != nil {
			freeImg := make([]byte, PageSize) // zeroed PageTypeFree image
			if err := fm.writeLogged(tx, id, buf, freeImg); err != nil {
				_ = tx.Abort()
				return err
			}
		}
		ids = append(ids, id)
		id = next
	}
	if tx != nil {
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	for _, id := range ids {
		if err := fm.store.Deallocate(id); err != nil {
			return err
		}
	}
	return nil
}

// FreePagesLogged returns a set of pages (not a chain — e.g. the pages
// of a dropped B+tree) to the store through the WAL-logged free path:
// each page's transition to the free type is logged under one lazy
// system transaction, the log is forced, and only then are the pages
// handed to the allocator. A crash anywhere in between either keeps the
// pages allocated (leaked at worst, reclaimed by the free-list rebuild
// once the markings are durable) or replays the free markings — never
// double-allocates.
func (fm *FileManager) FreePagesLogged(ids []PageID) error {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	tx, err := fm.beginSysLocked()
	if err != nil {
		return err
	}
	for _, id := range ids {
		if tx == nil {
			break
		}
		err := fm.updateLogged(tx, id, false, func(p *Page) error {
			for i := range p.Data {
				p.Data[i] = 0
			}
			return nil
		})
		if err != nil {
			_ = tx.Abort()
			return err
		}
	}
	if tx != nil {
		if err := tx.Commit(); err != nil {
			return err
		}
		if err := fm.logger.Flush(); err != nil {
			return err
		}
	}
	for _, id := range ids {
		if err := fm.store.Deallocate(id); err != nil {
			return err
		}
	}
	return nil
}

// loadLocked reads the directory chain and decodes the blob.
func (fm *FileManager) loadLocked() error {
	var raw []byte
	buf := make([]byte, PageSize)
	n := 0
	for id := fm.dirRoot; id != InvalidPageID; {
		if err := fm.store.ReadPage(id, buf); err != nil {
			return err
		}
		p := WrapPage(id, buf)
		if p.Type() != PageTypeDirectory {
			return fmt.Errorf("%w: page %d has type %d", ErrBadDirectory, id, p.Type())
		}
		raw = append(raw, p.Payload()...)
		id = p.Next()
		n++
		if n > 1<<20 {
			return fmt.Errorf("%w: directory chain cycle", ErrBadDirectory)
		}
	}
	fm.dirLen = n
	return fm.decodeLocked(raw)
}

// Create registers a new empty file.
func (fm *FileManager) Create(name string) error {
	if name == "" {
		return fmt.Errorf("storage: empty file name")
	}
	fm.mu.Lock()
	defer fm.mu.Unlock()
	if _, ok := fm.files[name]; ok {
		return fmt.Errorf("%w: %s", ErrFileExists, name)
	}
	tx, err := fm.beginSysLocked()
	if err != nil {
		return err
	}
	fm.files[name] = &fileEntry{name: name}
	surplus, err := fm.persistLocked(tx)
	if err != nil {
		delete(fm.files, name)
	}
	return fm.finishSysLocked(tx, err, surplus)
}

// Drop removes a file and returns all its pages to the store.
func (fm *FileManager) Drop(name string) error {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	e, ok := fm.files[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrFileNotFound, name)
	}
	tx, err := fm.beginSysLocked()
	if err != nil {
		return err
	}
	delete(fm.files, name)
	surplus, err := fm.persistLocked(tx)
	if err != nil {
		fm.files[name] = e
	}
	return fm.finishSysLocked(tx, err, surplus, e.firstPage)
}

// Exists reports whether the file exists.
func (fm *FileManager) Exists(name string) bool {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	_, ok := fm.files[name]
	return ok
}

// List returns the sorted names of all files.
func (fm *FileManager) List() []string {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	out := make([]string, 0, len(fm.files))
	for n := range fm.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// FirstPage returns the first page of the file's chain
// (InvalidPageID for an empty file).
func (fm *FileManager) FirstPage(name string) (PageID, error) {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	e, ok := fm.files[name]
	if !ok {
		return InvalidPageID, fmt.Errorf("%w: %s", ErrFileNotFound, name)
	}
	return e.firstPage, nil
}

// LastPage returns the last page of the file's chain.
func (fm *FileManager) LastPage(name string) (PageID, error) {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	e, ok := fm.files[name]
	if !ok {
		return InvalidPageID, fmt.Errorf("%w: %s", ErrFileNotFound, name)
	}
	return e.lastPage, nil
}

// PageCount returns the number of pages in the file.
func (fm *FileManager) PageCount(name string) (uint64, error) {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	e, ok := fm.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrFileNotFound, name)
	}
	return e.pageCount, nil
}

// AppendPage allocates a fresh page, links it at the end of the file's
// chain, and returns its id. The page is typed t. With a logger
// attached the chain links and directory update are WAL-logged under
// one system transaction, so a crash either keeps the whole appended
// page or none of it.
func (fm *FileManager) AppendPage(name string, t PageType) (PageID, error) {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	e, ok := fm.files[name]
	if !ok {
		return InvalidPageID, fmt.Errorf("%w: %s", ErrFileNotFound, name)
	}
	tx, err := fm.beginSysLocked()
	if err != nil {
		return InvalidPageID, err
	}
	saved := *e
	id, err := fm.appendPageLocked(tx, e, t)
	if err != nil {
		*e = saved
	}
	if ferr := fm.finishSysLocked(tx, err, InvalidPageID); ferr != nil {
		return InvalidPageID, ferr
	}
	return id, nil
}

func (fm *FileManager) appendPageLocked(tx PageTxn, e *fileEntry, t PageType) (PageID, error) {
	id, err := fm.store.Allocate()
	if err != nil {
		return InvalidPageID, err
	}
	buf := make([]byte, PageSize)
	old := make([]byte, PageSize)
	p := WrapPage(id, buf)
	p.SetType(t)
	p.SetPrev(e.lastPage)
	if err := fm.writeLogged(tx, id, old, buf); err != nil {
		return InvalidPageID, err
	}
	if e.lastPage != InvalidPageID {
		// The tail page is concurrently latched by heap inserters;
		// update its chain link under the page latch, and log it
		// redo-only: the latch is long gone by the time this system
		// transaction's lazy commit record is appended, so a physical
		// undo could wipe records a user transaction interleaved on
		// the tail. Keeping the link on abort/crash is harmless — it
		// points at a fresh page that stays empty (a leaked page at
		// worst) and is overwritten by the next successful append.
		err := fm.updateLogged(tx, e.lastPage, true, func(p *Page) error {
			p.SetNext(id)
			return nil
		})
		if err != nil {
			return InvalidPageID, err
		}
	} else {
		e.firstPage = id
	}
	e.lastPage = id
	e.pageCount++
	if _, err := fm.persistLocked(tx); err != nil {
		return InvalidPageID, err
	}
	return id, nil
}

// NextPage follows the chain pointer of a page.
func (fm *FileManager) NextPage(id PageID) (PageID, error) {
	buf := make([]byte, PageSize)
	if err := fm.store.ReadPage(id, buf); err != nil {
		return InvalidPageID, err
	}
	return WrapPage(id, buf).Next(), nil
}

// Pages returns all page ids of a file in chain order.
func (fm *FileManager) Pages(name string) ([]PageID, error) {
	first, err := fm.FirstPage(name)
	if err != nil {
		return nil, err
	}
	var out []PageID
	buf := make([]byte, PageSize)
	for id := first; id != InvalidPageID; {
		out = append(out, id)
		if err := fm.store.ReadPage(id, buf); err != nil {
			return nil, err
		}
		id = WrapPage(id, buf).Next()
	}
	return out, nil
}
