package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestRegistryRegisterLookupDiscover(t *testing.T) {
	r := NewRegistry(nil)
	a := newEchoService(t, "a", "test.Echo")
	b := newEchoService(t, "b", "test.Echo")
	other := newEchoService(t, "c", "test.Other")
	for _, s := range []*BaseService{a, b, other} {
		if err := r.RegisterService(s, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got, err := r.Lookup("a"); err != nil || got.Name != "a" {
		t.Fatalf("Lookup(a) = %v, %v", got, err)
	}
	if _, err := r.Lookup("zzz"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Lookup(zzz) err = %v", err)
	}
	cands := r.Discover("test.Echo")
	if len(cands) != 2 || cands[0].Name != "a" || cands[1].Name != "b" {
		t.Fatalf("Discover = %v", names(cands))
	}
	if got := r.Interfaces(); len(got) != 2 || got[0] != "test.Echo" || got[1] != "test.Other" {
		t.Fatalf("Interfaces = %v", got)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func names(regs []*Registration) []string {
	out := make([]string, len(regs))
	for i, r := range regs {
		out[i] = r.Name
	}
	return out
}

func TestRegistryDuplicate(t *testing.T) {
	r := NewRegistry(nil)
	a := newEchoService(t, "a", "test.Echo")
	if err := r.RegisterService(a, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterService(a, nil); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate register err = %v", err)
	}
}

func TestRegistryDeregisterAndRevive(t *testing.T) {
	r := NewRegistry(nil)
	a := newEchoService(t, "a", "test.Echo")
	if err := r.RegisterService(a, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.Deregister("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Lookup("a"); !errors.Is(err, ErrNotFound) {
		t.Fatal("deregistered service must not resolve")
	}
	if len(r.Discover("test.Echo")) != 0 {
		t.Fatal("deregistered service must not be discovered")
	}
	if err := r.Deregister("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double deregister err = %v", err)
	}
	// Re-register over tombstone revives.
	if err := r.RegisterService(a, nil); err != nil {
		t.Fatalf("revive: %v", err)
	}
	if _, err := r.Lookup("a"); err != nil {
		t.Fatal("revived service must resolve")
	}
}

func TestRegistryValidation(t *testing.T) {
	r := NewRegistry(nil)
	if err := r.Register(&Registration{Name: "", Interface: "i", Contract: echoContract("i")}); err == nil {
		t.Fatal("empty name must fail")
	}
	if err := r.Register(&Registration{Name: "n", Interface: "", Contract: echoContract("i")}); err == nil {
		t.Fatal("empty interface must fail")
	}
	if err := r.Register(&Registration{Name: "n", Interface: "i"}); err == nil {
		t.Fatal("nil contract must fail")
	}
}

func TestRegistryEvents(t *testing.T) {
	bus := NewEventBus(16)
	r := NewRegistry(bus)
	ch, cancel := bus.SubscribeTypes(8, EventServiceRegistered, EventServiceDeregistered)
	defer cancel()
	a := newEchoService(t, "a", "test.Echo")
	if err := r.RegisterService(a, nil); err != nil {
		t.Fatal(err)
	}
	ev := <-ch
	if ev.Type != EventServiceRegistered || ev.Subject != "a" {
		t.Fatalf("event = %+v", ev)
	}
	if err := r.Deregister("a"); err != nil {
		t.Fatal(err)
	}
	ev = <-ch
	if ev.Type != EventServiceDeregistered {
		t.Fatalf("event = %+v", ev)
	}
}

func TestRegistrySnapshotMerge(t *testing.T) {
	r1 := NewRegistry(nil)
	r2 := NewRegistry(nil)
	a := newEchoService(t, "a", "test.Echo")
	if err := r1.RegisterService(a, nil); err != nil {
		t.Fatal(err)
	}
	// Simulate a remote entry on r1.
	if err := r1.Register(&Registration{
		Name: "remote-b", Interface: "test.Echo", Contract: echoContract("test.Echo"),
		Address: "node1:9000",
	}); err != nil {
		t.Fatal(err)
	}

	snap := r1.Snapshot(0)
	if len(snap) != 2 {
		t.Fatalf("snapshot size = %d", len(snap))
	}
	for _, e := range snap {
		if e.Invoker != nil {
			t.Fatal("snapshot must strip invokers")
		}
	}

	resolved := 0
	applied := r2.Merge(snap, func(addr, name string) Invoker {
		resolved++
		return InvokerFunc(func(ctx context.Context, op string, req any) (any, error) {
			return "via:" + addr, nil
		})
	})
	// Local-only entry "a" has no address, so it cannot be resolved and
	// is skipped; the addressed entry is applied.
	if applied != 1 || resolved != 1 {
		t.Fatalf("applied = %d resolved = %d", applied, resolved)
	}
	got, err := r2.Lookup("remote-b")
	if err != nil {
		t.Fatal(err)
	}
	out, err := got.Invoker.Invoke(context.Background(), "echo", "x")
	if err != nil || out != "via:node1:9000" {
		t.Fatalf("remote invoke = %v, %v", out, err)
	}

	// Tombstone propagation: r1 drops remote-b, r2 must follow.
	if err := r1.Deregister("remote-b"); err != nil {
		t.Fatal(err)
	}
	snap2 := r1.Snapshot(0)
	r2.Merge(snap2, nil)
	if _, err := r2.Lookup("remote-b"); !errors.Is(err, ErrNotFound) {
		t.Fatal("tombstone must propagate through merge")
	}
}

func TestRegistrySnapshotSince(t *testing.T) {
	r := NewRegistry(nil)
	for i := 0; i < 5; i++ {
		s := newEchoService(t, fmt.Sprintf("s%d", i), "test.Echo")
		if err := r.RegisterService(s, nil); err != nil {
			t.Fatal(err)
		}
	}
	clock := r.Clock()
	if clock != 5 {
		t.Fatalf("clock = %d", clock)
	}
	if got := len(r.Snapshot(clock)); got != 0 {
		t.Fatalf("snapshot since clock = %d entries", got)
	}
	if got := len(r.Snapshot(clock - 2)); got != 2 {
		t.Fatalf("snapshot since clock-2 = %d entries", got)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry(nil)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("svc-%d", i)
			s := NewService(name, echoContract("test.Echo"))
			s.Handle("echo", func(ctx context.Context, req any) (any, error) { return req, nil })
			_ = s.Start(context.Background())
			if err := r.RegisterService(s, nil); err != nil {
				t.Errorf("register: %v", err)
				return
			}
			for j := 0; j < 50; j++ {
				r.Discover("test.Echo")
				if _, err := r.Lookup(name); err != nil {
					t.Errorf("lookup: %v", err)
					return
				}
			}
			if i%2 == 0 {
				if err := r.Deregister(name); err != nil {
					t.Errorf("deregister: %v", err)
				}
			}
		}(i)
	}
	wg.Wait()
	if got := r.Len(); got != 8 {
		t.Fatalf("live entries = %d, want 8", got)
	}
}

// Property: after any sequence of register/deregister on unique names,
// Len equals registers minus deregisters and Discover agrees.
func TestRegistryLenQuick(t *testing.T) {
	f := func(ops []bool) bool {
		r := NewRegistry(nil)
		live := 0
		for i, reg := range ops {
			name := fmt.Sprintf("s%d", i)
			if reg || live == 0 {
				err := r.Register(&Registration{
					Name: name, Interface: "q.I", Contract: &Contract{Interface: "q.I"},
					Invoker: InvokerFunc(func(ctx context.Context, op string, req any) (any, error) { return nil, nil }),
				})
				if err != nil {
					return false
				}
				live++
			} else {
				all := r.All()
				if err := r.Deregister(all[0].Name); err != nil {
					return false
				}
				live--
			}
		}
		return r.Len() == live && len(r.Discover("q.I")) == live
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
