// Package exec implements the record-set operations of the SBDMS Access
// layer ("higher level operations, such as joins, selections, and
// sorting of record sets", Section 3.1): a Volcano-style iterator
// operator model with scans, filters, projections, sorts, three join
// algorithms, aggregation, and an expression evaluator with SQL
// three-valued logic.
package exec

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/access"
)

// Expression errors.
var (
	// ErrUnknownColumn is returned when an expression references a
	// column absent from the input schema.
	ErrUnknownColumn = errors.New("exec: unknown column")
	// ErrBadExpr is returned for invalid expression evaluation.
	ErrBadExpr = errors.New("exec: invalid expression")
)

// Expr is an evaluable scalar expression over a row. Columns resolve by
// name against the operator's output schema; qualified names ("t.col")
// match either the qualified or the bare form.
type Expr interface {
	Eval(row access.Row, cols []string) (access.Value, error)
	String() string
}

// ColumnIndex resolves a (possibly qualified) column name in a schema.
func ColumnIndex(cols []string, name string) (int, error) {
	// Exact (case-insensitive) match first.
	for i, c := range cols {
		if strings.EqualFold(c, name) {
			return i, nil
		}
	}
	// Bare name matching the suffix of a qualified column, or vice
	// versa; ambiguity is an error.
	found := -1
	for i, c := range cols {
		cBare := c
		if dot := strings.LastIndexByte(c, '.'); dot >= 0 {
			cBare = c[dot+1:]
		}
		nBare := name
		if dot := strings.LastIndexByte(name, '.'); dot >= 0 {
			nBare = name[dot+1:]
		}
		if strings.EqualFold(cBare, name) || strings.EqualFold(c, nBare) && strings.Contains(name, ".") {
			if found >= 0 {
				return -1, fmt.Errorf("%w: %s is ambiguous", ErrUnknownColumn, name)
			}
			found = i
		}
	}
	if found >= 0 {
		return found, nil
	}
	return -1, fmt.Errorf("%w: %s (have %v)", ErrUnknownColumn, name, cols)
}

// Col references a column by name.
type Col struct{ Name string }

// Eval implements Expr.
func (c Col) Eval(row access.Row, cols []string) (access.Value, error) {
	i, err := ColumnIndex(cols, c.Name)
	if err != nil {
		return access.Null(), err
	}
	if i >= len(row) {
		return access.Null(), fmt.Errorf("%w: column %d beyond row", ErrBadExpr, i)
	}
	return row[i], nil
}

// String implements Expr.
func (c Col) String() string { return c.Name }

// Lit is a literal value.
type Lit struct{ V access.Value }

// Eval implements Expr.
func (l Lit) Eval(access.Row, []string) (access.Value, error) { return l.V, nil }

// String implements Expr.
func (l Lit) String() string { return l.V.String() }

// CmpOp is a comparison operator.
type CmpOp string

// Comparison operators.
const (
	OpEq CmpOp = "="
	OpNe CmpOp = "!="
	OpLt CmpOp = "<"
	OpLe CmpOp = "<="
	OpGt CmpOp = ">"
	OpGe CmpOp = ">="
)

// Cmp compares two sub-expressions. Comparison with NULL yields NULL
// (represented as a NULL value, falsy in filters).
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Eval implements Expr.
func (c Cmp) Eval(row access.Row, cols []string) (access.Value, error) {
	lv, err := c.L.Eval(row, cols)
	if err != nil {
		return access.Null(), err
	}
	rv, err := c.R.Eval(row, cols)
	if err != nil {
		return access.Null(), err
	}
	if lv.IsNull() || rv.IsNull() {
		return access.Null(), nil
	}
	n, err := access.Compare(lv, rv)
	if err != nil {
		return access.Null(), err
	}
	var out bool
	switch c.Op {
	case OpEq:
		out = n == 0
	case OpNe:
		out = n != 0
	case OpLt:
		out = n < 0
	case OpLe:
		out = n <= 0
	case OpGt:
		out = n > 0
	case OpGe:
		out = n >= 0
	default:
		return access.Null(), fmt.Errorf("%w: comparator %q", ErrBadExpr, c.Op)
	}
	return access.NewBool(out), nil
}

// String implements Expr.
func (c Cmp) String() string { return fmt.Sprintf("(%s %s %s)", c.L, c.Op, c.R) }

// LogicOp is a boolean connective.
type LogicOp string

// Logic connectives.
const (
	OpAnd LogicOp = "AND"
	OpOr  LogicOp = "OR"
)

// Logic combines two boolean sub-expressions with three-valued logic.
type Logic struct {
	Op   LogicOp
	L, R Expr
}

// Eval implements Expr.
func (l Logic) Eval(row access.Row, cols []string) (access.Value, error) {
	lv, err := l.L.Eval(row, cols)
	if err != nil {
		return access.Null(), err
	}
	rv, err := l.R.Eval(row, cols)
	if err != nil {
		return access.Null(), err
	}
	lb, lnull := asBool(lv)
	rb, rnull := asBool(rv)
	switch l.Op {
	case OpAnd:
		if !lnull && !lb || !rnull && !rb {
			return access.NewBool(false), nil
		}
		if lnull || rnull {
			return access.Null(), nil
		}
		return access.NewBool(true), nil
	case OpOr:
		if !lnull && lb || !rnull && rb {
			return access.NewBool(true), nil
		}
		if lnull || rnull {
			return access.Null(), nil
		}
		return access.NewBool(false), nil
	}
	return access.Null(), fmt.Errorf("%w: connective %q", ErrBadExpr, l.Op)
}

// String implements Expr.
func (l Logic) String() string { return fmt.Sprintf("(%s %s %s)", l.L, l.Op, l.R) }

func asBool(v access.Value) (val bool, isNull bool) {
	if v.IsNull() {
		return false, true
	}
	return v.Type == access.TypeBool && v.Bool, false
}

// Not negates a boolean sub-expression (NULL stays NULL).
type Not struct{ E Expr }

// Eval implements Expr.
func (n Not) Eval(row access.Row, cols []string) (access.Value, error) {
	v, err := n.E.Eval(row, cols)
	if err != nil {
		return access.Null(), err
	}
	if v.IsNull() {
		return access.Null(), nil
	}
	b, _ := asBool(v)
	return access.NewBool(!b), nil
}

// String implements Expr.
func (n Not) String() string { return fmt.Sprintf("(NOT %s)", n.E) }

// IsNull tests for NULL (or NOT NULL when Neg).
type IsNull struct {
	E   Expr
	Neg bool
}

// Eval implements Expr.
func (i IsNull) Eval(row access.Row, cols []string) (access.Value, error) {
	v, err := i.E.Eval(row, cols)
	if err != nil {
		return access.Null(), err
	}
	return access.NewBool(v.IsNull() != i.Neg), nil
}

// String implements Expr.
func (i IsNull) String() string {
	if i.Neg {
		return fmt.Sprintf("(%s IS NOT NULL)", i.E)
	}
	return fmt.Sprintf("(%s IS NULL)", i.E)
}

// ArithOp is an arithmetic operator.
type ArithOp string

// Arithmetic operators.
const (
	OpAdd ArithOp = "+"
	OpSub ArithOp = "-"
	OpMul ArithOp = "*"
	OpDiv ArithOp = "/"
	OpMod ArithOp = "%"
)

// Arith computes arithmetic over numeric values; + concatenates
// strings. NULL operands yield NULL.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// Eval implements Expr.
func (a Arith) Eval(row access.Row, cols []string) (access.Value, error) {
	lv, err := a.L.Eval(row, cols)
	if err != nil {
		return access.Null(), err
	}
	rv, err := a.R.Eval(row, cols)
	if err != nil {
		return access.Null(), err
	}
	if lv.IsNull() || rv.IsNull() {
		return access.Null(), nil
	}
	if a.Op == OpAdd && lv.Type == access.TypeString && rv.Type == access.TypeString {
		return access.NewString(lv.Str + rv.Str), nil
	}
	// Integer arithmetic when both are ints; float otherwise.
	if lv.Type == access.TypeInt && rv.Type == access.TypeInt {
		switch a.Op {
		case OpAdd:
			return access.NewInt(lv.Int + rv.Int), nil
		case OpSub:
			return access.NewInt(lv.Int - rv.Int), nil
		case OpMul:
			return access.NewInt(lv.Int * rv.Int), nil
		case OpDiv:
			if rv.Int == 0 {
				return access.Null(), fmt.Errorf("%w: division by zero", ErrBadExpr)
			}
			return access.NewInt(lv.Int / rv.Int), nil
		case OpMod:
			if rv.Int == 0 {
				return access.Null(), fmt.Errorf("%w: modulo by zero", ErrBadExpr)
			}
			return access.NewInt(lv.Int % rv.Int), nil
		}
	}
	lf, lok := lv.AsFloat()
	rf, rok := rv.AsFloat()
	if !lok || !rok {
		return access.Null(), fmt.Errorf("%w: %s %s %s", ErrBadExpr, lv.Type, a.Op, rv.Type)
	}
	switch a.Op {
	case OpAdd:
		return access.NewFloat(lf + rf), nil
	case OpSub:
		return access.NewFloat(lf - rf), nil
	case OpMul:
		return access.NewFloat(lf * rf), nil
	case OpDiv:
		if rf == 0 {
			return access.Null(), fmt.Errorf("%w: division by zero", ErrBadExpr)
		}
		return access.NewFloat(lf / rf), nil
	}
	return access.Null(), fmt.Errorf("%w: operator %q", ErrBadExpr, a.Op)
}

// String implements Expr.
func (a Arith) String() string { return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R) }

// Truthy evaluates an expression as a filter predicate: true only for a
// non-NULL true boolean.
func Truthy(e Expr, row access.Row, cols []string) (bool, error) {
	v, err := e.Eval(row, cols)
	if err != nil {
		return false, err
	}
	b, isNull := asBool(v)
	return b && !isNull, nil
}
