package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// Loader type-checks packages from source. It resolves the package
// graph with `go list -deps` (which emits dependencies before
// dependents) and checks every package — standard library included — in
// that order, feeding each result to later imports through a cache.
// This avoids any dependency on compiler export data, so the loader
// works with nothing but the go tool and the stdlib go/* packages.
type Loader struct {
	// Dir is the module root the go tool runs in.
	Dir string

	fset  *token.FileSet
	cache map[string]*types.Package
}

// NewLoader creates a loader rooted at dir (the module root).
func NewLoader(dir string) *Loader {
	return &Loader{
		Dir:   dir,
		fset:  token.NewFileSet(),
		cache: map[string]*types.Package{},
	}
}

// Fset returns the file set shared by all packages the loader checks.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	GoFiles    []string
	Standard   bool
	ImportMap  map[string]string
}

// cacheImporter resolves imports from the loader cache, applying the
// per-package ImportMap so stdlib-vendored paths (e.g. golang.org/x/net
// inside package net) land on their vendored identity.
type cacheImporter struct {
	pkgs map[string]*types.Package
	imap map[string]string
}

func (c *cacheImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if r, ok := c.imap[path]; ok {
		path = r
	}
	if p, ok := c.pkgs[path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("lint: package %q not yet type-checked", path)
}

var _ types.Importer = (*cacheImporter)(nil)

// goList runs the go tool in the loader dir and decodes its output.
func (l *Loader) goList(args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go %s: %v\n%s", strings.Join(args, " "), err, errb.String())
	}
	return out.Bytes(), nil
}

// Load type-checks the packages matched by patterns (plus every
// dependency, cached for reuse) and returns the matched, non-stdlib
// packages in deterministic order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	// Which packages did the patterns actually match?
	raw, err := l.goList(append([]string{"list"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	matched := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if line != "" {
			matched[strings.TrimSpace(line)] = true
		}
	}

	// Full dependency universe in topological order (deps first).
	raw, err = l.goList(append([]string{"list", "-deps", "-json=Dir,ImportPath,GoFiles,Standard,ImportMap"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	var univ []*listPkg
	dec := json.NewDecoder(bytes.NewReader(raw))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		univ = append(univ, &p)
	}

	var out []*Package
	for _, p := range univ {
		pkg, err := l.check(p)
		if err != nil {
			return nil, err
		}
		if matched[p.ImportPath] && !p.Standard {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// check parses and type-checks one listed package, memoising the result.
func (l *Loader) check(p *listPkg) (*Package, error) {
	if tp, ok := l.cache[p.ImportPath]; ok {
		return &Package{ImportPath: p.ImportPath, Dir: p.Dir, Fset: l.fset, Types: tp}, nil
	}
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := newTypesInfo()
	imp := &cacheImporter{pkgs: l.cache, imap: p.ImportMap}
	conf := types.Config{Importer: imp}
	tp, err := conf.Check(p.ImportPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", p.ImportPath, err)
	}
	l.cache[p.ImportPath] = tp
	return &Package{
		ImportPath: p.ImportPath,
		Dir:        p.Dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tp,
		TypesInfo:  info,
	}, nil
}

// LoadDir parses and type-checks every .go file in dir as one package
// under the given synthetic import path. Imports must already be in the
// loader cache (call Load first for the surrounding module), which is
// how analyzer golden packages under testdata — invisible to the go
// tool — get type-checked against the real engine packages.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %v", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := newTypesInfo()
	imp := &cacheImporter{pkgs: l.cache}
	conf := types.Config{Importer: imp}
	tp, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tp,
		TypesInfo:  info,
	}, nil
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
