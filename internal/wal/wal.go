// Package wal implements a write-ahead log for the SBDMS storage layer:
// length-prefixed, checksummed records appended to numbered log
// segments, with group-buffered appends, explicit flush, iteration, and
// redo/undo recovery over a storage.PageStore. The log address space
// (LSNs) is global and monotonic across segments; a manifest carries
// the last fuzzy checkpoint, the recovery-begin LSN, and the full-page-
// write fence, so segments wholly below the recovery-begin LSN can be
// deleted without losing the ability to rebuild torn pages.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"time"

	"repro/internal/storage"
)

// WAL errors.
var (
	// ErrCorrupt is returned when a log record fails its checksum or
	// framing; iteration stops at the last valid record.
	ErrCorrupt = errors.New("wal: corrupt record")
	// ErrTornTail indicates a partially written record at the log tail
	// (normal after a crash; recovery treats it as the end of log).
	ErrTornTail = errors.New("wal: torn tail")
)

// LSN is a log sequence number: the byte address of a record in the
// global log stream. Addresses are never reused; segment files map a
// contiguous LSN range onto a file each, so truncating old segments
// does not move surviving records.
type LSN uint64

// ZeroLSN is the null LSN (no record).
const ZeroLSN LSN = 0

// RecType classifies log records.
type RecType uint8

// Log record types.
const (
	RecBegin      RecType = 1
	RecCommit     RecType = 2
	RecAbort      RecType = 3
	RecUpdate     RecType = 4
	RecCheckpoint RecType = 5
)

// String implements fmt.Stringer.
func (t RecType) String() string {
	switch t {
	case RecBegin:
		return "begin"
	case RecCommit:
		return "commit"
	case RecAbort:
		return "abort"
	case RecUpdate:
		return "update"
	case RecCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("rectype(%d)", uint8(t))
	}
}

// Record is one log record. Update records carry a physical
// before/after image of a byte range within a page; checkpoint records
// carry the encoded transaction and dirty-page tables in After.
type Record struct {
	LSN     LSN // assigned by Append
	Txn     uint64
	Type    RecType
	PageID  storage.PageID
	Offset  uint16 // byte offset within the page
	Before  []byte
	After   []byte
	PrevLSN LSN // previous record of the same transaction
	// Undo is an opaque logical-undo descriptor attached by the access
	// layer. Empty means the record is physically undoable (restore the
	// before image); UndoNone marks a redo-only record (a compensation
	// logged while rolling a logical operation back); anything else
	// names the inverse operation (delete the inserted key, re-insert
	// the deleted record, ...) that the access methods execute to undo
	// it. Logical undo is what makes rollback safe once transactions
	// interleave on shared pages: restoring a stale before image would
	// wipe the bytes concurrent committed transactions wrote next to
	// ours, while re-running the inverse operation under page latches
	// touches exactly the entry being undone.
	Undo []byte
	// End is the LSN one past this record. It is set when the record is
	// read back via Iterate (not persisted); log shippers use it as
	// their resume watermark.
	End LSN
}

// UndoNone is the redo-only undo descriptor: the record is never
// undone, neither physically nor logically (compensation records).
var UndoNone = []byte{0}

// RedoOnly reports whether the record carries the redo-only marker.
func (r *Record) RedoOnly() bool {
	return len(r.Undo) == 1 && r.Undo[0] == 0
}

// LogicalUndo reports whether the record carries a logical-undo
// descriptor (as opposed to physical before-image undo or redo-only).
func (r *Record) LogicalUndo() bool {
	return len(r.Undo) > 0 && !r.RedoOnly()
}

// DefaultSegmentBytes is the roll threshold used when OpenDir is given
// a non-positive segment size.
const DefaultSegmentBytes = 4 << 20

// minSegmentBytes floors configured segment sizes so a single full
// page image always fits comfortably in one segment.
const minSegmentBytes = 2 * storage.PageSize

// segment is one live log segment: a contiguous LSN range mapped onto
// one device. Records at LSN x live at device offset
// segHeaderSize + (x - base).
type segment struct {
	seq  uint64
	base LSN
	end  LSN // durable end; for the active segment this tracks flushed
	dev  storage.Device
}

func (s *segment) devOff(lsn LSN) int64 {
	return int64(segHeaderSize) + int64(lsn-s.base)
}

// Log is an append-only write-ahead log over a SegmentDir. Appends are
// buffered in memory; Flush persists them. Safe for concurrent use.
//
// Flush uses group commit: concurrent callers coalesce onto a single
// leader that performs one device sync covering every LSN requested so
// far, while followers wait for the covering sync instead of issuing
// their own. SetGroupWindow additionally holds the leader open for a
// short time/size window so bursts of committers share one sync.
type Log struct {
	mu           sync.Mutex
	dir          SegmentDir
	manifestDev  storage.Device
	segs         []*segment // ascending by base; last is active
	segmentBytes int        // roll threshold in record bytes (0 = never)

	buf      []byte // pending bytes not yet written
	bufStart uint64 // LSN of buf[0]
	flushed  LSN    // durability boundary (first LSN not yet durable)
	nextLSN  LSN

	checkpoint    LSN // LSN of the last completed checkpoint record
	recoveryBegin LSN // where the next recovery scan starts
	fence         LSN // full-page-write fence (page LSN below it => log a full image)

	// Group commit state.
	flushDone      *sync.Cond // broadcast when a flush round completes
	syncing        bool       // a leader is writing/syncing off-lock
	evictWaiters   int        // no-window callers waiting on the leader
	groupWindow    time.Duration
	groupBytes     int
	commitSiblings int        // min other in-flight txns to hold the window
	siblingsFn     func() int // reports other in-flight transactions
	syncEveryFlush bool       // baseline mode: every Flush syncs itself
	syncs          uint64     // device syncs issued by Flush
	windowSkips    uint64     // windows skipped by the siblings gate
	rolls          uint64     // segment rollovers performed
	rollFails      uint64     // rollover attempts that failed (retried)

	// retainFn, when set, reports the minimum LSN an external consumer
	// (a replication shipper) still needs; checkpoint truncation keeps
	// every segment at or above it even when the recovery-begin LSN has
	// moved past, so slow replicas resume instead of hitting
	// ErrSegmentGone and restarting from a full copy.
	retainFn      func() LSN
	retainedHolds uint64 // segments kept alive only by the retention hook

	// appendObs, when set, sees every record at append time (before it
	// is durable); the hook behind log shipping and async commit. See
	// SetAppendObserver.
	appendObs func(*Record)
}

// Open opens (or initialises) a log over a single device: the
// unbounded layout (manifest plus one segment in one file). Checkpoints
// still advance the recovery-begin LSN and the full-page-write fence,
// but no space is ever reclaimed; use OpenDir for a segmented log with
// truncation.
//
// The on-device layout changed with the segmented-log rework (a 64-byte
// manifest followed by a segment header); single-file logs written by
// the pre-segmentation layout are rejected with ErrCorrupt rather than
// silently misread.
func Open(dev storage.Device) (*Log, error) {
	return OpenDir(singleDeviceDir{dev: dev}, 0)
}

// OpenDir opens (or initialises) a segmented log over a SegmentDir,
// scanning the newest segment to find the durable tail (torn tail
// records are truncated away). segmentBytes sets the roll threshold;
// <= 0 selects DefaultSegmentBytes, except for single-device layouts
// which never roll.
func OpenDir(dir SegmentDir, segmentBytes int) (*Log, error) {
	l := &Log{dir: dir, segmentBytes: segmentBytes}
	if _, single := dir.(singleDeviceDir); single {
		l.segmentBytes = 0
	} else if l.segmentBytes <= 0 {
		l.segmentBytes = DefaultSegmentBytes
	} else if l.segmentBytes < minSegmentBytes {
		l.segmentBytes = minSegmentBytes
	}

	mdev, err := dir.OpenManifest()
	if err != nil {
		return nil, err
	}
	l.manifestDev = mdev
	msize, err := mdev.Size()
	if err != nil {
		return nil, err
	}
	mbuf := make([]byte, manifestSize)
	haveManifest := false
	manifestTorn := false
	if msize > 0 {
		n := msize
		if n > manifestSize {
			n = manifestSize
		}
		if _, err := mdev.ReadAt(mbuf[:n], 0); err != nil {
			return nil, fmt.Errorf("wal: reading manifest: %w", err)
		}
		allZero := true
		for _, b := range mbuf[:n] {
			if b != 0 {
				allZero = false
				break
			}
		}
		switch {
		case allZero:
			// The manifest region exists but was never written: a crash
			// landed between creating the first segment and the first
			// manifest write (the single-device layout extends the file
			// past the manifest region when the segment header goes
			// in). No record can have been acknowledged before the
			// first manifest sync, so treat it as absent, not foreign.
		case n >= 8 && binary.LittleEndian.Uint64(mbuf) != manifestMagic:
			// A wrong magic is a foreign or mispointed file, not a torn
			// manifest write: fail loudly instead of "recovering" over
			// someone else's data.
			return nil, fmt.Errorf("%w: bad manifest magic", ErrCorrupt)
		default:
			m, ok, err := decodeManifest(mbuf[:n])
			if err != nil {
				return nil, err
			}
			if ok && n == manifestSize {
				l.checkpoint = m.checkpoint
				l.recoveryBegin = m.recoveryBegin
				l.fence = m.fence
				haveManifest = true
			} else {
				manifestTorn = true
			}
		}
	}

	if err := l.openSegments(); err != nil {
		return nil, err
	}
	if !haveManifest {
		// No usable manifest: fall back to scanning from the oldest
		// live segment. Only a genuinely empty log (no records, no
		// prior truncation) is treated as fresh; any existing history
		// without a manifest — torn write, zeroed block — forces the
		// fence to the tail so every page's next mutation logs a full
		// image: self-healing torn-page protection while the
		// checkpoint provenance is unknown.
		l.recoveryBegin = ZeroLSN
		l.checkpoint = ZeroLSN
		empty := l.segs[0].seq == 1 && l.nextLSN == l.segs[0].base
		if manifestTorn || !empty {
			l.fence = l.nextLSN
		} else {
			l.fence = 1
			if err := l.writeManifestLocked(); err != nil {
				return nil, err
			}
		}
	}
	if l.fence == ZeroLSN {
		l.fence = 1
	}
	l.flushDone = sync.NewCond(&l.mu)
	return l, nil
}

// openSegments loads every live segment, validates header continuity,
// and truncates the torn tail of the newest one. A newest segment whose
// header never became durable (crash during rollover, before anything
// in it was acknowledged) is deleted.
func (l *Log) openSegments() error {
	seqs, err := l.dir.ListSegments()
	if err != nil {
		return err
	}
	if len(seqs) == 0 {
		seg, err := l.createSegment(1, LSN(segHeaderSize))
		if err != nil {
			return err
		}
		l.segs = []*segment{seg}
		l.flushed = seg.base
		l.nextLSN = seg.base
		l.bufStart = uint64(seg.base)
		return nil
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			return fmt.Errorf("%w: segment gap %d -> %d", ErrCorrupt, seqs[i-1], seqs[i])
		}
	}
	// Pass 1: open every segment and read its header.
	type rawSeg struct {
		seq      uint64
		dev      storage.Device
		size     int64
		headerOK bool
		base     LSN
	}
	raws := make([]rawSeg, 0, len(seqs))
	for _, seq := range seqs {
		dev, err := l.dir.OpenSegment(seq)
		if err != nil {
			return err
		}
		size, err := dev.Size()
		if err != nil {
			return err
		}
		r := rawSeg{seq: seq, dev: dev, size: size}
		if size >= segHeaderSize {
			hdr := make([]byte, segHeaderSize)
			if _, err := dev.ReadAt(hdr, 0); err != nil {
				return fmt.Errorf("wal: reading segment %d header: %w", seq, err)
			}
			hseq, base, ok := decodeSegHeader(hdr)
			r.headerOK = ok && hseq == seq
			r.base = base
		}
		raws = append(raws, r)
	}
	// The NEWEST segment may be a crash leftover that never held an
	// acknowledged record, in two shapes: a torn header (crash during
	// rollover, before the creation sync completed), or a durable
	// header whose base no longer matches the previous segment's end (a
	// rollover failed after writing the header, appends continued in
	// the previous segment, and the retry never happened before the
	// crash). Records only ever move to a new segment once its creation
	// fully succeeded, so in both shapes the leftover is empty of
	// promises and is dropped; the same damage anywhere else is real
	// corruption. A sole first segment with a torn header is the
	// crash-during-very-first-init case, droppable only while no
	// checkpoint was ever completed.
	if n := len(raws); n > 0 {
		last := raws[n-1]
		drop := false
		if !last.headerOK {
			drop = n > 1 || (l.checkpoint == ZeroLSN && l.recoveryBegin == ZeroLSN)
			if !drop {
				return fmt.Errorf("%w: segment %d has a bad header", ErrCorrupt, last.seq)
			}
		} else if n > 1 {
			prev := raws[n-2]
			if prev.headerOK && last.base != prev.base+LSN(prev.size-segHeaderSize) {
				drop = true // stale failed-rollover leftover
			}
		}
		if drop {
			if err := l.dir.RemoveSegment(last.seq); err != nil {
				return err
			}
			_ = last.dev.Close()
			raws = raws[:n-1]
		}
	}
	// Pass 2: validate chain continuity and durable extents. Only the
	// final remaining segment is tail-scanned for torn records — every
	// earlier one was fully synced before its successor was created.
	var segs []*segment
	for i, r := range raws {
		if !r.headerOK {
			return fmt.Errorf("%w: segment %d has a bad header", ErrCorrupt, r.seq)
		}
		if len(segs) > 0 {
			prev := segs[len(segs)-1]
			if r.base != prev.end {
				return fmt.Errorf("%w: segment %d base %d, want %d", ErrCorrupt, r.seq, r.base, prev.end)
			}
		}
		seg := &segment{seq: r.seq, base: r.base, dev: r.dev}
		if i == len(raws)-1 {
			end := r.base
			for {
				_, next, err := seg.readRecord(end, r.base+LSN(r.size-segHeaderSize))
				if err != nil {
					break
				}
				end = next
			}
			seg.end = end
			if err := r.dev.Truncate(seg.devOff(end)); err != nil {
				return err
			}
		} else {
			seg.end = r.base + LSN(r.size-segHeaderSize)
		}
		segs = append(segs, seg)
	}
	if len(segs) == 0 {
		// Only reachable when the sole unborn segment was dropped:
		// reinitialise from scratch, exactly like an empty directory.
		seg, err := l.createSegment(1, LSN(segHeaderSize))
		if err != nil {
			return err
		}
		segs = []*segment{seg}
	}
	l.segs = segs
	tail := segs[len(segs)-1].end
	l.flushed = tail
	l.nextLSN = tail
	l.bufStart = uint64(tail)
	return nil
}

// createSegment creates segment seq with the given base LSN, writing
// and syncing its header so the segment is valid before any record in
// it can be acknowledged. On failure the half-created file is removed
// (best effort): leaving it behind with a stale header would confuse
// the base-continuity check at the next open once the previous segment
// keeps growing.
func (l *Log) createSegment(seq uint64, base LSN) (*segment, error) {
	dev, err := l.dir.OpenSegment(seq)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*segment, error) {
		_ = dev.Close()
		_ = l.dir.RemoveSegment(seq)
		return nil, err
	}
	if _, err := dev.WriteAt(encodeSegHeader(seq, base), 0); err != nil {
		return fail(fmt.Errorf("wal: writing segment %d header: %w", seq, err))
	}
	if err := dev.Sync(); err != nil {
		return fail(err)
	}
	if err := l.dir.Sync(); err != nil {
		return fail(err)
	}
	return &segment{seq: seq, base: base, end: base, dev: dev}, nil
}

// active returns the segment receiving appends. Callers hold l.mu.
func (l *Log) active() *segment { return l.segs[len(l.segs)-1] }

// maybeRollLocked seals the active segment and opens the next one when
// the active segment's durable body has reached the roll threshold.
// Called with l.mu held, directly after a successful flush, so the
// pending buffer (if any) starts exactly at the new segment's base.
// The header write and its two syncs run under the mutex, stalling
// concurrent appends for that round — a deliberate trade: it happens
// once per segmentBytes of traffic, and keeping creation atomic with
// the segment-list swap is what makes every other path lock-simple.
func (l *Log) maybeRollLocked() error {
	if l.segmentBytes <= 0 {
		return nil
	}
	act := l.active()
	if int(l.flushed-act.base) < l.segmentBytes {
		return nil
	}
	act.end = l.flushed
	seg, err := l.createSegment(act.seq+1, l.flushed)
	if err != nil {
		return fmt.Errorf("wal: rolling to segment %d: %w", act.seq+1, err)
	}
	l.segs = append(l.segs, seg)
	l.rolls++
	return nil
}

// Rolls returns how many segment rollovers the log has performed.
func (l *Log) Rolls() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rolls
}

// SetGroupWindow tunes group commit: a flush leader holds the log
// open for up to the window before syncing, so concurrent committers
// batch into one device sync; the window ends as soon as maxBytes are
// pending. window=0 (the default) syncs immediately; maxBytes<=0
// means the full window is always waited out.
func (l *Log) SetGroupWindow(window time.Duration, maxBytes int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.groupWindow = window
	l.groupBytes = maxBytes
}

// SetCommitSiblings installs a Postgres-style commit_siblings gate on
// the group window: a flush leader only holds the window open when fn
// reports at least minSiblings other transactions in flight, so a lone
// committer syncs immediately instead of sleeping out the window.
// minSiblings follows the user-facing knob convention everywhere the
// gate is configured: 0 selects the default gate of 1 sibling, a
// negative value (or fn == nil) disables the gate so the window is
// always held. fn is called with the log mutex held and must not call
// back into the log.
func (l *Log) SetCommitSiblings(minSiblings int, fn func() int) {
	if minSiblings == 0 {
		minSiblings = 1
	} else if minSiblings < 0 {
		minSiblings = 0 // disabled
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.commitSiblings = minSiblings
	l.siblingsFn = fn
}

// WindowSkips returns how many flush rounds skipped the group window
// because too few sibling transactions were in flight.
func (l *Log) WindowSkips() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.windowSkips
}

// holdWindowLocked reports whether a flush leader should hold the group
// window open, consulting the commit_siblings gate.
func (l *Log) holdWindowLocked() bool {
	if l.groupWindow <= 0 {
		return false
	}
	if l.commitSiblings <= 0 || l.siblingsFn == nil {
		return true
	}
	if l.siblingsFn() >= l.commitSiblings {
		return true
	}
	l.windowSkips++
	return false
}

// SetSyncEveryFlush toggles the pre-group-commit baseline: every Flush
// call holds the log lock end to end and issues its own device sync.
// Used by benchmarks to quantify the group-commit win.
func (l *Log) SetSyncEveryFlush(on bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.syncEveryFlush = on
}

// Syncs returns the number of device syncs issued by Flush so far.
// Under group commit this is typically far below the number of
// committed transactions.
func (l *Log) Syncs() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncs
}

// encode appends the wire form of rec (excluding LSN assignment) to dst.
// Layout: u32 len | u32 crc | u64 txn | u8 type | u64 page | u16 off |
// u32 blen | before | u32 alen | after | u64 prevLSN | u16 ulen | undo.
// len covers everything after the len field itself. The trailing undo
// descriptor is optional on read (records written before logical undo
// existed simply end after prevLSN).
func encode(dst []byte, rec *Record) []byte {
	body := make([]byte, 0, 37+len(rec.Before)+len(rec.After)+len(rec.Undo))
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], rec.Txn)
	body = append(body, tmp[:]...)
	body = append(body, byte(rec.Type))
	binary.LittleEndian.PutUint64(tmp[:], uint64(rec.PageID))
	body = append(body, tmp[:]...)
	binary.LittleEndian.PutUint16(tmp[:2], rec.Offset)
	body = append(body, tmp[:2]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(rec.Before)))
	body = append(body, tmp[:4]...)
	body = append(body, rec.Before...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(rec.After)))
	body = append(body, tmp[:4]...)
	body = append(body, rec.After...)
	binary.LittleEndian.PutUint64(tmp[:], uint64(rec.PrevLSN))
	body = append(body, tmp[:]...)
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(rec.Undo)))
	body = append(body, tmp[:2]...)
	body = append(body, rec.Undo...)

	crc := crc32.Checksum(body, crcTable)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(body))+4) // len includes crc
	dst = append(dst, tmp[:4]...)
	binary.LittleEndian.PutUint32(tmp[:4], crc)
	dst = append(dst, tmp[:4]...)
	return append(dst, body...)
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// readRecord decodes the record at LSN lsn inside the segment; limit
// bounds the readable LSN range. Returns the record and the LSN of the
// next record.
func (s *segment) readRecord(lsn, limit LSN) (*Record, LSN, error) {
	off := uint64(s.devOff(lsn))
	devLimit := uint64(s.devOff(limit))
	var lenBuf [4]byte
	if off+4 > devLimit {
		return nil, 0, ErrTornTail
	}
	if _, err := s.dev.ReadAt(lenBuf[:], int64(off)); err != nil {
		if errors.Is(err, storage.ErrClosed) {
			// The segment was truncated away under a concurrent reader.
			return nil, 0, fmt.Errorf("%w: segment %d", ErrSegmentGone, s.seq)
		}
		return nil, 0, fmt.Errorf("%w: %v", ErrTornTail, err)
	}
	total := binary.LittleEndian.Uint32(lenBuf[:])
	if total < 4+35 || off+4+uint64(total) > devLimit {
		return nil, 0, ErrTornTail
	}
	payload := make([]byte, total)
	if _, err := s.dev.ReadAt(payload, int64(off+4)); err != nil {
		if errors.Is(err, storage.ErrClosed) {
			return nil, 0, fmt.Errorf("%w: segment %d", ErrSegmentGone, s.seq)
		}
		return nil, 0, fmt.Errorf("%w: %v", ErrTornTail, err)
	}
	wantCRC := binary.LittleEndian.Uint32(payload)
	body := payload[4:]
	if crc32.Checksum(body, crcTable) != wantCRC {
		return nil, 0, ErrCorrupt
	}
	rec := &Record{LSN: lsn}
	rec.Txn = binary.LittleEndian.Uint64(body)
	rec.Type = RecType(body[8])
	rec.PageID = storage.PageID(binary.LittleEndian.Uint64(body[9:]))
	rec.Offset = binary.LittleEndian.Uint16(body[17:])
	blen := binary.LittleEndian.Uint32(body[19:])
	p := 23
	if p+int(blen) > len(body) {
		return nil, 0, ErrCorrupt
	}
	rec.Before = append([]byte(nil), body[p:p+int(blen)]...)
	p += int(blen)
	if p+4 > len(body) {
		return nil, 0, ErrCorrupt
	}
	alen := binary.LittleEndian.Uint32(body[p:])
	p += 4
	if p+int(alen)+8 > len(body) {
		return nil, 0, ErrCorrupt
	}
	rec.After = append([]byte(nil), body[p:p+int(alen)]...)
	p += int(alen)
	rec.PrevLSN = LSN(binary.LittleEndian.Uint64(body[p:]))
	p += 8
	if p+2 <= len(body) {
		ulen := int(binary.LittleEndian.Uint16(body[p:]))
		p += 2
		if p+ulen > len(body) {
			return nil, 0, ErrCorrupt
		}
		if ulen > 0 {
			rec.Undo = append([]byte(nil), body[p:p+ulen]...)
		}
	}
	next := lsn + LSN(4+total)
	rec.End = next
	return rec, next, nil
}

// Append buffers a record and returns its assigned LSN. The record is
// durable only after Flush covers the LSN.
func (l *Log) Append(rec *Record) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(rec), nil
}

func (l *Log) appendLocked(rec *Record) LSN {
	lsn := l.nextLSN
	rec.LSN = lsn
	l.buf = encode(l.buf, rec)
	l.nextLSN = LSN(l.bufStart + uint64(len(l.buf)))
	if l.appendObs != nil {
		rec.End = l.nextLSN
		l.appendObs(rec)
	}
	return lsn
}

// AppendPageUpdate appends an update record for the page transition
// before -> after (both full page images), choosing between a minimal
// diff and a full page image under the log mutex: if the page's prior
// image predates the full-page-write fence (its LSN is below the fence
// installed by the last checkpoint — or it was never logged at all),
// the full image is logged. Deciding under the same mutex that assigns
// the LSN is what makes the fence race-free: every record at or above a
// checkpoint's fence was appended by a caller that saw that fence, so
// the first post-checkpoint record for any page is always a full image
// and torn pages stay rebuildable after old segments are truncated.
//
// Returns nil (no error) when before and after are identical.
//
// undo optionally attaches a logical-undo descriptor (or the UndoNone
// redo-only marker for compensation records); nil selects physical
// before-image undo, which is only sound when no concurrent transaction
// can interleave records on the same page (system transactions holding
// the page latch or a structure-wide lock for their whole lifetime).
func (l *Log) AppendPageUpdate(txnID uint64, prevLSN LSN, pid storage.PageID, before, after, undo []byte) (*Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	lo, hi := 0, len(before)
	if LSN(storage.WrapPage(pid, before).LSN()) >= l.fence {
		lo, hi = storage.DiffRange(before, after)
		if lo == hi {
			return nil, nil
		}
	}
	rec := &Record{
		Txn:     txnID,
		Type:    RecUpdate,
		PageID:  pid,
		Offset:  uint16(lo),
		Before:  append([]byte(nil), before[lo:hi]...),
		After:   append([]byte(nil), after[lo:hi]...),
		PrevLSN: prevLSN,
		Undo:    undo,
	}
	l.appendLocked(rec)
	return rec, nil
}

// Flush makes every record with LSN < upTo durable. Returns
// immediately when upTo is already covered; otherwise the caller
// either becomes the flush leader — writing the whole pending buffer
// and issuing one device sync — or waits for an in-flight leader whose
// sync covers its LSN (group commit). The leader performs I/O outside
// the log lock, so appends proceed concurrently.
func (l *Log) Flush(upTo LSN) error { return l.flush(upTo, true) }

// FlushNoWindow is Flush without the group-commit window: callers that
// hold an engine lock (file-manager frees, page eviction) must not
// stall unrelated traffic for commit-batching latency.
func (l *Log) FlushNoWindow(upTo LSN) error { return l.flush(upTo, false) }

// flush implements Flush. allowWindow=false skips the group window:
// the buffer manager's eviction hook flushes while holding a shard
// lock, and must not stall page traffic for the commit-batching delay.
func (l *Log) flush(upTo LSN, allowWindow bool) error {
	l.mu.Lock()
	if l.syncEveryFlush {
		// Wait out any in-flight group leader first: flushSyncLocked
		// must not advance flushed past bytes a leader still has in
		// flight (the mode can be toggled under traffic).
		for l.syncing {
			l.flushDone.Wait()
		}
		defer l.mu.Unlock()
		return l.flushSyncLocked(upTo)
	}
	for {
		if l.flushed >= upTo {
			l.mu.Unlock()
			return nil
		}
		if !l.syncing {
			break // become the leader
		}
		if !allowWindow {
			// An eviction-path caller is queued behind this round; the
			// leader's window loop sees the count and closes early.
			l.evictWaiters++
			l.flushDone.Wait()
			l.evictWaiters--
		} else {
			l.flushDone.Wait()
		}
	}
	l.syncing = true
	if allowWindow && l.holdWindowLocked() {
		// Hold the group open so concurrent committers join this
		// round. Appends only need l.mu, which we release; the window
		// ends early once groupBytes are pending or an eviction-path
		// flush is waiting on this round.
		deadline := time.Now().Add(l.groupWindow)
		slice := l.groupWindow / 8
		if slice < time.Duration(50)*time.Microsecond {
			slice = 50 * time.Microsecond
		}
		for l.evictWaiters == 0 && (l.groupBytes <= 0 || len(l.buf) < l.groupBytes) {
			remain := time.Until(deadline)
			if remain <= 0 {
				break
			}
			if slice > remain {
				slice = remain
			}
			l.mu.Unlock()
			time.Sleep(slice)
			l.mu.Lock()
		}
	}
	// Take ownership of the pending bytes; appends continue into a
	// fresh buffer at the advanced offset while we do I/O. The whole
	// pending buffer belongs to the active segment: rolls only happen
	// after a flush completes, so the buffer never spans segments.
	buf := l.buf
	start := l.bufStart
	act := l.active()
	l.buf = nil
	l.bufStart = start + uint64(len(buf))
	target := l.bufStart
	l.mu.Unlock()

	var err error
	if len(buf) > 0 {
		if _, werr := act.dev.WriteAt(buf, act.devOff(LSN(start))); werr != nil {
			err = fmt.Errorf("wal: flushing: %w", werr)
		}
	}
	if err == nil {
		err = act.dev.Sync()
	}

	l.mu.Lock()
	l.syncing = false
	if err == nil {
		l.syncs++
		l.flushed = LSN(target)
		act.end = l.flushed
		// A failed rollover must not fail the flush: every record the
		// caller asked for is already durable in the active segment.
		// The roll condition still holds, so the next successful flush
		// retries it; until then appends keep landing in the oversized
		// active segment (degraded but correct).
		if rerr := l.maybeRollLocked(); rerr != nil {
			l.rollFails++
		}
	} else if len(buf) > 0 {
		// Put the unwritten bytes back so a later flush retries them.
		l.buf = append(buf, l.buf...)
		l.bufStart = start
	}
	l.flushDone.Broadcast()
	l.mu.Unlock()
	return err
}

// flushSyncLocked is the baseline path: write and sync under the lock,
// syncing once per call whenever anything is or might be pending.
func (l *Log) flushSyncLocked(upTo LSN) error {
	if l.flushed >= upTo && len(l.buf) == 0 {
		return nil
	}
	act := l.active()
	if len(l.buf) > 0 {
		if _, err := act.dev.WriteAt(l.buf, act.devOff(LSN(l.bufStart))); err != nil {
			return fmt.Errorf("wal: flushing: %w", err)
		}
		l.bufStart += uint64(len(l.buf))
		l.buf = l.buf[:0]
	}
	if err := act.dev.Sync(); err != nil {
		return err
	}
	l.syncs++
	l.flushed = LSN(l.bufStart)
	act.end = l.flushed
	if rerr := l.maybeRollLocked(); rerr != nil {
		l.rollFails++ // durable already; retried on the next flush
	}
	return nil
}

// DurableBoundary returns the log's durability boundary: every record
// with LSN strictly below the boundary is safe on the device; the
// record at or beyond it (if any) is not yet durable.
func (l *Log) DurableBoundary() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushed
}

// NextLSN returns the LSN the next appended record will receive.
func (l *Log) NextLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// OldestLSN returns the base LSN of the oldest live segment: the
// earliest record Iterate can still reach after truncation.
func (l *Log) OldestLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segs[0].base
}

// Iterate replays durable records with LSN >= from in log order. Pass
// ZeroLSN to start at the oldest retained record. A positive from that
// lies below the oldest live segment names truncated history and fails
// with ErrSegmentGone — a lagging log shipper must resynchronise (full
// copy) rather than silently skip the reclaimed records. The callback
// may return io.EOF to stop early.
func (l *Log) Iterate(from LSN, fn func(*Record) error) error {
	// Snapshot the segment list AND each segment's durable end under
	// the mutex: flush advances the active segment's end concurrently.
	type segView struct {
		seg *segment
		end LSN
	}
	l.mu.Lock()
	views := make([]segView, len(l.segs))
	for i, s := range l.segs {
		views[i] = segView{seg: s, end: s.end}
	}
	limit := l.flushed
	l.mu.Unlock()
	if from < views[0].seg.base {
		if from != ZeroLSN {
			return fmt.Errorf("%w: LSN %d predates oldest segment %d (base %d)",
				ErrSegmentGone, from, views[0].seg.seq, views[0].seg.base)
		}
		from = views[0].seg.base
	}
	for _, v := range views {
		seg := v.seg
		segEnd := v.end
		if segEnd > limit {
			segEnd = limit
		}
		if from >= segEnd {
			continue
		}
		lsn := from
		if lsn < seg.base {
			lsn = seg.base
		}
		for lsn < segEnd {
			rec, next, err := seg.readRecord(lsn, segEnd)
			if err != nil {
				if errors.Is(err, ErrTornTail) {
					// Everything below segEnd was durable and validated
					// (Open truncates the real torn tail before the log
					// accepts traffic), so a short or unframable record
					// here is corruption — ending the scan quietly
					// would silently drop every later segment's
					// committed records.
					return fmt.Errorf("%w: unreadable record at LSN %d in segment %d", ErrCorrupt, lsn, seg.seq)
				}
				return err
			}
			if err := fn(rec); err != nil {
				if errors.Is(err, io.EOF) {
					return nil
				}
				return err
			}
			lsn = next
		}
		from = segEnd
	}
	return nil
}

// Size returns the durable log footprint in bytes: segment headers plus
// durable record bytes across every live segment. Checkpoint truncation
// shrinks it.
func (l *Log) Size() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var total uint64
	for _, s := range l.segs {
		end := s.end
		if end > l.flushed {
			end = l.flushed
		}
		total += segHeaderSize + uint64(end-s.base)
	}
	return total
}

// SegmentCount returns the number of live segments.
func (l *Log) SegmentCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// OldestSegment returns the sequence number of the oldest live segment.
func (l *Log) OldestSegment() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segs[0].seq
}

// ActiveSegment returns the sequence number of the segment receiving
// appends.
func (l *Log) ActiveSegment() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.active().seq
}

// --- checkpoints --------------------------------------------------------

// BeginCheckpoint starts a fuzzy checkpoint: it advances the full-page-
// write fence to the current NextLSN and returns that LSN. From this
// moment, the first mutation of any page whose image predates the fence
// logs a full page image (see AppendPageUpdate), so once the checkpoint
// completes and older segments are truncated, any page a future crash
// can tear still has a full image inside the retained log suffix.
func (l *Log) BeginCheckpoint() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.fence = l.nextLSN
	return l.fence
}

// CompleteCheckpoint persists the checkpoint in the manifest — the
// checkpoint record's LSN and the recovery-begin LSN (the minimum of
// the fence, the dirty-page table's recLSNs and the oldest active
// transaction's first LSN, as computed by the caller) — then deletes
// every segment wholly below the recovery-begin LSN. The manifest is
// synced before any segment is removed, so a crash between the two
// steps only delays truncation, never loses needed history.
func (l *Log) CompleteCheckpoint(ckpt, recoveryBegin LSN) error {
	l.mu.Lock()
	if recoveryBegin > l.flushed {
		recoveryBegin = l.flushed
	}
	// Never let the manifest point below the oldest live segment: the
	// records there are already gone, and a recovery-begin naming them
	// would make the next Open fail with ErrSegmentGone. (Checkpoints
	// are serialised by the transaction manager; this is the backstop.)
	if base := l.segs[0].base; recoveryBegin < base {
		recoveryBegin = base
	}
	m := manifest{checkpoint: ckpt, recoveryBegin: recoveryBegin, fence: l.fence}
	l.checkpoint = ckpt
	l.recoveryBegin = recoveryBegin
	if err := l.writeManifest(m); err != nil {
		l.mu.Unlock()
		return err
	}
	// Truncate: drop segments whose every record lies below the
	// recovery-begin LSN — and below the retention hook's min-shipped
	// LSN, so a lagging log shipper keeps its unread suffix instead of
	// being forced into a full resynchronisation. The manifest above
	// still records the true recovery-begin LSN: retention only delays
	// file removal, never recovery semantics. The active segment is
	// never dropped. Each segment leaves l.segs only after its file
	// removal succeeded, so a removal failure keeps the log's view
	// (OldestLSN, Size, Iterate) honest and the retry happens at the
	// next checkpoint.
	truncateBelow := recoveryBegin
	if l.retainFn != nil {
		if keep := l.retainFn(); keep < truncateBelow {
			truncateBelow = keep
		}
	}
	var removable []*segment
	for i := 0; i+1 < len(l.segs) && l.segs[i+1].base <= truncateBelow; i++ {
		removable = append(removable, l.segs[i])
	}
	// Count (once per round) when the hook kept segments alive that
	// recovery no longer needs.
	if i := len(removable); i+1 < len(l.segs) && l.segs[i+1].base <= recoveryBegin {
		l.retainedHolds++
	}
	l.mu.Unlock()
	removed := 0
	var rmErr error
	for _, seg := range removable {
		if rmErr = l.dir.RemoveSegment(seg.seq); rmErr != nil {
			break
		}
		_ = seg.dev.Close()
		removed++
	}
	if removed > 0 {
		l.mu.Lock()
		l.segs = append([]*segment(nil), l.segs[removed:]...)
		l.mu.Unlock()
		if serr := l.dir.Sync(); serr != nil && rmErr == nil {
			rmErr = serr
		}
	}
	return rmErr
}

// writeManifest persists a manifest image. Callers hold l.mu.
func (l *Log) writeManifest(m manifest) error {
	if _, err := l.manifestDev.WriteAt(encodeManifest(m), 0); err != nil {
		return fmt.Errorf("wal: persisting manifest: %w", err)
	}
	return l.manifestDev.Sync()
}

func (l *Log) writeManifestLocked() error {
	return l.writeManifest(manifest{
		checkpoint:    l.checkpoint,
		recoveryBegin: l.recoveryBegin,
		fence:         l.fence,
	})
}

// Checkpoint takes a self-contained checkpoint without table snapshots:
// the caller promises no transactions are in flight and every dirty
// page has been flushed (quiescent embedders and tests). The
// transaction manager's fuzzy Checkpoint is the production path — it
// snapshots the active-transaction and dirty-page tables and computes
// the true recovery-begin LSN without quiescing anything.
func (l *Log) Checkpoint() (LSN, error) {
	l.BeginCheckpoint()
	lsn, err := l.Append(&Record{Type: RecCheckpoint})
	if err != nil {
		return ZeroLSN, err
	}
	if err := l.Flush(lsn + 1); err != nil {
		return ZeroLSN, err
	}
	if err := l.CompleteCheckpoint(lsn, lsn); err != nil {
		return ZeroLSN, err
	}
	return lsn, nil
}

// SetRetention installs (or clears, with nil) the log-retention hook: a
// provider of the minimum LSN still needed by external log consumers
// (replication shippers). Checkpoint truncation never removes a segment
// containing records at or above the reported LSN, so a slow replica
// finds its resume point intact instead of receiving ErrSegmentGone.
// The hook is called with the log mutex held and must not call back
// into the log.
func (l *Log) SetRetention(fn func() LSN) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.retainFn = fn
}

// RetentionHolds reports how many checkpoint truncation rounds were
// (partially) held back by the retention hook.
func (l *Log) RetentionHolds() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.retainedHolds
}

// LastCheckpoint returns the LSN of the most recent completed
// checkpoint record (ZeroLSN if none was ever taken).
func (l *Log) LastCheckpoint() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.checkpoint
}

// RecoveryBegin returns the LSN recovery scans from (ZeroLSN = the
// whole retained log).
func (l *Log) RecoveryBegin() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recoveryBegin
}

// FullPageFence returns the current full-page-write fence: a page whose
// image carries an LSN below the fence has its next mutation logged as
// a full page image.
func (l *Log) FullPageFence() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.fence
}

// BeforeEvict returns a buffer-manager hook enforcing the write-ahead
// rule: a dirty page with page LSN >= DurableBoundary forces a log
// flush before the page may be written back.
func (l *Log) BeforeEvict() func(storage.PageID, uint64) error {
	return func(id storage.PageID, pageLSN uint64) error {
		if LSN(pageLSN) >= l.DurableBoundary() {
			// No group window here: the caller holds a buffer shard
			// lock, and batching latency belongs to commits, not to
			// page eviction.
			return l.flush(LSN(pageLSN)+1, false)
		}
		return nil
	}
}
