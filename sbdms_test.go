package sbdms

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/storage"
)

func openDB(t *testing.T, g Granularity) *DB {
	t.Helper()
	db, err := Open(Options{
		Granularity:  g,
		BufferFrames: 64,
		Coordinator: core.CoordinatorConfig{
			ProbePeriod:  0, // probe explicitly in tests
			ProbeTimeout: 100 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = db.Close(context.Background()) })
	return db
}

func TestKVAcrossGranularities(t *testing.T) {
	for _, g := range Granularities {
		t.Run(string(g), func(t *testing.T) {
			db := openDB(t, g)
			if db.Granularity() != g {
				t.Fatal("granularity")
			}
			for i := 0; i < 200; i++ {
				if err := db.Put(fmt.Sprintf("k%04d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			v, err := db.Get("k0042")
			if err != nil || string(v) != "v42" {
				t.Fatalf("Get = %q, %v", v, err)
			}
			if _, err := db.Get("missing"); err == nil {
				t.Fatal("missing key must fail")
			}
			if err := db.DeleteKey("k0042"); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Get("k0042"); err == nil {
				t.Fatal("deleted key must fail")
			}
			keys, err := db.ScanKeys("k0100", 5)
			if err != nil || len(keys) != 5 || keys[0] != "k0100" {
				t.Fatalf("Scan = %v, %v", keys, err)
			}
			if db.KVLen() != 199 {
				t.Fatalf("KVLen = %d", db.KVLen())
			}
			// Overwrite.
			if err := db.Put("k0001", []byte("replaced")); err != nil {
				t.Fatal(err)
			}
			v, _ = db.Get("k0001")
			if string(v) != "replaced" {
				t.Fatalf("overwrite = %q", v)
			}
		})
	}
}

func TestSQLAcrossGranularities(t *testing.T) {
	ctx := context.Background()
	for _, g := range Granularities {
		t.Run(string(g), func(t *testing.T) {
			db := openDB(t, g)
			if _, err := db.Exec(ctx, "CREATE TABLE t (a INT, b TEXT)"); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Exec(ctx, "INSERT INTO t VALUES (1, 'one'), (2, 'two')"); err != nil {
				t.Fatal(err)
			}
			res, err := db.Exec(ctx, "SELECT b FROM t WHERE a = 2")
			if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Str != "two" {
				t.Fatalf("rows = %v, %v", res, err)
			}
		})
	}
}

func TestServiceRegistrations(t *testing.T) {
	db := openDB(t, Layered)
	reg := db.Kernel().Registry()
	for _, iface := range []string{IfaceKV, IfaceRecord, IfaceQuery} {
		if len(reg.Discover(iface)) == 0 {
			t.Errorf("no provider for %s", iface)
		}
	}
	// Contracts stored in the repository for adaptation.
	for _, iface := range []string{IfaceKV, IfaceRecord, IfaceQuery} {
		if _, err := db.Kernel().Repository().GetContract(iface); err != nil {
			t.Errorf("no schema for %s", iface)
		}
	}
	// Fine adds the disk service.
	fine := openDB(t, Fine)
	if len(fine.Kernel().Registry().Discover(IfaceDisk)) == 0 {
		t.Error("fine profile must register the disk service")
	}
	if len(db.Kernel().Registry().Discover(IfaceDisk)) != 0 {
		t.Error("layered profile must not register the disk service")
	}
}

func TestDurabilityAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	openDev := func(name string) storage.Device {
		d, err := storage.OpenFileDevice(dir + "/" + name)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	ctx := context.Background()
	db, err := Open(Options{Device: openDev("data.db"), LogDevice: openDev("wal.db"), Granularity: Coarse})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(ctx, "CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(ctx, "INSERT INTO t VALUES (7)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Put("key", []byte("value")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(ctx); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{Device: openDev("data.db"), LogDevice: openDev("wal.db"), Granularity: Coarse})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close(ctx)
	res, err := db2.Exec(ctx, "SELECT a FROM t")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Int != 7 {
		t.Fatalf("rows = %v, %v", res, err)
	}
	// KV data and its index survive the reopen.
	if db2.KVLen() != 1 {
		t.Fatalf("KVLen = %d", db2.KVLen())
	}
	v, err := db2.Get("key")
	if err != nil || string(v) != "value" {
		t.Fatalf("Get after reopen = %q, %v", v, err)
	}
}

func TestScenarioExtension(t *testing.T) {
	ctx := context.Background()
	db := openDB(t, Coarse)
	res, err := ScenarioExtension(ctx, db, 300)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 {
		t.Fatalf("failures = %d", res.Failures)
	}
	if res.OpsBefore != 300 || res.OpsDuring != 300 || res.OpsAfter != 300 {
		t.Fatalf("ops = %+v", res)
	}
	if !strings.Contains(res.ServedBy, "page-coordinator") {
		t.Fatalf("ServedBy = %q", res.ServedBy)
	}
	if res.Events[core.EventComponentDeployed] == 0 {
		t.Fatalf("events = %v", res.Events)
	}
	if res.String() == "" {
		t.Fatal("String")
	}
}

func TestScenarioSelection(t *testing.T) {
	ctx := context.Background()
	for _, g := range []Granularity{Coarse, Layered} {
		t.Run(string(g), func(t *testing.T) {
			db := openDB(t, g)
			res, err := ScenarioSelection(ctx, db, 200)
			if err != nil {
				t.Fatal(err)
			}
			if res.Failures != 0 {
				t.Fatalf("failures = %d", res.Failures)
			}
			if res.ServedBy != "kv-standby" {
				t.Fatalf("ServedBy = %q, want kv-standby during release", res.ServedBy)
			}
			if res.Events[core.EventWorkflowSwitched] == 0 {
				t.Fatalf("events = %v", res.Events)
			}
		})
	}
	// Monolithic cannot run the scenario.
	db := openDB(t, Monolithic)
	if _, err := ScenarioSelection(ctx, db, 10); err == nil {
		t.Fatal("monolithic selection scenario must fail")
	}
}

func TestScenarioAdaptation(t *testing.T) {
	ctx := context.Background()
	for _, g := range []Granularity{Coarse, Layered} {
		t.Run(string(g), func(t *testing.T) {
			db := openDB(t, g)
			res, err := ScenarioAdaptation(ctx, db, 200)
			if err != nil {
				t.Fatal(err)
			}
			// The system continues to operate (Figure 7), served
			// through a generated adaptor.
			if res.OpsDuring == 0 || res.OpsAfter == 0 {
				t.Fatalf("ops = %+v", res)
			}
			if !strings.HasPrefix(res.ServedBy, "adaptor:") {
				t.Fatalf("ServedBy = %q, want an adaptor", res.ServedBy)
			}
			if res.Events[core.EventAdaptorCreated] == 0 {
				t.Fatalf("events = %v", res.Events)
			}
		})
	}
}

func TestOpenBadGranularity(t *testing.T) {
	if _, err := Open(Options{Granularity: "weird"}); err == nil {
		t.Fatal("unknown granularity must fail")
	}
}

func TestKeyNotFoundError(t *testing.T) {
	db := openDB(t, Monolithic)
	_, err := db.Get("zzz")
	if !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestBufferPolicyOption(t *testing.T) {
	db, err := Open(Options{Granularity: Monolithic, BufferPolicy: "clock"})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close(context.Background())
	if db.Pool().PolicyName() != "clock" {
		t.Fatalf("policy = %s", db.Pool().PolicyName())
	}
}

func TestDelayBindingProfile(t *testing.T) {
	// A binding applied to every service adds per-hop latency:
	// layered (2 hops) must be slower than coarse (1 hop).
	mk := func(g Granularity) time.Duration {
		db, err := Open(Options{
			Granularity: g,
			Binding:     core.DelayBinding{Delay: 2 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close(context.Background())
		start := time.Now()
		for i := 0; i < 5; i++ {
			if err := db.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	coarse := mk(Coarse)
	layered := mk(Layered)
	if layered <= coarse {
		t.Fatalf("layered (%v) must pay more hops than coarse (%v)", layered, coarse)
	}
}
