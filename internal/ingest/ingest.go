// Package ingest prepares bulk-load batches for the KV engine's import
// fast path: validation (typed, per-key errors in the option-matrix
// style), sorting, and duplicate rejection happen here, BEFORE any page
// is written, so a bad batch costs no I/O and leaves no garbage pages.
// The engine-side orchestration (heap packing, bottom-up tree build,
// atomic root install) stays with the KV core — this package owns the
// pure batch logic so it can be tested without an engine.
package ingest

import (
	"errors"
	"fmt"
	"sort"
)

// Batch preparation errors. They surface verbatim from DB.Import, so
// callers can classify rejections without string matching (except
// across a network binding, where gob flattens them to strings).
var (
	// ErrMismatch is returned when keys and values differ in length.
	ErrMismatch = errors.New("ingest: batch keys/values length mismatch")
	// ErrDuplicate is returned when the batch contains the same key
	// twice: an import is one atomic write per key, so "last one wins"
	// would silently drop data the caller thought it loaded.
	ErrDuplicate = errors.New("ingest: duplicate key in batch")
	// ErrKeyTooLarge is returned for keys exceeding the index bound.
	ErrKeyTooLarge = errors.New("ingest: key too large")
	// ErrValueTooLarge is returned for records exceeding one heap page.
	ErrValueTooLarge = errors.New("ingest: value too large")
)

// Batch is a validated, key-sorted bulk-load input: Keys are strictly
// increasing and Vals pairs with them positionally.
type Batch struct {
	Keys []string
	Vals [][]byte
}

// Prepare validates (keys, vals) into a sorted Batch. Unsorted input is
// accepted and sorted here; duplicate keys are rejected with
// ErrDuplicate. check, when non-nil, runs per pair with engine size
// limits (ErrKeyTooLarge / ErrValueTooLarge wrapped around the key) —
// it runs in sorted order, so the reported key is the smallest
// offender. The input slices are not modified.
func Prepare(keys []string, vals [][]byte, check func(k string, v []byte) error) (*Batch, error) {
	if len(keys) != len(vals) {
		return nil, fmt.Errorf("%w: %d keys, %d values", ErrMismatch, len(keys), len(vals))
	}
	if len(keys) == 0 {
		return &Batch{}, nil
	}
	order := make([]int, len(keys))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	b := &Batch{
		Keys: make([]string, len(keys)),
		Vals: make([][]byte, len(keys)),
	}
	for i, src := range order {
		b.Keys[i] = keys[src]
		b.Vals[i] = vals[src]
		if i > 0 && b.Keys[i-1] == b.Keys[i] {
			return nil, fmt.Errorf("%w: %q", ErrDuplicate, b.Keys[i])
		}
		if check != nil {
			if err := check(b.Keys[i], b.Vals[i]); err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

// Stats describes one completed import.
type Stats struct {
	Keys       int  // entries loaded
	HeapPages  int  // packed version-cell pages written
	IndexPages int  // bulk-built tree pages written
	FastPath   bool // false: fell back to the per-key insert path
}
