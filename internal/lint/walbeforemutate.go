package lint

import (
	"go/ast"
	"go/types"
)

// WALBeforeMutateAnalyzer enforces write-ahead logging on page
// mutations: code that pins a buffer frame must not store into the
// frame's bytes directly. Raw slice stores bypass the WAL, so the
// mutation has no before/after image — recovery can neither redo it
// after a crash nor undo it after an abort, and the page LSN the
// flush-ordering protocol depends on is never advanced. All mutations
// flow through the logged helpers: access.MutatePage /
// access.LogLatchedMutation / Heap.mutatePage (which append a
// wal.RecUpdate before the store) or buffer.Manager.UpdatePage.
//
// The analyzer is intra-procedural by design: it flags stores whose
// destination derives from a frame pinned in the same function.
// Functions that receive a *storage.Page parameter are the callee side
// of the logged-mutation protocol (the helper logs around the
// callback), so their stores are not flagged. The raw layers below the
// WAL — internal/storage, internal/buffer, internal/wal — are exempt.
var WALBeforeMutateAnalyzer = &Analyzer{
	Name: "walbeforemutate",
	Doc: "writes to pinned page bytes must flow through a logged helper " +
		"(AppendPageUpdate/MutatePage/LogLatchedMutation/UpdatePage), never raw slice stores",
	Run: runWALBeforeMutate,
}

// walExemptPkgs are the layers at or below the WAL itself, where raw
// frame stores are the implementation of logging and recovery.
var walExemptPkgs = map[string]bool{
	"repro/internal/storage": true,
	"repro/internal/buffer":  true,
	"repro/internal/wal":     true,
}

// isPinCall reports whether call pins a buffer frame.
func isPinCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	return isMethodOn(fn, bufferPath, "Manager", "Pin") ||
		isMethodOn(fn, bufferPath, "Manager", "PinLatched") ||
		isMethodOn(fn, bufferPath, "Manager", "NewPage") ||
		isMethodOn(fn, bufferPath, "Manager", "NewPageLatched")
}

func runWALBeforeMutate(pass *Pass) error {
	if walExemptPkgs[pass.PkgPath] {
		return nil
	}
	info := pass.TypesInfo

	checkBody := func(body *ast.BlockStmt) {
		// Pass 1: variables bound to frames pinned in this function,
		// plus pages/byte-slices derived from them.
		pinned := map[*types.Var]bool{}
		derived := map[*types.Var]bool{}
		isTracked := func(v *types.Var) bool { return v != nil && (pinned[v] || derived[v]) }

		// baseVar strips indexing, slicing, Data/Page()/Payload()/Bytes()
		// chains down to the variable the destination aliases.
		var baseVar func(e ast.Expr) *types.Var
		baseVar = func(e ast.Expr) *types.Var {
			switch v := ast.Unparen(e).(type) {
			case *ast.Ident:
				return objOf(info, v)
			case *ast.IndexExpr:
				return baseVar(v.X)
			case *ast.SliceExpr:
				return baseVar(v.X)
			case *ast.StarExpr:
				return baseVar(v.X)
			case *ast.SelectorExpr:
				switch v.Sel.Name {
				case "Data", "Raw", "buf":
					return baseVar(v.X)
				}
				return nil
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok {
					switch sel.Sel.Name {
					case "Page", "Payload", "Bytes", "Header":
						return baseVar(sel.X)
					}
				}
				return nil
			}
			return nil
		}

		inspectShallow(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				return true
			}
			call, isCall := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if isCall && isPinCall(info, call) && len(as.Lhs) > 0 {
				if v := objOf(info, as.Lhs[0]); v != nil {
					pinned[v] = true
				}
				return true
			}
			// p := f.Page(), b := f.Data, q := p — derivation chains.
			if len(as.Lhs) == 1 {
				if src := baseVar(as.Rhs[0]); isTracked(src) {
					// Only track aliases, not value copies of bytes.
					if v := objOf(info, as.Lhs[0]); v != nil {
						if _, isSlice := v.Type().Underlying().(*types.Slice); isSlice {
							derived[v] = true
						} else if _, isPtr := v.Type().(*types.Pointer); isPtr {
							derived[v] = true
						} else if isNamedType(v.Type(), "repro/internal/storage", "Page") {
							derived[v] = true
						}
					}
				}
			}
			return true
		})

		if len(pinned) == 0 {
			return
		}

		// Pass 2: flag raw stores into tracked destinations.
		inspectShallow(body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range v.Lhs {
					switch lhs.(type) {
					case *ast.IndexExpr, *ast.SliceExpr, *ast.StarExpr:
						if b := baseVar(lhs); isTracked(b) {
							pass.Reportf(lhs.Pos(),
								"raw store into pinned page bytes bypasses the WAL: "+
									"use AppendPageUpdate/MutatePage/LogLatchedMutation/UpdatePage so recovery sees a before/after image")
						}
					}
				}
			case *ast.CallExpr:
				fn := calleeFunc(info, v)
				var dst ast.Expr
				switch {
				case fn == nil && isBuiltinCopy(info, v) && len(v.Args) == 2:
					dst = v.Args[0]
				case fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "encoding/binary" &&
					(fn.Name() == "PutUint16" || fn.Name() == "PutUint32" || fn.Name() == "PutUint64") &&
					len(v.Args) >= 1:
					dst = v.Args[0]
				}
				if dst != nil {
					if b := baseVar(dst); isTracked(b) {
						pass.Reportf(v.Pos(),
							"raw store into pinned page bytes bypasses the WAL: "+
								"use AppendPageUpdate/MutatePage/LogLatchedMutation/UpdatePage so recovery sees a before/after image")
					}
				}
			}
			return true
		})
	}

	for _, f := range pass.Files {
		funcBodies(f, func(ft *ast.FuncType, body *ast.BlockStmt) { checkBody(body) })
	}
	return nil
}

// isBuiltinCopy reports whether call invokes the copy builtin.
func isBuiltinCopy(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "copy"
}
