package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PinPairedAnalyzer checks that every buffer pin is matched by an unpin
// on all return paths, including error returns. A leaked pin wedges a
// frame in the pool forever: the page can never be evicted, and under
// load the pool runs out of frames and every later Pin fails. The
// analyzer enumerates the paths through each function (bounded, loop
// bodies taken at most once) and reports pins that some path abandons.
//
// A pinned frame that escapes the function — returned, stored into a
// struct, or passed (as the frame itself) to another call — is treated
// as managed elsewhere and not tracked further; method calls on the
// frame (f.Page(), f.ID, f.Data) do not count as escapes.
var PinPairedAnalyzer = &Analyzer{
	Name: "pinpaired",
	Doc: "every Pin/PinLatched/NewPage/NewPageLatched has a matching Unpin on all " +
		"return paths, including error returns",
	Run: runPinPaired,
}

// maxPinStates bounds path enumeration; functions that exceed it are
// skipped rather than half-reported.
const maxPinStates = 256

// pinSite is one pin call in a function.
type pinSite struct {
	pos      token.Pos
	method   string
	frameVar *types.Var          // variable bound to the *buffer.Frame (nil if discarded)
	idArg    string              // canonical text of the page-id argument, "" for NewPage*
	aliases  map[*types.Var]bool // variables holding frameVar.ID
	reported bool
}

// pinState is the set of open pins along one path. pendVar/pendSite
// model the Go error idiom for exactly one statement: after
// f, err := pool.Pin(id), the branch where err != nil is the branch
// where the pin never happened.
type pinState struct {
	open     map[*pinSite]bool
	pendVar  *types.Var
	pendSite *pinSite
}

func (s *pinState) clone() pinState {
	c := pinState{
		open:     make(map[*pinSite]bool, len(s.open)),
		pendVar:  s.pendVar,
		pendSite: s.pendSite,
	}
	for k, v := range s.open {
		c.open[k] = v
	}
	return c
}

// takePending consumes the one-statement error association.
func (s *pinState) takePending() (*types.Var, *pinSite) {
	v, site := s.pendVar, s.pendSite
	s.pendVar, s.pendSite = nil, nil
	return v, site
}

// pinChecker analyzes one function body.
type pinChecker struct {
	pass    *Pass
	info    *types.Info
	states  int  // processed-state budget
	aborted bool // too many paths: give up without reporting
	leaks   []*pinSite
}

func runPinPaired(pass *Pass) error {
	for _, f := range pass.Files {
		funcBodies(f, func(ft *ast.FuncType, body *ast.BlockStmt) {
			c := &pinChecker{pass: pass, info: pass.TypesInfo}
			outs := c.exec(body.List, pinState{open: map[*pinSite]bool{}})
			for _, st := range outs {
				c.leakCheck(st)
			}
			if !c.aborted {
				for _, site := range c.leaks {
					pass.Reportf(site.pos,
						"frame pinned by %s may not be unpinned on every return path (including error returns)", site.method)
				}
			}
		})
	}
	return nil
}

// classifyPin resolves call to a pinning method name, if it is one.
func classifyPin(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	for _, m := range []string{"Pin", "PinLatched", "NewPage", "NewPageLatched"} {
		if isMethodOn(fn, bufferPath, "Manager", m) {
			return m, true
		}
	}
	return "", false
}

// isUnpinCall resolves call to an unpinning method, if it is one.
func isUnpinCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	return isMethodOn(fn, bufferPath, "Manager", "Unpin") ||
		isMethodOn(fn, bufferPath, "Manager", "UnpinLatched")
}

func (c *pinChecker) leakCheck(st pinState) {
	for site := range st.open {
		if !site.reported {
			site.reported = true
			c.leaks = append(c.leaks, site)
		}
	}
}

// release applies an unpin call to the state: the site whose id the
// call names is closed; an unrecognized id closes everything (we cannot
// prove which pin it pairs with, and guessing would invent leaks).
func (c *pinChecker) release(st pinState, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	arg := exprString(c.pass.Fset, call.Args[0])
	var matched *pinSite
	for site := range st.open {
		if site.idArg != "" && arg == site.idArg {
			matched = site
			break
		}
		if site.frameVar != nil && arg == site.frameVar.Name()+".ID" {
			matched = site
			break
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if v := objOf(c.info, id); v != nil && site.aliases[v] {
				matched = site
				break
			}
		}
	}
	if matched != nil {
		delete(st.open, matched)
		return
	}
	for site := range st.open {
		delete(st.open, site)
	}
}

// escape drops a site whose frame now lives beyond this function.
func escape(st pinState, site *pinSite) { delete(st.open, site) }

// siteOf finds the open site owning a frame variable.
func siteOf(st pinState, v *types.Var) *pinSite {
	for site := range st.open {
		if site.frameVar == v {
			return site
		}
	}
	return nil
}

// scan processes one statement's expressions in order: unpin calls
// close sites, then any use of an open frame variable outside a
// selector (f.ID, f.Data, f.Page()) counts as an escape. Nested
// function literals escape every frame they capture — a closure that
// unpins (deferred cleanup) or uses the frame manages it from now on.
func (c *pinChecker) scan(st pinState, n ast.Node, skip map[ast.Node]bool) {
	if n == nil {
		return
	}
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[m] = stack[len(stack)-1]
		}
		stack = append(stack, m)
		return true
	})

	ast.Inspect(n, func(m ast.Node) bool {
		if skip[m] {
			return false
		}
		switch v := m.(type) {
		case *ast.CallExpr:
			if isUnpinCall(c.info, v) {
				c.release(st, v)
			}
		case *ast.FuncLit:
			ast.Inspect(v.Body, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok {
					if obj := objOf(c.info, id); obj != nil {
						if site := siteOf(st, obj); site != nil {
							escape(st, site)
						}
					}
				}
				if call, ok := inner.(*ast.CallExpr); ok && isUnpinCall(c.info, call) {
					c.release(st, call)
				}
				return true
			})
			return false
		case *ast.Ident:
			obj := objOf(c.info, v)
			if obj == nil {
				return true
			}
			site := siteOf(st, obj)
			if site == nil {
				return true
			}
			if sel, ok := parents[m].(*ast.SelectorExpr); ok && sel.X == m {
				return true // f.ID / f.Data / f.Page(): not an escape
			}
			if as, ok := parents[m].(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if lhs == m {
						return true // reassignment of the variable itself
					}
				}
			}
			escape(st, site)
		}
		return true
	})
}

// exec runs a statement list from one entry state and returns the set
// of fall-through states. Return statements check for leaks and
// terminate their path.
func (c *pinChecker) exec(stmts []ast.Stmt, st pinState) []pinState {
	states := []pinState{st}
	for _, stmt := range stmts {
		var next []pinState
		for _, s := range states {
			next = append(next, c.execStmt(stmt, s)...)
		}
		states = next
		c.states += len(states)
		if c.states > maxPinStates {
			c.aborted = true
			return nil
		}
		if len(states) == 0 {
			return nil // every path terminated
		}
	}
	return states
}

func (c *pinChecker) execStmt(stmt ast.Stmt, st pinState) []pinState {
	if c.aborted {
		return nil
	}
	pendVar, pendSite := st.takePending()
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		skip := map[ast.Node]bool{}
		// Bind a pin: f, err := pool.Pin(id).
		if len(s.Rhs) == 1 {
			if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
				if method, isPin := classifyPin(c.info, call); isPin {
					site := &pinSite{pos: call.Pos(), method: method, aliases: map[*types.Var]bool{}}
					if len(call.Args) > 0 && (method == "Pin" || method == "PinLatched") {
						site.idArg = exprString(c.pass.Fset, call.Args[0])
					}
					if len(s.Lhs) > 0 {
						if id, okID := s.Lhs[0].(*ast.Ident); okID && id.Name != "_" {
							site.frameVar = objOf(c.info, s.Lhs[0])
						}
					}
					if site.frameVar == nil && site.idArg == "" {
						// A NewPage frame bound to _: nothing can ever
						// name it for Unpin. Reported directly, not via
						// the leak list (which would report it twice).
						c.pass.Reportf(call.Pos(),
							"frame pinned by %s is discarded and can never be unpinned", method)
					} else {
						// _, err := pool.Pin(id) is fine: the frame is
						// releasable through Unpin(id, ...).
						st.open[site] = true
						if len(s.Lhs) >= 2 {
							if errv := objOf(c.info, s.Lhs[1]); errv != nil && isErrorType(errv.Type()) {
								st.pendVar, st.pendSite = errv, site
							}
						}
					}
					skip[call] = true
				}
			}
		}
		// Record id aliases: id := f.ID.
		for i, rhs := range s.Rhs {
			sel, ok := ast.Unparen(rhs).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "ID" || i >= len(s.Lhs) {
				continue
			}
			base := objOf(c.info, sel.X)
			if base == nil {
				continue
			}
			if site := siteOf(st, base); site != nil {
				if alias := objOf(c.info, s.Lhs[i]); alias != nil {
					site.aliases[alias] = true
				}
			}
		}
		c.scan(st, s, skip)
		return []pinState{st}

	case *ast.ReturnStmt:
		c.scan(st, s, nil)
		c.leakCheck(st)
		return nil

	case *ast.BlockStmt:
		return c.exec(s.List, st)

	case *ast.IfStmt:
		if s.Init != nil {
			outs := c.execStmt(s.Init, st)
			if len(outs) != 1 {
				return outs
			}
			st = outs[0]
			pendVar, pendSite = st.takePending()
		}
		c.scan(st, s.Cond, nil)
		// The error idiom: on the branch where the pin call's error is
		// non-nil, the pin never happened.
		if pendSite != nil && st.open[pendSite] {
			if op, ok := errNilCond(c.info, s.Cond, pendVar); ok {
				failSt := st.clone()
				delete(failSt.open, pendSite)
				okSt := st
				thenSt, contSt := failSt, okSt
				if op == token.EQL { // if err == nil { ... }
					thenSt, contSt = okSt, failSt
				}
				thenOuts := c.exec(s.Body.List, thenSt)
				if s.Else != nil {
					return append(thenOuts, c.execStmt(s.Else, contSt)...)
				}
				return append(thenOuts, contSt)
			}
		}
		thenOuts := c.exec(s.Body.List, st.clone())
		if s.Else != nil {
			return append(thenOuts, c.execStmt(s.Else, st)...)
		}
		return append(thenOuts, st)

	case *ast.ForStmt:
		if s.Init != nil {
			outs := c.execStmt(s.Init, st)
			if len(outs) != 1 {
				return outs
			}
			st = outs[0]
		}
		c.scan(st, s.Cond, nil)
		bodyOuts := c.exec(s.Body.List, st.clone())
		if s.Cond == nil {
			// for {}: falls through only via break, which terminates
			// paths conservatively; keep the pre-loop state anyway.
			return append(bodyOuts, st)
		}
		return append(bodyOuts, st)

	case *ast.RangeStmt:
		c.scan(st, s.X, nil)
		bodyOuts := c.exec(s.Body.List, st.clone())
		return append(bodyOuts, st)

	case *ast.SwitchStmt:
		if s.Init != nil {
			outs := c.execStmt(s.Init, st)
			if len(outs) != 1 {
				return outs
			}
			st = outs[0]
		}
		c.scan(st, s.Tag, nil)
		return c.execClauses(s.Body, st)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			outs := c.execStmt(s.Init, st)
			if len(outs) != 1 {
				return outs
			}
			st = outs[0]
		}
		c.scan(st, s.Assign, nil)
		return c.execClauses(s.Body, st)

	case *ast.SelectStmt:
		return c.execClauses(s.Body, st)

	case *ast.DeferStmt:
		// A deferred unpin is guaranteed at exit: treat it as released
		// from here on. A deferred closure is scanned the same way.
		if isUnpinCall(c.info, s.Call) {
			c.release(st, s.Call)
			return []pinState{st}
		}
		c.scan(st, s.Call, nil)
		return []pinState{st}

	case *ast.GoStmt:
		c.scan(st, s.Call, nil)
		return []pinState{st}

	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if method, isPin := classifyPin(c.info, call); isPin {
				c.pass.Reportf(call.Pos(),
					"frame pinned by %s is discarded and can never be unpinned", method)
				return []pinState{st}
			}
			if isTerminalCall(c.info, call) {
				c.scan(st, s, nil)
				return nil
			}
		}
		c.scan(st, s, nil)
		return []pinState{st}

	case *ast.BranchStmt:
		// break/continue/goto: drop the path rather than guess where it
		// lands — reporting here would fabricate leaks.
		return nil

	case *ast.LabeledStmt:
		return c.execStmt(s.Stmt, st)

	case *ast.DeclStmt:
		c.scan(st, s, nil)
		return []pinState{st}

	default:
		c.scan(st, stmt, nil)
		return []pinState{st}
	}
}

// execClauses runs each case/comm clause of a switch or select from the
// shared entry state; a missing default keeps the fall-past state live.
func (c *pinChecker) execClauses(body *ast.BlockStmt, st pinState) []pinState {
	var outs []pinState
	hasDefault := false
	for _, clause := range body.List {
		switch cl := clause.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				c.scan(st, e, nil)
			}
			outs = append(outs, c.exec(cl.Body, st.clone())...)
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				c.scan(st, cl.Comm, nil)
			}
			outs = append(outs, c.exec(cl.Body, st.clone())...)
		}
	}
	if !hasDefault {
		outs = append(outs, st)
	}
	return outs
}

// errNilCond matches `errVar != nil` / `errVar == nil` conditions and
// returns the comparison operator.
func errNilCond(info *types.Info, cond ast.Expr, errVar *types.Var) (token.Token, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return 0, false
	}
	isNil := func(e ast.Expr) bool {
		id, isIdent := ast.Unparen(e).(*ast.Ident)
		return isIdent && id.Name == "nil"
	}
	var v ast.Expr
	switch {
	case isNil(be.Y):
		v = be.X
	case isNil(be.X):
		v = be.Y
	default:
		return 0, false
	}
	if obj := objOf(info, v); obj != nil && obj == errVar {
		return be.Op, true
	}
	return 0, false
}

// isTerminalCall reports whether the call never returns (panic and the
// usual fatal helpers).
func isTerminalCall(info *types.Info, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isB := info.Uses[id].(*types.Builtin); isB && b.Name() == "panic" {
			return true
		}
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	switch fn.Name() {
	case "Fatal", "Fatalf", "Fatalln", "FailNow", "Exit", "Goexit", "Skip", "Skipf", "SkipNow":
		return true
	}
	return false
}
