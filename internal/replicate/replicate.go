// Package replicate implements the replication Extension Service of
// Figure 2: asynchronous log shipping from a primary to any number of
// replicas, replica apply with idempotence via LSN watermarks, lag
// inspection, and promotion — the mechanism behind "if a storage
// service exhibits reduced performance ... our architecture can use or
// adapt an alternative storage service to prevent system failures"
// (Section 4).
package replicate

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/storage"
	"repro/internal/wal"
)

// Replication errors.
var (
	// ErrNotPrimary is returned for primary-only operations on a
	// replica.
	ErrNotPrimary = errors.New("replicate: not primary")
	// ErrStopped is returned after Stop.
	ErrStopped = errors.New("replicate: stopped")
)

// Role of a replication node.
type Role int

// Roles.
const (
	RolePrimary Role = iota
	RoleReplica
)

// String implements fmt.Stringer.
func (r Role) String() string {
	if r == RolePrimary {
		return "primary"
	}
	return "replica"
}

// Replica is the receiving end of log shipping: it applies update
// records to its own page store, tracking the apply watermark.
type Replica struct {
	name  string
	store storage.PageStore

	mu      sync.Mutex
	applied wal.LSN
	count   int
	role    Role
}

// NewReplica creates a replica applying into store.
func NewReplica(name string, store storage.PageStore) *Replica {
	return &Replica{name: name, store: store, role: RoleReplica}
}

// Name returns the replica name.
func (r *Replica) Name() string { return r.name }

// Role returns the node role.
func (r *Replica) Role() Role {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.role
}

// Applied returns the apply watermark: all records with LSN below it
// have been applied.
func (r *Replica) Applied() wal.LSN {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}

// AppliedCount returns how many update records were applied.
func (r *Replica) AppliedCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Apply applies one shipped record. Records at or below the watermark
// are skipped (idempotent re-delivery).
func (r *Replica) Apply(rec *wal.Record) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if rec.LSN < r.applied {
		return nil
	}
	end := rec.End
	if end == 0 {
		end = rec.LSN + 1
	}
	if rec.Type == wal.RecUpdate {
		buf := make([]byte, storage.PageSize)
		// Grow the replica store to cover the page if needed.
		for storage.PageID(r.store.NumPages()) < rec.PageID {
			if _, err := r.store.Allocate(); err != nil {
				return err
			}
		}
		if err := r.store.ReadPage(rec.PageID, buf); err != nil {
			return err
		}
		p := storage.WrapPage(rec.PageID, buf)
		copy(p.Data[rec.Offset:int(rec.Offset)+len(rec.After)], rec.After)
		p.SetLSN(uint64(rec.LSN))
		if err := r.store.WritePage(rec.PageID, p.Data); err != nil {
			return err
		}
		r.count++
	}
	r.applied = end
	return nil
}

// Promote switches the replica to primary role (failover).
func (r *Replica) Promote() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.role = RolePrimary
}

// Shipper streams a primary's WAL to registered replicas. Shipping is
// pull-based and explicit (Ship drains new records); a background
// pusher can wrap Ship on a ticker.
type Shipper struct {
	log *wal.Log

	mu       sync.Mutex
	replicas []*Replica
	shipped  wal.LSN
	stopped  bool
}

// NewShipper creates a shipper reading from the primary's log.
func NewShipper(log *wal.Log) *Shipper {
	return &Shipper{log: log}
}

// Attach registers a replica.
func (s *Shipper) Attach(r *Replica) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.replicas = append(s.replicas, r)
}

// Detach removes a replica by name.
func (s *Shipper) Detach(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, r := range s.replicas {
		if r.name == name {
			s.replicas = append(s.replicas[:i], s.replicas[i+1:]...)
			return
		}
	}
}

// Replicas returns the attached replica names.
func (s *Shipper) Replicas() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.replicas))
	for i, r := range s.replicas {
		out[i] = r.name
	}
	return out
}

// Ship drains all durable records beyond the ship watermark to every
// replica, returning how many records were shipped.
func (s *Shipper) Ship() (int, error) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return 0, ErrStopped
	}
	from := s.shipped
	replicas := append([]*Replica(nil), s.replicas...)
	s.mu.Unlock()

	n := 0
	var end wal.LSN
	err := s.log.Iterate(from, func(rec *wal.Record) error {
		for _, r := range replicas {
			if err := r.Apply(rec); err != nil {
				return fmt.Errorf("replicate: applying to %s: %w", r.name, err)
			}
		}
		n++
		end = rec.End
		return nil
	})
	if err != nil {
		if errors.Is(err, wal.ErrSegmentGone) {
			// A checkpoint truncated the segment holding our resume
			// point (or records past it) while we were reading: the gap
			// is permanent, so tailing cannot continue. Both sentinels
			// stay matchable — ErrSegmentGone names the race,
			// ErrSnapshotNeeded names the cure.
			return n, fmt.Errorf("%w: %w", ErrSnapshotNeeded, err)
		}
		return n, err
	}
	if n > 0 {
		s.mu.Lock()
		if end > s.shipped {
			s.shipped = end
		}
		s.mu.Unlock()
	}
	return n, nil
}

// Lag returns how many bytes of durable log a replica has not applied.
func (s *Shipper) Lag(r *Replica) int64 {
	return int64(s.log.DurableBoundary()) - int64(r.Applied())
}

// Shipped returns the ship watermark: every record below it has been
// delivered to all replicas attached at ship time. Install it as the
// WAL's retention hook (wal.Log.SetRetention / DB.SetLogRetention) so
// checkpoint truncation never deletes segments this shipper still has
// to read — a lagging replica then resumes from its watermark instead
// of failing with ErrSegmentGone and resynchronising from scratch.
func (s *Shipper) Shipped() wal.LSN {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shipped
}

// Stop halts shipping.
func (s *Shipper) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stopped = true
}
