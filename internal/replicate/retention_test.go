package replicate

import (
	"errors"
	"testing"

	"repro/internal/storage"
	"repro/internal/wal"
)

// sinkStore is a PageStore that accepts writes to any page id (the
// replica side of synthetic log records).
type sinkStore struct {
	pages map[storage.PageID][]byte
	n     uint64
}

func newSinkStore() *sinkStore { return &sinkStore{pages: map[storage.PageID][]byte{}} }

func (s *sinkStore) Allocate() (storage.PageID, error) {
	s.n++
	return storage.PageID(s.n), nil
}
func (s *sinkStore) Deallocate(storage.PageID) error { return nil }
func (s *sinkStore) ReadPage(id storage.PageID, buf []byte) error {
	if p, ok := s.pages[id]; ok {
		copy(buf, p)
		return nil
	}
	for i := range buf {
		buf[i] = 0
	}
	return nil
}
func (s *sinkStore) WritePage(id storage.PageID, data []byte) error {
	s.pages[id] = append([]byte(nil), data...)
	return nil
}
func (s *sinkStore) NumPages() uint64 { return s.n }
func (s *sinkStore) Sync() error      { return nil }

// TestShipperSurvivesTruncationWithRetention: a lagging shipper whose
// Shipped watermark is installed as the WAL retention hook keeps its
// unread suffix across checkpoint truncation — it resumes and drains
// instead of failing with ErrSegmentGone. The control (no hook)
// reproduces the restart-from-scratch failure the ROADMAP describes.
func TestShipperSurvivesTruncationWithRetention(t *testing.T) {
	open := func() *wal.Log {
		l, err := wal.OpenDir(wal.NewMemSegmentDir(), 2*storage.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	fill := func(l *wal.Log, segs int) {
		payload := make([]byte, 512)
		for i := 0; l.SegmentCount() < segs && i < 10_000; i++ {
			if _, err := l.Append(&wal.Record{Txn: 1, Type: wal.RecUpdate, PageID: 3, After: payload}); err != nil {
				t.Fatal(err)
			}
			if err := l.Flush(l.NextLSN()); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Control: truncation without retention strands the shipper.
	l := open()
	fill(l, 2)
	s := NewShipper(l)
	r := NewReplica("r1", newSinkStore())
	s.Attach(r)
	if _, err := s.Ship(); err != nil {
		t.Fatal(err)
	}
	fill(l, 4)
	if _, err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ship(); !errors.Is(err, wal.ErrSegmentGone) {
		t.Fatalf("control shipper err = %v, want ErrSegmentGone", err)
	}

	// With the retention hook: same sequence, shipper survives.
	l2 := open()
	fill(l2, 2)
	s2 := NewShipper(l2)
	r2 := NewReplica("r2", newSinkStore())
	s2.Attach(r2)
	if _, err := s2.Ship(); err != nil {
		t.Fatal(err)
	}
	l2.SetRetention(s2.Shipped)
	fill(l2, 4)
	if _, err := l2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	n, err := s2.Ship()
	if err != nil {
		t.Fatalf("retained shipper: %v", err)
	}
	if n == 0 {
		t.Fatal("retained shipper shipped nothing")
	}
	// Once caught up, the next checkpoint reclaims the held segments.
	before := l2.SegmentCount()
	fill(l2, l2.SegmentCount()+1)
	if _, err := s2.Ship(); err != nil {
		t.Fatal(err)
	}
	if _, err := l2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := l2.SegmentCount(); got > before {
		t.Fatalf("segments not reclaimed after catch-up: %d -> %d", before, got)
	}
}
