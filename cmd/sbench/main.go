// Command sbench regenerates every experiment of EXPERIMENTS.md and
// prints the result tables. Run all experiments with no arguments, or
// select one with -exp (f1, f2, f5, f6, f7, g1, g2, g3, g4).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	sbdms "repro"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: f1|f2|f5|f6|f7|g1|g2|g3|g4|all")
	ops := flag.Int("ops", 20000, "operations per measurement")
	keys := flag.Int("keys", 2000, "key space size")
	flag.Parse()

	runners := map[string]func(int, int) error{
		"f1": runF1, "f2": runF2, "f5": runF5, "f6": runF6, "f7": runF7,
		"g1": runG1, "g2": runG2, "g3": runG3, "g4": runG4,
	}
	order := []string{"f1", "f2", "f5", "f6", "f7", "g1", "g2", "g3", "g4"}
	sel := strings.ToLower(*exp)
	if sel == "all" {
		for _, id := range order {
			if err := runners[id](*ops, *keys); err != nil {
				fmt.Fprintf(os.Stderr, "experiment %s: %v\n", id, err)
				os.Exit(1)
			}
		}
		return
	}
	r, ok := runners[sel]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", sel)
		os.Exit(2)
	}
	if err := r(*ops, *keys); err != nil {
		fmt.Fprintf(os.Stderr, "experiment %s: %v\n", sel, err)
		os.Exit(1)
	}
}

func header(title string) {
	fmt.Println()
	fmt.Println("=== " + title + " ===")
}

func measure(g sbdms.Granularity, binding core.Binding, bindName string, mix workload.Mix, keys, ops int) (sbdms.KVMeasurement, error) {
	db, err := sbdms.Open(sbdms.Options{
		Granularity:  g,
		BufferFrames: 512,
		Binding:      binding,
		DisableWAL:   true,
	})
	if err != nil {
		return sbdms.KVMeasurement{}, err
	}
	defer db.Close(context.Background())
	if err := sbdms.Preload(db, keys, 100); err != nil {
		return sbdms.KVMeasurement{}, err
	}
	gen := workload.NewKV(workload.KVConfig{Seed: 1, Keys: keys, Mix: mix, Zipfian: true})
	m := sbdms.MeasureKV(db, gen, ops)
	if bindName != "" {
		m.Binding = bindName
	}
	return m, nil
}

// runF1 reproduces Figure 1: the same engine as monolith, component
// system and service architecture.
func runF1(ops, keys int) error {
	header("F1 — Figure 1: architecture evolution (read-mostly zipfian KV)")
	for _, g := range []sbdms.Granularity{sbdms.Monolithic, sbdms.Coarse, sbdms.Layered} {
		label := map[sbdms.Granularity]string{
			sbdms.Monolithic: "monolithic DBMS",
			sbdms.Coarse:     "component DBMS (static service)",
			sbdms.Layered:    "service-based DBMS (late binding)",
		}[g]
		m, err := measure(g, nil, "", workload.MixB, keys, ops)
		if err != nil {
			return err
		}
		fmt.Printf("%-34s %s\n", label, m)
	}
	return nil
}

// runF2 reproduces Figure 2: SQL through all four layers.
func runF2(ops, keys int) error {
	header("F2 — Figure 2: layered composition, SQL through the Data Service")
	ctx := context.Background()
	db, err := sbdms.Open(sbdms.Options{Granularity: sbdms.Layered, DisableWAL: true})
	if err != nil {
		return err
	}
	defer db.Close(ctx)
	if _, err := db.Exec(ctx, "CREATE TABLE users (id INT, name TEXT, age INT)"); err != nil {
		return err
	}
	for _, row := range workload.UserRows(7, keys) {
		q := fmt.Sprintf("INSERT INTO users VALUES (%d, '%s', %d)", row[0].Int, row[1].Str, row[2].Int)
		if _, err := db.Exec(ctx, q); err != nil {
			return err
		}
	}
	if _, err := db.Exec(ctx, "CREATE INDEX idx_age ON users (age)"); err != nil {
		return err
	}
	queries := []string{
		"SELECT COUNT(*) FROM users",
		"SELECT COUNT(*) FROM users WHERE age = 30",
		"SELECT age, COUNT(*) AS n FROM users GROUP BY age ORDER BY n DESC LIMIT 3",
	}
	for _, q := range queries {
		start := time.Now()
		n := ops / 100
		if n < 1 {
			n = 1
		}
		var rows int
		for i := 0; i < n; i++ {
			res, err := db.Exec(ctx, q)
			if err != nil {
				return err
			}
			rows = len(res.Rows)
		}
		el := time.Since(start)
		fmt.Printf("%-72s %6d runs  %10.0f q/s  (%d rows)\n", q, n, float64(n)/el.Seconds(), rows)
	}
	return nil
}

func runScenario(name string, run func(context.Context, *sbdms.DB, int) (sbdms.ScenarioResult, error), ops int) error {
	ctx := context.Background()
	db, err := sbdms.Open(sbdms.Options{Granularity: sbdms.Coarse, DisableWAL: true})
	if err != nil {
		return err
	}
	defer db.Close(ctx)
	res, err := run(ctx, db, ops)
	if err != nil {
		return err
	}
	fmt.Println(res)
	fmt.Printf("  events: deployed=%d adaptorCreated=%d workflowSwitched=%d reconfigured=%d\n",
		res.Events[core.EventComponentDeployed], res.Events[core.EventAdaptorCreated],
		res.Events[core.EventWorkflowSwitched], res.Events[core.EventReconfigured])
	avail := float64(res.OpsBefore+res.OpsDuring+res.OpsAfter) /
		float64(res.OpsBefore+res.OpsDuring+res.OpsAfter+res.Failures) * 100
	fmt.Printf("  availability across the change: %.2f%%\n", avail)
	_ = name
	return nil
}

func runF5(ops, keys int) error {
	header("F5 — Figure 5: flexibility by extension (runtime service publication)")
	return runScenario("f5", sbdms.ScenarioExtension, ops/20)
}

func runF6(ops, keys int) error {
	header("F6 — Figure 6: flexibility by selection (release resources)")
	return runScenario("f6", sbdms.ScenarioSelection, ops/20)
}

func runF7(ops, keys int) error {
	header("F7 — Figure 7: flexibility by adaptation (adaptor generation)")
	return runScenario("f7", sbdms.ScenarioAdaptation, ops/20)
}

// runG1 is the headline granularity x binding sweep.
func runG1(ops, keys int) error {
	header("G1 — granularity x binding sweep (paper Section 5 future work)")
	for _, mix := range []struct {
		name string
		m    workload.Mix
	}{
		{"read-mostly (YCSB-B)", workload.MixB},
		{"update-heavy (YCSB-A)", workload.MixA},
	} {
		fmt.Printf("-- workload: %s, %d zipfian keys --\n", mix.name, keys)
		ms, err := sbdms.GranularitySweep(mix.m, keys, ops, 1)
		if err != nil {
			return err
		}
		for _, m := range ms {
			fmt.Println(m)
		}
	}
	return nil
}

// runG2 contrasts the full profile with a small-footprint profile.
func runG2(ops, keys int) error {
	header("G2 — embedded small-footprint profile (Section 4)")
	for _, cfg := range []struct {
		label  string
		frames int
		g      sbdms.Granularity
	}{
		{"full profile   (512 frames, layered)", 512, sbdms.Layered},
		{"small footprint (8 frames, coarse)  ", 8, sbdms.Coarse},
	} {
		db, err := sbdms.Open(sbdms.Options{
			Granularity: cfg.g, BufferFrames: cfg.frames, DisableWAL: true,
		})
		if err != nil {
			return err
		}
		if err := sbdms.Preload(db, keys, 100); err != nil {
			return err
		}
		gen := workload.NewKV(workload.KVConfig{Seed: 1, Keys: keys, Mix: workload.MixB, Zipfian: true})
		m := sbdms.MeasureKV(db, gen, ops)
		st := db.Pool().Stats()
		services := db.Kernel().Registry().Len()
		fmt.Printf("%s thr=%10.0f op/s p99=%-10v services=%d bufferHitRate=%.1f%%\n",
			cfg.label, m.OpsPerSec, m.P99, services, st.HitRate()*100)
		_ = db.Close(context.Background())
	}
	return nil
}

// runG3 measures client-proximity selection.
func runG3(ops, keys int) error {
	header("G3 — client-proximity selection (Section 4 distributed scenario)")
	ctx := context.Background()
	mkReg := func() *core.Registry {
		reg := core.NewRegistry(nil)
		mk := func(name, node string, delay time.Duration) {
			s := core.NewService(name, &core.Contract{
				Interface:  "g3.Store",
				Operations: []core.OpSpec{{Name: "get", In: "string", Out: "string"}},
			})
			s.Handle("get", func(ctx context.Context, req any) (any, error) {
				if delay > 0 {
					time.Sleep(delay)
				}
				return "v", nil
			})
			_ = s.Start(ctx)
			_ = reg.RegisterService(s, map[string]string{"node": node})
		}
		mk("a-far-store", "far", 300*time.Microsecond)
		mk("b-near-store", "near", 5*time.Microsecond)
		return reg
	}
	n := ops / 4
	for _, c := range []struct {
		label string
		sel   core.Selector
	}{
		{"without proximity selection (first provider)", nil},
		{"with proximity selection (node=near tag)    ", core.SelectByTag("node", "near", nil)},
	} {
		ref := core.NewRef(mkReg(), "g3.Store", c.sel)
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := ref.Invoke(ctx, "get", "k"); err != nil {
				return err
			}
		}
		el := time.Since(start)
		fmt.Printf("%s %6d calls  mean=%v\n", c.label, n, (el / time.Duration(n)).Round(time.Microsecond))
	}
	return nil
}

// runG4 is the call-path overhead ablation.
func runG4(ops, keys int) error {
	header("G4 — call-path overhead ablation (direct / cached ref / uncached ref / adaptor)")
	ctx := context.Background()
	svc := core.NewService("svc", &core.Contract{
		Interface:  "g4.Noop",
		Operations: []core.OpSpec{{Name: "noop", In: "nil", Out: "nil", Semantic: "g4.noop"}},
	})
	svc.Handle("noop", func(ctx context.Context, req any) (any, error) { return nil, nil })
	_ = svc.Start(ctx)
	reg := core.NewRegistry(nil)
	_ = reg.RegisterService(svc, nil)
	cached := core.NewRef(reg, "g4.Noop", nil)
	uncached := core.NewUncachedRef(reg, "g4.Noop", nil)
	required := &core.Contract{
		Interface:  "g4.Other",
		Operations: []core.OpSpec{{Name: "doIt", In: "nil", Out: "nil", Semantic: "g4.noop"}},
	}
	ad, err := core.GenerateAdaptor("ad", required, svc.Contract(), svc, core.NewRepository())
	if err != nil {
		return err
	}
	n := ops * 10
	paths := []struct {
		label string
		inv   core.Invoker
		op    string
	}{
		{"direct service call     ", svc, "noop"},
		{"cached late-bound ref   ", cached, "noop"},
		{"uncached late-bound ref ", uncached, "noop"},
		{"generated adaptor       ", ad, "doIt"},
	}
	for _, p := range paths {
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := p.inv.Invoke(ctx, p.op, nil); err != nil {
				return err
			}
		}
		el := time.Since(start)
		fmt.Printf("%s %8d calls  %7.1f ns/call\n", p.label, n, float64(el.Nanoseconds())/float64(n))
	}
	return nil
}
