package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// Selector chooses among multiple registrations providing the same
// interface. It is the policy half of flexibility by selection
// (Section 3.5): the architecture "can choose and use [workflows]
// according to specific requirements ... based on available resources
// or other criteria".
type Selector func(candidates []*Registration) *Registration

// SelectFirst picks the lexicographically first candidate; deterministic
// and cheap, the default strategy.
func SelectFirst(cands []*Registration) *Registration {
	if len(cands) == 0 {
		return nil
	}
	return cands[0]
}

// SelectLowestCost picks the candidate whose quality description
// advertises the lowest cost factor, breaking ties by latency class
// then name.
func SelectLowestCost(cands []*Registration) *Registration {
	var best *Registration
	for _, c := range cands {
		if best == nil || less(c, best) {
			best = c
		}
	}
	return best
}

func less(a, b *Registration) bool {
	qa, qb := a.Contract.Quality, b.Contract.Quality
	if qa.CostFactor != qb.CostFactor {
		return qa.CostFactor < qb.CostFactor
	}
	ra, rb := LatencyClassRank(qa.LatencyClass), LatencyClassRank(qb.LatencyClass)
	if ra != rb {
		return ra < rb
	}
	return a.Name < b.Name
}

// SelectHighestAvailability prefers the candidate advertising the
// highest availability, ties broken by cost.
func SelectHighestAvailability(cands []*Registration) *Registration {
	var best *Registration
	for _, c := range cands {
		if best == nil ||
			c.Contract.Quality.Availability > best.Contract.Quality.Availability ||
			(c.Contract.Quality.Availability == best.Contract.Quality.Availability && less(c, best)) {
			best = c
		}
	}
	return best
}

// SelectByTag prefers candidates whose tag matches the wanted value
// (e.g. node locality for the Section 4 distributed scenario), falling
// back to the next selector for ties or when no candidate matches.
func SelectByTag(key, value string, next Selector) Selector {
	if next == nil {
		next = SelectFirst
	}
	return func(cands []*Registration) *Registration {
		var matching []*Registration
		for _, c := range cands {
			if c.Tags[key] == value {
				matching = append(matching, c)
			}
		}
		if len(matching) > 0 {
			return next(matching)
		}
		return next(cands)
	}
}

// SelectAvoid excludes a named provider, then applies the next
// selector; coordinators use it to steer load away from services that
// requested resource release (Section 3.7, Figure 6).
func SelectAvoid(name string, next Selector) Selector {
	if next == nil {
		next = SelectFirst
	}
	return func(cands []*Registration) *Registration {
		var rest []*Registration
		for _, c := range cands {
			if c.Name != name {
				rest = append(rest, c)
			}
		}
		if len(rest) > 0 {
			return next(rest)
		}
		return next(cands)
	}
}

// Ref is a late-bound service reference: it resolves a provider of an
// interface through the registry at call time and caches the choice
// until the registry changes or the provider fails. Late binding is
// what makes the architecture reconfigurable (Section 3.3: "services
// are designed for late binding, which allows a high degree of
// flexibility and architecture reconfigurability").
type Ref struct {
	registry *Registry
	iface    string

	mu       sync.RWMutex
	selector Selector
	avoid    map[string]bool

	cached atomic.Pointer[Registration]
	// cacheEnabled=false forces a registry lookup on every call; the
	// G4 ablation benchmark measures the difference.
	cacheEnabled bool
	gen          atomic.Uint64 // bumped to invalidate the cache
}

// NewRef creates a late-bound reference to any provider of iface in the
// registry, using the given selector (nil means SelectFirst). The
// resolved provider is cached; Invalidate or registry events clear it.
func NewRef(registry *Registry, iface string, sel Selector) *Ref {
	if sel == nil {
		sel = SelectFirst
	}
	return &Ref{registry: registry, iface: iface, selector: sel, cacheEnabled: true, avoid: make(map[string]bool)}
}

// NewUncachedRef creates a reference that re-resolves through the
// registry on every invocation (pure late binding, no caching).
func NewUncachedRef(registry *Registry, iface string, sel Selector) *Ref {
	r := NewRef(registry, iface, sel)
	r.cacheEnabled = false
	return r
}

// Interface returns the required interface name.
func (r *Ref) Interface() string { return r.iface }

// SetSelector replaces the selection strategy and invalidates the
// cached resolution.
func (r *Ref) SetSelector(sel Selector) {
	if sel == nil {
		sel = SelectFirst
	}
	r.mu.Lock()
	r.selector = sel
	r.mu.Unlock()
	r.Invalidate()
}

// Avoid steers the reference away from a named provider (it will only
// be used when no alternative exists). Passing avoid=false removes the
// restriction.
func (r *Ref) Avoid(name string, avoid bool) {
	r.mu.Lock()
	if avoid {
		r.avoid[name] = true
	} else {
		delete(r.avoid, name)
	}
	r.mu.Unlock()
	r.Invalidate()
}

// Invalidate clears the cached provider; the next call re-resolves.
func (r *Ref) Invalidate() {
	r.gen.Add(1)
	r.cached.Store(nil)
}

// Resolve returns the currently selected provider, consulting the
// cache when enabled.
func (r *Ref) Resolve() (*Registration, error) {
	if r.cacheEnabled {
		if reg := r.cached.Load(); reg != nil {
			return reg, nil
		}
	}
	cands := r.registry.Discover(r.iface)
	r.mu.RLock()
	sel := r.selector
	if len(r.avoid) > 0 && len(cands) > 0 {
		var rest []*Registration
		for _, c := range cands {
			if !r.avoid[c.Name] {
				rest = append(rest, c)
			}
		}
		if len(rest) > 0 {
			cands = rest
		}
	}
	r.mu.RUnlock()
	reg := sel(cands)
	if reg == nil {
		return nil, fmt.Errorf("%w: no provider for interface %s", ErrNotFound, r.iface)
	}
	if r.cacheEnabled {
		r.cached.Store(reg)
	}
	return reg, nil
}

// Current returns the name of the cached provider, or "" when
// unresolved. It never triggers resolution.
func (r *Ref) Current() string {
	if reg := r.cached.Load(); reg != nil {
		return reg.Name
	}
	return ""
}

// Invoke implements Invoker: it resolves the provider and forwards the
// call. If the provider fails with ErrNotRunning (it stopped between
// resolution and call), the cache is invalidated and resolution retried
// once — the minimal self-healing required for coordinator-driven
// recomposition to be transparent to callers.
func (r *Ref) Invoke(ctx context.Context, op string, req any) (any, error) {
	reg, err := r.Resolve()
	if err != nil {
		return nil, err
	}
	resp, err := reg.Invoker.Invoke(ctx, op, req)
	if err != nil && isUnavailable(err) {
		r.Invalidate()
		reg2, err2 := r.Resolve()
		if err2 != nil || reg2.Name == reg.Name {
			return resp, err
		}
		return reg2.Invoker.Invoke(ctx, op, req)
	}
	return resp, err
}

func isUnavailable(err error) bool {
	for e := err; e != nil; {
		if e == ErrNotRunning {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}
