package monitor

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
)

func TestLatencyRecorderSummary(t *testing.T) {
	r := NewLatencyRecorder(100)
	if s := r.Summarize(); s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	s := r.Summarize()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P50 < 45*time.Millisecond || s.P50 > 55*time.Millisecond {
		t.Fatalf("p50 = %v", s.P50)
	}
	if s.P99 < 95*time.Millisecond {
		t.Fatalf("p99 = %v", s.P99)
	}
	if s.Max != 100*time.Millisecond {
		t.Fatalf("max = %v", s.Max)
	}
	if s.String() == "" {
		t.Fatal("String")
	}
}

func TestLatencyRecorderRingWraps(t *testing.T) {
	r := NewLatencyRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(time.Duration(i) * time.Second)
	}
	s := r.Summarize()
	if s.Count != 10 {
		t.Fatalf("count = %d", s.Count)
	}
	// Only the last 4 samples retained: 6,7,8,9s.
	if s.Max != 9*time.Second || s.P50 < 6*time.Second {
		t.Fatalf("window = %+v", s)
	}
	if NewLatencyRecorder(0) == nil {
		t.Fatal("default size")
	}
}

func TestObserveWrapsInvoker(t *testing.T) {
	r := NewLatencyRecorder(16)
	inv := r.Observe(core.InvokerFunc(func(ctx context.Context, op string, req any) (any, error) {
		time.Sleep(time.Millisecond)
		return "ok", nil
	}))
	out, err := inv.Invoke(context.Background(), "op", nil)
	if err != nil || out != "ok" {
		t.Fatal(err)
	}
	s := r.Summarize()
	if s.Count != 1 || s.Max < time.Millisecond {
		t.Fatalf("summary = %+v", s)
	}
}

func TestDeviceBatteryDrainAndAlert(t *testing.T) {
	var alerts []float64
	d := NewDevice(DeviceConfig{
		Name: "dev", BatteryCap: 10, OpCost: 1, LowWater: 0.3,
		OnLow: func(res string, frac float64) {
			if res != "battery" {
				t.Errorf("resource = %s", res)
			}
			alerts = append(alerts, frac)
		},
	})
	ok := 0
	for i := 0; i < 15; i++ {
		if d.DoOp() {
			ok++
		}
	}
	if ok != 10 {
		t.Fatalf("served %d ops on a 10-unit battery", ok)
	}
	if len(alerts) != 1 {
		t.Fatalf("alerts = %v (must fire once)", alerts)
	}
	if rem, capn := d.Battery(); rem != 0 || capn != 10 {
		t.Fatalf("battery = %v/%v", rem, capn)
	}
	d.Recharge()
	if rem, _ := d.Battery(); rem != 10 {
		t.Fatal("recharge failed")
	}
	if !d.DoOp() {
		t.Fatal("recharged device must serve")
	}
	if d.Ops() != 16 {
		t.Fatalf("ops = %d", d.Ops())
	}
}

func TestDeviceUnlimitedBattery(t *testing.T) {
	d := NewDevice(DeviceConfig{Name: "plugged"})
	for i := 0; i < 1000; i++ {
		if !d.DoOp() {
			t.Fatal("unlimited battery must never exhaust")
		}
	}
}

func TestDeviceMemoryBudget(t *testing.T) {
	d := NewDevice(DeviceConfig{Name: "dev", MemoryCap: 100})
	if !d.AllocMemory(60) || !d.AllocMemory(40) {
		t.Fatal("within budget must succeed")
	}
	if d.AllocMemory(1) {
		t.Fatal("over budget must fail")
	}
	d.FreeMemory(50)
	if !d.AllocMemory(50) {
		t.Fatal("freed memory must be reusable")
	}
	d.FreeMemory(1000)
	if !d.AllocMemory(100) {
		t.Fatal("over-free clamps to zero")
	}
}

func TestAssessQuality(t *testing.T) {
	stats := map[string]core.OpStats{
		"get": {Calls: 90, Errors: 0},
		"put": {Calls: 10, Errors: 5},
	}
	lat := Summary{P95: 2 * time.Millisecond}
	rep := Assess("svc", core.Quality{Availability: 0.99}, stats, lat)
	if rep.ObservedCalls != 100 || rep.ErrorRate != 0.05 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.MeetsAvailability {
		t.Fatal("5% errors cannot meet 99% availability")
	}
	rep = Assess("svc", core.Quality{Availability: 0.9}, stats, lat)
	if !rep.MeetsAvailability {
		t.Fatal("95% success meets 90% availability")
	}
	// No traffic: zero error rate, meets anything <= 1.
	rep = Assess("svc", core.Quality{Availability: 1}, nil, Summary{})
	if !rep.MeetsAvailability {
		t.Fatal("no traffic must not violate availability")
	}
	_ = errors.New
}
