package sql

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/catalog"
)

func TestViewOverView(t *testing.T) {
	e := newEngine(t)
	seedUsers(t, e)
	mustExec(t, e, "CREATE VIEW adults AS SELECT id, name, age FROM users WHERE age >= 30")
	mustExec(t, e, "CREATE VIEW elders AS SELECT name FROM adults WHERE age >= 35")
	r := mustExec(t, e, "SELECT name FROM elders")
	if len(r.Rows) != 1 || r.Rows[0][0].Str != "cay" {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestViewWithAggregation(t *testing.T) {
	e := newEngine(t)
	seedUsers(t, e)
	mustExec(t, e, "CREATE VIEW by_age AS SELECT age, COUNT(*) AS n FROM users WHERE age IS NOT NULL GROUP BY age")
	r := mustExec(t, e, "SELECT n FROM by_age WHERE age = 25")
	if len(r.Rows) != 1 || r.Rows[0][0].Int != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestNegativeNumbersAndExpressionsInInsert(t *testing.T) {
	e := newEngine(t)
	mustExec(t, e, "CREATE TABLE m (a INT, b FLOAT)")
	mustExec(t, e, "INSERT INTO m VALUES (-5, -2.5), (2 + 3, 1.5 * 2)")
	r := mustExec(t, e, "SELECT a, b FROM m ORDER BY a")
	if r.Rows[0][0].Int != -5 || r.Rows[0][1].Float != -2.5 {
		t.Fatalf("row0 = %v", r.Rows[0])
	}
	if r.Rows[1][0].Int != 5 || r.Rows[1][1].Float != 3.0 {
		t.Fatalf("row1 = %v", r.Rows[1])
	}
}

func TestUnknownTableAndColumnErrors(t *testing.T) {
	e := newEngine(t)
	seedUsers(t, e)
	ctx := context.Background()
	if _, err := e.Execute(ctx, "SELECT * FROM ghosts"); !errors.Is(err, catalog.ErrNoTable) {
		t.Fatalf("err = %v", err)
	}
	if _, err := e.Execute(ctx, "SELECT ghost_col FROM users"); err == nil {
		t.Fatal("unknown column must fail")
	}
	if _, err := e.Execute(ctx, "INSERT INTO users (ghost) VALUES (1)"); !errors.Is(err, catalog.ErrNoColumn) {
		t.Fatalf("err = %v", err)
	}
	if _, err := e.Execute(ctx, "UPDATE users SET ghost = 1"); !errors.Is(err, catalog.ErrNoColumn) {
		t.Fatalf("err = %v", err)
	}
	if _, err := e.Execute(ctx, "DELETE FROM ghosts"); !errors.Is(err, catalog.ErrNoTable) {
		t.Fatalf("err = %v", err)
	}
	if _, err := e.Execute(ctx, "CREATE INDEX i ON ghosts (x)"); !errors.Is(err, catalog.ErrNoTable) {
		t.Fatalf("err = %v", err)
	}
	if _, err := e.Execute(ctx, "DROP INDEX ghost_idx"); !errors.Is(err, catalog.ErrNoIndex) {
		t.Fatalf("err = %v", err)
	}
	if _, err := e.Execute(ctx, "HAVING is not a statement"); !errors.Is(err, ErrSyntax) {
		t.Fatalf("err = %v", err)
	}
}

func TestHavingWithoutAggregationRejected(t *testing.T) {
	e := newEngine(t)
	seedUsers(t, e)
	if _, err := e.Execute(context.Background(), "SELECT name FROM users HAVING age > 1"); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("err = %v", err)
	}
}

func TestGroupByExpression(t *testing.T) {
	e := newEngine(t)
	seedUsers(t, e)
	// Group by a computed bucket.
	r := mustExec(t, e, `SELECT age / 10, COUNT(*) AS n FROM users
		WHERE age IS NOT NULL GROUP BY age / 10 ORDER BY n DESC`)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Rows[0][1].Int != 3 { // ages 25,25,30 fall in buckets 2 and 3
		// Bucket 2 holds 25,25; bucket 3 holds 30,35: counts 2 and 2.
		// Accept either shape as long as total is 4.
		total := r.Rows[0][1].Int + r.Rows[1][1].Int
		if total != 4 {
			t.Fatalf("total = %d", total)
		}
	}
}

func TestIndexRangeBoundsWithResidual(t *testing.T) {
	e := newEngine(t)
	mustExec(t, e, "CREATE TABLE r (k INT, tag TEXT)")
	mustExec(t, e, "CREATE INDEX idx_k ON r (k)")
	for i := 0; i < 100; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO r VALUES (%d, 't%d')", i, i%2))
	}
	cases := []struct {
		q    string
		want int64
	}{
		{"SELECT COUNT(*) FROM r WHERE k < 10", 10},
		{"SELECT COUNT(*) FROM r WHERE k <= 10", 11},
		{"SELECT COUNT(*) FROM r WHERE k > 95", 4},
		{"SELECT COUNT(*) FROM r WHERE k >= 95", 5},
		{"SELECT COUNT(*) FROM r WHERE 50 = k", 1},              // reversed operands
		{"SELECT COUNT(*) FROM r WHERE k < 10 AND tag = 't1'", 5}, // residual filter
	}
	for _, c := range cases {
		r := mustExec(t, e, c.q)
		if r.Rows[0][0].Int != c.want {
			t.Errorf("%s = %d, want %d", c.q, r.Rows[0][0].Int, c.want)
		}
	}
}

func TestMultiRowInsertAffected(t *testing.T) {
	e := newEngine(t)
	mustExec(t, e, "CREATE TABLE t (a INT)")
	r := mustExec(t, e, "INSERT INTO t VALUES (1), (2), (3)")
	if r.Affected != 3 {
		t.Fatalf("affected = %d", r.Affected)
	}
	r = mustExec(t, e, "UPDATE t SET a = 0")
	if r.Affected != 3 {
		t.Fatalf("update affected = %d", r.Affected)
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	e := newEngine(t)
	r := mustExec(t, e, "SELECT 6 * 7 AS answer")
	if len(r.Rows) != 1 || r.Rows[0][0].Int != 42 || r.Cols[0] != "answer" {
		t.Fatalf("rows = %v cols = %v", r.Rows, r.Cols)
	}
}

func TestDistinctWithOrderAndLimit(t *testing.T) {
	e := newEngine(t)
	seedUsers(t, e)
	r := mustExec(t, e, "SELECT DISTINCT age FROM users WHERE age IS NOT NULL ORDER BY age DESC LIMIT 2")
	if len(r.Rows) != 2 || r.Rows[0][0].Int != 35 || r.Rows[1][0].Int != 30 {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestRollbackRestoresIndexes(t *testing.T) {
	e := newEngine(t)
	seedUsers(t, e)
	mustExec(t, e, "CREATE INDEX idx_age ON users (age)")
	mustExec(t, e, "BEGIN")
	mustExec(t, e, "UPDATE users SET age = 99 WHERE id = 1")
	mustExec(t, e, "ROLLBACK")
	// Both the heap (WAL before-images) and the index (abort
	// compensation callbacks) must roll back, so the indexed lookup
	// sees the original row.
	r := mustExec(t, e, "SELECT COUNT(*) FROM users WHERE age = 30")
	if r.Rows[0][0].Int != 1 {
		t.Fatalf("age=30 count = %d", r.Rows[0][0].Int)
	}
}
