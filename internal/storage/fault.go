package storage

import (
	"errors"
	"fmt"
	"sync"
)

// ErrInjectedCrash is returned by a FaultDevice for every access after
// its crash point has been reached.
var ErrInjectedCrash = errors.New("storage: injected crash")

// FaultDevice wraps a Device with crash-style fault injection: after a
// configured number of further writes the device "dies" — the crashing
// write is discarded (or torn, applying only a prefix), and every
// subsequent read and write fails with ErrInjectedCrash. The inner
// device then holds exactly the bytes a real disk would hold after a
// kill -9 at that write-back point, so tests can reopen it and drive
// recovery. It is the reusable crash-injection harness behind the
// crash-recovery suite.
type FaultDevice struct {
	mu      sync.Mutex
	inner   Device
	writes  uint64 // total WriteAt calls observed
	arm     int64  // writes still allowed; -1 = disarmed
	tear    int    // bytes of the crashing write to apply (0 = drop whole)
	crashed bool
	dropped uint64 // writes discarded after the crash
}

// NewFaultDevice wraps inner with fault injection, initially disarmed.
func NewFaultDevice(inner Device) *FaultDevice {
	return &FaultDevice{inner: inner, arm: -1}
}

// CrashAfterWrites arms the device: n more writes succeed, then the
// device crashes. With tearBytes > 0 the crashing write is torn — its
// first tearBytes bytes reach the inner device (a partial sector
// flush); with tearBytes == 0 it is dropped entirely.
func (d *FaultDevice) CrashAfterWrites(n int, tearBytes int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.arm = int64(n)
	d.tear = tearBytes
}

// Disarm cancels a pending crash (a crash that already happened is
// permanent).
func (d *FaultDevice) Disarm() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.arm = -1
}

// Crashed reports whether the crash point has been reached.
func (d *FaultDevice) Crashed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashed
}

// Writes returns the number of WriteAt calls observed before the crash.
func (d *FaultDevice) Writes() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writes
}

// Dropped returns the number of writes discarded at or after the crash.
func (d *FaultDevice) Dropped() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dropped
}

// Inner returns the wrapped device (reopen it to simulate a restart).
func (d *FaultDevice) Inner() Device { return d.inner }

// ReadAt implements io.ReaderAt; a crashed device fails every read.
func (d *FaultDevice) ReadAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	if d.crashed {
		d.mu.Unlock()
		return 0, ErrInjectedCrash
	}
	d.mu.Unlock()
	return d.inner.ReadAt(p, off)
}

// WriteAt implements io.WriterAt, counting writes and triggering the
// armed crash.
func (d *FaultDevice) WriteAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	if d.crashed {
		d.dropped++
		d.mu.Unlock()
		return 0, ErrInjectedCrash
	}
	if d.arm == 0 {
		// This write is the crash point.
		d.crashed = true
		d.dropped++
		tear := d.tear
		d.mu.Unlock()
		if tear > 0 {
			if tear > len(p) {
				tear = len(p)
			}
			if _, err := d.inner.WriteAt(p[:tear], off); err != nil {
				return 0, fmt.Errorf("storage: torn write: %w", err)
			}
		}
		return 0, ErrInjectedCrash
	}
	if d.arm > 0 {
		d.arm--
	}
	d.writes++
	d.mu.Unlock()
	return d.inner.WriteAt(p, off)
}

// Size implements Device.
func (d *FaultDevice) Size() (int64, error) {
	d.mu.Lock()
	if d.crashed {
		d.mu.Unlock()
		return 0, ErrInjectedCrash
	}
	d.mu.Unlock()
	return d.inner.Size()
}

// Truncate implements Device.
func (d *FaultDevice) Truncate(size int64) error {
	d.mu.Lock()
	if d.crashed {
		d.mu.Unlock()
		return ErrInjectedCrash
	}
	d.mu.Unlock()
	return d.inner.Truncate(size)
}

// Sync implements Device; syncing a crashed device fails.
func (d *FaultDevice) Sync() error {
	d.mu.Lock()
	if d.crashed {
		d.mu.Unlock()
		return ErrInjectedCrash
	}
	d.mu.Unlock()
	return d.inner.Sync()
}

// Close implements Device without closing the inner device, so tests
// can reopen it after the simulated crash.
func (d *FaultDevice) Close() error { return nil }
