package core
