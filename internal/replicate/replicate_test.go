package replicate

import (
	"testing"

	"repro/internal/access"
	"repro/internal/buffer"
	"repro/internal/storage"
	"repro/internal/wal"
)

// primaryStack builds a primary with WAL-logged heap.
func primaryStack(t *testing.T) (*access.HeapFile, *wal.Log, *buffer.Manager, *storage.DiskManager) {
	t.Helper()
	d, err := storage.OpenDisk(storage.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	pool := buffer.New(d, 32, buffer.NewLRU())
	fm, err := storage.OpenFileManager(pool)
	if err != nil {
		t.Fatal(err)
	}
	h, err := access.OpenHeap("data", fm, pool)
	if err != nil {
		t.Fatal(err)
	}
	l, err := wal.Open(storage.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	h.SetLog(l)
	pool.SetBeforeEvict(l.BeforeEvict())
	return h, l, pool, d
}

type testTxn struct {
	id   uint64
	last wal.LSN
}

func (x *testTxn) ID() uint64            { return x.id }
func (x *testTxn) LastLSN() wal.LSN      { return x.last }
func (x *testTxn) Record(r *wal.Record)  { x.last = r.LSN }

func TestLogShippingRoundTrip(t *testing.T) {
	h, l, pool, primaryDisk := primaryStack(t)
	replicaDisk, err := storage.OpenDisk(storage.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReplica("r1", replicaDisk)
	sh := NewShipper(l)
	sh.Attach(rep)

	tx := &testTxn{id: 1}
	rid, err := h.Insert(tx, []byte("replicated-record"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(l.NextLSN()); err != nil {
		t.Fatal(err)
	}
	n, err := sh.Ship()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || rep.AppliedCount() == 0 {
		t.Fatalf("shipped %d applied %d", n, rep.AppliedCount())
	}
	if sh.Lag(rep) != 0 {
		t.Fatalf("lag = %d", sh.Lag(rep))
	}
	// Re-shipping is a no-op (idempotent).
	n, err = sh.Ship()
	if err != nil || n != 0 {
		t.Fatalf("re-ship = %d, %v", n, err)
	}

	// Flush primary so both sides are comparable, then diff the page
	// containing the record.
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	pbuf := make([]byte, storage.PageSize)
	rbuf := make([]byte, storage.PageSize)
	if err := primaryDisk.ReadPage(rid.Page, pbuf); err != nil {
		t.Fatal(err)
	}
	if err := replicaDisk.ReadPage(rid.Page, rbuf); err != nil {
		t.Fatal(err)
	}
	pp, rp := storage.WrapPage(rid.Page, pbuf), storage.WrapPage(rid.Page, rbuf)
	if string(pp.Payload()) != string(rp.Payload()) {
		t.Fatal("replica payload differs from primary")
	}
}

func TestReplicaLagAndCatchUp(t *testing.T) {
	h, l, _, _ := primaryStack(t)
	replicaDisk, _ := storage.OpenDisk(storage.NewMemDevice())
	rep := NewReplica("r1", replicaDisk)
	sh := NewShipper(l)
	sh.Attach(rep)

	tx := &testTxn{id: 1}
	for i := 0; i < 20; i++ {
		if _, err := h.Insert(tx, []byte("record-payload-xxxxxxxxxxxxxxxx")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Flush(l.NextLSN()); err != nil {
		t.Fatal(err)
	}
	if sh.Lag(rep) <= 0 {
		t.Fatal("expected lag before shipping")
	}
	if _, err := sh.Ship(); err != nil {
		t.Fatal(err)
	}
	if sh.Lag(rep) != 0 {
		t.Fatalf("lag after ship = %d", sh.Lag(rep))
	}
}

func TestMultipleReplicasAndDetach(t *testing.T) {
	h, l, _, _ := primaryStack(t)
	d1, _ := storage.OpenDisk(storage.NewMemDevice())
	d2, _ := storage.OpenDisk(storage.NewMemDevice())
	r1 := NewReplica("r1", d1)
	r2 := NewReplica("r2", d2)
	sh := NewShipper(l)
	sh.Attach(r1)
	sh.Attach(r2)
	if got := sh.Replicas(); len(got) != 2 {
		t.Fatalf("replicas = %v", got)
	}
	tx := &testTxn{id: 1}
	if _, err := h.Insert(tx, []byte("x")); err != nil {
		t.Fatal(err)
	}
	_ = l.Flush(l.NextLSN())
	if _, err := sh.Ship(); err != nil {
		t.Fatal(err)
	}
	if r1.AppliedCount() != r2.AppliedCount() || r1.AppliedCount() == 0 {
		t.Fatalf("applied: %d vs %d", r1.AppliedCount(), r2.AppliedCount())
	}
	sh.Detach("r1")
	if got := sh.Replicas(); len(got) != 1 || got[0] != "r2" {
		t.Fatalf("after detach = %v", got)
	}
}

func TestPromotion(t *testing.T) {
	d, _ := storage.OpenDisk(storage.NewMemDevice())
	rep := NewReplica("r1", d)
	if rep.Role() != RoleReplica || rep.Role().String() != "replica" {
		t.Fatal("initial role")
	}
	rep.Promote()
	if rep.Role() != RolePrimary || rep.Role().String() != "primary" {
		t.Fatal("promotion failed")
	}
	if rep.Name() != "r1" {
		t.Fatal("name")
	}
}

func TestShipperStop(t *testing.T) {
	_, l, _, _ := primaryStack(t)
	sh := NewShipper(l)
	sh.Stop()
	if _, err := sh.Ship(); err == nil {
		t.Fatal("ship after stop must fail")
	}
}
