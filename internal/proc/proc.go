// Package proc implements the stored-procedure Extension Service of
// Figure 2: named Go procedures registered at runtime and invoked with
// typed rows, with per-procedure statistics. Procedures are how
// "existing application functionality" integrates directly into the
// data management architecture (Section 1).
package proc

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/access"
)

// Procedure errors.
var (
	// ErrNoProc is returned for unknown procedure names.
	ErrNoProc = errors.New("proc: no such procedure")
	// ErrExists is returned when registering a duplicate name.
	ErrExists = errors.New("proc: procedure exists")
)

// Procedure is a registered routine: rows in, rows out.
type Procedure func(ctx context.Context, args access.Row) ([]access.Row, error)

// Stats counts invocations of one procedure.
type Stats struct {
	Calls  uint64
	Errors uint64
}

type entry struct {
	fn     Procedure
	doc    string
	calls  atomic.Uint64
	errors atomic.Uint64
}

// Registry stores and invokes procedures; safe for concurrent use.
type Registry struct {
	mu    sync.RWMutex
	procs map[string]*entry
}

// NewRegistry creates an empty procedure registry.
func NewRegistry() *Registry {
	return &Registry{procs: make(map[string]*entry)}
}

// Register adds a procedure under a unique name.
func (r *Registry) Register(name, doc string, fn Procedure) error {
	if name == "" || fn == nil {
		return fmt.Errorf("proc: name and function required")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.procs[name]; ok {
		return fmt.Errorf("%w: %s", ErrExists, name)
	}
	r.procs[name] = &entry{fn: fn, doc: doc}
	return nil
}

// Unregister removes a procedure.
func (r *Registry) Unregister(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.procs[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNoProc, name)
	}
	delete(r.procs, name)
	return nil
}

// Call invokes a procedure.
func (r *Registry) Call(ctx context.Context, name string, args access.Row) ([]access.Row, error) {
	r.mu.RLock()
	e, ok := r.procs[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoProc, name)
	}
	e.calls.Add(1)
	out, err := e.fn(ctx, args)
	if err != nil {
		e.errors.Add(1)
	}
	return out, err
}

// Doc returns the documentation string of a procedure.
func (r *Registry) Doc(name string) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.procs[name]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNoProc, name)
	}
	return e.doc, nil
}

// List returns the sorted procedure names.
func (r *Registry) List() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.procs))
	for n := range r.procs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Stats returns invocation counters for a procedure.
func (r *Registry) Stats(name string) (Stats, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.procs[name]
	if !ok {
		return Stats{}, fmt.Errorf("%w: %s", ErrNoProc, name)
	}
	return Stats{Calls: e.calls.Load(), Errors: e.errors.Load()}, nil
}
