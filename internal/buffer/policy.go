// Package buffer implements the buffer manager service of the SBDMS
// storage layer (the Buffer Manager of Figures 5-7): a fixed pool of
// page frames over any storage.PageStore, with pin/unpin semantics,
// dirty-page write-back, pluggable replacement policies and a WAL hook
// so that dirty pages are never evicted ahead of their log records.
package buffer

import "container/list"

// Policy is a page replacement policy over frame indices. Policies are
// not safe for concurrent use; the manager serialises access. Distinct
// policies make "the same task done in different ways" concrete — the
// flexibility-by-selection ablation benchmarks swap them.
type Policy interface {
	// Name identifies the policy ("lru", "clock", "2q").
	Name() string
	// Inserted notifies that frame f now holds a freshly loaded page.
	Inserted(f int)
	// Touched notifies that frame f was accessed (pinned).
	Touched(f int)
	// Removed notifies that frame f was evicted or invalidated.
	Removed(f int)
	// Victim picks a frame to evict among frames for which evictable
	// returns true, or -1 when none qualifies.
	Victim(evictable func(int) bool) int
}

// lruPolicy evicts the least recently used frame.
type lruPolicy struct {
	order *list.List // front = most recent
	elem  map[int]*list.Element
}

// NewLRU creates a least-recently-used replacement policy.
func NewLRU() Policy {
	return &lruPolicy{order: list.New(), elem: make(map[int]*list.Element)}
}

func (p *lruPolicy) Name() string { return "lru" }

func (p *lruPolicy) Inserted(f int) {
	if e, ok := p.elem[f]; ok {
		p.order.MoveToFront(e)
		return
	}
	p.elem[f] = p.order.PushFront(f)
}

func (p *lruPolicy) Touched(f int) { p.Inserted(f) }

func (p *lruPolicy) Removed(f int) {
	if e, ok := p.elem[f]; ok {
		p.order.Remove(e)
		delete(p.elem, f)
	}
}

func (p *lruPolicy) Victim(evictable func(int) bool) int {
	for e := p.order.Back(); e != nil; e = e.Prev() {
		f := e.Value.(int)
		if evictable(f) {
			return f
		}
	}
	return -1
}

// clockPolicy is the classic second-chance clock.
type clockPolicy struct {
	frames []int // frame ids in ring order
	ref    map[int]bool
	pos    map[int]int // frame -> ring slot
	hand   int
}

// NewClock creates a second-chance (clock) replacement policy.
func NewClock() Policy {
	return &clockPolicy{ref: make(map[int]bool), pos: make(map[int]int)}
}

func (p *clockPolicy) Name() string { return "clock" }

func (p *clockPolicy) Inserted(f int) {
	if _, ok := p.pos[f]; !ok {
		p.pos[f] = len(p.frames)
		p.frames = append(p.frames, f)
	}
	p.ref[f] = true
}

func (p *clockPolicy) Touched(f int) { p.ref[f] = true }

func (p *clockPolicy) Removed(f int) {
	i, ok := p.pos[f]
	if !ok {
		return
	}
	last := len(p.frames) - 1
	p.frames[i] = p.frames[last]
	p.pos[p.frames[i]] = i
	p.frames = p.frames[:last]
	delete(p.pos, f)
	delete(p.ref, f)
	if p.hand > last {
		p.hand = 0
	}
}

func (p *clockPolicy) Victim(evictable func(int) bool) int {
	n := len(p.frames)
	if n == 0 {
		return -1
	}
	// Two full sweeps guarantee termination: the first clears reference
	// bits, the second must find any evictable frame.
	for i := 0; i < 2*n; i++ {
		if p.hand >= len(p.frames) {
			p.hand = 0
		}
		f := p.frames[p.hand]
		p.hand++
		if !evictable(f) {
			continue
		}
		if p.ref[f] {
			p.ref[f] = false
			continue
		}
		return f
	}
	return -1
}

// twoQPolicy is a simplified 2Q: newly inserted frames enter a FIFO
// probation queue (A1); a second access promotes them to the main LRU
// (Am). Victims come from A1 first, protecting the hot set from scans.
type twoQPolicy struct {
	a1     *list.List // FIFO, front = newest
	am     *list.List // LRU, front = most recent
	a1Elem map[int]*list.Element
	amElem map[int]*list.Element
}

// NewTwoQ creates a simplified 2Q replacement policy.
func NewTwoQ() Policy {
	return &twoQPolicy{
		a1: list.New(), am: list.New(),
		a1Elem: make(map[int]*list.Element),
		amElem: make(map[int]*list.Element),
	}
}

func (p *twoQPolicy) Name() string { return "2q" }

func (p *twoQPolicy) Inserted(f int) {
	if _, ok := p.a1Elem[f]; ok {
		return
	}
	if _, ok := p.amElem[f]; ok {
		return
	}
	p.a1Elem[f] = p.a1.PushFront(f)
}

func (p *twoQPolicy) Touched(f int) {
	if e, ok := p.amElem[f]; ok {
		p.am.MoveToFront(e)
		return
	}
	if e, ok := p.a1Elem[f]; ok {
		// Second access: promote to the main queue.
		p.a1.Remove(e)
		delete(p.a1Elem, f)
		p.amElem[f] = p.am.PushFront(f)
		return
	}
	p.amElem[f] = p.am.PushFront(f)
}

func (p *twoQPolicy) Removed(f int) {
	if e, ok := p.a1Elem[f]; ok {
		p.a1.Remove(e)
		delete(p.a1Elem, f)
	}
	if e, ok := p.amElem[f]; ok {
		p.am.Remove(e)
		delete(p.amElem, f)
	}
}

func (p *twoQPolicy) Victim(evictable func(int) bool) int {
	for e := p.a1.Back(); e != nil; e = e.Prev() {
		if f := e.Value.(int); evictable(f) {
			return f
		}
	}
	for e := p.am.Back(); e != nil; e = e.Prev() {
		if f := e.Value.(int); evictable(f) {
			return f
		}
	}
	return -1
}

// knownPolicy reports whether NewPolicy can construct the named policy
// (rather than falling back to LRU).
func knownPolicy(name string) bool {
	switch name {
	case "lru", "clock", "2q":
		return true
	}
	return false
}

// NewPolicy constructs a policy by name, defaulting to LRU for unknown
// names. Components use this to honour their "buffer.policy" property.
func NewPolicy(name string) Policy {
	switch name {
	case "clock":
		return NewClock()
	case "2q":
		return NewTwoQ()
	default:
		return NewLRU()
	}
}
