package access

import (
	"container/heap"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/buffer"
	"repro/internal/storage"
)

// ErrSorterFinished is returned when adding to a sorter after Sort.
var ErrSorterFinished = errors.New("access: sorter already finished")

// ExternalSorter sorts encoded records under a bounded memory budget:
// records accumulate in memory until the budget is exceeded, then spill
// as a sorted run into a temporary heap file; Sort k-way-merges the
// runs. It backs large ORDER BY and merge-join inputs that exceed RAM
// ("sorting of record sets", Section 3.1).
type ExternalSorter struct {
	fm     *storage.FileManager
	pool   *buffer.Manager
	budget int
	less   func(a, b []byte) bool

	cur      [][]byte
	curBytes int
	runs     []string
	seq      int
	finished bool
}

// NewExternalSorter creates a sorter spilling through fm/pool when more
// than budgetBytes of record data is buffered. less orders records.
func NewExternalSorter(fm *storage.FileManager, pool *buffer.Manager, budgetBytes int, less func(a, b []byte) bool) *ExternalSorter {
	if budgetBytes < storage.PageSize {
		budgetBytes = storage.PageSize
	}
	return &ExternalSorter{fm: fm, pool: pool, budget: budgetBytes, less: less}
}

// Add buffers one record (copied), spilling if the budget is exceeded.
func (s *ExternalSorter) Add(rec []byte) error {
	if s.finished {
		return ErrSorterFinished
	}
	cp := append([]byte(nil), rec...)
	s.cur = append(s.cur, cp)
	s.curBytes += len(cp)
	if s.curBytes >= s.budget {
		return s.spill()
	}
	return nil
}

func (s *ExternalSorter) spill() error {
	if len(s.cur) == 0 {
		return nil
	}
	sort.SliceStable(s.cur, func(i, j int) bool { return s.less(s.cur[i], s.cur[j]) })
	name := fmt.Sprintf("__sortrun_%p_%d__", s, s.seq)
	s.seq++
	h, err := OpenHeap(name, s.fm, s.pool)
	if err != nil {
		return err
	}
	for _, rec := range s.cur {
		if _, err := h.Insert(nil, rec); err != nil {
			return err
		}
	}
	s.runs = append(s.runs, name)
	s.cur = s.cur[:0]
	s.curBytes = 0
	return nil
}

// SpilledRuns reports how many runs went to disk (diagnostics/tests).
func (s *ExternalSorter) SpilledRuns() int { return len(s.runs) }

// SortedIterator yields records in order; Close releases temporary
// runs.
type SortedIterator struct {
	s    *ExternalSorter
	mem  [][]byte
	mpos int
	h    mergeHeap
}

// run streams one spilled run in stored (sorted) order.
type runCursor struct {
	heap *HeapFile
	rids []RID
	pos  int
	head []byte
}

type mergeHeap struct {
	cursors []*runCursor
	less    func(a, b []byte) bool
}

func (m *mergeHeap) Len() int { return len(m.cursors) }
func (m *mergeHeap) Less(i, j int) bool {
	return m.less(m.cursors[i].head, m.cursors[j].head)
}
func (m *mergeHeap) Swap(i, j int) { m.cursors[i], m.cursors[j] = m.cursors[j], m.cursors[i] }
func (m *mergeHeap) Push(x any)    { m.cursors = append(m.cursors, x.(*runCursor)) }
func (m *mergeHeap) Pop() any {
	last := m.cursors[len(m.cursors)-1]
	m.cursors = m.cursors[:len(m.cursors)-1]
	return last
}

// Sort finalises the input and returns an iterator over all records in
// order. The sorter cannot be reused afterwards.
func (s *ExternalSorter) Sort() (*SortedIterator, error) {
	if s.finished {
		return nil, ErrSorterFinished
	}
	s.finished = true
	it := &SortedIterator{s: s}
	if len(s.runs) == 0 {
		// Everything fit in memory.
		sort.SliceStable(s.cur, func(i, j int) bool { return s.less(s.cur[i], s.cur[j]) })
		it.mem = s.cur
		return it, nil
	}
	// Final partial run spills too, then k-way merge.
	if err := s.spill(); err != nil {
		return nil, err
	}
	it.h = mergeHeap{less: s.less}
	for _, name := range s.runs {
		h, err := OpenHeap(name, s.fm, s.pool)
		if err != nil {
			return nil, err
		}
		c := &runCursor{heap: h}
		err = h.Scan(func(rid RID, rec []byte) error {
			c.rids = append(c.rids, rid)
			return nil
		})
		if err != nil {
			return nil, err
		}
		if err := c.advance(); err != nil {
			return nil, err
		}
		if c.head != nil {
			it.h.cursors = append(it.h.cursors, c)
		}
	}
	heap.Init(&it.h)
	return it, nil
}

func (c *runCursor) advance() error {
	if c.pos >= len(c.rids) {
		c.head = nil
		return nil
	}
	rec, err := c.heap.Get(c.rids[c.pos])
	if err != nil {
		return err
	}
	c.pos++
	c.head = rec
	return nil
}

// Next returns the next record in order, or io.EOF.
func (it *SortedIterator) Next() ([]byte, error) {
	if it.mem != nil {
		if it.mpos >= len(it.mem) {
			return nil, io.EOF
		}
		rec := it.mem[it.mpos]
		it.mpos++
		return rec, nil
	}
	if it.h.Len() == 0 {
		return nil, io.EOF
	}
	top := it.h.cursors[0]
	rec := top.head
	if err := top.advance(); err != nil {
		return nil, err
	}
	if top.head == nil {
		heap.Pop(&it.h)
	} else {
		heap.Fix(&it.h, 0)
	}
	return rec, nil
}

// Close drops the temporary run files.
func (it *SortedIterator) Close() error {
	var firstErr error
	for _, name := range it.s.runs {
		if it.s.fm.Exists(name) {
			if err := it.s.fm.Drop(name); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	it.s.runs = nil
	return firstErr
}

// RowLess builds a record comparator ordering encoded rows by the given
// column, for use with ExternalSorter over EncodeRow output.
func RowLess(col int, desc bool) func(a, b []byte) bool {
	return func(a, b []byte) bool {
		ra, erra := DecodeRow(a)
		rb, errb := DecodeRow(b)
		if erra != nil || errb != nil || col >= len(ra) || col >= len(rb) {
			return false
		}
		c, err := Compare(ra[col], rb[col])
		if err != nil {
			return false
		}
		if desc {
			return c > 0
		}
		return c < 0
	}
}
