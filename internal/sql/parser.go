package sql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/access"
	"repro/internal/exec"
)

// Parse parses a single SQL statement.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(tkPunct, ";")
	if !p.at(tkEOF, "") {
		return nil, p.errf("trailing input %q", p.cur().text)
	}
	return st, nil
}

type parser struct {
	src  string
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	if t.kind != kind {
		return false
	}
	if text == "" {
		return true
	}
	if kind == tkIdent {
		return strings.EqualFold(t.text, text)
	}
	return t.text == text
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return token{}, p.errf("expected %s, found %q", want, p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("%w: %s (at offset %d)", ErrSyntax, fmt.Sprintf(format, args...), p.cur().pos)
}

func (p *parser) keyword() string { return strings.ToUpper(p.cur().text) }

func (p *parser) parseStatement() (Statement, error) {
	if p.cur().kind != tkIdent {
		return nil, p.errf("expected statement keyword, found %q", p.cur().text)
	}
	switch p.keyword() {
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "SELECT":
		return p.parseSelect()
	case "BEGIN":
		p.next()
		return &Begin{}, nil
	case "COMMIT":
		p.next()
		return &Commit{}, nil
	case "ROLLBACK":
		p.next()
		return &Rollback{}, nil
	}
	return nil, p.errf("unknown statement %q", p.cur().text)
}

func (p *parser) parseIdent() (string, error) {
	t, err := p.expect(tkIdent, "")
	if err != nil {
		return "", err
	}
	return t.text, nil
}

func (p *parser) parseCreate() (Statement, error) {
	p.next() // CREATE
	unique := false
	if p.accept(tkIdent, "UNIQUE") {
		unique = true
	}
	switch p.keyword() {
	case "TABLE":
		if unique {
			return nil, p.errf("UNIQUE applies to indexes")
		}
		return p.parseCreateTable()
	case "INDEX":
		return p.parseCreateIndex(unique)
	case "VIEW":
		if unique {
			return nil, p.errf("UNIQUE applies to indexes")
		}
		return p.parseCreateView()
	}
	return nil, p.errf("expected TABLE, INDEX or VIEW")
}

func (p *parser) parseCreateTable() (Statement, error) {
	p.next() // TABLE
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkPunct, "("); err != nil {
		return nil, err
	}
	var cols []ColumnDef
	for {
		cname, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		tname, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		col := ColumnDef{Name: cname, TypeName: tname}
		if p.accept(tkIdent, "NOT") {
			if _, err := p.expect(tkIdent, "NULL"); err != nil {
				return nil, err
			}
			col.NotNull = true
		}
		cols = append(cols, col)
		if p.accept(tkPunct, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tkPunct, ")"); err != nil {
		return nil, err
	}
	return &CreateTable{Name: name, Columns: cols}, nil
}

func (p *parser) parseCreateIndex(unique bool) (Statement, error) {
	p.next() // INDEX
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkIdent, "ON"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkPunct, "("); err != nil {
		return nil, err
	}
	column, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkPunct, ")"); err != nil {
		return nil, err
	}
	return &CreateIndex{Name: name, Table: table, Column: column, Unique: unique}, nil
}

func (p *parser) parseCreateView() (Statement, error) {
	p.next() // VIEW
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkIdent, "AS"); err != nil {
		return nil, err
	}
	// The view body is the raw remainder; validate it parses as SELECT.
	start := p.cur().pos
	if _, err := p.parseSelect(); err != nil {
		return nil, err
	}
	query := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(p.src[start:]), ";"))
	return &CreateView{Name: name, Query: query}, nil
}

func (p *parser) parseDrop() (Statement, error) {
	p.next() // DROP
	kind := p.keyword()
	switch kind {
	case "TABLE", "INDEX", "VIEW":
		p.next()
	default:
		return nil, p.errf("expected TABLE, INDEX or VIEW")
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	return &Drop{Kind: kind, Name: name}, nil
}

func (p *parser) parseInsert() (Statement, error) {
	p.next() // INSERT
	if _, err := p.expect(tkIdent, "INTO"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	var cols []string
	if p.accept(tkPunct, "(") {
		for {
			c, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			cols = append(cols, c)
			if p.accept(tkPunct, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tkPunct, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tkIdent, "VALUES"); err != nil {
		return nil, err
	}
	var rows [][]exec.Expr
	for {
		if _, err := p.expect(tkPunct, "("); err != nil {
			return nil, err
		}
		var row []exec.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.accept(tkPunct, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tkPunct, ")"); err != nil {
			return nil, err
		}
		rows = append(rows, row)
		if p.accept(tkPunct, ",") {
			continue
		}
		break
	}
	return &Insert{Table: table, Columns: cols, Rows: rows}, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	p.next() // UPDATE
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkIdent, "SET"); err != nil {
		return nil, err
	}
	var sets []SetClause
	for {
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkPunct, "="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sets = append(sets, SetClause{Column: col, Value: val})
		if p.accept(tkPunct, ",") {
			continue
		}
		break
	}
	var where exec.Expr
	if p.accept(tkIdent, "WHERE") {
		if where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return &Update{Table: table, Sets: sets, Where: where}, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.next() // DELETE
	if _, err := p.expect(tkIdent, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	var where exec.Expr
	if p.accept(tkIdent, "WHERE") {
		if where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return &Delete{Table: table, Where: where}, nil
}

func (p *parser) parseSelect() (*Select, error) {
	if _, err := p.expect(tkIdent, "SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{Limit: -1}
	if p.accept(tkIdent, "DISTINCT") {
		sel.Distinct = true
	}
	// Select list.
	for {
		if p.accept(tkPunct, "*") {
			sel.Items = append(sel.Items, SelectItem{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.accept(tkIdent, "AS") {
				alias, err := p.parseIdent()
				if err != nil {
					return nil, err
				}
				item.Alias = alias
			} else if p.cur().kind == tkIdent && !p.atReserved() {
				item.Alias = p.next().text
			}
			sel.Items = append(sel.Items, item)
		}
		if p.accept(tkPunct, ",") {
			continue
		}
		break
	}
	// FROM
	if p.accept(tkIdent, "FROM") {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		sel.From = append(sel.From, ref)
		for {
			if p.accept(tkIdent, "JOIN") {
				r, err := p.parseTableRef()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tkIdent, "ON"); err != nil {
					return nil, err
				}
				if r.JoinOn, err = p.parseExpr(); err != nil {
					return nil, err
				}
				sel.From = append(sel.From, r)
				continue
			}
			if p.accept(tkPunct, ",") {
				r, err := p.parseTableRef()
				if err != nil {
					return nil, err
				}
				sel.From = append(sel.From, r) // cross join
				continue
			}
			break
		}
	}
	var err error
	if p.accept(tkIdent, "WHERE") {
		if sel.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if p.accept(tkIdent, "GROUP") {
		if _, err := p.expect(tkIdent, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if p.accept(tkPunct, ",") {
				continue
			}
			break
		}
	}
	if p.accept(tkIdent, "HAVING") {
		if sel.Having, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if p.accept(tkIdent, "ORDER") {
		if _, err := p.expect(tkIdent, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(tkIdent, "DESC") {
				item.Desc = true
			} else {
				p.accept(tkIdent, "ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if p.accept(tkPunct, ",") {
				continue
			}
			break
		}
	}
	if p.accept(tkIdent, "LIMIT") {
		n, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		sel.Limit = n
	}
	if p.accept(tkIdent, "OFFSET") {
		n, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		sel.Offset = n
	}
	return sel, nil
}

func (p *parser) parseInt() (int64, error) {
	t, err := p.expect(tkNumber, "")
	if err != nil {
		return 0, err
	}
	n, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return 0, p.errf("bad integer %q", t.text)
	}
	return n, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.parseIdent()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name}
	if p.accept(tkIdent, "AS") {
		if ref.Alias, err = p.parseIdent(); err != nil {
			return TableRef{}, err
		}
	} else if p.cur().kind == tkIdent && !p.atReserved() {
		ref.Alias = p.next().text
	}
	return ref, nil
}

// reserved words that end an implicit alias position.
var reserved = map[string]bool{
	"FROM": true, "WHERE": true, "GROUP": true, "HAVING": true, "ORDER": true,
	"LIMIT": true, "OFFSET": true, "JOIN": true, "ON": true, "AS": true,
	"AND": true, "OR": true, "NOT": true, "IS": true, "NULL": true,
	"ASC": true, "DESC": true, "DISTINCT": true, "SELECT": true, "BY": true,
	"VALUES": true, "SET": true, "INTO": true, "UNION": true,
}

func (p *parser) atReserved() bool {
	return p.cur().kind == tkIdent && reserved[strings.ToUpper(p.cur().text)]
}

// --- expressions, precedence climbing ---

func (p *parser) parseExpr() (exec.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (exec.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tkIdent, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = exec.Logic{Op: exec.OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (exec.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tkIdent, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = exec.Logic{Op: exec.OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (exec.Expr, error) {
	if p.accept(tkIdent, "NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return exec.Not{E: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (exec.Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.accept(tkIdent, "IS") {
		neg := p.accept(tkIdent, "NOT")
		if _, err := p.expect(tkIdent, "NULL"); err != nil {
			return nil, err
		}
		return exec.IsNull{E: l, Neg: neg}, nil
	}
	for _, op := range []string{"=", "!=", "<=", ">=", "<", ">"} {
		if p.accept(tkPunct, op) {
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return exec.Cmp{Op: exec.CmpOp(op), L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdditive() (exec.Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tkPunct, "+"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = exec.Arith{Op: exec.OpAdd, L: l, R: r}
		case p.accept(tkPunct, "-"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = exec.Arith{Op: exec.OpSub, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMultiplicative() (exec.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tkPunct, "*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = exec.Arith{Op: exec.OpMul, L: l, R: r}
		case p.accept(tkPunct, "/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = exec.Arith{Op: exec.OpDiv, L: l, R: r}
		case p.accept(tkPunct, "%"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = exec.Arith{Op: exec.OpMod, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (exec.Expr, error) {
	if p.accept(tkPunct, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return exec.Arith{Op: exec.OpSub, L: exec.Lit{V: access.NewInt(0)}, R: e}, nil
	}
	return p.parsePrimary()
}

var aggFuncs = map[string]exec.AggFunc{
	"COUNT": exec.AggCount, "SUM": exec.AggSum, "AVG": exec.AggAvg,
	"MIN": exec.AggMin, "MAX": exec.AggMax,
}

func (p *parser) parsePrimary() (exec.Expr, error) {
	t := p.cur()
	switch t.kind {
	case tkNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return exec.Lit{V: access.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return exec.Lit{V: access.NewInt(n)}, nil
	case tkString:
		p.next()
		return exec.Lit{V: access.NewString(t.text)}, nil
	case tkPunct:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tkPunct, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tkIdent:
		upper := strings.ToUpper(t.text)
		switch upper {
		case "NULL":
			p.next()
			return exec.Lit{V: access.Null()}, nil
		case "TRUE":
			p.next()
			return exec.Lit{V: access.NewBool(true)}, nil
		case "FALSE":
			p.next()
			return exec.Lit{V: access.NewBool(false)}, nil
		}
		if fn, ok := aggFuncs[upper]; ok && p.toks[p.pos+1].kind == tkPunct && p.toks[p.pos+1].text == "(" {
			p.next() // func name
			p.next() // (
			var arg exec.Expr
			if p.accept(tkPunct, "*") {
				if fn != exec.AggCount {
					return nil, p.errf("%s(*) is only valid for COUNT", fn)
				}
			} else {
				var err error
				if arg, err = p.parseExpr(); err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(tkPunct, ")"); err != nil {
				return nil, err
			}
			return AggCall{Func: fn, Arg: arg}, nil
		}
		// Column reference, possibly qualified. Reserved words cannot
		// start an expression.
		if reserved[upper] {
			return nil, p.errf("unexpected keyword %q", t.text)
		}
		p.next()
		name := t.text
		if p.accept(tkPunct, ".") {
			part, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			name = name + "." + part
		}
		return exec.Col{Name: name}, nil
	}
	return nil, p.errf("unexpected token %q", t.text)
}
