package sql

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/access"
	"repro/internal/catalog"
	"repro/internal/exec"
)

// Planner errors.
var (
	// ErrBadQuery is returned for semantically invalid queries.
	ErrBadQuery = errors.New("sql: invalid query")
)

// planSelect turns a SELECT AST into an operator tree:
//
//	scan/index-scan -> joins -> filter -> aggregate -> having
//	   -> (sort) -> project -> distinct -> (sort) -> limit
//
// The sort runs before projection when its expressions resolve against
// the input schema, after it otherwise (so aliases are orderable).
func (e *Engine) planSelect(ctx context.Context, s *Select) (exec.Operator, error) {
	if len(s.Items) == 0 {
		return nil, fmt.Errorf("%w: empty select list", ErrBadQuery)
	}
	var op exec.Operator
	if len(s.From) == 0 {
		// SELECT without FROM: one synthetic row.
		op = &exec.Values{Cols: []string{}, Rows: []access.Row{{}}}
	} else {
		var err error
		op, err = e.planFrom(ctx, s)
		if err != nil {
			return nil, err
		}
	}
	if s.Where != nil {
		op = &exec.Filter{In: op, Pred: s.Where}
	}

	aggSpecs, rewrittenItems, rewrittenHaving, hasAggs, err := extractAggregates(s)
	if err != nil {
		return nil, err
	}
	if hasAggs || len(s.GroupBy) > 0 {
		groupAs := make([]string, len(s.GroupBy))
		for i, g := range s.GroupBy {
			groupAs[i] = groupColName(g)
		}
		op = &exec.HashAggregate{In: op, GroupBy: s.GroupBy, GroupAs: groupAs, Aggs: aggSpecs}
		if rewrittenHaving != nil {
			op = &exec.Filter{In: op, Pred: rewrittenHaving}
		}
		// Select items textually matching a GROUP BY expression become
		// references to the aggregate's group column (so expression
		// groups like `age / 10` are projectable).
		for i := range rewrittenItems {
			if rewrittenItems[i].Star || rewrittenItems[i].Expr == nil {
				continue
			}
			rewrittenItems[i].Expr = rewriteGroupRefs(rewrittenItems[i].Expr, s.GroupBy, groupAs)
		}
	} else if s.Having != nil {
		return nil, fmt.Errorf("%w: HAVING without aggregation", ErrBadQuery)
	}

	// Projection.
	exprs, aliases, err := projection(op.Columns(), rewrittenItems)
	if err != nil {
		return nil, err
	}

	// Decide sort placement.
	preSort := len(s.OrderBy) > 0 && orderResolves(s.OrderBy, op.Columns())
	if preSort {
		op = &exec.Sort{In: op, Keys: orderKeys(s.OrderBy)}
	}
	op = &exec.Project{In: op, Exprs: exprs, Aliases: aliases}
	if s.Distinct {
		op = &exec.Distinct{In: op}
	}
	if len(s.OrderBy) > 0 && !preSort {
		if !orderResolves(s.OrderBy, op.Columns()) {
			return nil, fmt.Errorf("%w: ORDER BY references unknown columns", ErrBadQuery)
		}
		op = &exec.Sort{In: op, Keys: orderKeys(s.OrderBy)}
	}
	if s.Limit >= 0 || s.Offset > 0 {
		n := s.Limit
		if n < 0 {
			n = -1
		}
		op = &exec.Limit{In: op, N: n, Offset: s.Offset}
	}
	return op, nil
}

func orderKeys(items []OrderItem) []exec.SortKey {
	keys := make([]exec.SortKey, len(items))
	for i, o := range items {
		keys[i] = exec.SortKey{E: o.Expr, Desc: o.Desc}
	}
	return keys
}

// orderResolves reports whether every column referenced by the order
// expressions exists in cols.
func orderResolves(items []OrderItem, cols []string) bool {
	for _, o := range items {
		if !exprResolves(o.Expr, cols) {
			return false
		}
	}
	return true
}

func exprResolves(ex exec.Expr, cols []string) bool {
	switch t := ex.(type) {
	case exec.Col:
		_, err := exec.ColumnIndex(cols, t.Name)
		return err == nil
	case exec.Lit:
		return true
	case exec.Cmp:
		return exprResolves(t.L, cols) && exprResolves(t.R, cols)
	case exec.Logic:
		return exprResolves(t.L, cols) && exprResolves(t.R, cols)
	case exec.Not:
		return exprResolves(t.E, cols)
	case exec.IsNull:
		return exprResolves(t.E, cols)
	case exec.Arith:
		return exprResolves(t.L, cols) && exprResolves(t.R, cols)
	case AggCall:
		return false
	default:
		return false
	}
}

// rewriteGroupRefs replaces sub-expressions that textually match a
// GROUP BY expression with a reference to the corresponding aggregate
// output column.
func rewriteGroupRefs(ex exec.Expr, groups []exec.Expr, groupAs []string) exec.Expr {
	for i, g := range groups {
		if ex.String() == g.String() {
			return exec.Col{Name: groupAs[i]}
		}
	}
	switch t := ex.(type) {
	case exec.Cmp:
		return exec.Cmp{Op: t.Op, L: rewriteGroupRefs(t.L, groups, groupAs), R: rewriteGroupRefs(t.R, groups, groupAs)}
	case exec.Logic:
		return exec.Logic{Op: t.Op, L: rewriteGroupRefs(t.L, groups, groupAs), R: rewriteGroupRefs(t.R, groups, groupAs)}
	case exec.Not:
		return exec.Not{E: rewriteGroupRefs(t.E, groups, groupAs)}
	case exec.IsNull:
		return exec.IsNull{E: rewriteGroupRefs(t.E, groups, groupAs), Neg: t.Neg}
	case exec.Arith:
		return exec.Arith{Op: t.Op, L: rewriteGroupRefs(t.L, groups, groupAs), R: rewriteGroupRefs(t.R, groups, groupAs)}
	default:
		return ex
	}
}

// groupColName labels a GROUP BY expression in the aggregate output.
func groupColName(g exec.Expr) string {
	if c, ok := g.(exec.Col); ok {
		return c.Name
	}
	return g.String()
}

// extractAggregates walks the select items and HAVING clause, replacing
// AggCall nodes with column references into the aggregate output and
// collecting the aggregate specs.
func extractAggregates(s *Select) ([]exec.AggSpec, []SelectItem, exec.Expr, bool, error) {
	var specs []exec.AggSpec
	found := false
	name := func(a AggCall) string {
		for i, sp := range specs {
			if sp.As != "" && specsEqual(sp, a) {
				return specs[i].As
			}
		}
		n := fmt.Sprintf("agg%d:%s", len(specs), a.String())
		specs = append(specs, exec.AggSpec{Func: a.Func, Arg: a.Arg, As: n})
		return n
	}
	var rewrite func(ex exec.Expr) exec.Expr
	rewrite = func(ex exec.Expr) exec.Expr {
		switch t := ex.(type) {
		case AggCall:
			found = true
			return exec.Col{Name: name(t)}
		case exec.Cmp:
			return exec.Cmp{Op: t.Op, L: rewrite(t.L), R: rewrite(t.R)}
		case exec.Logic:
			return exec.Logic{Op: t.Op, L: rewrite(t.L), R: rewrite(t.R)}
		case exec.Not:
			return exec.Not{E: rewrite(t.E)}
		case exec.IsNull:
			return exec.IsNull{E: rewrite(t.E), Neg: t.Neg}
		case exec.Arith:
			return exec.Arith{Op: t.Op, L: rewrite(t.L), R: rewrite(t.R)}
		default:
			return ex
		}
	}
	items := make([]SelectItem, len(s.Items))
	for i, it := range s.Items {
		items[i] = it
		if !it.Star && it.Expr != nil {
			items[i].Expr = rewrite(it.Expr)
		}
	}
	var having exec.Expr
	if s.Having != nil {
		having = rewrite(s.Having)
	}
	return specs, items, having, found, nil
}

func specsEqual(sp exec.AggSpec, a AggCall) bool {
	if sp.Func != a.Func {
		return false
	}
	if sp.Arg == nil || a.Arg == nil {
		return sp.Arg == nil && a.Arg == nil
	}
	return sp.Arg.String() == a.Arg.String()
}

// projection expands stars and assigns output aliases.
func projection(inCols []string, items []SelectItem) ([]exec.Expr, []string, error) {
	var exprs []exec.Expr
	var aliases []string
	for _, it := range items {
		if it.Star {
			for _, c := range inCols {
				exprs = append(exprs, exec.Col{Name: c})
				aliases = append(aliases, bareName(c))
			}
			continue
		}
		alias := it.Alias
		if alias == "" {
			if c, ok := it.Expr.(exec.Col); ok {
				alias = bareName(c.Name)
			} else {
				alias = it.Expr.String()
			}
		}
		exprs = append(exprs, it.Expr)
		aliases = append(aliases, alias)
	}
	return exprs, aliases, nil
}

func bareName(col string) string {
	if dot := strings.LastIndexByte(col, '.'); dot >= 0 {
		return col[dot+1:]
	}
	return col
}

// planFrom builds the base scan/join tree.
func (e *Engine) planFrom(ctx context.Context, s *Select) (exec.Operator, error) {
	left, err := e.planTableRef(ctx, s, s.From[0], true)
	if err != nil {
		return nil, err
	}
	for _, ref := range s.From[1:] {
		right, err := e.planTableRef(ctx, s, ref, false)
		if err != nil {
			return nil, err
		}
		left, err = planJoin(left, right, ref.JoinOn)
		if err != nil {
			return nil, err
		}
	}
	return left, nil
}

// planJoin picks hash join for simple column equi-joins and nested
// loops otherwise.
func planJoin(left, right exec.Operator, on exec.Expr) (exec.Operator, error) {
	if on == nil {
		return &exec.NestedLoopJoin{L: left, R: right}, nil
	}
	if cmp, ok := on.(exec.Cmp); ok && cmp.Op == exec.OpEq {
		lc, lok := cmp.L.(exec.Col)
		rc, rok := cmp.R.(exec.Col)
		if lok && rok {
			_, lInLeft := indexErrNil(left.Columns(), lc.Name)
			_, rInRight := indexErrNil(right.Columns(), rc.Name)
			if lInLeft && rInRight {
				return &exec.HashJoin{L: left, R: right, LKey: lc, RKey: rc}, nil
			}
			_, lInRight := indexErrNil(right.Columns(), lc.Name)
			_, rInLeft := indexErrNil(left.Columns(), rc.Name)
			if lInRight && rInLeft {
				return &exec.HashJoin{L: left, R: right, LKey: rc, RKey: lc}, nil
			}
		}
	}
	return &exec.NestedLoopJoin{L: left, R: right, Pred: on}, nil
}

func indexErrNil(cols []string, name string) (int, bool) {
	i, err := exec.ColumnIndex(cols, name)
	return i, err == nil
}

// planTableRef builds a scan for one FROM entry: view expansion, index
// scan when the WHERE clause constrains an indexed column of the first
// table, or plain sequential scan.
func (e *Engine) planTableRef(ctx context.Context, s *Select, ref TableRef, first bool) (exec.Operator, error) {
	if v, err := e.cat.GetView(ref.Table); err == nil {
		sub, err := Parse(v.Query)
		if err != nil {
			return nil, fmt.Errorf("sql: view %s: %w", v.Name, err)
		}
		sel, ok := sub.(*Select)
		if !ok {
			return nil, fmt.Errorf("%w: view %s is not a SELECT", ErrBadQuery, v.Name)
		}
		op, err := e.planSelect(ctx, sel)
		if err != nil {
			return nil, err
		}
		// Re-qualify output columns under the view (or alias) name.
		name := ref.Alias
		if name == "" {
			name = v.Name
		}
		cols := op.Columns()
		exprs := make([]exec.Expr, len(cols))
		aliases := make([]string, len(cols))
		for i, c := range cols {
			exprs[i] = exec.Col{Name: c}
			aliases[i] = name + "." + bareName(c)
		}
		return &exec.Project{In: op, Exprs: exprs, Aliases: aliases}, nil
	}

	tbl, err := e.cat.GetTable(ref.Table)
	if err != nil {
		return nil, err
	}
	h, err := e.heap(tbl)
	if err != nil {
		return nil, err
	}
	if first && len(s.From) == 1 && s.Where != nil {
		if op, ok, err := e.tryIndexScan(tbl, h, ref.Alias, s.Where); err != nil {
			return nil, err
		} else if ok {
			return op, nil
		}
	}
	return exec.NewSeqScan(tbl, h, ref.Alias), nil
}

// tryIndexScan looks for a `col CMP literal` conjunct over an indexed
// column and builds a bounded index scan. The full WHERE still runs as
// a filter above, so the bound only needs to be an over-approximation.
func (e *Engine) tryIndexScan(tbl *catalog.Table, h exec.RowSource, alias string, where exec.Expr) (exec.Operator, bool, error) {
	cmp, ok := findIndexableCmp(where, tbl)
	if !ok {
		return nil, false, nil
	}
	col := cmp.col
	def, ok := tbl.Index(col)
	if !ok {
		return nil, false, nil
	}
	tree, err := e.tree(def)
	if err != nil {
		return nil, false, err
	}
	scan := &exec.IndexScan{Table: tbl, Source: h, Tree: tree, Alias: alias}
	switch cmp.op {
	case exec.OpEq:
		scan.Lo, scan.Hi = &cmp.val, &cmp.val
	case exec.OpLt, exec.OpLe:
		scan.Hi = &cmp.val
	case exec.OpGt, exec.OpGe:
		scan.Lo = &cmp.val
	default:
		return nil, false, nil
	}
	return scan, true, nil
}

type indexableCmp struct {
	col string
	op  exec.CmpOp
	val access.Value
}

// findIndexableCmp extracts the first top-level (AND-connected)
// comparison between an indexed column and a literal.
func findIndexableCmp(where exec.Expr, tbl *catalog.Table) (indexableCmp, bool) {
	switch t := where.(type) {
	case exec.Cmp:
		if c, ok := t.L.(exec.Col); ok {
			if l, ok := t.R.(exec.Lit); ok {
				name := bareName(c.Name)
				if _, has := tbl.Index(name); has {
					return indexableCmp{col: name, op: t.Op, val: l.V}, true
				}
			}
		}
		if c, ok := t.R.(exec.Col); ok {
			if l, ok := t.L.(exec.Lit); ok {
				name := bareName(c.Name)
				if _, has := tbl.Index(name); has {
					return indexableCmp{col: name, op: flipCmp(t.Op), val: l.V}, true
				}
			}
		}
	case exec.Logic:
		if t.Op == exec.OpAnd {
			if c, ok := findIndexableCmp(t.L, tbl); ok {
				return c, true
			}
			return findIndexableCmp(t.R, tbl)
		}
	}
	return indexableCmp{}, false
}

func flipCmp(op exec.CmpOp) exec.CmpOp {
	switch op {
	case exec.OpLt:
		return exec.OpGt
	case exec.OpLe:
		return exec.OpGe
	case exec.OpGt:
		return exec.OpLt
	case exec.OpGe:
		return exec.OpLe
	default:
		return op
	}
}
