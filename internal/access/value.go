// Package access implements the Access Services layer of the SBDMS
// architecture (Section 3.1): physical record representation (typed
// values and row encoding), slotted pages, heap files with WAL-logged
// mutations, and record identifiers. Higher-level operations over
// record sets (joins, selections, sorting) live in internal/exec.
package access

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Value errors.
var (
	// ErrTypeMismatch is returned when values of incomparable types
	// meet.
	ErrTypeMismatch = errors.New("access: type mismatch")
	// ErrCorruptRow is returned when a row fails to decode.
	ErrCorruptRow = errors.New("access: corrupt row encoding")
)

// Type enumerates the value types of the data model.
type Type uint8

// Value types.
const (
	TypeNull Type = iota
	TypeInt
	TypeFloat
	TypeString
	TypeBool
	TypeBytes
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FLOAT"
	case TypeString:
		return "STRING"
	case TypeBool:
		return "BOOL"
	case TypeBytes:
		return "BYTES"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// ParseType parses a SQL-ish type name.
func ParseType(s string) (Type, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "INT", "INTEGER", "BIGINT":
		return TypeInt, nil
	case "FLOAT", "DOUBLE", "REAL":
		return TypeFloat, nil
	case "STRING", "TEXT", "VARCHAR":
		return TypeString, nil
	case "BOOL", "BOOLEAN":
		return TypeBool, nil
	case "BYTES", "BLOB":
		return TypeBytes, nil
	default:
		return TypeNull, fmt.Errorf("access: unknown type %q", s)
	}
}

// Value is a single typed datum. The zero Value is NULL.
type Value struct {
	Type  Type
	Int   int64
	Float float64
	Str   string
	Bool  bool
	Bytes []byte
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// NewInt wraps an int64.
func NewInt(v int64) Value { return Value{Type: TypeInt, Int: v} }

// NewFloat wraps a float64.
func NewFloat(v float64) Value { return Value{Type: TypeFloat, Float: v} }

// NewString wraps a string.
func NewString(v string) Value { return Value{Type: TypeString, Str: v} }

// NewBool wraps a bool.
func NewBool(v bool) Value { return Value{Type: TypeBool, Bool: v} }

// NewBytes wraps a byte slice.
func NewBytes(v []byte) Value { return Value{Type: TypeBytes, Bytes: v} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Type == TypeNull }

// String renders the value for display.
func (v Value) String() string {
	switch v.Type {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return strconv.FormatInt(v.Int, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case TypeString:
		return v.Str
	case TypeBool:
		return strconv.FormatBool(v.Bool)
	case TypeBytes:
		return fmt.Sprintf("0x%x", v.Bytes)
	default:
		return "?"
	}
}

// AsFloat coerces numeric values to float64.
func (v Value) AsFloat() (float64, bool) {
	switch v.Type {
	case TypeInt:
		return float64(v.Int), true
	case TypeFloat:
		return v.Float, true
	default:
		return 0, false
	}
}

// Compare orders two values: -1, 0, +1. NULL sorts before everything;
// int and float compare numerically across types. Incomparable types
// return ErrTypeMismatch.
func Compare(a, b Value) (int, error) {
	if a.Type == TypeNull || b.Type == TypeNull {
		switch {
		case a.Type == TypeNull && b.Type == TypeNull:
			return 0, nil
		case a.Type == TypeNull:
			return -1, nil
		default:
			return 1, nil
		}
	}
	if af, ok := a.AsFloat(); ok {
		if bf, ok := b.AsFloat(); ok {
			switch {
			case af < bf:
				return -1, nil
			case af > bf:
				return 1, nil
			default:
				return 0, nil
			}
		}
		return 0, fmt.Errorf("%w: %s vs %s", ErrTypeMismatch, a.Type, b.Type)
	}
	if a.Type != b.Type {
		return 0, fmt.Errorf("%w: %s vs %s", ErrTypeMismatch, a.Type, b.Type)
	}
	switch a.Type {
	case TypeString:
		return strings.Compare(a.Str, b.Str), nil
	case TypeBool:
		switch {
		case a.Bool == b.Bool:
			return 0, nil
		case !a.Bool:
			return -1, nil
		default:
			return 1, nil
		}
	case TypeBytes:
		return bytesCompare(a.Bytes, b.Bytes), nil
	}
	return 0, fmt.Errorf("%w: %s", ErrTypeMismatch, a.Type)
}

func bytesCompare(a, b []byte) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// Equal reports deep equality (NULL equals NULL here; SQL three-valued
// logic is handled by the expression evaluator).
func Equal(a, b Value) bool {
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// Row is an ordered tuple of values.
type Row []Value

// Clone returns an independent copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	for i, v := range r {
		if v.Type == TypeBytes {
			out[i].Bytes = append([]byte(nil), v.Bytes...)
		}
	}
	return out
}

// String renders the row for display.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// EncodeRow serialises a row into a self-describing byte string:
// u16 column count, then per value a type byte and payload.
func EncodeRow(r Row) []byte {
	var out []byte
	var tmp [8]byte
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(r)))
	out = append(out, tmp[:2]...)
	for _, v := range r {
		out = append(out, byte(v.Type))
		switch v.Type {
		case TypeNull:
		case TypeInt:
			binary.LittleEndian.PutUint64(tmp[:], uint64(v.Int))
			out = append(out, tmp[:]...)
		case TypeFloat:
			binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v.Float))
			out = append(out, tmp[:]...)
		case TypeBool:
			if v.Bool {
				out = append(out, 1)
			} else {
				out = append(out, 0)
			}
		case TypeString:
			binary.LittleEndian.PutUint32(tmp[:4], uint32(len(v.Str)))
			out = append(out, tmp[:4]...)
			out = append(out, v.Str...)
		case TypeBytes:
			binary.LittleEndian.PutUint32(tmp[:4], uint32(len(v.Bytes)))
			out = append(out, tmp[:4]...)
			out = append(out, v.Bytes...)
		}
	}
	return out
}

// DecodeRow parses a row encoded with EncodeRow.
func DecodeRow(b []byte) (Row, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("%w: too short", ErrCorruptRow)
	}
	n := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	row := make(Row, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 1 {
			return nil, fmt.Errorf("%w: truncated value %d", ErrCorruptRow, i)
		}
		t := Type(b[0])
		b = b[1:]
		var v Value
		switch t {
		case TypeNull:
			v = Null()
		case TypeInt:
			if len(b) < 8 {
				return nil, fmt.Errorf("%w: truncated int", ErrCorruptRow)
			}
			v = NewInt(int64(binary.LittleEndian.Uint64(b)))
			b = b[8:]
		case TypeFloat:
			if len(b) < 8 {
				return nil, fmt.Errorf("%w: truncated float", ErrCorruptRow)
			}
			v = NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(b)))
			b = b[8:]
		case TypeBool:
			if len(b) < 1 {
				return nil, fmt.Errorf("%w: truncated bool", ErrCorruptRow)
			}
			v = NewBool(b[0] == 1)
			b = b[1:]
		case TypeString:
			if len(b) < 4 {
				return nil, fmt.Errorf("%w: truncated string header", ErrCorruptRow)
			}
			slen := int(binary.LittleEndian.Uint32(b))
			b = b[4:]
			if len(b) < slen {
				return nil, fmt.Errorf("%w: truncated string body", ErrCorruptRow)
			}
			v = NewString(string(b[:slen]))
			b = b[slen:]
		case TypeBytes:
			if len(b) < 4 {
				return nil, fmt.Errorf("%w: truncated bytes header", ErrCorruptRow)
			}
			blen := int(binary.LittleEndian.Uint32(b))
			b = b[4:]
			if len(b) < blen {
				return nil, fmt.Errorf("%w: truncated bytes body", ErrCorruptRow)
			}
			v = NewBytes(append([]byte(nil), b[:blen]...))
			b = b[blen:]
		default:
			return nil, fmt.Errorf("%w: unknown type %d", ErrCorruptRow, t)
		}
		row = append(row, v)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorruptRow, len(b))
	}
	return row, nil
}

// EncodeKey produces an order-preserving byte encoding of a value for
// index keys: Compare(a,b) agrees with bytes.Compare(EncodeKey(a),
// EncodeKey(b)) for values of the same comparison class.
func EncodeKey(v Value) []byte {
	switch v.Type {
	case TypeNull:
		return []byte{0x00}
	case TypeInt:
		var out [9]byte
		out[0] = 0x01
		binary.BigEndian.PutUint64(out[1:], uint64(v.Int)^(1<<63))
		return out[:]
	case TypeFloat:
		// Index columns have a fixed type, so int and float keys never
		// mix within one index; each class just needs internal order.
		var out [9]byte
		out[0] = 0x01
		bits := math.Float64bits(v.Float)
		if v.Float >= 0 {
			bits ^= 1 << 63
		} else {
			bits = ^bits
		}
		binary.BigEndian.PutUint64(out[1:], bits)
		return out[:]
	case TypeBool:
		if v.Bool {
			return []byte{0x02, 1}
		}
		return []byte{0x02, 0}
	case TypeString:
		return append([]byte{0x03}, v.Str...)
	case TypeBytes:
		return append([]byte{0x04}, v.Bytes...)
	default:
		return []byte{0xFF}
	}
}
