package wal

import (
	"encoding/binary"
	"fmt"

	"repro/internal/storage"
)

// CkptTxn is one active-transaction-table entry of a fuzzy checkpoint:
// a transaction in flight when the checkpoint's tables were gathered.
type CkptTxn struct {
	ID    uint64
	First LSN // the transaction's begin record
	Last  LSN // its most recent record at snapshot time
}

// CkptPage is one dirty-page-table entry of a fuzzy checkpoint: a page
// resident dirty in the buffer pool, with the LSN of the first record
// that dirtied it since it was last clean (recLSN). RecLSN 0 marks a
// page dirtied outside the log (unlogged traffic); it is flushed by
// the checkpoint but does not constrain the recovery-begin LSN.
type CkptPage struct {
	Page   storage.PageID
	RecLSN LSN
}

// CheckpointData is the table snapshot a fuzzy checkpoint record
// carries: the active-transaction table, the dirty-page table, and the
// full-page-write fence (the NextLSN observed when the checkpoint
// began). Recovery does not need the tables — the recovery-begin LSN in
// the manifest already lower-bounds every record they could name — but
// they make the checkpoint self-describing for diagnostics and for
// rebuilding a lost manifest by scanning the log.
type CheckpointData struct {
	Fence LSN
	ATT   []CkptTxn
	DPT   []CkptPage
	// Clock is the commit-timestamp oracle's clock at checkpoint time.
	// It is read after the fence, so it bounds the timestamp of every
	// commit record the checkpoint licenses truncating away; recovery
	// restores the oracle at or above it.
	Clock uint64
}

// EncodeCheckpoint serialises the tables into a checkpoint record's
// After payload.
func EncodeCheckpoint(d CheckpointData) []byte {
	out := make([]byte, 0, 8+4+4+len(d.ATT)*24+len(d.DPT)*16)
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], uint64(d.Fence))
	out = append(out, tmp[:]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(d.ATT)))
	out = append(out, tmp[:4]...)
	for _, t := range d.ATT {
		binary.LittleEndian.PutUint64(tmp[:], t.ID)
		out = append(out, tmp[:]...)
		binary.LittleEndian.PutUint64(tmp[:], uint64(t.First))
		out = append(out, tmp[:]...)
		binary.LittleEndian.PutUint64(tmp[:], uint64(t.Last))
		out = append(out, tmp[:]...)
	}
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(d.DPT)))
	out = append(out, tmp[:4]...)
	for _, p := range d.DPT {
		binary.LittleEndian.PutUint64(tmp[:], uint64(p.Page))
		out = append(out, tmp[:]...)
		binary.LittleEndian.PutUint64(tmp[:], uint64(p.RecLSN))
		out = append(out, tmp[:]...)
	}
	binary.LittleEndian.PutUint64(tmp[:], d.Clock)
	out = append(out, tmp[:]...)
	return out
}

// DecodeCheckpoint parses a checkpoint record's After payload. An empty
// payload (the quiescent Log.Checkpoint convenience path) decodes to
// empty tables.
func DecodeCheckpoint(buf []byte) (CheckpointData, error) {
	var d CheckpointData
	if len(buf) == 0 {
		return d, nil
	}
	if len(buf) < 16 {
		return d, fmt.Errorf("%w: short checkpoint payload", ErrCorrupt)
	}
	d.Fence = LSN(binary.LittleEndian.Uint64(buf))
	buf = buf[8:]
	natt := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	if uint64(len(buf)) < uint64(natt)*24+4 {
		return d, fmt.Errorf("%w: truncated checkpoint ATT", ErrCorrupt)
	}
	for i := uint32(0); i < natt; i++ {
		d.ATT = append(d.ATT, CkptTxn{
			ID:    binary.LittleEndian.Uint64(buf),
			First: LSN(binary.LittleEndian.Uint64(buf[8:])),
			Last:  LSN(binary.LittleEndian.Uint64(buf[16:])),
		})
		buf = buf[24:]
	}
	ndpt := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	if uint64(len(buf)) < uint64(ndpt)*16 {
		return d, fmt.Errorf("%w: truncated checkpoint DPT", ErrCorrupt)
	}
	for i := uint32(0); i < ndpt; i++ {
		d.DPT = append(d.DPT, CkptPage{
			Page:   storage.PageID(binary.LittleEndian.Uint64(buf)),
			RecLSN: LSN(binary.LittleEndian.Uint64(buf[8:])),
		})
		buf = buf[16:]
	}
	// Clock trails the tables; records written before it existed simply
	// omit it and decode to zero.
	if len(buf) >= 8 {
		d.Clock = binary.LittleEndian.Uint64(buf)
	}
	return d, nil
}
