// Package wal implements a write-ahead log for the SBDMS storage layer:
// length-prefixed, checksummed records appended to a byte device, with
// group-buffered appends, explicit flush, iteration, and redo/undo
// recovery over a storage.PageStore. The heap file access method logs
// record-level before/after images through this log, and the buffer
// manager's before-evict hook enforces the write-ahead rule.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"time"

	"repro/internal/storage"
)

// WAL errors.
var (
	// ErrCorrupt is returned when a log record fails its checksum or
	// framing; iteration stops at the last valid record.
	ErrCorrupt = errors.New("wal: corrupt record")
	// ErrTornTail indicates a partially written record at the log tail
	// (normal after a crash; recovery treats it as the end of log).
	ErrTornTail = errors.New("wal: torn tail")
)

// LSN is a log sequence number: the byte offset of a record in the log.
type LSN uint64

// ZeroLSN is the null LSN (no record).
const ZeroLSN LSN = 0

// RecType classifies log records.
type RecType uint8

// Log record types.
const (
	RecBegin      RecType = 1
	RecCommit     RecType = 2
	RecAbort      RecType = 3
	RecUpdate     RecType = 4
	RecCheckpoint RecType = 5
)

// String implements fmt.Stringer.
func (t RecType) String() string {
	switch t {
	case RecBegin:
		return "begin"
	case RecCommit:
		return "commit"
	case RecAbort:
		return "abort"
	case RecUpdate:
		return "update"
	case RecCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("rectype(%d)", uint8(t))
	}
}

// Record is one log record. Update records carry a physical
// before/after image of a byte range within a page.
type Record struct {
	LSN     LSN // assigned by Append
	Txn     uint64
	Type    RecType
	PageID  storage.PageID
	Offset  uint16 // byte offset within the page
	Before  []byte
	After   []byte
	PrevLSN LSN // previous record of the same transaction
	// End is the offset one past this record on the device. It is set
	// when the record is read back via Iterate (not persisted); log
	// shippers use it as their resume watermark.
	End LSN
}

// The log begins with a fixed header (magic, checkpoint LSN, reserved)
// so that offset 0 is never a valid LSN.
const logHeaderSize = 24

const logMagic = 0x5342444d53574131 // "SBDMSWA1"

// Log is an append-only write-ahead log over a Device. Appends are
// buffered in memory; Flush persists them. Safe for concurrent use.
//
// Flush uses group commit: concurrent callers coalesce onto a single
// leader that performs one device sync covering every LSN requested so
// far, while followers wait for the covering sync instead of issuing
// their own. SetGroupWindow additionally holds the leader open for a
// short time/size window so bursts of committers share one sync.
type Log struct {
	mu         sync.Mutex
	dev        storage.Device
	tailOff    uint64 // durable end of log
	buf        []byte // pending bytes not yet written
	bufStart   uint64 // device offset of buf[0]
	flushed    LSN    // durability boundary (first LSN not yet durable)
	nextLSN    LSN
	checkpoint LSN // LSN of the last sharp checkpoint record

	// Group commit state.
	flushDone      *sync.Cond // broadcast when a flush round completes
	syncing        bool       // a leader is writing/syncing off-lock
	evictWaiters   int        // no-window callers waiting on the leader
	groupWindow    time.Duration
	groupBytes     int
	commitSiblings int        // min other in-flight txns to hold the window
	siblingsFn     func() int // reports other in-flight transactions
	syncEveryFlush bool       // baseline mode: every Flush syncs itself
	syncs          uint64     // device syncs issued by Flush
	windowSkips    uint64     // windows skipped by the siblings gate
}

// Open opens (or initialises) a log on a device, scanning to find the
// durable tail. Torn tail records are truncated away.
func Open(dev storage.Device) (*Log, error) {
	size, err := dev.Size()
	if err != nil {
		return nil, err
	}
	l := &Log{dev: dev}
	if size == 0 {
		var hdr [logHeaderSize]byte
		binary.LittleEndian.PutUint64(hdr[:], logMagic)
		if _, err := dev.WriteAt(hdr[:], 0); err != nil {
			return nil, err
		}
		l.tailOff = logHeaderSize
	} else {
		if size < logHeaderSize {
			return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
		}
		var hdr [logHeaderSize]byte
		if _, err := dev.ReadAt(hdr[:], 0); err != nil {
			return nil, fmt.Errorf("wal: reading header: %w", err)
		}
		if binary.LittleEndian.Uint64(hdr[:]) != logMagic {
			return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
		}
		l.checkpoint = LSN(binary.LittleEndian.Uint64(hdr[8:]))
		// Scan for the durable tail.
		off := uint64(logHeaderSize)
		for {
			rec, next, err := readRecordAt(dev, off, uint64(size))
			if err != nil {
				break // torn or corrupt tail: log ends here
			}
			_ = rec
			off = next
		}
		l.tailOff = off
		if err := dev.Truncate(int64(off)); err != nil {
			return nil, err
		}
	}
	l.bufStart = l.tailOff
	l.nextLSN = LSN(l.tailOff)
	l.flushed = LSN(l.tailOff) // nothing pending
	l.flushDone = sync.NewCond(&l.mu)
	return l, nil
}

// SetGroupWindow tunes group commit: a flush leader holds the log
// open for up to the window before syncing, so concurrent committers
// batch into one device sync; the window ends as soon as maxBytes are
// pending. window=0 (the default) syncs immediately; maxBytes<=0
// means the full window is always waited out.
func (l *Log) SetGroupWindow(window time.Duration, maxBytes int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.groupWindow = window
	l.groupBytes = maxBytes
}

// SetCommitSiblings installs a Postgres-style commit_siblings gate on
// the group window: a flush leader only holds the window open when fn
// reports at least minSiblings other transactions in flight, so a lone
// committer syncs immediately instead of sleeping out the window.
// minSiblings follows the user-facing knob convention everywhere the
// gate is configured: 0 selects the default gate of 1 sibling, a
// negative value (or fn == nil) disables the gate so the window is
// always held. fn is called with the log mutex held and must not call
// back into the log.
func (l *Log) SetCommitSiblings(minSiblings int, fn func() int) {
	if minSiblings == 0 {
		minSiblings = 1
	} else if minSiblings < 0 {
		minSiblings = 0 // disabled
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.commitSiblings = minSiblings
	l.siblingsFn = fn
}

// WindowSkips returns how many flush rounds skipped the group window
// because too few sibling transactions were in flight.
func (l *Log) WindowSkips() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.windowSkips
}

// holdWindowLocked reports whether a flush leader should hold the group
// window open, consulting the commit_siblings gate.
func (l *Log) holdWindowLocked() bool {
	if l.groupWindow <= 0 {
		return false
	}
	if l.commitSiblings <= 0 || l.siblingsFn == nil {
		return true
	}
	if l.siblingsFn() >= l.commitSiblings {
		return true
	}
	l.windowSkips++
	return false
}

// SetSyncEveryFlush toggles the pre-group-commit baseline: every Flush
// call holds the log lock end to end and issues its own device sync.
// Used by benchmarks to quantify the group-commit win.
func (l *Log) SetSyncEveryFlush(on bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.syncEveryFlush = on
}

// Syncs returns the number of device syncs issued by Flush so far.
// Under group commit this is typically far below the number of
// committed transactions.
func (l *Log) Syncs() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncs
}

// encode appends the wire form of rec (excluding LSN assignment) to dst.
// Layout: u32 len | u32 crc | u64 txn | u8 type | u64 page | u16 off |
// u32 blen | before | u32 alen | after | u64 prevLSN. len covers
// everything after the len field itself.
func encode(dst []byte, rec *Record) []byte {
	body := make([]byte, 0, 35+len(rec.Before)+len(rec.After))
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], rec.Txn)
	body = append(body, tmp[:]...)
	body = append(body, byte(rec.Type))
	binary.LittleEndian.PutUint64(tmp[:], uint64(rec.PageID))
	body = append(body, tmp[:]...)
	binary.LittleEndian.PutUint16(tmp[:2], rec.Offset)
	body = append(body, tmp[:2]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(rec.Before)))
	body = append(body, tmp[:4]...)
	body = append(body, rec.Before...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(rec.After)))
	body = append(body, tmp[:4]...)
	body = append(body, rec.After...)
	binary.LittleEndian.PutUint64(tmp[:], uint64(rec.PrevLSN))
	body = append(body, tmp[:]...)

	crc := crc32.Checksum(body, crcTable)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(body))+4) // len includes crc
	dst = append(dst, tmp[:4]...)
	binary.LittleEndian.PutUint32(tmp[:4], crc)
	dst = append(dst, tmp[:4]...)
	return append(dst, body...)
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// readRecordAt decodes the record at off; returns the record and the
// offset of the next record.
func readRecordAt(r io.ReaderAt, off, limit uint64) (*Record, uint64, error) {
	var lenBuf [4]byte
	if off+4 > limit {
		return nil, 0, ErrTornTail
	}
	if _, err := r.ReadAt(lenBuf[:], int64(off)); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrTornTail, err)
	}
	total := binary.LittleEndian.Uint32(lenBuf[:])
	if total < 4+35 || off+4+uint64(total) > limit {
		return nil, 0, ErrTornTail
	}
	payload := make([]byte, total)
	if _, err := r.ReadAt(payload, int64(off+4)); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrTornTail, err)
	}
	wantCRC := binary.LittleEndian.Uint32(payload)
	body := payload[4:]
	if crc32.Checksum(body, crcTable) != wantCRC {
		return nil, 0, ErrCorrupt
	}
	rec := &Record{LSN: LSN(off)}
	rec.Txn = binary.LittleEndian.Uint64(body)
	rec.Type = RecType(body[8])
	rec.PageID = storage.PageID(binary.LittleEndian.Uint64(body[9:]))
	rec.Offset = binary.LittleEndian.Uint16(body[17:])
	blen := binary.LittleEndian.Uint32(body[19:])
	p := 23
	if p+int(blen) > len(body) {
		return nil, 0, ErrCorrupt
	}
	rec.Before = append([]byte(nil), body[p:p+int(blen)]...)
	p += int(blen)
	if p+4 > len(body) {
		return nil, 0, ErrCorrupt
	}
	alen := binary.LittleEndian.Uint32(body[p:])
	p += 4
	if p+int(alen)+8 > len(body) {
		return nil, 0, ErrCorrupt
	}
	rec.After = append([]byte(nil), body[p:p+int(alen)]...)
	p += int(alen)
	rec.PrevLSN = LSN(binary.LittleEndian.Uint64(body[p:]))
	rec.End = LSN(off + 4 + uint64(total))
	return rec, off + 4 + uint64(total), nil
}

// Append buffers a record and returns its assigned LSN. The record is
// durable only after Flush covers the LSN.
func (l *Log) Append(rec *Record) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	lsn := l.nextLSN
	rec.LSN = lsn
	l.buf = encode(l.buf, rec)
	l.nextLSN = LSN(l.bufStart + uint64(len(l.buf)))
	return lsn, nil
}

// Flush makes every record with LSN < upTo durable. Returns
// immediately when upTo is already covered; otherwise the caller
// either becomes the flush leader — writing the whole pending buffer
// and issuing one device sync — or waits for an in-flight leader whose
// sync covers its LSN (group commit). The leader performs I/O outside
// the log lock, so appends proceed concurrently.
func (l *Log) Flush(upTo LSN) error { return l.flush(upTo, true) }

// FlushNoWindow is Flush without the group-commit window: callers that
// hold an engine lock (file-manager frees, page eviction) must not
// stall unrelated traffic for commit-batching latency.
func (l *Log) FlushNoWindow(upTo LSN) error { return l.flush(upTo, false) }

// flush implements Flush. allowWindow=false skips the group window:
// the buffer manager's eviction hook flushes while holding a shard
// lock, and must not stall page traffic for the commit-batching delay.
func (l *Log) flush(upTo LSN, allowWindow bool) error {
	l.mu.Lock()
	if l.syncEveryFlush {
		// Wait out any in-flight group leader first: flushSyncLocked
		// must not advance flushed/tailOff past bytes a leader still
		// has in flight (the mode can be toggled under traffic).
		for l.syncing {
			l.flushDone.Wait()
		}
		defer l.mu.Unlock()
		return l.flushSyncLocked(upTo)
	}
	for {
		if l.flushed >= upTo {
			l.mu.Unlock()
			return nil
		}
		if !l.syncing {
			break // become the leader
		}
		if !allowWindow {
			// An eviction-path caller is queued behind this round; the
			// leader's window loop sees the count and closes early.
			l.evictWaiters++
			l.flushDone.Wait()
			l.evictWaiters--
		} else {
			l.flushDone.Wait()
		}
	}
	l.syncing = true
	if allowWindow && l.holdWindowLocked() {
		// Hold the group open so concurrent committers join this
		// round. Appends only need l.mu, which we release; the window
		// ends early once groupBytes are pending or an eviction-path
		// flush is waiting on this round.
		deadline := time.Now().Add(l.groupWindow)
		slice := l.groupWindow / 8
		if slice < time.Duration(50)*time.Microsecond {
			slice = 50 * time.Microsecond
		}
		for l.evictWaiters == 0 && (l.groupBytes <= 0 || len(l.buf) < l.groupBytes) {
			remain := time.Until(deadline)
			if remain <= 0 {
				break
			}
			if slice > remain {
				slice = remain
			}
			l.mu.Unlock()
			time.Sleep(slice)
			l.mu.Lock()
		}
	}
	// Take ownership of the pending bytes; appends continue into a
	// fresh buffer at the advanced offset while we do I/O.
	buf := l.buf
	start := l.bufStart
	l.buf = nil
	l.bufStart = start + uint64(len(buf))
	target := l.bufStart
	l.mu.Unlock()

	var err error
	if len(buf) > 0 {
		if _, werr := l.dev.WriteAt(buf, int64(start)); werr != nil {
			err = fmt.Errorf("wal: flushing: %w", werr)
		}
	}
	if err == nil {
		err = l.dev.Sync()
	}

	l.mu.Lock()
	l.syncing = false
	if err == nil {
		l.syncs++
		l.tailOff = target
		l.flushed = LSN(target)
	} else if len(buf) > 0 {
		// Put the unwritten bytes back so a later flush retries them.
		l.buf = append(buf, l.buf...)
		l.bufStart = start
	}
	l.flushDone.Broadcast()
	l.mu.Unlock()
	return err
}

// flushSyncLocked is the baseline path: write and sync under the lock,
// syncing once per call whenever anything is or might be pending.
func (l *Log) flushSyncLocked(upTo LSN) error {
	if l.flushed >= upTo && len(l.buf) == 0 {
		return nil
	}
	if len(l.buf) > 0 {
		if _, err := l.dev.WriteAt(l.buf, int64(l.bufStart)); err != nil {
			return fmt.Errorf("wal: flushing: %w", err)
		}
		l.bufStart += uint64(len(l.buf))
		l.buf = l.buf[:0]
		l.tailOff = l.bufStart
	}
	if err := l.dev.Sync(); err != nil {
		return err
	}
	l.syncs++
	l.flushed = LSN(l.tailOff)
	return nil
}

// DurableBoundary returns the log's durability boundary: every record
// with LSN strictly below the boundary is safe on the device; the
// record at or beyond it (if any) is not yet durable.
func (l *Log) DurableBoundary() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushed
}

// NextLSN returns the LSN the next appended record will receive.
func (l *Log) NextLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// Iterate replays durable records with LSN >= from in log order. The
// callback may return io.EOF to stop early.
func (l *Log) Iterate(from LSN, fn func(*Record) error) error {
	l.mu.Lock()
	limit := l.tailOff
	l.mu.Unlock()
	off := uint64(from)
	if off < logHeaderSize {
		off = logHeaderSize
	}
	for off < limit {
		rec, next, err := readRecordAt(l.dev, off, limit)
		if err != nil {
			if errors.Is(err, ErrTornTail) {
				return nil
			}
			return err
		}
		if err := fn(rec); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		off = next
	}
	return nil
}

// Size returns the durable log size in bytes.
func (l *Log) Size() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tailOff
}

// Checkpoint appends a sharp checkpoint record, flushes the log, and
// persists the checkpoint LSN in the log header. A sharp checkpoint is
// only valid at a quiescent point: no in-flight transactions and all
// dirty pages flushed (the transaction manager's Checkpoint enforces
// this). Recovery then scans from the checkpoint instead of the log
// head.
func (l *Log) Checkpoint() (LSN, error) {
	lsn, err := l.Append(&Record{Type: RecCheckpoint})
	if err != nil {
		return ZeroLSN, err
	}
	if err := l.Flush(lsn + 1); err != nil {
		return ZeroLSN, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(lsn))
	if _, err := l.dev.WriteAt(buf[:], 8); err != nil {
		return ZeroLSN, fmt.Errorf("wal: persisting checkpoint: %w", err)
	}
	if err := l.dev.Sync(); err != nil {
		return ZeroLSN, err
	}
	l.checkpoint = lsn
	return lsn, nil
}

// LastCheckpoint returns the LSN of the most recent sharp checkpoint
// (ZeroLSN if none was ever taken).
func (l *Log) LastCheckpoint() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.checkpoint
}

// BeforeEvict returns a buffer-manager hook enforcing the write-ahead
// rule: a dirty page with page LSN >= DurableBoundary forces a log
// flush before the page may be written back.
func (l *Log) BeforeEvict() func(storage.PageID, uint64) error {
	return func(id storage.PageID, pageLSN uint64) error {
		if LSN(pageLSN) >= l.DurableBoundary() {
			// No group window here: the caller holds a buffer shard
			// lock, and batching latency belongs to commits, not to
			// page eviction.
			return l.flush(LSN(pageLSN)+1, false)
		}
		return nil
	}
}
