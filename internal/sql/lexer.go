// Package sql implements the Data Services query interface of SBDMS: a
// lexer, recursive-descent parser and planner for a SQL subset
// (CREATE/DROP TABLE/INDEX/VIEW, INSERT, UPDATE, DELETE, SELECT with
// joins, aggregation, ORDER BY and LIMIT), plus the Engine that
// executes statements against the catalog, heap files, indexes and
// transaction manager.
package sql

import (
	"errors"
	"fmt"
	"strings"
	"unicode"
)

// Parse errors.
var (
	// ErrSyntax is returned for malformed SQL.
	ErrSyntax = errors.New("sql: syntax error")
)

type tokenKind int

const (
	tkEOF tokenKind = iota
	tkIdent
	tkNumber
	tkString
	tkPunct // ( ) , . * = != < <= > >= + - / %
)

type token struct {
	kind tokenKind
	text string // uppercased for idents' keyword checks? keep raw; match case-insensitively
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tkEOF, pos: l.pos})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// line comment
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			l.lexIdent()
		case unicode.IsDigit(rune(c)) || (c == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		default:
			if err := l.lexPunct(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
			l.pos++
			continue
		}
		break
	}
	l.toks = append(l.toks, token{kind: tkIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexNumber() error {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsDigit(rune(c)) {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	l.toks = append(l.toks, token{kind: tkNumber, text: l.src[start:l.pos], pos: start})
	return nil
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'') // escaped quote
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tkString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("%w: unterminated string at %d", ErrSyntax, start)
}

func (l *lexer) lexPunct() error {
	start := l.pos
	two := ""
	if l.pos+2 <= len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "!=", "<>", "<=", ">=":
		l.pos += 2
		text := two
		if text == "<>" {
			text = "!="
		}
		l.toks = append(l.toks, token{kind: tkPunct, text: text, pos: start})
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '.', '*', '=', '<', '>', '+', '-', '/', '%', ';':
		l.pos++
		l.toks = append(l.toks, token{kind: tkPunct, text: string(c), pos: start})
		return nil
	}
	return fmt.Errorf("%w: unexpected character %q at %d", ErrSyntax, c, start)
}
