package txn

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/storage"
	"repro/internal/wal"
)

// cloneMemDevice copies a device's bytes into a fresh MemDevice — a
// snapshot of the durable state at one instant.
func cloneMemDevice(t *testing.T, dev storage.Device) *storage.MemDevice {
	t.Helper()
	size, err := dev.Size()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, size)
	if size > 0 {
		if _, err := dev.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	out := storage.NewMemDevice()
	if _, err := out.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestFreedPagesReclaimedAfterCrash: dropping a file frees its page
// chain; the free markings are WAL-logged under a lazy system
// transaction. A crash that loses every eager allocator write (the
// whole drop never reached the data device) must still reclaim the
// pages: redo replays the directory update and the free markings, and
// the free-list rebuild relinks them — the ROADMAP "crash leaks freed
// pages" item.
func TestFreedPagesReclaimedAfterCrash(t *testing.T) {
	dev := storage.NewMemDevice()
	disk, err := storage.OpenDisk(dev)
	if err != nil {
		t.Fatal(err)
	}
	pool := buffer.New(disk, 16, buffer.NewLRU())
	fm, err := storage.OpenFileManager(pool)
	if err != nil {
		t.Fatal(err)
	}
	l, err := wal.Open(storage.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	pool.SetBeforeEvict(l.BeforeEvict())
	m := NewManager(l, pool)
	fm.SetLogger(m.PageLogger())

	if err := fm.Create("doomed"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := fm.AppendPage("doomed", storage.PageTypeHeap); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(l.NextLSN()); err != nil {
		t.Fatal(err)
	}
	// The durable pre-drop state: directory lists the file, no frees.
	snap := cloneMemDevice(t, dev)

	if err := fm.Drop("doomed"); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(l.NextLSN()); err != nil {
		t.Fatal(err)
	}

	// Crash: every post-snapshot data-device write is lost — the
	// directory rewrite, the free-page markings, the allocator's
	// free-list links and the metadata page. Only the WAL survived.
	disk2, err := storage.OpenDisk(snap, storage.WithMetaSalvage(true))
	if err != nil {
		t.Fatal(err)
	}
	st, err := wal.Recover(l, disk2)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Changed() {
		t.Fatalf("recovery repaired nothing: %+v", st)
	}
	reclaimed, err := disk2.RebuildFreeList()
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed < 3 {
		t.Fatalf("reclaimed %d pages, want at least the 3 chain pages", reclaimed)
	}
	free, err := disk2.FreePages()
	if err != nil {
		t.Fatal(err)
	}
	if free != reclaimed {
		t.Fatalf("free list length %d != reclaimed %d", free, reclaimed)
	}

	// The recovered directory no longer lists the file, and the
	// allocator reuses a reclaimed page instead of growing the store.
	pool2 := buffer.New(disk2, 16, buffer.NewLRU())
	fm2, err := storage.OpenFileManager(pool2)
	if err != nil {
		t.Fatal(err)
	}
	if fm2.Exists("doomed") {
		t.Fatal("dropped file resurrected")
	}
	grown := disk2.NumPages()
	id, err := disk2.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if uint64(id) > grown {
		t.Fatalf("allocator grew the store to page %d instead of reusing a reclaimed page", id)
	}
}

// TestAllocatorRefusesCorruptFreeHead: when a crash persisted the
// free-list head pointer but not the freed page's marking, Allocate
// must abandon the list (leak) rather than pop a live page and
// double-allocate it.
func TestAllocatorRefusesCorruptFreeHead(t *testing.T) {
	dev := storage.NewMemDevice()
	disk, err := storage.OpenDisk(dev)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := disk.Allocate()
	b, _ := disk.Allocate()
	if err := disk.Deallocate(a); err != nil {
		t.Fatal(err)
	}
	// Simulate the reordered crash: the head points at page a, but page
	// a's durable image is a live heap page again (its free marking was
	// lost and the page content restored by recovery).
	live := storage.NewPage(a, storage.PageTypeHeap)
	live.SetNext(b) // a stale chain pointer into live data
	live.UpdateChecksum()
	if _, err := dev.WriteAt(live.Data, int64(a)*storage.PageSize); err != nil {
		t.Fatal(err)
	}

	id, err := disk.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id == a || id == b {
		t.Fatalf("allocator handed out live page %d from a corrupt free list", id)
	}
	// The list was abandoned: a second allocation extends the store.
	id2, err := disk.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id2 == a || id2 == b || id2 == id {
		t.Fatalf("second allocation returned %d", id2)
	}
}
