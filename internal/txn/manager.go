package txn

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/storage"
	"repro/internal/wal"
)

// Transaction errors.
var (
	// ErrTxnDone is returned for operations on a finished transaction.
	ErrTxnDone = errors.New("txn: transaction already finished")
	// ErrActiveTxns is returned by Checkpoint while transactions are in
	// flight (sharp checkpoints require a quiescent system).
	ErrActiveTxns = errors.New("txn: active transactions")
	// ErrNoWAL is returned by Checkpoint without an attached log.
	ErrNoWAL = errors.New("txn: no WAL attached")
)

// Status is the lifecycle state of a transaction.
type Status int

// Transaction states.
const (
	StatusActive Status = iota
	StatusCommitted
	StatusAborted
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusActive:
		return "active"
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Txn is one transaction. It implements access.TxnContext so heap files
// log their mutations under it, and collects those records for undo.
type Txn struct {
	id  uint64
	mgr *Manager

	mu        sync.Mutex
	status    Status
	lastLSN   wal.LSN
	undo      []*wal.Record
	comp      []func() error
	committed []func()
}

// ID implements access.TxnContext.
func (t *Txn) ID() uint64 { return t.id }

// LastLSN implements access.TxnContext.
func (t *Txn) LastLSN() wal.LSN {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lastLSN
}

// Record implements access.TxnContext: it registers an appended update
// record for undo and LSN chaining.
func (t *Txn) Record(rec *wal.Record) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lastLSN = rec.LSN
	t.undo = append(t.undo, rec)
}

// OnCommitted registers a callback run after the transaction's commit
// record is durable (and never on abort). The engine uses it to defer
// page deallocation until the commit that unlinked the page can no
// longer be rolled back — freeing earlier would let the allocator hand
// the page out while a crash could still resurrect the old reference.
func (t *Txn) OnCommitted(f func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.committed = append(t.committed, f)
}

func (t *Txn) takeCommitted() []func() {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.committed
	t.committed = nil
	return out
}

// Compensate registers a callback run (in reverse registration order)
// if the transaction aborts. It reverts auxiliary structures that are
// not covered by WAL before/after images — the engine uses it to undo
// B+tree index maintenance.
func (t *Txn) Compensate(f func() error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.comp = append(t.comp, f)
}

// Status returns the transaction state.
func (t *Txn) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status
}

// Updates returns how many update records the transaction logged.
func (t *Txn) Updates() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.undo)
}

// Lock acquires a lock on behalf of the transaction (2PL growth phase).
func (t *Txn) Lock(ctx context.Context, resource string, mode LockMode) error {
	if t.Status() != StatusActive {
		return ErrTxnDone
	}
	return t.mgr.locks.Acquire(ctx, t.id, resource, mode)
}

// Manager creates and finishes transactions. With a WAL attached,
// begin/commit/abort are logged and commit forces the log; without one,
// transactions still provide locking and in-memory undo.
type Manager struct {
	log   *wal.Log          // may be nil
	store storage.PageStore // for undo application; may be nil without log
	locks *LockManager
	next  atomic.Uint64

	mu     sync.Mutex
	active map[uint64]*Txn
}

// NewManager creates a transaction manager. log and store may be nil
// for lock-only operation.
func NewManager(log *wal.Log, store storage.PageStore) *Manager {
	return &Manager{
		log:   log,
		store: store,
		locks: NewLockManager(),
		active: make(map[uint64]*Txn),
	}
}

// Locks exposes the lock manager.
func (m *Manager) Locks() *LockManager { return m.locks }

// Begin starts a transaction, logging RecBegin when a WAL is attached.
func (m *Manager) Begin() (*Txn, error) {
	id := m.next.Add(1)
	t := &Txn{id: id, mgr: m}
	if m.log != nil {
		lsn, err := m.log.Append(&wal.Record{Txn: id, Type: wal.RecBegin})
		if err != nil {
			return nil, err
		}
		t.lastLSN = lsn
	}
	m.mu.Lock()
	m.active[id] = t
	m.mu.Unlock()
	return t, nil
}

// Commit finishes the transaction: RecCommit is logged and the log
// flushed (durability), then all locks are released.
func (m *Manager) Commit(t *Txn) error { return m.commit(t, true) }

// CommitLazy finishes the transaction without forcing the log: the
// commit record becomes durable with the next forced flush. System
// transactions (file-directory maintenance) use it — WAL ordering
// guarantees their records are durable before any dependent user
// commit is acknowledged.
func (m *Manager) CommitLazy(t *Txn) error { return m.commit(t, false) }

func (m *Manager) commit(t *Txn, flush bool) error {
	lsn, err := m.CommitAppend(t)
	if err != nil {
		return err
	}
	// On-commit hooks require durability even on the lazy path.
	if !flush && len(t.takeCommittedPeek()) == 0 {
		m.finish(t)
		return nil
	}
	return m.FinishCommit(t, lsn)
}

// takeCommittedPeek reports pending on-commit hooks without consuming
// them (helper for the lazy-commit fast path).
func (t *Txn) takeCommittedPeek() []func() {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.committed
}

// CommitAppend moves the transaction to committed and appends its
// commit record WITHOUT forcing the log or deregistering it: the
// transaction keeps counting as in flight (so the commit_siblings gate
// sees concurrent committers) until FinishCommit forces durability and
// releases it. Callers that commit while holding an engine lock use
// the pair to keep commit ordering under the lock but pay the log
// force outside it.
func (m *Manager) CommitAppend(t *Txn) (wal.LSN, error) {
	t.mu.Lock()
	if t.status != StatusActive {
		t.mu.Unlock()
		return wal.ZeroLSN, ErrTxnDone
	}
	t.status = StatusCommitted
	prev := t.lastLSN
	t.mu.Unlock()
	if m.log == nil {
		return wal.ZeroLSN, nil
	}
	return m.log.Append(&wal.Record{Txn: t.id, Type: wal.RecCommit, PrevLSN: prev})
}

// FinishCommit forces the log through the commit record appended by
// CommitAppend, deregisters the transaction, and runs its on-commit
// hooks (which may now safely free pages the commit unlinked). On a
// flush failure the transaction stays registered with its locks held —
// its durability is in doubt, so the engine must treat itself as
// failed (the KV core poisons itself) rather than proceed.
func (m *Manager) FinishCommit(t *Txn, lsn wal.LSN) error {
	if m.log != nil {
		if err := m.log.Flush(lsn + 1); err != nil {
			return err
		}
	}
	m.finish(t)
	for _, f := range t.takeCommitted() {
		f()
	}
	return nil
}

// Abort rolls the transaction back: before images are applied in
// reverse order, each restoration is logged as a compensation record
// (a redo-only update whose after image is the restored bytes), then
// RecAbort is logged and locks released. Because RecAbort is appended
// only after every compensation record, recovery can treat an aborted
// transaction like a committed no-op — replaying its updates and
// compensations in log order — instead of re-applying stale before
// images over pages later transactions may have rewritten.
func (m *Manager) Abort(t *Txn) error {
	t.mu.Lock()
	if t.status != StatusActive {
		t.mu.Unlock()
		return ErrTxnDone
	}
	t.status = StatusAborted
	undo := append([]*wal.Record(nil), t.undo...)
	comp := append([]func() error(nil), t.comp...)
	prev := t.lastLSN
	t.mu.Unlock()

	// An error anywhere below returns without finish(): the transaction
	// stays registered and its locks stay held, deliberately. A failed
	// rollback leaves pages in doubt, so releasing its locks (or letting
	// Checkpoint believe the system is quiescent) would expose
	// half-rolled-back state; callers must treat the engine as failed
	// (the KV core poisons itself) or restart, at which point recovery
	// undoes the still-in-flight transaction from the log.
	if m.store != nil || m.log != nil {
		buf := make([]byte, storage.PageSize)
		for i := len(undo) - 1; i >= 0; i-- {
			rec := undo[i]
			var lsn wal.LSN
			if m.log != nil {
				clr := &wal.Record{
					Txn:     t.id,
					Type:    wal.RecUpdate,
					PageID:  rec.PageID,
					Offset:  rec.Offset,
					After:   append([]byte(nil), rec.Before...),
					PrevLSN: prev,
				}
				var err error
				lsn, err = m.log.Append(clr)
				if err != nil {
					return err
				}
				prev = lsn
			}
			if m.store == nil {
				continue
			}
			if err := m.store.ReadPage(rec.PageID, buf); err != nil {
				return fmt.Errorf("txn: undo read page %d: %w", rec.PageID, err)
			}
			p := storage.WrapPage(rec.PageID, buf)
			copy(p.Data[rec.Offset:int(rec.Offset)+len(rec.Before)], rec.Before)
			if m.log != nil {
				p.SetLSN(uint64(lsn))
			} else {
				p.SetLSN(uint64(rec.LSN))
			}
			if err := m.store.WritePage(rec.PageID, p.Data); err != nil {
				return fmt.Errorf("txn: undo write page %d: %w", rec.PageID, err)
			}
		}
	}
	for i := len(comp) - 1; i >= 0; i-- {
		if err := comp[i](); err != nil {
			return fmt.Errorf("txn: compensation: %w", err)
		}
	}
	if m.log != nil {
		if _, err := m.log.Append(&wal.Record{Txn: t.id, Type: wal.RecAbort, PrevLSN: prev}); err != nil {
			return err
		}
	}
	m.finish(t)
	return nil
}

func (m *Manager) finish(t *Txn) {
	m.locks.ReleaseAll(t.id)
	m.mu.Lock()
	delete(m.active, t.id)
	m.mu.Unlock()
}

// Checkpoint takes a sharp checkpoint: with no transactions in flight,
// every dirty page is flushed and a checkpoint record written, so the
// next recovery scans only the log suffix.
func (m *Manager) Checkpoint() (wal.LSN, error) {
	if m.log == nil {
		return wal.ZeroLSN, ErrNoWAL
	}
	m.mu.Lock()
	active := len(m.active)
	m.mu.Unlock()
	if active > 0 {
		return wal.ZeroLSN, fmt.Errorf("%w: %d in flight", ErrActiveTxns, active)
	}
	if m.store != nil {
		if err := m.store.Sync(); err != nil {
			return wal.ZeroLSN, err
		}
	}
	return m.log.Checkpoint()
}

// ActiveCount returns the number of in-flight transactions.
func (m *Manager) ActiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}
