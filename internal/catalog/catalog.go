// Package catalog implements the Data Services metadata of SBDMS:
// persistent table, column, index and view definitions, stored in a
// dedicated heap file so the catalog survives restarts through the same
// storage services as user data ("Data Services present the data in
// logical structures like tables or views", Section 3.1).
package catalog

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/access"
	"repro/internal/buffer"
	"repro/internal/storage"
)

// Catalog errors.
var (
	// ErrTableExists is returned when creating an existing table.
	ErrTableExists = errors.New("catalog: table exists")
	// ErrNoTable is returned for unknown tables.
	ErrNoTable = errors.New("catalog: no such table")
	// ErrNoColumn is returned for unknown columns.
	ErrNoColumn = errors.New("catalog: no such column")
	// ErrViewExists is returned when creating an existing view.
	ErrViewExists = errors.New("catalog: view exists")
	// ErrNoView is returned for unknown views.
	ErrNoView = errors.New("catalog: no such view")
	// ErrIndexExists is returned when creating an existing index.
	ErrIndexExists = errors.New("catalog: index exists")
	// ErrNoIndex is returned for unknown indexes.
	ErrNoIndex = errors.New("catalog: no such index")
)

// Column describes one table column.
type Column struct {
	Name    string      `json:"name"`
	Type    access.Type `json:"type"`
	NotNull bool        `json:"notNull,omitempty"`
}

// IndexDef describes a secondary (or primary) index on one column.
type IndexDef struct {
	Name     string         `json:"name"`
	Column   string         `json:"column"`
	MetaPage storage.PageID `json:"metaPage"`
	Unique   bool           `json:"unique,omitempty"`
}

// Table is a table definition.
type Table struct {
	Name     string     `json:"name"`
	Columns  []Column   `json:"columns"`
	HeapFile string     `json:"heapFile"`
	Indexes  []IndexDef `json:"indexes,omitempty"`
}

// ColumnIndex returns the ordinal of a column.
func (t *Table) ColumnIndex(name string) (int, error) {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i, nil
		}
	}
	return -1, fmt.Errorf("%w: %s.%s", ErrNoColumn, t.Name, name)
}

// Index returns the index definition on the given column, if any.
func (t *Table) Index(column string) (IndexDef, bool) {
	for _, ix := range t.Indexes {
		if strings.EqualFold(ix.Column, column) {
			return ix, true
		}
	}
	return IndexDef{}, false
}

// View is a named stored query.
type View struct {
	Name  string `json:"name"`
	Query string `json:"query"`
}

// CatalogFile is the reserved heap file name holding catalog rows.
const CatalogFile = "__catalog__"

type entryKind string

const (
	kindTable entryKind = "table"
	kindView  entryKind = "view"
)

// Catalog stores and serves schema metadata. All mutations are
// persisted immediately to the catalog heap file and flushed, so DDL
// survives crashes without WAL involvement.
type Catalog struct {
	mu     sync.RWMutex
	pool   *buffer.Manager
	heap   *access.HeapFile
	tables map[string]*Table
	views  map[string]*View
	rids   map[string]access.RID // "kind/name" -> row
}

// Open loads (or initialises) the catalog from its heap file.
func Open(fm *storage.FileManager, pool *buffer.Manager) (*Catalog, error) {
	heap, err := access.OpenHeap(CatalogFile, fm, pool)
	if err != nil {
		return nil, err
	}
	c := &Catalog{
		pool:   pool,
		heap:   heap,
		tables: make(map[string]*Table),
		views:  make(map[string]*View),
		rids:   make(map[string]access.RID),
	}
	err = heap.Scan(func(rid access.RID, rec []byte) error {
		row, err := access.DecodeRow(rec)
		if err != nil {
			return err
		}
		if len(row) != 3 {
			return fmt.Errorf("catalog: malformed entry at %v", rid)
		}
		kind, name, blob := entryKind(row[0].Str), row[1].Str, row[2].Bytes
		switch kind {
		case kindTable:
			var t Table
			if err := json.Unmarshal(blob, &t); err != nil {
				return fmt.Errorf("catalog: decoding table %s: %w", name, err)
			}
			c.tables[strings.ToLower(name)] = &t
		case kindView:
			var v View
			if err := json.Unmarshal(blob, &v); err != nil {
				return fmt.Errorf("catalog: decoding view %s: %w", name, err)
			}
			c.views[strings.ToLower(name)] = &v
		default:
			return fmt.Errorf("catalog: unknown entry kind %q", kind)
		}
		c.rids[string(kind)+"/"+strings.ToLower(name)] = rid
		return nil
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Catalog) persistLocked(kind entryKind, name string, def any) error {
	blob, err := json.Marshal(def)
	if err != nil {
		return err
	}
	row := access.Row{
		access.NewString(string(kind)),
		access.NewString(name),
		access.NewBytes(blob),
	}
	key := string(kind) + "/" + strings.ToLower(name)
	rec := access.EncodeRow(row)
	if rid, ok := c.rids[key]; ok {
		nrid, err := c.heap.Update(nil, rid, rec)
		if err != nil {
			return err
		}
		c.rids[key] = nrid
	} else {
		rid, err := c.heap.Insert(nil, rec)
		if err != nil {
			return err
		}
		c.rids[key] = rid
	}
	return c.pool.FlushAll()
}

func (c *Catalog) removeLocked(kind entryKind, name string) error {
	key := string(kind) + "/" + strings.ToLower(name)
	rid, ok := c.rids[key]
	if !ok {
		return nil
	}
	if err := c.heap.Delete(nil, rid); err != nil {
		return err
	}
	delete(c.rids, key)
	return c.pool.FlushAll()
}

// CreateTable registers a new table definition.
func (c *Catalog) CreateTable(t *Table) error {
	if t.Name == "" || len(t.Columns) == 0 {
		return fmt.Errorf("catalog: table needs a name and columns")
	}
	seen := map[string]bool{}
	for _, col := range t.Columns {
		lc := strings.ToLower(col.Name)
		if seen[lc] {
			return fmt.Errorf("catalog: duplicate column %s", col.Name)
		}
		seen[lc] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	lname := strings.ToLower(t.Name)
	if _, ok := c.tables[lname]; ok {
		return fmt.Errorf("%w: %s", ErrTableExists, t.Name)
	}
	if t.HeapFile == "" {
		t.HeapFile = "tbl_" + lname
	}
	c.tables[lname] = t
	if err := c.persistLocked(kindTable, t.Name, t); err != nil {
		delete(c.tables, lname)
		return err
	}
	return nil
}

// DropTable removes a table definition, returning it so the engine can
// drop the underlying heap and indexes.
func (c *Catalog) DropTable(name string) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	lname := strings.ToLower(name)
	t, ok := c.tables[lname]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	delete(c.tables, lname)
	if err := c.removeLocked(kindTable, name); err != nil {
		c.tables[lname] = t
		return nil, err
	}
	return t, nil
}

// GetTable looks up a table definition.
func (c *Catalog) GetTable(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	return t, nil
}

// Tables returns the sorted table names.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}

// AddIndex attaches an index definition to a table.
func (c *Catalog) AddIndex(table string, def IndexDef) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[strings.ToLower(table)]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, table)
	}
	for _, ix := range t.Indexes {
		if strings.EqualFold(ix.Name, def.Name) {
			return fmt.Errorf("%w: %s", ErrIndexExists, def.Name)
		}
	}
	if _, err := t.ColumnIndex(def.Column); err != nil {
		return err
	}
	t.Indexes = append(t.Indexes, def)
	return c.persistLocked(kindTable, t.Name, t)
}

// DropIndex removes an index definition by name, returning it.
func (c *Catalog) DropIndex(name string) (IndexDef, string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, t := range c.tables {
		for i, ix := range t.Indexes {
			if strings.EqualFold(ix.Name, name) {
				t.Indexes = append(t.Indexes[:i], t.Indexes[i+1:]...)
				if err := c.persistLocked(kindTable, t.Name, t); err != nil {
					return IndexDef{}, "", err
				}
				return ix, t.Name, nil
			}
		}
	}
	return IndexDef{}, "", fmt.Errorf("%w: %s", ErrNoIndex, name)
}

// CreateView registers a named query.
func (c *Catalog) CreateView(v *View) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	lname := strings.ToLower(v.Name)
	if _, ok := c.views[lname]; ok {
		return fmt.Errorf("%w: %s", ErrViewExists, v.Name)
	}
	c.views[lname] = v
	if err := c.persistLocked(kindView, v.Name, v); err != nil {
		delete(c.views, lname)
		return err
	}
	return nil
}

// DropView removes a view.
func (c *Catalog) DropView(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	lname := strings.ToLower(name)
	if _, ok := c.views[lname]; !ok {
		return fmt.Errorf("%w: %s", ErrNoView, name)
	}
	delete(c.views, lname)
	return c.removeLocked(kindView, name)
}

// GetView looks up a view.
func (c *Catalog) GetView(name string) (*View, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.views[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoView, name)
	}
	return v, nil
}

// Views returns the sorted view names.
func (c *Catalog) Views() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.views))
	for _, v := range c.views {
		out = append(out, v.Name)
	}
	sort.Strings(out)
	return out
}
