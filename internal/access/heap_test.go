package access

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/buffer"
	"repro/internal/storage"
	"repro/internal/wal"
)

func newHeap(t *testing.T) (*HeapFile, *buffer.Manager) {
	t.Helper()
	d, err := storage.OpenDisk(storage.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	pool := buffer.New(d, 16, buffer.NewLRU())
	fm, err := storage.OpenFileManager(pool)
	if err != nil {
		t.Fatal(err)
	}
	h, err := OpenHeap("heap", fm, pool)
	if err != nil {
		t.Fatal(err)
	}
	return h, pool
}

func TestHeapInsertGetDelete(t *testing.T) {
	h, _ := newHeap(t)
	rid, err := h.Insert(nil, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Get(rid)
	if err != nil || string(got) != "hello" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := h.Delete(nil, rid); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Get(rid); !errors.Is(err, ErrNoSlot) {
		t.Fatalf("err = %v", err)
	}
	if rid.String() == "" {
		t.Fatal("RID string")
	}
}

func TestHeapManyPagesAndScan(t *testing.T) {
	h, _ := newHeap(t)
	const n = 500
	rids := make(map[string]RID, n)
	for i := 0; i < n; i++ {
		rec := []byte(fmt.Sprintf("record-%04d-%s", i, bytes.Repeat([]byte("x"), 50)))
		rid, err := h.Insert(nil, rec)
		if err != nil {
			t.Fatal(err)
		}
		rids[string(rec)] = rid
	}
	count, err := h.Count()
	if err != nil || count != n {
		t.Fatalf("Count = %d, %v", count, err)
	}
	seen := 0
	err = h.Scan(func(rid RID, rec []byte) error {
		want, ok := rids[string(rec)]
		if !ok || want != rid {
			return fmt.Errorf("unexpected record %q at %v", rec, rid)
		}
		seen++
		return nil
	})
	if err != nil || seen != n {
		t.Fatalf("scan: %d, %v", seen, err)
	}
}

func TestHeapUpdateInPlaceAndMoved(t *testing.T) {
	h, _ := newHeap(t)
	rid, _ := h.Insert(nil, []byte("short"))
	// In-place update.
	nrid, err := h.Update(nil, rid, []byte("tiny"))
	if err != nil || nrid != rid {
		t.Fatalf("update = %v, %v", nrid, err)
	}
	if got, _ := h.Get(rid); string(got) != "tiny" {
		t.Fatalf("Get = %q", got)
	}
	// Fill the page so a big update must move the record.
	filler := bytes.Repeat([]byte("f"), 900)
	for i := 0; i < 4; i++ {
		if _, err := h.Insert(nil, filler); err != nil {
			t.Fatal(err)
		}
	}
	big := bytes.Repeat([]byte("B"), 2000)
	nrid, err = h.Update(nil, rid, big)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := h.Get(nrid); !bytes.Equal(got, big) {
		t.Fatal("moved record content lost")
	}
	if nrid == rid {
		// Acceptable only if it stayed; verify content either way.
		t.Log("update fit in place after compaction")
	} else if _, err := h.Get(rid); !errors.Is(err, ErrNoSlot) {
		t.Fatal("old RID must be dead after move")
	}
}

func TestHeapDeletedSpaceReused(t *testing.T) {
	h, _ := newHeap(t)
	rec := bytes.Repeat([]byte("r"), 500)
	var rids []RID
	for i := 0; i < 20; i++ {
		rid, err := h.Insert(nil, rec)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	pagesBefore := h.pool.NumPages()
	// Free a whole page worth of records, then insert again.
	for _, rid := range rids[:8] {
		if err := h.Delete(nil, rid); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		if _, err := h.Insert(nil, rec); err != nil {
			t.Fatal(err)
		}
	}
	if h.pool.NumPages() != pagesBefore {
		t.Fatalf("pages grew %d -> %d despite free space", pagesBefore, h.pool.NumPages())
	}
}

func TestHeapRecordTooLarge(t *testing.T) {
	h, _ := newHeap(t)
	big := make([]byte, storage.PayloadSize)
	if _, err := h.Insert(nil, big); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("err = %v", err)
	}
	rid, _ := h.Insert(nil, []byte("ok"))
	if _, err := h.Update(nil, rid, big); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestHeapDrop(t *testing.T) {
	h, _ := newHeap(t)
	if _, err := h.Insert(nil, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := h.Drop(); err != nil {
		t.Fatal(err)
	}
	if err := h.Scan(func(RID, []byte) error { return nil }); !errors.Is(err, storage.ErrFileNotFound) {
		t.Fatalf("err = %v", err)
	}
}

// fakeTxn implements TxnContext recording updates.
type fakeTxn struct {
	id      uint64
	lastLSN wal.LSN
	recs    []*wal.Record
}

func (f *fakeTxn) ID() uint64           { return f.id }
func (f *fakeTxn) LastLSN() wal.LSN     { return f.lastLSN }
func (f *fakeTxn) Record(r *wal.Record) { f.recs = append(f.recs, r); f.lastLSN = r.LSN }

func TestHeapWALLogging(t *testing.T) {
	d, _ := storage.OpenDisk(storage.NewMemDevice())
	pool := buffer.New(d, 16, buffer.NewLRU())
	fm, _ := storage.OpenFileManager(pool)
	h, _ := OpenHeap("heap", fm, pool)
	logDev := storage.NewMemDevice()
	l, err := wal.Open(logDev)
	if err != nil {
		t.Fatal(err)
	}
	h.SetLog(l)
	pool.SetBeforeEvict(l.BeforeEvict())

	tx := &fakeTxn{id: 42}
	rid, err := h.Insert(tx, []byte("logged"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tx.recs) != 1 {
		t.Fatalf("recs = %d", len(tx.recs))
	}
	rec := tx.recs[0]
	if rec.Txn != 42 || rec.PageID != rid.Page || rec.Type != wal.RecUpdate {
		t.Fatalf("rec = %+v", rec)
	}
	if len(rec.Before) != len(rec.After) || len(rec.Before) == 0 {
		t.Fatalf("images: before %d after %d", len(rec.Before), len(rec.After))
	}
	// The after image contains the record bytes somewhere.
	if !bytes.Contains(rec.After, []byte("logged")) {
		t.Fatal("after image must contain the inserted record")
	}
	// Chaining: a second op records PrevLSN of the first.
	if _, err := h.Insert(tx, []byte("second")); err != nil {
		t.Fatal(err)
	}
	if tx.recs[1].PrevLSN != rec.LSN {
		t.Fatalf("PrevLSN = %d, want %d", tx.recs[1].PrevLSN, rec.LSN)
	}
	// Unlogged when tx == nil.
	before := len(tx.recs)
	if _, err := h.Insert(nil, []byte("unlogged")); err != nil {
		t.Fatal(err)
	}
	if len(tx.recs) != before {
		t.Fatal("nil txn must not log")
	}
}

func TestHeapWALRecoveryRoundTrip(t *testing.T) {
	// Build a heap on a durable device, log mutations, "crash" without
	// flushing the pool, recover from the log, and verify.
	dev := storage.NewMemDevice()
	d, _ := storage.OpenDisk(dev)
	pool := buffer.New(d, 16, buffer.NewLRU())
	fm, _ := storage.OpenFileManager(pool)
	h, _ := OpenHeap("heap", fm, pool)
	logDev := storage.NewMemDevice()
	l, _ := wal.Open(logDev)
	h.SetLog(l)
	pool.SetBeforeEvict(l.BeforeEvict())

	tx := &fakeTxn{id: 1}
	rid, err := h.Insert(tx, []byte("durable-record"))
	if err != nil {
		t.Fatal(err)
	}
	// File manager metadata must be durable for recovery to find the
	// heap (the directory is not WAL-logged; flush it explicitly, as
	// the engine does on DDL).
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// A second committed insert that never reaches the disk: redo must
	// replay it.
	rid1b, err := h.Insert(tx, []byte("redo-me"))
	if err != nil {
		t.Fatal(err)
	}

	tx2 := &fakeTxn{id: 2}
	rid2, err := h.Insert(tx2, []byte("lost-record"))
	if err != nil {
		t.Fatal(err)
	}
	_ = rid2
	// Commit tx (log flushed), tx2 stays in flight.
	if _, err := l.Append(&wal.Record{Txn: 1, Type: wal.RecCommit}); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(l.NextLSN()); err != nil {
		t.Fatal(err)
	}

	// "Crash": reopen the disk without flushing the pool; then recover.
	d2, err := storage.OpenDisk(dev)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := wal.Open(logDev)
	if err != nil {
		t.Fatal(err)
	}
	st, err := wal.Recover(l2, d2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Redone == 0 {
		t.Fatalf("stats = %+v, expected redo work", st)
	}
	pool2 := buffer.New(d2, 16, buffer.NewLRU())
	fm2, err := storage.OpenFileManager(pool2)
	if err != nil {
		t.Fatal(err)
	}
	// Redo repeated history, including the in-flight loser; finish its
	// rollback by applying the logical undo descriptors (the full
	// engine does this via txn.Manager.UndoLosers).
	if len(st.Losers) != 1 {
		t.Fatalf("losers = %d, want the in-flight txn", len(st.Losers))
	}
	for _, lt := range st.Losers {
		for i := len(lt.Records) - 1; i >= 0; i-- {
			if handled, err := ApplyHeapUndo(pool2, nil, nil, lt.Records[i].Undo); err != nil || !handled {
				t.Fatalf("heap undo: handled=%v err=%v", handled, err)
			}
		}
	}
	h2, err := OpenHeap("heap", fm2, pool2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h2.Get(rid)
	if err != nil || string(got) != "durable-record" {
		t.Fatalf("recovered Get = %q, %v", got, err)
	}
	got, err = h2.Get(rid1b)
	if err != nil || string(got) != "redo-me" {
		t.Fatalf("redone Get = %q, %v", got, err)
	}
	// The in-flight record was rolled back.
	count, err := h2.Count()
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("count after recovery = %d, want 2", count)
	}
}
