package access

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/buffer"
	"repro/internal/storage"
)

// TestHeapConcurrentInsertGetScan: parallel inserters grow the heap
// (racing for tail pages and the append path) while scanners sweep it;
// run under -race. Every successful insert must be readable afterwards
// with exactly its bytes.
func TestHeapConcurrentInsertGetScan(t *testing.T) {
	d, err := storage.OpenDisk(storage.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	pool := buffer.New(d, 256, buffer.NewLRU())
	fm, err := storage.OpenFileManager(pool)
	if err != nil {
		t.Fatal(err)
	}
	h, err := OpenHeap("c", fm, pool)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const perWorker = 300
	type ins struct {
		rid RID
		rec []byte
	}
	results := make([][]ins, workers)
	var wg sync.WaitGroup
	errs := make(chan error, workers+2)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				rec := []byte(fmt.Sprintf("w%02d-i%04d-%s", w, i, "payloadpayload"))
				rid, err := h.Insert(nil, rec)
				if err != nil {
					errs <- err
					return
				}
				results[w] = append(results[w], ins{rid, rec})
				if i%7 == 0 {
					got, err := h.Get(rid)
					if err != nil || !bytes.HasPrefix(got, rec) {
						errs <- fmt.Errorf("read-own-write %v: %q, %v", rid, got, err)
						return
					}
				}
			}
		}()
	}
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := h.Scan(func(RID, []byte) error { return nil }); err != nil {
					errs <- fmt.Errorf("scan: %w", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	seen := map[RID]bool{}
	total := 0
	for w := range results {
		for _, in := range results[w] {
			if seen[in.rid] {
				t.Fatalf("rid %v handed out twice", in.rid)
			}
			seen[in.rid] = true
			got, err := h.Get(in.rid)
			if err != nil {
				t.Fatalf("Get(%v): %v", in.rid, err)
			}
			if !bytes.Equal(got, in.rec) {
				t.Fatalf("Get(%v) = %q, want %q", in.rid, got, in.rec)
			}
			total++
		}
	}
	count, err := h.Count()
	if err != nil {
		t.Fatal(err)
	}
	if count != total {
		t.Fatalf("Count = %d, want %d", count, total)
	}
}

// TestHeapUpdateInPlacePadding: the padded in-place update keeps the
// cell length, so shrinking and re-growing within the original cell
// always succeeds, and the undo descriptor's cell restore fits by
// construction.
func TestHeapUpdateInPlacePadding(t *testing.T) {
	h, _ := newHeap(t)
	rid, err := h.Insert(nil, []byte("0123456789"))
	if err != nil {
		t.Fatal(err)
	}
	ok, err := h.UpdateInPlace(nil, rid, []byte("abc"))
	if err != nil || !ok {
		t.Fatalf("shrink in place: %v %v", ok, err)
	}
	cell, err := h.Get(rid)
	if err != nil {
		t.Fatal(err)
	}
	if len(cell) != 10 || !bytes.Equal(cell[:3], []byte("abc")) {
		t.Fatalf("cell = %q, want abc + padding in a 10-byte cell", cell)
	}
	for _, b := range cell[3:] {
		if b != 0 {
			t.Fatalf("padding not zeroed: %q", cell)
		}
	}
	// Regrow within the cell.
	ok, err = h.UpdateInPlace(nil, rid, []byte("0123456789"))
	if err != nil || !ok {
		t.Fatalf("regrow in place: %v %v", ok, err)
	}
	// Beyond the cell: refused without mutation.
	ok, err = h.UpdateInPlace(nil, rid, []byte("01234567890"))
	if err != nil || ok {
		t.Fatalf("overflow must report !ok, got %v %v", ok, err)
	}
	cell, _ = h.Get(rid)
	if !bytes.Equal(cell, []byte("0123456789")) {
		t.Fatalf("cell mutated by failed update: %q", cell)
	}
}
