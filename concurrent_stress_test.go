package sbdms

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/txn"
)

// openStressDB opens a WAL-enabled in-memory DB sized for concurrency
// (a pool large enough that latched descents never starve for frames).
func openStressDB(t *testing.T, dataDev, logDev storage.Device) *DB {
	t.Helper()
	db, err := Open(Options{
		Device:       dataDev,
		LogDevice:    logDev,
		Granularity:  Monolithic,
		BufferFrames: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestKVConcurrentDisjointStripes: parallel workers over disjoint key
// stripes doing put/get/delete while scanners sweep the whole range;
// run under -race. Each worker verifies its own reads inline; the
// final state must match every worker's last committed action.
func TestKVConcurrentDisjointStripes(t *testing.T) {
	db := openStressDB(t, storage.NewMemDevice(), storage.NewMemDevice())
	defer db.Close(context.Background())

	const workers = 8
	const keysPer = 40
	const opsPer = 300
	finals := make([]map[string]string, workers)
	var wg sync.WaitGroup
	errs := make(chan error, workers+2)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			live := map[string]string{}
			for i := 0; i < opsPer; i++ {
				k := fmt.Sprintf("w%02d-key-%03d", w, rng.Intn(keysPer))
				switch {
				case rng.Intn(10) < 6:
					v := fmt.Sprintf("v-%d-%d-%s", w, i, strings.Repeat("x", rng.Intn(60)))
					if err := db.Put(k, []byte(v)); err != nil {
						errs <- fmt.Errorf("put %s: %w", k, err)
						return
					}
					live[k] = v
				case rng.Intn(2) == 0:
					if _, ok := live[k]; ok {
						if err := db.DeleteKey(k); err != nil {
							errs <- fmt.Errorf("delete %s: %w", k, err)
							return
						}
						delete(live, k)
					}
				default:
					got, err := db.Get(k)
					want, ok := live[k]
					if ok && (err != nil || string(got) != want) {
						errs <- fmt.Errorf("get %s = %q, %v; want %q", k, got, err, want)
						return
					}
					if !ok && err == nil {
						errs <- fmt.Errorf("get %s returned a value for a deleted key", k)
						return
					}
				}
			}
			finals[w] = live
		}()
	}
	// Scanners sweep concurrently; they must never error, whatever
	// keys come and go beneath them.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if _, err := db.ScanKeys("", 10_000); err != nil {
					errs <- fmt.Errorf("scan: %w", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}

	want := 0
	for w := range finals {
		want += len(finals[w])
		for k, v := range finals[w] {
			got, err := db.Get(k)
			if err != nil || string(got) != v {
				t.Fatalf("final Get(%s) = %q, %v; want %q", k, got, err, v)
			}
		}
	}
	if got := db.KVLen(); got != uint64(want) {
		t.Fatalf("KVLen = %d, want %d", got, want)
	}
}

// TestKVConcurrentSharedKeys hammers a tiny shared key set from many
// goroutines: maximal lock conflict. Every operation must either
// succeed or fail with a documented error (not-found or retryable
// conflict), and the engine must stay consistent.
func TestKVConcurrentSharedKeys(t *testing.T) {
	db := openStressDB(t, storage.NewMemDevice(), storage.NewMemDevice())
	defer db.Close(context.Background())

	const workers = 8
	const sharedKeys = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("hot-%d", rng.Intn(sharedKeys))
				var err error
				switch rng.Intn(4) {
				case 0:
					err = db.Put(k, []byte(fmt.Sprintf("w%d-%d", w, i)))
				case 1:
					_, err = db.Get(k)
				case 2:
					err = db.DeleteKey(k)
				default:
					_, err = db.ScanKeys("hot-", sharedKeys+1)
				}
				if err != nil && !isNotFound(err) && !IsConflict(err) {
					errs <- fmt.Errorf("w%d op %d on %s: %w", w, i, k, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	// Consistency: Len agrees with an exhaustive scan.
	keys, err := db.ScanKeys("", 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := db.KVLen(); got != uint64(len(keys)) {
		t.Fatalf("KVLen = %d, scan found %d keys (%v)", got, len(keys), keys)
	}
	// Survives a clean restart with the same state.
	for _, k := range keys {
		if _, err := db.Get(k); err != nil {
			t.Fatalf("surviving key %s unreadable: %v", k, err)
		}
	}
}

// TestKVBatchConflictsResolve: concurrent multi-key batches over
// overlapping keys. Lock acquisition in sorted key order means batches
// cannot deadlock each other — every batch must succeed outright.
func TestKVBatchConflictsResolve(t *testing.T) {
	db := openStressDB(t, storage.NewMemDevice(), storage.NewMemDevice())
	defer db.Close(context.Background())

	const workers = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(7 * (w + 1))))
			for i := 0; i < 50; i++ {
				n := 3 + rng.Intn(5)
				keys := make([]string, n)
				vals := make([][]byte, n)
				for j := 0; j < n; j++ {
					keys[j] = fmt.Sprintf("shared-%02d", rng.Intn(16))
					vals[j] = []byte(fmt.Sprintf("b%d-%d-%d", w, i, j))
				}
				if err := db.PutBatch(keys, vals); err != nil {
					errs <- fmt.Errorf("w%d batch %d: %w", w, i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

// TestKVLockWaitContextCancellation: a write blocked behind a
// conflicting transaction returns the context error instead of waiting
// forever — the lock-wait cancellation path end to end.
func TestKVLockWaitContextCancellation(t *testing.T) {
	db := openStressDB(t, storage.NewMemDevice(), storage.NewMemDevice())
	defer db.Close(context.Background())
	if err := db.Put("k", []byte("v0")); err != nil {
		t.Fatal(err)
	}
	// Park a foreign exclusive lock on the key, as a long transaction
	// would.
	blocker := db.Txns().ReserveID()
	if err := db.Txns().Locks().Acquire(context.Background(), blocker, "kv/k", txn.Exclusive); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := db.PutContext(ctx, "k", []byte("v1"))
	if err == nil || ctx.Err() == nil {
		t.Fatalf("blocked put returned %v before cancellation", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation not observed promptly")
	}
	// Reads under shared locks block too; same cancellation path.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	if _, err := db.GetContext(ctx2, "k"); err == nil {
		t.Fatal("blocked get returned before cancellation")
	}
	db.Txns().Locks().ReleaseAll(blocker)
	// The engine is unharmed: the aborted put left no trace.
	got, err := db.Get("k")
	if err != nil || string(got) != "v0" {
		t.Fatalf("Get after cancelled put = %q, %v", got, err)
	}
}
