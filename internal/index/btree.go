// Package index implements a disk-resident B+tree over buffer-managed
// pages: variable-length byte keys with order-preserving composite
// encoding, duplicate support, range scans over a linked leaf chain,
// and lazy deletion with root collapse. It is the access-path service
// of the SBDMS Access layer ("access path structure, such as B-trees",
// Section 3.1).
package index

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/access"
	"repro/internal/buffer"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Index errors.
var (
	// ErrDuplicateKey is returned by unique indexes on key collision.
	ErrDuplicateKey = errors.New("index: duplicate key")
	// ErrCorrupt is returned when a node fails to decode.
	ErrCorrupt = errors.New("index: corrupt node")
)

const indexMagic = 0x5342444d53425431 // "SBDMSBT1"

// BTree is a B+tree keyed by arbitrary byte strings (use
// access.EncodeKey for order-preserving value encodings), mapping each
// key to one or more access.RIDs. Deletion is lazy: entries are removed
// but nodes are not rebalanced, except that an empty internal root
// collapses. This trades space for simplicity without affecting
// correctness.
type BTree struct {
	pool   *buffer.Manager
	log    *wal.Log
	metaID storage.PageID
	mu     sync.RWMutex
	root   storage.PageID
	count  uint64
	unique bool
}

// Create allocates a new empty tree and returns it with its metadata
// page id (persist that id in the catalog to reopen the tree).
func Create(pool *buffer.Manager, unique bool) (*BTree, storage.PageID, error) {
	meta, err := pool.NewPage(storage.PageTypeIndex)
	if err != nil {
		return nil, 0, err
	}
	rootF, err := pool.NewPage(storage.PageTypeIndex)
	if err != nil {
		_ = pool.Unpin(meta.ID, false)
		return nil, 0, err
	}
	root := &node{id: rootF.ID, leaf: true}
	if err := root.encode(rootF.Page()); err != nil {
		return nil, 0, err
	}
	if err := pool.Unpin(rootF.ID, true); err != nil {
		return nil, 0, err
	}
	t := &BTree{pool: pool, metaID: meta.ID, root: rootF.ID, unique: unique}
	t.writeMeta(meta.Page())
	if err := pool.Unpin(meta.ID, true); err != nil {
		return nil, 0, err
	}
	return t, meta.ID, nil
}

// Open loads an existing tree from its metadata page.
func Open(pool *buffer.Manager, metaID storage.PageID) (*BTree, error) {
	f, err := pool.Pin(metaID)
	if err != nil {
		return nil, err
	}
	defer pool.Unpin(metaID, false)
	pl := f.Page().Payload()
	if binary.LittleEndian.Uint64(pl) != indexMagic {
		return nil, fmt.Errorf("%w: bad meta magic on page %d", ErrCorrupt, metaID)
	}
	t := &BTree{
		pool:   pool,
		metaID: metaID,
		root:   storage.PageID(binary.LittleEndian.Uint64(pl[8:])),
		count:  binary.LittleEndian.Uint64(pl[16:]),
		unique: pl[24] == 1,
	}
	return t, nil
}

func (t *BTree) writeMeta(p *storage.Page) {
	pl := p.Payload()
	binary.LittleEndian.PutUint64(pl, indexMagic)
	binary.LittleEndian.PutUint64(pl[8:], uint64(t.root))
	binary.LittleEndian.PutUint64(pl[16:], t.count)
	if t.unique {
		pl[24] = 1
	} else {
		pl[24] = 0
	}
}

// SetLog attaches a write-ahead log; subsequent mutations through a
// non-nil access.TxnContext are logged with physical before/after
// images, mirroring access.HeapFile. Structure modifications (splits,
// root changes) are covered too: every dirtied page gets a record, so
// redo replays them and undo restores the exact prior bytes. The tree
// serialises writers under its own mutex, which is what makes physical
// undo of structure modifications safe.
func (t *BTree) SetLog(l *wal.Log) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.log = l
}

// mutatePage applies fn to pid under the tree's pool and log, via the
// shared access.MutatePage logging protocol.
func (t *BTree) mutatePage(tx access.TxnContext, pid storage.PageID, fn func(p *storage.Page) error) error {
	return access.MutatePage(t.pool, t.log, tx, pid, fn)
}

func (t *BTree) flushMetaLocked(tx access.TxnContext) error {
	return t.mutatePage(tx, t.metaID, func(p *storage.Page) error {
		t.writeMeta(p)
		return nil
	})
}

// ReloadMeta re-reads the tree's root pointer and entry count from the
// metadata page, discarding the in-memory copies. A transaction abort
// restores page bytes from physical before images, which rewinds the
// meta page but not this struct; callers re-synchronise with the
// restored state by reloading after a rollback.
func (t *BTree) ReloadMeta() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	f, err := t.pool.Pin(t.metaID)
	if err != nil {
		return err
	}
	pl := f.Page().Payload()
	if binary.LittleEndian.Uint64(pl) != indexMagic {
		_ = t.pool.Unpin(t.metaID, false)
		return fmt.Errorf("%w: bad meta magic on page %d", ErrCorrupt, t.metaID)
	}
	t.root = storage.PageID(binary.LittleEndian.Uint64(pl[8:]))
	t.count = binary.LittleEndian.Uint64(pl[16:])
	return t.pool.Unpin(t.metaID, false)
}

// MetaID returns the metadata page id used to reopen the tree.
func (t *BTree) MetaID() storage.PageID { return t.metaID }

// Unique reports whether the tree enforces key uniqueness.
func (t *BTree) Unique() bool { return t.unique }

// Len returns the number of entries.
func (t *BTree) Len() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.count
}

// --- composite key encoding -------------------------------------------

// compositeKey escapes the user key (0x00 -> 0x00 0xFF), appends the
// 0x00 0x00 terminator and the big-endian RID, yielding a byte string
// whose order is (key, rid) with no prefix ambiguity.
func compositeKey(key []byte, rid access.RID) []byte {
	out := make([]byte, 0, len(key)+14)
	for _, b := range key {
		if b == 0x00 {
			out = append(out, 0x00, 0xFF)
		} else {
			out = append(out, b)
		}
	}
	out = append(out, 0x00, 0x00)
	var tail [10]byte
	binary.BigEndian.PutUint64(tail[:8], uint64(rid.Page))
	binary.BigEndian.PutUint16(tail[8:], rid.Slot)
	return append(out, tail[:]...)
}

// splitComposite recovers the user key and RID from a composite key.
func splitComposite(ck []byte) ([]byte, access.RID, error) {
	if len(ck) < 12 {
		return nil, access.RID{}, fmt.Errorf("%w: composite key too short", ErrCorrupt)
	}
	ridPart := ck[len(ck)-10:]
	body := ck[:len(ck)-12] // strip rid and terminator
	key := make([]byte, 0, len(body))
	for i := 0; i < len(body); i++ {
		if body[i] == 0x00 {
			if i+1 >= len(body) || body[i+1] != 0xFF {
				return nil, access.RID{}, fmt.Errorf("%w: bad escape", ErrCorrupt)
			}
			key = append(key, 0x00)
			i++
			continue
		}
		key = append(key, body[i])
	}
	rid := access.RID{
		Page: storage.PageID(binary.BigEndian.Uint64(ridPart[:8])),
		Slot: binary.BigEndian.Uint16(ridPart[8:]),
	}
	return key, rid, nil
}

// keyPrefixBounds returns [lo, hi) composite bounds covering every rid
// of the exact user key.
func keyPrefixBounds(key []byte) (lo, hi []byte) {
	base := make([]byte, 0, len(key)+2)
	for _, b := range key {
		if b == 0x00 {
			base = append(base, 0x00, 0xFF)
		} else {
			base = append(base, b)
		}
	}
	lo = append(append([]byte(nil), base...), 0x00, 0x00)
	hi = append(append([]byte(nil), base...), 0x00, 0x01)
	return lo, hi
}

// --- node representation -----------------------------------------------

// node is the decoded form of a tree page.
//
// Leaf payload:    u8 1 | u16 n | n * (u16 len | composite key)
// Internal payload: u8 0 | u16 n | u64 child0 | n * (u16 len | key | u64 child)
// Leaf sibling links use the page header next/prev fields.
type node struct {
	id       storage.PageID
	leaf     bool
	keys     [][]byte
	children []storage.PageID // internal: len(keys)+1
	next     storage.PageID   // leaf chain
	prev     storage.PageID
}

func (n *node) encodedSize() int {
	sz := 3
	if n.leaf {
		for _, k := range n.keys {
			sz += 2 + len(k)
		}
		return sz
	}
	sz += 8
	for _, k := range n.keys {
		sz += 2 + len(k) + 8
	}
	return sz
}

func (n *node) encode(p *storage.Page) error {
	if n.encodedSize() > storage.PayloadSize {
		return fmt.Errorf("%w: node %d overflow (%d bytes)", ErrCorrupt, n.id, n.encodedSize())
	}
	p.SetType(storage.PageTypeIndex)
	p.SetNext(n.next)
	p.SetPrev(n.prev)
	pl := p.Payload()
	if n.leaf {
		pl[0] = 1
	} else {
		pl[0] = 0
	}
	binary.LittleEndian.PutUint16(pl[1:], uint16(len(n.keys)))
	off := 3
	if !n.leaf {
		var c0 storage.PageID
		if len(n.children) > 0 {
			c0 = n.children[0]
		}
		binary.LittleEndian.PutUint64(pl[off:], uint64(c0))
		off += 8
	}
	for i, k := range n.keys {
		binary.LittleEndian.PutUint16(pl[off:], uint16(len(k)))
		off += 2
		copy(pl[off:], k)
		off += len(k)
		if !n.leaf {
			binary.LittleEndian.PutUint64(pl[off:], uint64(n.children[i+1]))
			off += 8
		}
	}
	return nil
}

func decodeNode(p *storage.Page) (*node, error) {
	pl := p.Payload()
	n := &node{id: p.ID, leaf: pl[0] == 1, next: p.Next(), prev: p.Prev()}
	cnt := int(binary.LittleEndian.Uint16(pl[1:]))
	off := 3
	if !n.leaf {
		if off+8 > len(pl) {
			return nil, fmt.Errorf("%w: page %d truncated", ErrCorrupt, p.ID)
		}
		n.children = append(n.children, storage.PageID(binary.LittleEndian.Uint64(pl[off:])))
		off += 8
	}
	for i := 0; i < cnt; i++ {
		if off+2 > len(pl) {
			return nil, fmt.Errorf("%w: page %d truncated", ErrCorrupt, p.ID)
		}
		klen := int(binary.LittleEndian.Uint16(pl[off:]))
		off += 2
		if off+klen > len(pl) {
			return nil, fmt.Errorf("%w: page %d truncated key", ErrCorrupt, p.ID)
		}
		n.keys = append(n.keys, append([]byte(nil), pl[off:off+klen]...))
		off += klen
		if !n.leaf {
			if off+8 > len(pl) {
				return nil, fmt.Errorf("%w: page %d truncated child", ErrCorrupt, p.ID)
			}
			n.children = append(n.children, storage.PageID(binary.LittleEndian.Uint64(pl[off:])))
			off += 8
		}
	}
	return n, nil
}

func (t *BTree) loadNode(id storage.PageID) (*node, error) {
	f, err := t.pool.Pin(id)
	if err != nil {
		return nil, err
	}
	n, err := decodeNode(f.Page())
	if uerr := t.pool.Unpin(id, false); uerr != nil && err == nil {
		err = uerr
	}
	return n, err
}

func (t *BTree) storeNode(tx access.TxnContext, n *node) error {
	return t.mutatePage(tx, n.id, n.encode)
}

func (t *BTree) newNode(tx access.TxnContext, leaf bool) (*node, error) {
	f, err := t.pool.NewPage(storage.PageTypeIndex)
	if err != nil {
		return nil, err
	}
	if err := t.pool.Unpin(f.ID, true); err != nil {
		return nil, err
	}
	// Encode through mutatePage so the node's birth is logged (the
	// freshly zeroed page has LSN 0, producing a full image).
	n := &node{id: f.ID, leaf: leaf}
	if err := t.storeNode(tx, n); err != nil {
		return nil, err
	}
	return n, nil
}

// --- operations ---------------------------------------------------------

// Insert adds (key, rid). Unique trees reject an existing key with
// ErrDuplicateKey.
func (t *BTree) Insert(key []byte, rid access.RID) error {
	return t.InsertTx(nil, key, rid)
}

// InsertTx adds (key, rid), logging every dirtied page (leaf, split
// siblings, parents, metadata) under tx when a WAL is attached.
func (t *BTree) InsertTx(tx access.TxnContext, key []byte, rid access.RID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.unique {
		rids, err := t.searchLocked(key)
		if err != nil {
			return err
		}
		if len(rids) > 0 {
			return fmt.Errorf("%w: %q", ErrDuplicateKey, key)
		}
	}
	ck := compositeKey(key, rid)
	sep, right, split, err := t.insertRec(tx, t.root, ck)
	if err != nil {
		return err
	}
	if split {
		newRoot, err := t.newNode(tx, false)
		if err != nil {
			return err
		}
		newRoot.keys = [][]byte{sep}
		newRoot.children = []storage.PageID{t.root, right}
		if err := t.storeNode(tx, newRoot); err != nil {
			return err
		}
		t.root = newRoot.id
	}
	t.count++
	return t.flushMetaLocked(tx)
}

func (t *BTree) insertRec(tx access.TxnContext, id storage.PageID, ck []byte) (sep []byte, right storage.PageID, split bool, err error) {
	n, err := t.loadNode(id)
	if err != nil {
		return nil, 0, false, err
	}
	if n.leaf {
		pos := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], ck) >= 0 })
		if pos < len(n.keys) && bytes.Equal(n.keys[pos], ck) {
			return nil, 0, false, nil // exact duplicate (same key+rid): no-op
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[pos+1:], n.keys[pos:])
		n.keys[pos] = ck
		if n.encodedSize() <= storage.PayloadSize {
			return nil, 0, false, t.storeNode(tx, n)
		}
		return t.splitLeaf(tx, n)
	}
	idx := childIndex(n, ck)
	csep, cright, csplit, err := t.insertRec(tx, n.children[idx], ck)
	if err != nil {
		return nil, 0, false, err
	}
	if !csplit {
		return nil, 0, false, nil
	}
	n.keys = append(n.keys, nil)
	copy(n.keys[idx+1:], n.keys[idx:])
	n.keys[idx] = csep
	n.children = append(n.children, 0)
	copy(n.children[idx+2:], n.children[idx+1:])
	n.children[idx+1] = cright
	if n.encodedSize() <= storage.PayloadSize {
		return nil, 0, false, t.storeNode(tx, n)
	}
	return t.splitInternal(tx, n)
}

func childIndex(n *node, ck []byte) int {
	return sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(ck, n.keys[i]) < 0 })
}

func (t *BTree) splitLeaf(tx access.TxnContext, n *node) ([]byte, storage.PageID, bool, error) {
	mid := len(n.keys) / 2
	rightN, err := t.newNode(tx, true)
	if err != nil {
		return nil, 0, false, err
	}
	rightN.keys = append(rightN.keys, n.keys[mid:]...)
	n.keys = n.keys[:mid]
	// Leaf chain: n <-> rightN <-> oldNext.
	rightN.next = n.next
	rightN.prev = n.id
	oldNext := n.next
	n.next = rightN.id
	if err := t.storeNode(tx, rightN); err != nil {
		return nil, 0, false, err
	}
	if err := t.storeNode(tx, n); err != nil {
		return nil, 0, false, err
	}
	if oldNext != storage.InvalidPageID {
		on, err := t.loadNode(oldNext)
		if err != nil {
			return nil, 0, false, err
		}
		on.prev = rightN.id
		if err := t.storeNode(tx, on); err != nil {
			return nil, 0, false, err
		}
	}
	sep := append([]byte(nil), rightN.keys[0]...)
	return sep, rightN.id, true, nil
}

func (t *BTree) splitInternal(tx access.TxnContext, n *node) ([]byte, storage.PageID, bool, error) {
	mid := len(n.keys) / 2
	sep := append([]byte(nil), n.keys[mid]...)
	rightN, err := t.newNode(tx, false)
	if err != nil {
		return nil, 0, false, err
	}
	rightN.keys = append(rightN.keys, n.keys[mid+1:]...)
	rightN.children = append(rightN.children, n.children[mid+1:]...)
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	if err := t.storeNode(tx, rightN); err != nil {
		return nil, 0, false, err
	}
	if err := t.storeNode(tx, n); err != nil {
		return nil, 0, false, err
	}
	return sep, rightN.id, true, nil
}

// Search returns every RID stored under the exact key.
func (t *BTree) Search(key []byte) ([]access.RID, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.searchLocked(key)
}

func (t *BTree) searchLocked(key []byte) ([]access.RID, error) {
	lo, hi := keyPrefixBounds(key)
	var out []access.RID
	err := t.rangeLocked(lo, hi, func(ck []byte) error {
		_, rid, err := splitComposite(ck)
		if err != nil {
			return err
		}
		out = append(out, rid)
		return nil
	})
	return out, err
}

// Delete removes (key, rid) and reports whether it was present.
func (t *BTree) Delete(key []byte, rid access.RID) (bool, error) {
	return t.DeleteTx(nil, key, rid)
}

// DeleteTx removes (key, rid) under tx, logging the dirtied pages.
func (t *BTree) DeleteTx(tx access.TxnContext, key []byte, rid access.RID) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ck := compositeKey(key, rid)
	id := t.root
	// Descend to the leaf.
	var path []*node
	for {
		n, err := t.loadNode(id)
		if err != nil {
			return false, err
		}
		path = append(path, n)
		if n.leaf {
			break
		}
		id = n.children[childIndex(n, ck)]
	}
	leaf := path[len(path)-1]
	pos := sort.Search(len(leaf.keys), func(i int) bool { return bytes.Compare(leaf.keys[i], ck) >= 0 })
	if pos >= len(leaf.keys) || !bytes.Equal(leaf.keys[pos], ck) {
		return false, nil
	}
	leaf.keys = append(leaf.keys[:pos], leaf.keys[pos+1:]...)
	if err := t.storeNode(tx, leaf); err != nil {
		return false, err
	}
	t.count--
	// Root collapse: an internal root with no keys has one child.
	for {
		root, err := t.loadNode(t.root)
		if err != nil {
			return false, err
		}
		if root.leaf || len(root.keys) > 0 {
			break
		}
		old := t.root
		t.root = root.children[0]
		// Under a transaction the free is deferred until the commit is
		// durable: an abort (or crash undo) restores the old root
		// pointer, which must not then reference a reallocated page.
		switch h := tx.(type) {
		case nil:
			if err := t.pool.Deallocate(old); err != nil {
				return false, err
			}
		case interface{ OnCommitted(func()) }:
			pool := t.pool
			h.OnCommitted(func() { _ = pool.Deallocate(old) })
		}
		// Other TxnContext implementations leak the page (safe).
	}
	return true, t.flushMetaLocked(tx)
}

// Range iterates entries with lo <= key < hi (nil bounds are
// unbounded), in key order, calling fn with the user key and RID.
func (t *BTree) Range(lo, hi []byte, fn func(key []byte, rid access.RID) error) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var clo, chi []byte
	if lo != nil {
		clo, _ = keyPrefixBounds(lo)
	}
	if hi != nil {
		chi, _ = keyPrefixBounds(hi)
	}
	return t.rangeLocked(clo, chi, func(ck []byte) error {
		key, rid, err := splitComposite(ck)
		if err != nil {
			return err
		}
		return fn(key, rid)
	})
}

// rangeLocked walks composite keys in [clo, chi) (nil = unbounded).
func (t *BTree) rangeLocked(clo, chi []byte, fn func(ck []byte) error) error {
	// Descend to the leaf containing clo (or the leftmost leaf).
	id := t.root
	for {
		n, err := t.loadNode(id)
		if err != nil {
			return err
		}
		if n.leaf {
			break
		}
		if clo == nil {
			id = n.children[0]
		} else {
			id = n.children[childIndex(n, clo)]
		}
	}
	for id != storage.InvalidPageID {
		n, err := t.loadNode(id)
		if err != nil {
			return err
		}
		start := 0
		if clo != nil {
			start = sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], clo) >= 0 })
		}
		for i := start; i < len(n.keys); i++ {
			if chi != nil && bytes.Compare(n.keys[i], chi) >= 0 {
				return nil
			}
			if err := fn(n.keys[i]); err != nil {
				return err
			}
		}
		clo = nil // subsequent leaves start at 0
		id = n.next
	}
	return nil
}

// Height returns the tree height (1 for a lone leaf).
func (t *BTree) Height() (int, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	h := 1
	id := t.root
	for {
		n, err := t.loadNode(id)
		if err != nil {
			return 0, err
		}
		if n.leaf {
			return h, nil
		}
		h++
		id = n.children[0]
	}
}

// Drop frees every page of the tree including the metadata page.
func (t *BTree) Drop() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.dropRec(t.root); err != nil {
		return err
	}
	return t.pool.Deallocate(t.metaID)
}

func (t *BTree) dropRec(id storage.PageID) error {
	n, err := t.loadNode(id)
	if err != nil {
		return err
	}
	if !n.leaf {
		for _, c := range n.children {
			if err := t.dropRec(c); err != nil {
				return err
			}
		}
	}
	return t.pool.Deallocate(id)
}
