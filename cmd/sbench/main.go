// Command sbench regenerates every experiment of EXPERIMENTS.md and
// prints the result tables. Run all experiments with no arguments, or
// select one with -exp (f1, f2, f5, f6, f7, g1, g2, g3, g4, g5, g6,
// g7, g9, g10, g11).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	sbdms "repro"
	"repro/internal/buffer"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
	"repro/internal/workload"
)

var (
	flagGroupWindow = flag.Duration("wal-group-window", 0, "WAL group-commit window for g1/g5 (0 = coalesce without waiting)")
	flagGroupBytes  = flag.Int("wal-group-bytes", 0, "end the WAL group window early past this many pending bytes")
	flagSiblings    = flag.Int("wal-commit-siblings", 0, "min sibling txns to hold the group window (0 = gate at 1, <0 = no gate)")
	flagShards      = flag.Int("shards", 0, "buffer pool shard count for g1/g5 (0 = auto)")
	flagG1WAL       = flag.Bool("g1-wal", false, "run the G1 sweep with the WAL enabled (storage-vs-granularity ablation)")
	flagSegBytes    = flag.Int("wal-segment-bytes", 0, "WAL segment roll threshold for g1 (0 = 4 MiB)")
	flagCkptEvery   = flag.Duration("checkpoint-interval", 0, "background fuzzy-checkpoint period for g1 (0 = off)")
	flagJSONDir     = flag.String("json", ".", "directory for BENCH_<EXP>.json reports (empty = disabled)")

	// G9 write-path fix gates: the baseline soak configuration. The g9
	// runner additionally runs one fallback soak per fix (the gate
	// flipped off relative to this baseline) so BENCH_G9.json always
	// carries before/after row pairs on the same host.
	flagOptDescent  = flag.Bool("optimistic-descent", true, "g9 baseline: optimistic B+tree insert descents (false = exclusive crab descents)")
	flagAppendDown  = flag.Bool("append-downgrade", true, "g9 baseline: release awaited append gap locks once the entry is visible (false = hold to commit)")
	flagInlineCkpt  = flag.Bool("inline-checkpoint-flush", false, "g9 baseline: flush the checkpoint dirty-page snapshot on the caller instead of the background flusher")
	flagSoakWriters = flag.Int("soak-writers", 8, "g9 concurrent writer goroutines")

	// G10 bulk-ingest knobs. -keys sets the import/putBatch load size
	// for g10 (use 1000000+ for the committed snapshot); the put-loop
	// row is capped separately because one commit force per key makes
	// the full size pointless to wait out.
	flagG10PutKeys = flag.Int("g10-put-keys", 20000, "g10: per-key Put loop row cap")
	flagG10Batch   = flag.Int("g10-batch", 10000, "g10: PutBatch chunk size")
)

// benchRows accumulates the structured rows of the experiment
// currently running; main flushes them to BENCH_<EXP>.json after each
// runner, so every sbench invocation leaves machine-readable evidence
// beside the printed tables (the ROADMAP perf flywheel). Durations
// serialize as nanoseconds.
var benchRows []any

func record(row any) { benchRows = append(benchRows, row) }

func writeReport(dir, exp string, ops, keys int) error {
	rows := benchRows
	benchRows = nil
	if dir == "" || len(rows) == 0 {
		return nil
	}
	// The host block keeps trajectory comparisons across machines
	// honest: a 1-core CI runner and a 32-core workstation measure very
	// different things, and the JSON says which one produced the rows.
	type hostInfo struct {
		GOMAXPROCS int    `json:"gomaxprocs"`
		NumCPU     int    `json:"numCPU"`
		GoVersion  string `json:"goVersion"`
		OS         string `json:"os"`
		Arch       string `json:"arch"`
		Timestamp  string `json:"timestamp"`
	}
	rep := struct {
		Experiment string   `json:"experiment"`
		Timestamp  string   `json:"timestamp"`
		Host       hostInfo `json:"host"`
		Ops        int      `json:"ops"`
		Keys       int      `json:"keys"`
		Rows       []any    `json:"rows"`
	}{strings.ToUpper(exp), time.Now().UTC().Format(time.RFC3339), hostInfo{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}, ops, keys, rows}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+strings.ToUpper(exp)+".json")
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func main() {
	exp := flag.String("exp", "all", "experiment id: f1|f2|f5|f6|f7|g1|g2|g3|g4|g5|g6|g7|g9|g10|g11|all")
	ops := flag.Int("ops", 20000, "operations per measurement")
	keys := flag.Int("keys", 2000, "key space size")
	flag.Parse()

	runners := map[string]func(int, int) error{
		"f1": runF1, "f2": runF2, "f5": runF5, "f6": runF6, "f7": runF7,
		"g1": runG1, "g2": runG2, "g3": runG3, "g4": runG4, "g5": runG5, "g6": runG6,
		"g7": runG7, "g9": runG9, "g10": runG10, "g11": runG11,
	}
	order := []string{"f1", "f2", "f5", "f6", "f7", "g1", "g2", "g3", "g4", "g5", "g6", "g7", "g9", "g10", "g11"}
	sel := strings.ToLower(*exp)
	if sel == "all" {
		for _, id := range order {
			if err := runExp(runners[id], id, *ops, *keys); err != nil {
				fmt.Fprintf(os.Stderr, "experiment %s: %v\n", id, err)
				os.Exit(1)
			}
		}
		return
	}
	r, ok := runners[sel]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", sel)
		os.Exit(2)
	}
	if err := runExp(r, sel, *ops, *keys); err != nil {
		fmt.Fprintf(os.Stderr, "experiment %s: %v\n", sel, err)
		os.Exit(1)
	}
}

func runExp(r func(int, int) error, id string, ops, keys int) error {
	benchRows = nil
	if err := r(ops, keys); err != nil {
		return err
	}
	return writeReport(*flagJSONDir, id, ops, keys)
}

func header(title string) {
	fmt.Println()
	fmt.Println("=== " + title + " ===")
}

func measure(g sbdms.Granularity, binding core.Binding, bindName string, mix workload.Mix, keys, ops int) (sbdms.KVMeasurement, error) {
	db, err := sbdms.Open(sbdms.Options{
		Granularity:  g,
		BufferFrames: 512,
		Binding:      binding,
		DisableWAL:   true,
	})
	if err != nil {
		return sbdms.KVMeasurement{}, err
	}
	defer db.Close(context.Background())
	if err := sbdms.Preload(db, keys, 100); err != nil {
		return sbdms.KVMeasurement{}, err
	}
	gen := workload.NewKV(workload.KVConfig{Seed: 1, Keys: keys, Mix: mix, Zipfian: true})
	m := sbdms.MeasureKV(db, gen, ops)
	if bindName != "" {
		m.Binding = bindName
	}
	return m, nil
}

// runF1 reproduces Figure 1: the same engine as monolith, component
// system and service architecture.
func runF1(ops, keys int) error {
	header("F1 — Figure 1: architecture evolution (read-mostly zipfian KV)")
	for _, g := range []sbdms.Granularity{sbdms.Monolithic, sbdms.Coarse, sbdms.Layered} {
		label := map[sbdms.Granularity]string{
			sbdms.Monolithic: "monolithic DBMS",
			sbdms.Coarse:     "component DBMS (static service)",
			sbdms.Layered:    "service-based DBMS (late binding)",
		}[g]
		m, err := measure(g, nil, "", workload.MixB, keys, ops)
		if err != nil {
			return err
		}
		fmt.Printf("%-34s %s\n", label, m)
		record(struct {
			Label string `json:"label"`
			sbdms.KVMeasurement
		}{label, m})
	}
	return nil
}

// runF2 reproduces Figure 2: SQL through all four layers.
func runF2(ops, keys int) error {
	header("F2 — Figure 2: layered composition, SQL through the Data Service")
	ctx := context.Background()
	db, err := sbdms.Open(sbdms.Options{Granularity: sbdms.Layered, DisableWAL: true})
	if err != nil {
		return err
	}
	defer db.Close(ctx)
	if _, err := db.Exec(ctx, "CREATE TABLE users (id INT, name TEXT, age INT)"); err != nil {
		return err
	}
	for _, row := range workload.UserRows(7, keys) {
		q := fmt.Sprintf("INSERT INTO users VALUES (%d, '%s', %d)", row[0].Int, row[1].Str, row[2].Int)
		if _, err := db.Exec(ctx, q); err != nil {
			return err
		}
	}
	if _, err := db.Exec(ctx, "CREATE INDEX idx_age ON users (age)"); err != nil {
		return err
	}
	queries := []string{
		"SELECT COUNT(*) FROM users",
		"SELECT COUNT(*) FROM users WHERE age = 30",
		"SELECT age, COUNT(*) AS n FROM users GROUP BY age ORDER BY n DESC LIMIT 3",
	}
	for _, q := range queries {
		start := time.Now()
		n := ops / 100
		if n < 1 {
			n = 1
		}
		var rows int
		for i := 0; i < n; i++ {
			res, err := db.Exec(ctx, q)
			if err != nil {
				return err
			}
			rows = len(res.Rows)
		}
		el := time.Since(start)
		fmt.Printf("%-72s %6d runs  %10.0f q/s  (%d rows)\n", q, n, float64(n)/el.Seconds(), rows)
		record(struct {
			Query       string  `json:"query"`
			Runs        int     `json:"runs"`
			QueriesPerS float64 `json:"queriesPerSec"`
			Rows        int     `json:"rows"`
		}{q, n, float64(n) / el.Seconds(), rows})
	}
	return nil
}

func runScenario(name string, run func(context.Context, *sbdms.DB, int) (sbdms.ScenarioResult, error), ops int) error {
	ctx := context.Background()
	db, err := sbdms.Open(sbdms.Options{Granularity: sbdms.Coarse, DisableWAL: true})
	if err != nil {
		return err
	}
	defer db.Close(ctx)
	res, err := run(ctx, db, ops)
	if err != nil {
		return err
	}
	fmt.Println(res)
	fmt.Printf("  events: deployed=%d adaptorCreated=%d workflowSwitched=%d reconfigured=%d\n",
		res.Events[core.EventComponentDeployed], res.Events[core.EventAdaptorCreated],
		res.Events[core.EventWorkflowSwitched], res.Events[core.EventReconfigured])
	avail := float64(res.OpsBefore+res.OpsDuring+res.OpsAfter) /
		float64(res.OpsBefore+res.OpsDuring+res.OpsAfter+res.Failures) * 100
	fmt.Printf("  availability across the change: %.2f%%\n", avail)
	record(struct {
		Scenario        string  `json:"scenario"`
		AvailabilityPct float64 `json:"availabilityPct"`
		sbdms.ScenarioResult
	}{name, avail, res})
	return nil
}

func runF5(ops, keys int) error {
	header("F5 — Figure 5: flexibility by extension (runtime service publication)")
	return runScenario("f5", sbdms.ScenarioExtension, ops/20)
}

func runF6(ops, keys int) error {
	header("F6 — Figure 6: flexibility by selection (release resources)")
	return runScenario("f6", sbdms.ScenarioSelection, ops/20)
}

func runF7(ops, keys int) error {
	header("F7 — Figure 7: flexibility by adaptation (adaptor generation)")
	return runScenario("f7", sbdms.ScenarioAdaptation, ops/20)
}

// runG1 is the headline granularity x binding sweep.
func runG1(ops, keys int) error {
	header("G1 — granularity x binding sweep (paper Section 5 future work)")
	for _, mix := range []struct {
		name string
		m    workload.Mix
	}{
		{"read-mostly (YCSB-B)", workload.MixB},
		{"update-heavy (YCSB-A)", workload.MixA},
	} {
		st := sbdms.SweepStorage{
			BufferShards:       *flagShards,
			EnableWAL:          *flagG1WAL,
			WALGroupWindow:     *flagGroupWindow,
			WALGroupBytes:      *flagGroupBytes,
			WALCommitSiblings:  *flagSiblings,
			WALSegmentBytes:    *flagSegBytes,
			CheckpointInterval: *flagCkptEvery,
		}
		fmt.Printf("-- workload: %s, %d zipfian keys (shards=%d wal=%t window=%v) --\n",
			mix.name, keys, *flagShards, *flagG1WAL, *flagGroupWindow)
		ms, err := sbdms.GranularitySweepStorage(mix.m, keys, ops, 1, st)
		if err != nil {
			return err
		}
		for _, m := range ms {
			fmt.Println(m)
			record(struct {
				Workload string `json:"workload"`
				sbdms.KVMeasurement
			}{mix.name, m})
		}
	}
	return nil
}

// runG2 contrasts the full profile with a small-footprint profile.
func runG2(ops, keys int) error {
	header("G2 — embedded small-footprint profile (Section 4)")
	for _, cfg := range []struct {
		label  string
		frames int
		g      sbdms.Granularity
	}{
		{"full profile   (512 frames, layered)", 512, sbdms.Layered},
		{"small footprint (8 frames, coarse)  ", 8, sbdms.Coarse},
	} {
		db, err := sbdms.Open(sbdms.Options{
			Granularity: cfg.g, BufferFrames: cfg.frames, DisableWAL: true,
		})
		if err != nil {
			return err
		}
		if err := sbdms.Preload(db, keys, 100); err != nil {
			return err
		}
		gen := workload.NewKV(workload.KVConfig{Seed: 1, Keys: keys, Mix: workload.MixB, Zipfian: true})
		m := sbdms.MeasureKV(db, gen, ops)
		st := db.Pool().Stats()
		services := db.Kernel().Registry().Len()
		fmt.Printf("%s thr=%10.0f op/s p99=%-10v services=%d bufferHitRate=%.1f%%\n",
			cfg.label, m.OpsPerSec, m.P99, services, st.HitRate()*100)
		record(struct {
			Label         string  `json:"label"`
			Services      int     `json:"services"`
			BufferHitRate float64 `json:"bufferHitRate"`
			sbdms.KVMeasurement
		}{strings.TrimSpace(cfg.label), services, st.HitRate(), m})
		_ = db.Close(context.Background())
	}
	return nil
}

// runG3 measures client-proximity selection.
func runG3(ops, keys int) error {
	header("G3 — client-proximity selection (Section 4 distributed scenario)")
	ctx := context.Background()
	mkReg := func() *core.Registry {
		reg := core.NewRegistry(nil)
		mk := func(name, node string, delay time.Duration) {
			s := core.NewService(name, &core.Contract{
				Interface:  "g3.Store",
				Operations: []core.OpSpec{{Name: "get", In: "string", Out: "string"}},
			})
			s.Handle("get", func(ctx context.Context, req any) (any, error) {
				if delay > 0 {
					time.Sleep(delay)
				}
				return "v", nil
			})
			_ = s.Start(ctx)
			_ = reg.RegisterService(s, map[string]string{"node": node})
		}
		mk("a-far-store", "far", 300*time.Microsecond)
		mk("b-near-store", "near", 5*time.Microsecond)
		return reg
	}
	n := ops / 4
	for _, c := range []struct {
		label string
		sel   core.Selector
	}{
		{"without proximity selection (first provider)", nil},
		{"with proximity selection (node=near tag)    ", core.SelectByTag("node", "near", nil)},
	} {
		ref := core.NewRef(mkReg(), "g3.Store", c.sel)
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := ref.Invoke(ctx, "get", "k"); err != nil {
				return err
			}
		}
		el := time.Since(start)
		fmt.Printf("%s %6d calls  mean=%v\n", c.label, n, (el / time.Duration(n)).Round(time.Microsecond))
		record(struct {
			Label  string        `json:"label"`
			Calls  int           `json:"calls"`
			MeanNs time.Duration `json:"meanNs"`
		}{strings.TrimSpace(c.label), n, el / time.Duration(n)})
	}
	return nil
}

// runG4 is the call-path overhead ablation.
func runG4(ops, keys int) error {
	header("G4 — call-path overhead ablation (direct / cached ref / uncached ref / adaptor)")
	ctx := context.Background()
	svc := core.NewService("svc", &core.Contract{
		Interface:  "g4.Noop",
		Operations: []core.OpSpec{{Name: "noop", In: "nil", Out: "nil", Semantic: "g4.noop"}},
	})
	svc.Handle("noop", func(ctx context.Context, req any) (any, error) { return nil, nil })
	_ = svc.Start(ctx)
	reg := core.NewRegistry(nil)
	_ = reg.RegisterService(svc, nil)
	cached := core.NewRef(reg, "g4.Noop", nil)
	uncached := core.NewUncachedRef(reg, "g4.Noop", nil)
	required := &core.Contract{
		Interface:  "g4.Other",
		Operations: []core.OpSpec{{Name: "doIt", In: "nil", Out: "nil", Semantic: "g4.noop"}},
	}
	ad, err := core.GenerateAdaptor("ad", required, svc.Contract(), svc, core.NewRepository())
	if err != nil {
		return err
	}
	n := ops * 10
	paths := []struct {
		label string
		inv   core.Invoker
		op    string
	}{
		{"direct service call     ", svc, "noop"},
		{"cached late-bound ref   ", cached, "noop"},
		{"uncached late-bound ref ", uncached, "noop"},
		{"generated adaptor       ", ad, "doIt"},
	}
	for _, p := range paths {
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := p.inv.Invoke(ctx, p.op, nil); err != nil {
				return err
			}
		}
		el := time.Since(start)
		fmt.Printf("%s %8d calls  %7.1f ns/call\n", p.label, n, float64(el.Nanoseconds())/float64(n))
		record(struct {
			Path      string  `json:"path"`
			Calls     int     `json:"calls"`
			NsPerCall float64 `json:"nsPerCall"`
		}{strings.TrimSpace(p.label), n, float64(el.Nanoseconds()) / float64(n)})
	}
	return nil
}

// runG5 measures the storage engine's internal scalability: contended
// Pin/Unpin on the sharded buffer pool vs the single-mutex baseline,
// and concurrent transaction commits with WAL group commit vs
// fsync-per-flush. Tune with -shards, -wal-group-window and
// -wal-group-bytes.
func runG5(ops, keys int) error {
	header("G5 — storage concurrency: sharded buffer pool + WAL group commit")

	// Part 1: parallel Pin/Unpin over a hot page set.
	const frames = 512
	const npages = 2048
	fmt.Printf("-- buffer pool: %d frames, %d pages, zipf-free uniform touches --\n", frames, npages)
	for _, sh := range []int{1, *flagShards} {
		disk, err := storage.OpenDisk(storage.NewMemDevice())
		if err != nil {
			return err
		}
		var pool *buffer.Manager
		if sh == 1 {
			pool = buffer.NewSharded(disk, frames, 1, "lru")
		} else if sh > 1 {
			pool = buffer.NewSharded(disk, frames, sh, "lru")
		} else {
			pool = buffer.New(disk, frames, buffer.NewLRU())
		}
		ids := make([]storage.PageID, npages)
		for i := range ids {
			if ids[i], err = disk.Allocate(); err != nil {
				return err
			}
		}
		for _, g := range []int{1, 4, 16} {
			per := ops / g
			start := time.Now()
			var wg sync.WaitGroup
			errs := make(chan error, g)
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < per; i++ {
						id := ids[rng.Intn(npages)]
						if _, err := pool.Pin(id); err != nil {
							errs <- err
							return
						}
						if err := pool.Unpin(id, false); err != nil {
							errs <- err
							return
						}
					}
				}(int64(w + 1))
			}
			wg.Wait()
			close(errs)
			if err := <-errs; err != nil {
				return err
			}
			el := time.Since(start)
			fmt.Printf("shards=%-2d goroutines=%-2d %8d pin/unpin  %12.0f op/s\n",
				pool.NumShards(), g, per*g, float64(per*g)/el.Seconds())
			record(struct {
				Section    string  `json:"section"`
				Shards     int     `json:"shards"`
				Goroutines int     `json:"goroutines"`
				Ops        int     `json:"ops"`
				OpsPerSec  float64 `json:"opsPerSec"`
			}{"pin-unpin", pool.NumShards(), g, per * g, float64(per*g) / el.Seconds()})
		}
	}

	// Part 2: concurrent committers against a file-backed WAL.
	fmt.Printf("-- WAL commit: file-backed log, group window=%v bytes=%d --\n", *flagGroupWindow, *flagGroupBytes)
	dir, err := os.MkdirTemp("", "sbench-g5")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	for _, mode := range []struct {
		label     string
		syncEvery bool
	}{
		{"fsync-per-commit", true},
		{"group commit    ", false},
	} {
		for _, g := range []int{1, 4, 16} {
			dev, err := storage.OpenFileDevice(filepath.Join(dir, fmt.Sprintf("%t-%d.wal", mode.syncEvery, g)))
			if err != nil {
				return err
			}
			l, err := wal.Open(dev)
			if err != nil {
				return err
			}
			l.SetSyncEveryFlush(mode.syncEvery)
			l.SetGroupWindow(*flagGroupWindow, *flagGroupBytes)
			mgr := txn.NewManager(l, nil)
			// commit_siblings gate: lone committers skip the window
			// (the g5 single-committer row used to pay it in full).
			// The knob convention matches sbdms.Options.
			l.SetCommitSiblings(*flagSiblings, func() int { return mgr.ActiveCount() - 1 })
			per := ops / 10 / g
			if per < 1 {
				per = 1
			}
			start := time.Now()
			var wg sync.WaitGroup
			errs := make(chan error, g)
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						t, err := mgr.Begin()
						if err != nil {
							errs <- err
							return
						}
						if err := mgr.Commit(t); err != nil {
							errs <- err
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			if err := <-errs; err != nil {
				return err
			}
			el := time.Since(start)
			commits := per * g
			fmt.Printf("%s committers=%-2d %7d commits  %10.0f commit/s  %6d syncs (%.1f commits/sync)\n",
				mode.label, g, commits, float64(commits)/el.Seconds(), l.Syncs(),
				float64(commits)/float64(l.Syncs()))
			record(struct {
				Section        string  `json:"section"`
				Mode           string  `json:"mode"`
				Committers     int     `json:"committers"`
				Commits        int     `json:"commits"`
				CommitsPerSec  float64 `json:"commitsPerSec"`
				Syncs          uint64  `json:"syncs"`
				CommitsPerSync float64 `json:"commitsPerSync"`
			}{"wal-commit", strings.TrimSpace(mode.label), g, commits,
				float64(commits) / el.Seconds(), l.Syncs(), float64(commits) / float64(l.Syncs())})
			_ = dev.Close()
		}
	}
	return nil
}

// G7: the serializable-scan tax — a mixed scan/write workload at
// read-committed vs serializable. Scans sweep a filler range while
// writers update keys inside it and commit atomic batches across it.
// Columns to watch: the scan/write throughput and latency deltas
// between the two isolation rows (the tax), the write p99 (X-lock wait
// behind the scan stream's S locks — bounded by the FIFO lock
// manager), and torn scans (> 0 at read-committed, always 0 at
// serializable).
func runG7(ops, keys int) error {
	header("G7 — serializable-scan tax: next-key locking + FIFO lock fairness")
	fillers := keys / 4
	if fillers < 64 {
		fillers = 64
	}
	writesPer := ops / 40
	if writesPer < 50 {
		writesPer = 50
	}
	// Scans are paced (one long analytical scan per duty cycle per
	// scanner) so every row issues the same scan load and the writer
	// latencies compare lock interference, not CPU saturation.
	const scanners, writers = 2, 4
	const pace = 25 * time.Millisecond
	fmt.Printf("-- %d scanners (1 scan / %v each) over %d fillers, %d writers x %d writes (1 in 4 an atomic cross-range batch) --\n",
		scanners, pace, fillers, writers, writesPer)
	for _, iso := range []sbdms.ScanIsolation{sbdms.ReadCommitted, sbdms.Serializable} {
		m, err := sbdms.ScanIsolationTaxPaced(iso, pace, scanners, writers, fillers, writesPer, 1)
		if err != nil {
			return err
		}
		fmt.Println(m)
		record(m)
	}
	// The MVCC row: snapshot scans read one consistent commit-timestamp
	// cut without lock-manager traffic, so the writer p99 the locked
	// serializable row inflates (X waits behind the scan stream's S and
	// gap locks) collapses while torn stays 0 — the scan/write
	// interference the snapshot read path removes.
	m, err := sbdms.ScanSnapshotTax(sbdms.Serializable, pace, scanners, writers, fillers, writesPer, 1)
	if err != nil {
		return err
	}
	fmt.Println(m)
	record(m)
	return nil
}

// G9: the write-path soak — a long mixed workload at serializable
// isolation with fuzzy checkpoints, WAL truncation and MVCC vacuum
// running throughout, run once at the baseline fix gates and once per
// fallback (one gate flipped off). Rows to compare, each a labeled
// pair on the same host: append-heavy Put throughput with the append
// gap-lock downgrade on vs off, uniform-mixed throughput with
// optimistic vs exclusive insert descents, and write/checkpoint p99
// with the background vs inline checkpoint flush. Torn-scan and
// anomaly counters must be zero on every row — the fixes must not
// trade serializability for speed.
func runG9(ops, keys int) error {
	header("G9 — write-path soak: optimistic descents, background checkpoint flusher, append gap-lock downgrade")
	base := sbdms.SoakConfig{
		Keys:                  keys,
		Writers:               *flagSoakWriters,
		AppendOps:             ops,
		MixedOps:              ops,
		Seed:                  1,
		OptimisticDescent:     *flagOptDescent,
		AppendDowngrade:       *flagAppendDown,
		InlineCheckpointFlush: *flagInlineCkpt,
	}
	fmt.Printf("-- %d writers, %d append ops + %d mixed ops per run, %d preloaded keys, checkpoints+vacuum throughout --\n",
		base.Writers, ops, ops, keys)
	variants := []struct {
		name   string
		mutate func(*sbdms.SoakConfig)
	}{
		{"baseline (all fixes on)", func(c *sbdms.SoakConfig) {}},
		{"fallback: append-downgrade off", func(c *sbdms.SoakConfig) { c.AppendDowngrade = false }},
		{"fallback: optimistic-descent off", func(c *sbdms.SoakConfig) { c.OptimisticDescent = false }},
		{"fallback: inline checkpoint flush", func(c *sbdms.SoakConfig) { c.InlineCheckpointFlush = true }},
	}
	for _, v := range variants {
		cfg := base
		v.mutate(&cfg)
		fmt.Printf("-- %s --\n", v.name)
		ms, err := sbdms.Soak(cfg)
		if err != nil {
			return err
		}
		for _, m := range ms {
			fmt.Println(m)
			record(m)
		}
	}
	return nil
}

// G10: bulk ingest — time-to-load a large key set through the Import
// fast path (sorted bottom-up tree build, one full-page WAL record per
// packed page, atomic root install) against a chunked PutBatch loop
// and a per-key Put loop on identical fresh file-backed engines. The
// headline ratios: import throughput over the PutBatch loop (target
// >=5x) and WAL bytes per key (target >=10x fewer).
func runG10(ops, keys int) error {
	header("G10 — bulk ingest: Import fast path vs PutBatch loop vs Put loop")
	cfg := sbdms.BulkLoadConfig{
		Keys:        keys,
		PutLoopKeys: *flagG10PutKeys,
		BatchSize:   *flagG10Batch,
		Seed:        1,
	}
	fmt.Printf("-- %d keys (put-loop capped at %d), %d-key batches, file-backed data+WAL, checkpoints throughout --\n",
		keys, *flagG10PutKeys, *flagG10Batch)
	rows := map[string]sbdms.BulkLoadMeasurement{}
	for _, method := range []string{"import", "putBatch-loop", "put-loop"} {
		m, err := sbdms.BulkLoad(cfg, method)
		if err != nil {
			return err
		}
		fmt.Println(m)
		rows[method] = m
		record(m)
	}
	imp, batch := rows["import"], rows["putBatch-loop"]
	if imp.KeysPerSec > 0 && batch.KeysPerSec > 0 {
		speedup := imp.KeysPerSec / batch.KeysPerSec
		walCut := batch.WALBytesPerKey / imp.WALBytesPerKey
		fmt.Printf("-- import vs putBatch-loop: %.1fx throughput, %.1fx fewer WAL bytes/key --\n", speedup, walCut)
		record(struct {
			ImportSpeedupVsBatch float64 `json:"importSpeedupVsBatch"`
			WALBytesPerKeyCut    float64 `json:"walBytesPerKeyCut"`
		}{speedup, walCut})
	}
	return nil
}

// G11: cluster scale-out — aggregate mixed put/get throughput through
// the epoch-aware router as the keyspace is hash-partitioned over 1, 2
// and 4 replicated shards (each leader shipping its WAL to one
// follower over the in-process transport), with a synchronous and an
// async-commit ack row per width (over mem-backed devices the local
// fsync async commit skips and the in-process follower round-trip it
// waits on instead cost about the same, so the two rows bracket the
// coordination overhead rather than showing a disk-fsync win). All
// shards share the host's cores, so per-shard parallel speedup only
// appears on multi-core hosts — the JSON host block records the core
// count a snapshot was taken on. Then a failover drill: kill -9 an
// async-commit leader under load, promote its follower (replica flush
// + crash recovery over the shipped log + map epoch bump), and report
// promotion time, time-to-first-served-request, and the acked-write
// survival count — which must be total.
func runG11(ops, keys int) error {
	header("G11 — cluster scale-out: sharded throughput + failover recovery")
	ctx := context.Background()
	const clients = 8
	key := func(i int) string { return fmt.Sprintf("key-%07d", i) }

	preload := func(r *cluster.Router) error {
		const chunk = 1000
		for lo := 0; lo < keys; lo += chunk {
			hi := lo + chunk
			if hi > keys {
				hi = keys
			}
			ks := make([]string, 0, hi-lo)
			vs := make([][]byte, 0, hi-lo)
			for i := lo; i < hi; i++ {
				ks = append(ks, key(i))
				vs = append(vs, []byte("seed"))
			}
			if err := r.PutBatch(ctx, ks, vs); err != nil {
				return err
			}
		}
		return nil
	}

	fmt.Printf("-- %d clients, 50/50 put/get over %d keys, 1 follower per shard --\n", clients, keys)
	for _, shards := range []int{1, 2, 4} {
		for _, async := range []bool{false, true} {
			c, err := cluster.New(cluster.Config{
				Shards: shards, Followers: 1, AsyncCommit: async, Frames: 512,
			})
			if err != nil {
				return err
			}
			r := c.Router()
			if err := preload(r); err != nil {
				_ = c.Close(ctx)
				return err
			}
			per := ops / clients
			start := time.Now()
			var wg sync.WaitGroup
			errs := make(chan error, clients)
			for w := 0; w < clients; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < per; i++ {
						k := key(rng.Intn(keys))
						var err error
						if rng.Intn(2) == 0 {
							err = r.Put(ctx, k, []byte(fmt.Sprintf("v%d", i)))
						} else {
							_, err = r.Get(ctx, k)
						}
						if err != nil {
							errs <- err
							return
						}
					}
				}(int64(shards*1000 + w + 1))
			}
			wg.Wait()
			close(errs)
			if err := <-errs; err != nil {
				_ = c.Close(ctx)
				return err
			}
			el := time.Since(start)
			mode := "sync-commit"
			if async {
				mode = "async-commit"
			}
			total := per * clients
			// Degraded-mode observability: ack fallbacks are async
			// commits that local-fsynced because no follower answered in
			// time; bootstraps are full-snapshot reseeds.
			var fallbacks, boots uint64
			for s := 0; s < shards; s++ {
				fallbacks += c.Node(cluster.LeaderID(s)).AckFallbacks()
				boots += c.Node(cluster.FollowerID(s, 0)).Bootstraps()
			}
			fmt.Printf("shards=%d %-12s %8d ops  %10.0f op/s  ackFallbacks=%d bootstraps=%d\n",
				shards, mode, total, float64(total)/el.Seconds(), fallbacks, boots)
			record(struct {
				Section      string  `json:"section"`
				Shards       int     `json:"shards"`
				Followers    int     `json:"followers"`
				Mode         string  `json:"mode"`
				Clients      int     `json:"clients"`
				Ops          int     `json:"ops"`
				OpsPerSec    float64 `json:"opsPerSec"`
				AckFallbacks uint64  `json:"ackFallbacks"`
				Bootstraps   uint64  `json:"bootstraps"`
			}{"scale-out", shards, 1, mode, clients, total, float64(total) / el.Seconds(), fallbacks, boots})
			if err := c.Close(ctx); err != nil {
				return err
			}
		}
	}

	// Failover drill on a 2-shard async-commit cluster.
	c, err := cluster.New(cluster.Config{Shards: 2, Followers: 1, AsyncCommit: true, Frames: 512})
	if err != nil {
		return err
	}
	defer func() { _ = c.Close(ctx) }()
	r := c.Router()
	n := ops / 10
	if n < 200 {
		n = 200
	}
	acked := make([]string, 0, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("fo-%06d", i)
		if err := r.Put(ctx, k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			return err
		}
		acked = append(acked, k)
	}
	const victim = 0
	var probe string
	for _, k := range acked {
		if c.Map().ShardFor(k) == victim {
			probe = k
			break
		}
	}
	if probe == "" {
		return fmt.Errorf("g11: no acked key landed on shard %d", victim)
	}
	c.Kill(cluster.LeaderID(victim))
	promote, err := c.Failover(victim)
	if err != nil {
		return err
	}
	t0 := time.Now()
	for {
		if _, err := r.Get(ctx, probe); err == nil {
			break
		}
		if time.Since(t0) > 10*time.Second {
			return fmt.Errorf("g11: shard %d never served after failover", victim)
		}
	}
	firstServed := time.Since(t0)
	lost := 0
	for _, k := range acked {
		if v, err := r.Get(ctx, k); err != nil || len(v) == 0 {
			lost++
		}
	}
	fmt.Printf("failover: promote=%v first-served=%v acked=%d lost=%d\n",
		promote.Round(time.Microsecond), firstServed.Round(time.Microsecond), len(acked), lost)
	record(struct {
		Section       string        `json:"section"`
		PromoteNs     time.Duration `json:"promoteNs"`
		FirstServedNs time.Duration `json:"firstServedNs"`
		AckedWrites   int           `json:"ackedWrites"`
		LostWrites    int           `json:"lostWrites"`
	}{"failover", promote, firstServed, len(acked), lost})
	if lost > 0 {
		return fmt.Errorf("g11: %d acked writes lost across failover", lost)
	}
	return nil
}

// G6: concurrency scaling of the fine-grained engine — goroutines ×
// read/write mix against one WAL-enabled DB (latch-crabbed B+tree,
// per-key 2PL, no engine-wide lock). The column to watch is the
// speedup over the 1-goroutine row of the same mix.
func runG6(ops, keys int) error {
	fmt.Println("== G6: concurrency scaling (goroutines x read/write mix) ==")
	fmt.Printf("   shards=%d group-window=%v  (latch crabbing + per-key locks)\n",
		*flagShards, *flagGroupWindow)
	db, err := sbdms.Open(sbdms.Options{
		Granularity:    sbdms.Monolithic,
		BufferFrames:   2048,
		BufferShards:   *flagShards,
		WALGroupWindow: *flagGroupWindow,
		WALGroupBytes:  *flagGroupBytes,
	})
	if err != nil {
		return err
	}
	defer db.Close(context.Background())
	if err := sbdms.Preload(db, keys, 64); err != nil {
		return err
	}
	for _, readPct := range []int{95, 50} {
		var base float64
		for _, g := range []int{1, 2, 4, 8} {
			m := sbdms.ConcurrencyScaling(db, g, keys, ops, readPct, int64(g)*17)
			if g == 1 {
				base = m.OpsPerSec
			}
			speedup := 0.0
			if base > 0 {
				speedup = m.OpsPerSec / base
			}
			fmt.Printf("%s  speedup=%.2fx\n", m, speedup)
			record(struct {
				Speedup float64 `json:"speedup"`
				sbdms.ConcurrencyMeasurement
			}{speedup, m})
		}
	}
	return nil
}
