// Package core implements the SBDMS service kernel: services, contracts,
// registries, repositories, coordinators, resource managers, adaptors,
// workflows and the SCA-style component/composite model described in
// "Architectural Concerns for Flexible Data Management" (Subasu et al.,
// EDBT 2008 SETMDM).
//
// The kernel is deliberately independent of any particular database
// functionality: storage, access, data and extension services are built
// on top of it (see the internal/storage, internal/access, internal/sql
// and extension packages) and wired together through composites.
package core

import (
	"context"
	"fmt"
	"reflect"
)

// Handler is the function type that implements a single service operation.
// Requests and responses are opaque to the kernel; services declare their
// payload types in the operation spec so that contracts can be matched and
// adaptors generated.
type Handler func(ctx context.Context, req any) (any, error)

// Invoker is anything that can receive a service invocation: a local
// service instance, a remote binding, an adaptor, or a late-bound
// reference. It is the universal connector type of the architecture.
type Invoker interface {
	// Invoke performs operation op with the given request payload and
	// returns the response payload.
	Invoke(ctx context.Context, op string, req any) (any, error)
}

// InvokerFunc adapts a plain function to the Invoker interface.
type InvokerFunc func(ctx context.Context, op string, req any) (any, error)

// Invoke implements Invoker.
func (f InvokerFunc) Invoke(ctx context.Context, op string, req any) (any, error) {
	return f(ctx, op, req)
}

// TypeName returns the canonical name used in contracts for a payload
// type. It is derived via reflection so that services do not have to
// maintain the names by hand.
func TypeName(v any) string {
	if v == nil {
		return "nil"
	}
	t := reflect.TypeOf(v)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	if t.PkgPath() == "" {
		return t.String()
	}
	return t.PkgPath() + "." + t.Name()
}

// TypeNameOf returns the contract name of a reflect.Type.
func TypeNameOf(t reflect.Type) string {
	if t == nil {
		return "nil"
	}
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	if t.PkgPath() == "" {
		return t.String()
	}
	return t.PkgPath() + "." + t.Name()
}

// RequestError describes a malformed or mistyped request payload. It is
// returned by services when the payload does not match the operation
// spec, and by adaptors when no transformation is available.
type RequestError struct {
	Op   string
	Want string
	Got  string
}

// Error implements the error interface.
func (e *RequestError) Error() string {
	return fmt.Sprintf("core: operation %q expects %s, got %s", e.Op, e.Want, e.Got)
}

// As is used with errors.As via the standard mechanisms; nothing extra
// is needed, the type itself is the target.
