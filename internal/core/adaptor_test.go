package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

// legacyContract mimics an older service with different op names and
// payload shapes but identical semantics.
func legacyContract() *Contract {
	return &Contract{
		Interface: "test.LegacyEcho",
		Operations: []OpSpec{
			{Name: "reverberate", In: "[]byte", Out: "[]byte", Semantic: "test.echo"},
			{Name: "explode", In: "nil", Out: "nil", Semantic: "test.fail"},
		},
	}
}

func newLegacyService(t testing.TB) *BaseService {
	t.Helper()
	s := NewService("legacy", legacyContract())
	s.Handle("reverberate", func(ctx context.Context, req any) (any, error) {
		b, ok := req.([]byte)
		if !ok {
			return nil, &RequestError{Op: "reverberate", Want: "[]byte", Got: TypeName(req)}
		}
		return append([]byte("legacy:"), b...), nil
	})
	s.Handle("explode", func(ctx context.Context, req any) (any, error) {
		return nil, errors.New("legacy boom")
	})
	if err := s.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	return s
}

func repoWithByteTransforms() *Repository {
	repo := NewRepository()
	repo.PutTransform("string", "[]byte", func(v any) (any, error) {
		s, ok := v.(string)
		if !ok {
			return nil, errors.New("not a string")
		}
		return []byte(s), nil
	})
	repo.PutTransform("[]byte", "string", func(v any) (any, error) {
		b, ok := v.([]byte)
		if !ok {
			return nil, errors.New("not bytes")
		}
		return string(b), nil
	})
	return repo
}

func TestGenerateAdaptorBySemantic(t *testing.T) {
	ctx := context.Background()
	legacy := newLegacyService(t)
	repo := repoWithByteTransforms()
	required := &Contract{
		Interface:  "test.Echo",
		Operations: []OpSpec{{Name: "echo", In: "string", Out: "string", Semantic: "test.echo"}},
	}
	ad, err := GenerateAdaptor("ad", required, legacy.Contract(), legacy, repo)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ad.Invoke(ctx, "echo", "hi")
	if err != nil {
		t.Fatal(err)
	}
	if out != "legacy:hi" {
		t.Fatalf("out = %v", out)
	}
	if got := ad.MappedOps()["echo"]; got != "reverberate" {
		t.Fatalf("mapping = %v", ad.MappedOps())
	}
	if ad.Contract().Interface != "test.Echo" {
		t.Fatal("adaptor must present the required contract")
	}
	if ad.State() != StateRunning {
		t.Fatal("adaptors are always running")
	}
}

func TestGenerateAdaptorByNameFallback(t *testing.T) {
	ctx := context.Background()
	// Provider has same op name, same types, no semantic tags.
	prov := NewService("p", &Contract{
		Interface:  "test.Other",
		Operations: []OpSpec{{Name: "echo", In: "string", Out: "string"}},
	})
	prov.Handle("echo", func(ctx context.Context, req any) (any, error) { return "p:" + req.(string), nil })
	_ = prov.Start(ctx)
	required := &Contract{
		Interface:  "test.Echo",
		Operations: []OpSpec{{Name: "echo", In: "string", Out: "string"}},
	}
	ad, err := GenerateAdaptor("ad", required, prov.Contract(), prov, NewRepository())
	if err != nil {
		t.Fatal(err)
	}
	out, err := ad.Invoke(ctx, "echo", "x")
	if err != nil || out != "p:x" {
		t.Fatalf("out = %v, %v", out, err)
	}
}

func TestGenerateAdaptorFailures(t *testing.T) {
	legacy := newLegacyService(t)
	required := &Contract{
		Interface:  "test.Echo",
		Operations: []OpSpec{{Name: "echo", In: "string", Out: "string", Semantic: "test.echo"}},
	}
	// Without transformation schemas, payloads cannot be bridged.
	if _, err := GenerateAdaptor("ad", required, legacy.Contract(), legacy, NewRepository()); !errors.Is(err, ErrNoAdaptation) {
		t.Fatalf("err = %v, want ErrNoAdaptation", err)
	}
	// No matching operation at all.
	unrelated := &Contract{
		Interface:  "test.Echo",
		Operations: []OpSpec{{Name: "frobnicate", In: "int", Out: "int", Semantic: "test.frob"}},
	}
	if _, err := GenerateAdaptor("ad", unrelated, legacy.Contract(), legacy, repoWithByteTransforms()); !errors.Is(err, ErrNoAdaptation) {
		t.Fatalf("err = %v", err)
	}
	// Nil contracts.
	if _, err := GenerateAdaptor("ad", nil, legacy.Contract(), legacy, NewRepository()); !errors.Is(err, ErrNoAdaptation) {
		t.Fatalf("err = %v", err)
	}
}

func TestNewAdaptorManual(t *testing.T) {
	ctx := context.Background()
	legacy := newLegacyService(t)
	required := &Contract{
		Interface:  "test.Echo",
		Operations: []OpSpec{{Name: "echo", In: "string", Out: "string"}},
	}
	ad, err := NewAdaptor("manual", required, legacy, map[string]OpMapping{
		"echo": {
			TargetOp: "reverberate",
			MapIn:    func(v any) (any, error) { return []byte(v.(string)), nil },
			MapOut:   func(v any) (any, error) { return strings.ToUpper(string(v.([]byte))), nil },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ad.Invoke(ctx, "echo", "hi")
	if err != nil || out != "LEGACY:HI" {
		t.Fatalf("out = %v, %v", out, err)
	}
	// Unmapped operation at construction time fails fast.
	if _, err := NewAdaptor("bad", required, legacy, nil); !errors.Is(err, ErrNoAdaptation) {
		t.Fatalf("err = %v", err)
	}
	// Unknown op at call time.
	if _, err := ad.Invoke(ctx, "nosuch", nil); !errors.Is(err, ErrUnknownOp) {
		t.Fatalf("err = %v", err)
	}
}

// Property: the generated string<->[]byte adaptor round-trips any
// payload unchanged apart from the service's own prefix.
func TestAdaptorRoundTripQuick(t *testing.T) {
	legacy := newLegacyService(t)
	repo := repoWithByteTransforms()
	required := &Contract{
		Interface:  "test.Echo",
		Operations: []OpSpec{{Name: "echo", In: "string", Out: "string", Semantic: "test.echo"}},
	}
	ad, err := GenerateAdaptor("ad", required, legacy.Contract(), legacy, repo)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	f := func(payload string) bool {
		out, err := ad.Invoke(ctx, "echo", payload)
		return err == nil && out == "legacy:"+payload
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRepositoryContractsAndTransforms(t *testing.T) {
	repo := NewRepository()
	if err := repo.PutContract(echoContract("a.I")); err != nil {
		t.Fatal(err)
	}
	if err := repo.PutContract(echoContract("b.I")); err != nil {
		t.Fatal(err)
	}
	if err := repo.PutContract(&Contract{}); err == nil {
		t.Fatal("invalid contract must be rejected")
	}
	got, err := repo.GetContract("a.I")
	if err != nil || got.Interface != "a.I" {
		t.Fatalf("GetContract = %v, %v", got, err)
	}
	// Mutating the returned contract must not affect the stored copy.
	got.Operations[0].Name = "mutated"
	again, _ := repo.GetContract("a.I")
	if again.Operations[0].Name == "mutated" {
		t.Fatal("repository must hand out clones")
	}
	if _, err := repo.GetContract("zzz"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if got := repo.Contracts(); len(got) != 2 || got[0] != "a.I" {
		t.Fatalf("Contracts = %v", got)
	}
	// Identity transform always available; registered transform counted.
	if _, ok := repo.Transform("x", "x"); !ok {
		t.Fatal("identity transform missing")
	}
	if _, ok := repo.Transform("x", "y"); ok {
		t.Fatal("unregistered transform must be absent")
	}
	repo.PutTransform("x", "y", func(v any) (any, error) { return v, nil })
	if _, ok := repo.Transform("x", "y"); !ok {
		t.Fatal("registered transform missing")
	}
	if repo.TransformCount() != 1 {
		t.Fatalf("TransformCount = %d", repo.TransformCount())
	}
}
