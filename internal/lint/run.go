package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// DirectiveAnalyzer is the reserved analyzer name under which malformed
// //lint:ignore directives are reported: a suppression must name a real
// analyzer and carry a non-empty justification.
const DirectiveAnalyzer = "lintdirective"

// directive is one parsed //lint:ignore comment.
type directive struct {
	pos           token.Pos
	file          string
	line          int
	analyzer      string
	justification string
}

// parseDirectives extracts //lint:ignore directives from a file.
func parseDirectives(fset *token.FileSet, f *ast.File) []directive {
	var out []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			d := directive{pos: c.Pos(), file: pos.Filename, line: pos.Line}
			fields := strings.Fields(text)
			if len(fields) > 0 {
				d.analyzer = fields[0]
				d.justification = strings.TrimSpace(strings.Join(fields[1:], " "))
			}
			out = append(out, d)
		}
	}
	return out
}

// Run applies the analyzers to every package and returns the surviving
// diagnostics sorted by position: suppressed findings are dropped, and
// malformed suppression directives are themselves reported under
// DirectiveAnalyzer.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	// Directives may name any analyzer in the suite, not just the ones
	// in this run (tests run analyzers one at a time).
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var diags []Diagnostic
	var fset *token.FileSet
	var directives []directive
	for _, pkg := range pkgs {
		fset = pkg.Fset
		for _, f := range pkg.Files {
			directives = append(directives, parseDirectives(pkg.Fset, f)...)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				PkgPath:   pkg.ImportPath,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}

	// A directive on the flagged line, or the line directly above it,
	// suppresses diagnostics of the named analyzer.
	suppressed := func(d Diagnostic) bool {
		p := fset.Position(d.Pos)
		for _, dir := range directives {
			if dir.file == p.Filename && dir.analyzer == d.Analyzer &&
				dir.justification != "" &&
				(dir.line == p.Line || dir.line == p.Line-1) {
				return true
			}
		}
		return false
	}
	var out []Diagnostic
	for _, d := range diags {
		if !suppressed(d) {
			out = append(out, d)
		}
	}

	// The suppression mechanism is itself linted: an unknown analyzer
	// name or a missing justification is a finding, so silencing a rule
	// always costs a written-down reason.
	for _, dir := range directives {
		switch {
		case dir.analyzer == "":
			out = append(out, Diagnostic{Pos: dir.pos, Analyzer: DirectiveAnalyzer,
				Message: "malformed //lint:ignore: want //lint:ignore <analyzer> <justification>"})
		case !known[dir.analyzer]:
			out = append(out, Diagnostic{Pos: dir.pos, Analyzer: DirectiveAnalyzer,
				Message: fmt.Sprintf("//lint:ignore names unknown analyzer %q", dir.analyzer)})
		case dir.justification == "":
			out = append(out, Diagnostic{Pos: dir.pos, Analyzer: DirectiveAnalyzer,
				Message: fmt.Sprintf("//lint:ignore %s needs a justification", dir.analyzer)})
		}
	}

	sort.Slice(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
