package sbdms

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/buffer"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/undo"
	"repro/internal/vacuum"
	"repro/internal/wal"
)

// Granularity selects how finely the DBMS is decomposed into services —
// the paper's central experimental variable.
type Granularity string

// Granularity profiles.
const (
	// Monolithic performs direct native calls: the Figure 1 baseline.
	Monolithic Granularity = "monolithic"
	// Coarse exposes one service per request type (KV service, query
	// service): one service hop per operation.
	Coarse Granularity = "coarse"
	// Layered routes operations through the Figure 2 layers: KV service
	// -> record service -> native storage (two hops per operation).
	Layered Granularity = "layered"
	// Fine additionally places the disk manager behind a service, so
	// buffer misses and flushes cross a service boundary too.
	Fine Granularity = "fine"
)

// Granularities lists all profiles, for sweeps.
var Granularities = []Granularity{Monolithic, Coarse, Layered, Fine}

// Options configures Open.
type Options struct {
	// Device is the data device (nil = in-memory).
	Device storage.Device
	// LogDir holds the segmented WAL: numbered wal.NNNNNN segment files
	// plus a manifest, reclaimed by fuzzy-checkpoint truncation. Takes
	// precedence over LogDevice. Use wal.NewFileSegmentDir for an
	// on-disk log, wal.NewMemSegmentDir for tests. When both LogDir and
	// LogDevice are nil the WAL defaults to an in-memory segmented log.
	LogDir wal.SegmentDir
	// LogDevice is a single-file WAL (the legacy unbounded layout: no
	// segment rollover, so checkpoints bound recovery time but never
	// reclaim space). DisableWAL skips logging entirely.
	LogDevice  storage.Device
	DisableWAL bool
	// WALSegmentBytes is the segment roll threshold for segmented logs
	// (0 = 4 MiB). Once the recovery-begin LSN passes a segment's end,
	// the segment file is deleted.
	WALSegmentBytes int
	// CheckpointInterval runs a background fuzzy checkpoint on this
	// period, bounding both recovery time and total WAL size without
	// quiescing writers (0 = no background checkpoints; DB.Checkpoint
	// remains available).
	CheckpointInterval time.Duration
	// InlineCheckpointFlush makes every checkpoint flush its dirty-page
	// snapshot on the caller before returning (the pre-flusher
	// behaviour). By default checkpoints hand the snapshot to a
	// dedicated background flusher goroutine — the ARIES "near-free"
	// variant — which also opportunistically writes back cold dirty
	// frames between checkpoints; DB.Checkpoint then returns as soon as
	// the checkpoint record is durable, and DB.CheckpointSync waits for
	// the flush and the truncation it licenses.
	InlineCheckpointFlush bool
	// DisableOptimisticDescent makes every B+tree insert take the
	// exclusive top-down crab descent (the pre-optimistic behaviour)
	// instead of the shared-latch descent with version validation.
	DisableOptimisticDescent bool
	// DisableAppendDowngrade keeps an inserter's awaited next-key gap
	// locks until commit (the pre-downgrade behaviour) instead of
	// releasing them the moment the new entry is visible in its leaf.
	// Only meaningful at Serializable scan isolation.
	DisableAppendDowngrade bool
	// ImportChunkPages is how many bulk pages DB.Import writes between
	// cancellation checks and pacing WAL flushes (0 = 64, about 256 KiB
	// per chunk). Larger chunks shave a little flush overhead at the
	// cost of cancellation latency and WAL-buffer memory.
	ImportChunkPages int
	// DisableImportFastPath makes DB.Import always take the per-key
	// insert path (the pre-bulk-build behaviour), even on an empty
	// store. The batch still loads atomically.
	DisableImportFastPath bool
	// VacuumInterval runs the background MVCC vacuum on this period:
	// version chains are pruned to the oldest version any live or
	// future snapshot can still resolve to, and fully-dead keys
	// (committed tombstones below the horizon) leave the index (0 = no
	// background vacuum; DB.Vacuum remains available).
	VacuumInterval time.Duration
	// ScanIsolation selects the isolation level of KV range scans
	// (default ReadCommitted, the historical behaviour). Serializable
	// turns on next-key locking: scans become atomic snapshots —
	// phantom-free — and writers take gap locks on the successor of
	// every inserted or deleted key. The knob applies at every service
	// granularity: the scan path of the KV/record services reaches the
	// same native core.
	ScanIsolation ScanIsolation
	// Granularity selects the service decomposition (default Layered).
	Granularity Granularity
	// BufferFrames sizes the buffer pool (default 256).
	BufferFrames int
	// BufferPolicy selects the replacement policy: lru, clock, 2q.
	BufferPolicy string
	// BufferShards overrides the buffer pool's lock-stripe count
	// (0 = automatic, scaled to the pool size; 1 = single-mutex pool).
	BufferShards int
	// WALGroupWindow holds a WAL flush leader open for this window so
	// concurrent committers share one device sync (0 = sync as soon as
	// the leader runs; coalescing of concurrent callers still applies).
	WALGroupWindow time.Duration
	// WALGroupBytes ends the group window early once this many bytes
	// are pending (0 = time window only).
	WALGroupBytes int
	// WALCommitSiblings is the Postgres-style commit_siblings gate: a
	// group window is only held open when at least this many other
	// transactions are in flight, so a lone committer syncs immediately
	// instead of sleeping out the window. 0 defaults to 1; a negative
	// value disables the gate (always hold the window).
	WALCommitSiblings int
	// WALSyncEveryFlush disables WAL group commit: every flush call
	// issues its own device sync (the pre-group-commit baseline).
	WALSyncEveryFlush bool
	// Binding wraps every registered service with a communication
	// mechanism (nil = in-process). Use a netbind.Binding via
	// WrapService for remote deployments.
	Binding core.Binding
	// Coordinator tunes the kernel coordinator; zero value uses
	// defaults.
	Coordinator core.CoordinatorConfig
	// EventHistory bounds the kernel event history (default 1024).
	EventHistory int
}

// DB is a running SBDMS instance: a kernel hosting the composed
// services, plus direct handles for the monolithic baseline.
type DB struct {
	kernel *core.Kernel
	opts   Options

	disk *storage.DiskManager
	pool *buffer.Manager
	fm   *storage.FileManager
	log  *wal.Log
	txns *txn.Manager
	undo *undo.Executor

	engine *sql.Engine
	kv     *kvCore

	ckptStop chan struct{} // stops the background checkpointer
	ckptDone chan struct{}

	vac *vacuum.Runner // background MVCC vacuum (nil when disabled)

	ckptMu    sync.Mutex
	ckptFails uint64 // background checkpoints that returned an error
	ckptErr   error  // most recent background checkpoint error

	// Service path handles (nil for Monolithic).
	kvRef    *core.Ref
	queryRef *core.Ref
	kvPath   kvBackend
}

// Open assembles and starts a database with the given options.
func Open(opts Options) (*DB, error) {
	if opts.Granularity == "" {
		opts.Granularity = Layered
	}
	if opts.BufferFrames <= 0 {
		opts.BufferFrames = 256
	}
	if opts.Device == nil {
		opts.Device = storage.NewMemDevice()
	}
	if opts.EventHistory <= 0 {
		opts.EventHistory = 1024
	}
	iso, err := normalizeIsolation(opts.ScanIsolation)
	if err != nil {
		return nil, err
	}
	opts.ScanIsolation = iso
	ctx := context.Background()

	db := &DB{opts: opts}
	coordCfg := opts.Coordinator
	if coordCfg == (core.CoordinatorConfig{}) {
		coordCfg = core.DefaultCoordinatorConfig()
	}
	db.kernel = core.NewKernel(
		core.WithCoordinatorConfig(coordCfg),
		core.WithEventHistory(opts.EventHistory),
	)

	// With a WAL, a torn disk-metadata write is salvageable: the page
	// count is re-derived from the device size and page content rebuilt
	// from the log during recovery below.
	disk, err := storage.OpenDisk(opts.Device, storage.WithMetaSalvage(!opts.DisableWAL))
	if err != nil {
		return nil, err
	}
	db.disk = disk

	// WAL + crash recovery before anything reads the disk. Recovery's
	// redo repeats history; in-flight transactions with logical undo
	// descriptors are collected here and rolled back below, once the
	// transaction manager and access methods exist.
	var recovered wal.RecoveryStats
	if !opts.DisableWAL {
		var l *wal.Log
		switch {
		case opts.LogDir != nil:
			l, err = wal.OpenDir(opts.LogDir, opts.WALSegmentBytes)
		case opts.LogDevice != nil:
			l, err = wal.Open(opts.LogDevice)
		default:
			l, err = wal.OpenDir(wal.NewMemSegmentDir(), opts.WALSegmentBytes)
		}
		if err != nil {
			return nil, err
		}
		st, err := wal.Recover(l, disk)
		if err != nil {
			return nil, fmt.Errorf("sbdms: recovery: %w", err)
		}
		recovered = st
		if st.Changed() || st.FreeImages > 0 {
			// An actual crash was repaired, or the retained log holds
			// free markings whose allocator list-links may not all
			// have reached the device: relink every durably free-marked
			// page so frees are reclaimed instead of leaked.
			if _, err := disk.RebuildFreeList(); err != nil {
				return nil, fmt.Errorf("sbdms: rebuilding free list: %w", err)
			}
		}
		l.SetGroupWindow(opts.WALGroupWindow, opts.WALGroupBytes)
		l.SetSyncEveryFlush(opts.WALSyncEveryFlush)
		db.log = l
	}

	// The page store under the buffer pool: native disk, or — in the
	// fine profile — the disk service reached through the registry.
	var lower storage.PageStore = disk
	if opts.Granularity == Fine {
		if err := db.deploy(ctx, NewDiskService("disk", disk), nil); err != nil {
			return nil, err
		}
		lower = NewPageStoreClient(db.kernel.Ref(IfaceDisk, nil))
	}

	if opts.BufferShards > 0 {
		db.pool = buffer.NewSharded(lower, opts.BufferFrames, opts.BufferShards, opts.BufferPolicy)
	} else {
		db.pool = buffer.New(lower, opts.BufferFrames, buffer.NewPolicy(opts.BufferPolicy))
	}
	if db.log != nil {
		db.pool.SetBeforeEvict(db.log.BeforeEvict())
	}
	fm, err := storage.OpenFileManager(db.pool)
	if err != nil {
		return nil, err
	}
	db.fm = fm
	db.txns = txn.NewManager(db.log, db.pool)
	db.txns.EnsureIDsAbove(recovered.MaxTxnID)
	// Reseed the commit-timestamp clock above every stamped version on
	// disk (from commit records in the retained log and the checkpoint's
	// clock snapshot), so no post-recovery commit can outrank a
	// recovered version.
	db.txns.Oracle().EnsureClockAbove(recovered.MaxCommitTS)
	// From here on, directory and page-allocation updates run under
	// WAL-logged system transactions.
	fm.SetLogger(db.txns.PageLogger())
	// Logical rollback executor: live aborts and crash-loser rollback
	// both run inverse operations through it.
	db.undo = undo.NewExecutor(db.pool, db.log)
	db.undo.SetSystemTxns(db.txns.SystemHooksHeldLatches())
	db.txns.SetUndoHandler(db.undo)
	if len(recovered.Losers) > 0 {
		// Finish recovery: the losers' effects were redone (repeat
		// history); roll them back through the access methods, logging
		// redo-only compensations and closing each with an abort
		// record.
		if err := db.txns.UndoLosers(recovered.Losers); err != nil {
			return nil, fmt.Errorf("sbdms: rolling back in-flight transactions: %w", err)
		}
	}
	if db.log != nil {
		// Lone committers skip the group window unless enough sibling
		// transactions are in flight to make batching worthwhile
		// (SetCommitSiblings resolves the knob: 0 = gate at 1 sibling,
		// negative = always hold the window).
		db.log.SetCommitSiblings(opts.WALCommitSiblings, func() int { return db.txns.ActiveCount() - 1 })
	}
	cat, err := catalog.Open(fm, db.pool)
	if err != nil {
		return nil, err
	}
	db.engine = sql.NewEngine(fm, db.pool, cat, db.txns)
	if db.log != nil {
		db.engine.SetWAL(db.log)
	}
	db.engine.SetUndo(db.undo)
	// The KV index recounts its entries unless the previous shutdown
	// was provably clean (SyncMeta's clean flag) AND recovery repaired
	// nothing.
	db.kv, err = newKVCore(fm, db.pool, db.txns, db.log, "__kv__", recovered.Changed(), opts.ScanIsolation)
	if err != nil {
		return nil, err
	}
	db.kv.noDowngrade = opts.DisableAppendDowngrade
	db.kv.importChunkPages = opts.ImportChunkPages
	db.kv.importFastOff = opts.DisableImportFastPath
	db.kv.idx.SetOptimisticDescent(!opts.DisableOptimisticDescent)
	db.undo.Register(db.kv.idx)
	// Tombstone-head accounting waits for loser rollback (above): only
	// then is every head's tombstone flag settled.
	if err := db.kv.recountDead(); err != nil {
		return nil, fmt.Errorf("sbdms: recounting tombstones: %w", err)
	}
	// Make the freshly formatted (or recovered) store durable before
	// accepting traffic: every later mutation is WAL-logged, so this
	// baseline is the only state recovery ever has to read from disk.
	if db.log != nil {
		if err := db.log.Flush(db.log.NextLSN()); err != nil {
			return nil, err
		}
		if err := db.pool.FlushAll(); err != nil {
			return nil, err
		}
	}

	if err := db.composeServices(ctx); err != nil {
		return nil, err
	}
	if err := db.kernel.Start(ctx); err != nil {
		return nil, err
	}
	if db.log != nil && !opts.InlineCheckpointFlush {
		db.txns.StartCheckpointFlusher()
	}
	if db.log != nil && opts.CheckpointInterval > 0 {
		db.ckptStop = make(chan struct{})
		db.ckptDone = make(chan struct{})
		go db.checkpointLoop(opts.CheckpointInterval)
	}
	if opts.VacuumInterval > 0 {
		db.vac = vacuum.NewRunner(db.kv.vacuumConfig(), opts.VacuumInterval)
		db.vac.Start()
	}
	return db, nil
}

// checkpointLoop runs fuzzy checkpoints on a fixed period until Close.
// Errors are tolerated per tick (a busy device retries next round) but
// counted and kept: persistent checkpoint failure means the WAL has
// stopped shrinking, and operators must be able to see that
// (CheckpointStatus) instead of discovering a full disk.
func (db *DB) checkpointLoop(every time.Duration) {
	defer close(db.ckptDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-db.ckptStop:
			return
		case <-t.C:
			if _, err := db.Checkpoint(); err != nil {
				db.ckptMu.Lock()
				db.ckptFails++
				db.ckptErr = err
				db.ckptMu.Unlock()
			} else {
				db.ckptMu.Lock()
				db.ckptErr = nil
				db.ckptMu.Unlock()
			}
		}
	}
}

// CheckpointStatus reports the background checkpointer's health: how
// many ticks have failed since Open, and the error from the most
// recent tick (nil after a success). A persistently non-nil error
// means log truncation has stalled and the WAL is growing.
func (db *DB) CheckpointStatus() (failures uint64, lastErr error) {
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	return db.ckptFails, db.ckptErr
}

// Checkpoint takes a fuzzy checkpoint now: in-flight transactions and
// concurrent writers are unaffected, recovery scans are bounded to the
// log suffix, and WAL segments below the new recovery-begin LSN are
// deleted. Returns the checkpoint record's LSN. With the background
// flusher enabled (the default; see Options.InlineCheckpointFlush) the
// call returns as soon as the checkpoint record is durable — the
// dirty-page flush, the manifest advance and the segment truncation
// complete asynchronously, and a background completion failure
// surfaces as the error of the next checkpoint call. Use
// CheckpointSync to wait for (and observe errors from) the completion.
func (db *DB) Checkpoint() (wal.LSN, error) {
	if db.txns == nil || db.log == nil {
		return wal.ZeroLSN, txn.ErrNoWAL
	}
	return db.txns.CheckpointAsync()
}

// CheckpointSync takes a fuzzy checkpoint and waits for its completion:
// when it returns, the dirty-page snapshot is on disk, recovery-begin
// has advanced, and dead WAL segments are deleted. Flush or manifest
// errors are returned here rather than deferred to a later call.
func (db *DB) CheckpointSync() (wal.LSN, error) {
	if db.txns == nil || db.log == nil {
		return wal.ZeroLSN, txn.ErrNoWAL
	}
	return db.txns.Checkpoint()
}

// wrap applies the configured binding to a service.
func (db *DB) wrap(s core.Service) core.Invoker {
	if db.opts.Binding == nil {
		return s
	}
	return core.BindService(s, db.opts.Binding)
}

// deploy registers and starts a service, storing its contract in the
// repository (setup phase of Section 3.3).
func (db *DB) deploy(ctx context.Context, s core.Service, tags map[string]string) error {
	if err := s.Start(ctx); err != nil {
		return err
	}
	if err := db.kernel.Repository().PutContract(s.Contract()); err != nil {
		return err
	}
	return db.kernel.Registry().Register(&core.Registration{
		Name:      s.Name(),
		Interface: s.Contract().Interface,
		Contract:  s.Contract(),
		Invoker:   db.wrap(s),
		Tags:      tags,
	})
}

// composeServices builds the service graph for the selected
// granularity profile.
func (db *DB) composeServices(ctx context.Context) error {
	switch db.opts.Granularity {
	case Monolithic:
		db.kvPath = db.kv // direct native calls
		return nil
	case Coarse:
		if err := db.deploy(ctx, NewKVService("kv", db.kv), nil); err != nil {
			return err
		}
	case Layered, Fine:
		// Record service wraps the native core; KV service wraps a
		// client of the record service: two boundaries per operation.
		if err := db.deploy(ctx, NewRecordService("record", db.kv), nil); err != nil {
			return err
		}
		recRef := db.kernel.Ref(IfaceRecord, nil)
		if err := db.deploy(ctx, NewKVService("kv", NewKVClient(recRef)), nil); err != nil {
			return err
		}
	default:
		return fmt.Errorf("sbdms: unknown granularity %q", db.opts.Granularity)
	}
	if err := db.deploy(ctx, NewQueryService("query", db.engine), nil); err != nil {
		return err
	}
	db.kvRef = db.kernel.Ref(IfaceKV, nil)
	db.queryRef = db.kernel.Ref(IfaceQuery, nil)
	db.kvPath = NewKVClient(db.kvRef)
	return nil
}

// Kernel exposes the service kernel (registry, repository, coordinator,
// event bus) for extension, monitoring and reconfiguration.
func (db *DB) Kernel() *core.Kernel { return db.kernel }

// Engine exposes the native SQL engine (the monolithic baseline path).
func (db *DB) Engine() *sql.Engine { return db.engine }

// Pool exposes the buffer manager (for monitoring and resizing).
func (db *DB) Pool() *buffer.Manager { return db.pool }

// Log exposes the write-ahead log (nil when disabled).
func (db *DB) Log() *wal.Log { return db.log }

// Txns exposes the transaction manager.
func (db *DB) Txns() *txn.Manager { return db.txns }

// FileManager exposes the file manager (extension services build their
// own heaps with it).
func (db *DB) FileManager() *storage.FileManager { return db.fm }

// Granularity reports the active profile.
func (db *DB) Granularity() Granularity { return db.opts.Granularity }

// Exec runs a SQL statement through the configured service path
// (direct engine call for Monolithic).
func (db *DB) Exec(ctx context.Context, query string) (*sql.Result, error) {
	if db.opts.Granularity == Monolithic || db.queryRef == nil {
		return db.engine.Execute(ctx, query)
	}
	out, err := db.queryRef.Invoke(ctx, "execute", query)
	if err != nil {
		return nil, err
	}
	res, ok := out.(*sql.Result)
	if !ok {
		return nil, fmt.Errorf("sbdms: query service returned %T", out)
	}
	return res, nil
}

// Put stores a key-value pair through the configured service path.
func (db *DB) Put(key string, val []byte) error {
	return db.kvPath.Put(context.Background(), key, val)
}

// PutContext is Put with a context bounding lock waits: a write blocked
// behind a conflicting transaction aborts cleanly when ctx is done.
func (db *DB) PutContext(ctx context.Context, key string, val []byte) error {
	return db.kvPath.Put(ctx, key, val)
}

// PutBatch stores several key-value pairs atomically under one
// transaction through the configured service path: one WAL force per
// batch, and all-or-nothing crash recovery.
func (db *DB) PutBatch(keys []string, vals [][]byte) error {
	return db.kvPath.PutBatch(context.Background(), keys, vals)
}

// PutBatchContext is PutBatch with a context bounding lock waits.
func (db *DB) PutBatchContext(ctx context.Context, keys []string, vals [][]byte) error {
	return db.kvPath.PutBatch(ctx, keys, vals)
}

// Import bulk-loads key-value pairs through the configured service
// path. The batch may arrive in any order (it is sorted internally);
// duplicate keys are rejected with ErrImportDuplicate and oversized
// entries with ErrImportKeyTooLarge / ErrImportValueTooLarge, before
// any page is written. On an empty store the load takes the fast path:
// version cells packed page-at-a-time with one WAL record per page, the
// B+tree built bottom-up and published atomically by swapping the meta
// root pointer. On a non-empty store (or with the fast path disabled)
// it falls back to one atomic per-key transaction — see
// ImportFallbacks. Either way the whole batch becomes visible at one
// commit timestamp: a crash mid-import recovers to all of the keys or
// none of them.
func (db *DB) Import(keys []string, vals [][]byte) error {
	return db.kvPath.Import(context.Background(), keys, vals)
}

// ImportContext is Import with a cancellation context: a cancel
// observed mid-load rolls the whole import back and leaves no partial
// state.
func (db *DB) ImportContext(ctx context.Context, keys []string, vals [][]byte) error {
	return db.kvPath.Import(ctx, keys, vals)
}

// ImportFallbacks reports how many Import calls bypassed the bulk fast
// path (non-empty store, DisableImportFastPath, WAL disabled, or a lost
// race against a concurrent insert) and loaded per-key instead.
func (db *DB) ImportFallbacks() uint64 { return db.kv.ImportFallbacks() }

// Get fetches a value through the configured service path.
func (db *DB) Get(key string) ([]byte, error) {
	return db.kvPath.Get(context.Background(), key)
}

// GetContext is Get with a context bounding lock waits.
func (db *DB) GetContext(ctx context.Context, key string) ([]byte, error) {
	return db.kvPath.Get(ctx, key)
}

// DeleteKey removes a key through the configured service path.
func (db *DB) DeleteKey(key string) error {
	return db.kvPath.Delete(context.Background(), key)
}

// DeleteKeyContext is DeleteKey with a context bounding lock waits.
func (db *DB) DeleteKeyContext(ctx context.Context, key string) error {
	return db.kvPath.Delete(ctx, key)
}

// ScanKeys returns up to n keys from key onward, at the isolation
// level Options.ScanIsolation selected: read-committed scans are
// lock-free best-effort views; serializable scans are next-key-locked
// atomic snapshots and may return ErrConflict (retryable) when chosen
// as a deadlock victim against concurrent writers.
func (db *DB) ScanKeys(key string, n int) ([]string, error) {
	return db.kvPath.Scan(context.Background(), key, n)
}

// ScanKeysContext is ScanKeys with a cancellation context bounding lock
// waits (serializable scans block behind conflicting writers).
func (db *DB) ScanKeysContext(ctx context.Context, key string, n int) ([]string, error) {
	return db.kvPath.Scan(ctx, key, n)
}

// GetSnapshot reads key at one consistent MVCC snapshot: the newest
// version committed before the call, without taking any key locks —
// it never blocks behind writers and never sees their uncommitted
// versions.
func (db *DB) GetSnapshot(key string) ([]byte, error) {
	return db.kvPath.GetSnapshot(context.Background(), key)
}

// GetSnapshotContext is GetSnapshot with a cancellation context (the
// read itself is lock-free; the context bounds service-path hops).
func (db *DB) GetSnapshotContext(ctx context.Context, key string) ([]byte, error) {
	return db.kvPath.GetSnapshot(ctx, key)
}

// ScanKeysSnapshot returns up to n keys from key onward as of one
// consistent MVCC snapshot, regardless of Options.ScanIsolation: the
// scan takes no key locks, never blocks behind writers, and never
// returns ErrConflict.
func (db *DB) ScanKeysSnapshot(key string, n int) ([]string, error) {
	return db.kvPath.ScanKeysSnapshot(context.Background(), key, n)
}

// ScanKeysSnapshotContext is ScanKeysSnapshot with a cancellation
// context.
func (db *DB) ScanKeysSnapshotContext(ctx context.Context, key string, n int) ([]string, error) {
	return db.kvPath.ScanKeysSnapshot(ctx, key, n)
}

// Vacuum runs one synchronous MVCC reclamation pass over the KV
// keyspace (independent of any background runner): dead versions —
// those no live or future snapshot can resolve to — are unlinked and
// their heap slots freed, and fully-dead keys leave the index.
func (db *DB) Vacuum() (vacuum.Stats, error) {
	return db.kv.Vacuum()
}

// VacuumStatus reports the background vacuum's accumulated stats,
// pass count and last error. Zero values when no background vacuum is
// configured.
func (db *DB) VacuumStatus() (vacuum.Stats, int, error) {
	if db.vac == nil {
		return vacuum.Stats{}, 0, nil
	}
	return db.vac.Totals()
}

// KVLen returns the number of stored keys.
func (db *DB) KVLen() uint64 { return db.kvPath.Len() }

// SetLogRetention installs a min-shipped-LSN provider on the WAL:
// checkpoint truncation keeps every segment at or above the reported
// LSN, so replication shippers (internal/replicate) that lag behind the
// checkpoint cadence resume from their watermark instead of hitting
// ErrSegmentGone and restarting from a full copy. Pass the shipper's
// Shipped method; nil clears the hook. No-op without a WAL.
func (db *DB) SetLogRetention(fn func() wal.LSN) {
	if db.log != nil {
		db.log.SetRetention(fn)
	}
}

// Flush makes all buffered data durable.
func (db *DB) Flush() error {
	if db.log != nil {
		if err := db.log.Flush(db.log.NextLSN()); err != nil {
			return err
		}
	}
	return db.pool.FlushAll()
}

// Close flushes and stops the instance.
func (db *DB) Close(ctx context.Context) error {
	if db.vac != nil {
		db.vac.Stop()
		db.vac = nil
	}
	if db.ckptStop != nil {
		close(db.ckptStop)
		<-db.ckptDone
		db.ckptStop = nil
	}
	// Drain the background checkpoint flusher before the final flush:
	// every enqueued completion runs, and a sticky background failure
	// surfaces here instead of being lost with the process.
	if db.txns != nil {
		if err := db.txns.StopCheckpointFlusher(); err != nil {
			return err
		}
	}
	// Persist the KV index entry count (not WAL-logged per operation)
	// before the final flush so a clean reopen needs no recount.
	if db.kv != nil {
		if err := db.kv.Close(); err != nil {
			return err
		}
	}
	if err := db.Flush(); err != nil {
		return err
	}
	if err := db.kernel.Stop(ctx); err != nil {
		return err
	}
	return db.disk.Close()
}
