package buffer

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/storage"
)

func TestShardedConstruction(t *testing.T) {
	d, err := storage.OpenDisk(storage.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	m := NewSharded(d, 256, 8, "clock")
	if m.NumShards() != 8 {
		t.Fatalf("NumShards = %d, want 8", m.NumShards())
	}
	if m.PoolSize() != 256 {
		t.Fatalf("PoolSize = %d, want 256", m.PoolSize())
	}
	if m.PolicyName() != "clock" {
		t.Fatalf("PolicyName = %s", m.PolicyName())
	}
	if got := len(m.ShardStats()); got != 8 {
		t.Fatalf("ShardStats len = %d", got)
	}
	// Shard counts are clamped and rounded to powers of two.
	if s := NewSharded(d, 256, 7, "lru").NumShards(); s != 4 {
		t.Fatalf("7 shards rounded to %d, want 4", s)
	}
	if s := NewSharded(d, 2, 16, "lru").NumShards(); s != 2 {
		t.Fatalf("shards clamped to %d, want 2 (nframes)", s)
	}
	// The automatic default keeps small pools single-striped.
	if s := New(d, 8, NewLRU()).NumShards(); s != 1 {
		t.Fatalf("small pool shards = %d, want 1", s)
	}
	if s := New(d, 1024, NewLRU()).NumShards(); s != 16 {
		t.Fatalf("large pool shards = %d, want 16", s)
	}
}

func TestShardedPagesSpreadAcrossShards(t *testing.T) {
	d, err := storage.OpenDisk(storage.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	m := NewSharded(d, 256, 8, "lru")
	seen := make(map[*shard]int)
	for i := 0; i < 256; i++ {
		id, err := d.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		seen[m.shardFor(id)]++
	}
	if len(seen) != 8 {
		t.Fatalf("sequential pages landed on %d/8 shards", len(seen))
	}
	for s, n := range seen {
		if n < 8 {
			t.Fatalf("shard %p got only %d/256 pages — hash badly skewed", s, n)
		}
	}
}

func TestShardedStatsAggregate(t *testing.T) {
	d, err := storage.OpenDisk(storage.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	m := NewSharded(d, 64, 4, "lru")
	ids := allocPages(t, d, 32)
	for _, id := range ids {
		f, err := m.Pin(id)
		if err != nil {
			t.Fatal(err)
		}
		_ = f
		_ = m.Unpin(id, false)
	}
	for _, id := range ids {
		f, err := m.Pin(id)
		if err != nil {
			t.Fatal(err)
		}
		_ = f
		_ = m.Unpin(id, false)
	}
	st := m.Stats()
	if st.Misses != 32 || st.Hits != 32 {
		t.Fatalf("aggregate stats = %+v", st)
	}
	var sum Stats
	for _, s := range m.ShardStats() {
		sum.add(s)
	}
	if sum != st {
		t.Fatalf("shard stats %+v do not sum to aggregate %+v", sum, st)
	}
}

func TestShardedResizeBorrowsForPinSkew(t *testing.T) {
	d, err := storage.OpenDisk(storage.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	m := NewSharded(d, 64, 4, "lru")
	// Find pages that all hash to one shard, and pin more of them than
	// an even post-shrink split would allow.
	target := m.set.Load().shards[0]
	var pinnedIDs []storage.PageID
	for len(pinnedIDs) < 5 {
		id, err := d.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if m.shardFor(id) != target {
			continue
		}
		if _, err := m.Pin(id); err != nil {
			t.Fatal(err)
		}
		pinnedIDs = append(pinnedIDs, id)
	}
	// Shrink to 12 frames over 4 shards: an even split gives 3 per
	// shard, but shard 0 holds 5 pins and must borrow slack.
	if err := m.Resize(12); err != nil {
		t.Fatalf("Resize with skewed pins: %v", err)
	}
	if m.PoolSize() != 12 {
		t.Fatalf("PoolSize = %d, want 12", m.PoolSize())
	}
	for _, id := range pinnedIDs {
		if m.PinCount(id) != 1 {
			t.Fatalf("pinned page %d lost its frame", id)
		}
		_ = m.Unpin(id, false)
	}
	// Total pins beyond the new size still fail.
	if err := m.Resize(64); err != nil {
		t.Fatal(err)
	}
	var held []storage.PageID
	for i := 0; i < 8; i++ {
		id, err := d.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Pin(id); err != nil {
			t.Fatal(err)
		}
		held = append(held, id)
	}
	if err := m.Resize(4); !errors.Is(err, ErrPinned) {
		t.Fatalf("Resize below pinned count: err = %v", err)
	}
	for _, id := range held {
		_ = m.Unpin(id, false)
	}
}

// TestResizeReshardsBelowShardCount: shrinking below one frame per
// stripe dissolves stripes instead of refusing, while live pins and
// held page latches stay valid across the generation swap and evicted
// overflow is flushed, not lost.
func TestResizeReshardsBelowShardCount(t *testing.T) {
	d, err := storage.OpenDisk(storage.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	m := NewSharded(d, 64, 8, "lru")
	ids := allocPages(t, d, 16)
	for _, id := range ids {
		f, err := m.Pin(id)
		if err != nil {
			t.Fatal(err)
		}
		binaryPutID(f.Page().Payload(), uint64(id))
		if err := m.Unpin(id, true); err != nil {
			t.Fatal(err)
		}
	}
	pinID := ids[0]
	if _, err := m.Pin(pinID); err != nil {
		t.Fatal(err)
	}
	latchID := ids[1]
	lf, err := m.PinLatched(latchID, true)
	if err != nil {
		t.Fatal(err)
	}

	before := m.Stats()
	if err := m.Resize(3); err != nil {
		t.Fatalf("Resize(3) on 8 stripes: %v", err)
	}
	if m.PoolSize() != 3 {
		t.Fatalf("PoolSize = %d, want 3", m.PoolSize())
	}
	if got := m.NumShards(); got > 3 {
		t.Fatalf("NumShards = %d after Resize(3), want a dissolved layout", got)
	}
	after := m.Stats()
	if after.Hits < before.Hits || after.Misses < before.Misses {
		t.Fatalf("stats lost in re-shard: before %+v after %+v", before, after)
	}
	if m.PinCount(pinID) != 1 {
		t.Fatalf("pinned page %d lost its frame in re-shard", pinID)
	}
	// The latch acquired on the old generation still guards the moved
	// frame; mutate through it and release via the new generation.
	binaryPutID(lf.Page().Payload(), uint64(latchID))
	if err := m.UnpinLatched(latchID, true, true); err != nil {
		t.Fatal(err)
	}
	if err := m.Unpin(pinID, false); err != nil {
		t.Fatal(err)
	}
	if err := m.FlushAll(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, storage.PageSize)
	for _, id := range ids {
		if err := d.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
		if got := binaryGetID(storage.WrapPage(id, buf).Payload()); got != uint64(id) {
			t.Fatalf("page %d lost its payload across re-shard (stamp %d)", id, got)
		}
	}
}

// TestResizeReshardsOnPinSkew: pins that no split over the current
// stripes can fit are repacked by dissolving stripes rather than
// refused with ErrPinned.
func TestResizeReshardsOnPinSkew(t *testing.T) {
	d, err := storage.OpenDisk(storage.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	m := NewSharded(d, 64, 4, "lru")
	target := m.set.Load().shards[0]
	var pinnedIDs []storage.PageID
	for len(pinnedIDs) < 3 {
		id, err := d.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if m.shardFor(id) != target {
			continue
		}
		if _, err := m.Pin(id); err != nil {
			t.Fatal(err)
		}
		pinnedIDs = append(pinnedIDs, id)
	}
	// 4 frames over 4 stripes leaves no slack for 3 pins on one
	// stripe (every other stripe needs a frame of its own).
	if err := m.Resize(4); err != nil {
		t.Fatalf("Resize with skew beyond stripe slack: %v", err)
	}
	if m.PoolSize() != 4 {
		t.Fatalf("PoolSize = %d, want 4", m.PoolSize())
	}
	if m.NumShards() >= 4 {
		t.Fatalf("NumShards = %d, want re-shard below 4", m.NumShards())
	}
	for _, id := range pinnedIDs {
		if m.PinCount(id) != 1 {
			t.Fatalf("pinned page %d lost its frame", id)
		}
		if err := m.Unpin(id, false); err != nil {
			t.Fatal(err)
		}
	}
	// The shrunken pool still serves traffic.
	if _, err := m.Pin(pinnedIDs[0]); err != nil {
		t.Fatal(err)
	}
	if err := m.Unpin(pinnedIDs[0], false); err != nil {
		t.Fatal(err)
	}
}

// TestReshardConcurrentSwap races pin traffic against generation
// swaps (run with -race): every round shrinks an 8-stripe pool below
// one frame per stripe mid-flight, then grows it back.
func TestReshardConcurrentSwap(t *testing.T) {
	d, err := storage.OpenDisk(storage.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	ids := allocPages(t, d, 64)
	for r := 0; r < 10; r++ {
		m := NewSharded(d, 64, 8, "lru")
		var wg sync.WaitGroup
		errCh := make(chan error, 8)
		stop := make(chan struct{})
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for {
					select {
					case <-stop:
						return
					default:
					}
					id := ids[rng.Intn(len(ids))]
					if _, err := m.Pin(id); err != nil {
						if errors.Is(err, ErrPoolExhausted) {
							continue
						}
						errCh <- err
						return
					}
					if err := m.Unpin(id, false); err != nil {
						errCh <- err
						return
					}
					_ = m.Stats()
				}
			}(int64(r*8 + w + 1))
		}
		if err := m.Resize(5); err != nil && !errors.Is(err, ErrPinned) {
			t.Fatal(err)
		}
		if err := m.Resize(64); err != nil && !errors.Is(err, ErrPinned) {
			t.Fatal(err)
		}
		close(stop)
		wg.Wait()
		close(errCh)
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
		for _, id := range ids {
			if pc := m.PinCount(id); pc != 0 {
				t.Fatalf("page %d ends with pin count %d", id, pc)
			}
		}
	}
}

// TestShardedConcurrentStress hammers Pin/Unpin/NewPage/Stats/Resize
// from many goroutines across shards (run with -race), then checks
// pin-count and stats invariants.
func TestShardedConcurrentStress(t *testing.T) {
	d, err := storage.OpenDisk(storage.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	m := NewSharded(d, 256, 8, "lru")
	const npages = 512
	ids := make([]storage.PageID, npages)
	for i := range ids {
		if ids[i], err = d.Allocate(); err != nil {
			t.Fatal(err)
		}
	}

	const workers = 16
	const opsPer = 1500
	var pins atomic.Uint64 // successful Pin calls
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsPer; i++ {
				switch rng.Intn(20) {
				case 0:
					// Allocate a fresh page (stays pinned until unpin).
					f, err := m.NewPage(storage.PageTypeHeap)
					if err != nil {
						if errors.Is(err, ErrPoolExhausted) {
							continue
						}
						errCh <- err
						return
					}
					if err := m.Unpin(f.ID, true); err != nil {
						errCh <- err
						return
					}
				case 1:
					// Resize under load; ErrPinned is a legal outcome.
					n := 128 + rng.Intn(256)
					if err := m.Resize(n); err != nil && !errors.Is(err, ErrPinned) {
						errCh <- err
						return
					}
				case 2:
					_ = m.Stats()
					_ = m.ShardStats()
				default:
					pi := rng.Intn(npages)
					id := ids[pi]
					f, err := m.Pin(id)
					if err != nil {
						if errors.Is(err, ErrPoolExhausted) {
							continue
						}
						errCh <- err
						return
					}
					pins.Add(1)
					// Only the owning worker writes a page's payload:
					// concurrent pins of one page are legal, and frame
					// bytes are not synchronized between pin holders.
					dirty := pi%workers == int(seed-1) && rng.Intn(4) == 0
					if dirty {
						// Stamp the page with its own id so post-flush
						// integrity is checkable.
						binaryPutID(f.Page().Payload(), uint64(id))
					}
					if m.PinCount(id) < 1 {
						errCh <- fmt.Errorf("page %d pinned but PinCount < 1", id)
						return
					}
					if err := m.Unpin(id, dirty); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}

	// Every pin was matched by an unpin.
	for _, id := range ids {
		if pc := m.PinCount(id); pc != 0 {
			t.Fatalf("page %d ends with pin count %d", id, pc)
		}
	}
	// Every successful Pin was counted exactly once as hit or miss.
	st := m.Stats()
	if st.Hits+st.Misses != pins.Load() {
		t.Fatalf("hits+misses = %d, want %d successful pins", st.Hits+st.Misses, pins.Load())
	}
	if err := m.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Dirtied pages carry their own id: the stamp either round-tripped
	// or the page was never dirtied (all zero).
	buf := make([]byte, storage.PageSize)
	for _, id := range ids {
		if err := d.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
		got := binaryGetID(storage.WrapPage(id, buf).Payload())
		if got != 0 && got != uint64(id) {
			t.Fatalf("page %d holds stamp %d — cross-page corruption", id, got)
		}
	}
}

func binaryPutID(p []byte, v uint64) {
	for i := 0; i < 8; i++ {
		p[i] = byte(v >> (8 * i))
	}
}

func binaryGetID(p []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(p[i]) << (8 * i)
	}
	return v
}
