package txn

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestLockUpgradeSoloHolder: the sole shared holder upgrades to
// exclusive in place, without deadlocking against itself.
func TestLockUpgradeSoloHolder(t *testing.T) {
	lm := NewLockManager()
	ctx := context.Background()
	if err := lm.Acquire(ctx, 1, "r", Shared); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(ctx, 1, "r", Exclusive); err != nil {
		t.Fatalf("solo upgrade: %v", err)
	}
	if m, ok := lm.Held(1, "r"); !ok || m != Exclusive {
		t.Fatalf("held = %v,%v want X", m, ok)
	}
	// Exclusive re-acquisition and shared re-acquisition are no-ops.
	if err := lm.Acquire(ctx, 1, "r", Shared); err != nil {
		t.Fatal(err)
	}
	if m, _ := lm.Held(1, "r"); m != Exclusive {
		t.Fatal("shared re-acquire must not downgrade")
	}
	lm.ReleaseAll(1)
	if lm.Locked() != 0 {
		t.Fatal("locks leaked")
	}
}

// TestLockUpgradeWaitsForReaders: an upgrade blocks while other shared
// holders remain and proceeds once they release.
func TestLockUpgradeWaitsForReaders(t *testing.T) {
	lm := NewLockManager()
	ctx := context.Background()
	if err := lm.Acquire(ctx, 1, "r", Shared); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(ctx, 2, "r", Shared); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- lm.Acquire(ctx, 1, "r", Exclusive) }()
	select {
	case err := <-got:
		t.Fatalf("upgrade completed with a second reader present: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	lm.ReleaseAll(2)
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("upgrade after release: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("upgrade never woke up")
	}
	if m, ok := lm.Held(1, "r"); !ok || m != Exclusive {
		t.Fatalf("held = %v,%v want X", m, ok)
	}
	lm.ReleaseAll(1)
}

// TestLockUpgradeDeadlock: two shared holders both requesting the
// upgrade deadlock; exactly one is chosen as victim, and after it backs
// off (releasing its share) the survivor upgrades.
func TestLockUpgradeDeadlock(t *testing.T) {
	lm := NewLockManager()
	ctx := context.Background()
	if err := lm.Acquire(ctx, 1, "r", Shared); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(ctx, 2, "r", Shared); err != nil {
		t.Fatal(err)
	}
	type res struct {
		txn uint64
		err error
	}
	results := make(chan res, 2)
	for _, id := range []uint64{1, 2} {
		id := id
		go func() {
			err := lm.Acquire(ctx, id, "r", Exclusive)
			if errors.Is(err, ErrDeadlock) {
				lm.ReleaseAll(id) // victims abort, freeing their share
			}
			results <- res{id, err}
		}()
	}
	var victims, winners int
	for i := 0; i < 2; i++ {
		r := <-results
		if errors.Is(r.err, ErrDeadlock) {
			victims++
		} else if r.err == nil {
			winners++
		} else {
			t.Fatalf("txn %d: %v", r.txn, r.err)
		}
	}
	if victims != 1 || winners != 1 {
		t.Fatalf("victims=%d winners=%d, want exactly one of each", victims, winners)
	}
}

// TestDeadlockThreeWayCycle: T1 holds A, T2 holds B, T3 holds C; each
// then requests the next resource, closing a 3-cycle. Exactly one
// victim aborts; the others complete after it releases.
func TestDeadlockThreeWayCycle(t *testing.T) {
	lm := NewLockManager()
	ctx := context.Background()
	holds := map[uint64]string{1: "A", 2: "B", 3: "C"}
	wants := map[uint64]string{1: "B", 2: "C", 3: "A"}
	for id, r := range holds {
		if err := lm.Acquire(ctx, id, r, Exclusive); err != nil {
			t.Fatal(err)
		}
	}
	type res struct {
		txn uint64
		err error
	}
	results := make(chan res, 3)
	var wg sync.WaitGroup
	for id := uint64(1); id <= 3; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := lm.Acquire(ctx, id, wants[id], Exclusive)
			// Victim or not, the transaction then "finishes" and frees
			// everything it holds, so the remaining waiters drain.
			lm.ReleaseAll(id)
			results <- res{id, err}
		}()
	}
	wg.Wait()
	close(results)
	victims := 0
	for r := range results {
		if errors.Is(r.err, ErrDeadlock) {
			victims++
		} else if r.err != nil {
			t.Fatalf("txn %d: %v", r.txn, r.err)
		}
	}
	if victims != 1 {
		t.Fatalf("victims = %d, want exactly 1 (minimal victim set for one cycle)", victims)
	}
	if lm.Locked() != 0 {
		t.Fatal("locks leaked after cycle resolution")
	}
}

// TestNoPhantomDeadlockFromStaleEdges is the wakeup-audit regression:
// wait-for edges must be rebuilt from the CURRENT blockers on every
// retry. Sequence: T1 waits on T2 (edge T1->T2), T2 releases, T1's next
// blocker is T3. If the stale T1->T2 edge survived, T2 waiting on T1
// later would be declared a deadlock even though no cycle exists.
func TestNoPhantomDeadlockFromStaleEdges(t *testing.T) {
	lm := NewLockManager()
	ctx := context.Background()

	// T2 holds R; T3 holds S. T1 parks waiting for R (edge T1->T2),
	// then R is handed to T3 — T1's real blocker becomes T3.
	if err := lm.Acquire(ctx, 2, "R", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(ctx, 3, "S", Exclusive); err != nil {
		t.Fatal(err)
	}
	t1done := make(chan error, 1)
	go func() {
		err := lm.Acquire(ctx, 1, "R", Exclusive)
		lm.ReleaseAll(1)
		t1done <- err
	}()
	time.Sleep(20 * time.Millisecond) // T1 is parked with edge T1->T2

	// Hand R from T2 to T3 while T1 sleeps. Both T1 and T3 race for
	// the grant; either way T1's retry must rebuild its edges from the
	// holders it actually sees.
	t3got := make(chan error, 1)
	go func() {
		err := lm.Acquire(ctx, 3, "R", Exclusive)
		lm.ReleaseAll(3) // releases R and S once it got R
		t3got <- err
	}()
	time.Sleep(20 * time.Millisecond)
	lm.ReleaseAll(2)
	time.Sleep(20 * time.Millisecond)

	// T2 (holding nothing) now waits on S while T3 still holds it. If
	// T1 kept its stale edge T1->T2 and T3 waits behind T1, the graph
	// would show the phantom cycle T2->T3->T1->T2 and wrongly abort
	// T2. With per-retry rebuilt edges there is no cycle through T2:
	// the wait simply drains as R and S are released.
	if err := lm.Acquire(ctx, 2, "S", Exclusive); err != nil {
		t.Fatalf("phantom deadlock from stale wait-for edges: %v", err)
	}
	lm.ReleaseAll(2)
	for _, ch := range []chan error{t1done, t3got} {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("grant: %v", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("waiter never drained")
		}
	}
	if lm.Locked() != 0 {
		t.Fatal("locks leaked")
	}
}

// TestAcquireContextCancellation: a blocked acquisition observes
// context cancellation instead of waiting forever.
func TestAcquireContextCancellation(t *testing.T) {
	lm := NewLockManager()
	if err := lm.Acquire(context.Background(), 1, "r", Exclusive); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() { got <- lm.Acquire(ctx, 2, "r", Exclusive) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-got:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancellation not observed")
	}
	lm.ReleaseAll(1)
}
