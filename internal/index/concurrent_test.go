package index

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/access"
	"repro/internal/buffer"
	"repro/internal/storage"
)

// newConcurrentTree builds an unlogged tree over a pool large enough
// that latched descents never exhaust frames.
func newConcurrentTree(t *testing.T) *BTree {
	t.Helper()
	d, err := storage.OpenDisk(storage.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	pool := buffer.New(d, 512, buffer.NewLRU())
	tr, _, err := Create(pool, false)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func crid(i int) access.RID {
	return access.RID{Page: storage.PageID(i/100 + 2), Slot: uint16(i % 100)}
}

// TestConcurrentInsertSearch: parallel writers over disjoint key
// stripes, readers over everything; run under -race. Verifies every
// inserted key is found afterwards and the latch-crabbed descents never
// lose an entry across splits.
func TestConcurrentInsertSearch(t *testing.T) {
	tr := newConcurrentTree(t)
	const workers = 8
	const perWorker = 400
	var wg sync.WaitGroup
	errs := make(chan error, workers*2)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				n := w*perWorker + i
				key := []byte(fmt.Sprintf("key-%02d-%06d", w, i))
				if err := tr.Insert(key, crid(n)); err != nil {
					errs <- fmt.Errorf("insert %s: %w", key, err)
					return
				}
			}
		}()
		// Concurrent readers sweep ranges while writers split leaves.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := tr.Range(nil, nil, func([]byte, access.RID) error { return nil }); err != nil {
					errs <- fmt.Errorf("range: %w", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if got, want := tr.Len(), uint64(workers*perWorker); got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			n := w*perWorker + i
			key := []byte(fmt.Sprintf("key-%02d-%06d", w, i))
			rids, err := tr.Search(key)
			if err != nil {
				t.Fatal(err)
			}
			if len(rids) != 1 || rids[0] != crid(n) {
				t.Fatalf("Search(%s) = %v, want %v", key, rids, crid(n))
			}
		}
	}
}

// TestConcurrentInsertDeleteScan mixes inserts, deletes of previously
// inserted keys, and full scans on overlapping ranges. The final state
// must contain exactly the non-deleted keys.
func TestConcurrentInsertDeleteScan(t *testing.T) {
	tr := newConcurrentTree(t)
	const workers = 6
	const perWorker = 300
	var scans atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, workers+1)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				n := w*perWorker + i
				key := []byte(fmt.Sprintf("k%06d", n))
				if err := tr.Insert(key, crid(n)); err != nil {
					errs <- err
					return
				}
				if i%3 == 0 { // delete every third key right back
					ok, err := tr.Delete(key, crid(n))
					if err != nil {
						errs <- err
						return
					}
					if !ok {
						errs <- fmt.Errorf("delete %s: not found", key)
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			n := 0
			if err := tr.Range([]byte("k"), nil, func([]byte, access.RID) error { n++; return nil }); err != nil {
				errs <- err
				return
			}
			scans.Add(int64(n))
		}
	}()
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	want := 0
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			n := w*perWorker + i
			key := []byte(fmt.Sprintf("k%06d", n))
			rids, err := tr.Search(key)
			if err != nil {
				t.Fatal(err)
			}
			if i%3 == 0 {
				if len(rids) != 0 {
					t.Fatalf("deleted key %s still present: %v", key, rids)
				}
			} else {
				want++
				if len(rids) != 1 {
					t.Fatalf("key %s = %v, want 1 rid", key, rids)
				}
			}
		}
	}
	if got := tr.Len(); got != uint64(want) {
		t.Fatalf("Len = %d, want %d", got, want)
	}
}

// TestConcurrentInsertOptimisticFallback hammers the optimistic insert
// descent: writers insert interleaved keys (neighbouring keys come from
// different goroutines), so leaf splits constantly bump interior version
// counters under concurrent shared-latch descents and force the
// re-validate + exclusive-crab fallback. The tree must come out complete
// either way; the fallback counter proves the optimistic path actually
// engaged (a full target leaf is never "safe", so splits make fallbacks
// deterministic even on one core) and stays silent when disabled.
func TestConcurrentInsertOptimisticFallback(t *testing.T) {
	for _, opt := range []bool{true, false} {
		name := "optimistic"
		if !opt {
			name = "exclusive"
		}
		t.Run(name, func(t *testing.T) {
			tr := newConcurrentTree(t)
			tr.SetOptimisticDescent(opt)
			const workers = 8
			const perWorker = 500
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						n := i*workers + w
						key := []byte(fmt.Sprintf("fb%07d", n))
						if err := tr.Insert(key, crid(n)); err != nil {
							errs <- fmt.Errorf("insert %s: %w", key, err)
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			if err := <-errs; err != nil {
				t.Fatal(err)
			}
			if got, want := tr.Len(), uint64(workers*perWorker); got != want {
				t.Fatalf("Len = %d, want %d", got, want)
			}
			for n := 0; n < workers*perWorker; n++ {
				key := []byte(fmt.Sprintf("fb%07d", n))
				rids, err := tr.Search(key)
				if err != nil {
					t.Fatal(err)
				}
				if len(rids) != 1 || rids[0] != crid(n) {
					t.Fatalf("Search(%s) = %v, want %v", key, rids, crid(n))
				}
			}
			fb := tr.DescentFallbacks()
			if opt && fb == 0 {
				t.Fatal("optimistic descent never fell back; splits should have forced it")
			}
			if !opt && fb != 0 {
				t.Fatalf("descent disabled but fallback counter = %d", fb)
			}
		})
	}
}
