// Package sbdms is the public facade of the Service-Based Data
// Management System: it composes the storage, access, data and
// extension services of the paper's Figure 2 into a running database,
// at a selectable service granularity (monolithic, coarse, layered,
// fine) and over a selectable binding (in-process or TCP) — the exact
// experiment matrix the paper proposes as future work ("testing with
// different levels of service granularity will give us insights into
// the right tradeoff between service granularity and system
// performance", Section 5).
package sbdms

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/access"
	"repro/internal/buffer"
	"repro/internal/index"
	"repro/internal/storage"
)

// KV errors.
var (
	// ErrKeyNotFound is returned by Get/Delete on absent keys.
	ErrKeyNotFound = errors.New("sbdms: key not found")
)

// kvCore is the native key-value engine: a heap file for values plus a
// unique B+tree index on keys. It is the workhorse behind the KV
// service at every granularity; what changes between profiles is how
// many service boundaries a call crosses before reaching it.
type kvCore struct {
	mu   sync.Mutex
	heap *access.HeapFile
	idx  *index.BTree
}

func newKVCore(fm *storage.FileManager, pool *buffer.Manager, name string) (*kvCore, error) {
	heap, err := access.OpenHeap(name, fm, pool)
	if err != nil {
		return nil, err
	}
	idx, err := openKVIndex(fm, pool, name+".meta")
	if err != nil {
		return nil, err
	}
	return &kvCore{heap: heap, idx: idx}, nil
}

// openKVIndex opens the KV B+tree, persisting its metadata page id in a
// one-page file so the index survives restarts.
func openKVIndex(fm *storage.FileManager, pool *buffer.Manager, metaFile string) (*index.BTree, error) {
	if fm.Exists(metaFile) {
		pid, err := fm.FirstPage(metaFile)
		if err != nil {
			return nil, err
		}
		f, err := pool.Pin(pid)
		if err != nil {
			return nil, err
		}
		metaID := storage.PageID(binary.LittleEndian.Uint64(f.Page().Payload()))
		if err := pool.Unpin(pid, false); err != nil {
			return nil, err
		}
		return index.Open(pool, metaID)
	}
	idx, metaID, err := index.Create(pool, true)
	if err != nil {
		return nil, err
	}
	if err := fm.Create(metaFile); err != nil {
		return nil, err
	}
	pid, err := fm.AppendPage(metaFile, storage.PageTypeRaw)
	if err != nil {
		return nil, err
	}
	f, err := pool.Pin(pid)
	if err != nil {
		return nil, err
	}
	binary.LittleEndian.PutUint64(f.Page().Payload(), uint64(metaID))
	if err := pool.Unpin(pid, true); err != nil {
		return nil, err
	}
	return idx, nil
}

func (kv *kvCore) key(k string) []byte { return access.EncodeKey(access.NewString(k)) }

// Put stores (or replaces) a key.
func (kv *kvCore) Put(k string, v []byte) error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	rec := access.EncodeRow(access.Row{access.NewString(k), access.NewBytes(v)})
	rids, err := kv.idx.Search(kv.key(k))
	if err != nil {
		return err
	}
	if len(rids) > 0 {
		nrid, err := kv.heap.Update(nil, rids[0], rec)
		if err != nil {
			return err
		}
		if nrid != rids[0] {
			if _, err := kv.idx.Delete(kv.key(k), rids[0]); err != nil {
				return err
			}
			if err := kv.idx.Insert(kv.key(k), nrid); err != nil {
				return err
			}
		}
		return nil
	}
	rid, err := kv.heap.Insert(nil, rec)
	if err != nil {
		return err
	}
	return kv.idx.Insert(kv.key(k), rid)
}

// Get fetches a key's value.
func (kv *kvCore) Get(k string) ([]byte, error) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	rids, err := kv.idx.Search(kv.key(k))
	if err != nil {
		return nil, err
	}
	if len(rids) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrKeyNotFound, k)
	}
	rec, err := kv.heap.Get(rids[0])
	if err != nil {
		return nil, err
	}
	row, err := access.DecodeRow(rec)
	if err != nil {
		return nil, err
	}
	return row[1].Bytes, nil
}

// Delete removes a key.
func (kv *kvCore) Delete(k string) error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	rids, err := kv.idx.Search(kv.key(k))
	if err != nil {
		return err
	}
	if len(rids) == 0 {
		return fmt.Errorf("%w: %q", ErrKeyNotFound, k)
	}
	if err := kv.heap.Delete(nil, rids[0]); err != nil {
		return err
	}
	_, err = kv.idx.Delete(kv.key(k), rids[0])
	return err
}

// Scan returns up to n keys starting at (inclusive) the given key, in
// order.
func (kv *kvCore) Scan(from string, n int) ([]string, error) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	var out []string
	err := kv.idx.Range(kv.key(from), nil, func(key []byte, rid access.RID) error {
		if len(out) >= n {
			return errStopScan
		}
		rec, err := kv.heap.Get(rid)
		if err != nil {
			return err
		}
		row, err := access.DecodeRow(rec)
		if err != nil {
			return err
		}
		out = append(out, row[0].Str)
		return nil
	})
	if err != nil && !errors.Is(err, errStopScan) {
		return nil, err
	}
	return out, nil
}

// Len returns the number of keys.
func (kv *kvCore) Len() uint64 { return kv.idx.Len() }

var errStopScan = errors.New("sbdms: stop scan")
