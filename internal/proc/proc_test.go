package proc

import (
	"context"
	"errors"
	"testing"

	"repro/internal/access"
)

func TestRegisterCall(t *testing.T) {
	r := NewRegistry()
	err := r.Register("double", "doubles an int", func(ctx context.Context, args access.Row) ([]access.Row, error) {
		return []access.Row{{access.NewInt(args[0].Int * 2)}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.Call(context.Background(), "double", access.Row{access.NewInt(21)})
	if err != nil || out[0][0].Int != 42 {
		t.Fatalf("Call = %v, %v", out, err)
	}
	if doc, _ := r.Doc("double"); doc != "doubles an int" {
		t.Fatalf("doc = %q", doc)
	}
	st, err := r.Stats("double")
	if err != nil || st.Calls != 1 || st.Errors != 0 {
		t.Fatalf("stats = %+v, %v", st, err)
	}
}

func TestErrorsCounted(t *testing.T) {
	r := NewRegistry()
	boom := errors.New("boom")
	_ = r.Register("bad", "", func(ctx context.Context, args access.Row) ([]access.Row, error) {
		return nil, boom
	})
	if _, err := r.Call(context.Background(), "bad", nil); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	st, _ := r.Stats("bad")
	if st.Errors != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRegistryValidation(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("", "", nil); err == nil {
		t.Fatal("empty registration must fail")
	}
	_ = r.Register("p", "", func(ctx context.Context, args access.Row) ([]access.Row, error) { return nil, nil })
	if err := r.Register("p", "", func(ctx context.Context, args access.Row) ([]access.Row, error) { return nil, nil }); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v", err)
	}
	if _, err := r.Call(context.Background(), "zzz", nil); !errors.Is(err, ErrNoProc) {
		t.Fatalf("err = %v", err)
	}
	if _, err := r.Doc("zzz"); !errors.Is(err, ErrNoProc) {
		t.Fatalf("err = %v", err)
	}
	if _, err := r.Stats("zzz"); !errors.Is(err, ErrNoProc) {
		t.Fatalf("err = %v", err)
	}
	if err := r.Unregister("zzz"); !errors.Is(err, ErrNoProc) {
		t.Fatalf("err = %v", err)
	}
	if got := r.List(); len(got) != 1 || got[0] != "p" {
		t.Fatalf("List = %v", got)
	}
	if err := r.Unregister("p"); err != nil {
		t.Fatal(err)
	}
	if len(r.List()) != 0 {
		t.Fatal("unregister failed")
	}
}
