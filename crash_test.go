package sbdms

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/storage"
)

// crashState tracks what a crash-recovery run must find after reopen:
// the value of every key whose Put committed (returned nil), and every
// key whose Delete committed.
type crashState struct {
	live    map[string]string
	deleted map[string]bool
}

// runKVCrashWorkload drives a mixed put/delete KV workload against db,
// recording only operations that reported success. Operations are
// allowed to fail (the device may crash mid-run); the workload stops
// early once the fault device reports the crash happened and a few
// more operations have been attempted against the dead disk.
func runKVCrashWorkload(db *DB, nops, keySpace int, seed int64, fault *storage.FaultDevice) *crashState {
	st := &crashState{live: map[string]string{}, deleted: map[string]bool{}}
	rng := rand.New(rand.NewSource(seed))
	pad := strings.Repeat("x", 80)
	afterCrash := 0
	for i := 0; i < nops; i++ {
		if fault != nil && fault.Crashed() {
			afterCrash++
			if afterCrash > 20 {
				break
			}
		}
		k := fmt.Sprintf("key-%04d", rng.Intn(keySpace))
		if rng.Intn(10) < 7 || !st.deleted[k] && st.live[k] == "" {
			v := fmt.Sprintf("val-%d-%s", i, pad)
			if err := db.Put(k, []byte(v)); err == nil {
				st.live[k] = v
				delete(st.deleted, k)
			}
		} else if _, ok := st.live[k]; ok {
			if err := db.DeleteKey(k); err == nil {
				delete(st.live, k)
				st.deleted[k] = true
			}
		}
	}
	return st
}

// verifyRecovered reopens the store from the surviving devices and
// asserts that recovery succeeds, every committed key is readable with
// its committed value, every committed delete stays deleted, and the
// index count matches.
func verifyRecovered(t *testing.T, dataDev, logDev storage.Device, st *crashState) {
	t.Helper()
	db, err := Open(Options{
		Device:       dataDev,
		LogDevice:    logDev,
		Granularity:  Monolithic,
		BufferFrames: 64,
	})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer db.Close(context.Background())
	for k, want := range st.live {
		got, err := db.Get(k)
		if err != nil {
			t.Fatalf("committed key %q lost after recovery: %v", k, err)
		}
		if string(got) != want {
			t.Fatalf("committed key %q = %q, want %q", k, got, want)
		}
	}
	for k := range st.deleted {
		if _, err := db.Get(k); err == nil {
			t.Fatalf("committed delete of %q resurrected after recovery", k)
		} else if !isNotFound(err) {
			t.Fatalf("Get(%q) after committed delete: %v", k, err)
		}
	}
	if got, want := db.KVLen(), uint64(len(st.live)); got != want {
		t.Fatalf("KVLen after recovery = %d, want %d", got, want)
	}
}

// openCrashDB opens a DB over the given devices with a deliberately
// tiny buffer pool, so dirty pages are written back mid-workload and a
// crash leaves the store torn between flushed and unflushed pages —
// the scenario from the ROADMAP corruption item.
func openCrashDB(t *testing.T, dataDev, logDev storage.Device) *DB {
	t.Helper()
	db, err := Open(Options{
		Device:       dataDev,
		LogDevice:    logDev,
		Granularity:  Monolithic,
		BufferFrames: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// abandon simulates kill -9: background services stop, but nothing is
// flushed or closed. Whatever reached the devices is all that survives.
// The checkpoint flusher goroutine must die too — a live flusher would
// keep writing the "dead" process's pages to a device the recovered DB
// is reading — and its sticky error (often the injected crash itself)
// is deliberately dropped.
func abandon(db *DB) {
	_ = db.Kernel().Stop(context.Background())
	if db.txns != nil {
		err := db.txns.StopCheckpointFlusher()
		_ = err // crash simulation: flush errors are expected here
	}
}

// TestKVCrashRecoveryKill9 is the acceptance scenario: a pure-KV
// workload (no SQL traffic) over a tiny pool, killed without any flush.
// Dirty pages resident in the pool are lost; pages evicted mid-run were
// written back. On the pre-fix engine this reopens to "storage: corrupt
// file directory: page 1 has type 6"; with end-to-end KV logging the
// store must reopen cleanly with every committed key present.
func TestKVCrashRecoveryKill9(t *testing.T) {
	dataDev, logDev := storage.NewMemDevice(), storage.NewMemDevice()
	db := openCrashDB(t, dataDev, logDev)
	st := runKVCrashWorkload(db, 400, 120, 1, nil)
	if len(st.live) == 0 {
		t.Fatal("workload committed nothing")
	}
	abandon(db)
	verifyRecovered(t, dataDev, logDev, st)
}

// TestKVCrashRecoveryMidWriteBack crashes the data device part-way
// through the workload's write-back traffic, at several crash points:
// writes before the point land on disk, the crashing write is dropped,
// and every later access fails — exactly a disk dying under kill -9.
func TestKVCrashRecoveryMidWriteBack(t *testing.T) {
	for _, crashAfter := range []int{0, 3, 17, 60} {
		t.Run(fmt.Sprintf("crashAfter=%d", crashAfter), func(t *testing.T) {
			inner, logDev := storage.NewMemDevice(), storage.NewMemDevice()
			fault := storage.NewFaultDevice(inner)
			db := openCrashDB(t, fault, logDev)
			// Let the store format itself, then arm the crash so it
			// triggers during workload write-back.
			fault.CrashAfterWrites(crashAfter, 0)
			st := runKVCrashWorkload(db, 600, 120, int64(crashAfter)+2, fault)
			abandon(db)
			verifyRecovered(t, inner, logDev, st)
		})
	}
}

// TestKVCrashRecoveryTornWrite tears a page write in half at the crash
// point: the page on disk fails its checksum and recovery must
// reconstruct it from logged images instead of reading it.
func TestKVCrashRecoveryTornWrite(t *testing.T) {
	for _, crashAfter := range []int{2, 11, 40} {
		t.Run(fmt.Sprintf("crashAfter=%d", crashAfter), func(t *testing.T) {
			inner, logDev := storage.NewMemDevice(), storage.NewMemDevice()
			fault := storage.NewFaultDevice(inner)
			db := openCrashDB(t, fault, logDev)
			fault.CrashAfterWrites(crashAfter, storage.PageSize/2)
			st := runKVCrashWorkload(db, 600, 120, int64(crashAfter)+100, fault)
			abandon(db)
			verifyRecovered(t, inner, logDev, st)
		})
	}
}

// TestKVBatchAbortRollsBackTree: a batch whose last operation fails
// must roll back completely — including the B+tree's in-memory
// root/count, which physical page undo alone does not rewind — and
// leave a fully working engine whose state also survives a crash.
func TestKVBatchAbortRollsBackTree(t *testing.T) {
	dataDev, logDev := storage.NewMemDevice(), storage.NewMemDevice()
	db := openCrashDB(t, dataDev, logDev)
	if err := db.Put("survivor", []byte("v0")); err != nil {
		t.Fatal(err)
	}
	// 300 small puts force index splits (new root) before the oversized
	// value fails the batch.
	keys := make([]string, 301)
	vals := make([][]byte, 301)
	for i := 0; i < 300; i++ {
		keys[i] = fmt.Sprintf("doomed-%03d", i)
		vals[i] = []byte(strings.Repeat("x", 40))
	}
	keys[300] = "too-big"
	vals[300] = make([]byte, 2*storage.PageSize)
	if err := db.PutBatch(keys, vals); err == nil {
		t.Fatal("oversized batch must fail")
	}
	if got := db.KVLen(); got != 1 {
		t.Fatalf("KVLen after aborted batch = %d, want 1", got)
	}
	if _, err := db.Get("doomed-000"); err == nil {
		t.Fatal("aborted key visible")
	}
	if got, err := db.Get("survivor"); err != nil || string(got) != "v0" {
		t.Fatalf("survivor after abort = %q, %v", got, err)
	}
	// Engine still fully usable, and its post-abort commits recover.
	if err := db.Put("after-abort", []byte("v1")); err != nil {
		t.Fatalf("put after aborted batch: %v", err)
	}
	abandon(db)
	verifyRecovered(t, dataDev, logDev, &crashState{
		live:    map[string]string{"survivor": "v0", "after-abort": "v1"},
		deleted: map[string]bool{"doomed-000": true, "too-big": true},
	})
}

// TestKVCrashRecoveryBatch covers the batched multi-op path: a batch
// is one transaction, so after a crash either all its keys are present
// or none are.
func TestKVCrashRecoveryBatch(t *testing.T) {
	dataDev, logDev := storage.NewMemDevice(), storage.NewMemDevice()
	db := openCrashDB(t, dataDev, logDev)
	st := &crashState{live: map[string]string{}, deleted: map[string]bool{}}
	for b := 0; b < 20; b++ {
		keys := make([]string, 10)
		vals := make([][]byte, 10)
		for i := range keys {
			keys[i] = fmt.Sprintf("batch-%02d-%02d", b, i)
			vals[i] = []byte(fmt.Sprintf("v-%d-%d", b, i))
		}
		if err := db.PutBatch(keys, vals); err == nil {
			for i := range keys {
				st.live[keys[i]] = string(vals[i])
			}
		}
	}
	abandon(db)
	verifyRecovered(t, dataDev, logDev, st)
}
