package sbdms

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/storage"
)

// runVersionChainWorkload builds deep version chains: a small key
// space is overwritten round after round with interleaved deletes and
// re-inserts, so a crash lands with most chains several versions deep
// and the newest heads freshly stamped. It records, like
// runKVCrashWorkload, only operations that reported success — plus
// the commit clock observed after the last success, which is the
// durable stamp recovery must restore the clock above (the workload
// is single-threaded, so Clock() right after a successful commit IS
// that commit's timestamp).
func runVersionChainWorkload(db *DB, rounds, keySpace int, fault *storage.FaultDevice) (*crashState, uint64) {
	st := &crashState{live: map[string]string{}, deleted: map[string]bool{}}
	var lastClock uint64
	afterCrash := 0
	for r := 0; r < rounds && afterCrash <= 20; r++ {
		for i := 0; i < keySpace; i++ {
			if fault != nil && fault.Crashed() {
				afterCrash++
				if afterCrash > 20 {
					break
				}
			}
			k := fmt.Sprintf("chain-%03d", i)
			if r%4 == 3 && i%5 == 0 {
				if err := db.DeleteKey(k); err == nil {
					delete(st.live, k)
					st.deleted[k] = true
					lastClock = db.kv.oracle.Clock()
				}
				continue
			}
			v := fmt.Sprintf("v-%d-%d", r, i)
			if err := db.Put(k, []byte(v)); err == nil {
				st.live[k] = v
				delete(st.deleted, k)
				lastClock = db.kv.oracle.Clock()
			}
		}
	}
	return st, lastClock
}

// verifyRecoveredMVCC reopens the store and asserts, beyond
// verifyRecovered's checks, that the rebuilt version chains resolve
// identically on the snapshot read path (GetSnapshot walks the chain
// by begin timestamp, so a mis-relinked or mis-stamped chain diverges
// from the locking path here) and that the commit clock resumed above
// the last durable pre-crash stamp — a post-recovery commit must
// never reuse a timestamp that already stamps recovered versions.
func verifyRecoveredMVCC(t *testing.T, dataDev, logDev storage.Device, st *crashState, clockBefore uint64) {
	t.Helper()
	db, err := Open(Options{
		Device:       dataDev,
		LogDevice:    logDev,
		Granularity:  Monolithic,
		BufferFrames: 64,
	})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer db.Close(context.Background())
	if got := db.kv.oracle.Clock(); got < clockBefore {
		t.Fatalf("commit clock after recovery = %d, want >= %d", got, clockBefore)
	}
	for k, want := range st.live {
		got, err := db.Get(k)
		if err != nil {
			t.Fatalf("committed key %q lost after recovery: %v", k, err)
		}
		if string(got) != want {
			t.Fatalf("committed key %q = %q, want %q", k, got, want)
		}
		sgot, err := db.GetSnapshot(k)
		if err != nil {
			t.Fatalf("snapshot read of committed key %q after recovery: %v", k, err)
		}
		if string(sgot) != want {
			t.Fatalf("snapshot read of %q = %q, want %q (chain head mis-stamped)", k, sgot, want)
		}
	}
	for k := range st.deleted {
		if _, err := db.GetSnapshot(k); err == nil {
			t.Fatalf("committed delete of %q visible to a snapshot after recovery", k)
		} else if !isNotFound(err) {
			t.Fatalf("GetSnapshot(%q) after committed delete: %v", k, err)
		}
	}
	if got, want := db.KVLen(), uint64(len(st.live)); got != want {
		t.Fatalf("KVLen after recovery = %d, want %d", got, want)
	}
	// A fresh commit must stamp strictly above every recovered version.
	if err := db.Put("clock-probe", []byte("post-crash")); err != nil {
		t.Fatalf("put after recovery: %v", err)
	}
	if got := db.kv.oracle.Clock(); got <= clockBefore {
		t.Fatalf("post-recovery commit stamped ts %d, want > %d", got, clockBefore)
	}
}

// TestKVCrashRecoveryVersionChains is the MVCC kill -9 scenario: an
// update-heavy workload leaves every key a multi-version chain, the
// engine dies without a flush, and recovery must rebuild the chains
// (redo re-inserts versions and re-links prev pointers at their exact
// RIDs) and the commit-timestamp clock.
func TestKVCrashRecoveryVersionChains(t *testing.T) {
	dataDev, logDev := storage.NewMemDevice(), storage.NewMemDevice()
	db := openCrashDB(t, dataDev, logDev)
	st, clock := runVersionChainWorkload(db, 12, 40, nil)
	if len(st.live) == 0 || clock == 0 {
		t.Fatal("workload committed nothing")
	}
	abandon(db)
	verifyRecoveredMVCC(t, dataDev, logDev, st, clock)
}

// TestKVCrashRecoveryVersionChainsTornWrite crashes the data device
// mid-write-back — tearing the crashing page in half — under the same
// chain-building workload: the torn page fails its checksum and the
// chains crossing it must be rebuilt from logged images.
func TestKVCrashRecoveryVersionChainsTornWrite(t *testing.T) {
	for _, crashAfter := range []int{2, 13, 45} {
		t.Run(fmt.Sprintf("crashAfter=%d", crashAfter), func(t *testing.T) {
			inner, logDev := storage.NewMemDevice(), storage.NewMemDevice()
			fault := storage.NewFaultDevice(inner)
			db := openCrashDB(t, fault, logDev)
			fault.CrashAfterWrites(crashAfter, storage.PageSize/2)
			st, clock := runVersionChainWorkload(db, 12, 40, fault)
			abandon(db)
			verifyRecoveredMVCC(t, inner, logDev, st, clock)
		})
	}
}

// TestCrashMidVacuum kills the data device while a vacuum pass is
// truncating chains and removing dead keys, at several crash points
// (clean dropped write and torn write). Whatever the vacuum
// transaction's fate — committed, rolled back by recovery, or never
// started — the recovered store must hold every committed value
// (no live version lost), and a full vacuum over the recovered store
// must drain the heap to exactly one slot per live key (no dead slot
// leaked by the interrupted pass).
func TestCrashMidVacuum(t *testing.T) {
	for _, tc := range []struct {
		crashAfter int
		tear       int
	}{
		{0, 0}, {3, 0}, {17, 0}, {5, storage.PageSize / 2},
	} {
		t.Run(fmt.Sprintf("crashAfter=%d,tear=%d", tc.crashAfter, tc.tear), func(t *testing.T) {
			inner, logDev := storage.NewMemDevice(), storage.NewMemDevice()
			fault := storage.NewFaultDevice(inner)
			db := openCrashDB(t, fault, logDev)

			// Four versions per key, then every third key deleted: the
			// vacuum has both chains to truncate and whole keys to remove.
			const keys = 60
			st := &crashState{live: map[string]string{}, deleted: map[string]bool{}}
			for v := 0; v < 4; v++ {
				for i := 0; i < keys; i++ {
					k := fmt.Sprintf("vac-%03d", i)
					val := fmt.Sprintf("v%d-%03d", v, i)
					if err := db.Put(k, []byte(val)); err != nil {
						t.Fatal(err)
					}
					st.live[k] = val
				}
			}
			for i := 0; i < keys; i += 3 {
				k := fmt.Sprintf("vac-%03d", i)
				if err := db.DeleteKey(k); err != nil {
					t.Fatal(err)
				}
				delete(st.live, k)
				st.deleted[k] = true
			}

			fault.CrashAfterWrites(tc.crashAfter, tc.tear)
			_, _ = db.Vacuum() // the device dies under it; any error is legal
			abandon(db)

			db2, err := Open(Options{
				Device:       inner,
				LogDevice:    logDev,
				Granularity:  Monolithic,
				BufferFrames: 64,
			})
			if err != nil {
				t.Fatalf("reopen after mid-vacuum crash: %v", err)
			}
			defer db2.Close(context.Background())
			for k, want := range st.live {
				got, err := db2.Get(k)
				if err != nil {
					t.Fatalf("live key %q lost across mid-vacuum crash: %v", k, err)
				}
				if string(got) != want {
					t.Fatalf("live key %q = %q, want %q", k, got, want)
				}
			}
			for k := range st.deleted {
				if _, err := db2.Get(k); err == nil {
					t.Fatalf("deleted key %q resurrected by mid-vacuum crash", k)
				} else if !isNotFound(err) {
					t.Fatalf("Get(%q): %v", k, err)
				}
			}
			if got, want := db2.KVLen(), uint64(len(st.live)); got != want {
				t.Fatalf("KVLen after recovery = %d, want %d", got, want)
			}
			// A full pass over the recovered store must reach the fully
			// reclaimed fixpoint: one heap slot per live key. Fewer would
			// mean a live version was lost; more, a leaked dead slot.
			vs, err := db2.Vacuum()
			if err != nil {
				t.Fatalf("vacuum after recovery: %v", err)
			}
			if vs.SkippedBusy != 0 || vs.SkippedUncommitted != 0 {
				t.Fatalf("post-recovery vacuum skipped work: %+v", vs)
			}
			n, err := db2.kv.heap.Count()
			if err != nil {
				t.Fatal(err)
			}
			if n != len(st.live) {
				t.Fatalf("heap holds %d slots after recovery+vacuum, want %d (lost live version or leaked dead slot)", n, len(st.live))
			}
		})
	}
}
