package sbdms

import (
	"context"
	"encoding/gob"
	"fmt"

	"repro/internal/core"
	"repro/internal/sql"
	"repro/internal/storage"
)

// Interface names of the SBDMS layers (Figure 2). Multiple providers
// may register under each name; selection and adaptation operate on
// these.
const (
	IfaceDisk   = "sbdms.storage.Disk"
	IfaceRecord = "sbdms.access.Record"
	IfaceKV     = "sbdms.access.KV"
	IfaceQuery  = "sbdms.data.Query"
)

// Wire types of the storage service. Exported so bindings can move
// them between processes.
type (
	// PageReadRequest asks for the content of a page.
	PageReadRequest struct{ Page storage.PageID }
	// PageWriteRequest carries a full page image.
	PageWriteRequest struct {
		Page storage.PageID
		Data []byte
	}
	// KVPutRequest stores a key/value pair.
	KVPutRequest struct {
		Key string
		Val []byte
	}
	// KVBatchRequest stores several key/value pairs atomically.
	KVBatchRequest struct {
		Keys []string
		Vals [][]byte
	}
	// KVImportRequest bulk-loads key/value pairs through the sorted
	// bottom-up build fast path (per-key fallback on a non-empty store).
	KVImportRequest struct {
		Keys []string
		Vals [][]byte
	}
	// KVScanRequest asks for up to N keys from Key onward.
	KVScanRequest struct {
		Key string
		N   int
	}
	// RecordPutRequest stores an encoded record.
	RecordPutRequest struct{ Rec []byte }
)

func init() {
	gob.Register(PageReadRequest{})
	gob.Register(PageWriteRequest{})
	gob.Register(KVPutRequest{})
	gob.Register(KVBatchRequest{})
	gob.Register(KVImportRequest{})
	gob.Register(KVScanRequest{})
	gob.Register(RecordPutRequest{})
	gob.Register(storage.PageID(0))
	gob.Register(uint64(0))
}

// --- Disk service: byte/page-level Storage Service --------------------

// DiskContract describes the disk storage service interface.
func DiskContract() *core.Contract {
	return &core.Contract{
		Interface: IfaceDisk,
		Operations: []core.OpSpec{
			{Name: "allocate", In: "nil", Out: "storage.PageID", Semantic: "storage.allocate"},
			{Name: "deallocate", In: "storage.PageID", Out: "bool", Semantic: "storage.deallocate"},
			{Name: "readPage", In: "sbdms.PageReadRequest", Out: "[]byte", Semantic: "storage.readPage"},
			{Name: "writePage", In: "sbdms.PageWriteRequest", Out: "bool", Semantic: "storage.writePage"},
			{Name: "numPages", In: "nil", Out: "uint64", Semantic: "storage.numPages"},
			{Name: "sync", In: "nil", Out: "bool", Semantic: "storage.sync"},
		},
		Description: core.Description{Summary: "page-granular non-volatile storage"},
		Quality:     core.Quality{LatencyClass: "disk", Availability: 0.999, CostFactor: 1},
	}
}

// NewDiskService exposes a storage.PageStore as a Disk storage service.
func NewDiskService(name string, store storage.PageStore) *core.BaseService {
	s := core.NewService(name, DiskContract())
	s.Handle("allocate", func(ctx context.Context, req any) (any, error) {
		return store.Allocate()
	})
	s.Handle("deallocate", func(ctx context.Context, req any) (any, error) {
		id, ok := req.(storage.PageID)
		if !ok {
			return nil, &core.RequestError{Op: "deallocate", Want: "storage.PageID", Got: core.TypeName(req)}
		}
		return true, store.Deallocate(id)
	})
	s.Handle("readPage", func(ctx context.Context, req any) (any, error) {
		r, ok := req.(PageReadRequest)
		if !ok {
			return nil, &core.RequestError{Op: "readPage", Want: "sbdms.PageReadRequest", Got: core.TypeName(req)}
		}
		buf := make([]byte, storage.PageSize)
		if err := store.ReadPage(r.Page, buf); err != nil {
			return nil, err
		}
		return buf, nil
	})
	s.Handle("writePage", func(ctx context.Context, req any) (any, error) {
		r, ok := req.(PageWriteRequest)
		if !ok {
			return nil, &core.RequestError{Op: "writePage", Want: "sbdms.PageWriteRequest", Got: core.TypeName(req)}
		}
		return true, store.WritePage(r.Page, r.Data)
	})
	s.Handle("numPages", func(ctx context.Context, req any) (any, error) {
		return store.NumPages(), nil
	})
	s.Handle("sync", func(ctx context.Context, req any) (any, error) {
		return true, store.Sync()
	})
	return core.WithPing(s)
}

// PageStoreClient adapts any Invoker providing the Disk interface back
// into a storage.PageStore, so buffer managers and file managers can be
// stacked over a *service* instead of a local disk — the composition
// mechanism behind the layered and fine granularity profiles.
type PageStoreClient struct {
	inv core.Invoker
}

// NewPageStoreClient wraps an invoker (usually a late-bound *core.Ref
// to IfaceDisk).
func NewPageStoreClient(inv core.Invoker) *PageStoreClient {
	return &PageStoreClient{inv: inv}
}

var bg = context.Background()

// Allocate implements storage.PageStore.
func (c *PageStoreClient) Allocate() (storage.PageID, error) {
	out, err := c.inv.Invoke(bg, "allocate", nil)
	if err != nil {
		return storage.InvalidPageID, err
	}
	id, ok := out.(storage.PageID)
	if !ok {
		return storage.InvalidPageID, fmt.Errorf("sbdms: allocate returned %T", out)
	}
	return id, nil
}

// Deallocate implements storage.PageStore.
func (c *PageStoreClient) Deallocate(id storage.PageID) error {
	_, err := c.inv.Invoke(bg, "deallocate", id)
	return err
}

// ReadPage implements storage.PageStore.
func (c *PageStoreClient) ReadPage(id storage.PageID, buf []byte) error {
	out, err := c.inv.Invoke(bg, "readPage", PageReadRequest{Page: id})
	if err != nil {
		return err
	}
	b, ok := out.([]byte)
	if !ok || len(b) != storage.PageSize {
		return fmt.Errorf("sbdms: readPage returned %T (%d bytes)", out, len(b))
	}
	copy(buf, b)
	return nil
}

// WritePage implements storage.PageStore.
func (c *PageStoreClient) WritePage(id storage.PageID, data []byte) error {
	_, err := c.inv.Invoke(bg, "writePage", PageWriteRequest{Page: id, Data: data})
	return err
}

// NumPages implements storage.PageStore.
func (c *PageStoreClient) NumPages() uint64 {
	out, err := c.inv.Invoke(bg, "numPages", nil)
	if err != nil {
		return 0
	}
	n, _ := out.(uint64)
	return n
}

// Sync implements storage.PageStore.
func (c *PageStoreClient) Sync() error {
	_, err := c.inv.Invoke(bg, "sync", nil)
	return err
}

// --- KV service: Access Service over records and index ----------------

// KVContract describes the key-value access service interface.
func KVContract() *core.Contract {
	return &core.Contract{
		Interface: IfaceKV,
		Operations: []core.OpSpec{
			{Name: "get", In: "string", Out: "[]byte", Semantic: "kv.get"},
			{Name: "put", In: "sbdms.KVPutRequest", Out: "bool", Semantic: "kv.put"},
			{Name: "putBatch", In: "sbdms.KVBatchRequest", Out: "bool", Semantic: "kv.putBatch"},
			// Import is the bulk-ingest path: the batch is sorted and
			// loaded as one transaction at one commit timestamp, through
			// the bottom-up tree build when the store is empty.
			{Name: "import", In: "sbdms.KVImportRequest", Out: "bool", Semantic: "kv.import"},
			{Name: "delete", In: "string", Out: "bool", Semantic: "kv.delete"},
			// Scan honours the engine's configured ScanIsolation: at
			// serializable the result is an atomic (phantom-free)
			// snapshot; at read-committed it is a best-effort view.
			{Name: "scan", In: "sbdms.KVScanRequest", Out: "[]string", Semantic: "kv.scan"},
			// The snapshot variants read one consistent MVCC cut without
			// taking key locks, at any configured ScanIsolation.
			{Name: "getSnapshot", In: "string", Out: "[]byte", Semantic: "kv.getSnapshot"},
			{Name: "scanSnapshot", In: "sbdms.KVScanRequest", Out: "[]string", Semantic: "kv.scanSnapshot"},
			{Name: "len", In: "nil", Out: "uint64", Semantic: "kv.len"},
		},
		Description: core.Description{Summary: "record-level key-value access over heap and B+tree"},
		Quality:     core.Quality{LatencyClass: "disk", Availability: 0.999, CostFactor: 1},
	}
}

// kvBackend is what a KV service delegates to: the native core or a
// further service hop (layered/fine profiles). Every operation takes a
// context: lock waits inside the engine (per-key 2PL, and at
// serializable isolation the next-key locks scans and writers take)
// observe its cancellation, so a caller can bound how long it is
// willing to block behind a conflicting transaction.
type kvBackend interface {
	Put(ctx context.Context, k string, v []byte) error
	PutBatch(ctx context.Context, keys []string, vals [][]byte) error
	Import(ctx context.Context, keys []string, vals [][]byte) error
	Get(ctx context.Context, k string) ([]byte, error)
	Delete(ctx context.Context, k string) error
	Scan(ctx context.Context, from string, n int) ([]string, error)
	GetSnapshot(ctx context.Context, k string) ([]byte, error)
	ScanKeysSnapshot(ctx context.Context, from string, n int) ([]string, error)
	Len() uint64
}

// NewKVService exposes a KV backend as an Access service.
func NewKVService(name string, backend kvBackend) *core.BaseService {
	s := core.NewService(name, KVContract())
	s.Handle("get", func(ctx context.Context, req any) (any, error) {
		k, ok := req.(string)
		if !ok {
			return nil, &core.RequestError{Op: "get", Want: "string", Got: core.TypeName(req)}
		}
		return backend.Get(ctx, k)
	})
	s.Handle("put", func(ctx context.Context, req any) (any, error) {
		r, ok := req.(KVPutRequest)
		if !ok {
			return nil, &core.RequestError{Op: "put", Want: "sbdms.KVPutRequest", Got: core.TypeName(req)}
		}
		return true, backend.Put(ctx, r.Key, r.Val)
	})
	s.Handle("putBatch", func(ctx context.Context, req any) (any, error) {
		r, ok := req.(KVBatchRequest)
		if !ok {
			return nil, &core.RequestError{Op: "putBatch", Want: "sbdms.KVBatchRequest", Got: core.TypeName(req)}
		}
		return true, backend.PutBatch(ctx, r.Keys, r.Vals)
	})
	s.Handle("import", func(ctx context.Context, req any) (any, error) {
		r, ok := req.(KVImportRequest)
		if !ok {
			return nil, &core.RequestError{Op: "import", Want: "sbdms.KVImportRequest", Got: core.TypeName(req)}
		}
		return true, backend.Import(ctx, r.Keys, r.Vals)
	})
	s.Handle("delete", func(ctx context.Context, req any) (any, error) {
		k, ok := req.(string)
		if !ok {
			return nil, &core.RequestError{Op: "delete", Want: "string", Got: core.TypeName(req)}
		}
		return true, backend.Delete(ctx, k)
	})
	s.Handle("scan", func(ctx context.Context, req any) (any, error) {
		r, ok := req.(KVScanRequest)
		if !ok {
			return nil, &core.RequestError{Op: "scan", Want: "sbdms.KVScanRequest", Got: core.TypeName(req)}
		}
		return backend.Scan(ctx, r.Key, r.N)
	})
	s.Handle("getSnapshot", func(ctx context.Context, req any) (any, error) {
		k, ok := req.(string)
		if !ok {
			return nil, &core.RequestError{Op: "getSnapshot", Want: "string", Got: core.TypeName(req)}
		}
		return backend.GetSnapshot(ctx, k)
	})
	s.Handle("scanSnapshot", func(ctx context.Context, req any) (any, error) {
		r, ok := req.(KVScanRequest)
		if !ok {
			return nil, &core.RequestError{Op: "scanSnapshot", Want: "sbdms.KVScanRequest", Got: core.TypeName(req)}
		}
		return backend.ScanKeysSnapshot(ctx, r.Key, r.N)
	})
	s.Handle("len", func(ctx context.Context, req any) (any, error) {
		return backend.Len(), nil
	})
	return core.WithPing(s)
}

// KVClient adapts an Invoker providing the KV interface back into a
// kvBackend, enabling service-over-service stacking.
type KVClient struct{ inv core.Invoker }

// NewKVClient wraps an invoker (usually a *core.Ref to IfaceKV or
// IfaceRecord).
func NewKVClient(inv core.Invoker) *KVClient { return &KVClient{inv: inv} }

// Put implements kvBackend.
func (c *KVClient) Put(ctx context.Context, k string, v []byte) error {
	_, err := c.inv.Invoke(ctx, "put", KVPutRequest{Key: k, Val: v})
	return err
}

// PutBatch implements kvBackend.
func (c *KVClient) PutBatch(ctx context.Context, keys []string, vals [][]byte) error {
	_, err := c.inv.Invoke(ctx, "putBatch", KVBatchRequest{Keys: keys, Vals: vals})
	return err
}

// Import implements kvBackend.
func (c *KVClient) Import(ctx context.Context, keys []string, vals [][]byte) error {
	_, err := c.inv.Invoke(ctx, "import", KVImportRequest{Keys: keys, Vals: vals})
	return err
}

// Get implements kvBackend.
func (c *KVClient) Get(ctx context.Context, k string) ([]byte, error) {
	out, err := c.inv.Invoke(ctx, "get", k)
	if err != nil {
		return nil, err
	}
	b, ok := out.([]byte)
	if !ok {
		return nil, fmt.Errorf("sbdms: get returned %T", out)
	}
	return b, nil
}

// Delete implements kvBackend.
func (c *KVClient) Delete(ctx context.Context, k string) error {
	_, err := c.inv.Invoke(ctx, "delete", k)
	return err
}

// Scan implements kvBackend.
func (c *KVClient) Scan(ctx context.Context, from string, n int) ([]string, error) {
	out, err := c.inv.Invoke(ctx, "scan", KVScanRequest{Key: from, N: n})
	if err != nil {
		return nil, err
	}
	ks, ok := out.([]string)
	if !ok {
		return nil, fmt.Errorf("sbdms: scan returned %T", out)
	}
	return ks, nil
}

// GetSnapshot implements kvBackend.
func (c *KVClient) GetSnapshot(ctx context.Context, k string) ([]byte, error) {
	out, err := c.inv.Invoke(ctx, "getSnapshot", k)
	if err != nil {
		return nil, err
	}
	b, ok := out.([]byte)
	if !ok {
		return nil, fmt.Errorf("sbdms: getSnapshot returned %T", out)
	}
	return b, nil
}

// ScanKeysSnapshot implements kvBackend.
func (c *KVClient) ScanKeysSnapshot(ctx context.Context, from string, n int) ([]string, error) {
	out, err := c.inv.Invoke(ctx, "scanSnapshot", KVScanRequest{Key: from, N: n})
	if err != nil {
		return nil, err
	}
	ks, ok := out.([]string)
	if !ok {
		return nil, fmt.Errorf("sbdms: scanSnapshot returned %T", out)
	}
	return ks, nil
}

// Len implements kvBackend.
func (c *KVClient) Len() uint64 {
	out, err := c.inv.Invoke(bg, "len", nil)
	if err != nil {
		return 0
	}
	n, _ := out.(uint64)
	return n
}

// RecordContract is the record-level access interface (the middle hop
// of the layered and fine profiles). It is operationally identical to
// the KV contract but registered under its own interface name so that
// the two layers are distinct architectural services.
func RecordContract() *core.Contract {
	c := KVContract()
	c.Interface = IfaceRecord
	c.Description.Summary = "record manager over heap file and index"
	return c
}

// NewRecordService exposes the native KV core under the Record
// interface.
func NewRecordService(name string, backend kvBackend) *core.BaseService {
	s := core.NewService(name, RecordContract())
	inner := NewKVService(name+"-inner", backend)
	// Delegate every op to the same handlers as a KV service.
	for _, op := range []string{"get", "put", "putBatch", "import", "delete", "scan", "getSnapshot", "scanSnapshot", "len"} {
		op := op
		s.Handle(op, func(ctx context.Context, req any) (any, error) {
			return inner.Invoke(ctx, op, req)
		})
	}
	s.OnStart(func(ctx context.Context) error { return inner.Start(ctx) })
	s.OnStop(func(ctx context.Context) error { return inner.Stop(ctx) })
	return core.WithPing(s)
}

// --- Query service: Data Service --------------------------------------

// QueryContract describes the SQL Data Service interface.
func QueryContract() *core.Contract {
	return &core.Contract{
		Interface: IfaceQuery,
		Operations: []core.OpSpec{
			{Name: "execute", In: "string", Out: "sql.Result", Semantic: "query.execute"},
		},
		Description: core.Description{Summary: "SQL query and DML execution over logical tables and views"},
		Quality:     core.Quality{LatencyClass: "disk", Availability: 0.999, CostFactor: 1},
	}
}

// NewQueryService exposes a SQL engine as the Data Service.
func NewQueryService(name string, engine *sql.Engine) *core.BaseService {
	s := core.NewService(name, QueryContract())
	s.Handle("execute", func(ctx context.Context, req any) (any, error) {
		q, ok := req.(string)
		if !ok {
			return nil, &core.RequestError{Op: "execute", Want: "string", Got: core.TypeName(req)}
		}
		return engine.Execute(ctx, q)
	})
	return core.WithPing(s)
}
