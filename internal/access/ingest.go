package access

import (
	"errors"
	"fmt"

	"repro/internal/storage"
)

// MaxRecordLen is the largest record a slotted page (and therefore
// AppendPacked) accepts. Exported so bulk-ingest callers can validate a
// batch before paying any page writes.
const MaxRecordLen = maxRecordLen

// AppendPacked writes recs into freshly allocated heap pages, packing
// each page as full as it goes and logging ONE WAL record per filled
// page instead of one per record. The pages are file-less: they are
// allocated straight from the pool and never linked into a heap file's
// page chain, so concurrent Inserts probing the chain tail or the
// free-space hints can never interleave records onto them — which is
// what makes the single full-page image (and its physical before-image
// undo) sound. RID-based access (Get, StampBytes, vacuum's purge) works
// on them exactly as on chained pages.
//
// Every page is logged under tx with nil undo: the before image of a
// fresh page is zeros and its LSN 0 predates every full-page-write
// fence, so the record is a full page image — redo reconstructs the
// page from nothing and a crashed (loser) import rolls back physically.
// Callers MUST therefore log nothing with logical undo under tx and
// must hold off publishing the RIDs (index install) until the batch is
// complete.
//
// pageDone, when non-nil, runs after each page is sealed with the page
// id and the number of records it took — the bulk loader's cancellation
// and flush-pacing hook. On any error the pages allocated so far are
// returned so the caller can free them after rolling back.
func (h *HeapFile) AppendPacked(tx TxnContext, recs [][]byte, pageDone func(pid storage.PageID, n int) error) ([]RID, []storage.PageID, error) {
	for _, rec := range recs {
		if len(rec) > maxRecordLen {
			return nil, nil, fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(rec))
		}
	}
	rids := make([]RID, 0, len(recs))
	var pages []storage.PageID
	log := h.getLog()
	i := 0
	for i < len(recs) {
		f, err := h.pool.NewPageLatched(storage.PageTypeHeap)
		if err != nil {
			return nil, pages, err
		}
		pid := f.ID
		pages = append(pages, pid)
		start := i
		err = LogLatchedMutation(log, tx, f, nil, func(p *storage.Page) error {
			sp := InitSlotted(p)
			for i < len(recs) {
				slot, err := sp.Insert(recs[i])
				if errors.Is(err, ErrPageFull) {
					break
				}
				if err != nil {
					return err
				}
				rids = append(rids, RID{Page: pid, Slot: uint16(slot)})
				i++
			}
			return nil
		})
		if uerr := h.pool.UnpinLatched(pid, true, err == nil); uerr != nil && err == nil {
			err = uerr
		}
		if err != nil {
			return nil, pages, err
		}
		if i == start {
			// Cannot happen after the size pre-check; guard the loop anyway.
			return nil, pages, fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(recs[i]))
		}
		if pageDone != nil {
			if err := pageDone(pid, i-start); err != nil {
				return nil, pages, err
			}
		}
	}
	return rids, pages, nil
}
