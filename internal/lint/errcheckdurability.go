package lint

import (
	"go/ast"
	"go/types"
)

// ErrcheckDurabilityAnalyzer flags discarded results of the calls whose
// outcome carries a durability or locking decision: WAL appends and
// flushes, commit/abort, checkpointing, lock acquisition, and buffer
// flushes. Ignoring any of these silently trades away the guarantee the
// call exists to provide — an unchecked Flush error means the commit it
// was ordering is not actually durable, and an unchecked TryAcquire
// result means code proceeds as if it held a lock it was refused.
var ErrcheckDurabilityAnalyzer = &Analyzer{
	Name: "errcheckdurability",
	Doc: "results of WAL append/flush, Commit/CommitLazy/Abort, Acquire/TryAcquire, " +
		"buffer flushes, and replication append/apply/ship must not be discarded",
	Run: runErrcheckDurability,
}

// durabilityMethods lists the (type, methods) pairs whose results are
// load-bearing. (*LockManager).Release is deliberately absent: the
// instant-lock paths drop its error on purpose after a TryAcquire race.
var durabilityMethods = []struct {
	pkg, typ string
	methods  []string
}{
	{walPath, "Log", []string{"Append", "AppendPageUpdate", "Flush", "FlushNoWindow", "Checkpoint"}},
	{txnPath, "Manager", []string{"Commit", "CommitLazy", "CommitAppend", "FinishCommit", "Abort", "Checkpoint", "CheckpointAsync", "StopCheckpointFlusher"}},
	{txnPath, "LockManager", []string{"Acquire", "TryAcquire"}},
	{txnPath, "Txn", []string{"Lock"}},
	{bufferPath, "Manager", []string{"FlushAll", "FlushPages"}},
	// Bulk-ingest entry points: a discarded AppendPacked/BulkBuild error
	// leaks unpublished pages, a discarded InstallRoot error publishes
	// nothing while the caller thinks it committed, and a discarded
	// FreePages error silently leaks the detached old root.
	{accessPath, "HeapFile", []string{"AppendPacked"}},
	{indexPath, "BTree", []string{"BulkBuild", "InstallRoot", "FreePages"}},
	// Replication ack/apply entry points: these results ARE the
	// durability story behind an async-commit ack. A discarded
	// FollowerWAL.Append/Sync error acks a record the follower never
	// persisted; a discarded Apply/ApplyBatch error advances a frontier
	// over effects that were not applied; a discarded Ship error hides
	// the ErrSnapshotNeeded signal that triggers a re-bootstrap; a
	// discarded ReplicaReader.Flush error promotes over an incomplete
	// device image.
	{replicatePath, "FollowerWAL", []string{"Append", "Sync"}},
	{replicatePath, "Replica", []string{"Apply"}},
	{replicatePath, "Shipper", []string{"Ship"}},
	{rootPath, "ReplicaReader", []string{"ApplyBatch", "Flush"}},
}

// durabilityCall resolves call to one of the guarded methods, returning
// its receiver type and name for the diagnostic.
func durabilityCall(info *types.Info, call *ast.CallExpr) (typ, method string, ok bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", "", false
	}
	for _, g := range durabilityMethods {
		for _, m := range g.methods {
			if isMethodOn(fn, g.pkg, g.typ, m) {
				return g.typ, m, true
			}
		}
	}
	return "", "", false
}

func runErrcheckDurability(pass *Pass) error {
	info := pass.TypesInfo

	report := func(call *ast.CallExpr, typ, method string) {
		pass.Reportf(call.Pos(),
			"result of (%s).%s discarded: durability and locking outcomes must be checked", typ, method)
	}

	// checkStmt flags bare-call and blank-assignment discards; the
	// result positions that matter are the error and bool results.
	checkExprStmt := func(call *ast.CallExpr) {
		if typ, method, ok := durabilityCall(info, call); ok {
			report(call, typ, method)
		}
	}
	checkAssign := func(as *ast.AssignStmt) {
		if len(as.Rhs) != 1 {
			return
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		typ, method, ok := durabilityCall(info, call)
		if !ok {
			return
		}
		fn := calleeFunc(info, call)
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil {
			return
		}
		// All error/bool results assigned to blank → the outcome is
		// discarded even if other results (an LSN, a record) are kept.
		discarded := false
		checked := false
		for i := 0; i < sig.Results().Len() && i < len(as.Lhs); i++ {
			rt := sig.Results().At(i).Type()
			if !isErrorType(rt) && rt != types.Typ[types.Bool] && !isBasicBool(rt) {
				continue
			}
			if id, isIdent := as.Lhs[i].(*ast.Ident); isIdent && id.Name == "_" {
				discarded = true
			} else {
				checked = true
			}
		}
		if discarded && !checked {
			report(call, typ, method)
		}
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					checkExprStmt(call)
				}
			case *ast.DeferStmt:
				checkExprStmt(s.Call)
			case *ast.GoStmt:
				checkExprStmt(s.Call)
			case *ast.AssignStmt:
				checkAssign(s)
			}
			return true
		})
	}
	return nil
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func isBasicBool(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}
