// Package sbdms is the public facade of the Service-Based Data
// Management System: it composes the storage, access, data and
// extension services of the paper's Figure 2 into a running database,
// at a selectable service granularity (monolithic, coarse, layered,
// fine) and over a selectable binding (in-process or TCP) — the exact
// experiment matrix the paper proposes as future work ("testing with
// different levels of service granularity will give us insights into
// the right tradeoff between service granularity and system
// performance", Section 5).
package sbdms

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/access"
	"repro/internal/buffer"
	"repro/internal/index"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/vacuum"
	"repro/internal/wal"
)

// KV errors.
var (
	// ErrKeyNotFound is returned by Get/Delete on absent keys.
	ErrKeyNotFound = errors.New("sbdms: key not found")
	// ErrBatchMismatch is returned by PutBatch when keys and values
	// have different lengths.
	ErrBatchMismatch = errors.New("sbdms: batch keys/values length mismatch")
	// ErrConflict is returned when an operation was chosen as a
	// deadlock victim and rolled back; the operation had no effect and
	// is safe to retry.
	ErrConflict = errors.New("sbdms: transaction conflict (deadlock victim, retry)")
)

// IsConflict reports whether err is a retryable transaction conflict.
// It matches by error string as well, because errors that crossed a
// service binding (gob) arrive flattened.
func IsConflict(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, ErrConflict) || strings.Contains(err.Error(), "sbdms: transaction conflict")
}

// ScanIsolation selects the transactional strength of range scans
// (Options.ScanIsolation).
type ScanIsolation string

// Scan isolation levels.
const (
	// ReadCommitted scans take no key locks: they read each leaf
	// atomically under its shared latch but may observe keys of
	// concurrent not-yet-committed transactions and torn views of
	// atomic batches (phantoms). The default, and the PR-4 behaviour.
	ReadCommitted ScanIsolation = "read-committed"
	// Serializable scans use ARIES/IM-style next-key locking: the scan
	// S-locks every returned key plus the key just past the range end
	// (or an end-of-index sentinel), holding them until the scan (or
	// the owning transaction) completes, while writers take next-key
	// gap locks before inserting into or deleting from a range. Every
	// scan is then equivalent to an atomic snapshot: phantoms and torn
	// batch views are impossible, at the cost of scans blocking
	// conflicting writers (and vice versa) and of retryable
	// ErrConflict deadlock aborts.
	Serializable ScanIsolation = "serializable"
)

// normalizeIsolation maps the zero value to the default and rejects
// unknown levels.
func normalizeIsolation(iso ScanIsolation) (ScanIsolation, error) {
	switch iso {
	case "":
		return ReadCommitted, nil
	case ReadCommitted, Serializable:
		return iso, nil
	default:
		return "", fmt.Errorf("sbdms: unknown scan isolation %q", iso)
	}
}

// kvCore is the native key-value engine: a heap file for values plus a
// unique B+tree index on keys. It is the workhorse behind the KV
// service at every granularity; what changes between profiles is how
// many service boundaries a call crosses before reaching it.
//
// Concurrency: there is no engine-wide lock. Callers run in parallel
// and serialise only per KEY, through strict two-phase locks from the
// shared lock manager (shared for point reads, exclusive for writes,
// held until the transaction's outcome is durable); page-level
// consistency below comes from the B+tree's latch crabbing and the
// heap's page latches. Deadlock victims abort with ErrConflict and can
// simply be retried. Scan isolation is selectable (Options.
// ScanIsolation): at read-committed (the default) scans take no key
// locks — they may observe keys of concurrent not-yet-committed
// transactions (which can still abort), and keys inserted or deleted
// while the scan runs may or may not appear. At serializable, scans
// take next-key locks (S on every returned key plus the successor past
// the range end) and writers take gap locks on the successor of every
// key they insert or delete, so each scan is an atomic snapshot — no
// phantoms, no torn views of atomic batches.
//
// Every mutation runs under a transaction (one per operation, one per
// batch) so the heap, the B+tree and — via the file manager's system
// transactions — the page directory are all WAL-logged: a kill -9 at
// any point recovers to a consistent store with exactly the committed
// operations applied. Heap slots are never removed inline: deletes
// append a tombstone version and vacuum reclaims dead versions later,
// which is what keeps rollbacks of concurrent transactions from
// fighting over reused slots.
type kvCore struct {
	heap  *access.HeapFile
	idx   *index.BTree
	txns  *txn.Manager     // nil = unlogged (WAL disabled)
	locks *txn.LockManager // per-key 2PL; never nil
	ids   func() uint64    // lock-owner ids for non-transactional ops

	// oracle allocates commit timestamps and hands out snapshot read
	// points. Logged mode shares the transaction manager's oracle (so
	// recovery can reseed its clock); unlogged mode runs a private one.
	oracle *txn.Oracle

	serializable bool // next-key locking on scans and writers

	// noDowngrade disables the append gap-lock downgrade: when set, a
	// next-key gap lock an inserter had to await off-latch stays held to
	// commit (the pre-downgrade protocol) instead of being released the
	// moment the new entry is visible in the leaf.
	noDowngrade bool

	// dead counts committed tombstone heads: index entries whose key is
	// logically deleted but whose ghost entry anchors the version chain
	// until vacuum reclaims it. Len subtracts it from the entry count.
	dead      atomic.Int64
	deadStale bool            // persisted dead count untrusted; recount after loser undo
	metaPid   storage.PageID  // the index meta-pointer page (dead count lives at payload[8:16])
	pool      *buffer.Manager // for syncing the dead count on clean close

	poisoned atomic.Bool // fast-path flag for failed != nil
	failedMu sync.Mutex
	failed   error // fatal engine fault; all further operations refused

	// Bulk-ingest fast path (import.go). log is the WAL handle for
	// chunk pacing flushes (nil in unlogged mode); freePages is the
	// file manager's logged free path for abandoned bulk pages.
	log              *wal.Log
	freePages        func([]storage.PageID) error
	importChunkPages int  // pages between cancellation checks/flushes (0 = default)
	importFastOff    bool // Options.DisableImportFastPath
	importFallbacks  atomic.Uint64
}

func newKVCore(fm *storage.FileManager, pool *buffer.Manager, txns *txn.Manager, log *wal.Log, name string, recount bool, iso ScanIsolation) (*kvCore, error) {
	heap, err := access.OpenHeap(name, fm, pool)
	if err != nil {
		return nil, err
	}
	idx, metaPid, persistedDead, err := openKVIndex(fm, pool, txns, log, name+".meta")
	if err != nil {
		return nil, err
	}
	kv := &kvCore{heap: heap, idx: idx, serializable: iso == Serializable, metaPid: metaPid, pool: pool}
	kv.freePages = fm.FreePagesLogged
	idx.SetFreer(fm.FreePagesLogged)
	if txns != nil {
		kv.locks = txns.Locks()
		kv.ids = txns.ReserveID
		kv.oracle = txns.Oracle()
	} else {
		lm := txn.NewLockManager()
		var ctr atomic.Uint64
		kv.locks = lm
		kv.ids = func() uint64 { return ctr.Add(1) }
		kv.oracle = txn.NewOracle()
	}
	kv.deadStale = true
	if log != nil && txns != nil {
		kv.log = log
		heap.SetLog(log)
		idx.SetLog(log)
		heap.SetSystemTxns(txns.SystemHooks())
		// Trees hold every touched page latch across their structure
		// modifications, so their rollback must not re-latch.
		idx.SetSystemTxns(txns.SystemHooksHeldLatches())
		kv.txns = txns
		// Per-operation entry counts are not logged (they would
		// serialise every writer on the metadata page). Trust the
		// persisted count only when the previous shutdown synced it
		// (clean flag, consumed here); otherwise — or when recovery
		// repaired anything — rebuild it from the leaf chain. The dead
		// (tombstone-head) count rides the same gate, except that its
		// rebuild must wait for loser rollback (recountDead, called by
		// the opener) because tombstone-ness of a head is only decided
		// once in-flight deletes are rolled back.
		clean, err := idx.ConsumeCleanFlag()
		if err != nil {
			return nil, err
		}
		if recount || !clean {
			if err := idx.Recount(); err != nil {
				return nil, err
			}
		} else {
			kv.dead.Store(int64(persistedDead))
			kv.deadStale = false
		}
	}
	return kv, nil
}

// Close persists the in-memory index metadata (entry count) and the
// tombstone-head count so a clean reopen needs no recount.
func (kv *kvCore) Close() error {
	if kv.poisoned.Load() {
		return nil
	}
	if err := kv.idx.SyncMeta(); err != nil {
		return err
	}
	return kv.syncDead()
}

// syncDead writes the dead (tombstone-head) count next to the index
// meta pointer. Like the index entry count it is written unlogged and
// trusted only behind the index clean flag.
func (kv *kvCore) syncDead() error {
	if kv.metaPid == storage.InvalidPageID {
		return nil
	}
	return kv.pool.UpdatePage(kv.metaPid, func(p *storage.Page) error {
		binary.LittleEndian.PutUint64(p.Payload()[8:], uint64(kv.dead.Load()))
		return nil
	})
}

// recountDead rebuilds the tombstone-head count from the live index.
// The opener calls it after loser rollback whenever the persisted count
// could not be trusted (unclean shutdown, recovery repairs, unlogged
// mode): only then is every head's tombstone flag settled.
func (kv *kvCore) recountDead() error {
	if !kv.deadStale {
		return nil
	}
	var dead int64
	err := kv.idx.Range(kv.key(""), nil, func(key []byte, rid access.RID) error {
		cell, err := kv.heap.Get(rid)
		if err != nil {
			if errors.Is(err, access.ErrNoSlot) {
				return nil
			}
			return fmt.Errorf("entry %q rid {%d %d}: %w", key, rid.Page, rid.Slot, err)
		}
		meta, _, err := access.DecodeVersion(cell)
		if err != nil {
			return fmt.Errorf("entry %q rid {%d %d}: %w", key, rid.Page, rid.Slot, err)
		}
		if meta.Committed() && meta.Tombstone() {
			dead++
		}
		return nil
	})
	if err != nil {
		return err
	}
	kv.dead.Store(dead)
	kv.deadStale = false
	return nil
}

// openKVIndex opens the KV B+tree, persisting its metadata page id in a
// one-page file so the index survives restarts. The pointer page also
// carries the tombstone-head count at payload[8:16] (synced on clean
// close, trusted only behind the index clean flag).
func openKVIndex(fm *storage.FileManager, pool *buffer.Manager, txns *txn.Manager, log *wal.Log, metaFile string) (*index.BTree, storage.PageID, uint64, error) {
	if fm.Exists(metaFile) {
		pid, err := fm.FirstPage(metaFile)
		if err != nil {
			return nil, 0, 0, err
		}
		f, err := pool.Pin(pid)
		if err != nil {
			return nil, 0, 0, err
		}
		metaID := storage.PageID(binary.LittleEndian.Uint64(f.Page().Payload()))
		dead := binary.LittleEndian.Uint64(f.Page().Payload()[8:])
		if err := pool.Unpin(pid, false); err != nil {
			return nil, 0, 0, err
		}
		idx, err := index.Open(pool, metaID)
		return idx, pid, dead, err
	}
	idx, metaID, err := index.Create(pool, true)
	if err != nil {
		return nil, 0, 0, err
	}
	if err := fm.Create(metaFile); err != nil {
		return nil, 0, 0, err
	}
	pid, err := fm.AppendPage(metaFile, storage.PageTypeRaw)
	if err != nil {
		return nil, 0, 0, err
	}
	// The pointer write must be WAL-logged: the directory entry for
	// metaFile is logged by the file manager's system transaction, so
	// after a crash recovery recreates the file — but a raw store here
	// would leave the page's only meaningful bytes with no redo record,
	// and no later mutation ever logs this page again. A short system
	// transaction gives the write a before/after image of its own.
	write := func(p *storage.Page) error {
		binary.LittleEndian.PutUint64(p.Payload(), uint64(metaID))
		return nil
	}
	if txns != nil && log != nil {
		sys := txns.SystemHooks()
		stx, err := sys.Begin()
		if err != nil {
			return nil, 0, 0, err
		}
		if err := access.MutatePage(pool, log, stx, pid, write); err != nil {
			_ = sys.Abort(stx)
			return nil, 0, 0, err
		}
		if err := sys.Commit(stx); err != nil {
			return nil, 0, 0, err
		}
	} else if err := pool.UpdatePage(pid, write); err != nil {
		return nil, 0, 0, err
	}
	return idx, pid, 0, nil
}

func (kv *kvCore) key(k string) []byte { return access.EncodeKey(access.NewString(k)) }

// kvRes names a key's lock-manager resource.
func kvRes(k string) string { return "kv/" + k }

// kvEOFRes is the end-of-index sentinel resource: serializable scans
// that run off the right edge of the index S-lock it, and inserts of a
// key with no successor X-lock it, so "append past everything" still
// conflicts with "scanned to the end". The "\x00" keeps it disjoint
// from every kvRes name ("kv/...").
const kvEOFRes = "kv\x00eof"

// stringKeyTag is the type byte access.EncodeKey prefixes string keys
// with; decodeKeyBytes uses it to recover the user key from an index
// entry without a heap read.
var stringKeyTag = access.EncodeKey(access.NewString(""))[0]

// decodeKeyBytes recovers the user key string from its order-preserving
// index encoding.
func decodeKeyBytes(enc []byte) (string, error) {
	if len(enc) < 1 || enc[0] != stringKeyTag {
		return "", fmt.Errorf("%w: index key with tag %v", errBadKVRecord, enc)
	}
	return string(enc[1:]), nil
}

// gapRes names the lock resource of a successor surfaced by a B+tree
// gap hook (the end-of-index sentinel for eof).
func gapRes(nextKey []byte, eof bool) (string, error) {
	if eof {
		return kvEOFRes, nil
	}
	k, err := decodeKeyBytes(nextKey)
	if err != nil {
		return "", err
	}
	return kvRes(k), nil
}

// --- record codec -------------------------------------------------------
//
// A KV heap cell is a version: a 20-byte header (access.VersionMeta —
// begin timestamp, predecessor RID, tombstone flag) followed by the
// self-delimiting record layout (u16 klen | key | u32 vlen | value).
// Writers never overwrite a committed version: a put appends a new
// version whose header links the previous head, a delete appends a
// bare tombstone header, and the index entry is repointed to the new
// head in place. The chain runs newest→oldest, begin timestamps
// non-increasing along it, which is what lets snapshot readers walk to
// the newest version at or below their read point without any locks.

func encodeKV(k string, v []byte) []byte {
	out := make([]byte, 2+len(k)+4+len(v))
	binary.LittleEndian.PutUint16(out, uint16(len(k)))
	copy(out[2:], k)
	binary.LittleEndian.PutUint32(out[2+len(k):], uint32(len(v)))
	copy(out[2+len(k)+4:], v)
	return out
}

var errBadKVRecord = errors.New("sbdms: corrupt kv record")

func decodeKV(cell []byte) (string, []byte, error) {
	if len(cell) < 6 {
		return "", nil, errBadKVRecord
	}
	klen := int(binary.LittleEndian.Uint16(cell))
	if 2+klen+4 > len(cell) {
		return "", nil, errBadKVRecord
	}
	k := string(cell[2 : 2+klen])
	vlen := int(binary.LittleEndian.Uint32(cell[2+klen:]))
	if 2+klen+4+vlen > len(cell) {
		return "", nil, errBadKVRecord
	}
	return k, cell[2+klen+4 : 2+klen+4+vlen], nil
}

// stamper receives the deferred begin-timestamp writes of a mutation:
// each registered function rewrites one new version's begin field with
// the commit timestamp, atomically making every version of the
// transaction visible at the same point in commit order. In logged mode
// the transaction itself is the stamper (the stamps run inside commit,
// WAL-logged with field undo); unlogged mode collects them in a
// stampSet and runs them as soon as the operation succeeds.
type stamper interface {
	OnCommitTS(func(ts uint64) error)
}

type stampSet struct{ fns []func(uint64) error }

func (s *stampSet) OnCommitTS(f func(uint64) error) { s.fns = append(s.fns, f) }

// registerStamp defers stamping rid's begin field until the commit
// timestamp is known.
func (kv *kvCore) registerStamp(tx *txn.Txn, st stamper, rid access.RID) {
	c := txctx(tx)
	st.OnCommitTS(func(ts uint64) error {
		return kv.heap.StampBytes(c, rid, access.VersionBeginOff, access.EncodeBeginTS(ts))
	})
}

// onOutcome runs f when the mutation's outcome is decided: at commit in
// logged mode (and never on abort), immediately in unlogged mode (which
// has no rollback to wait out).
func onOutcome(tx *txn.Txn, f func()) {
	if tx != nil {
		tx.OnCommitted(f)
		return
	}
	f()
}

// --- failure guard ------------------------------------------------------

func (kv *kvCore) checkFailed() error {
	if !kv.poisoned.Load() {
		return nil
	}
	kv.failedMu.Lock()
	defer kv.failedMu.Unlock()
	return kv.failed
}

// poison takes the engine offline. A rollback or commit that itself
// fails (the device died mid-way) leaves the pool holding pages with
// unrecovered uncommitted bytes, and further commits would legitimise
// them in the log. Refusing all further operations keeps the WAL
// trustworthy, so a restart recovers exactly the committed state.
func (kv *kvCore) poison(err error) error {
	kv.failedMu.Lock()
	defer kv.failedMu.Unlock()
	if kv.failed == nil {
		kv.failed = err
		kv.poisoned.Store(true)
	}
	return kv.failed
}

// conflictWrap converts deadlock-victim errors into the retryable
// public form.
func conflictWrap(err error) error {
	if errors.Is(err, txn.ErrDeadlock) {
		return fmt.Errorf("%w: %v", ErrConflict, err)
	}
	return err
}

// lockKeys acquires exclusive key locks in sorted order (fewer
// deadlocks between multi-key batches; singles are unaffected).
func sortedUnique(keys []string) []string {
	if len(keys) <= 1 {
		return keys
	}
	out := append([]string(nil), keys...)
	sort.Strings(out)
	n := 0
	for i, k := range out {
		if i == 0 || out[n-1] != k {
			out[n] = k
			n++
		}
	}
	return out[:n]
}

// run executes op inside a fresh transaction holding exclusive locks on
// keys. A failed op is rolled back logically (inverse operations under
// page latches); a successful op commits through the group-commit path
// — concurrent committers coalesce into one log sync. Locks are
// released only once the outcome is durable (strict 2PL). op receives
// the lock-owner id next-key gap locks are taken under (the
// transaction's id, or a reserved id in unlogged mode).
func (kv *kvCore) run(ctx context.Context, keys []string, op func(tx *txn.Txn, owner uint64, st stamper) error) error {
	if err := kv.checkFailed(); err != nil {
		return err
	}
	if kv.txns == nil {
		// Unlogged: key locks still serialise conflicting operations,
		// there is just no undo or durability. Version stamps run as
		// soon as the operation succeeds, before the locks release, so
		// a snapshot reader still sees each operation atomically.
		id := kv.ids()
		defer kv.locks.ReleaseAll(id)
		for _, k := range sortedUnique(keys) {
			if err := kv.locks.Acquire(ctx, id, kvRes(k), txn.Exclusive); err != nil {
				return conflictWrap(err)
			}
		}
		// conflictWrap also covers gap-lock deadlocks inside op (next-key
		// locking at serializable isolation): they are retryable too.
		st := &stampSet{}
		if err := conflictWrap(op(nil, id, st)); err != nil {
			return err
		}
		if len(st.fns) > 0 {
			ts := kv.oracle.AllocateCommitTS()
			for _, f := range st.fns {
				if err := f(ts); err != nil {
					return kv.poison(fmt.Errorf("sbdms: kv engine offline after failed version stamp: %w", err))
				}
			}
			kv.oracle.Complete(ts)
		}
		return nil
	}
	tx, err := kv.txns.Begin()
	if err != nil {
		return err
	}
	abort := func(cause error) error {
		if aerr := kv.txns.Abort(tx); aerr != nil {
			perr := kv.poison(fmt.Errorf("sbdms: kv engine offline after failed rollback: %w", aerr))
			return fmt.Errorf("%w (rollback: %v)", cause, perr)
		}
		return cause
	}
	for _, k := range sortedUnique(keys) {
		if err := tx.Lock(ctx, kvRes(k), txn.Exclusive); err != nil {
			return abort(conflictWrap(err))
		}
	}
	// The transaction doubles as the stamper: stamps run inside commit,
	// after the commit timestamp is allocated, while undo is still
	// possible.
	if err := op(tx, tx.ID(), tx); err != nil {
		// A deadlock on a gap lock inside op (next-key locking) is as
		// retryable as one on the key locks above.
		return abort(conflictWrap(err))
	}
	if err := kv.txns.Commit(tx); err != nil {
		return kv.poison(fmt.Errorf("sbdms: kv engine offline after failed commit: %w", err))
	}
	return nil
}

// txctx converts the concrete transaction into the access-layer hook,
// avoiding a typed-nil interface when tx is nil.
func txctx(tx *txn.Txn) access.TxnContext {
	if tx == nil {
		return nil
	}
	return tx
}

// errGapBlocked is returned by a next-key GapCheck whose conditional
// lock attempt failed: the caller must drop its latches, wait for the
// recorded lock off-latch, and retry the whole tree operation (the
// successor may have changed by then).
var errGapBlocked = errors.New("sbdms: next-key lock busy")

// gapLockHook builds the next-key GapCheck shared by insertIndex and
// deleteIndex: it X-locks the successor for owner, conditionally (the
// hook runs under a leaf latch — it must never block). A lock the hook
// had to take FRESH is recorded in *instant when the caller wants to
// release it right after the mutation; an upgrade of an S the owner
// already holds (a transactional scan's read lock on the successor) is
// NEVER recorded there — the sole-holder upgrade grant itself proves no
// other scanner has read across the gap, and the lock must survive to
// commit or the owner's scan would lose its read lock with it.
func (kv *kvCore) gapLockHook(owner uint64, pending, instant *string) index.GapCheck {
	return func(nextKey []byte, _ access.RID, eof bool) error {
		res, err := gapRes(nextKey, eof)
		if err != nil {
			return err
		}
		m, held := kv.locks.Held(owner, res)
		if held && m == txn.Exclusive {
			return nil // already ours: a batch neighbour, a delete's gap lock, or a prior blocked attempt
		}
		if !kv.locks.TryAcquire(owner, res, txn.Exclusive) {
			*pending = res
			return errGapBlocked
		}
		if instant != nil && !held {
			*instant = res
		}
		return nil
	}
}

// insertIndex adds (k, rid) to the index. At serializable isolation the
// insert takes an ARIES/IM next-key lock: the successor of the new key
// is X-locked under the leaf latch for the INSTANT of the insert, which
// conflicts with (and only with) a scan that has already read across
// the gap the new key lands in. When the conditional attempt fails the
// leaf latch is dropped, the lock is awaited off-latch and the insert
// retried.
//
// Gap locks awaited off-latch are kept across retries (livelock
// avoidance — see below) but, like the conditionally-granted instant
// lock, they are only needed until the new entry is visible in the
// leaf: from that point a scan reaching the gap meets the key's own
// transaction-duration lock instead. So once the insert lands, every
// gap lock this call acquired FRESH is released — the append gap-lock
// downgrade, which keeps concurrent appenders to the same gap (most
// visibly the end-of-index sentinel) from serializing on each other's
// commit latency. Upgrades of locks the owner already held (a
// transactional scan's S on the successor) are never released here.
func (kv *kvCore) insertIndex(ctx context.Context, c access.TxnContext, owner uint64, k string, rid access.RID) error {
	if !kv.serializable {
		return kv.idx.InsertTx(c, kv.key(k), rid)
	}
	// kept collects the fresh gap locks awaited off-latch. On exit they
	// are released whatever the outcome: on success the entry is in the
	// leaf (scans serialize on its key lock), on failure the insert
	// never happened, so the key space the gap lock guarded is
	// unchanged — exactly the instant-duration argument.
	var kept []string
	release := func() {
		if kv.noDowngrade {
			return // hold to commit; ReleaseAll drops them with the rest
		}
		for _, res := range kept {
			_ = kv.locks.Release(owner, res)
		}
	}
	for {
		var pending, instant string
		err := kv.idx.InsertTxGap(c, kv.key(k), rid, kv.gapLockHook(owner, &pending, &instant))
		if instant != "" {
			// Instant duration: the entry is in the index, so scans now
			// meet the key's own (transaction-duration) lock instead.
			_ = kv.locks.Release(owner, instant)
		}
		if !errors.Is(err, errGapBlocked) {
			release()
			return err
		}
		_, held := kv.locks.Held(owner, pending)
		if lerr := kv.locks.Acquire(ctx, owner, pending, txn.Exclusive); lerr != nil {
			return lerr // aborting: ReleaseAll reclaims everything
		}
		if !held {
			kept = append(kept, pending)
		}
		// KEEP the lock across the retry (the Held fast path accepts
		// it; it releases above once the insert lands, or with the
		// owner's locks at commit). Releasing before retrying would
		// hand it straight back to the scan stream and livelock the
		// writer: under sustained scans there is always a next S
		// request queued, so the conditional attempt would fail
		// forever.
	}
}

// putTx stores (or replaces) a key under tx; the caller holds the key's
// exclusive lock. owner is the id gap locks are taken under.
//
// A put never overwrites: it appends a new version cell whose begin
// field carries the uncommitted mark (readers skip it) and whose prev
// field links the old head, then repoints the key's index entry to the
// new cell in place. The begin field is stamped with the commit
// timestamp via st when the outcome is decided. Only a brand-new key
// inserts an index entry — and therefore only inserts need the
// serializable next-key gap protocol; replacing the head of an existing
// entry (including a tombstone ghost) never changes the key space.
func (kv *kvCore) putTx(ctx context.Context, tx *txn.Txn, owner uint64, st stamper, k string, v []byte) error {
	c := txctx(tx)
	rec := encodeKV(k, v)
	rids, err := kv.idx.Search(kv.key(k))
	if err != nil {
		return err
	}
	if len(rids) == 0 {
		rid, err := kv.heap.Insert(c, access.EncodeVersion(access.VersionMeta{Begin: access.VersionMark | owner}, rec))
		if err != nil {
			return err
		}
		if err := kv.insertIndex(ctx, c, owner, k, rid); err != nil {
			return err
		}
		kv.registerStamp(tx, st, rid)
		return nil
	}
	old := rids[0]
	oldCell, err := kv.heap.Get(old)
	if err != nil {
		return err
	}
	oldMeta, _, err := access.DecodeVersion(oldCell)
	if err != nil {
		return err
	}
	nrid, err := kv.heap.Insert(c, access.EncodeVersion(access.VersionMeta{Begin: access.VersionMark | owner, Prev: old}, rec))
	if err != nil {
		return err
	}
	ok, err := kv.idx.RepointTx(c, kv.key(k), old, nrid)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: index entry for %q vanished under its exclusive lock", errBadKVRecord, k)
	}
	kv.registerStamp(tx, st, nrid)
	if oldMeta.Tombstone() {
		// Resurrecting a deleted key: its ghost entry goes live again.
		// (An uncommitted tombstone head is necessarily our own — the
		// key's exclusive lock rules out other writers — so the paired
		// dead++ of that delete nets out at commit.)
		onOutcome(tx, func() { kv.dead.Add(-1) })
	}
	return nil
}

// deleteTx removes a key under tx; the caller holds the key's exclusive
// lock.
//
// A delete appends a bare tombstone version linking the old head and
// repoints the index entry to it — the entry itself stays, anchoring
// the version chain for snapshot readers and standing in as the ghost
// record that blocks resurrection while scans hold its S lock. Vacuum
// removes the entry once no snapshot can see any version of the key.
// Because the key space never shrinks here, deletes need no next-key
// gap lock at serializable isolation.
func (kv *kvCore) deleteTx(ctx context.Context, tx *txn.Txn, owner uint64, st stamper, k string) error {
	c := txctx(tx)
	rids, err := kv.idx.Search(kv.key(k))
	if err != nil {
		return err
	}
	if len(rids) == 0 {
		return fmt.Errorf("%w: %q", ErrKeyNotFound, k)
	}
	old := rids[0]
	oldCell, err := kv.heap.Get(old)
	if err != nil {
		return err
	}
	oldMeta, _, err := access.DecodeVersion(oldCell)
	if err != nil {
		return err
	}
	if oldMeta.Tombstone() {
		// Already deleted (a committed ghost, or our own earlier delete
		// in this batch — the exclusive lock rules out anyone else's).
		return fmt.Errorf("%w: %q", ErrKeyNotFound, k)
	}
	nrid, err := kv.heap.Insert(c, access.EncodeVersion(access.VersionMeta{
		Begin: access.VersionMark | owner,
		Prev:  old,
		Flags: access.VersionTombstone,
	}, nil))
	if err != nil {
		return err
	}
	ok, err := kv.idx.RepointTx(c, kv.key(k), old, nrid)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: index entry for %q vanished under its exclusive lock", errBadKVRecord, k)
	}
	kv.registerStamp(tx, st, nrid)
	onOutcome(tx, func() { kv.dead.Add(1) })
	return nil
}

// Put stores (or replaces) a key, durably when the WAL is enabled.
func (kv *kvCore) Put(ctx context.Context, k string, v []byte) error {
	return kv.run(ctx, []string{k}, func(tx *txn.Txn, owner uint64, st stamper) error {
		return kv.putTx(ctx, tx, owner, st, k, v)
	})
}

// PutBatch stores several keys under one transaction: one WAL force
// for the whole batch, and after a crash either all of the batch's
// keys are recovered or none. Locks are acquired in sorted key order,
// so concurrent batches cannot deadlock each other. With the WAL
// disabled there is no undo, so a mid-batch failure leaves the earlier
// keys applied (unlogged mode trades the atomicity guarantee away
// along with durability).
func (kv *kvCore) PutBatch(ctx context.Context, keys []string, vals [][]byte) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("%w: %d keys, %d values", ErrBatchMismatch, len(keys), len(vals))
	}
	return kv.run(ctx, keys, func(tx *txn.Txn, owner uint64, st stamper) error {
		for i := range keys {
			if err := kv.putTx(ctx, tx, owner, st, keys[i], vals[i]); err != nil {
				return err
			}
		}
		return nil
	})
}

// Get fetches a key's value under a shared key lock (blocking out a
// concurrent writer of the same key, and only of the same key). A
// poisoned engine refuses reads too: the pool may hold
// half-rolled-back bytes a failed rollback left behind.
func (kv *kvCore) Get(ctx context.Context, k string) ([]byte, error) {
	if err := kv.checkFailed(); err != nil {
		return nil, err
	}
	id := kv.ids()
	if err := kv.locks.Acquire(ctx, id, kvRes(k), txn.Shared); err != nil {
		return nil, conflictWrap(err)
	}
	defer kv.locks.ReleaseAll(id)
	rids, err := kv.idx.Search(kv.key(k))
	if err != nil {
		return nil, err
	}
	if len(rids) == 0 {
		if kv.serializable {
			// A miss must be as repeatable as a hit. The key's own S lock
			// (held above) only conflicts with writers of k itself AFTER
			// they lock the key — but "k is absent" is a fact about the
			// GAP, and the gap is guarded by its successor. Lock it like a
			// one-key scan would, then re-check: the lock may have been
			// awaited off-latch behind an in-flight writer whose outcome
			// (e.g. a delete's rollback) can materialise k.
			if err := kv.lockMissGap(ctx, id, k); err != nil {
				return nil, conflictWrap(err)
			}
			rids, err = kv.idx.Search(kv.key(k))
			if err != nil {
				return nil, err
			}
		}
		if len(rids) == 0 {
			return nil, fmt.Errorf("%w: %q", ErrKeyNotFound, k)
		}
	}
	meta, rest, err := kv.headVersion(rids[0])
	if err != nil {
		return nil, err
	}
	if meta.Tombstone() {
		// A ghost entry: the key is deleted. The S lock held on the key
		// itself already blocks a resurrection until we return, so no
		// gap lock is needed for miss repeatability — the ghost IS the
		// lockable record.
		return nil, fmt.Errorf("%w: %q", ErrKeyNotFound, k)
	}
	_, v, err := decodeKV(rest)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), v...), nil
}

// headVersion reads a key's head version cell and walks — defensively —
// past uncommitted marks to the newest committed version. Under the
// key's lock the head is always committed (writers stamp before their
// locks release), so the walk normally terminates at the head itself.
func (kv *kvCore) headVersion(rid access.RID) (access.VersionMeta, []byte, error) {
	for {
		cell, err := kv.heap.Get(rid)
		if err != nil {
			return access.VersionMeta{}, nil, err
		}
		meta, rest, err := access.DecodeVersion(cell)
		if err != nil {
			return access.VersionMeta{}, nil, err
		}
		if meta.Committed() || !meta.HasPrev() {
			return meta, rest, nil
		}
		rid = meta.Prev
	}
}

// Delete removes a key.
func (kv *kvCore) Delete(ctx context.Context, k string) error {
	// In logged mode, pre-check existence under a shared lock so a miss
	// stays a read-only operation instead of paying a begin/abort WAL
	// round trip. deleteTx re-checks under the exclusive lock.
	if kv.txns != nil {
		if err := kv.checkFailed(); err != nil {
			return err
		}
		id := kv.ids()
		absent, err := func() (bool, error) {
			if err := kv.locks.Acquire(ctx, id, kvRes(k), txn.Shared); err != nil {
				return false, conflictWrap(err)
			}
			defer kv.locks.ReleaseAll(id)
			rids, err := kv.idx.Search(kv.key(k))
			if err != nil || len(rids) == 0 {
				return len(rids) == 0 && err == nil, err
			}
			meta, _, err := kv.headVersion(rids[0])
			if err != nil {
				return false, err
			}
			return meta.Tombstone(), nil
		}()
		if err == nil && absent {
			return fmt.Errorf("%w: %q", ErrKeyNotFound, k)
		}
	}
	return kv.run(ctx, []string{k}, func(tx *txn.Txn, owner uint64, st stamper) error {
		return kv.deleteTx(ctx, tx, owner, st, k)
	})
}

// Scan returns up to n keys starting at (inclusive) the given key, in
// order. Its guarantees follow the configured isolation level:
//
//   - read-committed (default): no key locks. The scan is
//     non-transactional — keys of in-flight transactions may appear and
//     later abort, keys inserted or deleted while the scan runs may or
//     may not appear, records whose deferred removal lands mid-scan and
//     index entries whose slot was already reused are skipped.
//   - serializable: next-key locking. The scan S-locks each returned
//     key plus the successor past the range end (end-of-index sentinel
//     at the right edge), all held until the scan returns, and writers
//     gap-lock the successor of every inserted/deleted key — the result
//     is an atomic snapshot. Conflicting writers block the scan (and a
//     deadlock surfaces as retryable ErrConflict).
func (kv *kvCore) Scan(ctx context.Context, from string, n int) ([]string, error) {
	if err := kv.checkFailed(); err != nil {
		return nil, err
	}
	if kv.serializable {
		id := kv.ids()
		defer kv.locks.ReleaseAll(id)
		out, err := kv.scanKeysLocked(ctx, id, from, n)
		if err != nil {
			return nil, conflictWrap(err)
		}
		return out, nil
	}
	var out []string
	err := kv.idx.Range(kv.key(from), nil, func(key []byte, rid access.RID) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if len(out) >= n {
			return errStopScan
		}
		cell, err := kv.heap.Get(rid)
		if err != nil {
			if errors.Is(err, access.ErrNoSlot) {
				return nil // vacuumed under the scan: skip
			}
			return err
		}
		meta, rest, err := access.DecodeVersion(cell)
		if err != nil {
			return err
		}
		if meta.Tombstone() {
			return nil // deleted (possibly by an in-flight delete): skip
		}
		k, _, err := decodeKV(rest)
		if err != nil {
			return err
		}
		if !bytes.Equal(kv.key(k), key) {
			// The slot was purged and reused by another key between the
			// index read and the heap read: the index entry we followed
			// is gone. Skip it, exactly like the deleted-slot case.
			return nil
		}
		out = append(out, k)
		return nil
	})
	if err != nil && !errors.Is(err, errStopScan) {
		return nil, err
	}
	return out, nil
}

// scanKeysLocked is the serializable scan body: a next-key-locked walk
// whose S locks are taken under the covering leaf latch (conditionally
// — TryAcquire never blocks a latch holder) and belong to owner when it
// returns. The CALLER releases them: the public Scan drops them as the
// scan completes (the scan is its own transaction), while a
// transactional caller holds them to commit for full strict 2PL.
//
// When a conditional lock attempt fails — the entry is X-locked by an
// in-flight writer — the leaf latch is dropped, the lock is awaited
// off-latch, and the walk RESTARTS from just after the last returned
// key: the blocker may have been an uncommitted delete whose rollback
// restores a key inside the gap the scan was about to cross, so the
// whole gap must be re-read once the outcome is decided. Keys already
// returned are S-locked and therefore stable; restarts never revisit
// them.
func (kv *kvCore) scanKeysLocked(ctx context.Context, owner uint64, from string, n int) ([]string, error) {
	var out []string
	lo := kv.key(from)
	skip, haveSkip := "", false // last returned key ("" is a legal key: flag, not sentinel)
	for {
		var pending string
		err := kv.idx.RangeLatched(lo, func(key []byte, rid access.RID, eof bool) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			if eof {
				// Ran off the right edge: seal the range end with the
				// end-of-index sentinel so a later append still conflicts.
				if !kv.locks.TryAcquire(owner, kvEOFRes, txn.Shared) {
					pending = kvEOFRes
					return errGapBlocked
				}
				return errStopScan
			}
			k, err := decodeKeyBytes(key)
			if err != nil {
				return err
			}
			if haveSkip && k == skip {
				return nil // restart cursor: already returned and locked
			}
			if !kv.locks.TryAcquire(owner, kvRes(k), txn.Shared) {
				pending = kvRes(k)
				return errGapBlocked
			}
			// Ghost check under the granted S lock (so the head is
			// committed): a tombstone-headed entry is a deleted key.
			// It is skipped but its lock is KEPT — the locked ghost
			// seals its gap against resurrection exactly like a
			// returned key's lock, so it does not count toward n.
			meta, _, err := kv.headVersion(rid)
			if err != nil {
				if errors.Is(err, access.ErrNoSlot) {
					return nil // vacuumed just before we locked it
				}
				return err
			}
			if meta.Tombstone() {
				return nil
			}
			if len(out) >= n {
				// The (n+1)th key: the next-key lock sealing the range
				// end. Locked but not returned.
				return errStopScan
			}
			out = append(out, k)
			return nil
		})
		if errors.Is(err, errGapBlocked) {
			if lerr := kv.locks.Acquire(ctx, owner, pending, txn.Shared); lerr != nil {
				return nil, lerr
			}
			if len(out) > 0 {
				lo, skip, haveSkip = kv.key(out[len(out)-1]), out[len(out)-1], true
			} else {
				lo, skip, haveSkip = kv.key(from), "", false
			}
			continue
		}
		if err != nil && !errors.Is(err, errStopScan) {
			return nil, err
		}
		return out, nil
	}
}

// lockMissGap seals a serializable Get of an ABSENT key: it S-locks
// the miss position's successor (or the end-of-index sentinel when k
// would sort past everything), exactly the next-key lock a one-key
// scan starting at k would take. An insert of k must X-lock that same
// successor for the instant of its insert, so the insert blocks until
// this reader's locks drain — without this lock, two Gets of a missing
// key in one serializable transaction could disagree. The lock is
// taken conditionally under the leaf latch; on refusal the latch is
// dropped, the lock awaited off-latch, and the probe retried, because
// the successor may have changed while we waited (TryAcquire's
// held-strongly fast path accepts the kept lock on the retry).
func (kv *kvCore) lockMissGap(ctx context.Context, owner uint64, k string) error {
	for {
		var pending string
		err := kv.idx.RangeLatched(kv.key(k), func(key []byte, _ access.RID, eof bool) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			res, err := gapRes(key, eof)
			if err != nil {
				return err
			}
			if !kv.locks.TryAcquire(owner, res, txn.Shared) {
				pending = res
				return errGapBlocked
			}
			return errStopScan
		})
		if errors.Is(err, errGapBlocked) {
			if lerr := kv.locks.Acquire(ctx, owner, pending, txn.Shared); lerr != nil {
				return lerr
			}
			continue
		}
		if err != nil && !errors.Is(err, errStopScan) {
			return err
		}
		return nil
	}
}

// Len returns the number of live keys: index entries minus committed
// tombstone ghosts (0 when the engine is poisoned — the in-memory count
// is no more trustworthy than the pages then).
func (kv *kvCore) Len() uint64 {
	if kv.poisoned.Load() {
		return 0
	}
	n := kv.idx.Len()
	if d := kv.dead.Load(); d > 0 {
		if uint64(d) >= n {
			return 0
		}
		n -= uint64(d)
	}
	return n
}

// --- snapshot reads -----------------------------------------------------

// maxSnapshotRetries bounds the head-rereads a snapshot point read pays
// when vacuum purges and reuses the slot it just resolved. Each retry
// re-searches the index; the version visible to the snapshot is inside
// the vacuum horizon and can never itself be reclaimed, so the loop
// only spins while OTHER keys churn through the same slot.
const maxSnapshotRetries = 64

// GetSnapshot fetches the value of k that was current at the newest
// consistent read point, without taking any key locks: the read walks
// the B+tree under shared latches, follows the key's version chain to
// the newest version visible at the snapshot, and never blocks on (or
// blocks) concurrent writers. Uncommitted versions are invisible; a
// visible tombstone is ErrKeyNotFound.
func (kv *kvCore) GetSnapshot(ctx context.Context, k string) ([]byte, error) {
	if err := kv.checkFailed(); err != nil {
		return nil, err
	}
	// Register the snapshot BEFORE resolving the key: from here on
	// vacuum's horizon cannot pass readTS, so every version this read
	// could return is pinned in place.
	snap := kv.oracle.Snapshot()
	defer snap.Close()
	return kv.getSnapshotAt(ctx, k, snap.ReadTS)
}

// getSnapshotAt is GetSnapshot at an explicit read timestamp. The
// caller owns the consistency of readTS: either a registered oracle
// snapshot (GetSnapshot) or a replication frontier on a follower, where
// every version at or below readTS has been applied and vacuum never
// runs.
func (kv *kvCore) getSnapshotAt(ctx context.Context, k string, readTS uint64) ([]byte, error) {
	for i := 0; i < maxSnapshotRetries; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rids, err := kv.idx.Search(kv.key(k))
		if err != nil {
			return nil, err
		}
		if len(rids) == 0 {
			return nil, fmt.Errorf("%w: %q", ErrKeyNotFound, k)
		}
		v, ok, retry, err := kv.readVisible(k, rids[0], readTS)
		if err != nil {
			return nil, err
		}
		if retry {
			continue // slot vacuumed+reused under us: re-resolve the head
		}
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrKeyNotFound, k)
		}
		return v, nil
	}
	return nil, fmt.Errorf("sbdms: snapshot read of %q did not stabilise", k)
}

// ScanKeysSnapshot returns up to n keys from (inclusive) in order, as
// of one consistent read point: every key decision — present, absent,
// deleted — is made against the same snapshot timestamp, so the result
// is an atomic cut of the key space no matter how many transactions
// commit mid-scan. Like GetSnapshot it takes no key locks and cannot
// conflict with writers.
func (kv *kvCore) ScanKeysSnapshot(ctx context.Context, from string, n int) ([]string, error) {
	if err := kv.checkFailed(); err != nil {
		return nil, err
	}
	snap := kv.oracle.Snapshot()
	defer snap.Close()
	return kv.scanKeysSnapshotAt(ctx, from, n, snap.ReadTS)
}

// scanKeysSnapshotAt is ScanKeysSnapshot at an explicit read timestamp
// (see getSnapshotAt for who may supply one).
func (kv *kvCore) scanKeysSnapshotAt(ctx context.Context, from string, n int, readTS uint64) ([]string, error) {
	var out []string
	err := kv.idx.Range(kv.key(from), nil, func(key []byte, rid access.RID) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if len(out) >= n {
			return errStopScan
		}
		k, err := decodeKeyBytes(key)
		if err != nil {
			return err
		}
		// A retry outcome here means the entry's whole chain was
		// reclaimed (the key was dead at the horizon ≤ readTS) and the
		// slot reused — absent at this snapshot, so skipping is exact.
		_, ok, _, err := kv.readVisible(k, rid, readTS)
		if err != nil {
			return err
		}
		if ok {
			out = append(out, k)
		}
		return nil
	})
	if err != nil && !errors.Is(err, errStopScan) {
		return nil, err
	}
	return out, nil
}

// readVisible walks the version chain from rid to the newest version
// visible at readTS. ok reports a live visible version (val is a
// copy); retry reports that the chain under this rid was reclaimed by
// vacuum and the caller must re-resolve the key's head (or, for scans,
// may treat the key as absent — see the callers for why both are
// exact).
func (kv *kvCore) readVisible(k string, rid access.RID, readTS uint64) (val []byte, ok, retry bool, err error) {
	for {
		cell, err := kv.heap.Get(rid)
		if err != nil {
			if errors.Is(err, access.ErrNoSlot) {
				return nil, false, true, nil
			}
			return nil, false, false, err
		}
		meta, rest, err := access.DecodeVersion(cell)
		if err != nil {
			return nil, false, true, nil // reused slot: not a version of this key any more
		}
		if !meta.VisibleAt(readTS) {
			if !meta.HasPrev() {
				// Every version is younger than the snapshot (or still
				// uncommitted): the key did not exist at readTS.
				return nil, false, false, nil
			}
			rid = meta.Prev
			continue
		}
		if meta.Tombstone() {
			return nil, false, false, nil
		}
		gk, v, err := decodeKV(rest)
		if err != nil || gk != k {
			return nil, false, true, nil // slot reuse raced the read
		}
		return append([]byte(nil), v...), true, false, nil
	}
}

var errStopScan = errors.New("sbdms: stop scan")

// --- vacuum ------------------------------------------------------------

// vacuumConfig wires the version scavenger to this keyspace: same
// heap, index, lock naming and oracle the writers use, so the
// vacuum's per-key X locks and horizon computation compose with the
// engine's own protocols.
func (kv *kvCore) vacuumConfig() vacuum.Config {
	return vacuum.Config{
		Heap:   kv.heap,
		Index:  kv.idx,
		Locks:  kv.locks,
		Txns:   kv.txns,
		Oracle: kv.oracle,
		Resource: func(key []byte) (string, error) {
			k, err := decodeKeyBytes(key)
			if err != nil {
				return "", err
			}
			return kvRes(k), nil
		},
		NextID:   kv.ids,
		ScanFrom: kv.key(""),
		// A removed key takes its committed tombstone head with it:
		// the ghost counter must drop with the index entry or Len
		// double-subtracts.
		OnKeyRemoved: func() { kv.dead.Add(-1) },
	}
}

// Vacuum runs one reclamation pass over the keyspace.
func (kv *kvCore) Vacuum() (vacuum.Stats, error) {
	if err := kv.checkFailed(); err != nil {
		return vacuum.Stats{}, err
	}
	return vacuum.Run(kv.vacuumConfig())
}
