// Package txn implements the transactional services of the SBDMS Data
// layer: a lock manager with shared/exclusive modes and wait-for-graph
// deadlock detection, and a transaction manager providing 2PL
// transactions with WAL-backed durability (begin/commit/abort records,
// undo via before images).
package txn

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Lock manager errors.
var (
	// ErrDeadlock is returned to the transaction chosen as deadlock
	// victim; the caller must abort it.
	ErrDeadlock = errors.New("txn: deadlock detected")
	// ErrNotHeld is returned when releasing a lock that is not held.
	ErrNotHeld = errors.New("txn: lock not held")
)

// LockMode is the requested access mode.
type LockMode int

// Lock modes.
const (
	Shared LockMode = iota
	Exclusive
)

// String implements fmt.Stringer.
func (m LockMode) String() string {
	if m == Shared {
		return "S"
	}
	return "X"
}

type lockState struct {
	holders map[uint64]LockMode
}

// LockManager grants S/X locks on named resources to transactions,
// blocking conflicting requests and aborting a requester whose wait
// would close a cycle in the wait-for graph.
type LockManager struct {
	mu       sync.Mutex
	cond     *sync.Cond
	locks    map[string]*lockState
	waitsFor map[uint64]map[uint64]bool
}

// NewLockManager creates an empty lock manager.
func NewLockManager() *LockManager {
	lm := &LockManager{
		locks:    make(map[string]*lockState),
		waitsFor: make(map[uint64]map[uint64]bool),
	}
	lm.cond = sync.NewCond(&lm.mu)
	return lm
}

// compatibleLocked reports whether txn may acquire mode on st.
func compatibleLocked(st *lockState, txn uint64, mode LockMode) bool {
	for holder, hmode := range st.holders {
		if holder == txn {
			continue // upgrades handled by caller
		}
		if mode == Exclusive || hmode == Exclusive {
			return false
		}
	}
	return true
}

// Acquire blocks until txn holds the resource in mode (or stronger).
// Lock upgrades (S held, X requested) are supported. Returns
// ErrDeadlock when waiting would deadlock, or the context error when
// ctx is cancelled.
func (lm *LockManager) Acquire(ctx context.Context, txn uint64, resource string, mode LockMode) error {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for {
		st := lm.locks[resource]
		if st == nil {
			st = &lockState{holders: make(map[uint64]LockMode)}
			lm.locks[resource] = st
		}
		if held, ok := st.holders[txn]; ok && (held == Exclusive || held == mode) {
			return nil // already held strongly enough
		}
		if compatibleLocked(st, txn, mode) {
			st.holders[txn] = mode
			delete(lm.waitsFor, txn)
			return nil
		}
		// Register wait-for edges to the CURRENT blockers, rebuilding
		// the edge set from scratch each round: a blocker from an
		// earlier round may have released and moved on, and a stale
		// edge to it would manufacture phantom deadlocks (the released
		// blocker later waiting on us would "close" a cycle that no
		// longer exists).
		edges := make(map[uint64]bool)
		lm.waitsFor[txn] = edges
		for holder, hmode := range st.holders {
			if holder == txn {
				continue
			}
			if mode == Exclusive || hmode == Exclusive {
				edges[holder] = true
			}
		}
		if lm.cycleFromLocked(txn) {
			delete(lm.waitsFor, txn)
			return fmt.Errorf("%w: txn %d on %s/%s", ErrDeadlock, txn, resource, mode)
		}
		if err := ctx.Err(); err != nil {
			delete(lm.waitsFor, txn)
			return err
		}
		waitDone := make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
				lm.mu.Lock()
				lm.cond.Broadcast()
				lm.mu.Unlock()
			case <-waitDone:
			}
		}()
		lm.cond.Wait()
		close(waitDone)
	}
}

// cycleFromLocked detects a cycle in the wait-for graph reachable from
// start.
func (lm *LockManager) cycleFromLocked(start uint64) bool {
	seen := map[uint64]bool{}
	var dfs func(u uint64) bool
	dfs = func(u uint64) bool {
		if u == start && len(seen) > 0 {
			return true
		}
		if seen[u] {
			return false
		}
		seen[u] = true
		for v := range lm.waitsFor[u] {
			if dfs(v) {
				return true
			}
		}
		return false
	}
	for v := range lm.waitsFor[start] {
		if dfs(v) {
			return true
		}
	}
	return false
}

// Release drops txn's lock on the resource.
func (lm *LockManager) Release(txn uint64, resource string) error {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	st := lm.locks[resource]
	if st == nil {
		return fmt.Errorf("%w: %s", ErrNotHeld, resource)
	}
	if _, ok := st.holders[txn]; !ok {
		return fmt.Errorf("%w: %s by txn %d", ErrNotHeld, resource, txn)
	}
	delete(st.holders, txn)
	if len(st.holders) == 0 {
		delete(lm.locks, resource)
	}
	lm.cond.Broadcast()
	return nil
}

// ReleaseAll drops every lock txn holds (end of 2PL).
func (lm *LockManager) ReleaseAll(txn uint64) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for res, st := range lm.locks {
		if _, ok := st.holders[txn]; ok {
			delete(st.holders, txn)
			if len(st.holders) == 0 {
				delete(lm.locks, res)
			}
		}
	}
	delete(lm.waitsFor, txn)
	lm.cond.Broadcast()
}

// Held returns the mode txn holds on resource, if any.
func (lm *LockManager) Held(txn uint64, resource string) (LockMode, bool) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	if st := lm.locks[resource]; st != nil {
		m, ok := st.holders[txn]
		return m, ok
	}
	return Shared, false
}

// Locked returns the number of currently locked resources.
func (lm *LockManager) Locked() int {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return len(lm.locks)
}
