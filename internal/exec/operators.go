package exec

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/access"
	"repro/internal/catalog"
	"repro/internal/index"
)

// Operator is the Volcano-style iterator interface: Open, repeated Next
// until io.EOF, Close. Operators compose into trees by the planner.
type Operator interface {
	Open(ctx context.Context) error
	Next(ctx context.Context) (access.Row, error)
	Close() error
	// Columns names the output schema.
	Columns() []string
}

// RowSource abstracts the heap-file surface operators need, so the same
// operator tree runs over a native heap or over a storage service
// reached through the kernel (the granularity experiments exploit
// this).
type RowSource interface {
	Scan(fn func(rid access.RID, rec []byte) error) error
	Get(rid access.RID) ([]byte, error)
}

// SeqScan reads every row of a table through a RowSource.
type SeqScan struct {
	Table  *catalog.Table
	Source RowSource
	Alias  string

	rows []access.Row
	pos  int
	cols []string
}

// NewSeqScan creates a sequential scan. alias qualifies output column
// names ("" uses the table name).
func NewSeqScan(t *catalog.Table, src RowSource, alias string) *SeqScan {
	return &SeqScan{Table: t, Source: src, Alias: alias}
}

// Columns implements Operator.
func (s *SeqScan) Columns() []string {
	if s.cols == nil {
		name := s.Alias
		if name == "" {
			name = s.Table.Name
		}
		for _, c := range s.Table.Columns {
			s.cols = append(s.cols, name+"."+c.Name)
		}
	}
	return s.cols
}

// Open implements Operator. The scan materialises RIDs eagerly page by
// page; rows decode lazily in Next.
func (s *SeqScan) Open(ctx context.Context) error {
	s.rows = s.rows[:0]
	s.pos = 0
	return s.Source.Scan(func(rid access.RID, rec []byte) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		row, err := access.DecodeRow(rec)
		if err != nil {
			return err
		}
		s.rows = append(s.rows, row)
		return nil
	})
}

// Next implements Operator.
func (s *SeqScan) Next(ctx context.Context) (access.Row, error) {
	if s.pos >= len(s.rows) {
		return nil, io.EOF
	}
	row := s.rows[s.pos]
	s.pos++
	return row, nil
}

// Close implements Operator.
func (s *SeqScan) Close() error {
	s.rows = nil
	return nil
}

// IndexScan reads rows whose indexed column lies in [Lo, Hi] via a
// B+tree, fetching each row from the RowSource.
type IndexScan struct {
	Table  *catalog.Table
	Source RowSource
	Tree   *index.BTree
	Alias  string
	// Lo and Hi bound the indexed column (inclusive); nil = unbounded.
	Lo, Hi *access.Value

	rids []access.RID
	pos  int
	cols []string
}

// Columns implements Operator.
func (s *IndexScan) Columns() []string {
	if s.cols == nil {
		name := s.Alias
		if name == "" {
			name = s.Table.Name
		}
		for _, c := range s.Table.Columns {
			s.cols = append(s.cols, name+"."+c.Name)
		}
	}
	return s.cols
}

// Open implements Operator: the RID list comes from a tree range scan.
func (s *IndexScan) Open(ctx context.Context) error {
	s.rids = s.rids[:0]
	s.pos = 0
	var lo, hi []byte
	if s.Lo != nil {
		lo = access.EncodeKey(*s.Lo)
	}
	if s.Hi != nil {
		hi = nextKey(access.EncodeKey(*s.Hi)) // inclusive upper bound
	}
	return s.Tree.Range(lo, hi, func(key []byte, rid access.RID) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.rids = append(s.rids, rid)
		return nil
	})
}

// nextKey returns the smallest key strictly greater than k.
func nextKey(k []byte) []byte { return append(append([]byte(nil), k...), 0x00) }

// Next implements Operator.
func (s *IndexScan) Next(ctx context.Context) (access.Row, error) {
	if s.pos >= len(s.rids) {
		return nil, io.EOF
	}
	rid := s.rids[s.pos]
	s.pos++
	rec, err := s.Source.Get(rid)
	if err != nil {
		return nil, err
	}
	return access.DecodeRow(rec)
}

// Close implements Operator.
func (s *IndexScan) Close() error {
	s.rids = nil
	return nil
}

// Values serves literal rows (INSERT ... VALUES and tests).
type Values struct {
	Cols []string
	Rows []access.Row
	pos  int
}

// Columns implements Operator.
func (v *Values) Columns() []string { return v.Cols }

// Open implements Operator.
func (v *Values) Open(ctx context.Context) error { v.pos = 0; return nil }

// Next implements Operator.
func (v *Values) Next(ctx context.Context) (access.Row, error) {
	if v.pos >= len(v.Rows) {
		return nil, io.EOF
	}
	r := v.Rows[v.pos]
	v.pos++
	return r, nil
}

// Close implements Operator.
func (v *Values) Close() error { return nil }

// Filter passes rows satisfying a predicate.
type Filter struct {
	In   Operator
	Pred Expr
}

// Columns implements Operator.
func (f *Filter) Columns() []string { return f.In.Columns() }

// Open implements Operator.
func (f *Filter) Open(ctx context.Context) error { return f.In.Open(ctx) }

// Next implements Operator.
func (f *Filter) Next(ctx context.Context) (access.Row, error) {
	cols := f.In.Columns()
	for {
		row, err := f.In.Next(ctx)
		if err != nil {
			return nil, err
		}
		ok, err := Truthy(f.Pred, row, cols)
		if err != nil {
			return nil, err
		}
		if ok {
			return row, nil
		}
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.In.Close() }

// Project computes output expressions with aliases.
type Project struct {
	In      Operator
	Exprs   []Expr
	Aliases []string
}

// Columns implements Operator.
func (p *Project) Columns() []string { return p.Aliases }

// Open implements Operator.
func (p *Project) Open(ctx context.Context) error { return p.In.Open(ctx) }

// Next implements Operator.
func (p *Project) Next(ctx context.Context) (access.Row, error) {
	row, err := p.In.Next(ctx)
	if err != nil {
		return nil, err
	}
	cols := p.In.Columns()
	out := make(access.Row, len(p.Exprs))
	for i, e := range p.Exprs {
		v, err := e.Eval(row, cols)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Close implements Operator.
func (p *Project) Close() error { return p.In.Close() }

// Limit stops after N rows, skipping Offset first.
type Limit struct {
	In     Operator
	N      int64
	Offset int64
	done   int64
	skip   int64
}

// Columns implements Operator.
func (l *Limit) Columns() []string { return l.In.Columns() }

// Open implements Operator.
func (l *Limit) Open(ctx context.Context) error {
	l.done, l.skip = 0, 0
	return l.In.Open(ctx)
}

// Next implements Operator.
func (l *Limit) Next(ctx context.Context) (access.Row, error) {
	for l.skip < l.Offset {
		if _, err := l.In.Next(ctx); err != nil {
			return nil, err
		}
		l.skip++
	}
	if l.N >= 0 && l.done >= l.N {
		return nil, io.EOF
	}
	row, err := l.In.Next(ctx)
	if err != nil {
		return nil, err
	}
	l.done++
	return row, nil
}

// Close implements Operator.
func (l *Limit) Close() error { return l.In.Close() }

// SortKey is one ORDER BY term.
type SortKey struct {
	E    Expr
	Desc bool
}

// Sort materialises the input and emits it ordered by the keys.
type Sort struct {
	In   Operator
	Keys []SortKey

	rows []access.Row
	pos  int
}

// Columns implements Operator.
func (s *Sort) Columns() []string { return s.In.Columns() }

// Open implements Operator: the input is drained and sorted eagerly.
func (s *Sort) Open(ctx context.Context) error {
	if err := s.In.Open(ctx); err != nil {
		return err
	}
	s.rows = s.rows[:0]
	s.pos = 0
	cols := s.In.Columns()
	for {
		row, err := s.In.Next(ctx)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		s.rows = append(s.rows, row)
	}
	var sortErr error
	sort.SliceStable(s.rows, func(i, j int) bool {
		for _, k := range s.Keys {
			vi, err := k.E.Eval(s.rows[i], cols)
			if err != nil {
				sortErr = err
				return false
			}
			vj, err := k.E.Eval(s.rows[j], cols)
			if err != nil {
				sortErr = err
				return false
			}
			c, err := access.Compare(vi, vj)
			if err != nil {
				sortErr = err
				return false
			}
			if c != 0 {
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	return sortErr
}

// Next implements Operator.
func (s *Sort) Next(ctx context.Context) (access.Row, error) {
	if s.pos >= len(s.rows) {
		return nil, io.EOF
	}
	r := s.rows[s.pos]
	s.pos++
	return r, nil
}

// Close implements Operator.
func (s *Sort) Close() error {
	s.rows = nil
	return s.In.Close()
}

// Distinct removes duplicate rows (by encoded form).
type Distinct struct {
	In   Operator
	seen map[string]bool
}

// Columns implements Operator.
func (d *Distinct) Columns() []string { return d.In.Columns() }

// Open implements Operator.
func (d *Distinct) Open(ctx context.Context) error {
	d.seen = make(map[string]bool)
	return d.In.Open(ctx)
}

// Next implements Operator.
func (d *Distinct) Next(ctx context.Context) (access.Row, error) {
	for {
		row, err := d.In.Next(ctx)
		if err != nil {
			return nil, err
		}
		key := string(access.EncodeRow(row))
		if !d.seen[key] {
			d.seen[key] = true
			return row, nil
		}
	}
}

// Close implements Operator.
func (d *Distinct) Close() error {
	d.seen = nil
	return d.In.Close()
}

// NestedLoopJoin joins two inputs with an arbitrary predicate,
// materialising the right side once.
type NestedLoopJoin struct {
	L, R Operator
	Pred Expr // nil = cross join

	right   []access.Row
	cur     access.Row
	rpos    int
	cols    []string
	started bool
}

// Columns implements Operator.
func (j *NestedLoopJoin) Columns() []string {
	if j.cols == nil {
		j.cols = append(append([]string(nil), j.L.Columns()...), j.R.Columns()...)
	}
	return j.cols
}

// Open implements Operator.
func (j *NestedLoopJoin) Open(ctx context.Context) error {
	if err := j.L.Open(ctx); err != nil {
		return err
	}
	if err := j.R.Open(ctx); err != nil {
		return err
	}
	j.right = j.right[:0]
	for {
		row, err := j.R.Next(ctx)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		j.right = append(j.right, row)
	}
	j.cur = nil
	j.rpos = 0
	j.started = true
	return nil
}

// Next implements Operator.
func (j *NestedLoopJoin) Next(ctx context.Context) (access.Row, error) {
	cols := j.Columns()
	for {
		if j.cur == nil {
			row, err := j.L.Next(ctx)
			if err != nil {
				return nil, err
			}
			j.cur = row
			j.rpos = 0
		}
		for j.rpos < len(j.right) {
			r := j.right[j.rpos]
			j.rpos++
			joined := append(append(access.Row{}, j.cur...), r...)
			if j.Pred == nil {
				return joined, nil
			}
			ok, err := Truthy(j.Pred, joined, cols)
			if err != nil {
				return nil, err
			}
			if ok {
				return joined, nil
			}
		}
		j.cur = nil
	}
}

// Close implements Operator.
func (j *NestedLoopJoin) Close() error {
	j.right = nil
	lerr := j.L.Close()
	rerr := j.R.Close()
	if lerr != nil {
		return lerr
	}
	return rerr
}

// HashJoin equi-joins two inputs on LKey = RKey, building a hash table
// over the right side.
type HashJoin struct {
	L, R       Operator
	LKey, RKey Expr

	table   map[string][]access.Row
	cur     access.Row
	matches []access.Row
	mpos    int
	cols    []string
}

// Columns implements Operator.
func (j *HashJoin) Columns() []string {
	if j.cols == nil {
		j.cols = append(append([]string(nil), j.L.Columns()...), j.R.Columns()...)
	}
	return j.cols
}

// Open implements Operator: build phase over the right input.
func (j *HashJoin) Open(ctx context.Context) error {
	if err := j.L.Open(ctx); err != nil {
		return err
	}
	if err := j.R.Open(ctx); err != nil {
		return err
	}
	j.table = make(map[string][]access.Row)
	rcols := j.R.Columns()
	for {
		row, err := j.R.Next(ctx)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		v, err := j.RKey.Eval(row, rcols)
		if err != nil {
			return err
		}
		if v.IsNull() {
			continue // NULL keys never join
		}
		k := string(access.EncodeKey(v))
		j.table[k] = append(j.table[k], row)
	}
	j.cur = nil
	j.matches = nil
	j.mpos = 0
	return nil
}

// Next implements Operator: probe phase over the left input.
func (j *HashJoin) Next(ctx context.Context) (access.Row, error) {
	lcols := j.L.Columns()
	for {
		if j.mpos < len(j.matches) {
			r := j.matches[j.mpos]
			j.mpos++
			return append(append(access.Row{}, j.cur...), r...), nil
		}
		row, err := j.L.Next(ctx)
		if err != nil {
			return nil, err
		}
		v, err := j.LKey.Eval(row, lcols)
		if err != nil {
			return nil, err
		}
		if v.IsNull() {
			continue
		}
		j.cur = row
		j.matches = j.table[string(access.EncodeKey(v))]
		j.mpos = 0
	}
}

// Close implements Operator.
func (j *HashJoin) Close() error {
	j.table = nil
	lerr := j.L.Close()
	rerr := j.R.Close()
	if lerr != nil {
		return lerr
	}
	return rerr
}

// MergeJoin equi-joins two inputs that are already sorted on their join
// keys (the planner inserts Sort operators beneath it).
type MergeJoin struct {
	L, R       Operator
	LKey, RKey Expr

	lrows, rrows []access.Row
	li, ri       int
	group        []access.Row // current right group
	gpos         int
	cur          access.Row
	cols         []string
}

// Columns implements Operator.
func (j *MergeJoin) Columns() []string {
	if j.cols == nil {
		j.cols = append(append([]string(nil), j.L.Columns()...), j.R.Columns()...)
	}
	return j.cols
}

// Open implements Operator: both inputs are materialised (the paper's
// architecture trades peak performance for composability; this keeps
// the algorithm textbook-simple).
func (j *MergeJoin) Open(ctx context.Context) error {
	drain := func(op Operator) ([]access.Row, error) {
		if err := op.Open(ctx); err != nil {
			return nil, err
		}
		var out []access.Row
		for {
			row, err := op.Next(ctx)
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			if err != nil {
				return nil, err
			}
			out = append(out, row)
		}
	}
	var err error
	if j.lrows, err = drain(j.L); err != nil {
		return err
	}
	if j.rrows, err = drain(j.R); err != nil {
		return err
	}
	j.li, j.ri, j.gpos = 0, 0, 0
	j.group = nil
	j.cur = nil
	return nil
}

// Next implements Operator.
func (j *MergeJoin) Next(ctx context.Context) (access.Row, error) {
	lcols, rcols := j.L.Columns(), j.R.Columns()
	for {
		if j.cur != nil && j.gpos < len(j.group) {
			r := j.group[j.gpos]
			j.gpos++
			return append(append(access.Row{}, j.cur...), r...), nil
		}
		j.cur = nil
		if j.li >= len(j.lrows) {
			return nil, io.EOF
		}
		lrow := j.lrows[j.li]
		lv, err := j.LKey.Eval(lrow, lcols)
		if err != nil {
			return nil, err
		}
		if lv.IsNull() {
			j.li++
			continue
		}
		// Advance right side to lv.
		for j.ri < len(j.rrows) {
			rv, err := j.RKey.Eval(j.rrows[j.ri], rcols)
			if err != nil {
				return nil, err
			}
			if rv.IsNull() {
				j.ri++
				continue
			}
			c, err := access.Compare(rv, lv)
			if err != nil {
				return nil, err
			}
			if c < 0 {
				j.ri++
				continue
			}
			break
		}
		// Collect the right group equal to lv.
		j.group = j.group[:0]
		for k := j.ri; k < len(j.rrows); k++ {
			rv, err := j.RKey.Eval(j.rrows[k], rcols)
			if err != nil {
				return nil, err
			}
			c, err := access.Compare(rv, lv)
			if err != nil {
				return nil, err
			}
			if c != 0 {
				break
			}
			j.group = append(j.group, j.rrows[k])
		}
		j.li++
		if len(j.group) == 0 {
			continue
		}
		j.cur = lrow
		j.gpos = 0
	}
}

// Close implements Operator.
func (j *MergeJoin) Close() error {
	j.lrows, j.rrows, j.group = nil, nil, nil
	lerr := j.L.Close()
	rerr := j.R.Close()
	if lerr != nil {
		return lerr
	}
	return rerr
}

// AggFunc names an aggregate function.
type AggFunc string

// Aggregate functions.
const (
	AggCount AggFunc = "COUNT"
	AggSum   AggFunc = "SUM"
	AggAvg   AggFunc = "AVG"
	AggMin   AggFunc = "MIN"
	AggMax   AggFunc = "MAX"
)

// AggSpec is one aggregate output: Func over Arg (nil Arg = COUNT(*)).
type AggSpec struct {
	Func AggFunc
	Arg  Expr
	As   string
}

// HashAggregate groups rows by the GroupBy expressions and computes
// aggregates per group. Output columns: group expressions then
// aggregates.
type HashAggregate struct {
	In      Operator
	GroupBy []Expr
	GroupAs []string
	Aggs    []AggSpec

	out  []access.Row
	pos  int
	cols []string
}

type aggState struct {
	groupVals access.Row
	count     int64
	counts    []int64 // non-null per agg
	sums      []float64
	intSums   []int64
	intOnly   []bool
	mins      []access.Value
	maxs      []access.Value
}

// Columns implements Operator.
func (a *HashAggregate) Columns() []string {
	if a.cols == nil {
		a.cols = append([]string(nil), a.GroupAs...)
		for _, g := range a.Aggs {
			a.cols = append(a.cols, g.As)
		}
	}
	return a.cols
}

// Open implements Operator: the input is fully aggregated eagerly.
func (a *HashAggregate) Open(ctx context.Context) error {
	if err := a.In.Open(ctx); err != nil {
		return err
	}
	cols := a.In.Columns()
	groups := make(map[string]*aggState)
	var order []string
	for {
		row, err := a.In.Next(ctx)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		gvals := make(access.Row, len(a.GroupBy))
		var keyParts []string
		for i, g := range a.GroupBy {
			v, err := g.Eval(row, cols)
			if err != nil {
				return err
			}
			gvals[i] = v
			keyParts = append(keyParts, string(access.EncodeKey(v)))
		}
		key := strings.Join(keyParts, "\x1f")
		st := groups[key]
		if st == nil {
			st = &aggState{
				groupVals: gvals,
				counts:    make([]int64, len(a.Aggs)),
				sums:      make([]float64, len(a.Aggs)),
				intSums:   make([]int64, len(a.Aggs)),
				intOnly:   make([]bool, len(a.Aggs)),
				mins:      make([]access.Value, len(a.Aggs)),
				maxs:      make([]access.Value, len(a.Aggs)),
			}
			for i := range st.intOnly {
				st.intOnly[i] = true
				st.mins[i] = access.Null()
				st.maxs[i] = access.Null()
			}
			groups[key] = st
			order = append(order, key)
		}
		st.count++
		for i, spec := range a.Aggs {
			if spec.Arg == nil {
				continue // COUNT(*) uses st.count
			}
			v, err := spec.Arg.Eval(row, cols)
			if err != nil {
				return err
			}
			if v.IsNull() {
				continue
			}
			st.counts[i]++
			if f, ok := v.AsFloat(); ok {
				st.sums[i] += f
				if v.Type == access.TypeInt {
					st.intSums[i] += v.Int
				} else {
					st.intOnly[i] = false
				}
			}
			if st.mins[i].IsNull() {
				st.mins[i] = v
			} else if c, err := access.Compare(v, st.mins[i]); err == nil && c < 0 {
				st.mins[i] = v
			}
			if st.maxs[i].IsNull() {
				st.maxs[i] = v
			} else if c, err := access.Compare(v, st.maxs[i]); err == nil && c > 0 {
				st.maxs[i] = v
			}
		}
	}
	// Global aggregate over empty input still yields one row.
	if len(groups) == 0 && len(a.GroupBy) == 0 {
		st := &aggState{
			counts:  make([]int64, len(a.Aggs)),
			sums:    make([]float64, len(a.Aggs)),
			intSums: make([]int64, len(a.Aggs)),
			intOnly: make([]bool, len(a.Aggs)),
			mins:    make([]access.Value, len(a.Aggs)),
			maxs:    make([]access.Value, len(a.Aggs)),
		}
		for i := range st.intOnly {
			st.intOnly[i] = true
			st.mins[i] = access.Null()
			st.maxs[i] = access.Null()
		}
		groups[""] = st
		order = append(order, "")
	}
	a.out = a.out[:0]
	a.pos = 0
	for _, key := range order {
		st := groups[key]
		row := append(access.Row{}, st.groupVals...)
		for i, spec := range a.Aggs {
			switch spec.Func {
			case AggCount:
				if spec.Arg == nil {
					row = append(row, access.NewInt(st.count))
				} else {
					row = append(row, access.NewInt(st.counts[i]))
				}
			case AggSum:
				if st.counts[i] == 0 {
					row = append(row, access.Null())
				} else if st.intOnly[i] {
					row = append(row, access.NewInt(st.intSums[i]))
				} else {
					row = append(row, access.NewFloat(st.sums[i]))
				}
			case AggAvg:
				if st.counts[i] == 0 {
					row = append(row, access.Null())
				} else {
					row = append(row, access.NewFloat(st.sums[i]/float64(st.counts[i])))
				}
			case AggMin:
				row = append(row, st.mins[i])
			case AggMax:
				row = append(row, st.maxs[i])
			default:
				return fmt.Errorf("%w: aggregate %q", ErrBadExpr, spec.Func)
			}
		}
		a.out = append(a.out, row)
	}
	return nil
}

// Next implements Operator.
func (a *HashAggregate) Next(ctx context.Context) (access.Row, error) {
	if a.pos >= len(a.out) {
		return nil, io.EOF
	}
	r := a.out[a.pos]
	a.pos++
	return r, nil
}

// Close implements Operator.
func (a *HashAggregate) Close() error {
	a.out = nil
	return a.In.Close()
}

// Collect drains an operator into a slice (convenience for callers and
// tests).
func Collect(ctx context.Context, op Operator) ([]access.Row, error) {
	if err := op.Open(ctx); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []access.Row
	for {
		row, err := op.Next(ctx)
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
}
