package wal

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/storage"
)

// RecoveryStats reports what recovery did.
type RecoveryStats struct {
	Scanned   int
	Redone    int
	Undone    int
	Rebuilt   int // pages reconstructed from scratch (torn or lost writes)
	Committed int
	InFlight  int // transactions rolled back
}

// pageExtender is implemented by stores (the disk manager) that can
// extend themselves so a page id becomes valid. Recovery needs it when
// a crash lost the allocation metadata for pages the WAL references.
type pageExtender interface {
	EnsureAllocated(storage.PageID) error
}

// readPageForRecovery reads a page, tolerating crash damage: a page id
// beyond the store's allocation metadata extends the store, and a torn
// or never-completed page write (checksum mismatch, short device) is
// returned as a zeroed page. The zeroed page is sound because the
// engine logs a full page image the first time it touches any page
// (page LSN 0), so replaying the page's records in log order rebuilds
// it completely — but only while the log's full history is being
// replayed: once a sharp checkpoint truncates the scan, records before
// it are invisible, so canRebuild is false and torn pages fail loudly
// instead of being silently rebuilt from a partial history.
func readPageForRecovery(store storage.PageStore, id storage.PageID, buf []byte, canRebuild bool, st *RecoveryStats) error {
	err := store.ReadPage(id, buf)
	if err == nil {
		return nil
	}
	if errors.Is(err, storage.ErrOutOfRange) {
		if ext, ok := store.(pageExtender); ok {
			if eerr := ext.EnsureAllocated(id); eerr != nil {
				return eerr
			}
			if err = store.ReadPage(id, buf); err == nil {
				return nil
			}
		}
	}
	if canRebuild && (errors.Is(err, storage.ErrChecksum) || errors.Is(err, io.EOF)) {
		for i := range buf {
			buf[i] = 0
		}
		st.Rebuilt++
		return nil
	}
	return err
}

// Recover brings a page store to a consistent state after a crash:
//
//  1. Analysis: a full log scan classifies transactions as committed,
//     aborted, or in-flight, and collects update records.
//  2. Redo: updates of committed AND cleanly-aborted transactions are
//     reapplied in log order wherever the page LSN shows the write
//     never reached the page (page.LSN < record.LSN). An aborted
//     transaction is safe to replay because the transaction manager
//     appends RecAbort only after logging a compensation record for
//     every undone update — replaying updates then compensations in
//     order nets out to the rollback, without re-applying stale before
//     images over bytes later transactions may have rewritten.
//  3. Undo: updates of in-flight transactions (no commit or abort
//     record) are reverted in reverse log order using before images.
//
// Pages touched by undo/redo are stamped with the record's LSN so that
// recovery is idempotent: running it twice is a no-op.
func Recover(l *Log, store storage.PageStore) (RecoveryStats, error) {
	var st RecoveryStats
	status := make(map[uint64]RecType) // txn -> final state seen
	var updates []*Record
	// Sharp checkpoints guarantee no in-flight transactions and clean
	// pages at the checkpoint, so analysis starts there.
	err := l.Iterate(l.LastCheckpoint(), func(rec *Record) error {
		st.Scanned++
		switch rec.Type {
		case RecBegin:
			status[rec.Txn] = RecBegin
		case RecCommit:
			status[rec.Txn] = RecCommit
		case RecAbort:
			status[rec.Txn] = RecAbort
		case RecUpdate:
			updates = append(updates, rec)
			if _, ok := status[rec.Txn]; !ok {
				status[rec.Txn] = RecBegin
			}
		}
		return nil
	})
	if err != nil {
		return st, fmt.Errorf("wal: analysis: %w", err)
	}
	for _, s := range status {
		switch s {
		case RecCommit:
			st.Committed++
		case RecBegin:
			st.InFlight++
		}
	}

	// Torn pages can only be rebuilt from zeros when the whole log
	// history is in the replayed range (no checkpoint truncated it).
	canRebuild := l.LastCheckpoint() == ZeroLSN

	buf := make([]byte, storage.PageSize)
	apply := func(rec *Record, image []byte) error {
		if err := readPageForRecovery(store, rec.PageID, buf, canRebuild, &st); err != nil {
			return err
		}
		p := storage.WrapPage(rec.PageID, buf)
		copy(p.Data[rec.Offset:int(rec.Offset)+len(image)], image)
		p.SetLSN(uint64(rec.LSN))
		return store.WritePage(rec.PageID, p.Data)
	}

	// Redo committed and cleanly-aborted work in log order.
	for _, rec := range updates {
		if s := status[rec.Txn]; s != RecCommit && s != RecAbort {
			continue
		}
		if err := readPageForRecovery(store, rec.PageID, buf, canRebuild, &st); err != nil {
			return st, fmt.Errorf("wal: redo read page %d: %w", rec.PageID, err)
		}
		p := storage.WrapPage(rec.PageID, buf)
		if p.LSN() >= uint64(rec.LSN) {
			continue // already on the page
		}
		copy(p.Data[rec.Offset:int(rec.Offset)+len(rec.After)], rec.After)
		p.SetLSN(uint64(rec.LSN))
		if err := store.WritePage(rec.PageID, p.Data); err != nil {
			return st, fmt.Errorf("wal: redo: %w", err)
		}
		st.Redone++
	}

	// Undo in-flight losers in reverse log order. Compensation records
	// of a crashed (incomplete) abort carry empty before images, so
	// re-undoing them here is a no-op.
	losers := updates[:0:0]
	for _, rec := range updates {
		if status[rec.Txn] == RecBegin {
			losers = append(losers, rec)
		}
	}
	sort.Slice(losers, func(i, j int) bool { return losers[i].LSN > losers[j].LSN })
	for _, rec := range losers {
		if err := apply(rec, rec.Before); err != nil {
			return st, fmt.Errorf("wal: undo: %w", err)
		}
		st.Undone++
	}
	if err := store.Sync(); err != nil {
		return st, err
	}
	return st, nil
}
