package core

import (
	"context"
	"errors"
	"fmt"
)

// Adaptor-related errors.
var (
	// ErrNoAdaptation is returned when no adaptor can be generated
	// between two contracts.
	ErrNoAdaptation = errors.New("core: no adaptation possible")
)

// OpMapping maps one required operation onto a target operation,
// optionally converting request and response payloads with
// transformation schemas from the repository.
type OpMapping struct {
	// TargetOp is the operation invoked on the adapted service.
	TargetOp string
	// MapIn converts the caller's request into the target's request
	// type; nil means identity.
	MapIn TransformFunc
	// MapOut converts the target's response into the caller's expected
	// response type; nil means identity.
	MapOut TransformFunc
}

// Adaptor is an adaptor service (Section 3.1, 3.6): it mediates between
// a required interface and a provider with a different interface or
// protocol, so that "the architecture can adapt the service interfaces
// to meet the new requirements". An Adaptor is itself a Service and can
// be registered under the required interface, making the adaptation
// transparent to callers.
type Adaptor struct {
	name     string
	required *Contract
	target   Invoker
	mappings map[string]OpMapping
}

// NewAdaptor builds an adaptor exposing the required contract on top of
// target, using explicit operation mappings (the "manually created by
// the developer" path). Every operation of required must be mapped.
func NewAdaptor(name string, required *Contract, target Invoker, mappings map[string]OpMapping) (*Adaptor, error) {
	for _, op := range required.Operations {
		if _, ok := mappings[op.Name]; !ok {
			return nil, fmt.Errorf("%w: operation %q unmapped", ErrNoAdaptation, op.Name)
		}
	}
	return &Adaptor{name: name, required: required, target: target, mappings: mappings}, nil
}

// GenerateAdaptor automatically derives an adaptor from the required
// contract to a provider's contract (the "automatically generated"
// path of Section 3.1). For each required operation it finds a provided
// operation with the same semantic tag (falling back to the same name),
// then looks up payload transformations in the repository. It fails
// with ErrNoAdaptation when any operation cannot be bridged.
func GenerateAdaptor(name string, required, provided *Contract, target Invoker, repo *Repository) (*Adaptor, error) {
	if required == nil || provided == nil {
		return nil, fmt.Errorf("%w: missing contract", ErrNoAdaptation)
	}
	mappings := make(map[string]OpMapping, len(required.Operations))
	for _, want := range required.Operations {
		got, ok := provided.OpBySemantic(want.Semantic)
		if !ok {
			got, ok = provided.Op(want.Name)
		}
		if !ok {
			return nil, fmt.Errorf("%w: no provided operation for %s.%s (semantic %q)",
				ErrNoAdaptation, required.Interface, want.Name, want.Semantic)
		}
		mapIn, ok := repo.Transform(want.In, got.In)
		if !ok {
			return nil, fmt.Errorf("%w: no transformation schema %s -> %s for operation %s",
				ErrNoAdaptation, want.In, got.In, want.Name)
		}
		mapOut, ok := repo.Transform(got.Out, want.Out)
		if !ok {
			return nil, fmt.Errorf("%w: no transformation schema %s -> %s for operation %s result",
				ErrNoAdaptation, got.Out, want.Out, want.Name)
		}
		mappings[want.Name] = OpMapping{TargetOp: got.Name, MapIn: mapIn, MapOut: mapOut}
	}
	return &Adaptor{name: name, required: required, target: target, mappings: mappings}, nil
}

// Name implements Service.
func (a *Adaptor) Name() string { return a.name }

// Contract implements Service: an adaptor presents the required
// contract, hiding the adapted provider entirely.
func (a *Adaptor) Contract() *Contract { return a.required }

// State implements Service. Adaptors are stateless pass-throughs and
// are always running once created.
func (a *Adaptor) State() State { return StateRunning }

// Start implements Service (no-op).
func (a *Adaptor) Start(ctx context.Context) error { return nil }

// Stop implements Service (no-op).
func (a *Adaptor) Stop(ctx context.Context) error { return nil }

// Invoke implements Invoker: it maps the operation and payloads and
// forwards to the adapted provider.
func (a *Adaptor) Invoke(ctx context.Context, op string, req any) (any, error) {
	m, ok := a.mappings[op]
	if !ok {
		return nil, fmt.Errorf("adaptor %s: %w: %q", a.name, ErrUnknownOp, op)
	}
	in := req
	var err error
	if m.MapIn != nil {
		in, err = m.MapIn(req)
		if err != nil {
			return nil, fmt.Errorf("adaptor %s: mapping request for %s: %w", a.name, op, err)
		}
	}
	out, err := a.target.Invoke(ctx, m.TargetOp, in)
	if err != nil {
		return nil, err
	}
	if m.MapOut != nil {
		out, err = m.MapOut(out)
		if err != nil {
			return nil, fmt.Errorf("adaptor %s: mapping response for %s: %w", a.name, op, err)
		}
	}
	return out, nil
}

// MappedOps returns the required-op -> target-op mapping, for
// diagnostics and tests.
func (a *Adaptor) MappedOps() map[string]string {
	out := make(map[string]string, len(a.mappings))
	for k, v := range a.mappings {
		out[k] = v.TargetOp
	}
	return out
}
