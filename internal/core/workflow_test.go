package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestWorkflowRun(t *testing.T) {
	ctx := context.Background()
	r, _ := registryWith(t, map[string]string{
		"s1": "test.Stage1",
		"s2": "test.Stage2",
	})
	w := &Workflow{
		Name: "pipe", Task: "echo-twice",
		Steps: []Step{
			{Interface: "test.Stage1", Op: "echo"},
			{Interface: "test.Stage2", Op: "echo"},
		},
	}
	if !w.Runnable(r) {
		t.Fatal("workflow should be runnable")
	}
	out, err := w.Run(ctx, r, nil, "x")
	if err != nil {
		t.Fatal(err)
	}
	if out != "s2:s1:x" {
		t.Fatalf("out = %v", out)
	}
}

func TestWorkflowTransform(t *testing.T) {
	ctx := context.Background()
	r, _ := registryWith(t, map[string]string{"s1": "test.Stage1"})
	w := &Workflow{
		Name: "up", Task: "upper",
		Steps: []Step{{
			Interface: "test.Stage1", Op: "echo",
			Transform: func(v any) (any, error) { return strings.ToUpper(v.(string)), nil },
		}},
	}
	out, err := w.Run(ctx, r, nil, "x")
	if err != nil || out != "s1:X" {
		t.Fatalf("out = %v, %v", out, err)
	}
	// Transform errors surface with step context.
	w.Steps[0].Transform = func(v any) (any, error) { return nil, errors.New("bad input") }
	if _, err := w.Run(ctx, r, nil, "x"); err == nil || !strings.Contains(err.Error(), "step 0") {
		t.Fatalf("err = %v", err)
	}
}

func TestWorkflowMissingProvider(t *testing.T) {
	ctx := context.Background()
	r, _ := registryWith(t, map[string]string{"s1": "test.Stage1"})
	w := &Workflow{
		Name: "broken", Task: "t",
		Steps: []Step{
			{Interface: "test.Stage1", Op: "echo"},
			{Interface: "test.Gone", Op: "echo"},
		},
	}
	if w.Runnable(r) {
		t.Fatal("workflow with missing provider must not be runnable")
	}
	if _, err := w.Run(ctx, r, nil, "x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestWorkflowSetPickPriorityAndFallback(t *testing.T) {
	ctx := context.Background()
	r, _ := registryWith(t, map[string]string{"s1": "test.Stage1", "alt": "test.Alt"})
	ws := NewWorkflowSet()
	ws.Add(&Workflow{
		Name: "preferred", Task: "t", Priority: 0,
		Steps: []Step{{Interface: "test.Gone", Op: "echo"}},
	})
	ws.Add(&Workflow{
		Name: "fallback", Task: "t", Priority: 1,
		Steps: []Step{{Interface: "test.Alt", Op: "echo"}},
	})
	w, err := ws.Pick("t", r)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "fallback" {
		t.Fatalf("picked %s; preferred is not runnable", w.Name)
	}
	out, err := ws.Run(ctx, "t", r, nil, "x")
	if err != nil || out != "alt:x" {
		t.Fatalf("Run = %v, %v", out, err)
	}
	// Once the preferred interface appears, it wins by priority.
	gone := newEchoService(t, "gone", "test.Gone")
	if err := r.RegisterService(gone, nil); err != nil {
		t.Fatal(err)
	}
	w, _ = ws.Pick("t", r)
	if w.Name != "preferred" {
		t.Fatalf("picked %s, want preferred", w.Name)
	}
	if _, err := ws.Pick("nosuch", r); !errors.Is(err, ErrNoWorkflow) {
		t.Fatalf("err = %v", err)
	}
	if got := ws.Tasks(); len(got) != 1 || got[0] != "t" {
		t.Fatalf("Tasks = %v", got)
	}
	if got := len(ws.Alternates("t")); got != 2 {
		t.Fatalf("Alternates = %d", got)
	}
}

func TestEventBusPubSub(t *testing.T) {
	bus := NewEventBus(8)
	ch, cancel := bus.SubscribeTypes(4, EventReconfigured)
	defer cancel()
	bus.Publish(Event{Type: EventServiceFailed, Subject: "ignored"})
	bus.Publish(Event{Type: EventReconfigured, Subject: "arch"})
	ev := <-ch
	if ev.Type != EventReconfigured || ev.Subject != "arch" {
		t.Fatalf("ev = %+v", ev)
	}
	if ev.Time.IsZero() {
		t.Fatal("publish must stamp time")
	}
	hist := bus.History()
	if len(hist) != 2 {
		t.Fatalf("history = %d", len(hist))
	}
}

func TestEventBusSlowSubscriberDoesNotBlock(t *testing.T) {
	bus := NewEventBus(0)
	ch, cancel := bus.Subscribe(2, nil)
	defer cancel()
	// Publish more than the buffer; publisher must not block and the
	// newest events win.
	for i := 0; i < 10; i++ {
		bus.Publish(Event{Type: EventReconfigured, Detail: string(rune('0' + i))})
	}
	drained := 0
	for {
		select {
		case <-ch:
			drained++
			continue
		default:
		}
		break
	}
	if drained == 0 || drained > 2 {
		t.Fatalf("drained = %d, want 1..2", drained)
	}
}

func TestEventBusHistoryBound(t *testing.T) {
	bus := NewEventBus(4)
	for i := 0; i < 20; i++ {
		bus.Publish(Event{Type: EventReconfigured})
	}
	if got := len(bus.History()); got != 4 {
		t.Fatalf("history = %d, want 4", got)
	}
}

func TestEventBusCancelIdempotent(t *testing.T) {
	bus := NewEventBus(0)
	_, cancel := bus.Subscribe(1, nil)
	cancel()
	cancel() // must not panic
}

func TestPropertiesTypedAccess(t *testing.T) {
	p := NewProperties()
	p.SetInt("i", 42)
	p.SetFloat("f", 2.5)
	p.SetBool("b", true)
	p.Set("s", "str")
	if p.Int("i", 0) != 42 || p.Float("f", 0) != 2.5 || !p.Bool("b", false) || p.String("s", "") != "str" {
		t.Fatal("typed getters broken")
	}
	if p.Int("missing", 7) != 7 || p.Float("missing", 1.5) != 1.5 || p.Bool("missing", true) != true {
		t.Fatal("defaults broken")
	}
	p.Set("i", "not-a-number")
	if p.Int("i", 9) != 9 {
		t.Fatal("malformed value must fall back to default")
	}
	if p.Len() != 4 {
		t.Fatalf("Len = %d", p.Len())
	}
	p.Delete("s")
	if _, ok := p.Get("s"); ok {
		t.Fatal("delete failed")
	}
	keys := p.Keys()
	if len(keys) != 3 || keys[0] != "b" {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestPropertiesSubscribe(t *testing.T) {
	p := NewProperties()
	var events []string
	p.Subscribe(func(k, v string) { events = append(events, k+"="+v) })
	p.Set("a", "1")
	p.Delete("a")
	if len(events) != 2 || events[0] != "a=1" || events[1] != "a=" {
		t.Fatalf("events = %v", events)
	}
}

func TestPropertiesAssertions(t *testing.T) {
	p := PropertiesFrom(map[string]string{"mem": "128", "mode": "embedded"})
	cases := []struct {
		a    Assertion
		want bool
	}{
		{Assertion{"mem", ">=", "64"}, true},
		{Assertion{"mem", "<", "64"}, false},
		{Assertion{"mem", "==", "128"}, true},
		{Assertion{"mode", "==", "embedded"}, true},
		{Assertion{"mode", "!=", "full"}, true},
		{Assertion{"missing", "==", "1"}, false},
	}
	for _, c := range cases {
		got, err := p.EvalAssertion(c.a)
		if err != nil {
			t.Fatalf("%+v: %v", c.a, err)
		}
		if got != c.want {
			t.Errorf("%+v = %v, want %v", c.a, got, c.want)
		}
	}
	if _, err := p.EvalAssertion(Assertion{"mem", "~", "1"}); err == nil {
		t.Fatal("unknown comparator must error")
	}
	if a, ok := p.CheckPreconditions(Policy{Preconditions: []Assertion{
		{Property: "mem", Op: ">=", Value: "64"},
		{Property: "mem", Op: ">=", Value: "256"},
	}}); ok || a.Value != "256" {
		t.Fatalf("CheckPreconditions = %+v, %v", a, ok)
	}
}

func TestPropertiesCloneAndMerge(t *testing.T) {
	p := PropertiesFrom(map[string]string{"a": "1"})
	cp := p.Clone()
	cp.Set("a", "2")
	if p.String("a", "") != "1" {
		t.Fatal("clone must be independent")
	}
	q := PropertiesFrom(map[string]string{"b": "3"})
	p.Merge(q)
	if p.String("b", "") != "3" {
		t.Fatal("merge failed")
	}
	p.Merge(nil) // must not panic
	var nilP *Properties
	if nilP.Clone().Len() != 0 {
		t.Fatal("nil clone must be empty")
	}
}

func TestBindings(t *testing.T) {
	ctx := context.Background()
	s := newEchoService(t, "svc", "test.Echo")
	local := BindService(s, LocalBinding{})
	out, err := local.Invoke(ctx, "echo", "x")
	if err != nil || out != "svc:x" {
		t.Fatalf("local binding: %v, %v", out, err)
	}
	if (LocalBinding{}).Protocol() != "local" {
		t.Fatal("protocol name")
	}
	delayed := BindService(s, DelayBinding{Delay: 5 * 1e6}) // 5ms
	start := nowNS()
	if _, err := delayed.Invoke(ctx, "echo", "x"); err != nil {
		t.Fatal(err)
	}
	if nowNS()-start < 5*1e6 {
		t.Fatal("delay binding must add latency")
	}
	// Context cancellation interrupts the delay.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := delayed.Invoke(cctx, "echo", "x"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func nowNS() int64 { return time.Now().UnixNano() }
