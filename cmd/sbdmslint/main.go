// Command sbdmslint runs the engine-invariant analyzer suite
// (internal/lint) over package patterns and reports violations in the
// usual path:line:col format. It exits 1 when any diagnostic survives
// suppression, so `make lint` and CI fail on a violated invariant.
//
// Usage:
//
//	sbdmslint [-analyzers] [packages]
//
// With no patterns it checks ./... from the current directory. The
// suite: latchorder, walbeforemutate, pinpaired, errcheckdurability,
// ctxflow — see INVARIANTS.md for the rule behind each. Findings are
// suppressed by a `//lint:ignore <analyzer> <justification>` comment on
// the flagged line or the line above; the justification is mandatory
// and its absence is itself reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	listOnly := flag.Bool("analyzers", false, "list the analyzers in the suite and exit")
	flag.Parse()

	if *listOnly {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-20s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader := lint.NewLoader(cwd)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	diags, err := lint.Run(pkgs, lint.Analyzers())
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		p := loader.Fset().Position(d.Pos)
		name := p.Filename
		if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", name, p.Line, p.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "sbdmslint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sbdmslint:", err)
	os.Exit(2)
}
