// Golden package for the ctxflow analyzer. Its synthetic import path
// lives under internal/, so rule 3 (no fresh contexts in engine code)
// applies exactly as it does to the real engine packages.
package ctxflow

import (
	"context"

	"repro/internal/txn"
)

// mintsDespiteParam: rule 1 — a function that already receives a
// context must thread it, not mint a fresh one.
func mintsDespiteParam(ctx context.Context, lm *txn.LockManager) error {
	bg := context.Background() // want `context\.Background\(\) inside a function that already receives a context\.Context`
	return lm.Acquire(bg, 1, "r", txn.Shared)
}

// todoDespiteParam: context.TODO is the same evasion.
func todoDespiteParam(ctx context.Context) context.Context {
	return context.TODO() // want `context\.TODO\(\) inside a function that already receives a context\.Context`
}

// freshToBlockingCall: rule 2 fires on the argument position, rule 3
// on the call itself — both land on this line.
func freshToBlockingCall(lm *txn.LockManager) error {
	return lm.Acquire(context.Background(), 7, "res", txn.Exclusive) // want `context\.Background\(\) in engine code under internal/` `context\.Background\(\) passed to blocking Acquire`
}

// packageLevelFresh: rule 3 reaches package-level initialisers too.
var packageLevelFresh = context.Background() // want `context\.Background\(\) in engine code under internal/`

// nestedLiteral: a literal with its own ctx parameter is a context
// boundary (rule 1 inside), and the argument minting the context for
// it is engine code minting a fresh context (rule 3 outside).
func nestedLiteral() {
	go func(ctx context.Context) {
		_ = context.Background() // want `context\.Background\(\) inside a function that already receives a context\.Context`
	}(context.Background()) // want `context\.Background\(\) in engine code under internal/`
}

// threadsProperly: the sanctioned shape produces nothing.
func threadsProperly(ctx context.Context, lm *txn.LockManager, tx *txn.Txn) error {
	if err := lm.Acquire(ctx, 1, "r", txn.Shared); err != nil {
		return err
	}
	return tx.Lock(ctx, "k", txn.Exclusive)
}

// suppressedDaemon: genuine background daemons carry a justified
// suppression instead of a parameter.
func suppressedDaemon(stop chan struct{}) {
	//lint:ignore ctxflow the probe loop is a background daemon with no caller; the stop channel cancels it
	ctx := context.Background()
	select {
	case <-stop:
	case <-ctx.Done():
	}
}
