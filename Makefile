GO ?= go

# Concurrency-heavy packages that must stay clean under the race detector.
RACE_PKGS = ./internal/access/... ./internal/buffer/... ./internal/core/... \
            ./internal/index/... ./internal/storage/... ./internal/txn/... \
            ./internal/wal/...

.PHONY: build test race bench bench-snapshot soak-short crash checkpoint-crash stress isolation mvcc cluster cluster-short vet lint all

# Run a race-detector test selection at a GOMAXPROCS matrix:
# single-proc forces the cooperative interleavings the scheduler
# otherwise hides, multi-proc exercises real parallelism. Usage:
# $(call gomaxprocsMatrix,$(RUN_REGEX),$(PKGS)).
define gomaxprocsMatrix
	GOMAXPROCS=1 $(GO) test -race -count=1 -run $(1) $(2)
	GOMAXPROCS=4 $(GO) test -race -count=1 -run $(1) $(2)
endef

all: vet lint build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -run xxx -bench 'BufferContention|WALCommit' -benchtime 0.5s .

# Perf flywheel: regenerate the committed scan-interference evidence.
# G6 (concurrency scaling) and G7 (locked-scan tax vs MVCC snapshot
# scans) each rewrite their BENCH_<EXP>.json snapshot in the repo
# root; diff them against the committed copies to see a change's
# effect on writer-p99 interference.
bench-snapshot:
	$(GO) run ./cmd/sbench -exp g6 -json .
	$(GO) run ./cmd/sbench -exp g7 -json . -keys 8000
	$(GO) run ./cmd/sbench -exp g9 -json . -keys 4000 -ops 8000 -soak-writers 8
	$(GO) run ./cmd/sbench -exp g10 -json . -keys 1000000 -g10-put-keys 20000
	$(GO) run ./cmd/sbench -exp g11 -json . -keys 2000 -ops 20000

# Seconds-scale G9 write-path soak for CI: every gate variant (append
# gap-lock downgrade, optimistic descent, background checkpoint flush)
# runs its append-heavy and uniform-mixed phases over a file-backed
# engine with checkpoints and vacuum throughout; torn-scan and
# isolation-anomaly counters must be zero. No JSON is written. A
# seconds-scale G10 bulk-ingest row (Import vs PutBatch vs Put over a
# file-backed engine, loads verified by count and sampled reads) rides
# along.
soak-short:
	$(GO) run ./cmd/sbench -exp g9 -json '' -keys 500 -ops 1500 -soak-writers 4
	$(GO) run ./cmd/sbench -exp g10 -json '' -keys 20000 -g10-put-keys 1500

# Crash-recovery suite: kill -9, dropped write-backs, torn page writes,
# batched transactions, and the mid-import sweeps (data-device, torn,
# and log-device crashes inside a bulk load: recovery must land on all
# imported keys or none — TestKVCrashRecoveryMidImport* matches the
# pattern below) — run under the race detector.
crash:
	$(GO) test -race -run 'TestKVCrashRecovery|TestAbortThenCrashRecovery|TestEngineCrashRecovery|TestCrashMidVacuum' \
		-count=1 . ./internal/txn/... ./internal/sql/...

# Checkpoint-aware crash suite: kill -9 mid-fuzzy-checkpoint, torn page
# after segment truncation (full-page-write rebuild), crash during
# segment rollover, bounded-WAL proof, free-list reclamation, and the
# background-flusher windows (cold write-back with no covering
# checkpoint record; async checkpoint record without completion).
checkpoint-crash:
	$(GO) test -race -run 'TestKVCrashRecoveryMidFuzzyCheckpoint|TestKVCrashRecoveryTornPageAfterTruncation|TestKVCrashRecoveryMidSegmentRollover|TestKVCrashRecoveryBackgroundWriteback|TestKVCrashRecoveryAsyncCheckpoint|TestKVWALBoundedBySegmentTruncation|TestFreedPagesReclaimed|TestFuzzyCheckpoint' \
		-count=1 . ./internal/txn/...

# Concurrent stress suite under the race detector, at a GOMAXPROCS
# matrix: parallel KV traffic on overlapping key ranges, kill -9 under
# concurrent load (interleaved-transaction recovery), latch-crabbing
# B+tree and heap stress, and the lock-manager deadlock/upgrade audit.
STRESS_RUN = 'TestKVConcurrent|TestKVCrashRecoveryConcurrent|TestKVBatchConflicts|TestKVLockWait|TestConcurrentInsert|TestHeapConcurrent|TestConcurrentTransfers|TestDeadlock|TestLockUpgrade|TestNoPhantom|TestAcquireContext'
STRESS_PKGS = . ./internal/access/... ./internal/index/... ./internal/txn/...

stress:
	$(call gomaxprocsMatrix,$(STRESS_RUN),$(STRESS_PKGS))

# Isolation & fairness suite under the race detector, at a GOMAXPROCS
# matrix: anomaly tests (torn atomic batches, phantoms, write skew,
# lost updates) asserting each anomaly OCCURS at read-committed and is
# IMPOSSIBLE at serializable; lock-manager FIFO fairness, grant-order
# and no-barging tests; kill -9 mid-serializable-scan crash recovery
# (no orphan gap locks, serially consistent replay).
ISOLATION_RUN = 'TestIsolation|TestSerializableScan|TestLockFairness|TestLockFIFO|TestLockNoBarging|TestTryAcquire'
ISOLATION_PKGS = . ./internal/txn/...

isolation:
	$(call gomaxprocsMatrix,$(ISOLATION_RUN),$(ISOLATION_PKGS))

# MVCC snapshot-read suite under the race detector, at a GOMAXPROCS
# matrix: consistent-cut snapshot scans against concurrent atomic
# batches, write-write conflict aborts, vacuum horizon safety, and the
# snapshot-scan vs write-storm vs continuous-vacuum stress test.
MVCC_RUN = 'TestMVCC'

mvcc:
	$(call gomaxprocsMatrix,$(MVCC_RUN),.)

# Distributed-cluster suite under the race detector, at a GOMAXPROCS
# matrix: the deterministic fault-injection harness (leader kill -9
# mid-async-commit, follower catch-up across checkpoint truncation,
# partition heal without split-brain, duplicated/dropped/delayed
# shipments), router epoch-replan property tests, WAL shipping and
# bootstrap fidelity, and the adverse-network netbind tests.
CLUSTER_RUN = 'TestCluster|TestRouter|TestShardFor|TestServer|TestFollowerWAL|TestShip|TestAppendObserver|TestSnapshotSegments'
CLUSTER_PKGS = . ./internal/cluster/... ./internal/netbind/... ./internal/replicate/... ./internal/wal/...

cluster:
	$(call gomaxprocsMatrix,$(CLUSTER_RUN),$(CLUSTER_PKGS))

# Single-pass variant for quick local iteration: one race run at the
# default GOMAXPROCS, harness package only.
cluster-short:
	$(GO) test -race -count=1 -run 'TestCluster' .

vet:
	$(GO) vet ./...

# Static analysis: sbdmslint machine-checks the engine's concurrency
# and durability invariants (latch ordering, WAL-before-mutate, pin
# pairing, durability error checks, context plumbing — see
# INVARIANTS.md). staticcheck and govulncheck run when installed; the
# build container has no network, so they are advisory extras rather
# than gates.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/sbdmslint ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "staticcheck not installed: skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
		else echo "govulncheck not installed: skipping"; fi
