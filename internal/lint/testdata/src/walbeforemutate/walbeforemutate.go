// Golden package for the walbeforemutate analyzer: stores into bytes
// of a frame pinned in the same function must flow through a logged
// helper, never raw slice stores.
package walbeforemutate

import (
	"encoding/binary"

	"repro/internal/buffer"
	"repro/internal/storage"
)

// rawStores: every direct mutation form the analyzer recognises.
func rawStores(pool *buffer.Manager, id storage.PageID) error {
	f, err := pool.Pin(id)
	if err != nil {
		return err
	}
	f.Data[0] = 1                                 // want `raw store into pinned page bytes bypasses the WAL`
	copy(f.Data[8:], []byte("x"))                 // want `raw store into pinned page bytes bypasses the WAL`
	binary.LittleEndian.PutUint64(f.Data[16:], 7) // want `raw store into pinned page bytes bypasses the WAL`
	return pool.Unpin(f.ID, true)
}

// derivedStores: the destination is tracked through aliases of the
// pinned frame's bytes (b := f.Data, p := f.Page()).
func derivedStores(pool *buffer.Manager, id storage.PageID) error {
	f, err := pool.Pin(id)
	if err != nil {
		return err
	}
	b := f.Data
	b[0] = 2 // want `raw store into pinned page bytes bypasses the WAL`
	p := f.Page()
	p.Payload()[0] = 3 // want `raw store into pinned page bytes bypasses the WAL`
	return pool.Unpin(f.ID, true)
}

// calleeSide: a function handed a *storage.Page is the callee side of
// the logged-mutation protocol — the helper logs around it.
func calleeSide(p *storage.Page) {
	p.Payload()[0] = 1
	binary.LittleEndian.PutUint16(p.Data, 2)
}

// loggedHelper: mutations through UpdatePage's callback are the
// sanctioned path.
func loggedHelper(pool *buffer.Manager, id storage.PageID) error {
	return pool.UpdatePage(id, func(p *storage.Page) error {
		p.Payload()[0] = 9
		return nil
	})
}

// readsAreFine: reading pinned bytes is not a mutation.
func readsAreFine(pool *buffer.Manager, id storage.PageID) (byte, error) {
	f, err := pool.Pin(id)
	if err != nil {
		return 0, err
	}
	v := f.Data[0]
	snapshot := make([]byte, len(f.Data))
	copy(snapshot, f.Data) // copying OUT of the page is a read
	if uerr := pool.Unpin(f.ID, false); uerr != nil {
		return 0, uerr
	}
	return v, nil
}

// suppressedRestore: an undo path restoring the exact before image is
// the WAL discipline, not a bypass — the suppression is honoured.
func suppressedRestore(pool *buffer.Manager, id storage.PageID, before []byte) error {
	f, err := pool.Pin(id)
	if err != nil {
		return err
	}
	//lint:ignore walbeforemutate restoring the exact before image after a failed append is the WAL discipline, not a bypass of it
	copy(f.Data, before)
	return pool.Unpin(f.ID, true)
}
