package wal

import (
	"fmt"
	"sort"

	"repro/internal/storage"
)

// RecoveryStats reports what recovery did.
type RecoveryStats struct {
	Scanned    int
	Redone     int
	Undone     int
	Committed  int
	InFlight   int // transactions rolled back
}

// Recover brings a page store to a consistent state after a crash:
//
//  1. Analysis: a full log scan classifies transactions as committed,
//     aborted, or in-flight, and collects update records.
//  2. Redo: updates of committed transactions are reapplied in log
//     order wherever the page LSN shows the write never reached the
//     page (page.LSN < record.LSN).
//  3. Undo: updates of in-flight and aborted transactions are reverted
//     in reverse log order using the before images.
//
// Pages touched by undo/redo are stamped with the record's LSN so that
// recovery is idempotent: running it twice is a no-op.
func Recover(l *Log, store storage.PageStore) (RecoveryStats, error) {
	var st RecoveryStats
	status := make(map[uint64]RecType) // txn -> final state seen
	var updates []*Record
	// Sharp checkpoints guarantee no in-flight transactions and clean
	// pages at the checkpoint, so analysis starts there.
	err := l.Iterate(l.LastCheckpoint(), func(rec *Record) error {
		st.Scanned++
		switch rec.Type {
		case RecBegin:
			status[rec.Txn] = RecBegin
		case RecCommit:
			status[rec.Txn] = RecCommit
		case RecAbort:
			status[rec.Txn] = RecAbort
		case RecUpdate:
			updates = append(updates, rec)
			if _, ok := status[rec.Txn]; !ok {
				status[rec.Txn] = RecBegin
			}
		}
		return nil
	})
	if err != nil {
		return st, fmt.Errorf("wal: analysis: %w", err)
	}
	for _, s := range status {
		switch s {
		case RecCommit:
			st.Committed++
		case RecBegin:
			st.InFlight++
		}
	}

	buf := make([]byte, storage.PageSize)
	apply := func(rec *Record, image []byte) error {
		if err := store.ReadPage(rec.PageID, buf); err != nil {
			return err
		}
		p := storage.WrapPage(rec.PageID, buf)
		copy(p.Data[rec.Offset:int(rec.Offset)+len(image)], image)
		p.SetLSN(uint64(rec.LSN))
		return store.WritePage(rec.PageID, p.Data)
	}

	// Redo committed work in log order.
	for _, rec := range updates {
		if status[rec.Txn] != RecCommit {
			continue
		}
		if err := store.ReadPage(rec.PageID, buf); err != nil {
			return st, fmt.Errorf("wal: redo read page %d: %w", rec.PageID, err)
		}
		if storage.WrapPage(rec.PageID, buf).LSN() >= uint64(rec.LSN) {
			continue // already on the page
		}
		if err := apply(rec, rec.After); err != nil {
			return st, fmt.Errorf("wal: redo: %w", err)
		}
		st.Redone++
	}

	// Undo losers in reverse log order.
	losers := updates[:0:0]
	for _, rec := range updates {
		if s := status[rec.Txn]; s == RecBegin || s == RecAbort {
			losers = append(losers, rec)
		}
	}
	sort.Slice(losers, func(i, j int) bool { return losers[i].LSN > losers[j].LSN })
	for _, rec := range losers {
		if err := apply(rec, rec.Before); err != nil {
			return st, fmt.Errorf("wal: undo: %w", err)
		}
		st.Undone++
	}
	if err := store.Sync(); err != nil {
		return st, err
	}
	return st, nil
}
