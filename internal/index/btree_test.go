package index

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/access"
	"repro/internal/buffer"
	"repro/internal/storage"
)

func newTree(t *testing.T, unique bool) (*BTree, *buffer.Manager) {
	t.Helper()
	d, err := storage.OpenDisk(storage.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	pool := buffer.New(d, 64, buffer.NewLRU())
	tr, _, err := Create(pool, unique)
	if err != nil {
		t.Fatal(err)
	}
	return tr, pool
}

func rid(n int) access.RID {
	return access.RID{Page: storage.PageID(n/100 + 1), Slot: uint16(n % 100)}
}

func TestInsertSearchSmall(t *testing.T) {
	tr, _ := newTree(t, false)
	keys := []string{"delta", "alpha", "charlie", "bravo"}
	for i, k := range keys {
		if err := tr.Insert([]byte(k), rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got, err := tr.Search([]byte("charlie"))
	if err != nil || len(got) != 1 || got[0] != rid(2) {
		t.Fatalf("Search = %v, %v", got, err)
	}
	if got, _ := tr.Search([]byte("zulu")); len(got) != 0 {
		t.Fatalf("missing key search = %v", got)
	}
}

func TestInsertManySplits(t *testing.T) {
	tr, _ := newTree(t, false)
	const n = 5000
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%06d", i*7919%n))
		if err := tr.Insert(key, rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	h, err := tr.Height()
	if err != nil {
		t.Fatal(err)
	}
	if h < 2 {
		t.Fatalf("height = %d, expected splits", h)
	}
	// Every key findable.
	for i := 0; i < n; i += 97 {
		key := []byte(fmt.Sprintf("key-%06d", i*7919%n))
		got, err := tr.Search(key)
		if err != nil || len(got) != 1 {
			t.Fatalf("Search(%s) = %v, %v", key, got, err)
		}
	}
	// Full range is sorted and complete.
	var prev []byte
	count := 0
	err = tr.Range(nil, nil, func(k []byte, r access.RID) error {
		if prev != nil && bytes.Compare(prev, k) > 0 {
			return fmt.Errorf("out of order: %q after %q", k, prev)
		}
		prev = append(prev[:0], k...)
		count++
		return nil
	})
	if err != nil || count != n {
		t.Fatalf("range: %d, %v", count, err)
	}
}

func TestDuplicateKeysNonUnique(t *testing.T) {
	tr, _ := newTree(t, false)
	for i := 0; i < 10; i++ {
		if err := tr.Insert([]byte("same"), rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := tr.Search([]byte("same"))
	if err != nil || len(got) != 10 {
		t.Fatalf("Search = %d rids, %v", len(got), err)
	}
	// Exact duplicate (key, rid) is a no-op.
	before := tr.Len()
	if err := tr.Insert([]byte("same"), rid(3)); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != before+1 {
		// Count incremented even though entry deduplicated; check via search.
		got, _ = tr.Search([]byte("same"))
		if len(got) != 10 {
			t.Fatalf("dedup broken: %d rids", len(got))
		}
	}
}

func TestUniqueIndexRejectsDuplicates(t *testing.T) {
	tr, _ := newTree(t, true)
	if err := tr.Insert([]byte("pk"), rid(1)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert([]byte("pk"), rid(2)); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("err = %v", err)
	}
	if !tr.Unique() {
		t.Fatal("Unique flag")
	}
}

func TestDelete(t *testing.T) {
	tr, _ := newTree(t, false)
	for i := 0; i < 100; i++ {
		if err := tr.Insert([]byte(fmt.Sprintf("k%03d", i)), rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	ok, err := tr.Delete([]byte("k050"), rid(50))
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if got, _ := tr.Search([]byte("k050")); len(got) != 0 {
		t.Fatal("deleted key still found")
	}
	// Deleting a missing entry reports false.
	ok, err = tr.Delete([]byte("k050"), rid(50))
	if err != nil || ok {
		t.Fatalf("second delete = %v, %v", ok, err)
	}
	if tr.Len() != 99 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// Delete one rid of a duplicate set only.
	_ = tr.Insert([]byte("dup"), rid(1))
	_ = tr.Insert([]byte("dup"), rid(2))
	ok, _ = tr.Delete([]byte("dup"), rid(1))
	if !ok {
		t.Fatal("dup delete failed")
	}
	got, _ := tr.Search([]byte("dup"))
	if len(got) != 1 || got[0] != rid(2) {
		t.Fatalf("remaining = %v", got)
	}
}

func TestDeleteAllThenReuse(t *testing.T) {
	tr, _ := newTree(t, false)
	const n = 2000
	for i := 0; i < n; i++ {
		if err := tr.Insert([]byte(fmt.Sprintf("k%05d", i)), rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		ok, err := tr.Delete([]byte(fmt.Sprintf("k%05d", i)), rid(i))
		if err != nil || !ok {
			t.Fatalf("delete %d: %v, %v", i, ok, err)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	count := 0
	_ = tr.Range(nil, nil, func([]byte, access.RID) error { count++; return nil })
	if count != 0 {
		t.Fatalf("range after delete-all = %d", count)
	}
	// Tree still usable.
	if err := tr.Insert([]byte("fresh"), rid(1)); err != nil {
		t.Fatal(err)
	}
	if got, _ := tr.Search([]byte("fresh")); len(got) != 1 {
		t.Fatal("reuse after delete-all broken")
	}
}

func TestRangeBounds(t *testing.T) {
	tr, _ := newTree(t, false)
	for i := 0; i < 50; i++ {
		if err := tr.Insert([]byte(fmt.Sprintf("k%02d", i)), rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	collect := func(lo, hi []byte) []string {
		var out []string
		_ = tr.Range(lo, hi, func(k []byte, r access.RID) error {
			out = append(out, string(k))
			return nil
		})
		return out
	}
	got := collect([]byte("k10"), []byte("k15"))
	want := []string{"k10", "k11", "k12", "k13", "k14"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("range = %v", got)
	}
	if got := collect(nil, []byte("k03")); len(got) != 3 {
		t.Fatalf("open-lo range = %v", got)
	}
	if got := collect([]byte("k47"), nil); len(got) != 3 {
		t.Fatalf("open-hi range = %v", got)
	}
	if got := collect([]byte("k99"), nil); len(got) != 0 {
		t.Fatalf("empty range = %v", got)
	}
	// Early stop from callback.
	n := 0
	stop := errors.New("stop")
	err := tr.Range(nil, nil, func([]byte, access.RID) error {
		n++
		if n == 5 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) || n != 5 {
		t.Fatalf("early stop: %d, %v", n, err)
	}
}

func TestKeysWithZeroBytes(t *testing.T) {
	tr, _ := newTree(t, false)
	keys := [][]byte{
		{0x00}, {0x00, 0x00}, {0x00, 0x01}, {0x01}, {0x01, 0x00}, {},
	}
	for i, k := range keys {
		if err := tr.Insert(k, rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range keys {
		got, err := tr.Search(k)
		if err != nil || len(got) != 1 || got[0] != rid(i) {
			t.Fatalf("Search(%x) = %v, %v", k, got, err)
		}
	}
	// Range order must match bytewise order of original keys.
	var seen [][]byte
	_ = tr.Range(nil, nil, func(k []byte, r access.RID) error {
		seen = append(seen, append([]byte(nil), k...))
		return nil
	})
	sorted := make([][]byte, len(keys))
	copy(sorted, keys)
	sort.Slice(sorted, func(i, j int) bool { return bytes.Compare(sorted[i], sorted[j]) < 0 })
	if len(seen) != len(sorted) {
		t.Fatalf("seen %d keys", len(seen))
	}
	for i := range sorted {
		if !bytes.Equal(seen[i], sorted[i]) {
			t.Fatalf("order mismatch at %d: %x vs %x", i, seen[i], sorted[i])
		}
	}
}

func TestPersistenceAcrossOpen(t *testing.T) {
	d, _ := storage.OpenDisk(storage.NewMemDevice())
	pool := buffer.New(d, 64, buffer.NewLRU())
	tr, metaID, err := Create(pool, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := tr.Insert([]byte(fmt.Sprintf("k%04d", i)), rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Entry counts live in memory and persist only on SyncMeta (per-op
	// count logging would serialise writers on the metadata page).
	if err := tr.SyncMeta(); err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Fresh pool over the same disk.
	pool2 := buffer.New(d, 64, buffer.NewLRU())
	tr2, err := Open(pool2, metaID)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != 1000 {
		t.Fatalf("Len = %d", tr2.Len())
	}
	got, err := tr2.Search([]byte("k0777"))
	if err != nil || len(got) != 1 || got[0] != rid(777) {
		t.Fatalf("Search = %v, %v", got, err)
	}
	if tr2.MetaID() != metaID {
		t.Fatal("MetaID")
	}
}

func TestDropFreesPages(t *testing.T) {
	d, _ := storage.OpenDisk(storage.NewMemDevice())
	pool := buffer.New(d, 64, buffer.NewLRU())
	tr, _, err := Create(pool, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := tr.Insert([]byte(fmt.Sprintf("key-%06d", i)), rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Drop(); err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	free, err := d.FreePages()
	if err != nil {
		t.Fatal(err)
	}
	if uint64(free) != d.NumPages() {
		t.Fatalf("free %d of %d pages after drop", free, d.NumPages())
	}
}

// Property: the tree agrees with a reference map under random
// insert/delete/search interleavings.
func TestBTreeAgainstReferenceQuick(t *testing.T) {
	tr, _ := newTree(t, false)
	ref := map[string]map[access.RID]bool{}
	f := func(ops []uint32) bool {
		for _, op := range ops {
			key := fmt.Sprintf("k%03d", op%512)
			r := rid(int(op>>9) % 1000)
			switch op % 3 {
			case 0: // insert
				if err := tr.Insert([]byte(key), r); err != nil {
					return false
				}
				if ref[key] == nil {
					ref[key] = map[access.RID]bool{}
				}
				ref[key][r] = true
			case 1: // delete
				ok, err := tr.Delete([]byte(key), r)
				if err != nil {
					return false
				}
				if ok != ref[key][r] {
					return false
				}
				delete(ref[key], r)
			case 2: // search
				got, err := tr.Search([]byte(key))
				if err != nil || len(got) != len(ref[key]) {
					return false
				}
				for _, g := range got {
					if !ref[key][g] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func TestLongKeys(t *testing.T) {
	tr, _ := newTree(t, false)
	// Keys near the page capacity force early splits.
	long := bytes.Repeat([]byte("L"), 800)
	for i := 0; i < 30; i++ {
		key := append(append([]byte(nil), long...), []byte(fmt.Sprintf("%03d", i))...)
		if err := tr.Insert(key, rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		key := append(append([]byte(nil), long...), []byte(fmt.Sprintf("%03d", i))...)
		got, err := tr.Search(key)
		if err != nil || len(got) != 1 {
			t.Fatalf("long key %d: %v, %v", i, got, err)
		}
	}
}
