package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/storage"
)

// ErrSegmentGone is returned when an Iterate caller races segment
// truncation: the requested range was reclaimed by a checkpoint. Log
// shippers should restart from OldestLSN.
var ErrSegmentGone = errors.New("wal: segment truncated away")

// SegmentDir is the container of a segmented log: numbered segment
// files plus a small manifest. Implementations must be safe for
// concurrent use. The wal package provides MemSegmentDir (tests,
// in-memory profiles) and FileSegmentDir (a directory on disk);
// Open(dev) adapts a single Device as one unbounded segment.
type SegmentDir interface {
	// OpenSegment opens (creating if absent) segment seq.
	OpenSegment(seq uint64) (storage.Device, error)
	// RemoveSegment deletes segment seq (checkpoint truncation).
	RemoveSegment(seq uint64) error
	// ListSegments returns the sequence numbers of existing segments.
	ListSegments() ([]uint64, error)
	// OpenManifest opens the manifest region (at least manifestSize
	// bytes, created zeroed if absent).
	OpenManifest() (storage.Device, error)
	// Sync makes directory-level mutations (segment creation and
	// removal) durable.
	Sync() error
}

// --- manifest ----------------------------------------------------------

// The manifest is one small record, rewritten in place on every
// completed checkpoint: magic, the checkpoint record's LSN, the
// recovery-begin LSN (where the next recovery scan starts, and the
// truncation horizon), and the full-page-write fence (the NextLSN
// observed when the checkpoint began). A CRC detects torn manifest
// writes; recovery then falls back to scanning from the oldest live
// segment with a conservative fence.
const (
	manifestSize  = 64
	manifestMagic = 0x5342444d53574d31 // "SBDMSWM1"
)

type manifest struct {
	checkpoint    LSN
	recoveryBegin LSN
	fence         LSN
}

func encodeManifest(m manifest) []byte {
	buf := make([]byte, manifestSize)
	binary.LittleEndian.PutUint64(buf[0:], manifestMagic)
	binary.LittleEndian.PutUint64(buf[8:], uint64(m.checkpoint))
	binary.LittleEndian.PutUint64(buf[16:], uint64(m.recoveryBegin))
	binary.LittleEndian.PutUint64(buf[24:], uint64(m.fence))
	binary.LittleEndian.PutUint32(buf[32:], crc32.Checksum(buf[:32], crcTable))
	return buf
}

// decodeManifest parses a manifest image. ok=false reports a torn (CRC
// mismatch) manifest the caller may recover from conservatively; a bad
// magic is a hard error (foreign or mispointed file).
func decodeManifest(buf []byte) (m manifest, ok bool, err error) {
	if len(buf) < manifestSize {
		return m, false, nil
	}
	if binary.LittleEndian.Uint64(buf) != manifestMagic {
		return m, false, fmt.Errorf("%w: bad manifest magic", ErrCorrupt)
	}
	if crc32.Checksum(buf[:32], crcTable) != binary.LittleEndian.Uint32(buf[32:]) {
		return m, false, nil
	}
	m.checkpoint = LSN(binary.LittleEndian.Uint64(buf[8:]))
	m.recoveryBegin = LSN(binary.LittleEndian.Uint64(buf[16:]))
	m.fence = LSN(binary.LittleEndian.Uint64(buf[24:]))
	return m, true, nil
}

// --- segment header ----------------------------------------------------

// Each segment file begins with a fixed header carrying its sequence
// number and the global LSN of its first record byte, so LSNs stay a
// single monotonically increasing address space across truncation.
const (
	segHeaderSize = 32
	segMagic      = 0x5342444d53574131 // "SBDMSWA1"
)

func encodeSegHeader(seq uint64, base LSN) []byte {
	buf := make([]byte, segHeaderSize)
	binary.LittleEndian.PutUint64(buf[0:], segMagic)
	binary.LittleEndian.PutUint64(buf[8:], seq)
	binary.LittleEndian.PutUint64(buf[16:], uint64(base))
	binary.LittleEndian.PutUint32(buf[24:], crc32.Checksum(buf[:24], crcTable))
	return buf
}

func decodeSegHeader(buf []byte) (seq uint64, base LSN, ok bool) {
	if len(buf) < segHeaderSize {
		return 0, 0, false
	}
	if binary.LittleEndian.Uint64(buf) != segMagic {
		return 0, 0, false
	}
	if crc32.Checksum(buf[:24], crcTable) != binary.LittleEndian.Uint32(buf[24:]) {
		return 0, 0, false
	}
	return binary.LittleEndian.Uint64(buf[8:]), LSN(binary.LittleEndian.Uint64(buf[16:])), true
}

// --- MemSegmentDir ------------------------------------------------------

// MemSegmentDir is an in-memory SegmentDir for tests and the
// no-durable-medium profiles. It outlives any Log opened over it, so
// crash tests can "reopen" the same directory after abandoning a
// database.
type MemSegmentDir struct {
	mu       sync.Mutex
	segs     map[uint64]*storage.MemDevice
	manifest *storage.MemDevice
	removed  uint64
}

// NewMemSegmentDir creates an empty in-memory segment directory.
func NewMemSegmentDir() *MemSegmentDir {
	return &MemSegmentDir{segs: make(map[uint64]*storage.MemDevice)}
}

// OpenSegment implements SegmentDir.
func (d *MemSegmentDir) OpenSegment(seq uint64) (storage.Device, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if dev, ok := d.segs[seq]; ok {
		return dev, nil
	}
	dev := storage.NewMemDevice()
	d.segs[seq] = dev
	return dev, nil
}

// RemoveSegment implements SegmentDir.
func (d *MemSegmentDir) RemoveSegment(seq uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.segs[seq]; ok {
		delete(d.segs, seq)
		d.removed++
	}
	return nil
}

// ListSegments implements SegmentDir.
func (d *MemSegmentDir) ListSegments() ([]uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]uint64, 0, len(d.segs))
	for seq := range d.segs {
		out = append(out, seq)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// OpenManifest implements SegmentDir.
func (d *MemSegmentDir) OpenManifest() (storage.Device, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.manifest == nil {
		d.manifest = storage.NewMemDevice()
	}
	return d.manifest, nil
}

// Sync implements SegmentDir (no-op for memory).
func (d *MemSegmentDir) Sync() error { return nil }

// SegmentCount returns the number of live segments (test diagnostics).
func (d *MemSegmentDir) SegmentCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.segs)
}

// Removed returns how many segments truncation has deleted.
func (d *MemSegmentDir) Removed() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.removed
}

// --- FileSegmentDir -----------------------------------------------------

// FileSegmentDir is a SegmentDir over an OS directory: segments are
// files named wal.NNNNNN, the manifest is wal.manifest.
type FileSegmentDir struct {
	path string
}

// NewFileSegmentDir opens (creating if needed) a segment directory.
func NewFileSegmentDir(path string) (*FileSegmentDir, error) {
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating segment dir %s: %w", path, err)
	}
	return &FileSegmentDir{path: path}, nil
}

func (d *FileSegmentDir) segPath(seq uint64) string {
	return filepath.Join(d.path, fmt.Sprintf("wal.%06d", seq))
}

// OpenSegment implements SegmentDir.
func (d *FileSegmentDir) OpenSegment(seq uint64) (storage.Device, error) {
	return storage.OpenFileDevice(d.segPath(seq))
}

// RemoveSegment implements SegmentDir.
func (d *FileSegmentDir) RemoveSegment(seq uint64) error {
	if err := os.Remove(d.segPath(seq)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("wal: removing segment %d: %w", seq, err)
	}
	return nil
}

// ListSegments implements SegmentDir.
func (d *FileSegmentDir) ListSegments() ([]uint64, error) {
	entries, err := os.ReadDir(d.path)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal.") || name == "wal.manifest" {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimPrefix(name, "wal."), 10, 64)
		if err != nil {
			continue
		}
		out = append(out, seq)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// OpenManifest implements SegmentDir.
func (d *FileSegmentDir) OpenManifest() (storage.Device, error) {
	return storage.OpenFileDevice(filepath.Join(d.path, "wal.manifest"))
}

// Sync implements SegmentDir by fsyncing the directory, making segment
// creation and removal durable.
func (d *FileSegmentDir) Sync() error {
	f, err := os.Open(d.path)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// --- single-device adapter ---------------------------------------------

// sectionDevice exposes the tail of a Device starting at off as a
// Device of its own, so one file can hold both the manifest and a lone
// segment (the Open(dev) compatibility layout).
type sectionDevice struct {
	dev storage.Device
	off int64
}

func (s *sectionDevice) ReadAt(p []byte, off int64) (int, error) {
	return s.dev.ReadAt(p, off+s.off)
}

func (s *sectionDevice) WriteAt(p []byte, off int64) (int, error) {
	return s.dev.WriteAt(p, off+s.off)
}

func (s *sectionDevice) Size() (int64, error) {
	n, err := s.dev.Size()
	if err != nil {
		return 0, err
	}
	if n < s.off {
		return 0, nil
	}
	return n - s.off, nil
}

func (s *sectionDevice) Truncate(size int64) error { return s.dev.Truncate(size + s.off) }
func (s *sectionDevice) Sync() error               { return s.dev.Sync() }
func (s *sectionDevice) Close() error              { return nil } // shared inner device

// singleDeviceDir adapts one Device as a SegmentDir with exactly one
// unbounded segment: bytes [0, manifestSize) hold the manifest, the
// rest is segment 1. Truncation never applies (the single segment is
// always live), so Open(dev) logs grow without bound — the legacy
// layout kept for embedded devices and micro-benchmarks.
type singleDeviceDir struct {
	dev storage.Device
}

func (d singleDeviceDir) OpenSegment(seq uint64) (storage.Device, error) {
	if seq != 1 {
		return nil, fmt.Errorf("wal: single-device log has only segment 1 (asked for %d)", seq)
	}
	return &sectionDevice{dev: d.dev, off: manifestSize}, nil
}

// RemoveSegment implements SegmentDir by truncating the device back to
// the bare manifest: the single segment cannot be unlinked like a file,
// but the only caller is the unborn-segment drop at open (a crash
// during the very first header write, before anything was acknowledged)
// and a failed createSegment cleanup — wiping the segment region is
// exactly equivalent.
func (d singleDeviceDir) RemoveSegment(seq uint64) error {
	if seq != 1 {
		return fmt.Errorf("wal: single-device log has only segment 1 (asked to remove %d)", seq)
	}
	return d.dev.Truncate(manifestSize)
}

func (d singleDeviceDir) ListSegments() ([]uint64, error) {
	size, err := d.dev.Size()
	if err != nil {
		return nil, err
	}
	if size <= manifestSize {
		return nil, nil
	}
	return []uint64{1}, nil
}

func (d singleDeviceDir) OpenManifest() (storage.Device, error) {
	return &sectionDevice{dev: d.dev}, nil
}

func (d singleDeviceDir) Sync() error { return d.dev.Sync() }
