// Package monitor implements monitoring services (Section 4:
// "developers invoke existing coordinator services, or create
// customised monitoring services that read the properties from the
// storage service and retrieve data"): latency recording with
// percentiles, quality reports matched against advertised contracts,
// and a simulated resource-constrained device (battery/memory/CPU) for
// the embedded scenario.
package monitor

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
)

// LatencyRecorder keeps a bounded ring of observed latencies and
// computes summary statistics.
type LatencyRecorder struct {
	mu      sync.Mutex
	samples []time.Duration
	next    int
	full    bool
	count   uint64
}

// NewLatencyRecorder creates a recorder retaining up to n samples.
func NewLatencyRecorder(n int) *LatencyRecorder {
	if n <= 0 {
		n = 1024
	}
	return &LatencyRecorder{samples: make([]time.Duration, n)}
}

// Record adds one observation.
func (r *LatencyRecorder) Record(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.samples[r.next] = d
	r.next++
	r.count++
	if r.next == len(r.samples) {
		r.next = 0
		r.full = true
	}
}

// Observe wraps an invoker so every call is recorded.
func (r *LatencyRecorder) Observe(inv core.Invoker) core.Invoker {
	return core.InvokerFunc(func(ctx context.Context, op string, req any) (any, error) {
		start := time.Now()
		out, err := inv.Invoke(ctx, op, req)
		r.Record(time.Since(start))
		return out, err
	})
}

// Summary holds latency statistics.
type Summary struct {
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
}

// Summarize computes statistics over the retained window.
func (r *LatencyRecorder) Summarize() Summary {
	r.mu.Lock()
	n := r.next
	if r.full {
		n = len(r.samples)
	}
	buf := append([]time.Duration(nil), r.samples[:n]...)
	count := r.count
	r.mu.Unlock()
	if len(buf) == 0 {
		return Summary{}
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	var sum time.Duration
	for _, d := range buf {
		sum += d
	}
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(buf)-1))
		return buf[i]
	}
	return Summary{
		Count: count,
		Mean:  sum / time.Duration(len(buf)),
		P50:   pct(0.50),
		P95:   pct(0.95),
		P99:   pct(0.99),
		Max:   buf[len(buf)-1],
	}
}

// Device simulates a resource-constrained host (mobile/embedded,
// Section 4): bounded battery, memory and CPU budgets that drain per
// operation and alert through a callback when a watermark is crossed.
type Device struct {
	Name string

	mu          sync.Mutex
	battery     float64 // remaining units
	batteryCap  float64
	memory      int64 // bytes in use
	memoryCap   int64
	opCost      float64 // battery units per operation
	lowWater    float64 // fraction
	lowAlerted  bool
	onLow       func(resource string, remainingFrac float64)
	ops         uint64
}

// DeviceConfig configures a simulated device.
type DeviceConfig struct {
	Name        string
	BatteryCap  float64 // units; 0 = unlimited
	MemoryCap   int64   // bytes; 0 = unlimited
	OpCost      float64 // battery units per op
	LowWater    float64 // alert fraction, e.g. 0.2
	OnLow       func(resource string, remainingFrac float64)
}

// NewDevice creates a simulated device.
func NewDevice(cfg DeviceConfig) *Device {
	if cfg.OpCost == 0 {
		cfg.OpCost = 1
	}
	if cfg.LowWater == 0 {
		cfg.LowWater = 0.2
	}
	return &Device{
		Name:       cfg.Name,
		battery:    cfg.BatteryCap,
		batteryCap: cfg.BatteryCap,
		memoryCap:  cfg.MemoryCap,
		opCost:     cfg.OpCost,
		lowWater:   cfg.LowWater,
		onLow:      cfg.OnLow,
	}
}

// DoOp consumes one operation's worth of battery; it reports false
// when the battery is exhausted (the device can no longer serve).
func (d *Device) DoOp() bool {
	d.mu.Lock()
	d.ops++
	alert := false
	var frac float64
	if d.batteryCap > 0 {
		if d.battery < d.opCost {
			d.mu.Unlock()
			return false
		}
		d.battery -= d.opCost
		frac = d.battery / d.batteryCap
		if frac <= d.lowWater && !d.lowAlerted {
			d.lowAlerted = true
			alert = true
		}
	}
	cb := d.onLow
	d.mu.Unlock()
	if alert && cb != nil {
		cb("battery", frac)
	}
	return true
}

// AllocMemory reserves bytes, reporting false when over budget.
func (d *Device) AllocMemory(n int64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.memoryCap > 0 && d.memory+n > d.memoryCap {
		return false
	}
	d.memory += n
	return true
}

// FreeMemory releases bytes.
func (d *Device) FreeMemory(n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.memory -= n
	if d.memory < 0 {
		d.memory = 0
	}
}

// Battery returns (remaining, capacity).
func (d *Device) Battery() (float64, float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.battery, d.batteryCap
}

// Recharge refills the battery and re-arms the low alert.
func (d *Device) Recharge() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.battery = d.batteryCap
	d.lowAlerted = false
}

// Ops returns the operation count.
func (d *Device) Ops() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ops
}

// QualityReport compares observed behaviour of a service with the
// quality its contract advertises.
type QualityReport struct {
	Service       string
	Advertised    core.Quality
	ObservedP95   time.Duration
	ObservedCalls uint64
	ErrorRate     float64
	// MeetsAvailability is true when 1-ErrorRate is at least the
	// advertised availability.
	MeetsAvailability bool
}

// Assess builds a quality report from service statistics.
func Assess(name string, q core.Quality, stats map[string]core.OpStats, lat Summary) QualityReport {
	var calls, errs uint64
	for _, st := range stats {
		calls += st.Calls
		errs += st.Errors
	}
	rate := 0.0
	if calls > 0 {
		rate = float64(errs) / float64(calls)
	}
	return QualityReport{
		Service:           name,
		Advertised:        q,
		ObservedP95:       lat.P95,
		ObservedCalls:     calls,
		ErrorRate:         rate,
		MeetsAvailability: 1-rate >= q.Availability,
	}
}
