package cluster

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/netbind"
)

// Config sizes a cluster.
type Config struct {
	// Shards is the partition count; Followers the replica count per
	// shard (0 = unreplicated shards).
	Shards    int
	Followers int
	// AsyncCommit acks writes once a follower holds the WAL record,
	// before the leader's local fsync; AckTimeout bounds the wait.
	AsyncCommit bool
	AckTimeout  time.Duration
	// UseNetbind serves every node over TCP and routes through
	// netbind clients instead of direct in-process invocation.
	UseNetbind bool
	// Node engine knobs (0 = engine defaults).
	Frames             int
	WALSegmentBytes    int
	CheckpointInterval time.Duration
}

// Cluster assembles N shards of leader+followers over a fault-injectable
// transport, publishes the shard map through a core registry, and hands
// out epoch-aware routers. It is both the production-shaped topology
// (every hop a service invocation, optionally over netbind) and the
// substrate of the deterministic fault harness.
type Cluster struct {
	cfg      Config
	nodes    map[NodeID]*Node
	pub      *MapPublisher
	registry *core.Registry
	local    *LocalTransport
	net      *NetTransport
	faults   *FaultTransport
	servers  []*netbind.Server
	router   *Router
}

// LeaderID names shard s's initial leader.
func LeaderID(s int) NodeID { return NodeID(fmt.Sprintf("s%d-leader", s)) }

// FollowerID names shard s's f'th initial follower.
func FollowerID(s, f int) NodeID { return NodeID(fmt.Sprintf("s%d-f%d", s, f)) }

// New builds and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	c := &Cluster{
		cfg:      cfg,
		nodes:    make(map[NodeID]*Node),
		registry: core.NewRegistry(nil),
		local:    NewLocalTransport(),
	}
	var base Transport = c.local
	if cfg.UseNetbind {
		c.net = NewNetTransport()
		base = c.net
	}
	c.faults = NewFaultTransport(base)

	m := &Map{Epoch: 1, Shards: make([]Shard, cfg.Shards)}
	for s := 0; s < cfg.Shards; s++ {
		sh := Shard{ID: s, Leader: LeaderID(s)}
		for f := 0; f < cfg.Followers; f++ {
			sh.Followers = append(sh.Followers, FollowerID(s, f))
		}
		m.Shards[s] = sh

		nodeCfg := NodeConfig{
			ID: sh.Leader, Shard: s,
			AsyncCommit: cfg.AsyncCommit, AckTimeout: cfg.AckTimeout,
			Frames: cfg.Frames, WALSegmentBytes: cfg.WALSegmentBytes,
			CheckpointInterval: cfg.CheckpointInterval,
		}
		leader, err := NewLeaderNode(nodeCfg, c.faults)
		if err != nil {
			c.closeAll()
			return nil, err
		}
		leader.SetFollowers(sh.Followers)
		c.addNode(leader)
		for f := 0; f < cfg.Followers; f++ {
			fCfg := nodeCfg
			fCfg.ID = FollowerID(s, f)
			fn, err := NewFollowerNode(fCfg, c.faults)
			if err != nil {
				c.closeAll()
				return nil, err
			}
			c.addNode(fn)
		}
	}

	c.pub = NewMapPublisher(m)
	if err := c.registry.RegisterService(c.pub.Service(), map[string]string{"role": "controller"}); err != nil {
		c.closeAll()
		return nil, err
	}

	if cfg.UseNetbind {
		for id, n := range c.nodes {
			srv, err := netbind.Serve(n.Registry(), "")
			if err != nil {
				c.closeAll()
				return nil, err
			}
			c.servers = append(c.servers, srv)
			c.net.SetAddr(id, srv.Addr())
		}
	}

	c.router = NewRouter(c.faults, func(ctx context.Context) (*Map, error) {
		reg, err := c.registry.Lookup(MapServiceName)
		if err != nil {
			return nil, err
		}
		res, err := reg.Invoker.Invoke(ctx, "get", nil)
		if err != nil {
			return nil, err
		}
		mp, ok := res.(*Map)
		if !ok {
			return nil, fmt.Errorf("cluster: map service returned %T", res)
		}
		return mp, nil
	})
	return c, nil
}

func (c *Cluster) addNode(n *Node) {
	c.nodes[n.ID()] = n
	c.local.Register(n.ID(), n.Registry())
}

// Router returns an epoch-aware client router.
func (c *Cluster) Router() *Router { return c.router }

// NewRouter returns a fresh router (own map cache) for tests that need
// independently-staled clients.
func (c *Cluster) NewRouter() *Router {
	r := NewRouter(c.faults, c.router.fetch)
	return r
}

// Faults returns the fault-injection plane.
func (c *Cluster) Faults() *FaultTransport { return c.faults }

// Node returns a member by ID (nil if unknown).
func (c *Cluster) Node(id NodeID) *Node { return c.nodes[id] }

// Registry returns the controller registry publishing the shard map.
func (c *Cluster) Registry() *core.Registry { return c.registry }

// Map returns the authoritative shard map.
func (c *Cluster) Map() *Map { return c.pub.Get() }

// Bump installs next as the successor shard map: nodes learn the new
// epoch first, then the map is published, so routed requests planned
// under the old epoch are rejected (typed, retryable) rather than
// landing on a node that has moved on.
func (c *Cluster) Bump(next *Map) uint64 {
	epoch := c.pub.Get().Epoch + 1
	for _, n := range c.nodes {
		n.SetEpoch(epoch)
	}
	return c.pub.Bump(next)
}

// Kill is kill -9 for a node: its transport goes dark and its devices
// start failing every access. Nothing is flushed.
func (c *Cluster) Kill(id NodeID) {
	c.faults.Kill(id)
	if n := c.nodes[id]; n != nil {
		n.Kill()
	}
}

// Failover promotes shard's first live follower to leader and publishes
// the successor map, returning how long promotion (replica flush +
// crash recovery + map install) took.
func (c *Cluster) Failover(shard int) (time.Duration, error) {
	m := c.pub.Get()
	if shard < 0 || shard >= len(m.Shards) {
		return 0, fmt.Errorf("cluster: no shard %d", shard)
	}
	sh := m.Shards[shard]
	if len(sh.Followers) == 0 {
		return 0, fmt.Errorf("cluster: shard %d has no followers to promote", shard)
	}
	promoted := sh.Followers[0]
	rest := append([]NodeID(nil), sh.Followers[1:]...)

	start := time.Now()
	n := c.nodes[promoted]
	n.SetFollowers(rest)
	if err := n.Promote(); err != nil {
		return 0, err
	}
	m.Shards[shard] = Shard{ID: shard, Leader: promoted, Followers: rest}
	c.Bump(m)
	return time.Since(start), nil
}

// Close shuts every live node down cleanly.
func (c *Cluster) Close(ctx context.Context) error {
	var first error
	for _, srv := range c.servers {
		if err := srv.Close(); first == nil {
			first = err
		}
	}
	if c.net != nil {
		c.net.Close()
	}
	for _, n := range c.nodes {
		if n.killed.Load() {
			continue // kill -9 means no clean shutdown
		}
		if err := n.Close(ctx); first == nil {
			first = err
		}
	}
	return first
}

func (c *Cluster) closeAll() {
	//lint:ignore ctxflow best-effort teardown of a half-built cluster has no caller context
	_ = c.Close(context.Background())
}
