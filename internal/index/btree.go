// Package index implements a disk-resident B+tree over buffer-managed
// pages: variable-length byte keys with order-preserving composite
// encoding, duplicate support, range scans over a linked leaf chain,
// and lazy deletion. It is the access-path service of the SBDMS Access
// layer ("access path structure, such as B-trees", Section 3.1).
//
// Concurrency is latch crabbing over the buffer pool's page latches —
// no tree-wide lock exists:
//
//   - Searches and range scans crab SHARED latches down the tree
//     (child latched before the parent is released) and walk the leaf
//     chain left to right; each leaf's matching keys are copied out
//     before the callback runs, so user callbacks never execute under
//     a latch.
//   - Inserts crab EXCLUSIVE latches down the tree, releasing each
//     safe ancestor as soon as the next level is latched, and split
//     full nodes preemptively on the way down (so a split never needs
//     to propagate back up past a released ancestor). A root split
//     swaps the root pointer under an exclusive latch on the metadata
//     page — the "tiny meta latch" serialising only root changes.
//   - Deletes descend shared like a search, then re-latch the target
//     leaf exclusively, moving right along the chain if a concurrent
//     split shifted the key (splits only ever move keys right).
//
// All latch acquisition is top-down and left-to-right, so waits form no
// cycles. Structure modifications (splits, root changes) run as short
// WAL-logged SYSTEM transactions that commit immediately regardless of
// the triggering user transaction: an abort of the user transaction
// undoes its key insert logically but keeps the split, and a crash
// mid-split is rolled back physically before any user record could
// depend on the new shape. Key-level mutations carry logical undo
// descriptors (see internal/access) because concurrent transactions
// interleave freely on shared leaves.
package index

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/access"
	"repro/internal/buffer"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Index errors.
var (
	// ErrDuplicateKey is returned by unique indexes on key collision.
	ErrDuplicateKey = errors.New("index: duplicate key")
	// ErrCorrupt is returned when a node fails to decode.
	ErrCorrupt = errors.New("index: corrupt node")
	// ErrKeyTooLarge is returned for keys exceeding MaxKeySize; the
	// bound is what lets crabbing writers prove an ancestor can absorb
	// any separator a descendant split may push into it.
	ErrKeyTooLarge = errors.New("index: key too large")
)

const indexMagic = 0x5342444d53425431 // "SBDMSBT1"

// MaxKeySize bounds the composite key length (user key escaped +
// terminator + RID suffix). With 4 KiB pages this keeps internal-node
// fanout >= 3 even for maximal keys.
const MaxKeySize = storage.PayloadSize / 4

// BTree is a B+tree keyed by arbitrary byte strings (use
// access.EncodeKey for order-preserving value encodings), mapping each
// key to one or more access.RIDs. Deletion is lazy: entries are removed
// but nodes are not rebalanced. This trades space for simplicity
// without affecting correctness.
//
// The root pointer lives in the metadata page and is read under that
// page's latch on every descent, never cached: any number of BTree
// handles over the same metadata page (live engines, rollback
// executors) stay coherent by construction. Only the entry count is
// kept in memory (synced to the metadata page by SyncMeta, recomputed
// by Recount after a crash).
type BTree struct {
	pool   *buffer.Manager
	metaID storage.PageID
	unique bool
	count  atomic.Int64

	// vers holds the descent version counters of the optimistic insert
	// protocol: every structural change to an interior node (separator
	// insert, split, root swap) bumps the node's slot under the X latch
	// that performs it. Slots are shared by PageID hash — a collision
	// can only invalidate an optimistic descent spuriously (the counter
	// is monotone), never hide a real change.
	vers      [descentVersSlots]atomic.Uint64
	optOff    atomic.Bool   // true disables the optimistic insert descent
	fallbacks atomic.Uint64 // optimistic descents that fell back to X-crab

	mu    sync.Mutex // guards log/sys/freer configuration
	log   *wal.Log
	sys   access.SystemTxnHooks
	freer func([]storage.PageID) error
}

// descentVersSlots sizes the striped version-counter table. 256 slots
// keep false sharing low while bounding the memory cost per tree.
const descentVersSlots = 256

func (t *BTree) versSlot(id storage.PageID) *atomic.Uint64 {
	return &t.vers[uint64(id)%descentVersSlots]
}

// SetOptimisticDescent toggles the optimistic insert descent (on by
// default). Off, every insert uses the exclusive crab descent.
func (t *BTree) SetOptimisticDescent(on bool) { t.optOff.Store(!on) }

// DescentFallbacks returns how many optimistic insert descents failed
// version validation (or found an unsafe leaf) and fell back to the
// exclusive crab descent.
func (t *BTree) DescentFallbacks() uint64 { return t.fallbacks.Load() }

// Create allocates a new empty tree and returns it with its metadata
// page id (persist that id in the catalog to reopen the tree).
func Create(pool *buffer.Manager, unique bool) (*BTree, storage.PageID, error) {
	meta, err := pool.NewPage(storage.PageTypeIndex)
	if err != nil {
		return nil, 0, err
	}
	rootF, err := pool.NewPage(storage.PageTypeIndex)
	if err != nil {
		_ = pool.Unpin(meta.ID, false)
		return nil, 0, err
	}
	root := &node{id: rootF.ID, leaf: true}
	if err := root.encode(rootF.Page()); err != nil {
		_ = pool.Unpin(rootF.ID, false)
		_ = pool.Unpin(meta.ID, false)
		return nil, 0, err
	}
	if err := pool.Unpin(rootF.ID, true); err != nil {
		_ = pool.Unpin(meta.ID, false)
		return nil, 0, err
	}
	t := &BTree{pool: pool, metaID: meta.ID, unique: unique}
	writeMetaPage(meta.Page(), rootF.ID, 0, unique)
	if err := pool.Unpin(meta.ID, true); err != nil {
		return nil, 0, err
	}
	return t, meta.ID, nil
}

// Open loads an existing tree from its metadata page.
func Open(pool *buffer.Manager, metaID storage.PageID) (*BTree, error) {
	f, err := pool.PinLatched(metaID, false)
	if err != nil {
		return nil, err
	}
	defer pool.UnpinLatched(metaID, false, false)
	pl := f.Page().Payload()
	if binary.LittleEndian.Uint64(pl) != indexMagic {
		return nil, fmt.Errorf("%w: bad meta magic on page %d", ErrCorrupt, metaID)
	}
	t := &BTree{
		pool:   pool,
		metaID: metaID,
		unique: pl[24] == 1,
	}
	t.count.Store(int64(binary.LittleEndian.Uint64(pl[16:])))
	return t, nil
}

// writeMetaPage lays out the full metadata payload.
func writeMetaPage(p *storage.Page, root storage.PageID, count uint64, unique bool) {
	pl := p.Payload()
	binary.LittleEndian.PutUint64(pl, indexMagic)
	binary.LittleEndian.PutUint64(pl[8:], uint64(root))
	binary.LittleEndian.PutUint64(pl[16:], count)
	if unique {
		pl[24] = 1
	} else {
		pl[24] = 0
	}
}

// SetLog attaches a write-ahead log; subsequent mutations through a
// non-nil access.TxnContext are logged (physical redo, logical undo).
func (t *BTree) SetLog(l *wal.Log) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.log = l
}

// SetSystemTxns attaches the system-transaction hooks structure
// modifications (splits, root swaps) are logged under.
func (t *BTree) SetSystemTxns(s access.SystemTxnHooks) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sys = s
}

// SetFreer routes page deallocation (Drop) through the file manager's
// WAL-logged free path instead of the pool's direct free, so a crash
// between unlink and free cannot leak the pages.
func (t *BTree) SetFreer(f func([]storage.PageID) error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.freer = f
}

func (t *BTree) getLog() *wal.Log {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.log
}

func (t *BTree) getSys() access.SystemTxnHooks {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sys
}

// MetaID returns the metadata page id used to reopen the tree.
func (t *BTree) MetaID() storage.PageID { return t.metaID }

// Unique reports whether the tree enforces key uniqueness.
func (t *BTree) Unique() bool { return t.unique }

// Len returns the number of entries.
func (t *BTree) Len() uint64 {
	n := t.count.Load()
	if n < 0 {
		return 0
	}
	return uint64(n)
}

// SyncMeta persists the in-memory entry count into the metadata page
// and sets the clean-shutdown flag (unlogged; call on clean shutdown
// before the pool flushes). The flag tells the next open that the
// persisted count is trustworthy; it is consumed — cleared — before
// any new mutation can run.
func (t *BTree) SyncMeta() error {
	return t.pool.UpdatePage(t.metaID, func(p *storage.Page) error {
		pl := p.Payload()
		binary.LittleEndian.PutUint64(pl[16:], t.Len())
		pl[25] = 1
		return nil
	})
}

// ConsumeCleanFlag reports whether the previous shutdown synced the
// metadata cleanly, and clears the flag in the pool. The caller must
// flush the pool before serving traffic (sbdms.Open's durability
// baseline does), so a subsequent crash finds the flag cleared and
// recounts instead of trusting a by-then stale count.
func (t *BTree) ConsumeCleanFlag() (bool, error) {
	clean := false
	err := t.pool.UpdatePage(t.metaID, func(p *storage.Page) error {
		pl := p.Payload()
		clean = pl[25] == 1
		pl[25] = 0
		return nil
	})
	return clean, err
}

// Recount rebuilds the in-memory entry count by walking the leaf chain.
// Call after crash recovery: per-operation count updates are not WAL-
// logged (they would serialise every writer on the metadata page), so
// the persisted count is only trustworthy after a clean SyncMeta.
func (t *BTree) Recount() error {
	n := int64(0)
	err := t.rangeScan(nil, nil, func(ck []byte) error { n++; return nil })
	if err != nil {
		return err
	}
	t.count.Store(n)
	return nil
}

// --- composite key encoding -------------------------------------------

// compositeKey escapes the user key (0x00 -> 0x00 0xFF), appends the
// 0x00 0x00 terminator and the big-endian RID, yielding a byte string
// whose order is (key, rid) with no prefix ambiguity.
func compositeKey(key []byte, rid access.RID) []byte {
	out := make([]byte, 0, len(key)+14)
	for _, b := range key {
		if b == 0x00 {
			out = append(out, 0x00, 0xFF)
		} else {
			out = append(out, b)
		}
	}
	out = append(out, 0x00, 0x00)
	var tail [10]byte
	binary.BigEndian.PutUint64(tail[:8], uint64(rid.Page))
	binary.BigEndian.PutUint16(tail[8:], rid.Slot)
	return append(out, tail[:]...)
}

// splitComposite recovers the user key and RID from a composite key.
func splitComposite(ck []byte) ([]byte, access.RID, error) {
	if len(ck) < 12 {
		return nil, access.RID{}, fmt.Errorf("%w: composite key too short", ErrCorrupt)
	}
	ridPart := ck[len(ck)-10:]
	body := ck[:len(ck)-12] // strip rid and terminator
	key := make([]byte, 0, len(body))
	for i := 0; i < len(body); i++ {
		if body[i] == 0x00 {
			if i+1 >= len(body) || body[i+1] != 0xFF {
				return nil, access.RID{}, fmt.Errorf("%w: bad escape", ErrCorrupt)
			}
			key = append(key, 0x00)
			i++
			continue
		}
		key = append(key, body[i])
	}
	rid := access.RID{
		Page: storage.PageID(binary.BigEndian.Uint64(ridPart[:8])),
		Slot: binary.BigEndian.Uint16(ridPart[8:]),
	}
	return key, rid, nil
}

// keyPrefixBounds returns [lo, hi) composite bounds covering every rid
// of the exact user key.
func keyPrefixBounds(key []byte) (lo, hi []byte) {
	base := make([]byte, 0, len(key)+2)
	for _, b := range key {
		if b == 0x00 {
			base = append(base, 0x00, 0xFF)
		} else {
			base = append(base, b)
		}
	}
	lo = append(append([]byte(nil), base...), 0x00, 0x00)
	hi = append(append([]byte(nil), base...), 0x00, 0x01)
	return lo, hi
}

// --- node representation -----------------------------------------------

// node is the decoded form of a tree page.
//
// Leaf payload:    u8 1 | u16 n | n * (u16 len | composite key)
// Internal payload: u8 0 | u16 n | u64 child0 | n * (u16 len | key | u64 child)
// Leaf sibling links use the page header next/prev fields.
type node struct {
	id       storage.PageID
	leaf     bool
	keys     [][]byte
	children []storage.PageID // internal: len(keys)+1
	next     storage.PageID   // leaf chain
	prev     storage.PageID
}

func (n *node) encodedSize() int {
	sz := 3
	if n.leaf {
		for _, k := range n.keys {
			sz += 2 + len(k)
		}
		return sz
	}
	sz += 8
	for _, k := range n.keys {
		sz += 2 + len(k) + 8
	}
	return sz
}

func (n *node) encode(p *storage.Page) error {
	if n.encodedSize() > storage.PayloadSize {
		return fmt.Errorf("%w: node %d overflow (%d bytes)", ErrCorrupt, n.id, n.encodedSize())
	}
	p.SetType(storage.PageTypeIndex)
	p.SetNext(n.next)
	p.SetPrev(n.prev)
	pl := p.Payload()
	if n.leaf {
		pl[0] = 1
	} else {
		pl[0] = 0
	}
	binary.LittleEndian.PutUint16(pl[1:], uint16(len(n.keys)))
	off := 3
	if !n.leaf {
		var c0 storage.PageID
		if len(n.children) > 0 {
			c0 = n.children[0]
		}
		binary.LittleEndian.PutUint64(pl[off:], uint64(c0))
		off += 8
	}
	for i, k := range n.keys {
		binary.LittleEndian.PutUint16(pl[off:], uint16(len(k)))
		off += 2
		copy(pl[off:], k)
		off += len(k)
		if !n.leaf {
			binary.LittleEndian.PutUint64(pl[off:], uint64(n.children[i+1]))
			off += 8
		}
	}
	return nil
}

func decodeNode(p *storage.Page) (*node, error) {
	pl := p.Payload()
	n := &node{id: p.ID, leaf: pl[0] == 1, next: p.Next(), prev: p.Prev()}
	cnt := int(binary.LittleEndian.Uint16(pl[1:]))
	off := 3
	if !n.leaf {
		if off+8 > len(pl) {
			return nil, fmt.Errorf("%w: page %d truncated", ErrCorrupt, p.ID)
		}
		n.children = append(n.children, storage.PageID(binary.LittleEndian.Uint64(pl[off:])))
		off += 8
	}
	for i := 0; i < cnt; i++ {
		if off+2 > len(pl) {
			return nil, fmt.Errorf("%w: page %d truncated", ErrCorrupt, p.ID)
		}
		klen := int(binary.LittleEndian.Uint16(pl[off:]))
		off += 2
		if off+klen > len(pl) {
			return nil, fmt.Errorf("%w: page %d truncated key", ErrCorrupt, p.ID)
		}
		n.keys = append(n.keys, append([]byte(nil), pl[off:off+klen]...))
		off += klen
		if !n.leaf {
			if off+8 > len(pl) {
				return nil, fmt.Errorf("%w: page %d truncated child", ErrCorrupt, p.ID)
			}
			n.children = append(n.children, storage.PageID(binary.LittleEndian.Uint64(pl[off:])))
			off += 8
		}
	}
	return n, nil
}

// --- latched node references -------------------------------------------

// nref is one latched, decoded node.
type nref struct {
	id    storage.PageID
	f     *buffer.Frame
	n     *node
	excl  bool
	dirty bool
}

// latch pins+latches the page and decodes it.
func (t *BTree) latch(id storage.PageID, excl bool) (*nref, error) {
	f, err := t.pool.PinLatched(id, excl)
	if err != nil {
		return nil, err
	}
	n, err := decodeNode(f.Page())
	if err != nil {
		_ = t.pool.UnpinLatched(id, excl, false)
		return nil, err
	}
	return &nref{id: id, f: f, n: n, excl: excl}, nil
}

// unlatch releases the node. Safe on nil.
func (t *BTree) unlatch(r *nref) {
	if r == nil {
		return
	}
	_ = t.pool.UnpinLatched(r.id, r.excl, r.dirty)
}

// write re-encodes the node into its latched frame and logs the
// transition under tx with the given undo supplier. Interior-node
// writes bump the node's descent version slot under the X latch:
// optimistic descents validate against it after taking their leaf
// latch. (A physical abort of the system transaction restores the
// bytes without un-bumping — the counter stays monotone, so a stale
// bump can only force a spurious fallback.)
func (t *BTree) write(tx access.TxnContext, r *nref, undo func() []byte) error {
	err := access.LogLatchedMutation(t.getLog(), tx, r.f, undo, r.n.encode)
	if err == nil {
		r.dirty = true
		if !r.n.leaf {
			t.versSlot(r.id).Add(1)
		}
	}
	return err
}

// metaLatch pins+latches the metadata page and returns the frame and
// the current root id.
func (t *BTree) metaLatch(excl bool) (*buffer.Frame, storage.PageID, error) {
	f, err := t.pool.PinLatched(t.metaID, excl)
	if err != nil {
		return nil, 0, err
	}
	pl := f.Page().Payload()
	if binary.LittleEndian.Uint64(pl) != indexMagic {
		_ = t.pool.UnpinLatched(t.metaID, excl, false)
		return nil, 0, fmt.Errorf("%w: bad meta magic on page %d", ErrCorrupt, t.metaID)
	}
	return f, storage.PageID(binary.LittleEndian.Uint64(pl[8:])), nil
}

func (t *BTree) metaUnlatch(excl, dirty bool) {
	_ = t.pool.UnpinLatched(t.metaID, excl, dirty)
}

// descendToLeaf crabs shared latches from the root down to the leaf
// that covers ck (leftmost leaf for nil), returning it latched shared.
func (t *BTree) descendToLeaf(ck []byte) (*nref, error) {
	metaF, rootID, err := t.metaLatch(false)
	if err != nil {
		return nil, err
	}
	_ = metaF
	cur, err := t.latch(rootID, false)
	t.metaUnlatch(false, false)
	if err != nil {
		return nil, err
	}
	for !cur.n.leaf {
		var childID storage.PageID
		if ck == nil {
			childID = cur.n.children[0]
		} else {
			childID = cur.n.children[childIndex(cur.n, ck)]
		}
		child, err := t.latch(childID, false)
		t.unlatch(cur)
		if err != nil {
			return nil, err
		}
		cur = child
	}
	return cur, nil
}

// --- system transactions for structure modifications -------------------

// smoBegin starts the system transaction a structure modification is
// logged under (nil context when unlogged).
func (t *BTree) smoBegin() (access.TxnContext, access.SystemTxnHooks, error) {
	sys := t.getSys()
	if sys.Begin == nil || t.getLog() == nil {
		return nil, sys, nil
	}
	stx, err := sys.Begin()
	return stx, sys, err
}

func (t *BTree) smoFinish(stx access.TxnContext, sys access.SystemTxnHooks, opErr error) error {
	if stx == nil {
		return opErr
	}
	if opErr != nil {
		if aerr := sys.Abort(stx); aerr != nil {
			return fmt.Errorf("%w (smo abort: %v)", opErr, aerr)
		}
		return opErr
	}
	return sys.Commit(stx)
}

// newNodeLatched allocates a page, returns it exclusively latched, and
// logs its (empty) birth under stx so redo reconstructs it.
func (t *BTree) newNodeLatched(stx access.TxnContext, leaf bool) (*nref, error) {
	f, err := t.pool.NewPageLatched(storage.PageTypeIndex)
	if err != nil {
		return nil, err
	}
	r := &nref{id: f.ID, f: f, n: &node{id: f.ID, leaf: leaf}, excl: true, dirty: true}
	if err := t.write(stx, r, nil); err != nil {
		t.unlatch(r)
		return nil, err
	}
	return r, nil
}

// --- safety bounds ------------------------------------------------------

// safeForLeaf reports whether inserting ck cannot overflow the leaf.
func safeForLeaf(n *node, ck []byte) bool {
	return n.encodedSize()+2+len(ck) <= storage.PayloadSize
}

// safeForInternal reports whether the internal node can absorb any
// separator a child split could push into it (separator length is
// bounded by MaxKeySize).
func safeForInternal(n *node) bool {
	return n.encodedSize()+2+MaxKeySize+8 <= storage.PayloadSize
}

func (t *BTree) safeFor(n *node, ck []byte) bool {
	if n.leaf {
		return safeForLeaf(n, ck)
	}
	return safeForInternal(n)
}

func childIndex(n *node, ck []byte) int {
	return sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(ck, n.keys[i]) < 0 })
}

// --- operations ---------------------------------------------------------

// Insert adds (key, rid). Unique trees reject an existing key with
// ErrDuplicateKey.
func (t *BTree) Insert(key []byte, rid access.RID) error {
	return t.InsertTx(nil, key, rid)
}

// InsertTx adds (key, rid) under tx: the leaf mutation is logged with a
// logical undo (delete the entry again); any splits run as separate
// system transactions and survive a rollback of tx. Callers relying on
// uniqueness must hold a key-level lock across the operation — the
// tree serialises conflicting page access, not conflicting keys.
func (t *BTree) InsertTx(tx access.TxnContext, key []byte, rid access.RID) error {
	return t.InsertTxGap(tx, key, rid, nil)
}

// InsertTxGap is InsertTx with a next-key hook for serializable range
// scans: just before the leaf mutation, gap (when non-nil) runs under
// the exclusive leaf latch with the entry that will follow (key, rid)
// in the index. An error from the hook abandons the insert (no
// mutation; preemptive splits performed on the way down stand — they
// are independent system transactions) and is returned verbatim.
func (t *BTree) InsertTxGap(tx access.TxnContext, key []byte, rid access.RID, gap GapCheck) error {
	ck := compositeKey(key, rid)
	if len(ck) > MaxKeySize {
		return fmt.Errorf("%w: %d bytes (max %d)", ErrKeyTooLarge, len(ck), MaxKeySize)
	}
	compensating := false
	if c, ok := tx.(access.CompensationContext); ok && c.Compensating() {
		compensating = true
	}
	if t.unique && !compensating {
		rids, err := t.Search(key)
		if err != nil {
			return err
		}
		for _, r := range rids {
			if r != rid {
				return fmt.Errorf("%w: %q", ErrDuplicateKey, key)
			}
		}
	}
	useOpt := !t.optOff.Load()
	for {
		if useOpt {
			inserted, fellback, err := t.insertOptimistic(tx, key, rid, ck, gap)
			if err != nil {
				return err
			}
			if !fellback {
				if inserted {
					t.count.Add(1)
				}
				return nil
			}
			// One optimistic shot per insert: validation failed or the
			// leaf needs a split, so finish under the X-crab protocol.
			useOpt = false
			continue
		}
		done, inserted, err := t.insertAttempt(tx, key, rid, ck, gap)
		if err != nil {
			return err
		}
		if done {
			if inserted {
				t.count.Add(1)
			}
			return nil
		}
	}
}

// insertOptimistic runs one optimistic insert descent: shared latches
// down the tree, recording the version counter of each interior node
// (starting with the metadata page) under its latch before following
// the child pointer, then an exclusive latch on the target leaf alone.
// The parent's version is re-validated after the leaf latch lands: a
// leaf split must insert a separator into (or split) that exact parent
// while holding the leaf's X latch, so the bump is ordered before this
// descent's leaf latch acquisition and an unchanged counter proves the
// latched leaf still covers ck. Validation failure — or a leaf that
// would need a split — falls back (fellback=true) without mutating
// anything; fellback=false with nil err means the insert is complete
// (inserted=false for an exact duplicate). Gap-hook errors propagate
// verbatim, exactly as on the crab path.
func (t *BTree) insertOptimistic(tx access.TxnContext, key []byte, rid access.RID, ck []byte, gap GapCheck) (inserted, fellback bool, err error) {
	metaF, rootID, err := t.metaLatch(false)
	if err != nil {
		return false, false, err
	}
	_ = metaF
	pSlot := t.versSlot(t.metaID)
	pv := pSlot.Load()
	cur, err := t.latch(rootID, false)
	t.metaUnlatch(false, false)
	if err != nil {
		return false, false, err
	}
	for !cur.n.leaf {
		slot := t.versSlot(cur.id)
		v := slot.Load()
		child, err := t.latch(cur.n.children[childIndex(cur.n, ck)], false)
		t.unlatch(cur)
		if err != nil {
			return false, false, err
		}
		pSlot, pv = slot, v
		cur = child
	}
	leafID := cur.id
	t.unlatch(cur)
	leaf, err := t.latch(leafID, true)
	if err != nil {
		return false, false, err
	}
	if pSlot.Load() != pv || !leaf.n.leaf || !safeForLeaf(leaf.n, ck) {
		t.unlatch(leaf)
		t.fallbacks.Add(1)
		return false, true, nil
	}
	pos := sort.Search(len(leaf.n.keys), func(i int) bool { return bytes.Compare(leaf.n.keys[i], ck) >= 0 })
	if pos < len(leaf.n.keys) && bytes.Equal(leaf.n.keys[pos], ck) {
		t.unlatch(leaf)
		return false, false, nil // exact duplicate (same key+rid): no-op
	}
	if gap != nil {
		if err := t.gapCheckAt(leaf, pos, gap); err != nil {
			t.unlatch(leaf)
			return false, false, err
		}
	}
	leaf.n.keys = append(leaf.n.keys, nil)
	copy(leaf.n.keys[pos+1:], leaf.n.keys[pos:])
	leaf.n.keys[pos] = ck
	err = t.write(tx, leaf, func() []byte { return undoIndexInsert(t.metaID, key, rid) })
	t.unlatch(leaf)
	if err != nil {
		return false, false, err
	}
	return true, false, nil
}

// insertAttempt runs one exclusive crab descent. done=false means a
// root split was performed and the descent must restart.
func (t *BTree) insertAttempt(tx access.TxnContext, key []byte, rid access.RID, ck []byte, gap GapCheck) (done, inserted bool, err error) {
	metaF, rootID, err := t.metaLatch(false)
	if err != nil {
		return false, false, err
	}
	_ = metaF
	cur, err := t.latch(rootID, true)
	if err != nil {
		t.metaUnlatch(false, false)
		return false, false, err
	}
	if !t.safeFor(cur.n, ck) {
		// The root itself must split: restart the latch acquisition
		// with the meta page held exclusively so the root pointer can
		// be swapped.
		t.unlatch(cur)
		t.metaUnlatch(false, false)
		if err := t.splitRoot(ck); err != nil {
			return false, false, err
		}
		return false, false, nil // retry descent
	}
	t.metaUnlatch(false, false)

	for !cur.n.leaf {
		i := childIndex(cur.n, ck)
		child, err := t.latch(cur.n.children[i], true)
		if err != nil {
			t.unlatch(cur)
			return false, false, err
		}
		if !t.safeFor(child.n, ck) {
			// Preemptive split: cur is safe (invariant), so it can
			// absorb the separator without propagating further up.
			right, sep, err := t.splitChild(cur, child, i)
			if err != nil {
				t.unlatch(child)
				t.unlatch(cur)
				return false, false, err
			}
			if bytes.Compare(ck, sep) < 0 {
				t.unlatch(right)
			} else {
				t.unlatch(child)
				child = right
			}
		}
		t.unlatch(cur)
		cur = child
	}

	pos := sort.Search(len(cur.n.keys), func(i int) bool { return bytes.Compare(cur.n.keys[i], ck) >= 0 })
	if pos < len(cur.n.keys) && bytes.Equal(cur.n.keys[pos], ck) {
		t.unlatch(cur)
		return true, false, nil // exact duplicate (same key+rid): no-op
	}
	if gap != nil {
		if err := t.gapCheckAt(cur, pos, gap); err != nil {
			t.unlatch(cur)
			return false, false, err
		}
	}
	cur.n.keys = append(cur.n.keys, nil)
	copy(cur.n.keys[pos+1:], cur.n.keys[pos:])
	cur.n.keys[pos] = ck
	err = t.write(tx, cur, func() []byte { return undoIndexInsert(t.metaID, key, rid) })
	t.unlatch(cur)
	if err != nil {
		return false, false, err
	}
	return true, true, nil
}

// splitChild splits child (latched exclusively) into (child, right),
// pushing the separator into parent at child position i. Every touched
// node — parent, child, the new right sibling and (for leaf splits)
// the old next leaf — stays exclusively latched across the whole
// system transaction, through commit or rollback: its records and
// outcome enter the log while no other transaction can touch the
// pages, which is what makes its physical undo sound (the manager's
// held-latches abort writes the before images back directly).
func (t *BTree) splitChild(parent, child *nref, i int) (*nref, []byte, error) {
	stx, sys, err := t.smoBegin()
	if err != nil {
		return nil, nil, err
	}
	right, oldNext, sep, err := t.splitNode(stx, child)
	if err == nil {
		parent.n.keys = append(parent.n.keys, nil)
		copy(parent.n.keys[i+1:], parent.n.keys[i:])
		parent.n.keys[i] = sep
		parent.n.children = append(parent.n.children, 0)
		copy(parent.n.children[i+2:], parent.n.children[i+1:])
		parent.n.children[i+1] = right.id
		err = t.write(stx, parent, nil)
	}
	ferr := t.smoFinish(stx, sys, err)
	t.unlatch(oldNext)
	if ferr != nil {
		t.unlatch(right)
		return nil, nil, ferr
	}
	return right, sep, nil
}

// splitNode halves the (latched, full) node into itself plus a new
// right sibling, returning the latched sibling, the latched old next
// leaf (nil for internal nodes or tail leaves — the CALLER unlatches
// both after the system transaction finishes) and the separator key.
// Leaf splits maintain the chain links; latching the old next leaf is
// a left-to-right acquisition, consistent with every traversal.
func (t *BTree) splitNode(stx access.TxnContext, n *nref) (right, oldNext *nref, sep []byte, err error) {
	right, err = t.newNodeLatched(stx, n.n.leaf)
	if err != nil {
		return nil, nil, nil, err
	}
	fail := func(err error) (*nref, *nref, []byte, error) {
		return right, oldNext, nil, err
	}
	if n.n.leaf {
		mid := len(n.n.keys) / 2
		right.n.keys = append(right.n.keys, n.n.keys[mid:]...)
		n.n.keys = n.n.keys[:mid]
		next := n.n.next
		right.n.next = next
		right.n.prev = n.id
		n.n.next = right.id
		if next != storage.InvalidPageID {
			// Latch the neighbour BEFORE any write, so a failure can
			// roll the whole modification back under held latches.
			if oldNext, err = t.latch(next, true); err != nil {
				return fail(err)
			}
		}
		if err := t.write(stx, right, nil); err != nil {
			return fail(err)
		}
		if err := t.write(stx, n, nil); err != nil {
			return fail(err)
		}
		if oldNext != nil {
			oldNext.n.prev = right.id
			if err := t.write(stx, oldNext, nil); err != nil {
				return fail(err)
			}
		}
		sep = append([]byte(nil), right.n.keys[0]...)
	} else {
		mid := len(n.n.keys) / 2
		sep = append([]byte(nil), n.n.keys[mid]...)
		right.n.keys = append(right.n.keys, n.n.keys[mid+1:]...)
		right.n.children = append(right.n.children, n.n.children[mid+1:]...)
		n.n.keys = n.n.keys[:mid]
		n.n.children = n.n.children[:mid+1]
		if err := t.write(stx, right, nil); err != nil {
			return fail(err)
		}
		if err := t.write(stx, n, nil); err != nil {
			return fail(err)
		}
	}
	return right, oldNext, sep, nil
}

// splitRoot grows the tree by one level: the old root splits and a new
// internal root pointing at both halves is installed in the metadata
// page — all under the exclusive meta latch, so concurrent descents
// (which crab meta -> root) serialise against the swap.
func (t *BTree) splitRoot(ck []byte) error {
	metaF, rootID, err := t.metaLatch(true)
	if err != nil {
		return err
	}
	root, err := t.latch(rootID, true)
	if err != nil {
		t.metaUnlatch(true, false)
		return err
	}
	if t.safeFor(root.n, ck) {
		// Another writer split it first.
		t.unlatch(root)
		t.metaUnlatch(true, false)
		return nil
	}
	stx, sys, err := t.smoBegin()
	if err != nil {
		t.unlatch(root)
		t.metaUnlatch(true, false)
		return err
	}
	var right, oldNext, newRoot *nref
	var sep []byte
	right, oldNext, sep, err = t.splitNode(stx, root)
	if err == nil {
		newRoot, err = t.newNodeLatched(stx, false)
	}
	if err == nil {
		newRoot.n.keys = [][]byte{sep}
		newRoot.n.children = []storage.PageID{root.id, right.id}
		err = t.write(stx, newRoot, nil)
	}
	dirtyMeta := false
	if err == nil {
		err = access.LogLatchedMutation(t.getLog(), stx, metaF, nil, func(p *storage.Page) error {
			binary.LittleEndian.PutUint64(p.Payload()[8:], uint64(newRoot.id))
			return nil
		})
		dirtyMeta = err == nil
		if dirtyMeta {
			// The meta page acts as the root's parent in the optimistic
			// descent protocol: bump its version under the exclusive
			// meta latch so a descent that read the old root pointer
			// (height-1 trees in particular, where the split leaf IS
			// the old root) fails validation and retries.
			t.versSlot(t.metaID).Add(1)
		}
	}
	err = t.smoFinish(stx, sys, err)
	t.unlatch(newRoot)
	t.unlatch(oldNext)
	t.unlatch(right)
	t.unlatch(root)
	t.metaUnlatch(true, dirtyMeta)
	return err
}

// Search returns every RID stored under the exact key.
func (t *BTree) Search(key []byte) ([]access.RID, error) {
	lo, hi := keyPrefixBounds(key)
	var out []access.RID
	err := t.rangeScan(lo, hi, func(ck []byte) error {
		_, rid, err := splitComposite(ck)
		if err != nil {
			return err
		}
		out = append(out, rid)
		return nil
	})
	return out, err
}

// Delete removes (key, rid) and reports whether it was present.
func (t *BTree) Delete(key []byte, rid access.RID) (bool, error) {
	return t.DeleteTx(nil, key, rid)
}

// DeleteTx removes (key, rid) under tx, logging the leaf mutation with
// a logical undo (re-insert the entry). The descent is shared; only the
// target leaf is latched exclusively. If a concurrent split moved the
// key right between the shared descent and the exclusive re-latch, the
// delete follows the chain right — splits only ever move keys right.
func (t *BTree) DeleteTx(tx access.TxnContext, key []byte, rid access.RID) (bool, error) {
	return t.DeleteTxGap(tx, key, rid, nil)
}

// DeleteTxGap is DeleteTx with a next-key hook for serializable range
// scans: when the entry is found, gap (when non-nil) runs under the
// exclusive leaf latch with the entry's successor BEFORE the removal,
// so the caller can lock the gap the delete is about to widen. An
// error from the hook abandons the delete (no mutation) and is
// returned verbatim.
func (t *BTree) DeleteTxGap(tx access.TxnContext, key []byte, rid access.RID, gap GapCheck) (bool, error) {
	ck := compositeKey(key, rid)
	leaf, err := t.descendToLeaf(ck)
	if err != nil {
		return false, err
	}
	id := leaf.id
	t.unlatch(leaf)
	cur, err := t.latch(id, true)
	if err != nil {
		return false, err
	}
	for {
		pos := sort.Search(len(cur.n.keys), func(i int) bool { return bytes.Compare(cur.n.keys[i], ck) >= 0 })
		if pos < len(cur.n.keys) && bytes.Equal(cur.n.keys[pos], ck) {
			if gap != nil {
				if err := t.gapCheckAt(cur, pos+1, gap); err != nil {
					t.unlatch(cur)
					return false, err
				}
			}
			cur.n.keys = append(cur.n.keys[:pos], cur.n.keys[pos+1:]...)
			err := t.write(tx, cur, func() []byte { return undoIndexDelete(t.metaID, key, rid) })
			t.unlatch(cur)
			if err != nil {
				return false, err
			}
			t.count.Add(-1)
			return true, nil
		}
		// Not here. Only worth chasing right if the key could have been
		// moved by a split: ck sorts after everything in this leaf.
		if cur.n.next == storage.InvalidPageID ||
			(len(cur.n.keys) > 0 && bytes.Compare(ck, cur.n.keys[len(cur.n.keys)-1]) < 0) {
			t.unlatch(cur)
			return false, nil
		}
		next, err := t.latch(cur.n.next, true)
		t.unlatch(cur)
		if err != nil {
			return false, err
		}
		cur = next
	}
}

// RepointTx replaces the RID suffix of the unique tree's entry for key
// — (key, oldRID) becomes (key, newRID) — in place, logging the leaf
// mutation with a logical undo (repoint back). The version-chained KV
// core uses it to swing a key's index entry onto a freshly appended
// head version without a delete+insert pair (which would open a
// phantom gap for serializable scans and double-log the leaf).
//
// In-place replacement preserves the leaf's sort invariant: the tree
// is unique, so the entry's neighbours belong to other user keys and
// compare on the user-key prefix alone. A parent separator equal to
// the old composite key may now exceed the new one in its RID suffix;
// descents by full composite key tolerate that with the same
// move-right chase deletes use (splits and stale separators only ever
// leave the target further right). Reports false when no entry for
// (key, oldRID) exists.
func (t *BTree) RepointTx(tx access.TxnContext, key []byte, oldRID, newRID access.RID) (bool, error) {
	ckOld := compositeKey(key, oldRID)
	ckNew := compositeKey(key, newRID)
	if len(ckNew) > MaxKeySize {
		return false, fmt.Errorf("%w: %d bytes (max %d)", ErrKeyTooLarge, len(ckNew), MaxKeySize)
	}
	leaf, err := t.descendToLeaf(ckOld)
	if err != nil {
		return false, err
	}
	id := leaf.id
	t.unlatch(leaf)
	cur, err := t.latch(id, true)
	if err != nil {
		return false, err
	}
	for {
		pos := sort.Search(len(cur.n.keys), func(i int) bool { return bytes.Compare(cur.n.keys[i], ckOld) >= 0 })
		if pos < len(cur.n.keys) && bytes.Equal(cur.n.keys[pos], ckOld) {
			cur.n.keys[pos] = ckNew
			err := t.write(tx, cur, func() []byte { return undoIndexRepoint(t.metaID, key, oldRID, newRID) })
			t.unlatch(cur)
			return err == nil, err
		}
		if cur.n.next == storage.InvalidPageID ||
			(len(cur.n.keys) > 0 && bytes.Compare(ckOld, cur.n.keys[len(cur.n.keys)-1]) < 0) {
			t.unlatch(cur)
			return false, nil
		}
		next, err := t.latch(cur.n.next, true)
		t.unlatch(cur)
		if err != nil {
			return false, err
		}
		cur = next
	}
}

// Range iterates entries with lo <= key < hi (nil bounds are
// unbounded), in key order, calling fn with the user key and RID. Each
// leaf's matching entries are copied out under the shared leaf latch
// and fn runs after the latch is released: fn may take arbitrarily long
// (or re-enter the storage stack) without blocking writers.
func (t *BTree) Range(lo, hi []byte, fn func(key []byte, rid access.RID) error) error {
	var clo, chi []byte
	if lo != nil {
		clo, _ = keyPrefixBounds(lo)
	}
	if hi != nil {
		chi, _ = keyPrefixBounds(hi)
	}
	return t.rangeScan(clo, chi, func(ck []byte) error {
		key, rid, err := splitComposite(ck)
		if err != nil {
			return err
		}
		return fn(key, rid)
	})
}

// RangeLatched walks entries with key >= lo (nil = from the start) in
// key order, invoking fn UNDER the covering leaf's shared latch for
// each entry, and once more with eof=true (nil key) under the last
// leaf's latch when the index is exhausted. Unlike Range, consecutive
// leaves are latch-coupled (the next leaf is latched before the current
// one is released), so between two consecutive fn calls no writer can
// slip an entry into the gap — the property next-key locking scans
// need: the successor is surfaced, and can be locked, before the leaf
// latch that proves it IS the successor is released.
//
// fn must not block on anything a latch holder could wait on (in
// particular it must only take locks conditionally — TryAcquire, never
// Acquire) and must not re-enter the tree. Returning a non-nil error
// releases the latch and aborts the walk with that error; callers
// restart a new walk after resolving whatever made fn bail out.
func (t *BTree) RangeLatched(lo []byte, fn func(key []byte, rid access.RID, eof bool) error) error {
	var clo []byte
	if lo != nil {
		clo, _ = keyPrefixBounds(lo)
	}
	leaf, err := t.descendToLeaf(clo)
	if err != nil {
		return err
	}
	for {
		start := 0
		if clo != nil {
			start = sort.Search(len(leaf.n.keys), func(i int) bool { return bytes.Compare(leaf.n.keys[i], clo) >= 0 })
		}
		for i := start; i < len(leaf.n.keys); i++ {
			key, rid, err := splitComposite(leaf.n.keys[i])
			if err == nil {
				err = fn(key, rid, false)
			}
			if err != nil {
				t.unlatch(leaf)
				return err
			}
		}
		if leaf.n.next == storage.InvalidPageID {
			err := fn(nil, access.RID{}, true)
			t.unlatch(leaf)
			return err
		}
		// Latch-couple onto the next leaf BEFORE releasing this one
		// (left-to-right, same order as splits — no deadlock), closing
		// the window where an insert could land in this leaf's tail gap
		// unseen by both this call and the next.
		next, err := t.latch(leaf.n.next, false)
		t.unlatch(leaf)
		if err != nil {
			return err
		}
		clo = nil
		leaf = next
	}
}

// GapCheck is the next-key hook of InsertTxGap/DeleteTxGap: it runs
// under the exclusive latch of the leaf about to be mutated, with the
// mutation point's successor entry (eof=true, nil key at end of index).
// It must not block (conditional lock attempts only); a non-nil return
// abandons the attempt without mutating anything, and the error is
// surfaced to the caller, which typically waits for the lock off-latch
// and retries.
type GapCheck func(key []byte, rid access.RID, eof bool) error

// successorFrom walks the leaf chain from id (shared latches, coupled
// left-to-right past empty leaves) and returns the first entry, or
// eof=true if the chain ends. The caller keeps its own latch on the
// preceding leaf, so the returned entry is the true successor for as
// long as that latch is held.
func (t *BTree) successorFrom(id storage.PageID) (ck []byte, eof bool, err error) {
	for id != storage.InvalidPageID {
		r, err := t.latch(id, false)
		if err != nil {
			return nil, false, err
		}
		if len(r.n.keys) > 0 {
			ck = append([]byte(nil), r.n.keys[0]...)
			t.unlatch(r)
			return ck, false, nil
		}
		id = r.n.next
		t.unlatch(r)
	}
	return nil, true, nil
}

// gapCheckAt resolves the successor of position pos in the latched leaf
// (falling through to the chain when pos is past the last entry) and
// runs the hook on it.
func (t *BTree) gapCheckAt(cur *nref, pos int, gap GapCheck) error {
	if pos < len(cur.n.keys) {
		key, rid, err := splitComposite(cur.n.keys[pos])
		if err != nil {
			return err
		}
		return gap(key, rid, false)
	}
	ck, eof, err := t.successorFrom(cur.n.next)
	if err != nil {
		return err
	}
	if eof {
		return gap(nil, access.RID{}, true)
	}
	key, rid, err := splitComposite(ck)
	if err != nil {
		return err
	}
	return gap(key, rid, false)
}

// rangeScan walks composite keys in [clo, chi) (nil = unbounded).
func (t *BTree) rangeScan(clo, chi []byte, fn func(ck []byte) error) error {
	leaf, err := t.descendToLeaf(clo)
	if err != nil {
		return err
	}
	for {
		// Copy the window out, then release the latch before callbacks.
		start := 0
		if clo != nil {
			start = sort.Search(len(leaf.n.keys), func(i int) bool { return bytes.Compare(leaf.n.keys[i], clo) >= 0 })
		}
		var batch [][]byte
		done := false
		for i := start; i < len(leaf.n.keys); i++ {
			if chi != nil && bytes.Compare(leaf.n.keys[i], chi) >= 0 {
				done = true
				break
			}
			batch = append(batch, leaf.n.keys[i])
		}
		next := leaf.n.next
		t.unlatch(leaf)
		for _, ck := range batch {
			if err := fn(ck); err != nil {
				return err
			}
		}
		if done || next == storage.InvalidPageID {
			return nil
		}
		clo = nil // subsequent leaves start at 0
		leaf, err = t.latch(next, false)
		if err != nil {
			return err
		}
	}
}

// Height returns the tree height (1 for a lone leaf).
func (t *BTree) Height() (int, error) {
	metaF, rootID, err := t.metaLatch(false)
	if err != nil {
		return 0, err
	}
	_ = metaF
	cur, err := t.latch(rootID, false)
	t.metaUnlatch(false, false)
	if err != nil {
		return 0, err
	}
	h := 1
	for !cur.n.leaf {
		child, err := t.latch(cur.n.children[0], false)
		t.unlatch(cur)
		if err != nil {
			return 0, err
		}
		cur = child
		h++
	}
	t.unlatch(cur)
	return h, nil
}

// Drop frees every page of the tree including the metadata page,
// through the WAL-logged free path when a freer is attached (a crash
// mid-drop then replays the free markings instead of leaking the
// pages). Callers must ensure no concurrent operations on the tree.
func (t *BTree) Drop() error {
	_, rootID, err := t.metaLatch(true)
	if err != nil {
		return err
	}
	var ids []storage.PageID
	err = t.collect(rootID, &ids)
	t.metaUnlatch(true, false)
	if err != nil {
		return err
	}
	ids = append(ids, t.metaID)
	t.mu.Lock()
	freer := t.freer
	t.mu.Unlock()
	if freer != nil {
		return freer(ids)
	}
	for _, id := range ids {
		if err := t.pool.Deallocate(id); err != nil {
			return err
		}
	}
	return nil
}

func (t *BTree) collect(id storage.PageID, out *[]storage.PageID) error {
	r, err := t.latch(id, false)
	if err != nil {
		return err
	}
	children := append([]storage.PageID(nil), r.n.children...)
	leaf := r.n.leaf
	t.unlatch(r)
	if !leaf {
		for _, c := range children {
			if err := t.collect(c, out); err != nil {
				return err
			}
		}
	}
	*out = append(*out, id)
	return nil
}
