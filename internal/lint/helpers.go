package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// Import paths of the engine packages whose APIs the analyzers key on.
const (
	accessPath    = "repro/internal/access"
	bufferPath    = "repro/internal/buffer"
	indexPath     = "repro/internal/index"
	replicatePath = "repro/internal/replicate"
	rootPath      = "repro"
	txnPath       = "repro/internal/txn"
	walPath       = "repro/internal/wal"
)

// calleeFunc resolves the function or method a call expression invokes,
// or nil when the callee is not a named function (e.g. a call through a
// function-typed variable or field).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// recvTypeName returns the package path and type name of a method's
// receiver (pointers dereferenced), or ok=false for plain functions.
func recvTypeName(fn *types.Func) (pkgPath, typeName string, ok bool) {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", "", false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return "", "", false
	}
	return named.Obj().Pkg().Path(), named.Obj().Name(), true
}

// isMethodOn reports whether fn is the named method on pkgPath.typeName.
func isMethodOn(fn *types.Func, pkgPath, typeName, method string) bool {
	if fn == nil || fn.Name() != method {
		return false
	}
	p, t, ok := recvTypeName(fn)
	return ok && p == pkgPath && t == typeName
}

// isPkgFunc reports whether fn is the named package-level function.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	if sig, _ := fn.Type().(*types.Signature); sig == nil || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath
}

// isNamedType reports whether t (pointers dereferenced) is the named
// type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == name
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool { return isNamedType(t, "context", "Context") }

// hasCtxParam reports whether a function type declares a
// context.Context parameter.
func hasCtxParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if tv, ok := info.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// exprString renders an expression to canonical source form, used to
// compare pin arguments against unpin arguments syntactically.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}

// objOf resolves an expression to the variable object it names, seeing
// through parens.
func objOf(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	if v == nil {
		v, _ = info.Defs[id].(*types.Var)
	}
	return v
}

// funcBodies yields every function body in the file along with its
// type: declarations and function literals alike. Literals are yielded
// separately, so per-function analyses must not descend into nested
// *ast.FuncLit when walking a body.
func funcBodies(f *ast.File, visit func(ft *ast.FuncType, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				visit(fn.Type, fn.Body)
			}
		case *ast.FuncLit:
			visit(fn.Type, fn.Body)
		}
		return true
	})
}

// inspectShallow walks n but does not descend into nested function
// literals — the per-function walk used by analyzers whose state is
// function-local.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m != n {
			if _, isLit := m.(*ast.FuncLit); isLit {
				return false
			}
		}
		return fn(m)
	})
}
