package txn

import (
	"sort"
	"sync"
)

// Oracle allocates monotonically increasing commit timestamps and
// tracks which of them are still outstanding (allocated but not yet
// durably committed), plus the set of live snapshots reading below
// them. Together those two sets define the MVCC visibility frontier:
//
//   - VisibleTS: the highest timestamp every new snapshot may read.
//     It trails min(outstanding)-1 so a snapshot never observes a
//     version whose commit record is not yet durable — committing
//     transactions stamp their versions on the pages BEFORE forcing
//     the commit record, and only Complete (called after the force)
//     lets readers past them.
//   - Horizon: the highest timestamp no live snapshot can still need.
//     The vacuum reclaims versions strictly below the newest version
//     that is committed at or below the horizon; a reader at
//     readTS >= Horizon stops its chain walk at or before that pivot
//     version and never follows a reclaimed link.
//
// Timestamps live strictly below MarkBit: a version header whose begin
// field has MarkBit set instead carries the writing transaction's id
// and is invisible to every snapshot until commit stamps it.
type Oracle struct {
	mu          sync.Mutex
	clock       uint64              // last allocated commit timestamp
	outstanding map[uint64]struct{} // allocated, not yet completed
	snaps       map[uint64]int      // snapshot readTS -> refcount
}

// NewOracle creates a timestamp oracle with the clock at zero.
func NewOracle() *Oracle {
	return &Oracle{
		outstanding: make(map[uint64]struct{}),
		snaps:       make(map[uint64]int),
	}
}

// Clock returns the most recently allocated commit timestamp.
func (o *Oracle) Clock() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.clock
}

// EnsureClockAbove advances the clock to at least ts. The opener calls
// it with the highest commit timestamp recovery saw (commit records
// and the checkpoint's persisted clock), so a restarted engine never
// re-issues a timestamp that already stamps durable versions.
func (o *Oracle) EnsureClockAbove(ts uint64) {
	o.mu.Lock()
	if ts > o.clock {
		o.clock = ts
	}
	o.mu.Unlock()
}

// AllocateCommitTS hands out the next commit timestamp and marks it
// outstanding: VisibleTS stays below it until Complete reports the
// commit durable (or abandoned). Every allocation MUST be paired with
// exactly one Complete, except when the commit's durability is in
// doubt (a failed log force poisons the engine) — leaving the
// timestamp outstanding then is deliberate: no snapshot may ever read
// a version whose commit record might not survive a crash.
func (o *Oracle) AllocateCommitTS() uint64 {
	o.mu.Lock()
	o.clock++
	ts := o.clock
	o.outstanding[ts] = struct{}{}
	o.mu.Unlock()
	return ts
}

// Complete removes ts from the outstanding set, letting VisibleTS
// advance past it. Called after the commit record is durable, or when
// the allocating transaction aborted (its stamps are rolled back, so
// the gap timestamp is harmless).
func (o *Oracle) Complete(ts uint64) {
	o.mu.Lock()
	delete(o.outstanding, ts)
	o.mu.Unlock()
}

// visibleLocked computes the snapshot frontier with o.mu held.
func (o *Oracle) visibleLocked() uint64 {
	v := o.clock
	for ts := range o.outstanding {
		if ts-1 < v {
			v = ts - 1
		}
	}
	return v
}

// VisibleTS returns the read timestamp a snapshot taken now receives:
// every version stamped at or below it belongs to a durably committed
// transaction.
func (o *Oracle) VisibleTS() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.visibleLocked()
}

// Snapshot is a registered read view: every version committed at or
// below ReadTS is visible, everything younger (or uncommitted) is not.
// The registration pins the vacuum horizon at or below ReadTS until
// Close; Close is idempotent.
type Snapshot struct {
	// ReadTS is the snapshot's visibility bound.
	ReadTS uint64
	// ActiveTxns lists the commit timestamps that were allocated but
	// not yet complete when the snapshot was taken (all above ReadTS);
	// diagnostics only — visibility needs just ReadTS.
	ActiveTxns []uint64

	o      *Oracle
	closed bool
	mu     sync.Mutex
}

// Snapshot registers and returns a new read view at the current
// visibility frontier.
func (o *Oracle) Snapshot() *Snapshot {
	o.mu.Lock()
	ts := o.visibleLocked()
	o.snaps[ts]++
	var act []uint64
	for t := range o.outstanding {
		act = append(act, t)
	}
	o.mu.Unlock()
	sort.Slice(act, func(i, j int) bool { return act[i] < act[j] })
	return &Snapshot{ReadTS: ts, ActiveTxns: act, o: o}
}

// Close deregisters the snapshot, releasing its hold on the vacuum
// horizon. Safe to call more than once.
func (s *Snapshot) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.o.mu.Lock()
	if n := s.o.snaps[s.ReadTS]; n <= 1 {
		delete(s.o.snaps, s.ReadTS)
	} else {
		s.o.snaps[s.ReadTS] = n - 1
	}
	s.o.mu.Unlock()
}

// Horizon returns the oldest timestamp any live or future snapshot
// could still read: min over registered snapshots' ReadTS and the
// current VisibleTS. The vacuum may unlink any version superseded by a
// newer version that is committed at or below the horizon — no reader
// at readTS >= Horizon ever walks past that newer version, and every
// registered reader's readTS is >= Horizon by construction.
func (o *Oracle) Horizon() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	h := o.visibleLocked()
	for ts := range o.snaps {
		if ts < h {
			h = ts
		}
	}
	return h
}

// ActiveSnapshots reports how many snapshot registrations are live.
func (o *Oracle) ActiveSnapshots() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := 0
	for _, c := range o.snaps {
		n += c
	}
	return n
}
